// Command obslint validates a Prometheus text exposition with the repo's
// strict linter (internal/obs.LintPrometheus): exposition syntax, histogram
// invariants, duplicate series, and exemplar placement. CI pipes a live
// /metrics scrape through it so a malformed exposition fails the build, not
// the dashboard.
//
// Usage:
//
//	obslint [file...]   # no args reads stdin
//
// Exit status 0 when clean; 1 with one problem per line otherwise.
package main

import (
	"fmt"
	"io"
	"os"

	"accelscore/internal/obs"
)

func main() {
	dirty := false
	lint := func(name string, r io.Reader) {
		probs := obs.LintPrometheus(r)
		for _, p := range probs {
			fmt.Fprintf(os.Stderr, "%s:%s\n", name, p)
		}
		if len(probs) > 0 {
			dirty = true
		} else {
			fmt.Printf("%s: ok\n", name)
		}
	}
	if len(os.Args) < 2 {
		lint("<stdin>", os.Stdin)
	}
	for _, path := range os.Args[1:] {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		lint(path, f)
		f.Close()
	}
	if dirty {
		os.Exit(1)
	}
}
