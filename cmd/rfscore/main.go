// Command rfscore trains a random forest and scores a batch on a chosen
// backend, printing prediction accuracy and the simulated latency breakdown.
// It is the smallest way to drive one scoring operation through the library.
//
// Usage:
//
//	rfscore [-dataset IRIS|HIGGS] [-trees N] [-depth N] [-records N]
//	        [-backend NAME] [-compare]
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"accelscore/internal/backend"
	"accelscore/internal/core"
	"accelscore/internal/dataset"
	"accelscore/internal/forest"
	"accelscore/internal/platform"
	"accelscore/internal/sim"
)

func main() {
	ds := flag.String("dataset", "IRIS", "dataset: IRIS or HIGGS")
	trees := flag.Int("trees", 16, "number of trees")
	depth := flag.Int("depth", 10, "maximum tree depth")
	records := flag.Int("records", 10000, "records to score")
	backendName := flag.String("backend", "CPU_SKLearn", "backend to score on")
	compare := flag.Bool("compare", false, "score on every backend and compare simulated latencies")
	flag.Parse()

	if err := run(*ds, *trees, *depth, *records, *backendName, *compare); err != nil {
		fmt.Fprintln(os.Stderr, "rfscore:", err)
		os.Exit(1)
	}
}

func run(ds string, trees, depth, records int, backendName string, compare bool) error {
	var train *dataset.Dataset
	switch ds {
	case "IRIS":
		train = dataset.Iris()
	case "HIGGS":
		train = dataset.Higgs(4000, 1)
	default:
		return fmt.Errorf("unknown dataset %q", ds)
	}

	f, err := forest.Train(train, forest.ForestConfig{
		NumTrees:  trees,
		Tree:      forest.TrainConfig{MaxDepth: depth},
		Seed:      1,
		Bootstrap: true,
	})
	if err != nil {
		return err
	}
	stats := f.ComputeStats()
	fmt.Printf("model: %d trees, max depth %d, avg path %.1f, training accuracy %.3f\n",
		stats.Trees, stats.MaxDepth, stats.AvgPathLength, f.Accuracy(train))

	data := train.Replicate(records)
	req := &backend.Request{Forest: f, Data: data}
	tb := platform.New()

	if compare {
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "backend\tsimulated latency\tthroughput (M/s)\tO\tL\tC")
		for _, b := range tb.AllBackends() {
			res, err := b.Score(req)
			if err != nil {
				fmt.Fprintf(w, "%s\tunsupported: %v\t\t\t\t\n", b.Name(), err)
				continue
			}
			olc := core.Decompose(&res.Timeline)
			fmt.Fprintf(w, "%s\t%s\t%.3f\t%s\t%s\t%s\n",
				b.Name(), sim.FormatDuration(res.Latency()), res.Throughput()/1e6,
				sim.FormatDuration(olc.O), sim.FormatDuration(olc.L), sim.FormatDuration(olc.C))
		}
		return w.Flush()
	}

	b, ok := tb.Registry.Get(backendName)
	if !ok {
		return fmt.Errorf("backend %q not registered (have %v)", backendName, tb.Registry.Names())
	}
	res, err := b.Score(req)
	if err != nil {
		return err
	}
	fmt.Printf("\nscored %d records on %s\n\n", len(res.Predictions), b.Name())
	fmt.Println(res.Timeline.Aggregate())
	fmt.Printf("throughput: %.3f M records/s\n", res.Throughput()/1e6)
	return nil
}
