// Command schedsim simulates a stream of DBMS scoring queries under
// different offload-placement policies — static CPU, static FPGA, the
// queue-oblivious oracle, and the contention-aware dynamic scheduler the
// paper's §I motivates — and prints latency/utilization metrics per policy.
//
// Usage:
//
//	schedsim [-queries N] [-seed N] [-interarrival DUR] [-min N] [-max N]
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"accelscore/internal/platform"
	"accelscore/internal/sched"
	"accelscore/internal/sim"
)

func main() {
	queries := flag.Int("queries", 500, "number of queries in the stream")
	seed := flag.Uint64("seed", 1, "workload seed")
	interarrival := flag.Duration("interarrival", 20*time.Millisecond, "mean interarrival time")
	minRecords := flag.Int64("min", 1, "minimum records per query")
	maxRecords := flag.Int64("max", 1_000_000, "maximum records per query")
	trace := flag.Bool("trace", false, "print a per-device Gantt trace for each policy")
	saveTrace := flag.String("save", "", "write the generated workload to a CSV trace file")
	loadTrace := flag.String("load", "", "replay a workload from a CSV trace file instead of generating one")
	flag.Parse()

	var qs []sched.Query
	var err error
	if *loadTrace != "" {
		f, err := os.Open(*loadTrace)
		if err != nil {
			fmt.Fprintln(os.Stderr, "schedsim:", err)
			os.Exit(1)
		}
		qs, err = sched.ReadTrace(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "schedsim:", err)
			os.Exit(1)
		}
		*queries = len(qs)
	} else {
		cfg := sched.DefaultWorkload(*queries, *seed)
		cfg.MeanInterarrival = *interarrival
		cfg.MinRecords = *minRecords
		cfg.MaxRecords = *maxRecords
		qs, err = sched.Generate(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "schedsim:", err)
			os.Exit(1)
		}
	}
	if *saveTrace != "" {
		f, err := os.Create(*saveTrace)
		if err != nil {
			fmt.Fprintln(os.Stderr, "schedsim:", err)
			os.Exit(1)
		}
		err = sched.WriteTrace(f, qs)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "schedsim:", err)
			os.Exit(1)
		}
		fmt.Println("saved trace to", *saveTrace)
	}
	tb := platform.New()
	simulator := &sched.Simulator{Registry: tb.Registry}
	policies := []sched.Policy{
		sched.Static{BackendName: "CPU_SKLearn", Registry: tb.Registry},
		sched.Static{BackendName: "FPGA", Registry: tb.Registry},
		sched.Oracle{Advisor: tb.Advisor},
		sched.ContentionAware{Advisor: tb.Advisor},
	}
	fmt.Printf("workload: %d queries, mean interarrival %v, records %d..%d, HIGGS-shaped models\n\n",
		*queries, *interarrival, *minRecords, *maxRecords)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "policy\tmakespan\tmean\tp50\tp99\toffloaded\tcpu util\tgpu util\tfpga util")
	for _, policy := range policies {
		comps, m, err := simulator.Run(policy, qs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "schedsim:", err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t%d/%d\t%.0f%%\t%.0f%%\t%.0f%%\n",
			m.Policy,
			sim.FormatDuration(m.Makespan),
			sim.FormatDuration(m.MeanLatency),
			sim.FormatDuration(m.P50),
			sim.FormatDuration(m.P99),
			m.Offloaded, *queries,
			100*m.Utilization(sched.DeviceCPU),
			100*m.Utilization(sched.DeviceGPU),
			100*m.Utilization(sched.DeviceFPGA),
		)
		if *trace {
			if err := w.Flush(); err != nil {
				fmt.Fprintln(os.Stderr, "schedsim:", err)
				os.Exit(1)
			}
			fmt.Printf("\n%s:\n%s\n", policy.Name(), sched.RenderTrace(comps, 100))
		}
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "schedsim:", err)
		os.Exit(1)
	}
}
