// Command dbsh is an interactive shell over the mini-DBMS: load datasets as
// tables, train and store random-forest models, run SELECT queries and
// EXEC sp_score_model scoring queries on any simulated backend, and inspect
// the resulting latency breakdowns — the whole paper pipeline from a prompt.
//
// Usage:
//
//	dbsh            # interactive
//	dbsh < script   # batch
//
// Type \help at the prompt for commands.
package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"accelscore/internal/dataset"
	"accelscore/internal/db"
	"accelscore/internal/forest"
	"accelscore/internal/hw"
	"accelscore/internal/model"
	"accelscore/internal/pipeline"
	"accelscore/internal/platform"
	"accelscore/internal/sim"
)

const helpText = `commands:
  \help                               this help
  \tables                             list tables
  \models                             list stored models
  \load iris NAME [ROWS]              create table NAME from IRIS (replicated)
  \load higgs NAME ROWS [SEED]        create table NAME from synthetic HIGGS
  \train MODEL TABLE TREES DEPTH [rf|gbt]
                                      train a random forest (default) or a
                                      gradient-boosted ensemble, store as MODEL
  \describe MODEL                     summarize a stored model
  \dot MODEL [TREE]                   print one tree in Graphviz dot format
  \backends                           list scoring backends
  \save FILE                          persist the database to FILE
  \open FILE                          replace the database with FILE's contents
  \quit                               exit
any other input is executed as SQL, e.g.
  SELECT TOP 5 * FROM iris WHERE petal_width > 1.0
  EXEC sp_score_model @model='m', @data='iris', @backend='FPGA'`

// shell holds the session state.
type shell struct {
	db   *db.Database
	pipe *pipeline.Pipeline
	out  io.Writer
}

func main() {
	tb := platform.New()
	s := &shell{
		db:  db.New(),
		out: os.Stdout,
	}
	s.pipe = &pipeline.Pipeline{
		DB:       s.db,
		Runtime:  hw.DefaultRuntime(),
		Registry: tb.Registry,
		Advisor:  tb.Advisor,
	}
	fmt.Fprintln(s.out, "accelscore mini-DBMS shell — \\help for commands")
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Fprint(s.out, "sql> ")
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line != "" {
			if line == `\quit` || line == `\q` {
				return
			}
			if err := s.dispatch(line); err != nil {
				fmt.Fprintln(s.out, "error:", err)
			}
		}
		fmt.Fprint(s.out, "sql> ")
	}
}

// dispatch routes one input line.
func (s *shell) dispatch(line string) error {
	if strings.HasPrefix(line, `\`) {
		return s.meta(line)
	}
	res, err := s.pipe.ExecQuery(line)
	if err != nil {
		return err
	}
	if res.Predictions != nil {
		fmt.Fprintf(s.out, "scored %d records on %s (simulated %s end-to-end)\n",
			len(res.Predictions), res.Backend, sim.FormatDuration(res.Timeline.Total()))
		fmt.Fprintln(s.out, "breakdown:")
		fmt.Fprint(s.out, res.Timeline.Aggregate())
		return nil
	}
	s.printTable(res.Table, 20)
	return nil
}

// meta executes a backslash command.
func (s *shell) meta(line string) error {
	fields := strings.Fields(line)
	switch fields[0] {
	case `\help`, `\h`:
		fmt.Fprintln(s.out, helpText)
	case `\tables`:
		for _, n := range s.db.TableNames() {
			t, err := s.db.Table(n)
			if err != nil {
				return err
			}
			fmt.Fprintf(s.out, "%-20s %8d rows, %d columns\n", n, t.NumRows(), len(t.Columns))
		}
	case `\models`:
		for _, n := range s.db.ModelNames() {
			fmt.Fprintln(s.out, n)
		}
	case `\backends`:
		for _, n := range s.pipe.Registry.Names() {
			fmt.Fprintln(s.out, n)
		}
	case `\load`:
		return s.load(fields[1:])
	case `\save`:
		if len(fields) != 2 {
			return fmt.Errorf(`usage: \save FILE`)
		}
		if err := s.db.SaveFile(fields[1]); err != nil {
			return err
		}
		fmt.Fprintln(s.out, "saved to", fields[1])
	case `\open`:
		if len(fields) != 2 {
			return fmt.Errorf(`usage: \open FILE`)
		}
		loaded, err := db.LoadFile(fields[1])
		if err != nil {
			return err
		}
		s.db = loaded
		s.pipe.DB = loaded
		fmt.Fprintf(s.out, "opened %s (%d tables)\n", fields[1], len(loaded.TableNames()))
	case `\train`:
		return s.train(fields[1:])
	case `\describe`:
		if len(fields) != 2 {
			return fmt.Errorf(`usage: \describe MODEL`)
		}
		blob, err := s.db.LoadModelBlob(fields[1])
		if err != nil {
			return err
		}
		f, err := model.Unmarshal(blob)
		if err != nil {
			return err
		}
		fmt.Fprintln(s.out, model.Summary(f))
	case `\dot`:
		if len(fields) < 2 {
			return fmt.Errorf(`usage: \dot MODEL [TREE]`)
		}
		idx := 0
		if len(fields) > 2 {
			var err error
			if idx, err = strconv.Atoi(fields[2]); err != nil {
				return fmt.Errorf("bad tree index %q", fields[2])
			}
		}
		blob, err := s.db.LoadModelBlob(fields[1])
		if err != nil {
			return err
		}
		f, err := model.Unmarshal(blob)
		if err != nil {
			return err
		}
		return model.WriteDot(s.out, f, idx)
	default:
		return fmt.Errorf("unknown command %s (\\help for help)", fields[0])
	}
	return nil
}

// load implements \load iris|higgs.
func (s *shell) load(args []string) error {
	if len(args) < 2 {
		return fmt.Errorf(`usage: \load iris NAME [ROWS] | \load higgs NAME ROWS [SEED]`)
	}
	var data *dataset.Dataset
	switch args[0] {
	case "iris":
		data = dataset.Iris()
		if len(args) > 2 {
			rows, err := strconv.Atoi(args[2])
			if err != nil || rows <= 0 {
				return fmt.Errorf("bad row count %q", args[2])
			}
			data = data.Replicate(rows)
		}
	case "higgs":
		if len(args) < 3 {
			return fmt.Errorf(`usage: \load higgs NAME ROWS [SEED]`)
		}
		rows, err := strconv.Atoi(args[2])
		if err != nil || rows <= 0 {
			return fmt.Errorf("bad row count %q", args[2])
		}
		seed := uint64(1)
		if len(args) > 3 {
			v, err := strconv.ParseUint(args[3], 10, 64)
			if err != nil {
				return fmt.Errorf("bad seed %q", args[3])
			}
			seed = v
		}
		data = dataset.Higgs(rows, seed)
	default:
		return fmt.Errorf("unknown dataset %q (iris or higgs)", args[0])
	}
	tbl, err := db.TableFromDataset(args[1], data)
	if err != nil {
		return err
	}
	if err := s.db.CreateTable(tbl); err != nil {
		return err
	}
	fmt.Fprintf(s.out, "created table %s (%d rows)\n", args[1], tbl.NumRows())
	return nil
}

// train implements \train MODEL TABLE TREES DEPTH [rf|gbt].
func (s *shell) train(args []string) error {
	if len(args) != 4 && len(args) != 5 {
		return fmt.Errorf(`usage: \train MODEL TABLE TREES DEPTH [rf|gbt]`)
	}
	tbl, err := s.db.Table(args[1])
	if err != nil {
		return err
	}
	data, err := db.DatasetFromTable(tbl)
	if err != nil {
		return err
	}
	trees, err := strconv.Atoi(args[2])
	if err != nil || trees <= 0 {
		return fmt.Errorf("bad tree count %q", args[2])
	}
	depth, err := strconv.Atoi(args[3])
	if err != nil || depth <= 0 {
		return fmt.Errorf("bad depth %q", args[3])
	}
	family := "rf"
	if len(args) == 5 {
		family = args[4]
	}
	var f *forest.Forest
	switch family {
	case "rf":
		f, err = forest.Train(data, forest.ForestConfig{
			NumTrees:  trees,
			Tree:      forest.TrainConfig{MaxDepth: depth},
			Seed:      1,
			Bootstrap: true,
		})
	case "gbt":
		f, err = forest.TrainBoosted(data, forest.BoostConfig{
			NumTrees: trees,
			MaxDepth: depth,
			Seed:     1,
		})
	default:
		return fmt.Errorf("unknown model family %q (rf or gbt)", family)
	}
	if err != nil {
		return err
	}
	if err := s.db.StoreModel(args[0], f); err != nil {
		return err
	}
	fmt.Fprintf(s.out, "stored %s — %s (training accuracy %.3f)\n",
		args[0], model.Summary(f), f.Accuracy(data))
	return nil
}

// printTable renders at most limit rows of a result table.
func (s *shell) printTable(t *db.Table, limit int) {
	if t == nil {
		return
	}
	for i, c := range t.Columns {
		if i > 0 {
			fmt.Fprint(s.out, " | ")
		}
		fmt.Fprintf(s.out, "%s", c.Name)
	}
	fmt.Fprintln(s.out)
	n := t.NumRows()
	shown := n
	if shown > limit {
		shown = limit
	}
	for r := 0; r < shown; r++ {
		for c, col := range t.Columns {
			if c > 0 {
				fmt.Fprint(s.out, " | ")
			}
			v := t.Cell(r, c)
			switch col.Type {
			case db.Float32Col:
				fmt.Fprintf(s.out, "%g", v.F)
			case db.Int64Col:
				fmt.Fprintf(s.out, "%d", v.I)
			case db.TextCol:
				fmt.Fprint(s.out, v.S)
			case db.BlobCol:
				fmt.Fprintf(s.out, "<blob %dB>", len(v.B))
			}
		}
		fmt.Fprintln(s.out)
	}
	if n > shown {
		fmt.Fprintf(s.out, "... (%d rows total)\n", n)
	} else {
		fmt.Fprintf(s.out, "(%d rows)\n", n)
	}
}
