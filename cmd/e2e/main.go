// Command e2e runs a T-SQL scoring query through the mini-DBMS pipeline end
// to end — training a model, storing it in the database, executing
// EXEC sp_score_model — and prints the Fig. 11 stage breakdown plus the
// backend's own Fig. 7-style component breakdown.
//
// Usage:
//
//	e2e [-dataset IRIS|HIGGS] [-trees N] [-depth N] [-records N]
//	    [-backend NAME|auto] [-tight] [-trace out.json]
package main

import (
	"flag"
	"fmt"
	"os"

	"accelscore/internal/dataset"
	"accelscore/internal/db"
	"accelscore/internal/forest"
	"accelscore/internal/hw"
	"accelscore/internal/obs"
	"accelscore/internal/pipeline"
	"accelscore/internal/platform"
	"accelscore/internal/sim"
)

func main() {
	ds := flag.String("dataset", "IRIS", "dataset: IRIS or HIGGS")
	trees := flag.Int("trees", 32, "number of trees")
	depth := flag.Int("depth", 10, "maximum tree depth")
	records := flag.Int("records", 10000, "records to score")
	backendName := flag.String("backend", "auto", "backend name or 'auto'")
	tight := flag.Bool("tight", false, "use the tightly-integrated (in-process) pipeline")
	tracePath := flag.String("trace", "", "write the query's Chrome trace-event JSON to this file")
	flag.Parse()

	if err := run(*ds, *trees, *depth, *records, *backendName, *tight, *tracePath); err != nil {
		fmt.Fprintln(os.Stderr, "e2e:", err)
		os.Exit(1)
	}
}

func run(ds string, trees, depth, records int, backendName string, tight bool, tracePath string) error {
	var data *dataset.Dataset
	switch ds {
	case "IRIS":
		data = dataset.Iris()
	case "HIGGS":
		data = dataset.Higgs(4000, 1)
	default:
		return fmt.Errorf("unknown dataset %q", ds)
	}

	fmt.Printf("training %d-tree depth-%d random forest on %s...\n", trees, depth, ds)
	f, err := forest.Train(data, forest.ForestConfig{
		NumTrees:  trees,
		Tree:      forest.TrainConfig{MaxDepth: depth},
		Seed:      1,
		Bootstrap: true,
	})
	if err != nil {
		return err
	}
	stats := f.ComputeStats()
	fmt.Printf("model: %d trees, max depth %d, %d nodes, avg path %.1f\n\n",
		stats.Trees, stats.MaxDepth, stats.TotalNodes, stats.AvgPathLength)

	database := db.New()
	scoring := data.Replicate(records)
	tbl, err := db.TableFromDataset("scoring_data", scoring)
	if err != nil {
		return err
	}
	if err := database.CreateTable(tbl); err != nil {
		return err
	}
	if err := database.StoreModel("rf_model", f); err != nil {
		return err
	}

	tb := platform.New()
	runtime := hw.DefaultRuntime()
	if tight {
		runtime = hw.TightlyIntegratedRuntime()
	}
	p := &pipeline.Pipeline{
		DB:       database,
		Runtime:  runtime,
		Registry: tb.Registry,
		Advisor:  tb.Advisor,
	}
	var o *obs.Observer
	if tracePath != "" {
		o = obs.NewObserver()
		p.Obs = o
	}

	query := fmt.Sprintf("EXEC sp_score_model @model = 'rf_model', @data = 'scoring_data', @backend = '%s'", backendName)
	fmt.Println("executing:", query)
	res, err := p.ExecQuery(query)
	if err != nil {
		return err
	}

	fmt.Printf("\nscored %d records on %s (pipeline: %s)\n\n", len(res.Predictions), res.Backend, runtime.Name)
	fmt.Println("end-to-end query breakdown (Fig. 11):")
	fmt.Println(res.Timeline.Aggregate())
	fmt.Println("scoring-stage component breakdown (Fig. 7):")
	fmt.Println(res.ScoringDetail.Aggregate())
	fmt.Printf("simulated end-to-end latency: %s, scoring throughput: %.2f M records/s\n",
		sim.FormatDuration(res.Timeline.Total()),
		sim.Throughput(len(res.Predictions), res.ScoringDetail.Total())/1e6)

	if tracePath != "" {
		tr, ok := o.Tracer.Get(res.TraceID)
		if !ok {
			return fmt.Errorf("trace %q not retained", res.TraceID)
		}
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := tr.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote Chrome trace %s to %s (open in chrome://tracing or Perfetto)\n",
			res.TraceID, tracePath)
	}
	return nil
}
