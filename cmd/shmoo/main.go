// Command shmoo prints the optimal-backend grid of Fig. 1 / Fig. 8: which
// hardware wins for each (record count, tree count) combination and by how
// much.
//
// Usage:
//
//	shmoo [-dataset IRIS|HIGGS] [-depth N]
package main

import (
	"flag"
	"fmt"
	"os"

	"accelscore/internal/experiments"
)

func main() {
	ds := flag.String("dataset", "both", "dataset to sweep: IRIS, HIGGS or both")
	flag.Parse()

	s := experiments.NewSuite()
	shapes := map[string]experiments.DatasetShape{
		"IRIS":  experiments.IrisShape,
		"HIGGS": experiments.HiggsShape,
	}
	var todo []experiments.DatasetShape
	switch *ds {
	case "both":
		todo = []experiments.DatasetShape{experiments.IrisShape, experiments.HiggsShape}
	default:
		shape, ok := shapes[*ds]
		if !ok {
			fmt.Fprintf(os.Stderr, "shmoo: unknown dataset %q (use IRIS or HIGGS)\n", *ds)
			os.Exit(1)
		}
		todo = []experiments.DatasetShape{shape}
	}
	for _, shape := range todo {
		r, err := s.Fig8(shape)
		if err != nil {
			fmt.Fprintln(os.Stderr, "shmoo:", err)
			os.Exit(1)
		}
		fmt.Println(experiments.RenderFig8(r))
	}
}
