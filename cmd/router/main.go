// Command router is the scatter-gather front of the scale-out serving tier.
// It hash-partitions each scoring query's rows across N serve shards (FNV
// over the stable row ordinal; ?tenant= switches to tenant-affine routing),
// scatters one sub-query per partition through per-shard circuit breakers,
// and merges the shard results into a single answer bit-identical to a
// single-node run. A dead shard's partition reroutes to a healthy replica;
// when every route is exhausted the query either fails with a typed partial
// error or (with -partial) degrades to an explicit partial result — never
// silently wrong answers.
//
// Usage:
//
//	router -shards http://localhost:8081,http://localhost:8082 \
//	    [-addr :8090] [-warm iris_rf] [-partial] \
//	    [-breaker-threshold 3] [-breaker-cooldown 250ms] [-conns-per-shard 32] \
//	    [-probe-interval 2s] [-slow-after 0] [-hedge] [-hedge-fraction 0.05] \
//	    [-max-inflight 64] [-shard-inflight 16] [-classes interactive=25ms,batch=500ms]
//
// The shard health state machine (healthy -> degraded -> quarantined ->
// rejoining) always runs on passive per-request signals; -probe-interval
// adds active /healthz probing so a quarantined shard can rejoin without
// traffic. -hedge enables tail-latency hedging (adaptive per-shard P95
// trigger, bounded budget, bit-identical result verification). -max-inflight
// turns on admission control: capacity, priority-class, and deadline-aware
// shedding answer 503 with Retry-After instead of queueing without bound.
//
// Endpoints: /query (?sql= or POST body, ?tenant=), /warm?model=, /healthz,
// /metrics, /debug/queries, /debug/trace/<id>.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"accelscore/internal/obs"
	"accelscore/internal/router"
)

func main() {
	addr := flag.String("addr", ":8090", "listen address")
	shards := flag.String("shards", "",
		"comma-separated shard base URLs, e.g. http://localhost:8081,http://localhost:8082")
	warm := flag.String("warm", "",
		"comma-separated models to warm on every shard at startup (replica-aware cache warming)")
	partial := flag.Bool("partial", false,
		"degrade queries with unreachable partitions to explicit partial results instead of failing")
	breakerThreshold := flag.Int("breaker-threshold", 0,
		"consecutive failures opening a shard's circuit (0 = default 3, negative disables)")
	breakerCooldown := flag.Duration("breaker-cooldown", 0,
		"open-circuit cooldown before a half-open probe (0 = default 250ms)")
	connsPerShard := flag.Int("conns-per-shard", 32,
		"idle HTTP connections kept per shard (size to the expected client concurrency)")
	warmTimeout := flag.Duration("warm-timeout", 10*time.Second, "startup warm fan-out budget")
	probeInterval := flag.Duration("probe-interval", 2*time.Second,
		"active /healthz probe interval for the shard health state machine (0 disables probing)")
	probeTimeout := flag.Duration("probe-timeout", 0, "per-probe timeout (0 = default 1s)")
	slowAfter := flag.Duration("slow-after", 0,
		"sub-query latency counted as a slow (degrading) pass by the health state machine (0 disables)")
	hedge := flag.Bool("hedge", false, "enable tail-latency request hedging")
	hedgeFraction := flag.Float64("hedge-fraction", 0,
		"hedge budget as a fraction of sub-queries (0 = default 0.05)")
	hedgeBurst := flag.Int("hedge-burst", 0, "hedge token-bucket burst depth (0 = default 4)")
	maxInFlight := flag.Int("max-inflight", 0,
		"router-wide concurrent query bound; enables admission control (0 disables)")
	shardInFlight := flag.Int("shard-inflight", 0,
		"per-shard concurrent sub-query bound (0 disables; needs -max-inflight)")
	shardQueue := flag.Int("shard-queue", 0,
		"per-shard sub-query wait queue beyond -shard-inflight before fast-fail reroute (0 = 2x)")
	classes := flag.String("classes", "",
		"admission priority classes as SLO objectives, e.g. interactive=25ms,batch=500ms"+
			" (tightest objective sheds last)")
	flag.Parse()

	urls := splitList(*shards)
	if len(urls) == 0 {
		log.Fatal("router: -shards is required (comma-separated serve base URLs)")
	}

	// One shared client: the connection pool is reused across shards and
	// queries, so a steady scatter load never thrashes TCP handshakes.
	client := &http.Client{
		Transport: router.SharedTransport(*connsPerShard),
		Timeout:   120 * time.Second,
	}
	backends := make([]router.Backend, len(urls))
	for i, u := range urls {
		shard, err := router.NewHTTPShard(fmt.Sprintf("shard-%d", i), u, client)
		if err != nil {
			log.Fatalf("router: shard %d: %v", i, err)
		}
		backends[i] = shard
	}

	cfg := router.Config{
		Backends:         backends,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
		AllowPartial:     *partial,
		Obs:              obs.NewObserver(),
		WarmModels:       splitList(*warm),
		WarmTimeout:      *warmTimeout,
		Health: &router.HealthConfig{
			ProbeInterval: *probeInterval,
			ProbeTimeout:  *probeTimeout,
			SlowAfter:     *slowAfter,
		},
	}
	if *hedge {
		cfg.Hedge = &router.HedgeConfig{MaxFraction: *hedgeFraction, Burst: *hedgeBurst}
	}
	if *maxInFlight > 0 || *shardInFlight > 0 || *classes != "" {
		objs, err := obs.ParseSLOSpec(*classes)
		if err != nil {
			log.Fatalf("router: -classes: %v", err)
		}
		cfg.Admission = &router.AdmissionConfig{
			MaxInFlight:   *maxInFlight,
			ShardInFlight: *shardInFlight,
			ShardQueue:    *shardQueue,
			Classes:       objs,
		}
	}
	r, err := router.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer r.Close()
	log.Printf("router: %d shards: %s", len(urls), strings.Join(urls, ", "))

	srv := &http.Server{
		Addr:              *addr,
		Handler:           withLogging(router.Handler(r)),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      120 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Printf("accelscore router listening on %s", *addr)
		errCh <- srv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
		stop()
		log.Printf("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("router: %v", err)
		}
	}
}

// splitList splits a comma-separated flag, dropping empty entries.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// statusWriter captures the response code for the request log.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// withLogging logs every request with its status and latency.
func withLogging(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(sw, r)
		log.Printf("%s %s %d %v", r.Method, r.URL.Path, sw.code, time.Since(start).Round(time.Microsecond))
	})
}
