// Command modelinfo works with RFX model files on disk: train new models,
// inspect stored ones, export Graphviz renderings, and validate blobs.
//
// Usage:
//
//	modelinfo train -o model.rfx [-dataset IRIS|HIGGS] [-trees N] [-depth N] [-family rf|gbt]
//	modelinfo info  model.rfx
//	modelinfo dot   model.rfx [-tree N]
//	modelinfo validate model.rfx
package main

import (
	"flag"
	"fmt"
	"os"

	"accelscore/internal/dataset"
	"accelscore/internal/forest"
	"accelscore/internal/model"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "train":
		err = cmdTrain(os.Args[2:])
	case "info":
		err = cmdInfo(os.Args[2:])
	case "dot":
		err = cmdDot(os.Args[2:])
	case "validate":
		err = cmdValidate(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "modelinfo:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  modelinfo train -o FILE [-dataset IRIS|HIGGS] [-trees N] [-depth N] [-family rf|gbt]
  modelinfo info FILE
  modelinfo dot FILE [-tree N]
  modelinfo validate FILE`)
}

func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	out := fs.String("o", "", "output RFX file (required)")
	ds := fs.String("dataset", "IRIS", "training dataset: IRIS or HIGGS")
	trees := fs.Int("trees", 16, "number of trees")
	depth := fs.Int("depth", 10, "maximum depth")
	family := fs.String("family", "rf", "model family: rf or gbt")
	seed := fs.Uint64("seed", 1, "training seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("train requires -o FILE")
	}
	var data *dataset.Dataset
	switch *ds {
	case "IRIS":
		data = dataset.Iris()
	case "HIGGS":
		data = dataset.Higgs(4000, *seed)
	default:
		return fmt.Errorf("unknown dataset %q", *ds)
	}
	var f *forest.Forest
	var err error
	switch *family {
	case "rf":
		f, err = forest.Train(data, forest.ForestConfig{
			NumTrees:  *trees,
			Tree:      forest.TrainConfig{MaxDepth: *depth},
			Seed:      *seed,
			Bootstrap: true,
		})
	case "gbt":
		f, err = forest.TrainBoosted(data, forest.BoostConfig{
			NumTrees: *trees, MaxDepth: *depth, Seed: *seed,
		})
	default:
		return fmt.Errorf("unknown family %q", *family)
	}
	if err != nil {
		return err
	}
	blob, err := model.Marshal(f)
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d bytes) — %s, training accuracy %.3f\n",
		*out, len(blob), model.Summary(f), f.Accuracy(data))
	return nil
}

func loadModel(path string) (*forest.Forest, []byte, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	f, err := model.Unmarshal(blob)
	if err != nil {
		return nil, nil, err
	}
	return f, blob, nil
}

func cmdInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("info requires exactly one FILE")
	}
	f, blob, err := loadModel(fs.Arg(0))
	if err != nil {
		return err
	}
	stats := f.ComputeStats()
	fmt.Println(model.Summary(f))
	fmt.Printf("blob size: %d bytes\n", len(blob))
	fmt.Printf("avg path length: %.2f\n", stats.AvgPathLength)
	fmt.Printf("features: %v\n", f.FeatureNames)
	fmt.Printf("classes: %v\n", f.ClassNames)
	if f.Kind == forest.Boosted {
		fmt.Printf("base score (log-odds): %.4f\n", f.BaseScore)
	}
	fmt.Println("\ntop features by importance:")
	for i, r := range f.RankedImportance() {
		if i == 5 {
			break
		}
		fmt.Printf("  %-28s %.3f\n", r.Name, r.Importance)
	}
	return nil
}

func cmdDot(args []string) error {
	fs := flag.NewFlagSet("dot", flag.ExitOnError)
	tree := fs.Int("tree", 0, "tree index to render")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("dot requires exactly one FILE")
	}
	f, _, err := loadModel(fs.Arg(0))
	if err != nil {
		return err
	}
	return model.WriteDot(os.Stdout, f, *tree)
}

func cmdValidate(args []string) error {
	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("validate requires exactly one FILE")
	}
	f, blob, err := loadModel(fs.Arg(0))
	if err != nil {
		return err
	}
	if err := f.Validate(); err != nil {
		return err
	}
	fmt.Printf("%s: valid RFX blob (%d bytes, CRC ok) — %s\n", fs.Arg(0), len(blob), model.Summary(f))
	return nil
}
