// Shard-side endpoints of the scale-out serving tier. A serve process acts
// as one data-symmetric shard: the router POSTs pre-validated wire requests
// (with a hash partition assigned) to /score, warms the model cache through
// /warm, and probes /healthz. SQL is parsed exactly once, at the router —
// shards execute the structured request directly through the concurrent
// executor, keeping admission control and coalescing on the shard-local
// scoring path.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"log"
	"net/http"
	osexec "os/exec"
	"strings"
	"sync"

	"accelscore/internal/exec"
	"accelscore/internal/router"
)

// handleScore executes one routed sub-query. The body is a router wire
// Request; the response is a router wire Result — on failure with Error and
// a Code that tells the router whether rerouting to another replica can
// help (bad_request never reroutes; rejected/timeout may).
func (s *server) handleScore(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeScoreError(w, http.StatusMethodNotAllowed, router.CodeBadRequest,
			"POST a JSON score request")
		return
	}
	var wreq router.Request
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&wreq); err != nil {
		writeScoreError(w, http.StatusBadRequest, router.CodeBadRequest,
			"decoding request: "+err.Error())
		return
	}
	sreq, err := wreq.ScoreRequest()
	if err != nil {
		writeScoreError(w, http.StatusBadRequest, router.CodeBadRequest, err.Error())
		return
	}
	res, err := s.exec.SubmitScore(r.Context(), sreq)
	if err != nil {
		code, status := classifyScoreError(err)
		writeScoreError(w, status, code, err.Error())
		return
	}
	out, err := router.WireResult(s.shardID, sreq.Agg, res)
	if err != nil {
		writeScoreError(w, http.StatusInternalServerError, router.CodeInternal, err.Error())
		return
	}
	writeScoreJSON(w, http.StatusOK, out)
}

// classifyScoreError maps an executor error to its wire code and HTTP
// status. Unrecognized errors are query-level (unknown model, bad filter):
// on data-symmetric replicas they fail identically everywhere, so the
// router must not reroute them into a breaker storm.
func classifyScoreError(err error) (code string, status int) {
	switch {
	case errors.Is(err, exec.ErrRejected), errors.Is(err, exec.ErrClosed):
		return router.CodeRejected, http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return router.CodeTimeout, http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return router.CodeCanceled, StatusClientClosedRequest
	default:
		return router.CodeBadRequest, http.StatusBadRequest
	}
}

func writeScoreError(w http.ResponseWriter, status int, code, msg string) {
	writeScoreJSON(w, status, &router.Result{Error: msg, Code: code})
}

func writeScoreJSON(w http.ResponseWriter, status int, res *router.Result) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(res); err != nil {
		log.Printf("score response: %v", err)
	}
}

// handleWarm pre-loads ?model= into the shard's compiled-model cache so the
// first routed sub-query does not pay model resolution behind the gather
// barrier. The response status field is the cache outcome: "hit" (already
// resident), "miss" (loaded now) or "nocache".
func (s *server) handleWarm(w http.ResponseWriter, r *http.Request) {
	model := r.URL.Query().Get("model")
	if model == "" {
		writeWarmJSON(w, http.StatusBadRequest, warmPayload{Error: "pass ?model="})
		return
	}
	status, err := s.demo.Pipe.WarmModel(model)
	if err != nil {
		writeWarmJSON(w, http.StatusNotFound, warmPayload{Model: model, Error: err.Error()})
		return
	}
	writeWarmJSON(w, http.StatusOK, warmPayload{Model: model, Status: status})
}

// warmPayload mirrors the /warm JSON contract the router's HTTPShard reads.
type warmPayload struct {
	Model  string `json:"model"`
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`
}

func writeWarmJSON(w http.ResponseWriter, status int, p warmPayload) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(p); err != nil {
		log.Printf("warm response: %v", err)
	}
}

// gitDescribe identifies the build for /healthz, memoized: the tree does
// not change under a running server, and health probes are frequent.
var gitDescribe = sync.OnceValue(func() string {
	out, err := osexec.Command("git", "describe", "--always", "--dirty").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
})
