// Command serve exposes the reproduction as a small web dashboard: each
// paper figure regenerates on request and renders as preformatted text, so
// results can be browsed without a terminal.
//
// Usage:
//
//	serve [-addr :8080]
package main

import (
	"flag"
	"fmt"
	"html/template"
	"log"
	"net/http"
	"strings"
	"time"

	"accelscore/internal/dataset"
	"accelscore/internal/db"
	"accelscore/internal/experiments"
	"accelscore/internal/forest"
	"accelscore/internal/hw"
	"accelscore/internal/pipeline"
	"accelscore/internal/platform"
)

var pageTmpl = template.Must(template.New("page").Parse(`<!DOCTYPE html>
<html>
<head>
<title>accelscore — {{.Title}}</title>
<style>
body { font-family: sans-serif; margin: 2rem; max-width: 100rem; }
pre  { background: #f6f6f6; padding: 1rem; overflow-x: auto; }
nav a { margin-right: 1rem; }
</style>
</head>
<body>
<h1>accelscore</h1>
<p>Reproduction of "Hardware Acceleration for DBMS ML Scoring: Is It Worth
the Overheads?" (ISPASS 2021). Every figure below is regenerated live from
the calibrated simulators.</p>
<nav>{{range .Nav}}<a href="{{.Href}}">{{.Label}}</a>{{end}}</nav>
<h2>{{.Title}}</h2>
<pre>{{.Body}}</pre>
</body>
</html>`))

type navEntry struct {
	Href  string
	Label string
}

var nav = []navEntry{
	{"/fig/headline", "Headlines"},
	{"/fig/7", "Fig. 7"},
	{"/fig/8", "Fig. 8"},
	{"/fig/9", "Fig. 9"},
	{"/fig/10", "Fig. 10"},
	{"/fig/11", "Fig. 11"},
	{"/fig/ext", "Extensions"},
	{"/fig/hotpath", "Hot path"},
}

// server regenerates figures on demand.
type server struct {
	suite *experiments.Suite
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()
	s := &server{suite: experiments.NewSuite()}
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/fig/", s.handleFig)
	log.Printf("accelscore dashboard listening on %s", *addr)
	log.Fatal(http.ListenAndServe(*addr, mux))
}

func (s *server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	s.render(w, "Index", "Pick a figure from the navigation bar above.\n\n"+
		"Figures 7-11 mirror the paper's evaluation section; Extensions holds\n"+
		"the dynamic-scheduling, LogCA and calibration-sensitivity studies.")
}

func (s *server) handleFig(w http.ResponseWriter, r *http.Request) {
	fig := strings.TrimPrefix(r.URL.Path, "/fig/")
	body, err := s.build(fig)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	s.render(w, "Figure "+fig, body)
}

// build regenerates one figure's text rendering.
func (s *server) build(fig string) (string, error) {
	switch fig {
	case "7":
		rows, err := s.suite.Fig7()
		if err != nil {
			return "", err
		}
		return experiments.RenderFig7(rows), nil
	case "8":
		var sb strings.Builder
		for _, shape := range []experiments.DatasetShape{experiments.IrisShape, experiments.HiggsShape} {
			res, err := s.suite.Fig8(shape)
			if err != nil {
				return "", err
			}
			sb.WriteString(experiments.RenderFig8(res))
			sb.WriteString("\n")
		}
		return sb.String(), nil
	case "9":
		panels, err := s.suite.Fig9()
		if err != nil {
			return "", err
		}
		return experiments.RenderFig9(panels), nil
	case "10":
		panels, err := s.suite.Fig10()
		if err != nil {
			return "", err
		}
		return experiments.RenderFig10(panels), nil
	case "11":
		rows, err := s.suite.Fig11()
		if err != nil {
			return "", err
		}
		return experiments.RenderFig11(rows), nil
	case "headline":
		hs, err := s.suite.Headlines()
		if err != nil {
			return "", err
		}
		return experiments.RenderHeadlines(hs), nil
	case "ext":
		sc, err := s.suite.SchedulerExperiment(300, 1)
		if err != nil {
			return "", err
		}
		fits, err := s.suite.LogCAExperiment()
		if err != nil {
			return "", err
		}
		sens, err := s.suite.Sensitivity([]float64{0.5, 1, 2})
		if err != nil {
			return "", err
		}
		return experiments.RenderScheduler(sc) + "\n" +
			experiments.RenderLogCA(fits) + "\n" +
			experiments.RenderSensitivity(sens), nil
	case "hotpath":
		return buildHotPath()
	default:
		return "", fmt.Errorf("unknown figure %q", fig)
	}
}

// buildHotPath demonstrates the compiled-model cache live: one cold query
// against a fresh pipeline, then repeated warm queries against the same
// pipeline, with the per-stage simulated breakdown, measured wall-clock cost
// and the cache's hit/miss/eviction counters.
func buildHotPath() (string, error) {
	tb := platform.New()
	d := db.New()
	data := dataset.Iris().Replicate(2000)
	tbl, err := db.TableFromDataset("iris", data)
	if err != nil {
		return "", err
	}
	if err := d.CreateTable(tbl); err != nil {
		return "", err
	}
	f, err := forest.Train(dataset.Iris(), forest.ForestConfig{
		NumTrees:  32,
		Tree:      forest.TrainConfig{MaxDepth: 10},
		Seed:      1,
		Bootstrap: true,
	})
	if err != nil {
		return "", err
	}
	if err := d.StoreModel("iris_rf", f); err != nil {
		return "", err
	}
	p := &pipeline.Pipeline{DB: d, Runtime: hw.DefaultRuntime(), Registry: tb.Registry,
		Cache: pipeline.NewModelCache(8)}

	const query = "EXEC sp_score_model @model='iris_rf', @data='iris', @backend='CPU_SKLearn'"
	var sb strings.Builder
	sb.WriteString("Compiled-model cache on repeated scoring queries\n")
	sb.WriteString("query: " + query + "\n\n")
	for i := 0; i < 4; i++ {
		t0 := time.Now()
		res, err := p.ExecQuery(query)
		if err != nil {
			return "", err
		}
		wall := time.Since(t0)
		label := "cold (cache miss)"
		if res.CacheHit {
			label = "warm (cache hit)"
		}
		fmt.Fprintf(&sb, "query %d: %-17s wall-clock %-12v simulated model-preproc %-12v simulated total %v\n",
			i+1, label, wall.Round(time.Microsecond),
			res.Timeline.Component(pipeline.StageModelPreproc),
			res.Timeline.Total().Round(time.Microsecond))
	}
	sb.WriteString("\ncache counters: " + p.Cache.Stats().String() + "\n")
	sb.WriteString("\nOn a hit the query skips blob deserialization, stats computation and\n" +
		"kernel lowering; model pre-processing collapses to a checksum check and\n" +
		"the input table is served from the version-keyed dataset snapshot.\n")
	return sb.String(), nil
}

func (s *server) render(w http.ResponseWriter, title, body string) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	err := pageTmpl.Execute(w, struct {
		Title string
		Body  string
		Nav   []navEntry
	}{Title: title, Body: body, Nav: nav})
	if err != nil {
		log.Printf("render: %v", err)
	}
}
