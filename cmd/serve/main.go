// Command serve exposes the reproduction as a small web dashboard: each
// paper figure regenerates on request and renders as preformatted text, so
// results can be browsed without a terminal. The server is also the live
// observability surface: every query it runs is metered and traced, and the
// telemetry is exported on /metrics (Prometheus text format), /debug/queries
// (recent queries with stage breakdowns) and /debug/trace/<id> (Chrome
// trace-event JSON, loadable in chrome://tracing or Perfetto).
//
// Scoring queries on /query run through the concurrent executor: a bounded
// admission queue (full queue → 503), a worker pool, and request coalescing
// that merges same-model queries arriving within -coalesce into one
// pipeline run.
//
// Usage:
//
//	serve [-addr :8080] [-workers N] [-queue N] [-coalesce 2ms] [-maxbatch 8]
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"html/template"
	"io"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"accelscore/internal/db"
	"accelscore/internal/exec"
	"accelscore/internal/experiments"
	"accelscore/internal/faults"
	"accelscore/internal/obs"
	"accelscore/internal/storage"
)

// StatusClientClosedRequest is nginx's non-standard 499: the client
// disconnected before the response was ready. It keeps canceled queries
// distinguishable from timeouts (504) in logs and metrics.
const StatusClientClosedRequest = 499

var pageTmpl = template.Must(template.New("page").Parse(`<!DOCTYPE html>
<html>
<head>
<title>accelscore — {{.Title}}</title>
<style>
body { font-family: sans-serif; margin: 2rem; max-width: 100rem; }
pre  { background: #f6f6f6; padding: 1rem; overflow-x: auto; }
nav a { margin-right: 1rem; }
</style>
</head>
<body>
<h1>accelscore</h1>
<p>Reproduction of "Hardware Acceleration for DBMS ML Scoring: Is It Worth
the Overheads?" (ISPASS 2021). Every figure below is regenerated live from
the calibrated simulators.</p>
<nav>{{range .Nav}}<a href="{{.Href}}">{{.Label}}</a>{{end}}</nav>
<h2>{{.Title}}</h2>
<pre>{{.Body}}</pre>
</body>
</html>`))

type navEntry struct {
	Href  string
	Label string
}

var nav = []navEntry{
	{"/fig/headline", "Headlines"},
	{"/fig/7", "Fig. 7"},
	{"/fig/8", "Fig. 8"},
	{"/fig/9", "Fig. 9"},
	{"/fig/10", "Fig. 10"},
	{"/fig/11", "Fig. 11"},
	{"/fig/ext", "Extensions"},
	{"/fig/hotpath", "Hot path"},
	{"/query", "Run query"},
	{"/debug/queries", "Recent queries"},
	{"/metrics", "Metrics"},
}

// server regenerates figures on demand and runs live queries against a
// persistent demo environment. Scoring queries go through the concurrent
// executor (admission control, worker pool, request coalescing) and hold NO
// server lock — mu only serializes demo-suite figure regeneration, which
// mutates the suite's memoized state. The obs.Observer is concurrency-safe
// and shared by both pipelines, so /metrics and /debug read it without any
// lock.
type server struct {
	mu    sync.Mutex // guards suite mutation in build(); never held across scoring
	suite *experiments.Suite
	demo  *experiments.Demo
	exec  *exec.Executor
	obs   *obs.Observer

	// store is the durability engine when -data-dir is set; nil means the
	// classic in-memory mode. The demo database is journaled through it, so
	// every /sql write is on disk before the response goes out.
	store *storage.Store

	// slo classifies finished scoring queries against per-class latency
	// objectives (-slo flag); nil disables SLO accounting.
	slo *obs.SLOEngine
	// runtimeC is the background runtime-health sampler; nil when disabled.
	runtimeC *obs.RuntimeCollector

	// demoRecords sizes freshly built hot-path demos (tests shrink it).
	demoRecords int

	// shardID names this process in the scale-out tier (-shard-id); it tags
	// /score results and /healthz so the router and operators can tell
	// replicas apart. Empty outside a sharded deployment.
	shardID string
	// fsync is the WAL sync policy spelling for /healthz ("disabled" when
	// running in memory).
	fsync string
}

// obsConfig bundles the observability knobs of newServer.
type obsConfig struct {
	// SLOSpec is the -slo flag value ("interactive=50ms,batch=2s"); empty
	// disables the SLO engine.
	SLOSpec string
	// Attribution enables per-stage resource measurement on the scoring path.
	Attribution bool
	// RuntimeSample is the runtime-health sampling period; 0 disables the
	// collector.
	RuntimeSample time.Duration
	// ShardID names this process in a scale-out deployment (-shard-id).
	ShardID string
}

// newServer builds the shared state and the routed handler. demoRecords <= 0
// means the default demo size; zero-valued cfg fields get executor defaults.
// faultSpec, when non-empty, arms a deterministic fault-injection plan (see
// internal/faults) on the demo pipeline with the given seed. storeCfg, when
// non-nil, opens (recovering if needed) a durable store and journals the
// demo database through it.
func newServer(demoRecords int, cfg exec.Config, faultSpec string, faultSeed uint64, storeCfg *storage.Config, oc obsConfig) (*server, http.Handler, error) {
	o := obs.NewObserver()
	o.Attribution = oc.Attribution
	var demo *experiments.Demo
	var store *storage.Store
	if storeCfg != nil {
		sc := *storeCfg
		sc.Metrics = o.Metrics()
		st, d, err := storage.Open(sc)
		if err != nil {
			return nil, nil, fmt.Errorf("opening data dir %s: %w", sc.Dir, err)
		}
		ri := st.Recovery()
		log.Printf("storage: recovered %s (snapshot=%v lsn=%d replayed=%d dropped=%dB)",
			sc.Dir, ri.SnapshotLoaded, ri.LastLSN, ri.ReplayedRecords, ri.DroppedWALBytes)
		demo, err = experiments.NewDemoOn(d, demoRecords)
		if err != nil {
			st.Close()
			return nil, nil, err
		}
		store = st
	} else {
		var err error
		demo, err = experiments.NewDemo(demoRecords)
		if err != nil {
			return nil, nil, err
		}
	}
	s := &server{
		suite:       experiments.NewSuite(),
		demo:        demo,
		obs:         o,
		store:       store,
		demoRecords: demoRecords,
		shardID:     oc.ShardID,
		fsync:       "disabled",
	}
	if storeCfg != nil {
		s.fsync = storeCfg.Sync.String()
	}
	s.suite.Pipe.Obs = s.obs
	s.demo.Pipe.Obs = s.obs
	if faultSpec != "" {
		rules, err := faults.Parse(faultSpec)
		if err != nil {
			return nil, nil, err
		}
		inj, err := faults.NewInjector(faultSeed, rules)
		if err != nil {
			return nil, nil, err
		}
		s.demo.Pipe.Faults = exec.WireFaultMetrics(inj, s.obs.Metrics())
	}
	s.exec = exec.New(demo.Pipe, cfg)
	if oc.SLOSpec != "" {
		objs, err := obs.ParseSLOSpec(oc.SLOSpec)
		if err != nil {
			return nil, nil, err
		}
		s.slo = obs.NewSLOEngine(o.Metrics(), objs, obs.DefaultSLOTarget)
	}
	if oc.RuntimeSample > 0 {
		s.runtimeC = obs.StartRuntimeCollector(o.Metrics(), oc.RuntimeSample)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/fig/", s.handleFig)
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/sql", s.handleSQL)
	mux.HandleFunc("/score", s.handleScore)
	mux.HandleFunc("/warm", s.handleWarm)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/queries", s.handleDebugQueries)
	mux.HandleFunc("/debug/trace/", s.handleDebugTrace)
	// net/http/pprof under the same logging middleware and bounded route
	// labels as everything else — the continuous-profiling surface: live CPU
	// profiles, heap snapshots and execution traces from a serving process.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s, s.withLogging(mux), nil
}

// Close stops the runtime sampler and releases the durable store, if any.
// Call after the executor drains so no scoring query races the WAL teardown.
func (s *server) Close() error {
	if s.runtimeC != nil {
		s.runtimeC.Stop()
		s.runtimeC = nil
	}
	if s.store == nil {
		return nil
	}
	return s.store.Close()
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "concurrent query workers (0 = GOMAXPROCS)")
	queueDepth := flag.Int("queue", 64, "admission queue depth; beyond it queries get 503")
	coalesce := flag.Duration("coalesce", 2*time.Millisecond,
		"request-coalescing window for same-model scoring queries (0 disables)")
	maxBatch := flag.Int("maxbatch", 8, "max queries merged into one coalesced scoring run")
	deadline := flag.Duration("deadline", 0,
		"default per-query deadline (0 = none); an @timeout in the SQL or ?timeout= on /query overrides it")
	faultSpec := flag.String("faults", "",
		"deterministic fault-injection plan, e.g. 'CPU_SKLearn:invoke:busy:p=0.2;FPGA:compute:hang=50ms:once=3'")
	faultSeed := flag.Uint64("fault-seed", 1, "fault-injection RNG seed")
	dataDir := flag.String("data-dir", "",
		"durable data directory (snapshot + WAL); empty runs fully in memory")
	fsync := flag.String("fsync", "always",
		"WAL sync policy: always (fsync per commit), batch (group commit), none (benchmarks only)")
	fsyncWindow := flag.Duration("fsync-window", 2*time.Millisecond,
		"group-commit window for -fsync=batch")
	compactBytes := flag.Int64("compact-bytes", 0,
		"WAL size triggering snapshot compaction (0 = default 64MiB, negative disables)")
	demoRecords := flag.Int("demo-records", 0, "demo table rows (0 = default 2000)")
	sloSpec := flag.String("slo", "",
		"per-class latency objectives, e.g. 'interactive=50ms,batch=2s' (empty disables SLO accounting)")
	attrib := flag.Bool("attrib", true,
		"measure per-stage CPU/allocation attribution on every scoring query")
	runtimeSample := flag.Duration("runtime-sample", obs.DefaultRuntimeSampleInterval,
		"runtime health (GC, heap, goroutines, scheduler latency) sampling period; 0 disables")
	shardID := flag.String("shard-id", "",
		"shard name in a scale-out tier; tags /score results and /healthz")
	paceScale := flag.Float64("pace-scale", 0,
		"pace scoring batches to this multiple of their simulated total (0 disables); "+
			"with -workers 1 each shard behaves like one simulated device")
	flag.Parse()

	var storeCfg *storage.Config
	if *dataDir != "" {
		policy, err := storage.ParseSyncPolicy(*fsync)
		if err != nil {
			log.Fatal(err)
		}
		storeCfg = &storage.Config{
			Dir:          *dataDir,
			Sync:         policy,
			SyncWindow:   *fsyncWindow,
			CompactBytes: *compactBytes,
		}
	}

	s, handler, err := newServer(*demoRecords, exec.Config{
		Workers:         *workers,
		QueueDepth:      *queueDepth,
		CoalesceWindow:  *coalesce,
		MaxBatch:        *maxBatch,
		DefaultDeadline: *deadline,
		PaceScale:       *paceScale,
	}, *faultSpec, *faultSeed, storeCfg, obsConfig{
		SLOSpec:       *sloSpec,
		Attribution:   *attrib,
		RuntimeSample: *runtimeSample,
		ShardID:       *shardID,
	})
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Printf("accelscore dashboard listening on %s", *addr)
		errCh <- srv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
		stop()
		log.Printf("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		// The HTTP server has stopped accepting requests; now drain the
		// executor — stop admission, flush coalescing windows, wait for
		// in-flight scoring (the remaining shutdown budget aborts
		// stragglers).
		if err := s.exec.Close(shutdownCtx); err != nil {
			log.Printf("executor drain: %v", err)
		}
		// With the executor drained no query can reach the database, so the
		// durable store can flush its final fsync and release the WAL.
		if err := s.Close(); err != nil {
			log.Printf("store close: %v", err)
		}
		if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("serve: %v", err)
		}
	}
}

// HTTP telemetry metric names.
const (
	// MetricHTTPRequestsTotal counts requests by route and status code.
	MetricHTTPRequestsTotal = "accelscore_http_requests_total"
	// MetricHTTPRequestSeconds is the request latency histogram by route.
	MetricHTTPRequestSeconds = "accelscore_http_request_seconds"
)

// statusWriter captures the response code for logging and metrics.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// routeLabel maps a request path to a bounded metric label so an attacker
// probing random URLs cannot blow up metric cardinality.
func routeLabel(path string) string {
	switch {
	case path == "/":
		return "/"
	case path == "/query":
		return "/query"
	case path == "/sql":
		return "/sql"
	case path == "/score":
		return "/score"
	case path == "/warm":
		return "/warm"
	case path == "/healthz":
		return "/healthz"
	case path == "/metrics":
		return "/metrics"
	case path == "/debug/queries":
		return "/debug/queries"
	case strings.HasPrefix(path, "/debug/trace/"):
		return "/debug/trace/:id"
	case strings.HasPrefix(path, "/debug/pprof"):
		// One label for the whole pprof tree: profile names are bounded but
		// there is no reason to spend a series per profile.
		return "/debug/pprof/:profile"
	case strings.HasPrefix(path, "/fig/"):
		return "/fig/:fig"
	default:
		return "other"
	}
}

// withLogging wraps the mux with request logging and HTTP-level metrics.
func (s *server) withLogging(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(sw, r)
		elapsed := time.Since(start)
		route := routeLabel(r.URL.Path)
		s.obs.Metrics().Counter(MetricHTTPRequestsTotal,
			"HTTP requests served, by route and status code.",
			"route", route, "code", fmt.Sprint(sw.code)).Inc()
		s.obs.Metrics().Histogram(MetricHTTPRequestSeconds,
			"HTTP request latency in seconds, by route.",
			obs.DefBuckets, "route", route).Observe(elapsed.Seconds())
		log.Printf("%s %s %d %v", r.Method, r.URL.Path, sw.code, elapsed.Round(time.Microsecond))
	})
}

func (s *server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	s.render(w, "Index", "Pick a figure from the navigation bar above.\n\n"+
		"Figures 7-11 mirror the paper's evaluation section; Extensions holds\n"+
		"the dynamic-scheduling, LogCA and calibration-sensitivity studies.\n\n"+
		"Observability: \"Run query\" scores the demo table through the\n"+
		"instrumented pipeline; /metrics exposes Prometheus counters and\n"+
		"latency histograms; /debug/queries lists recent queries with their\n"+
		"per-stage breakdowns and downloadable Chrome traces.")
}

func (s *server) handleFig(w http.ResponseWriter, r *http.Request) {
	fig := strings.TrimPrefix(r.URL.Path, "/fig/")
	body, err := s.build(fig)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	s.render(w, "Figure "+fig, body)
}

// handleQuery runs the canonical demo scoring query through the concurrent
// executor — no server lock — under the REQUEST's context: the client
// disconnecting cancels queued work (499), a ?timeout= duration becomes the
// query's @timeout and maps expiry to 504, and a full admission queue sheds
// the request with 503. Concurrent requests for the same model may coalesce
// into one pipeline run.
func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	sql := experiments.DemoQuery
	if to := r.URL.Query().Get("timeout"); to != "" {
		d, err := time.ParseDuration(to)
		if err != nil || d <= 0 {
			http.Error(w, fmt.Sprintf("bad timeout %q: want a positive Go duration like 50ms", to),
				http.StatusBadRequest)
			return
		}
		sql += fmt.Sprintf(", @timeout='%s'", d)
	}
	class := r.URL.Query().Get("class")
	if class == "" {
		class = "default"
	}
	queryStart := time.Now()
	res, err := s.exec.Submit(r.Context(), sql)
	good := s.slo.Observe(class, time.Since(queryStart), err == nil)
	if err != nil {
		switch {
		case errors.Is(err, exec.ErrRejected), errors.Is(err, exec.ErrClosed):
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
		case errors.Is(err, context.DeadlineExceeded):
			http.Error(w, err.Error(), http.StatusGatewayTimeout)
		case errors.Is(err, context.Canceled):
			// The client is gone; the status exists for logs and metrics.
			http.Error(w, err.Error(), StatusClientClosedRequest)
		default:
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	var sb strings.Builder
	sb.WriteString("query: " + sql + "\n\n")
	fmt.Fprintf(&sb, "backend          %s\n", res.Backend)
	if res.FallbackFrom != "" {
		fmt.Fprintf(&sb, "degraded from    %s (%s)\n", res.FallbackFrom, res.FallbackReason)
	}
	if res.Retries > 0 {
		fmt.Fprintf(&sb, "retries          %d\n", res.Retries)
	}
	fmt.Fprintf(&sb, "records scored   %d\n", len(res.Predictions))
	fmt.Fprintf(&sb, "model cache      hit=%v\n", res.CacheHit)
	fmt.Fprintf(&sb, "coalesced batch  %d\n", res.BatchSize)
	fmt.Fprintf(&sb, "simulated total  %v\n", res.Timeline.Total().Round(time.Microsecond))
	if s.slo != nil {
		verdict := "bad (over objective)"
		if good {
			verdict = "good (within objective)"
		}
		fmt.Fprintf(&sb, "slo class        %s: %s\n", class, verdict)
	}
	fmt.Fprintf(&sb, "trace            %s (download: /debug/trace/%s)\n", res.TraceID, res.TraceID)
	sb.WriteString("\nsimulated per-stage breakdown (Fig. 11 stages):\n")
	for _, row := range res.Timeline.Aggregate().Rows {
		fmt.Fprintf(&sb, "  %-28s %v\n", row.Name, row.Duration)
	}
	if len(res.Attribution) > 0 {
		sb.WriteString("\nmeasured per-stage attribution (cpu / alloc / moved):\n")
		for _, c := range res.Attribution {
			fmt.Fprintf(&sb, "  %-28s cpu=%-10v alloc=%dB/%d objs moved=%dB\n",
				c.Stage, c.CPUTime.Round(time.Microsecond), c.AllocBytes, c.AllocObjects, c.BytesMoved)
		}
		tot := res.Attribution.Total()
		fmt.Fprintf(&sb, "  %-28s cpu=%-10v alloc=%dB/%d objs moved=%dB\n",
			"total", tot.CPUTime.Round(time.Microsecond), tot.AllocBytes, tot.AllocObjects, tot.BytesMoved)
	}
	sb.WriteString("\nRe-run this page to watch the warm path: the model cache hit flips\n" +
		"to true and model pre-processing collapses to checksum cost. The\n" +
		"/metrics page accumulates every run.")
	s.render(w, "Run query", sb.String())
}

// sqlResponse is the JSON envelope for /sql. For SELECT statements Columns,
// Types and Rows carry the result table; for DML they are empty and OK
// acknowledges that the statement is applied — and, when a durable store is
// attached, already on disk per the -fsync policy.
type sqlResponse struct {
	OK      bool     `json:"ok"`
	Error   string   `json:"error,omitempty"`
	Columns []string `json:"columns,omitempty"`
	Types   []string `json:"types,omitempty"`
	Rows    [][]any  `json:"rows,omitempty"`
}

// handleSQL executes one SQL statement against the demo database and answers
// in JSON. The statement comes from ?q= (GET) or the request body (POST).
// This is the write surface the restart-chaos harness drives: a 200 here is
// a durability acknowledgement. EXEC/PREDICT statements are rejected — the
// scoring path with admission control lives on /query.
func (s *server) handleSQL(w http.ResponseWriter, r *http.Request) {
	sql := r.URL.Query().Get("q")
	if sql == "" && r.Body != nil {
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			writeSQLJSON(w, http.StatusBadRequest, sqlResponse{Error: "reading body: " + err.Error()})
			return
		}
		sql = strings.TrimSpace(string(body))
	}
	if sql == "" {
		writeSQLJSON(w, http.StatusBadRequest, sqlResponse{Error: "no statement: pass ?q= or a POST body"})
		return
	}
	tbl, st, err := s.demo.DB.Query(sql)
	if err != nil {
		writeSQLJSON(w, http.StatusBadRequest, sqlResponse{Error: err.Error()})
		return
	}
	switch st.(type) {
	case *db.ExecStmt, *db.PredictStmt:
		writeSQLJSON(w, http.StatusBadRequest,
			sqlResponse{Error: "scoring statements go to /query, not /sql"})
		return
	}
	resp := sqlResponse{OK: true}
	if tbl != nil {
		for _, c := range tbl.Columns {
			resp.Columns = append(resp.Columns, c.Name)
			resp.Types = append(resp.Types, c.Type.String())
		}
		for _, row := range tbl.Rows() {
			out := make([]any, len(row))
			for i, v := range row {
				switch tbl.Columns[i].Type {
				case db.Float32Col:
					out[i] = float64(v.F) // exact: float32 embeds in float64
				case db.Int64Col:
					out[i] = v.I
				case db.TextCol:
					out[i] = v.S
				default:
					out[i] = v.B // JSON-encodes as base64
				}
			}
			resp.Rows = append(resp.Rows, out)
		}
	}
	writeSQLJSON(w, http.StatusOK, resp)
}

func writeSQLJSON(w http.ResponseWriter, code int, resp sqlResponse) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		log.Printf("sql response: %v", err)
	}
}

// handleHealthz reports liveness plus identity and the durability state:
// which shard this process is (scale-out tier), which build is running,
// whether a store is attached, what recovery found at boot, and the current
// WAL size. The restart-chaos harness polls it to decide the server is up
// and recovered; the router's health probe reads it per shard.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	type health struct {
		Status      string                `json:"status"`
		ShardID     string                `json:"shard_id,omitempty"`
		GitDescribe string                `json:"git_describe"`
		Fsync       string                `json:"fsync"`
		Durability  string                `json:"durability"`
		Recovery    *storage.RecoveryInfo `json:"recovery,omitempty"`
		WALBytes    int64                 `json:"wal_bytes,omitempty"`
		// Executor load, so the router's health probe can see an
		// overloaded-but-alive shard building a backlog.
		InFlight   int64 `json:"inflight"`
		QueueDepth int64 `json:"queue_depth"`
	}
	h := health{
		Status:      "ok",
		ShardID:     s.shardID,
		GitDescribe: gitDescribe(),
		Fsync:       s.fsync,
		Durability:  "disabled",
		InFlight:    s.exec.Running(),
		QueueDepth:  s.exec.Queued(),
	}
	if s.store != nil {
		h.Durability = "enabled"
		ri := s.store.Recovery()
		h.Recovery = &ri
		h.WALBytes = s.store.WALSize()
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(h); err != nil {
		log.Printf("healthz: %v", err)
	}
}

// handleMetrics serves the registry in Prometheus text exposition format.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.obs.Metrics().WritePrometheus(w); err != nil {
		log.Printf("metrics: %v", err)
	}
}

// handleDebugQueries lists the tracer's retained queries, newest first, with
// wall-clock and simulated stage breakdowns.
func (s *server) handleDebugQueries(w http.ResponseWriter, r *http.Request) {
	recent := s.obs.Tracer.Recent()
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d recent queries (newest first, ring capacity %d)\n\n",
		len(recent), s.obs.Tracer.Capacity())
	for _, tr := range recent { // Recent is already newest-first
		snap := tr.Snapshot()
		status := "running"
		if snap.Done {
			status = "done"
			if snap.Attrs["error"] != "" {
				status = "error: " + snap.Attrs["error"]
			}
		}
		fmt.Fprintf(&sb, "%s  %-22s wall %-12v %s\n",
			snap.ID, snap.Name, snap.Wall.Round(time.Microsecond), status)
		for k, v := range snap.Attrs {
			if k == "error" {
				continue
			}
			fmt.Fprintf(&sb, "    %-26s %s\n", k, v)
		}
		for _, span := range snap.WallSpans {
			fmt.Fprintf(&sb, "    wall  %-26s %v\n", span.Name, span.Duration.Round(time.Microsecond))
		}
		for _, c := range snap.Costs {
			fmt.Fprintf(&sb, "    cost  %-26s cpu=%-10v alloc=%dB/%d objs moved=%dB\n",
				c.Stage, c.CPUTime.Round(time.Microsecond), c.AllocBytes, c.AllocObjects, c.BytesMoved)
		}
		for _, track := range snap.Tracks {
			fmt.Fprintf(&sb, "    track %s (total %v)\n", track.Name, track.Total)
			for _, span := range track.Spans {
				fmt.Fprintf(&sb, "      [%-8s] %-26s %v\n", span.Kind, span.Name, span.Duration)
			}
		}
		fmt.Fprintf(&sb, "    download: /debug/trace/%s\n\n", snap.ID)
	}
	if len(recent) == 0 {
		sb.WriteString("No queries traced yet — visit /query or /fig/hotpath first.\n")
	}
	s.render(w, "Recent queries", sb.String())
}

// handleDebugTrace serves one retained trace as downloadable Chrome
// trace-event JSON.
func (s *server) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/debug/trace/")
	if id == "" {
		http.Error(w, "trace id required: /debug/trace/<id>", http.StatusBadRequest)
		return
	}
	tr, ok := s.obs.Tracer.Get(id)
	if !ok {
		http.Error(w, fmt.Sprintf("trace %q not retained (ring keeps the last %d)",
			id, s.obs.Tracer.Capacity()), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", id+".json"))
	if err := tr.WriteChromeTrace(w); err != nil {
		log.Printf("trace %s: %v", id, err)
	}
}

// build regenerates one figure's text rendering. Callers hold no lock; build
// serializes access to the shared suite itself.
func (s *server) build(fig string) (string, error) {
	if fig == "hotpath" {
		// A fresh demo per request keeps the cold/warm contrast visible; it
		// shares the server's observer so its queries land in /metrics and
		// /debug/queries too.
		demo, err := experiments.NewDemo(s.demoRecords)
		if err != nil {
			return "", err
		}
		demo.Pipe.Obs = s.obs
		return demo.HotPathReport()
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	switch fig {
	case "7":
		rows, err := s.suite.Fig7()
		if err != nil {
			return "", err
		}
		return experiments.RenderFig7(rows), nil
	case "8":
		var sb strings.Builder
		for _, shape := range []experiments.DatasetShape{experiments.IrisShape, experiments.HiggsShape} {
			res, err := s.suite.Fig8(shape)
			if err != nil {
				return "", err
			}
			sb.WriteString(experiments.RenderFig8(res))
			sb.WriteString("\n")
		}
		return sb.String(), nil
	case "9":
		panels, err := s.suite.Fig9()
		if err != nil {
			return "", err
		}
		return experiments.RenderFig9(panels), nil
	case "10":
		panels, err := s.suite.Fig10()
		if err != nil {
			return "", err
		}
		return experiments.RenderFig10(panels), nil
	case "11":
		rows, err := s.suite.Fig11()
		if err != nil {
			return "", err
		}
		return experiments.RenderFig11(rows), nil
	case "headline":
		hs, err := s.suite.Headlines()
		if err != nil {
			return "", err
		}
		return experiments.RenderHeadlines(hs), nil
	case "ext":
		sc, err := s.suite.SchedulerExperiment(300, 1)
		if err != nil {
			return "", err
		}
		fits, err := s.suite.LogCAExperiment()
		if err != nil {
			return "", err
		}
		sens, err := s.suite.Sensitivity([]float64{0.5, 1, 2})
		if err != nil {
			return "", err
		}
		return experiments.RenderScheduler(sc) + "\n" +
			experiments.RenderLogCA(fits) + "\n" +
			experiments.RenderSensitivity(sens), nil
	default:
		return "", fmt.Errorf("unknown figure %q", fig)
	}
}

func (s *server) render(w http.ResponseWriter, title, body string) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	err := pageTmpl.Execute(w, struct {
		Title string
		Body  string
		Nav   []navEntry
	}{Title: title, Body: body, Nav: nav})
	if err != nil {
		log.Printf("render: %v", err)
	}
}
