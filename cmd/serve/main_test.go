package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"accelscore/internal/exec"
	"accelscore/internal/experiments"
	"accelscore/internal/obs"
	"accelscore/internal/pipeline"
	"accelscore/internal/storage"
)

// startTestServer builds the full routed handler (logging middleware
// included) over a small demo table so tests stay fast. Coalescing is on so
// the concurrent tests exercise the real batched hot path.
func startTestServer(t *testing.T) *httptest.Server {
	ts, _ := startTestServerFaults(t, "")
	return ts
}

// startTestServerFaults also arms a fault-injection plan on the demo
// pipeline and returns the server state for executor assertions.
func startTestServerFaults(t *testing.T, faultSpec string) (*httptest.Server, *server) {
	t.Helper()
	s, handler, err := newServer(50, exec.Config{CoalesceWindow: 2 * time.Millisecond, MaxBatch: 8}, faultSpec, 7, nil,
		obsConfig{Attribution: true, SLOSpec: "default=30s"})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(handler)
	t.Cleanup(ts.Close)
	return ts, s
}

// startDurableServer builds the handler over a durable store rooted at dir,
// so tests can kill and reopen the same data directory.
func startDurableServer(t *testing.T, dir string) (*httptest.Server, *server) {
	t.Helper()
	s, handler, err := newServer(50, exec.Config{CoalesceWindow: 2 * time.Millisecond, MaxBatch: 8},
		"", 7, &storage.Config{Dir: dir, Sync: storage.SyncAlways, CompactBytes: -1}, obsConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(handler)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return ts, s
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestMetricsAfterQueries is the acceptance check at the HTTP layer: after
// scoring queries run, GET /metrics returns Prometheus text containing query
// counters, per-stage latency histograms, backend selection counters and
// cache hit/miss counters.
func TestMetricsAfterQueries(t *testing.T) {
	ts := startTestServer(t)
	for i := 0; i < 2; i++ {
		if code, body := get(t, ts.URL+"/query"); code != http.StatusOK {
			t.Fatalf("/query = %d: %s", code, body)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, needle := range []string{
		pipeline.MetricQueriesTotal + `{status="ok"} 2`,
		pipeline.MetricStageSimSeconds + `_count{stage="model scoring"} 2`,
		pipeline.MetricBackendSelectedTotal + `{backend="CPU_SKLearn",source="param"} 2`,
		pipeline.MetricModelCacheEventsTotal + `{event="miss"} 1`,
		pipeline.MetricModelCacheEventsTotal + `{event="hit"} 1`,
		MetricHTTPRequestsTotal + `{code="200",route="/query"} 2`,
	} {
		if !strings.Contains(text, needle) {
			t.Errorf("/metrics missing %q", needle)
		}
	}
}

// TestDebugQueriesAndTraceDownload drives a query, finds it on
// /debug/queries and downloads its Chrome trace.
func TestDebugQueriesAndTraceDownload(t *testing.T) {
	ts := startTestServer(t)
	if code, body := get(t, ts.URL+"/query"); code != http.StatusOK {
		t.Fatalf("/query = %d: %s", code, body)
	}

	if code, body := get(t, ts.URL+"/query"); code != http.StatusOK {
		t.Fatalf("/query = %d: %s", code, body)
	}

	code, body := get(t, ts.URL+"/debug/queries")
	if code != http.StatusOK {
		t.Fatalf("/debug/queries = %d", code)
	}
	first := strings.Index(body, "q-000001")
	second := strings.Index(body, "q-000002")
	if first < 0 || second < 0 {
		t.Fatalf("/debug/queries does not list both queries:\n%s", body)
	}
	if second > first {
		t.Error("/debug/queries is not newest-first")
	}

	resp, err := http.Get(ts.URL + "/debug/trace/q-000001")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/trace = %d", resp.StatusCode)
	}
	if cd := resp.Header.Get("Content-Disposition"); !strings.Contains(cd, "q-000001.json") {
		t.Errorf("Content-Disposition = %q", cd)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &file); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(file.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}

	if code, _ := get(t, ts.URL+"/debug/trace/q-999999"); code != http.StatusNotFound {
		t.Errorf("missing trace = %d, want 404", code)
	}
	if code, _ := get(t, ts.URL+"/debug/trace/"); code != http.StatusBadRequest {
		t.Errorf("empty trace id = %d, want 400", code)
	}
}

// TestIndexAndHotPath smoke-tests the dashboard pages that exercise the
// shared suite and the per-request demo.
func TestIndexAndHotPath(t *testing.T) {
	ts := startTestServer(t)
	if code, body := get(t, ts.URL+"/"); code != http.StatusOK || !strings.Contains(body, "accelscore") {
		t.Fatalf("index = %d:\n%s", code, body)
	}
	code, body := get(t, ts.URL+"/fig/hotpath")
	if code != http.StatusOK {
		t.Fatalf("/fig/hotpath = %d", code)
	}
	for _, needle := range []string{"cold (cache miss)", "warm (cache hit)"} {
		if !strings.Contains(body, needle) {
			t.Errorf("/fig/hotpath missing %q", needle)
		}
	}
	if code, _ := get(t, ts.URL+"/fig/nope"); code != http.StatusNotFound {
		t.Errorf("unknown figure = %d, want 404", code)
	}
}

// TestConcurrentQueries hammers the shared demo pipeline from many
// goroutines; run under -race this pins the satellite fix for the previously
// unsynchronized shared state.
func TestConcurrentQueries(t *testing.T) {
	ts := startTestServer(t)
	var wg sync.WaitGroup
	var mu sync.Mutex
	traces := make(map[string]bool)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 3; j++ {
				resp, err := http.Get(ts.URL + "/query")
				if err != nil {
					t.Error(err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("/query = %d", resp.StatusCode)
					continue
				}
				// Even when queries coalesce into one pipeline run, every
				// response carries its own trace.
				_, after, ok := strings.Cut(string(body), "trace            ")
				if !ok {
					t.Error("response missing trace line")
					continue
				}
				id, _, _ := strings.Cut(after, " ")
				mu.Lock()
				traces[id] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(traces) != 24 {
		t.Errorf("got %d distinct trace IDs, want 24", len(traces))
	}
	code, body := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	if !strings.Contains(body, pipeline.MetricQueriesTotal+`{status="ok"} 24`) {
		t.Error("expected 24 ok queries in /metrics")
	}
}

// TestQueryTimeoutMapsTo504: a ?timeout= shorter than an injected device
// hang surfaces as 504 Gateway Timeout, and the deadline counter appears on
// /metrics. A malformed timeout is a 400.
func TestQueryTimeoutMapsTo504(t *testing.T) {
	ts, _ := startTestServerFaults(t, "CPU_SKLearn:compute:hang=2s")
	if code, body := get(t, ts.URL+"/query?timeout=50ms"); code != http.StatusGatewayTimeout {
		t.Fatalf("/query?timeout=50ms = %d, want 504: %s", code, body)
	}
	if code, _ := get(t, ts.URL+"/query?timeout=banana"); code != http.StatusBadRequest {
		t.Fatalf("bad timeout = %d, want 400", code)
	}
	_, body := get(t, ts.URL+"/metrics")
	for _, needle := range []string{
		exec.MetricDeadlineExceededTotal + " 1",
		MetricHTTPRequestsTotal + `{code="504",route="/query"} 1`,
	} {
		if !strings.Contains(body, needle) {
			t.Errorf("/metrics missing %q", needle)
		}
	}
}

// TestClientDisconnectMapsTo499: the handler threads r.Context() into the
// executor, so a client that gives up cancels its queued query and the
// server records nginx's 499 with a distinct cancellation counter.
func TestClientDisconnectMapsTo499(t *testing.T) {
	ts, _ := startTestServerFaults(t, "CPU_SKLearn:compute:hang=5s")
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/query", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
		t.Fatalf("request succeeded with status %d, want client-side cancellation", resp.StatusCode)
	}
	// The handler finishes asynchronously after the disconnect; poll the
	// metrics until the 499 lands.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, body := get(t, ts.URL+"/metrics")
		if strings.Contains(body, MetricHTTPRequestsTotal+`{code="499",route="/query"} 1`) &&
			strings.Contains(body, exec.MetricCanceledTotal+" 1") {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("499/cancellation never counted:\n%s", body)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestQueryRetriesSurviveInjectedFault: a transient injected fault on the
// demo backend is retried away — the page still renders 200 and reports the
// retry count.
func TestQueryRetriesSurviveInjectedFault(t *testing.T) {
	ts, _ := startTestServerFaults(t, "CPU_SKLearn:invoke:busy:once=1")
	code, body := get(t, ts.URL+"/query")
	if code != http.StatusOK {
		t.Fatalf("/query = %d: %s", code, body)
	}
	if !strings.Contains(body, "retries          1") {
		t.Fatalf("response does not report the retry:\n%s", body)
	}
}

func TestRouteLabelBoundsCardinality(t *testing.T) {
	for path, want := range map[string]string{
		"/":                    "/",
		"/query":               "/query",
		"/sql":                 "/sql",
		"/healthz":             "/healthz",
		"/fig/7":               "/fig/:fig",
		"/fig/hotpath":         "/fig/:fig",
		"/debug/trace/q-00001": "/debug/trace/:id",
		"/debug/queries":       "/debug/queries",
		"/debug/pprof/":        "/debug/pprof/:profile",
		"/debug/pprof/profile": "/debug/pprof/:profile",
		"/debug/pprof/heap":    "/debug/pprof/:profile",
		"/metrics":             "/metrics",
		"/etc/passwd":          "other",
		"/favicon.ico":         "other",
	} {
		if got := routeLabel(path); got != want {
			t.Errorf("routeLabel(%q) = %q, want %q", path, got, want)
		}
	}
}

func postSQL(t *testing.T, url, sql string) (int, sqlResponse) {
	t.Helper()
	resp, err := http.Post(url+"/sql", "text/plain", strings.NewReader(sql))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr sqlResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatalf("decoding /sql response: %v", err)
	}
	return resp.StatusCode, sr
}

// TestSQLEndpoint exercises /sql over the in-memory server: SELECT returns
// rows as JSON, DML acknowledges, scoring statements and parse errors are
// rejected with 400.
func TestSQLEndpoint(t *testing.T) {
	ts := startTestServer(t)
	if code, sr := postSQL(t, ts.URL, "SELECT sepal_length, label FROM iris WHERE label = 0"); code != http.StatusOK {
		t.Fatalf("/sql SELECT = %d: %+v", code, sr)
	} else {
		if len(sr.Columns) != 2 || sr.Columns[0] != "sepal_length" {
			t.Fatalf("columns = %v", sr.Columns)
		}
		if len(sr.Rows) == 0 {
			t.Fatal("SELECT returned no rows")
		}
	}
	if code, sr := postSQL(t, ts.URL, "INSERT INTO iris VALUES (1.0, 2.0, 3.0, 4.0, 1)"); code != http.StatusOK || !sr.OK {
		t.Fatalf("/sql INSERT = %d: %+v", code, sr)
	}
	if code, sr := postSQL(t, ts.URL, experiments.DemoQuery); code != http.StatusBadRequest ||
		!strings.Contains(sr.Error, "/query") {
		t.Fatalf("EXEC on /sql = %d: %+v", code, sr)
	}
	if code, _ := postSQL(t, ts.URL, "SELEKT nope"); code != http.StatusBadRequest {
		t.Fatalf("parse error = %d, want 400", code)
	}
	if code, _ := get(t, ts.URL+"/sql"); code != http.StatusBadRequest {
		t.Fatalf("empty statement = %d, want 400", code)
	}
}

// TestQueryReportsAttribution: with attribution on, the /query page carries
// the measured per-stage resource breakdown and the SLO verdict, and the
// trace download attaches the costs as span args.
func TestQueryReportsAttribution(t *testing.T) {
	ts := startTestServer(t)
	code, body := get(t, ts.URL+"/query")
	if code != http.StatusOK {
		t.Fatalf("/query = %d: %s", code, body)
	}
	for _, needle := range []string{
		"measured per-stage attribution",
		"model scoring",
		"slo class        default: good",
	} {
		if !strings.Contains(body, needle) {
			t.Errorf("/query missing %q:\n%s", needle, body)
		}
	}
	// The trace export carries the costs as args on the wall spans.
	code, trace := get(t, ts.URL+"/debug/trace/q-000001")
	if code != http.StatusOK {
		t.Fatalf("/debug/trace = %d", code)
	}
	if !strings.Contains(trace, `"alloc_bytes"`) || !strings.Contains(trace, `"cpu_us"`) {
		t.Errorf("trace export missing attribution args:\n%s", trace)
	}
	// And /debug/queries prints the cost lines.
	code, dbg := get(t, ts.URL+"/debug/queries")
	if code != http.StatusOK || !strings.Contains(dbg, "cost  model scoring") {
		t.Errorf("/debug/queries missing cost lines (code %d):\n%s", code, dbg)
	}
}

// TestMetricsExemplarResolvesToTrace is the tentpole acceptance loop: scrape
// /metrics, find an exemplar trace ID on the wall-latency histogram, then
// download exactly that trace.
func TestMetricsExemplarResolvesToTrace(t *testing.T) {
	ts := startTestServer(t)
	if code, body := get(t, ts.URL+"/query"); code != http.StatusOK {
		t.Fatalf("/query = %d: %s", code, body)
	}
	_, metricsText := get(t, ts.URL+"/metrics")
	var traceID string
	for _, line := range strings.Split(metricsText, "\n") {
		if !strings.HasPrefix(line, pipeline.MetricQueryWallSeconds+"_bucket") {
			continue
		}
		_, ex, ok := strings.Cut(line, `# {trace_id="`)
		if !ok {
			continue
		}
		traceID, _, _ = strings.Cut(ex, `"`)
		break
	}
	if traceID == "" {
		t.Fatalf("no exemplar on %s buckets:\n%s", pipeline.MetricQueryWallSeconds, metricsText)
	}
	code, trace := get(t, ts.URL+"/debug/trace/"+traceID)
	if code != http.StatusOK {
		t.Fatalf("exemplar trace %s = %d", traceID, code)
	}
	if !strings.Contains(trace, traceID) {
		t.Errorf("downloaded trace does not mention its own ID %s", traceID)
	}
}

// TestMetricsExpositionLints runs the repo's strict exposition lint over a
// live scrape after real traffic — the satellite (c) acceptance at the HTTP
// layer.
func TestMetricsExpositionLints(t *testing.T) {
	ts := startTestServer(t)
	for i := 0; i < 3; i++ {
		get(t, ts.URL+"/query")
	}
	get(t, ts.URL+"/debug/queries")
	_, text := get(t, ts.URL+"/metrics")
	if probs := obs.LintPrometheus(strings.NewReader(text)); len(probs) != 0 {
		msgs := make([]string, len(probs))
		for i, p := range probs {
			msgs[i] = p.String()
		}
		t.Errorf("live /metrics scrape fails lint:\n%s", strings.Join(msgs, "\n"))
	}
}

// TestPprofMounted: the pprof index and a short CPU profile answer under the
// logged mux.
func TestPprofMounted(t *testing.T) {
	ts := startTestServer(t)
	code, body := get(t, ts.URL+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d:\n%s", code, body)
	}
	resp, err := http.Get(ts.URL + "/debug/pprof/profile?seconds=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || len(raw) == 0 {
		t.Fatalf("/debug/pprof/profile = %d, %d bytes", resp.StatusCode, len(raw))
	}
	// The middleware counted it under the bounded route label.
	_, metricsText := get(t, ts.URL+"/metrics")
	if !strings.Contains(metricsText, `route="/debug/pprof/:profile"`) {
		t.Error("pprof requests not counted under the bounded route label")
	}
}

// TestRuntimeGaugesOnMetrics: a server with the collector enabled publishes
// runtime health gauges on /metrics.
func TestRuntimeGaugesOnMetrics(t *testing.T) {
	s, handler, err := newServer(50, exec.Config{}, "", 7, nil,
		obsConfig{RuntimeSample: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(handler)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	_, text := get(t, ts.URL+"/metrics")
	for _, needle := range []string{
		obs.MetricRuntimeGoroutines,
		obs.MetricRuntimeHeapAllocBytes,
		obs.MetricRuntimeGCCyclesTotal,
		obs.MetricRuntimeSchedLatencySeconds + `{quantile="0.5"}`,
	} {
		if !strings.Contains(text, needle) {
			t.Errorf("/metrics missing %q", needle)
		}
	}
}

// TestSLOMetricsPublished: SLO counters, objectives and burn-rate gauges
// appear after classified queries.
func TestSLOMetricsPublished(t *testing.T) {
	ts := startTestServer(t)
	if code, _ := get(t, ts.URL+"/query"); code != http.StatusOK {
		t.Fatal("query failed")
	}
	_, text := get(t, ts.URL+"/metrics")
	for _, needle := range []string{
		obs.MetricSLOEventsTotal + `{class="default",result="good"} 1`,
		obs.MetricSLOObjectiveSeconds + `{class="default"} 30`,
		obs.MetricSLOBurnRate + `{class="default",window="1m"} 0`,
	} {
		if !strings.Contains(text, needle) {
			t.Errorf("/metrics missing %q:\n%s", needle, text)
		}
	}
}

// TestHealthzReportsDurability checks both modes of /healthz.
func TestHealthzReportsDurability(t *testing.T) {
	ts := startTestServer(t)
	code, body := get(t, ts.URL+"/healthz")
	if code != http.StatusOK || !strings.Contains(body, `"durability":"disabled"`) {
		t.Fatalf("/healthz = %d: %s", code, body)
	}

	dts, _ := startDurableServer(t, t.TempDir())
	code, body = get(t, dts.URL+"/healthz")
	if code != http.StatusOK || !strings.Contains(body, `"durability":"enabled"`) {
		t.Fatalf("durable /healthz = %d: %s", code, body)
	}
	if !strings.Contains(body, `"recovery"`) {
		t.Fatalf("durable /healthz missing recovery info: %s", body)
	}
}

// TestDurableServerSurvivesRestart writes through /sql, tears the server
// down, boots a second server on the same data directory and reads the rows
// back — the HTTP-level version of the storage recovery tests.
func TestDurableServerSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	ts1, s1 := startDurableServer(t, dir)
	if code, sr := postSQL(t, ts1.URL, "INSERT INTO iris VALUES (9.25, 8.5, 7.75, 6.5, 2)"); code != http.StatusOK || !sr.OK {
		t.Fatalf("insert = %d: %+v", code, sr)
	}
	if code, sr := postSQL(t, ts1.URL, "DELETE FROM iris WHERE label = 0"); code != http.StatusOK || !sr.OK {
		t.Fatalf("delete = %d: %+v", code, sr)
	}
	_, want := postSQL(t, ts1.URL, "SELECT sepal_length, label FROM iris")
	ts1.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	ts2, _ := startDurableServer(t, dir)
	code, got := postSQL(t, ts2.URL, "SELECT sepal_length, label FROM iris")
	if code != http.StatusOK {
		t.Fatalf("post-restart SELECT = %d", code)
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("post-restart rows = %d, want %d", len(got.Rows), len(want.Rows))
	}
	for i := range want.Rows {
		for j := range want.Rows[i] {
			if got.Rows[i][j] != want.Rows[i][j] {
				t.Fatalf("row %d col %d: %v != %v", i, j, got.Rows[i][j], want.Rows[i][j])
			}
		}
	}
	// The demo reseed on restart was a no-op: recovery found the table.
	if code, body := get(t, ts2.URL+"/healthz"); code != http.StatusOK ||
		!strings.Contains(body, `"durability":"enabled"`) {
		t.Fatalf("post-restart /healthz = %d: %s", code, body)
	}
}
