package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"accelscore/internal/exec"
	"accelscore/internal/router"
)

// startShardServer builds a serve handler configured as one scale-out shard.
func startShardServer(t *testing.T, shardID string) *httptest.Server {
	t.Helper()
	_, handler, err := newServer(50, exec.Config{CoalesceWindow: 2 * time.Millisecond, MaxBatch: 8},
		"", 7, nil, obsConfig{ShardID: shardID})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(handler)
	t.Cleanup(ts.Close)
	return ts
}

func postScore(t *testing.T, url string, req router.Request) (int, *router.Result) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/score", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var res router.Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, &res
}

// TestScoreEndpoint drives the shard-side wire contract: a partitioned
// sub-query scores only its partition's rows, results carry the shard id,
// and query-level failures come back with the bad_request code so the
// router never reroutes them.
func TestScoreEndpoint(t *testing.T) {
	ts := startShardServer(t, "shard-7")

	code, res := postScore(t, ts.URL, router.Request{
		Model: "iris_rf", Data: "iris", Backend: "CPU_ONNX", Partition: "0/2",
	})
	if code != http.StatusOK || res.Error != "" {
		t.Fatalf("/score = %d, error %q", code, res.Error)
	}
	if res.ShardID != "shard-7" {
		t.Fatalf("shard id %q, want shard-7", res.ShardID)
	}
	if res.RowsScored == 0 || res.RowsScored >= res.RowsScanned {
		t.Fatalf("partition 0/2 scored %d of %d rows", res.RowsScored, res.RowsScanned)
	}
	if len(res.ScoredRows) != len(res.Predictions) {
		t.Fatalf("%d ordinals for %d predictions", len(res.ScoredRows), len(res.Predictions))
	}

	// The complementary partition covers the remaining rows exactly.
	code2, res2 := postScore(t, ts.URL, router.Request{
		Model: "iris_rf", Data: "iris", Backend: "CPU_ONNX", Partition: "1/2",
	})
	if code2 != http.StatusOK || res2.Error != "" {
		t.Fatalf("/score 1/2 = %d, error %q", code2, res2.Error)
	}
	if res.RowsScored+res2.RowsScored != res.RowsScanned {
		t.Fatalf("partitions cover %d+%d of %d rows",
			res.RowsScored, res2.RowsScored, res.RowsScanned)
	}

	// Unknown model: query-level, never rerouteable.
	code3, res3 := postScore(t, ts.URL, router.Request{Model: "nope", Data: "iris"})
	if code3 != http.StatusBadRequest || res3.Code != router.CodeBadRequest {
		t.Fatalf("unknown model = %d code %q, want 400 %q", code3, res3.Code, router.CodeBadRequest)
	}

	// Malformed wire request.
	resp, err := http.Post(ts.URL+"/score", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body = %d", resp.StatusCode)
	}
}

// TestWarmEndpoint checks replica cache warming: first warm misses (loads),
// second hits, unknown models 404.
func TestWarmEndpoint(t *testing.T) {
	ts := startShardServer(t, "shard-0")
	warm := func(model string) (int, warmPayload) {
		resp, err := http.Post(ts.URL+"/warm?model="+model, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var p warmPayload
		if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, p
	}
	if code, p := warm("iris_rf"); code != http.StatusOK || p.Status != "miss" {
		t.Fatalf("first warm = %d %q", code, p.Status)
	}
	if code, p := warm("iris_rf"); code != http.StatusOK || p.Status != "hit" {
		t.Fatalf("second warm = %d %q", code, p.Status)
	}
	if code, p := warm("nope"); code != http.StatusNotFound || p.Error == "" {
		t.Fatalf("unknown model warm = %d %+v", code, p)
	}
}

// TestHealthzShardInfo is the healthz satellite: the payload identifies the
// shard, the build and the fsync policy.
func TestHealthzShardInfo(t *testing.T) {
	ts := startShardServer(t, "shard-3")
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h struct {
		Status      string `json:"status"`
		ShardID     string `json:"shard_id"`
		GitDescribe string `json:"git_describe"`
		Fsync       string `json:"fsync"`
		Durability  string `json:"durability"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.ShardID != "shard-3" {
		t.Fatalf("healthz %+v", h)
	}
	if h.GitDescribe == "" {
		t.Fatal("healthz missing git_describe")
	}
	if h.Fsync != "disabled" || h.Durability != "disabled" {
		t.Fatalf("in-memory server reports fsync=%q durability=%q", h.Fsync, h.Durability)
	}
}

// TestHTTPShardAgainstServe closes the loop between both wire ends: the
// router's HTTPShard backend scoring through a real serve process must agree
// with the in-process pipeline, including warm and health probes.
func TestHTTPShardAgainstServe(t *testing.T) {
	ts := startShardServer(t, "shard-0")
	shard, err := router.NewHTTPShard("shard-0", ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := shard.Healthz(ctx); err != nil {
		t.Fatalf("healthz: %v", err)
	}
	status, err := shard.Warm(ctx, "iris_rf")
	if err != nil || status != "miss" {
		t.Fatalf("warm = %q, %v", status, err)
	}
	res, err := shard.Score(ctx, router.Request{Model: "iris_rf", Data: "iris", Backend: "CPU_ONNX"})
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsScored != res.RowsScanned || len(res.Predictions) != res.RowsScored {
		t.Fatalf("full scan scored %d of %d rows, %d predictions",
			res.RowsScored, res.RowsScanned, len(res.Predictions))
	}
	if !res.CacheHit {
		t.Fatal("warmed shard missed its model cache")
	}
	if _, err := shard.Score(ctx, router.Request{Model: "nope", Data: "iris"}); !exec.IsNoReroute(err) {
		t.Fatalf("unknown model over HTTP should be NoReroute, got %v", err)
	}
}
