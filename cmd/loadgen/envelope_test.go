package main

import (
	"testing"
	"time"

	"accelscore/internal/exec"
	"accelscore/internal/obs"
)

func TestEnvelopeFields(t *testing.T) {
	doc := envelope("throughput")
	if doc["schema_version"] != artifactSchemaVersion {
		t.Errorf("schema_version = %v", doc["schema_version"])
	}
	if doc["kind"] != "throughput" {
		t.Errorf("kind = %v", doc["kind"])
	}
	if s, ok := doc["git_describe"].(string); !ok || s == "" {
		t.Errorf("git_describe = %v", doc["git_describe"])
	}
	gen, ok := doc["generated"].(string)
	if !ok {
		t.Fatalf("generated = %v", doc["generated"])
	}
	if _, err := time.Parse(time.RFC3339, gen); err != nil {
		t.Errorf("generated %q is not RFC3339: %v", gen, err)
	}
	host, ok := doc["host"].(map[string]any)
	if !ok {
		t.Fatalf("host = %v", doc["host"])
	}
	for _, k := range []string{"goos", "goarch", "gomaxprocs", "num_cpu"} {
		if _, ok := host[k]; !ok {
			t.Errorf("host missing %q", k)
		}
	}
}

func TestBenchDocCarriesEnvelopeAndSLO(t *testing.T) {
	cfg := exec.LoadConfig{Queries: 10, Seed: 1, Backend: "CPU_SKLearn", TableRows: 64}
	opt := exec.RunOptions{
		Clients: 4,
		SLO:     []obs.Objective{{Class: "default", Latency: 100 * time.Millisecond}},
	}
	reports := []*exec.LoadReport{
		{Label: "serialized", Queries: 10, Ok: 10, ThroughputQPS: 100},
		{Label: "executor", Queries: 10, Ok: 10, ThroughputQPS: 250},
	}
	doc := benchDoc(cfg, opt, reports)
	if doc["schema_version"] != artifactSchemaVersion || doc["kind"] != "throughput" {
		t.Errorf("benchDoc envelope: version=%v kind=%v", doc["schema_version"], doc["kind"])
	}
	wl, ok := doc["workload"].(map[string]any)
	if !ok {
		t.Fatalf("workload = %v", doc["workload"])
	}
	if wl["slo"] != "default=100ms" {
		t.Errorf("workload slo = %v", wl["slo"])
	}
	speed, ok := doc["speedup_vs_serialized"].(map[string]float64)
	if !ok || speed["executor"] != 2.5 {
		t.Errorf("speedups = %v", doc["speedup_vs_serialized"])
	}
}
