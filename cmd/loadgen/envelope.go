package main

import (
	"os/exec"
	"runtime"
	"strings"
	"time"
)

// artifactSchemaVersion versions the shared envelope of every JSON artifact
// loadgen writes (BENCH_throughput.json, BENCH_fusion.json,
// CHAOS_report.json). Bump it when an envelope or report field changes
// meaning, so downstream tooling can reject artifacts it does not
// understand.
const artifactSchemaVersion = 1

// envelope returns the fields every loadgen JSON artifact shares: schema
// version, artifact kind, generation timestamp, the git revision that
// produced the numbers, and the host shape. Callers merge their
// report-specific keys on top.
func envelope(kind string) map[string]any {
	return map[string]any{
		"schema_version": artifactSchemaVersion,
		"kind":           kind,
		"generated":      time.Now().UTC().Format(time.RFC3339),
		"git_describe":   gitDescribe(),
		"host": map[string]any{
			"goos":       runtime.GOOS,
			"goarch":     runtime.GOARCH,
			"gomaxprocs": runtime.GOMAXPROCS(0),
			"num_cpu":    runtime.NumCPU(),
		},
	}
}

// gitDescribe identifies the working tree that produced an artifact.
// "unknown" when git is unavailable (e.g. a release binary run outside the
// repo) — the artifact is still valid, just unattributed.
func gitDescribe() string {
	out, err := exec.Command("git", "describe", "--always", "--dirty").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}
