// Command loadgen replays a generated scoring workload through the real
// serving pipeline and reports measured throughput and latency percentiles
// next to the scheduling simulator's prediction for the same stream.
//
// Two execution modes are compared:
//
//   - serialized: one global mutex around the pipeline — the serving model
//     this repo used before the concurrent executor existed;
//   - executor: the bounded-queue worker pool with request coalescing
//     (concurrent same-model queries merge into one pipeline run).
//
// The default mode runs both once and prints a comparison. -bench runs the
// full matrix (serialized vs executor at 1/4/8 workers, with and without
// coalescing) and writes results/throughput_bench.md plus a machine-readable
// BENCH_throughput.json at the repository root. -bench-fusion runs the
// fused-vs-unfused scoring matrix (selectivity x table width) and writes
// results/fusion_bench.md plus BENCH_fusion.json, failing if the fused path
// ever disagrees with score-all-then-filter.
//
// Usage:
//
//	loadgen [-queries 200] [-rows 2048] [-backend CPU_SKLearn] [-clients 8]
//	        [-workers 0] [-queue 64] [-coalesce 1ms] [-maxbatch 8]
//	        [-trees 8,32,128] [-depths 6,10] [-open] [-seed 1]
//	        [-json out.json] [-bench] [-bench-fusion]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"accelscore/internal/exec"
	"accelscore/internal/obs"
)

func main() {
	log.SetFlags(0)
	queries := flag.Int("queries", 200, "number of queries in the generated stream")
	seed := flag.Uint64("seed", 1, "workload generator seed")
	backendName := flag.String("backend", "CPU_SKLearn", "backend every query requests ('auto' routes through the advisor)")
	rows := flag.Int("rows", 2048, "rows in the scoring input table (per-query @limit is drawn from [1, rows])")
	trees := flag.String("trees", "8,32,128", "comma-separated tree counts for the model zoo")
	depths := flag.String("depths", "6,10", "comma-separated tree depths for the model zoo")
	workers := flag.Int("workers", 0, "executor workers (0 = GOMAXPROCS)")
	queueDepth := flag.Int("queue", 64, "executor admission queue depth")
	coalesce := flag.Duration("coalesce", time.Millisecond, "request-coalescing window (0 disables)")
	maxBatch := flag.Int("maxbatch", 8, "max queries merged into one coalesced run")
	clients := flag.Int("clients", 8, "closed-loop client count")
	openLoop := flag.Bool("open", false, "replay at generated arrival times instead of closed-loop")
	sloSpec := flag.String("slo", "",
		"per-class latency objectives, e.g. 'interactive=25ms,batch=500ms'; queries are classified "+
			"by record count (geometric bands over [1, rows], smallest records -> tightest objective) "+
			"and reports gain per-class goodput")
	jsonOut := flag.String("json", "", "write the reports as JSON to this path")
	bench := flag.Bool("bench", false, "run the serialized-vs-executor matrix and write results/throughput_bench.md + BENCH_throughput.json")
	benchFusion := flag.Bool("bench-fusion", false, "run the fused-vs-unfused selectivity matrix and write results/fusion_bench.md + BENCH_fusion.json")
	selectivities := flag.String("selectivities", "0.01,0.1,0.5,1", "WHERE pass fractions for -bench-fusion")
	repeats := flag.Int("repeats", 5, "measured repetitions per -bench-fusion cell (median reported)")
	junkCols := flag.Int("junk", 46, "non-feature REAL columns padding the -bench-fusion wide table")
	chaos := flag.Bool("chaos", false, "run the healthy-vs-chaos comparison and write results/chaos_report.md + CHAOS_report.json")
	faultSpec := flag.String("faults", exec.DefaultChaosPlan, "fault plan for -chaos (backend:boundary:kind[:trigger];...)")
	faultSeed := flag.Uint64("fault-seed", 1, "fault injector seed for -chaos")
	deadline := flag.Duration("deadline", 2*time.Second, "per-query deadline for -chaos (0 = none)")
	retries := flag.Int("retries", 3, "max retries per query for -chaos")
	attemptTimeout := flag.Duration("attempt-timeout", 150*time.Millisecond, "per-attempt hang-detection timeout for -chaos (0 = off)")
	chaosRestart := flag.Bool("chaos-restart", false,
		"SIGKILL a real serve process under write load, restart it, and verify no acked write is lost and predictions stay bit-identical")
	serveBin := flag.String("serve-bin", "", "prebuilt serve binary for -chaos-restart (empty builds one)")
	kills := flag.Int("kills", 3, "kill/restart cycles for -chaos-restart")
	writeFor := flag.Duration("write-for", time.Second, "write-load window per -chaos-restart cycle")
	fsyncPolicy := flag.String("fsync", "always", "serve WAL sync policy for -chaos-restart (always|batch|none)")
	benchScaleout := flag.Bool("bench-scaleout", false,
		"boot real serve shards behind the router, sweep shards x records, verify bit-identical merges, "+
			"and write results/scaleout_bench.md + BENCH_scaleout.json")
	scaleShards := flag.String("scale-shards", "1,2,4", "shard counts for -bench-scaleout (1 anchors speedups)")
	scaleRecords := flag.String("scale-records", "2000,50000,400000", "demo table sizes for -bench-scaleout")
	scaleQueries := flag.Int("scale-queries", 8, "closed-loop queries per -bench-scaleout cell")
	scaleBackend := flag.String("scale-backend", "CPU_ONNX", "engine every -bench-scaleout query requests")
	paceScale := flag.Float64("pace-scale", 1,
		"shard pacing multiple of the simulated total for -bench-scaleout (each shard = one simulated device)")
	scaleChaosLeg := flag.Bool("scale-chaos", true, "run the SIGKILL-one-shard leg of -bench-scaleout")
	scaleMinSpeedup := flag.Float64("scale-min-speedup", 0,
		"fail -bench-scaleout unless the widest scatter reaches this measured speedup (0 = report only)")
	benchOverload := flag.Bool("bench-overload", false,
		"run the open-loop overload + chaos survival bench and write results/overload_bench.md + BENCH_overload.json")
	overloadShards := flag.Int("overload-shards", 3,
		"tier width for -bench-overload (>= 3: straggler + kill victim + flap victim)")
	overloadRecords := flag.Int("overload-records", 500, "demo table size per -bench-overload shard")
	overloadCell := flag.Duration("overload-cell", 2*time.Second, "open-loop window per -bench-overload sweep cell")
	overloadMults := flag.String("overload-mults", "0.5,1,2",
		"offered load points for -bench-overload, as multiples of calibrated saturation")
	overloadDeadline := flag.Duration("overload-deadline", 2*time.Second,
		"per-query deadline carried by -bench-overload arrivals")
	overloadSlowFactor := flag.Float64("overload-slow-factor", 2,
		"pace multiplier for the -bench-overload straggler shard")
	overloadInFlight := flag.Int("overload-inflight", 0,
		"router MaxInFlight for -bench-overload (0 = 2x shards)")
	overloadChaosLeg := flag.Bool("overload-chaos", true,
		"run the SIGKILL + SIGSTOP/SIGCONT flap cell of -bench-overload")
	routerOverhead := flag.Duration("router-overhead", 5*time.Millisecond,
		"fixed per-sub-query overhead fed to the predicted scaling curve")
	flag.Parse()

	if *benchOverload {
		err := runOverloadBench(overloadConfig{
			ServeBin:      *serveBin,
			Shards:        *overloadShards,
			Records:       *overloadRecords,
			Backend:       *scaleBackend,
			PaceScale:     *paceScale,
			SlowFactor:    *overloadSlowFactor,
			CellDuration:  *overloadCell,
			LoadMultiples: floatList(*overloadMults),
			Deadline:      *overloadDeadline,
			MaxInFlight:   *overloadInFlight,
			Seed:          *seed,
			Chaos:         *overloadChaosLeg,
		}, *jsonOut)
		if err != nil {
			log.Fatal(err)
		}
		return
	}

	if *benchScaleout {
		err := runScaleoutBench(scaleoutConfig{
			ServeBin:       *serveBin,
			Shards:         intList(*scaleShards),
			Records:        intList(*scaleRecords),
			Queries:        *scaleQueries,
			Backend:        *scaleBackend,
			PaceScale:      *paceScale,
			Chaos:          *scaleChaosLeg,
			MinSpeedup:     *scaleMinSpeedup,
			RouterOverhead: *routerOverhead,
		}, *jsonOut)
		if err != nil {
			log.Fatal(err)
		}
		return
	}

	if *chaosRestart {
		err := runRestartChaos(restartChaosConfig{
			ServeBin:    *serveBin,
			Kills:       *kills,
			Writers:     *clients,
			WriteFor:    *writeFor,
			DemoRecords: 150,
			Fsync:       *fsyncPolicy,
		}, *jsonOut)
		if err != nil {
			log.Fatal(err)
		}
		return
	}

	if *benchFusion {
		// Fusion defaults: a scoring-dominated regime (big forest, big table)
		// where skipped rows are visible wins — unless the user pinned a flag.
		set := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		fcfg := exec.FusionBenchConfig{
			Rows:          8192,
			Trees:         256,
			Depth:         10,
			Seed:          *seed,
			Repeats:       *repeats,
			Selectivities: floatList(*selectivities),
			JunkCols:      *junkCols,
			Backend:       *backendName,
		}
		if set["rows"] {
			fcfg.Rows = *rows
		}
		if set["trees"] {
			fcfg.Trees = intList(*trees)[0]
		}
		if set["depths"] {
			fcfg.Depth = intList(*depths)[0]
		}
		if err := runFusionBench(fcfg, *jsonOut); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *chaos {
		// Chaos defaults: an accelerator-targeted stream (the plan injects
		// FPGA faults) sized to finish quickly, unless the user pinned a
		// flag.
		set := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		if !set["backend"] {
			*backendName = "FPGA"
		}
		if !set["queries"] {
			*queries = 120
		}
		if !set["rows"] {
			*rows = 256
		}
	}

	if *bench {
		// The matrix defaults to the overhead-dominated regime the paper's
		// Fig. 11 analysis highlights — big forests scoring a handful of
		// records, where per-query fixed costs dwarf the inference itself —
		// unless the user pinned a flag explicitly.
		set := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		if !set["queries"] {
			*queries = 240
		}
		if !set["rows"] {
			*rows = 4
		}
		if !set["trees"] {
			*trees = "2048"
		}
		if !set["depths"] {
			*depths = "8,10"
		}
		if !set["maxbatch"] {
			*maxBatch = 4
		}
		if !set["slo"] {
			// Default objectives so -bench always reports goodput: the
			// values are intentionally loose enough that a healthy run on
			// modest hardware meets them, tight enough that the serialized
			// baseline's queueing shows up as burned budget.
			*sloSpec = "interactive=100ms,batch=1s"
		}
	}

	cfg := exec.LoadConfig{
		Queries:     *queries,
		Seed:        *seed,
		Backend:     *backendName,
		TableRows:   *rows,
		TreeChoices: intList(*trees),
	}
	cfg.DepthChoices = intList(*depths)
	objectives, err := obs.ParseSLOSpec(*sloSpec)
	if err != nil {
		log.Fatal(err)
	}
	opt := exec.RunOptions{Clients: *clients, OpenLoop: *openLoop, SLO: objectives}
	ecfg := exec.Config{
		Workers:        *workers,
		QueueDepth:     *queueDepth,
		CoalesceWindow: *coalesce,
		MaxBatch:       *maxBatch,
	}

	if *chaos {
		ecfg.MaxRetries = *retries
		ecfg.AttemptTimeout = *attemptTimeout
		ccfg := exec.ChaosConfig{
			Load:      cfg,
			Exec:      ecfg,
			Clients:   opt.Clients,
			FaultSpec: *faultSpec,
			FaultSeed: *faultSeed,
			Deadline:  *deadline,
		}
		if err := runChaos(ccfg, *jsonOut); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *bench {
		if err := runBench(cfg, opt, ecfg, *jsonOut); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := runOnce(cfg, opt, ecfg, *jsonOut); err != nil {
		log.Fatal(err)
	}
}

// intList parses "8,32,128" into []int.
func intList(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil {
			log.Fatalf("bad integer list %q: %v", s, err)
		}
		out = append(out, n)
	}
	return out
}

// runConfig executes the stream once against a fresh environment. Every run
// rebuilds the environment so the model cache and snapshot cache start cold
// and no run warms another's state.
func runConfig(cfg exec.LoadConfig, opt exec.RunOptions, label string, mk func(env *exec.LoadEnv) exec.QueryRunner) (*exec.LoadReport, error) {
	env, err := exec.BuildLoadEnv(cfg, obs.NewObserver())
	if err != nil {
		return nil, err
	}
	return exec.RunLoad(env, mk(env), label, opt)
}

// runOnce compares serialized vs executor for one configuration and prints
// the simulator's prediction for the same stream.
func runOnce(cfg exec.LoadConfig, opt exec.RunOptions, ecfg exec.Config, jsonOut string) error {
	mode := fmt.Sprintf("closed-loop, %d clients", opt.Clients)
	if opt.OpenLoop {
		mode = "open-loop (generated arrival times)"
	}
	log.Printf("loadgen: %d queries, backend %s, %d-row table, %s", cfg.Queries, cfg.Backend, cfg.TableRows, mode)

	serial, err := runConfig(cfg, opt, "serialized", func(env *exec.LoadEnv) exec.QueryRunner {
		return &exec.SerializedRunner{Pipe: env.Pipe}
	})
	if err != nil {
		return err
	}
	executor, err := runConfig(cfg, opt, "executor", func(env *exec.LoadEnv) exec.QueryRunner {
		return exec.New(env.Pipe, ecfg)
	})
	if err != nil {
		return err
	}
	log.Println(serial)
	log.Println(executor)
	if serial.ThroughputQPS > 0 {
		log.Printf("speedup: %.2fx", executor.ThroughputQPS/serial.ThroughputQPS)
	}

	env, err := exec.BuildLoadEnv(cfg, nil)
	if err != nil {
		return err
	}
	m, err := env.Simulate()
	if err != nil {
		return err
	}
	log.Printf("simulator (static %s): makespan %v  mean %v  p50 %v  p99 %v",
		cfg.Backend, m.Makespan.Round(time.Millisecond), m.MeanLatency.Round(time.Microsecond),
		m.P50.Round(time.Microsecond), m.P99.Round(time.Microsecond))

	if jsonOut != "" {
		return writeJSON(jsonOut, benchDoc(cfg, opt, []*exec.LoadReport{serial, executor}))
	}
	return nil
}

// benchRow is one matrix configuration.
type benchRow struct {
	label    string
	workers  int
	coalesce time.Duration
	maxBatch int
}

// runBench runs the serialized baseline plus the executor at 1/4/8 workers
// with and without coalescing, then writes the markdown table and JSON
// artifact the repo's benchmark docs reference.
func runBench(cfg exec.LoadConfig, opt exec.RunOptions, ecfg exec.Config, jsonOut string) error {
	if jsonOut == "" {
		jsonOut = "BENCH_throughput.json"
	}
	window, batch := ecfg.CoalesceWindow, ecfg.MaxBatch
	rowsSpec := []benchRow{
		{label: "executor w1", workers: 1},
		{label: "executor w4", workers: 4},
		{label: "executor w8", workers: 8},
		{label: "executor w4 +coalesce", workers: 4, coalesce: window, maxBatch: batch},
		{label: "executor w8 +coalesce", workers: 8, coalesce: window, maxBatch: batch},
	}

	log.Printf("bench: %d queries, backend %s, %d-row table, models %v x %v, %d clients, window %v, maxbatch %d",
		cfg.Queries, cfg.Backend, cfg.TableRows, cfg.TreeChoices, cfg.DepthChoices, opt.Clients, window, batch)

	serial, err := runConfig(cfg, opt, "serialized", func(env *exec.LoadEnv) exec.QueryRunner {
		return &exec.SerializedRunner{Pipe: env.Pipe}
	})
	if err != nil {
		return err
	}
	log.Println(serial)
	reports := []*exec.LoadReport{serial}
	for _, row := range rowsSpec {
		rep, err := runConfig(cfg, opt, row.label, func(env *exec.LoadEnv) exec.QueryRunner {
			return exec.New(env.Pipe, exec.Config{
				Workers:        row.workers,
				QueueDepth:     ecfg.QueueDepth,
				CoalesceWindow: row.coalesce,
				MaxBatch:       row.maxBatch,
			})
		})
		if err != nil {
			return err
		}
		log.Println(rep)
		reports = append(reports, rep)
	}

	if err := writeJSON(jsonOut, benchDoc(cfg, opt, reports)); err != nil {
		return err
	}
	mdPath := filepath.Join("results", "throughput_bench.md")
	if err := writeMarkdown(mdPath, cfg, opt, reports); err != nil {
		return err
	}
	log.Printf("wrote %s and %s", mdPath, jsonOut)
	return nil
}

// runChaos runs the healthy-vs-chaos comparison, writes the artifacts and
// fails hard if chaos ever changed a returned prediction — the one invariant
// graceful degradation must keep.
func runChaos(cfg exec.ChaosConfig, jsonOut string) error {
	if jsonOut == "" {
		jsonOut = "CHAOS_report.json"
	}
	log.Printf("chaos: %d queries, backend %s, plan %q, seed %d, deadline %v, retries %d, attempt-timeout %v",
		cfg.Load.Queries, cfg.Load.Backend, cfg.FaultSpec, cfg.FaultSeed, cfg.Deadline,
		cfg.Exec.MaxRetries, cfg.Exec.AttemptTimeout)
	rep, err := exec.RunChaos(cfg)
	if err != nil {
		return err
	}
	log.Println(rep.Healthy)
	log.Println(rep.Chaos)

	doc := envelope("chaos")
	doc["plan"] = rep.Plan
	doc["fault_seed"] = rep.Seed
	doc["deadline"] = cfg.Deadline.String()
	doc["workload"] = map[string]any{
		"queries": cfg.Load.Queries,
		"seed":    cfg.Load.Seed,
		"backend": cfg.Load.Backend,
		"rows":    cfg.Load.TableRows,
		"clients": cfg.Clients,
	}
	doc["healthy"] = rep.Healthy
	doc["chaos"] = rep.Chaos
	if err := writeJSON(jsonOut, doc); err != nil {
		return err
	}
	mdPath := filepath.Join("results", "chaos_report.md")
	if err := writeChaosMarkdown(mdPath, cfg, rep); err != nil {
		return err
	}
	log.Printf("wrote %s and %s", mdPath, jsonOut)

	if rep.Healthy.Wrong > 0 || rep.Chaos.Wrong > 0 {
		return fmt.Errorf("chaos: %d healthy / %d chaos queries returned WRONG predictions",
			rep.Healthy.Wrong, rep.Chaos.Wrong)
	}
	if rep.Healthy.Ok != rep.Healthy.Queries {
		return fmt.Errorf("chaos: healthy baseline lost %d/%d queries",
			rep.Healthy.Queries-rep.Healthy.Ok, rep.Healthy.Queries)
	}
	return nil
}

// writeChaosMarkdown renders the comparison for results/.
func writeChaosMarkdown(path string, cfg exec.ChaosConfig, rep *exec.ChaosReport) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	var sb strings.Builder
	sb.WriteString("# Chaos run: availability and tail latency under injected faults\n\n")
	fmt.Fprintf(&sb, "Measured by `go run ./cmd/loadgen -chaos` on %s/%s, GOMAXPROCS=%d.\n\n",
		runtime.GOOS, runtime.GOARCH, runtime.GOMAXPROCS(0))
	fmt.Fprintf(&sb, "Workload: %d scoring queries, backend %s, %d clients, per-query deadline %v.\n\n",
		cfg.Load.Queries, cfg.Load.Backend, cfg.Clients, cfg.Deadline)
	fmt.Fprintf(&sb, "Fault plan (seed %d): `%s`\n\n", rep.Seed, rep.Plan)
	sb.WriteString("| run | ok | deadline | rejected | errors | wrong | availability | p50 | p99 | faults | retries | fallbacks | breaker transitions |\n")
	sb.WriteString("|---|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|\n")
	for _, r := range []*exec.ChaosRun{rep.Healthy, rep.Chaos} {
		fmt.Fprintf(&sb, "| %s | %d | %d | %d | %d | %d | %.1f%% | %v | %v | %.0f | %.0f | %.0f | %.0f |\n",
			r.Label, r.Ok, r.DeadlineExceeded, r.Rejected, r.OtherErrors+r.Canceled, r.Wrong,
			100*r.Availability, r.P50.Round(time.Microsecond), r.P99.Round(time.Microsecond),
			r.FaultsInjected, r.Retries, r.Fallbacks, r.BreakerTransitions)
	}
	sb.WriteString("\nEvery successful answer is checked bit-for-bit against a fault-free serial " +
		"oracle over the same deterministic stream: injected faults may cost retries, latency " +
		"and — past the deadline — availability, but they never change a returned prediction. " +
		"Retryable faults (busy, corrupt, detected hangs) are absorbed by bounded retry with " +
		"jittered backoff; fatal crashes and open circuit breakers degrade the query to the " +
		"CPU engine, which is what keeps availability up when the accelerator misbehaves.\n")
	return os.WriteFile(path, []byte(sb.String()), 0o644)
}

// benchDoc assembles the JSON artifact on the common envelope.
func benchDoc(cfg exec.LoadConfig, opt exec.RunOptions, reports []*exec.LoadReport) map[string]any {
	speedups := map[string]float64{}
	base := reports[0]
	for _, r := range reports[1:] {
		if base.ThroughputQPS > 0 {
			speedups[r.Label] = r.ThroughputQPS / base.ThroughputQPS
		}
	}
	doc := envelope("throughput")
	doc["workload"] = map[string]any{
		"queries":   cfg.Queries,
		"seed":      cfg.Seed,
		"backend":   cfg.Backend,
		"rows":      cfg.TableRows,
		"trees":     cfg.TreeChoices,
		"depths":    cfg.DepthChoices,
		"clients":   opt.Clients,
		"open_loop": opt.OpenLoop,
		"slo":       obs.FormatSLOSpec(opt.SLO),
	}
	doc["reports"] = reports
	doc["speedup_vs_serialized"] = speedups
	return doc
}

// writeJSON writes v pretty-printed to path.
func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// writeMarkdown renders the matrix as a table for results/.
func writeMarkdown(path string, cfg exec.LoadConfig, opt exec.RunOptions, reports []*exec.LoadReport) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	var sb strings.Builder
	sb.WriteString("# Serving throughput: serialized mutex vs concurrent executor\n\n")
	fmt.Fprintf(&sb, "Measured by `go run ./cmd/loadgen -bench` on %s/%s, GOMAXPROCS=%d (%d CPU).\n\n",
		runtime.GOOS, runtime.GOARCH, runtime.GOMAXPROCS(0), runtime.NumCPU())
	fmt.Fprintf(&sb, "Workload: %d scoring queries over a %d-row table, models %v trees x %v depth, backend %s, ",
		cfg.Queries, cfg.TableRows, cfg.TreeChoices, cfg.DepthChoices, cfg.Backend)
	if opt.OpenLoop {
		sb.WriteString("open-loop replay at generated arrival times.\n\n")
	} else {
		fmt.Fprintf(&sb, "closed-loop with %d concurrent clients.\n\n", opt.Clients)
	}
	haveSLO := len(reports) > 0 && len(reports[0].SLO) > 0
	if haveSLO {
		fmt.Fprintf(&sb, "Latency objectives: `%s` — queries are classified by record count "+
			"(geometric bands, smallest records get the tightest objective); goodput is the "+
			"fraction answered successfully within objective.\n\n", obs.FormatSLOSpec(opt.SLO))
		sb.WriteString("| configuration | ok | rejected | throughput (qps) | mean | p50 | p99 | goodput | speedup |\n")
		sb.WriteString("|---|---:|---:|---:|---:|---:|---:|---:|---:|\n")
	} else {
		sb.WriteString("| configuration | ok | rejected | throughput (qps) | mean | p50 | p99 | speedup |\n")
		sb.WriteString("|---|---:|---:|---:|---:|---:|---:|---:|\n")
	}
	base := reports[0]
	for _, r := range reports {
		speed := "1.00x"
		if r != base && base.ThroughputQPS > 0 {
			speed = fmt.Sprintf("%.2fx", r.ThroughputQPS/base.ThroughputQPS)
		}
		if haveSLO {
			fmt.Fprintf(&sb, "| %s | %d | %d | %.1f | %v | %v | %v | %.1f%% | %s |\n",
				r.Label, r.Ok, r.Rejected, r.ThroughputQPS,
				r.Mean.Round(time.Microsecond), r.P50.Round(time.Microsecond),
				r.P99.Round(time.Microsecond), 100*r.Goodput, speed)
		} else {
			fmt.Fprintf(&sb, "| %s | %d | %d | %.1f | %v | %v | %v | %s |\n",
				r.Label, r.Ok, r.Rejected, r.ThroughputQPS,
				r.Mean.Round(time.Microsecond), r.P50.Round(time.Microsecond),
				r.P99.Round(time.Microsecond), speed)
		}
	}
	if haveSLO {
		sb.WriteString("\n## Per-class goodput\n\n")
		sb.WriteString("| configuration | class | objective | good / total | goodput |\n")
		sb.WriteString("|---|---|---:|---:|---:|\n")
		for _, r := range reports {
			for _, c := range r.SLO {
				fmt.Fprintf(&sb, "| %s | %s | %v | %d / %d | %.1f%% |\n",
					r.Label, c.Class, c.Objective, c.Good, c.Total, 100*c.Goodput)
			}
		}
	}
	sb.WriteString("\nEach configuration runs against a fresh environment (cold model cache). ")
	sb.WriteString("The executor's win on a single core comes from request coalescing — merging " +
		"concurrent same-model queries into one pipeline run amortizes the per-query model-blob " +
		"load/checksum and cache probe, exactly the cross-query overheads the paper's Fig. 11 " +
		"breakdown charges to every invocation. Worker-count scaling beyond the core count adds " +
		"nothing, as expected.\n")
	return os.WriteFile(path, []byte(sb.String()), 0o644)
}
