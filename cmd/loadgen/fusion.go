package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"accelscore/internal/exec"
)

// runFusionBench executes the fused-vs-unfused selectivity matrix and writes
// results/fusion_bench.md plus the machine-readable BENCH_fusion.json. The
// harness itself verifies, on every repetition, that fused answers equal
// post-filtering the unfused ones — a divergence aborts with an error before
// any artifact is written, so a published number is always a verified one.
func runFusionBench(cfg exec.FusionBenchConfig, jsonOut string) error {
	if jsonOut == "" {
		jsonOut = "BENCH_fusion.json"
	}
	log.Printf("fusion bench: %d rows, %d trees x depth %d, backend %s, %d junk cols, selectivities %v, %d repeats",
		cfg.Rows, cfg.Trees, cfg.Depth, cfg.Backend, cfg.JunkCols, cfg.Selectivities, cfg.Repeats)
	rep, err := exec.RunFusionBench(cfg)
	if err != nil {
		return err
	}
	for _, ts := range rep.Tables {
		log.Printf("%-7s %2d REAL cols: full convert %-10v pruned %-10v (%.2fx)",
			ts.Table, ts.RealColumns, time.Duration(ts.ConvertFullNS).Round(time.Microsecond),
			time.Duration(ts.ConvertPrunedNS).Round(time.Microsecond), ts.ConvertSpeedup)
	}
	for _, c := range rep.Cells {
		log.Printf("%-7s sel %5.1f%%: scored %5d/%5d  unfused %-10v fused %-10v speedup %.2fx",
			c.Table, 100*c.Selectivity, c.RowsScored, c.RowsScanned,
			time.Duration(c.UnfusedNS).Round(time.Microsecond),
			time.Duration(c.FusedNS).Round(time.Microsecond), c.Speedup)
	}

	doc := envelope("fusion")
	doc["report"] = rep
	if err := writeJSON(jsonOut, doc); err != nil {
		return err
	}
	mdPath := filepath.Join("results", "fusion_bench.md")
	if err := writeFusionMarkdown(mdPath, rep); err != nil {
		return err
	}
	log.Printf("wrote %s and %s", mdPath, jsonOut)
	return nil
}

// writeFusionMarkdown renders the matrix for results/.
func writeFusionMarkdown(path string, rep *exec.FusionBenchReport) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	var sb strings.Builder
	sb.WriteString("# Operator fusion: pushed-down WHERE vs score-all-then-filter\n\n")
	fmt.Fprintf(&sb, "Measured by `go run ./cmd/loadgen -bench-fusion` on %s/%s, GOMAXPROCS=%d (%d CPU).\n\n",
		runtime.GOOS, runtime.GOARCH, runtime.GOMAXPROCS(0), runtime.NumCPU())
	fmt.Fprintf(&sb, "Workload: %d-row tables, %d trees x depth %d on %s, caches off "+
		"(every query pays its own snapshot conversion and model deserialization), "+
		"median of %d repetitions. The unfused baseline scores every row and filters "+
		"the materialized predictions client-side; the fused query ships the same "+
		"predicate as `@where`, so rows it rejects are never traversed. Every "+
		"repetition checks the two bit-for-bit before its timing counts.\n\n",
		rep.Rows, rep.Trees, rep.Depth, rep.Backend, rep.Repeats)

	sb.WriteString("## Projection pruning (snapshot conversion only)\n\n")
	sb.WriteString("| table | REAL columns | feature columns | full conversion | pruned conversion | speedup |\n")
	sb.WriteString("|---|---:|---:|---:|---:|---:|\n")
	for _, t := range rep.Tables {
		fmt.Fprintf(&sb, "| %s | %d | %d | %v | %v | %.2fx |\n",
			t.Table, t.RealColumns, t.FeatureCols,
			time.Duration(t.ConvertFullNS).Round(time.Microsecond),
			time.Duration(t.ConvertPrunedNS).Round(time.Microsecond), t.ConvertSpeedup)
	}
	sb.WriteString("\nThe full-width conversion is what the pre-fusion pipeline would have paid " +
		"per query — and on tables with non-feature REAL columns it could not even feed " +
		"the engines, which reject a feature-count mismatch. Projection makes conversion " +
		"cost a function of the model, not the table.\n\n")

	sb.WriteString("## Predicate pushdown (end-to-end queries)\n\n")
	sb.WriteString("| table | selectivity | rows scored / scanned | unfused | fused | speedup | unfused sim | fused sim |\n")
	sb.WriteString("|---|---:|---:|---:|---:|---:|---:|---:|\n")
	for _, c := range rep.Cells {
		fmt.Fprintf(&sb, "| %s | %.0f%% | %d / %d | %v | %v | %.2fx | %v | %v |\n",
			c.Table, 100*c.Selectivity, c.RowsScored, c.RowsScanned,
			time.Duration(c.UnfusedNS).Round(time.Microsecond),
			time.Duration(c.FusedNS).Round(time.Microsecond), c.Speedup,
			time.Duration(c.UnfusedSimNS).Round(time.Microsecond),
			time.Duration(c.FusedSimNS).Round(time.Microsecond))
	}
	sb.WriteString("\nAt low selectivity the fused path wins because the kernel never traverses " +
		"rejected rows — the win tracks the fraction of scoring work skipped. At 100% " +
		"selectivity the fused query does strictly more work (predicate evaluation plus " +
		"the selection bitmap) yet stays within noise of the baseline, because the " +
		"selection build is one branchless pass while traversal costs trees x depth per " +
		"row. The simulated timelines shrink the same way: transfer and pre-processing " +
		"still charge scanned rows, but scoring and post-processing charge only scored " +
		"ones.\n")
	return os.WriteFile(path, []byte(sb.String()), 0o644)
}

// floatList parses "0.01,0.1,1" into []float64.
func floatList(s string) []float64 {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			log.Fatalf("bad float list %q: %v", s, err)
		}
		out = append(out, v)
	}
	return out
}
