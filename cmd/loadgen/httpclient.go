package main

import (
	"net/http"
	"time"

	"accelscore/internal/router"
)

// sharedTransport is the one tuned http.Transport every loadgen HTTP client
// shares. Go's default transport keeps only 2 idle connections per host, so
// a closed-loop load with N workers re-handshakes TCP on nearly every
// request and the harness ends up benchmarking the kernel's connect path
// instead of the server. The pool is sized above any worker population the
// harness runs (restart-chaos writers, scale-out bench clients), and sharing
// one transport across scenarios reuses warm connections between phases.
var sharedTransport = router.SharedTransport(64)

// tunedClient returns an HTTP client over the shared transport; only the
// timeout varies per use.
func tunedClient(timeout time.Duration) *http.Client {
	return &http.Client{Transport: sharedTransport, Timeout: timeout}
}
