// Restart chaos: kill the serving process with SIGKILL in the middle of a
// write-heavy load, restart it on the same data directory, and verify the
// durability contract end to end over HTTP:
//
//   - no acknowledged write is lost (every 200 from /sql survives the kill);
//   - no phantom rows appear (every recovered synthetic row was sent by a
//     writer, with exactly the bytes the writer sent);
//   - recovery is deterministic: a second kill+restart recovers the
//     identical table, and a locally retrained copy of the demo model
//     (experiments.DemoForestConfig is seeded, so retraining reproduces it
//     exactly) scores both recoveries bit-identically.
//
// This is the out-of-process complement to the in-process crash harness in
// internal/storage: here the "crash" is a real SIGKILL of a real server
// process, so the WAL fsync path, the HTTP acknowledgement ordering and the
// boot-time recovery all get exercised for real.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"accelscore/internal/dataset"
	"accelscore/internal/experiments"
	"accelscore/internal/forest"
)

// restartChaosConfig parameterizes the kill-and-restart scenario.
type restartChaosConfig struct {
	// ServeBin is a prebuilt serve binary; empty builds one with `go build`
	// (CI prebuilds with -race and passes it in).
	ServeBin string
	// Kills is the number of SIGKILL-under-load cycles before verification.
	Kills int
	// Writers is the number of concurrent writer clients.
	Writers int
	// WriteFor is how long each cycle sustains write load before the kill.
	WriteFor time.Duration
	// DemoRecords sizes the server's seeded iris table.
	DemoRecords int
	// Fsync is the server's WAL sync policy. "always" (the default) and
	// "batch" both guarantee acked durability, so the lost-write gate
	// applies; "none" is loss-permitting and the harness only reports.
	Fsync string
}

// syntheticBase offsets writer-generated sepal_length values so they are
// disjoint from the seeded iris data. Every synthetic value stays below
// 1<<24 so the float32 -> JSON float64 -> float32 round trip is exact.
const syntheticBase = 1000

// syntheticRow derives the full, deterministic row for writer id — the
// verifier recomputes it to check recovered bytes, so acked IDs are all the
// state the harness needs to carry across the kill.
func syntheticRow(id int) [5]float64 {
	return [5]float64{
		syntheticBase + float64(id),
		float64(id%97) / 4,
		float64(id%53) / 8,
		float64(id%29) / 16,
		float64(id % 3),
	}
}

// restartReport is the JSON artifact merged into CHAOS_report.json.
type restartReport struct {
	Kills           int    `json:"kills"`
	Writers         int    `json:"writers"`
	Fsync           string `json:"fsync"`
	Attempted       int    `json:"attempted_writes"`
	Acked           int    `json:"acked_writes"`
	Recovered       int    `json:"recovered_writes"`
	LostAcked       int    `json:"lost_acked_writes"`
	PhantomRows     int    `json:"phantom_rows"`
	CorruptRows     int    `json:"corrupt_rows"`
	PredictionsSame bool   `json:"predictions_bit_identical"`
	ReplayedRecords int64  `json:"replayed_records_final_boot"`
	WALBytes        int64  `json:"wal_bytes_final_boot"`
}

// serveProc is one serve process under harness control.
type serveProc struct {
	cmd *exec.Cmd
	url string
}

// startServe spawns the server on a fresh loopback port over dataDir and
// waits until /healthz answers.
func startServe(bin, dataDir string, cfg restartChaosConfig) (*serveProc, error) {
	port, err := freePort()
	if err != nil {
		return nil, err
	}
	addr := fmt.Sprintf("127.0.0.1:%d", port)
	cmd := exec.Command(bin,
		"-addr", addr,
		"-data-dir", dataDir,
		"-fsync", cfg.Fsync,
		"-demo-records", fmt.Sprint(cfg.DemoRecords))
	cmd.Stdout = io.Discard
	cmd.Stderr = io.Discard
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("starting serve: %w", err)
	}
	p := &serveProc{cmd: cmd, url: "http://" + addr}
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(p.url + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return p, nil
			}
		}
		if time.Now().After(deadline) {
			p.kill()
			return nil, fmt.Errorf("serve on %s never became healthy", addr)
		}
		if cmd.ProcessState != nil {
			return nil, fmt.Errorf("serve exited during startup")
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// kill delivers SIGKILL — the crash under test, not a graceful shutdown —
// and reaps the process.
func (p *serveProc) kill() {
	_ = p.cmd.Process.Kill()
	_ = p.cmd.Wait()
}

func freePort() (int, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	defer l.Close()
	return l.Addr().(*net.TCPAddr).Port, nil
}

// sqlResult mirrors the server's /sql JSON envelope.
type sqlResult struct {
	OK      bool     `json:"ok"`
	Error   string   `json:"error"`
	Columns []string `json:"columns"`
	Rows    [][]any  `json:"rows"`
}

func postSQL(client *http.Client, url, sql string) (*sqlResult, error) {
	resp, err := client.Post(url+"/sql", "text/plain", strings.NewReader(sql))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out sqlResult
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/sql: %s", out.Error)
	}
	return &out, nil
}

// runWriters hammers /sql with INSERTs from cfg.Writers goroutines for
// cfg.WriteFor, then returns. Writers record an attempt before sending and
// an ack only after a 200 — a request cut off by the kill stays in-doubt
// (attempted, not acked), exactly like a real client.
func runWriters(p *serveProc, cfg restartChaosConfig, nextID *atomic.Int64, attempted, acked *sync.Map) {
	client := tunedClient(5 * time.Second)
	stop := time.Now().Add(cfg.WriteFor)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(stop) {
				id := int(nextID.Add(1))
				row := syntheticRow(id)
				attempted.Store(id, true)
				sql := fmt.Sprintf("INSERT INTO iris VALUES (%g, %g, %g, %g, %d)",
					row[0], row[1], row[2], row[3], int(row[4]))
				if res, err := postSQL(client, p.url, sql); err == nil && res.OK {
					acked.Store(id, true)
				} else {
					// The server is (being) killed; in-doubt is fine, done.
					return
				}
			}
		}()
	}
	wg.Wait()
}

// fetchIris pulls the whole iris table and splits it into the seeded demo
// rows and the writer-generated synthetic rows (by id).
func fetchIris(url string) (all [][]float64, synthetic map[int][]float64, err error) {
	client := tunedClient(30 * time.Second)
	res, err := postSQL(client, url,
		"SELECT sepal_length, sepal_width, petal_length, petal_width, label FROM iris")
	if err != nil {
		return nil, nil, err
	}
	synthetic = make(map[int][]float64)
	for _, raw := range res.Rows {
		if len(raw) != 5 {
			return nil, nil, fmt.Errorf("row has %d cells", len(raw))
		}
		row := make([]float64, 5)
		for i, cell := range raw {
			f, ok := cell.(float64)
			if !ok {
				return nil, nil, fmt.Errorf("non-numeric cell %T", cell)
			}
			row[i] = f
		}
		all = append(all, row)
		if row[0] >= syntheticBase {
			id := int(math.Round(row[0] - syntheticBase))
			if _, dup := synthetic[id]; dup {
				return nil, nil, fmt.Errorf("synthetic id %d recovered twice", id)
			}
			synthetic[id] = row
		}
	}
	return all, synthetic, nil
}

// healthzRecovery reads the final boot's recovery stats for the report.
func healthzRecovery(url string) (replayed, walBytes int64) {
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		return 0, 0
	}
	defer resp.Body.Close()
	var h struct {
		Recovery *struct {
			ReplayedRecords int64 `json:"ReplayedRecords"`
		} `json:"recovery"`
		WALBytes int64 `json:"wal_bytes"`
	}
	if json.NewDecoder(resp.Body).Decode(&h) == nil && h.Recovery != nil {
		return h.Recovery.ReplayedRecords, h.WALBytes
	}
	return 0, 0
}

// score runs the locally retrained demo forest over the fetched rows. The
// float64 cells are exact images of the server's float32 values, so the
// predictions are the ones the server itself would compute.
func score(rows [][]float64) ([]int, error) {
	iris := dataset.Iris()
	ds := &dataset.Dataset{
		Name:         "recovered",
		FeatureNames: iris.FeatureNames,
		ClassNames:   iris.ClassNames,
		X:            make([]float32, 0, len(rows)*4),
	}
	for _, row := range rows {
		for _, f := range row[:4] {
			ds.X = append(ds.X, float32(f))
		}
	}
	f, err := forest.Train(dataset.Iris(), experiments.DemoForestConfig)
	if err != nil {
		return nil, err
	}
	return f.PredictBatch(ds), nil
}

// runRestartChaos drives the whole scenario and writes the verdict into the
// chaos JSON artifact plus results/restart_chaos.md. It returns an error —
// failing the run — on any lost acked write, phantom or corrupt row, or
// prediction divergence.
func runRestartChaos(cfg restartChaosConfig, jsonOut string) error {
	if jsonOut == "" {
		jsonOut = "CHAOS_report.json"
	}
	bin := cfg.ServeBin
	if bin == "" {
		tmp, err := os.MkdirTemp("", "accelscore-serve-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		bin = filepath.Join(tmp, "serve")
		log.Printf("restart-chaos: building serve binary")
		build := exec.Command("go", "build", "-o", bin, "accelscore/cmd/serve")
		build.Stderr = os.Stderr
		if err := build.Run(); err != nil {
			return fmt.Errorf("building serve: %w", err)
		}
	}
	dataDir, err := os.MkdirTemp("", "accelscore-data-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dataDir)

	var nextID atomic.Int64
	var attempted, acked sync.Map
	for cycle := 0; cycle < cfg.Kills; cycle++ {
		p, err := startServe(bin, dataDir, cfg)
		if err != nil {
			return fmt.Errorf("cycle %d: %w", cycle, err)
		}
		// SIGKILL lands while writers are mid-request: the goroutine below
		// pulls the trigger partway through the write window.
		killAt := time.Duration(float64(cfg.WriteFor) * 0.6)
		killed := make(chan struct{})
		go func() {
			time.Sleep(killAt)
			p.kill()
			close(killed)
		}()
		runWriters(p, cfg, &nextID, &attempted, &acked)
		<-killed
		log.Printf("restart-chaos: cycle %d killed serve mid-load", cycle+1)
	}

	// Final boot: recovery must hold everything acked across all kills.
	p, err := startServe(bin, dataDir, cfg)
	if err != nil {
		return fmt.Errorf("final boot: %w", err)
	}
	replayed, walBytes := healthzRecovery(p.url)
	all1, syn1, err := fetchIris(p.url)
	if err != nil {
		p.kill()
		return err
	}
	// One more hard kill + boot: recovery must be deterministic, and the
	// retrained demo model must score both recoveries bit-identically.
	p.kill()
	p2, err := startServe(bin, dataDir, cfg)
	if err != nil {
		return fmt.Errorf("determinism boot: %w", err)
	}
	defer p2.kill()
	all2, _, err := fetchIris(p2.url)
	if err != nil {
		return err
	}

	rep := restartReport{
		Kills:           cfg.Kills,
		Writers:         cfg.Writers,
		Fsync:           cfg.Fsync,
		Recovered:       len(syn1),
		ReplayedRecords: replayed,
		WALBytes:        walBytes,
	}
	attempted.Range(func(any, any) bool { rep.Attempted++; return true })
	acked.Range(func(k, _ any) bool {
		rep.Acked++
		if _, ok := syn1[k.(int)]; !ok {
			rep.LostAcked++
		}
		return true
	})
	for id, got := range syn1 {
		if _, sent := attempted.Load(id); !sent {
			rep.PhantomRows++
			continue
		}
		want := syntheticRow(id)
		for i := range want {
			if got[i] != want[i] {
				rep.CorruptRows++
				break
			}
		}
	}
	preds1, err := score(all1)
	if err != nil {
		return err
	}
	preds2, err := score(all2)
	if err != nil {
		return err
	}
	rep.PredictionsSame = len(all1) == len(all2) && len(preds1) == len(preds2)
	if rep.PredictionsSame {
		for i := range preds1 {
			if preds1[i] != preds2[i] || !equalRow(all1[i], all2[i]) {
				rep.PredictionsSame = false
				break
			}
		}
	}

	log.Printf("restart-chaos: %d attempted, %d acked, %d recovered synthetic rows, "+
		"%d lost, %d phantom, %d corrupt, predictions identical: %v",
		rep.Attempted, rep.Acked, rep.Recovered, rep.LostAcked, rep.PhantomRows,
		rep.CorruptRows, rep.PredictionsSame)

	if err := mergeChaosJSON(jsonOut, rep); err != nil {
		return err
	}
	mdPath := filepath.Join("results", "restart_chaos.md")
	if err := writeRestartMarkdown(mdPath, cfg, rep); err != nil {
		return err
	}
	log.Printf("wrote %s and merged restart_chaos into %s", mdPath, jsonOut)

	// Both fsyncing policies guarantee acked durability ("batch" blocks the
	// ack until the group fsync covers it); only "none" is loss-permitting.
	if cfg.Fsync != "none" && rep.LostAcked > 0 {
		return fmt.Errorf("restart-chaos: %d acknowledged writes lost", rep.LostAcked)
	}
	if rep.PhantomRows > 0 || rep.CorruptRows > 0 {
		return fmt.Errorf("restart-chaos: %d phantom, %d corrupt rows recovered",
			rep.PhantomRows, rep.CorruptRows)
	}
	if !rep.PredictionsSame {
		return fmt.Errorf("restart-chaos: predictions diverged between recoveries")
	}
	if rep.Acked == 0 {
		return fmt.Errorf("restart-chaos: no write was ever acknowledged — the load never landed")
	}
	return nil
}

func equalRow(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// mergeChaosJSON adds/overwrites the "restart_chaos" key in the chaos JSON
// artifact, preserving an existing fault-injection report in the same file.
func mergeChaosJSON(path string, rep restartReport) error {
	doc := map[string]any{}
	if data, err := os.ReadFile(path); err == nil {
		_ = json.Unmarshal(data, &doc)
	}
	doc["restart_chaos"] = rep
	// A fresh file gets the full artifact envelope; merging into an existing
	// fault-injection report keeps its envelope (the restart run happened on
	// the same host, and "generated" should date the original numbers).
	for k, v := range envelope("chaos") {
		if _, ok := doc[k]; !ok {
			doc[k] = v
		}
	}
	return writeJSON(path, doc)
}

func writeRestartMarkdown(path string, cfg restartChaosConfig, rep restartReport) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	var sb strings.Builder
	sb.WriteString("# Restart chaos: SIGKILL under write load\n\n")
	fmt.Fprintf(&sb, "Measured by `go run ./cmd/loadgen -chaos-restart`: %d kill/restart cycles, "+
		"%d concurrent writers against /sql, WAL policy `%s`.\n\n", cfg.Kills, cfg.Writers, cfg.Fsync)
	sb.WriteString("| metric | value |\n|---|---:|\n")
	fmt.Fprintf(&sb, "| writes attempted | %d |\n", rep.Attempted)
	fmt.Fprintf(&sb, "| writes acknowledged | %d |\n", rep.Acked)
	fmt.Fprintf(&sb, "| synthetic rows recovered | %d |\n", rep.Recovered)
	fmt.Fprintf(&sb, "| acked writes lost | %d |\n", rep.LostAcked)
	fmt.Fprintf(&sb, "| phantom rows | %d |\n", rep.PhantomRows)
	fmt.Fprintf(&sb, "| corrupt rows | %d |\n", rep.CorruptRows)
	fmt.Fprintf(&sb, "| WAL records replayed at final boot | %d |\n", rep.ReplayedRecords)
	fmt.Fprintf(&sb, "| predictions bit-identical across recoveries | %v |\n", rep.PredictionsSame)
	sb.WriteString("\nEvery 200 on /sql is a durability acknowledgement: with `-fsync always` the\n" +
		"WAL record is on disk before the response leaves the server, so a SIGKILL at\n" +
		"any instant loses only in-doubt requests (sent, never answered) — exactly the\n" +
		"writes a client cannot assume landed. The verifier retrains the demo forest\n" +
		"from its exported seeded config and scores the recovered table after two\n" +
		"independent crash-recoveries; the predictions must match bit for bit, pinning\n" +
		"the paper's requirement that the storage path feeding the accelerator never\n" +
		"perturbs the data.\n")
	return os.WriteFile(path, []byte(sb.String()), 0o644)
}
