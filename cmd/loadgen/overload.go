// Overload and failure-survival bench for the sharded tier. Where
// -bench-scaleout asks "how fast is the scatter when everything works",
// this harness asks the robustness question: what happens PAST saturation,
// with sick shards, under an open-loop arrival process that does not
// politely slow down when the tier does.
//
// The harness boots N serve shards (one intentionally paced slower — the
// straggler), fronts them with a router running the full overload stack
// (health state machine with active probing, tail-latency hedging,
// admission control with priority classes), then:
//
//  1. calibrates saturation throughput closed-loop;
//  2. sweeps offered load past saturation with Poisson and bursty
//     open-loop arrivals, recording goodput, shed, and latency curves;
//  3. runs a chaos cell: SIGKILL one shard and SIGSTOP/SIGCONT-flap
//     another while over-saturated traffic flows;
//  4. waits for the flapped shard to rejoin through quarantine ->
//     probe -> warm -> trickle, then drains at low load.
//
// Every accepted answer is verified against a fault-free in-process
// oracle. The contract: sheds and failures are allowed (that is the point
// of admission control), wrong or silently-partial answers are not — one
// wrong prediction fails the whole bench.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"accelscore/internal/obs"
	"accelscore/internal/router"
)

// overloadConfig parameterizes the overload bench.
type overloadConfig struct {
	// ServeBin is a prebuilt serve binary; empty builds one.
	ServeBin string
	// Shards is the tier width (>= 3: one straggler, one kill victim, one
	// flap victim still leaves a survivor through reroutes).
	Shards int
	// Records is the demo table size per shard.
	Records int
	// Backend is the engine every query requests.
	Backend string
	// PaceScale paces each shard to PaceScale x its simulated total; the
	// straggler shard runs at PaceScale*SlowFactor.
	PaceScale  float64
	SlowFactor float64
	// CellDuration is the open-loop window per sweep cell.
	CellDuration time.Duration
	// LoadMultiples are the offered-load points, as multiples of the
	// calibrated saturation throughput.
	LoadMultiples []float64
	// Deadline is the per-query deadline carried by every open-loop
	// arrival (what deadline-aware shedding trades against).
	Deadline time.Duration
	// MaxInFlight bounds the router's concurrent queries (0 = 2x shards).
	MaxInFlight int
	// Seed drives the arrival processes.
	Seed uint64
	// Chaos enables the kill+flap cell (on by default; CI smoke keeps it).
	Chaos bool
}

// overloadClasses is the admission priority spelling used by the harness:
// interactive sheds last, batch first.
const overloadClasses = "interactive=250ms,batch=2s"

// overloadCell is one open-loop sweep point.
type overloadCell struct {
	Arrival     string            `json:"arrival"`
	LoadMult    float64           `json:"load_multiple"`
	OfferedQPS  float64           `json:"offered_qps"`
	DurationNS  int64             `json:"duration_ns"`
	Offered     int               `json:"offered"`
	Accepted    int               `json:"accepted"`
	Shed        int               `json:"shed"`
	Failed      int               `json:"failed"`
	Wrong       int               `json:"wrong"`
	GoodputQPS  float64           `json:"goodput_qps"`
	P50NS       int64             `json:"p50_ns"`
	P95NS       int64             `json:"p95_ns"`
	P99NS       int64             `json:"p99_ns"`
	Hedges      int               `json:"hedges"`
	HedgeWins   int               `json:"hedge_wins"`
	Reroutes    int               `json:"reroutes"`
	ShedByClass map[string]uint64 `json:"shed_by_class,omitempty"`
}

// overloadChaosReport is the kill+flap cell's verdict.
type overloadChaosReport struct {
	SlowShard    int      `json:"slow_shard"`
	KilledShard  int      `json:"killed_shard"`
	FlappedShard int      `json:"flapped_shard"`
	Offered      int      `json:"offered"`
	Accepted     int      `json:"accepted"`
	Shed         int      `json:"shed"`
	Failed       int      `json:"failed"`
	Wrong        int      `json:"wrong"`
	OKAfterKill  int      `json:"ok_after_kill"`
	Hedges       int      `json:"hedges"`
	HedgeWins    int      `json:"hedge_wins"`
	Reroutes     int      `json:"reroutes"`
	FlapRejoined bool     `json:"flap_rejoined"`
	DrainQueries int      `json:"drain_queries"`
	DrainErrors  int      `json:"drain_errors"`
	DrainWrong   int      `json:"drain_wrong"`
	FinalStates  []string `json:"final_shard_states"`
	Transitions  []int    `json:"shard_transitions"`
	Verdict      string   `json:"verdict"`
}

// overloadRouter builds the harness router: health probing, hedging, and
// admission all on.
func overloadRouter(backends []router.Backend, cfg overloadConfig) (*router.Router, error) {
	classes, err := obs.ParseSLOSpec(overloadClasses)
	if err != nil {
		return nil, err
	}
	maxInFlight := cfg.MaxInFlight
	if maxInFlight <= 0 {
		maxInFlight = 2 * cfg.Shards
	}
	return router.New(router.Config{
		Backends:   backends,
		WarmModels: []string{"iris_rf"},
		Health: &router.HealthConfig{
			ProbeInterval:       150 * time.Millisecond,
			ProbeTimeout:        500 * time.Millisecond,
			FailThreshold:       2,
			QuarantineThreshold: 2,
			PassThreshold:       2,
			RejoinProbes:        2,
			RejoinTrickle:       2,
			QuarantineBackoff:   300 * time.Millisecond,
			MaxBackoff:          2 * time.Second,
		},
		Hedge: &router.HedgeConfig{},
		Admission: &router.AdmissionConfig{
			MaxInFlight: maxInFlight,
			Classes:     classes,
		},
	})
}

// overloadOutcome is one open-loop arrival's result.
type overloadOutcome struct {
	merged    *router.Merged
	err       error
	latency   time.Duration
	afterKill bool
}

// verifyMerged checks one accepted answer against the oracle. Returns a
// non-empty reason when the answer is wrong.
func verifyMerged(m *router.Merged, oracle *scaleOracle) string {
	if m.Partial {
		return "silently partial result"
	}
	if m.ScoredRows != nil {
		return "merged result not dense"
	}
	if len(m.Predictions) != len(oracle.predictions) {
		return fmt.Sprintf("%d predictions, oracle has %d", len(m.Predictions), len(oracle.predictions))
	}
	for i := range m.Predictions {
		if m.Predictions[i] != oracle.predictions[i] {
			return fmt.Sprintf("row %d predicted %d, oracle %d", i, m.Predictions[i], oracle.predictions[i])
		}
	}
	return ""
}

// arrivalTimes generates the cell's arrival schedule: "poisson" draws
// exponential inter-arrivals at rate qps; "burst" releases clumps of 8 at
// the same average rate (the pathological arrival pattern admission control
// exists for).
func arrivalTimes(kind string, qps float64, window time.Duration, rng *rand.Rand) []time.Duration {
	var out []time.Duration
	switch kind {
	case "burst":
		const clump = 8
		gap := time.Duration(float64(clump) / qps * float64(time.Second))
		for t := time.Duration(0); t < window; t += gap {
			for i := 0; i < clump; i++ {
				out = append(out, t)
			}
		}
	default: // poisson
		t := time.Duration(0)
		for {
			t += time.Duration(rng.ExpFloat64() / qps * float64(time.Second))
			if t >= window {
				break
			}
			out = append(out, t)
		}
	}
	return out
}

// runOpenLoop fires the schedule against the router, alternating priority
// classes, and collects every outcome. killed (may be nil) marks outcomes
// that started after the chaos kill.
func runOpenLoop(r *router.Router, sql string, schedule []time.Duration,
	deadline time.Duration, killed *atomic.Bool) []overloadOutcome {
	outcomes := make([]overloadOutcome, len(schedule))
	var wg sync.WaitGroup
	classes := [2]string{"interactive", "batch"}
	start := time.Now()
	for i, at := range schedule {
		wg.Add(1)
		go func(i int, at time.Duration) {
			defer wg.Done()
			if d := at - time.Since(start); d > 0 {
				time.Sleep(d)
			}
			after := killed != nil && killed.Load()
			ctx, cancel := context.WithTimeout(context.Background(), deadline)
			defer cancel()
			qStart := time.Now()
			m, err := r.Query(ctx, sql, router.QueryOptions{Class: classes[i%2]})
			outcomes[i] = overloadOutcome{
				merged: m, err: err, latency: time.Since(qStart), afterKill: after,
			}
		}(i, at)
	}
	wg.Wait()
	return outcomes
}

// tallyCell folds a cell's outcomes into its report row. Wrong answers are
// counted AND returned as an error: the bench has nothing to report once
// the tier fabricates data.
func tallyCell(cell *overloadCell, outcomes []overloadOutcome, oracle *scaleOracle) error {
	var lats []time.Duration
	var firstWrong string
	for _, o := range outcomes {
		cell.Offered++
		if o.err != nil {
			var se *router.ShedError
			if errors.As(o.err, &se) {
				cell.Shed++
			} else {
				cell.Failed++
			}
			continue
		}
		if reason := verifyMerged(o.merged, oracle); reason != "" {
			cell.Wrong++
			if firstWrong == "" {
				firstWrong = reason
			}
			continue
		}
		cell.Accepted++
		cell.Hedges += o.merged.Hedges
		cell.HedgeWins += o.merged.HedgeWins
		cell.Reroutes += o.merged.Reroutes
		lats = append(lats, o.latency)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	cell.P50NS = int64(overloadPercentile(lats, 50))
	cell.P95NS = int64(overloadPercentile(lats, 95))
	cell.P99NS = int64(overloadPercentile(lats, 99))
	cell.GoodputQPS = float64(cell.Accepted) / (float64(cell.DurationNS) / float64(time.Second))
	if cell.Wrong > 0 {
		return fmt.Errorf("bench-overload: %d accepted answers were WRONG (first: %s)", cell.Wrong, firstWrong)
	}
	return nil
}

func overloadPercentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := (len(sorted)*p+99)/100 - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// calibrate measures closed-loop saturation throughput through the full
// router stack (also seeding the hedge trigger's latency rings and the
// admission controller's EWMA latency predictor). Clients stay below the
// tier width so the calibration itself doesn't stack a deep queue on the
// straggler shard and poison the latency predictor.
func calibrate(r *router.Router, sql string, clients int, oracle *scaleOracle) (float64, error) {
	if clients > 2 {
		clients = 2
	}
	queries := clients * 8
	var next atomic.Int64
	var wrong atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if int(next.Add(1)) > queries {
					return
				}
				m, err := r.Query(context.Background(), sql, router.QueryOptions{Class: "interactive"})
				if err != nil {
					continue // calibration tolerates warm-up failures
				}
				if verifyMerged(m, oracle) != "" {
					wrong.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if wrong.Load() > 0 {
		return 0, fmt.Errorf("bench-overload: %d wrong answers during fault-free calibration", wrong.Load())
	}
	qps := float64(queries) / time.Since(start).Seconds()
	return qps, nil
}

// runOverloadChaos is the survival cell: over-saturated Poisson traffic
// while one shard is SIGKILLed and another SIGSTOP/SIGCONT-flapped, then a
// rejoin wait and a low-load drain.
func runOverloadChaos(r *router.Router, procs []*serveProc, cfg overloadConfig,
	sql string, satQPS float64, oracle *scaleOracle, rng *rand.Rand) (*overloadChaosReport, error) {
	n := cfg.Shards
	rep := &overloadChaosReport{
		SlowShard:    n - 1, // boot order: last shard is the straggler
		KilledShard:  0,
		FlappedShard: 1,
	}
	window := 2 * cfg.CellDuration
	if window < 3*time.Second {
		window = 3 * time.Second
	}
	schedule := arrivalTimes("poisson", 1.5*satQPS, window, rng)

	var killed atomic.Bool
	faultsDone := make(chan struct{})
	go func() {
		defer close(faultsDone)
		// t=25%: SIGKILL the kill victim.
		time.Sleep(window / 4)
		log.Printf("bench-overload: chaos SIGKILL shard %d", rep.KilledShard)
		killed.Store(true)
		procs[rep.KilledShard].kill()
		// t=40%..55%: freeze the flap victim (requests to it stall, its
		// probes time out, it quarantines), then thaw it for the rejoin.
		time.Sleep(window * 15 / 100)
		log.Printf("bench-overload: chaos SIGSTOP shard %d", rep.FlappedShard)
		_ = procs[rep.FlappedShard].cmd.Process.Signal(syscall.SIGSTOP)
		time.Sleep(window * 15 / 100)
		log.Printf("bench-overload: chaos SIGCONT shard %d", rep.FlappedShard)
		_ = procs[rep.FlappedShard].cmd.Process.Signal(syscall.SIGCONT)
	}()

	outcomes := runOpenLoop(r, sql, schedule, cfg.Deadline, &killed)
	<-faultsDone

	var firstWrong string
	for _, o := range outcomes {
		rep.Offered++
		if o.err != nil {
			var se *router.ShedError
			if errors.As(o.err, &se) {
				rep.Shed++
			} else {
				rep.Failed++
			}
			continue
		}
		if reason := verifyMerged(o.merged, oracle); reason != "" {
			rep.Wrong++
			if firstWrong == "" {
				firstWrong = reason
			}
			continue
		}
		rep.Accepted++
		rep.Hedges += o.merged.Hedges
		rep.HedgeWins += o.merged.HedgeWins
		rep.Reroutes += o.merged.Reroutes
		if o.afterKill {
			rep.OKAfterKill++
		}
	}

	// Rejoin wait: the flapped shard must come back through quarantine ->
	// probes -> warm -> trickle on its own. The trickle needs real traffic,
	// so keep a slow drip flowing while we wait.
	rejoinDeadline := time.Now().Add(30 * time.Second)
	for r.Health().State(rep.FlappedShard) != router.ShardHealthy {
		if time.Now().After(rejoinDeadline) {
			break
		}
		ctx, cancel := context.WithTimeout(context.Background(), cfg.Deadline)
		m, err := r.Query(ctx, sql, router.QueryOptions{Class: "interactive"})
		cancel()
		if err == nil && verifyMerged(m, oracle) != "" {
			rep.Wrong++
		}
		time.Sleep(50 * time.Millisecond)
	}
	rep.FlapRejoined = r.Health().State(rep.FlappedShard) == router.ShardHealthy

	// Drain: sequential low load after rejoin. Zero errors, zero wrong.
	for i := 0; i < 16; i++ {
		rep.DrainQueries++
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		m, err := r.Query(ctx, sql, router.QueryOptions{Class: "interactive"})
		cancel()
		if err != nil {
			rep.DrainErrors++
			continue
		}
		if verifyMerged(m, oracle) != "" {
			rep.DrainWrong++
		}
	}

	rep.FinalStates = make([]string, n)
	rep.Transitions = make([]int, n)
	for i := 0; i < n; i++ {
		rep.FinalStates[i] = r.Health().State(i).String()
		rep.Transitions[i] = r.Health().Transitions(i)
	}

	rep.Verdict = "pass"
	switch {
	case rep.Wrong > 0 || rep.DrainWrong > 0:
		rep.Verdict = "FAIL: wrong predictions"
		return rep, fmt.Errorf("bench-overload chaos: %d wrong accepted answers (first: %s)",
			rep.Wrong+rep.DrainWrong, firstWrong)
	case rep.OKAfterKill == 0:
		rep.Verdict = "FAIL: goodput hit zero after the kill"
		return rep, fmt.Errorf("bench-overload chaos: no successful query after SIGKILL — " +
			"goodput must degrade, not cliff to zero, while a replica survives")
	case !rep.FlapRejoined:
		rep.Verdict = "FAIL: flapped shard never rejoined"
		return rep, fmt.Errorf("bench-overload chaos: shard %d stuck in state %q after SIGCONT",
			rep.FlappedShard, r.Health().State(rep.FlappedShard))
	case rep.DrainErrors > 0:
		rep.Verdict = "FAIL: post-rejoin errors"
		return rep, fmt.Errorf("bench-overload chaos: %d/%d drain queries failed after rejoin",
			rep.DrainErrors, rep.DrainQueries)
	}
	return rep, nil
}

// bootOverloadShards boots the tier with the last shard paced slower (the
// static straggler the hedge and straggler-gap machinery must absorb).
func bootOverloadShards(bin string, cfg overloadConfig) ([]*serveProc, []router.Backend, error) {
	procs := make([]*serveProc, 0, cfg.Shards)
	backends := make([]router.Backend, 0, cfg.Shards)
	client := tunedClient(120 * time.Second)
	for k := 0; k < cfg.Shards; k++ {
		pace := cfg.PaceScale
		if k == cfg.Shards-1 {
			pace *= cfg.SlowFactor
		}
		p, err := startShard(bin, k, cfg.Records, pace)
		if err != nil {
			killShards(procs)
			return nil, nil, err
		}
		procs = append(procs, p)
		shard, err := router.NewHTTPShard(fmt.Sprintf("shard-%d", k), p.url, client)
		if err != nil {
			killShards(procs)
			return nil, nil, err
		}
		backends = append(backends, shard)
	}
	return procs, backends, nil
}

// runOverloadBench drives the calibration, the open-loop sweep, and the
// chaos cell, writing results/overload_bench.md + BENCH_overload.json.
func runOverloadBench(cfg overloadConfig, jsonOut string) error {
	if jsonOut == "" {
		jsonOut = "BENCH_overload.json"
	}
	if cfg.Shards < 3 {
		return fmt.Errorf("bench-overload: need >= 3 shards (straggler + kill victim + flap victim), got %d", cfg.Shards)
	}
	bin, cleanup, err := ensureServeBin(cfg.ServeBin)
	if err != nil {
		return err
	}
	defer cleanup()

	log.Printf("bench-overload: records=%d building fault-free oracle", cfg.Records)
	oracle, err := buildOracle(cfg.Records, cfg.Backend)
	if err != nil {
		return err
	}
	sql := scaleSQL(cfg.Backend)
	rng := rand.New(rand.NewSource(int64(cfg.Seed)))

	// ---- Sweep tier: all shards nominal except the static straggler.
	procs, backends, err := bootOverloadShards(bin, cfg)
	if err != nil {
		return err
	}
	r, err := overloadRouter(backends, cfg)
	if err != nil {
		killShards(procs)
		return err
	}

	satQPS, err := calibrate(r, sql, cfg.Shards, oracle)
	if err != nil {
		r.Close()
		killShards(procs)
		return err
	}
	log.Printf("bench-overload: calibrated saturation ~%.1f q/s", satQPS)

	var cells []overloadCell
	for _, arrival := range []string{"poisson", "burst"} {
		for _, mult := range cfg.LoadMultiples {
			cell := overloadCell{
				Arrival:    arrival,
				LoadMult:   mult,
				OfferedQPS: mult * satQPS,
				DurationNS: int64(cfg.CellDuration),
			}
			schedule := arrivalTimes(arrival, cell.OfferedQPS, cfg.CellDuration, rng)
			outcomes := runOpenLoop(r, sql, schedule, cfg.Deadline, nil)
			if err := tallyCell(&cell, outcomes, oracle); err != nil {
				r.Close()
				killShards(procs)
				return err
			}
			log.Printf("bench-overload: %s x%.2g: offered %d, goodput %.1f q/s, shed %d, failed %d, hedges %d (%d won)",
				arrival, mult, cell.Offered, cell.GoodputQPS, cell.Shed, cell.Failed, cell.Hedges, cell.HedgeWins)
			cells = append(cells, cell)
		}
	}
	// Fold the admission ledger into the last cell's by-class view and
	// check the books balance: offered == accepted + shed per class.
	admStats := r.AdmissionStats()
	for _, s := range admStats {
		if s.Offered != s.Accepted+s.Shed {
			r.Close()
			killShards(procs)
			return fmt.Errorf("bench-overload: admission ledger out of balance for class %q: %+v", s.Class, s)
		}
	}

	// ---- Chaos cell: fresh tier, same straggler, kill + flap under load.
	var chaosRep *overloadChaosReport
	if cfg.Chaos {
		r.Close()
		killShards(procs)
		procs, backends, err = bootOverloadShards(bin, cfg)
		if err != nil {
			return err
		}
		r, err = overloadRouter(backends, cfg)
		if err != nil {
			killShards(procs)
			return err
		}
		// Seed the hedge trigger and the latency predictor before faults.
		if _, err := calibrate(r, sql, cfg.Shards, oracle); err != nil {
			r.Close()
			killShards(procs)
			return err
		}
		chaosRep, err = runOverloadChaos(r, procs, cfg, sql, satQPS, oracle, rng)
		if chaosRep != nil {
			log.Printf("bench-overload: chaos: offered %d, ok %d (%d after kill), shed %d, failed %d, "+
				"wrong %d, hedges %d, reroutes %d, rejoined=%v, drain %d/%d ok",
				chaosRep.Offered, chaosRep.Accepted, chaosRep.OKAfterKill, chaosRep.Shed,
				chaosRep.Failed, chaosRep.Wrong, chaosRep.Hedges, chaosRep.Reroutes,
				chaosRep.FlapRejoined, chaosRep.DrainQueries-chaosRep.DrainErrors, chaosRep.DrainQueries)
		}
		if err != nil {
			r.Close()
			killShards(procs)
			return err
		}
	}
	r.Close()
	killShards(procs)

	doc := envelope("overload")
	doc["backend"] = cfg.Backend
	doc["shards"] = cfg.Shards
	doc["records"] = cfg.Records
	doc["pace_scale"] = cfg.PaceScale
	doc["slow_factor"] = cfg.SlowFactor
	doc["deadline_ns"] = int64(cfg.Deadline)
	doc["classes"] = overloadClasses
	doc["saturation_qps"] = satQPS
	doc["cells"] = cells
	doc["admission"] = admStats
	if chaosRep != nil {
		doc["chaos"] = chaosRep
	}
	if err := writeJSON(jsonOut, doc); err != nil {
		return err
	}
	mdPath := filepath.Join("results", "overload_bench.md")
	if err := writeOverloadMarkdown(mdPath, cfg, satQPS, cells, chaosRep); err != nil {
		return err
	}
	log.Printf("wrote %s and %s", mdPath, jsonOut)
	return nil
}

func writeOverloadMarkdown(path string, cfg overloadConfig, satQPS float64,
	cells []overloadCell, chaosRep *overloadChaosReport) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	var sb strings.Builder
	sb.WriteString("# Overload survival: the sharded tier past saturation\n\n")
	fmt.Fprintf(&sb, "Measured by `go run ./cmd/loadgen -bench-overload`: %d serve shards "+
		"(the last paced %gx slower — a static straggler), fronted by a router running "+
		"the full overload stack: shard health state machine with active probing, "+
		"tail-latency hedging (adaptive per-shard P95 trigger, budget-capped), and "+
		"admission control (`%s`; capacity, priority, and deadline shedding). Open-loop "+
		"arrivals carry a %v deadline; calibrated saturation is %.1f q/s. Every accepted "+
		"answer is verified against a fault-free single-node oracle.\n\n",
		cfg.Shards, cfg.SlowFactor, overloadClasses, cfg.Deadline, satQPS)
	sb.WriteString("| arrival | load | offered | goodput q/s | shed | failed | wrong | p50 | p95 | p99 | hedges (won) | reroutes |\n")
	sb.WriteString("|:---|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|\n")
	for _, c := range cells {
		fmt.Fprintf(&sb, "| %s | %.2gx | %d | %.1f | %d | %d | %d | %v | %v | %v | %d (%d) | %d |\n",
			c.Arrival, c.LoadMult, c.Offered, c.GoodputQPS, c.Shed, c.Failed, c.Wrong,
			time.Duration(c.P50NS).Round(time.Millisecond),
			time.Duration(c.P95NS).Round(time.Millisecond),
			time.Duration(c.P99NS).Round(time.Millisecond),
			c.Hedges, c.HedgeWins, c.Reroutes)
	}
	sb.WriteString("\nPast saturation an open-loop arrival process keeps offering work the tier " +
		"cannot absorb; without admission control the queue (and every latency percentile) " +
		"grows without bound. The shed column is the valve working: refused queries get an " +
		"immediate 503 + Retry-After instead of a slow timeout, and goodput holds near " +
		"saturation instead of collapsing. Batch sheds before interactive (priority classes " +
		"reuse the SLO objective spelling: the tightest objective sheds last).\n")
	if chaosRep != nil {
		sb.WriteString("\n## Chaos: SIGKILL + SIGSTOP/SIGCONT flap under over-saturated load\n\n")
		fmt.Fprintf(&sb, "With 1.5x saturation Poisson traffic flowing, shard %d was SIGKILLed and "+
			"shard %d frozen (SIGSTOP) then thawed (SIGCONT). Of %d offered: %d accepted "+
			"(**%d after the kill** — goodput degraded, it did not cliff to zero), %d shed, "+
			"%d failed loudly, and **%d wrong** (the only number that is never allowed to be "+
			"non-zero). Hedges fired %d times (%d won — the stalled shard's sub-queries were "+
			"beaten by a healthy replica's); %d partitions rerouted.\n\n",
			chaosRep.KilledShard, chaosRep.FlappedShard, chaosRep.Offered, chaosRep.Accepted,
			chaosRep.OKAfterKill, chaosRep.Shed, chaosRep.Failed, chaosRep.Wrong,
			chaosRep.Hedges, chaosRep.HedgeWins, chaosRep.Reroutes)
		fmt.Fprintf(&sb, "The flapped shard rejoined automatically (quarantine -> probe passes "+
			"after backoff -> model re-warm -> trickle of real traffic): rejoined=%v, final "+
			"states %v, %v transitions. Post-rejoin drain: %d/%d queries ok, %d wrong.\n\n",
			chaosRep.FlapRejoined, chaosRep.FinalStates, chaosRep.Transitions,
			chaosRep.DrainQueries-chaosRep.DrainErrors, chaosRep.DrainQueries, chaosRep.DrainWrong)
		fmt.Fprintf(&sb, "Verdict: %s.\n", chaosRep.Verdict)
	}
	return os.WriteFile(path, []byte(sb.String()), 0o644)
}
