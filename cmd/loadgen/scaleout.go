// Scale-out bench: measure the sharded scatter-gather tier for real. The
// harness boots N serve processes as shards (each pinned to -workers 1 with
// -pace-scale, so one shard behaves like one simulated scoring device),
// fronts them with the router, and sweeps shard count x record count under a
// closed-loop client population. Every repetition's merged predictions are
// verified bit-identical against an in-process single-node oracle before its
// timing counts — a scale-out tier that returns different answers has no
// throughput worth reporting.
//
// The measured curve is written next to the sched scatter simulator's
// predicted curve (same workload, same shard counts), so the gap — HTTP,
// JSON, the gather barrier's straggler tax — is a number, not a feeling.
// This is the paper's overheads question asked at tier scale: partitioning
// buys parallel scoring, but the per-sub-query invocation costs do not
// amortize as the scatter widens.
//
// A chaos leg SIGKILLs one shard mid-run and asserts the router's
// degradation contract: queries may fail or reroute, but a successful
// answer is always bit-identical — never silently wrong or partial.
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"accelscore/internal/dataset"
	"accelscore/internal/experiments"
	"accelscore/internal/forest"
	"accelscore/internal/model"
	"accelscore/internal/router"
	"accelscore/internal/sched"
)

// scaleoutConfig parameterizes the scale-out bench.
type scaleoutConfig struct {
	// ServeBin is a prebuilt serve binary; empty builds one.
	ServeBin string
	// Shards are the scatter widths to sweep (1 anchors the speedups).
	Shards []int
	// Records are the demo table sizes to sweep (the per-query workload).
	Records []int
	// Queries is the closed-loop query count per cell.
	Queries int
	// Backend is the engine every query requests.
	Backend string
	// PaceScale paces each shard to PaceScale x its simulated total.
	PaceScale float64
	// Chaos enables the SIGKILL-one-shard leg.
	Chaos bool
	// MinSpeedup, when positive, fails the run unless the best measured
	// speedup at the widest scatter reaches it (the acceptance gate).
	MinSpeedup float64
	// RouterOverhead is the fixed per-sub-query cost fed to the predicted
	// curve (request handling + serialization on a shard).
	RouterOverhead time.Duration
}

// scaleCell is one measured sweep point.
type scaleCell struct {
	Records          int     `json:"records"`
	Shards           int     `json:"shards"`
	Queries          int     `json:"queries"`
	MakespanNS       int64   `json:"makespan_ns"`
	QueriesPerSec    float64 `json:"queries_per_sec"`
	RowsPerSec       float64 `json:"rows_per_sec"`
	Speedup          float64 `json:"speedup"`
	MeanLatencyNS    int64   `json:"mean_latency_ns"`
	MeanStragglerNS  int64   `json:"mean_straggler_gap_ns"`
	Reroutes         int     `json:"reroutes"`
	CacheHits        int     `json:"cache_hits"`
	BitIdentical     bool    `json:"verified_bit_identical"`
	PredictedQPS     float64 `json:"predicted_queries_per_sec"`
	PredictedSpeedup float64 `json:"predicted_speedup"`
	PredictedLatNS   int64   `json:"predicted_mean_latency_ns"`
}

// scaleChaos is the SIGKILL leg's verdict.
type scaleChaos struct {
	Shards           int    `json:"shards"`
	Records          int    `json:"records"`
	KilledShard      int    `json:"killed_shard"`
	QueriesOK        int    `json:"queries_ok"`
	QueriesFailed    int    `json:"queries_failed"`
	OKAfterKill      int    `json:"ok_after_kill"`
	Reroutes         int    `json:"reroutes"`
	WrongPredictions int    `json:"wrong_predictions"`
	Verdict          string `json:"verdict"`
}

// ensureServeBin returns a serve binary path, building one into a temp dir
// when bin is empty. cleanup is non-nil only for the built case.
func ensureServeBin(bin string) (string, func(), error) {
	if bin != "" {
		return bin, func() {}, nil
	}
	tmp, err := os.MkdirTemp("", "accelscore-serve-*")
	if err != nil {
		return "", nil, err
	}
	out := filepath.Join(tmp, "serve")
	log.Printf("bench-scaleout: building serve binary")
	build := exec.Command("go", "build", "-o", out, "accelscore/cmd/serve")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		os.RemoveAll(tmp)
		return "", nil, fmt.Errorf("building serve: %w", err)
	}
	return out, func() { os.RemoveAll(tmp) }, nil
}

// startShard boots one serve process as shard k over a records-row demo
// table and waits until it answers /healthz. -workers 1 plus -pace-scale
// makes the shard serve like a single simulated device; coalescing and
// attribution are off so the measurement is the scoring path itself.
func startShard(bin string, k, records int, paceScale float64) (*serveProc, error) {
	port, err := freePort()
	if err != nil {
		return nil, err
	}
	addr := fmt.Sprintf("127.0.0.1:%d", port)
	cmd := exec.Command(bin,
		"-addr", addr,
		"-shard-id", fmt.Sprintf("shard-%d", k),
		"-demo-records", fmt.Sprint(records),
		"-workers", "1",
		"-pace-scale", fmt.Sprint(paceScale),
		"-coalesce", "0",
		"-attrib=false",
		"-runtime-sample", "0")
	cmd.Stdout = io.Discard
	cmd.Stderr = io.Discard
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("starting shard %d: %w", k, err)
	}
	p := &serveProc{cmd: cmd, url: "http://" + addr}
	deadline := time.Now().Add(60 * time.Second)
	client := tunedClient(2 * time.Second)
	for {
		resp, err := client.Get(p.url + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == 200 {
				return p, nil
			}
		}
		if time.Now().After(deadline) {
			p.kill()
			return nil, fmt.Errorf("shard %d on %s never became healthy", k, addr)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// bootShards starts n shards over the same workload shape.
func bootShards(bin string, n, records int, paceScale float64) ([]*serveProc, []router.Backend, error) {
	procs := make([]*serveProc, 0, n)
	backends := make([]router.Backend, 0, n)
	client := tunedClient(120 * time.Second)
	for k := 0; k < n; k++ {
		p, err := startShard(bin, k, records, paceScale)
		if err != nil {
			for _, q := range procs {
				q.kill()
			}
			return nil, nil, err
		}
		procs = append(procs, p)
		shard, err := router.NewHTTPShard(fmt.Sprintf("shard-%d", k), p.url, client)
		if err != nil {
			for _, q := range procs {
				q.kill()
			}
			return nil, nil, err
		}
		backends = append(backends, shard)
	}
	return procs, backends, nil
}

func killShards(procs []*serveProc) {
	for _, p := range procs {
		p.kill()
	}
}

// scaleOracle is the single-node ground truth for one record count: the
// exact predictions every routed repetition must reproduce, plus the
// calibrated per-record-count service estimator feeding the predicted curve.
type scaleOracle struct {
	predictions []int
	service     func(records int64) (time.Duration, error)
}

// buildOracle trains the identical demo environment in-process, scores it
// single-node once for the ground-truth predictions, and derives the service
// estimator from the seeded demo forest's shape (DemoForestConfig is seeded,
// so retraining reproduces the servers' model exactly).
func buildOracle(records int, backend string) (*scaleOracle, error) {
	demo, err := experiments.NewDemo(records)
	if err != nil {
		return nil, err
	}
	res, err := demo.Pipe.ExecQuery(scaleSQL(backend))
	if err != nil {
		return nil, err
	}
	f, err := forest.Train(dataset.Iris(), experiments.DemoForestConfig)
	if err != nil {
		return nil, err
	}
	stats := f.ComputeStats()
	blobBytes := int64(stats.TotalNodes)*model.ApproxNodeBytes + 64
	return &scaleOracle{
		predictions: res.Predictions,
		service: func(recs int64) (time.Duration, error) {
			tl, _, err := demo.Pipe.Estimate(stats, recs, blobBytes, backend)
			if err != nil {
				return 0, err
			}
			return tl.Total(), nil
		},
	}, nil
}

func scaleSQL(backend string) string {
	return fmt.Sprintf("EXEC sp_score_model @model='iris_rf', @data='iris', @backend='%s'", backend)
}

// runScaleCell measures one (records, shards) sweep point: queries issued
// closed-loop by `shards` clients through a fresh router, every merged
// result verified against the oracle.
func runScaleCell(backends []router.Backend, shards, queries int, sql string, oracle *scaleOracle) (*scaleCell, error) {
	r, err := router.New(router.Config{
		Backends:   backends[:shards],
		WarmModels: []string{"iris_rf"},
	})
	if err != nil {
		return nil, err
	}
	type outcome struct {
		merged *router.Merged
		err    error
	}
	outcomes := make([]outcome, queries)
	var next atomic.Int64
	clients := shards
	if clients > queries {
		clients = queries
	}
	ctx := context.Background()
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				q := int(next.Add(1)) - 1
				if q >= queries {
					return
				}
				m, err := r.Query(ctx, sql, router.QueryOptions{})
				outcomes[q] = outcome{merged: m, err: err}
			}
		}()
	}
	wg.Wait()
	makespan := time.Since(start)

	cell := &scaleCell{
		Shards:       shards,
		Queries:      queries,
		MakespanNS:   int64(makespan),
		BitIdentical: true,
	}
	var latSum, gapSum time.Duration
	for q, o := range outcomes {
		if o.err != nil {
			return nil, fmt.Errorf("query %d on %d shards: %w", q, shards, o.err)
		}
		m := o.merged
		if m.Partial {
			return nil, fmt.Errorf("query %d on %d shards degraded to partial with all shards healthy", q, shards)
		}
		if m.ScoredRows != nil {
			return nil, fmt.Errorf("query %d on %d shards: merged result not dense (%d ordinals kept)",
				q, shards, len(m.ScoredRows))
		}
		if len(m.Predictions) != len(oracle.predictions) {
			return nil, fmt.Errorf("query %d on %d shards: %d predictions, single-node %d",
				q, shards, len(m.Predictions), len(oracle.predictions))
		}
		for i := range m.Predictions {
			if m.Predictions[i] != oracle.predictions[i] {
				return nil, fmt.Errorf("query %d on %d shards: row %d predicted %d, single-node %d — NOT bit-identical",
					q, shards, i, m.Predictions[i], oracle.predictions[i])
			}
		}
		cell.Reroutes += m.Reroutes
		if m.CacheHit {
			cell.CacheHits++
		}
		gapSum += m.StragglerGap
		var worst time.Duration
		for _, l := range m.ShardLatency {
			if l > worst {
				worst = l
			}
		}
		latSum += worst
	}
	cell.QueriesPerSec = float64(queries) / makespan.Seconds()
	cell.RowsPerSec = cell.QueriesPerSec * float64(len(oracle.predictions))
	cell.MeanLatencyNS = int64(latSum) / int64(queries)
	cell.MeanStragglerNS = int64(gapSum) / int64(queries)
	return cell, nil
}

// runScaleChaos is the degradation leg: SIGKILL one shard while queries
// flow, then verify every successful answer stayed bit-identical and that
// the tier kept answering through reroutes after the kill.
func runScaleChaos(bin string, cfg scaleoutConfig, records int, oracle *scaleOracle) (*scaleChaos, error) {
	const shards = 3
	procs, backends, err := bootShards(bin, shards, records, cfg.PaceScale)
	if err != nil {
		return nil, err
	}
	defer killShards(procs)
	r, err := router.New(router.Config{
		Backends:   backends,
		WarmModels: []string{"iris_rf"},
	})
	if err != nil {
		return nil, err
	}
	sql := scaleSQL(cfg.Backend)
	queries := cfg.Queries * 3
	if queries < 12 {
		queries = 12
	}
	const killedShard = 1
	killAfter := queries / 3
	rep := &scaleChaos{Shards: shards, Records: records, KilledShard: killedShard}
	type outcome struct {
		merged    *router.Merged
		err       error
		afterKill bool
	}
	outcomes := make([]outcome, queries)
	var next atomic.Int64
	var killed atomic.Bool
	ctx := context.Background()
	var wg sync.WaitGroup
	for c := 0; c < shards; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				q := int(next.Add(1)) - 1
				if q >= queries {
					return
				}
				if q == killAfter && killed.CompareAndSwap(false, true) {
					log.Printf("bench-scaleout: chaos SIGKILL shard %d mid-run", killedShard)
					procs[killedShard].kill()
				}
				after := killed.Load()
				m, err := r.Query(ctx, sql, router.QueryOptions{})
				outcomes[q] = outcome{merged: m, err: err, afterKill: after}
			}
		}()
	}
	wg.Wait()

	for _, o := range outcomes {
		if o.err != nil {
			rep.QueriesFailed++
			continue
		}
		m := o.merged
		if m.Partial {
			// Partial mode is off: a partial here is a contract violation.
			rep.WrongPredictions++
			continue
		}
		ok := len(m.Predictions) == len(oracle.predictions)
		if ok {
			for i := range m.Predictions {
				if m.Predictions[i] != oracle.predictions[i] {
					ok = false
					break
				}
			}
		}
		if !ok {
			rep.WrongPredictions++
			continue
		}
		rep.QueriesOK++
		rep.Reroutes += m.Reroutes
		if o.afterKill {
			rep.OKAfterKill++
		}
	}
	rep.Verdict = "pass"
	if rep.WrongPredictions > 0 {
		rep.Verdict = "FAIL: wrong predictions"
		return rep, fmt.Errorf("bench-scaleout chaos: %d queries returned wrong or partial predictions",
			rep.WrongPredictions)
	}
	if rep.OKAfterKill == 0 {
		rep.Verdict = "FAIL: no successful query after the kill"
		return rep, fmt.Errorf("bench-scaleout chaos: tier never recovered after SIGKILL")
	}
	return rep, nil
}

// runScaleoutBench drives the full sweep and writes
// results/scaleout_bench.md + BENCH_scaleout.json.
func runScaleoutBench(cfg scaleoutConfig, jsonOut string) error {
	if jsonOut == "" {
		jsonOut = "BENCH_scaleout.json"
	}
	bin, cleanup, err := ensureServeBin(cfg.ServeBin)
	if err != nil {
		return err
	}
	defer cleanup()

	maxShards := 0
	for _, n := range cfg.Shards {
		if n > maxShards {
			maxShards = n
		}
	}
	if maxShards == 0 {
		return fmt.Errorf("bench-scaleout: empty shard sweep")
	}

	sql := scaleSQL(cfg.Backend)
	var cells []scaleCell
	var chaosRep *scaleChaos
	for _, records := range cfg.Records {
		log.Printf("bench-scaleout: records=%d building single-node oracle", records)
		oracle, err := buildOracle(records, cfg.Backend)
		if err != nil {
			return err
		}
		predicted, err := sched.ScatterCurve(sched.ScatterConfig{
			Queries:  cfg.Queries,
			Records:  int64(records),
			Service:  oracle.service,
			Overhead: cfg.RouterOverhead,
		}, cfg.Shards)
		if err != nil {
			return err
		}
		predByShards := map[int]sched.ScatterPoint{}
		for _, p := range predicted {
			predByShards[p.Shards] = p
		}

		procs, backends, err := bootShards(bin, maxShards, records, cfg.PaceScale)
		if err != nil {
			return err
		}
		var base float64
		for _, n := range cfg.Shards {
			log.Printf("bench-scaleout: records=%d shards=%d: %d queries", records, n, cfg.Queries)
			cell, err := runScaleCell(backends, n, cfg.Queries, sql, oracle)
			if err != nil {
				killShards(procs)
				return err
			}
			cell.Records = records
			if base == 0 {
				base = cell.QueriesPerSec
			}
			cell.Speedup = cell.QueriesPerSec / base
			if p, ok := predByShards[n]; ok {
				cell.PredictedQPS = p.Throughput
				cell.PredictedSpeedup = p.Speedup
				cell.PredictedLatNS = int64(p.MeanLatency)
			}
			log.Printf("bench-scaleout: records=%d shards=%d: %.2f q/s (speedup %.2fx, predicted %.2fx), "+
				"straggler gap %v, bit-identical",
				records, n, cell.QueriesPerSec, cell.Speedup, cell.PredictedSpeedup,
				time.Duration(cell.MeanStragglerNS).Round(time.Millisecond))
			cells = append(cells, *cell)
		}
		killShards(procs)

		if cfg.Chaos && chaosRep == nil {
			chaosRep, err = runScaleChaos(bin, cfg, records, oracle)
			if err != nil {
				return err
			}
			log.Printf("bench-scaleout: chaos: %d ok (%d after kill), %d failed, %d reroutes, %d wrong",
				chaosRep.QueriesOK, chaosRep.OKAfterKill, chaosRep.QueriesFailed,
				chaosRep.Reroutes, chaosRep.WrongPredictions)
		}
	}

	best := bestSpeedup(cells, maxShards)
	doc := envelope("scaleout")
	doc["backend"] = cfg.Backend
	doc["pace_scale"] = cfg.PaceScale
	doc["queries_per_cell"] = cfg.Queries
	doc["router_overhead_ns"] = int64(cfg.RouterOverhead)
	doc["cells"] = cells
	doc["best_speedup_at_max_shards"] = best
	if chaosRep != nil {
		doc["chaos"] = chaosRep
	}
	if err := writeJSON(jsonOut, doc); err != nil {
		return err
	}
	mdPath := filepath.Join("results", "scaleout_bench.md")
	if err := writeScaleoutMarkdown(mdPath, cfg, cells, chaosRep, best); err != nil {
		return err
	}
	log.Printf("wrote %s and %s", mdPath, jsonOut)

	if cfg.MinSpeedup > 0 && best < cfg.MinSpeedup {
		return fmt.Errorf("bench-scaleout: best speedup at %d shards is %.2fx, below the %.2fx gate",
			maxShards, best, cfg.MinSpeedup)
	}
	return nil
}

// bestSpeedup returns the highest measured speedup among max-width cells.
func bestSpeedup(cells []scaleCell, maxShards int) float64 {
	best := 0.0
	for _, c := range cells {
		if c.Shards == maxShards && c.Speedup > best {
			best = c.Speedup
		}
	}
	return best
}

func writeScaleoutMarkdown(path string, cfg scaleoutConfig, cells []scaleCell, chaosRep *scaleChaos, best float64) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	var sb strings.Builder
	sb.WriteString("# Scale-out serving: sharded scatter-gather vs single node\n\n")
	fmt.Fprintf(&sb, "Measured by `go run ./cmd/loadgen -bench-scaleout`: real serve processes "+
		"(one per shard, `-workers 1 -pace-scale %g` so each shard serves like one simulated "+
		"scoring device), fronted by the router, backend %s, %d closed-loop queries per cell. "+
		"Every repetition's merged predictions are verified bit-identical against an "+
		"in-process single-node oracle before its timing counts.\n\n",
		cfg.PaceScale, cfg.Backend, cfg.Queries)
	sb.WriteString("| records | shards | queries/s | rows/s | speedup | predicted speedup | mean latency | straggler gap | bit-identical |\n")
	sb.WriteString("|---:|---:|---:|---:|---:|---:|---:|---:|:---|\n")
	for _, c := range cells {
		fmt.Fprintf(&sb, "| %d | %d | %.2f | %.0f | %.2fx | %.2fx | %v | %v | %v |\n",
			c.Records, c.Shards, c.QueriesPerSec, c.RowsPerSec, c.Speedup, c.PredictedSpeedup,
			time.Duration(c.MeanLatencyNS).Round(time.Millisecond),
			time.Duration(c.MeanStragglerNS).Round(time.Millisecond),
			c.BitIdentical)
	}
	fmt.Fprintf(&sb, "\nBest measured speedup at the widest scatter: **%.2fx**.\n\n", best)
	sb.WriteString("The predicted column is the `sched` scatter simulator run on the same " +
		"workload (calibrated per-partition service times plus a fixed per-sub-query router " +
		"overhead): the measured-vs-predicted gap is the real tier's unamortized costs — " +
		"HTTP, JSON serialization and the gather barrier waiting on the slowest shard. " +
		"Small record counts stay overhead-bound (the paper's unamortized-invocation regime " +
		"at tier scale): the fixed per-sub-query invocation cost is paid once per shard per " +
		"query, so widening the scatter cannot help until per-partition compute dominates.\n")
	if chaosRep != nil {
		sb.WriteString("\n## Chaos: SIGKILL one shard mid-run\n\n")
		fmt.Fprintf(&sb, "With %d shards serving, shard %d was SIGKILLed mid-run: %d queries "+
			"succeeded (%d after the kill, via %d reroutes), %d failed, and **%d** returned "+
			"wrong or silently partial predictions — the degradation contract is reroute or "+
			"fail loudly, never fabricate.\n",
			chaosRep.Shards, chaosRep.KilledShard, chaosRep.QueriesOK, chaosRep.OKAfterKill,
			chaosRep.Reroutes, chaosRep.QueriesFailed, chaosRep.WrongPredictions)
		fmt.Fprintf(&sb, "\nVerdict: %s.\n", chaosRep.Verdict)
	}
	return os.WriteFile(path, []byte(sb.String()), 0o644)
}
