// Command conformance runs the cross-engine differential conformance matrix
// and the golden-figure regression comparison.
//
// Usage:
//
//	conformance [-short] [-golden DIR] [-report FILE]   run the gate
//	conformance -bless [-golden DIR]                    re-bless the goldens
//
// The matrix checks every registered engine — CPU_SKLearn, both CPU_ONNX
// variants, GPU_RAPIDS, GPU_HB, the FPGA and its hybrid deep-tree variant —
// against a double-precision reference oracle over seeded random forests
// and datasets, plus metamorphic and timing invariants and the end-to-end
// sp_score_model pipeline. The golden comparison regenerates figures
// 1/7/8/9/10/11 and diffs them against the blessed CSVs. Exit status is
// non-zero on any failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"accelscore/internal/conformance"
	"accelscore/internal/experiments"
)

func main() {
	short := flag.Bool("short", false, "run the reduced CI matrix (smaller models and sweeps)")
	bless := flag.Bool("bless", false, "regenerate and overwrite the blessed golden figures, then exit")
	golden := flag.String("golden", "results/golden", "blessed golden-figure directory")
	report := flag.String("report", "", "also write the report to this file")
	flag.Parse()

	if *bless {
		if err := experiments.NewSuite().WriteGoldenDir(*golden); err != nil {
			fmt.Fprintln(os.Stderr, "conformance: blessing goldens:", err)
			os.Exit(1)
		}
		fmt.Printf("Blessed golden figures into %s\n", *golden)
		return
	}

	var out strings.Builder
	failed := false

	cases, err := conformance.Cases(*short)
	if err != nil {
		fmt.Fprintln(os.Stderr, "conformance: building cases:", err)
		os.Exit(1)
	}
	rep, err := conformance.NewRunner().Run(cases)
	if err != nil {
		fmt.Fprintln(os.Stderr, "conformance: running matrix:", err)
		os.Exit(1)
	}
	out.WriteString(rep.Summary())
	if !rep.OK() {
		failed = true
	}

	out.WriteString("\nGolden figures: ")
	diffs, err := experiments.NewSuite().CompareGoldenDir(*golden)
	switch {
	case err != nil:
		fmt.Fprintf(&out, "comparison failed: %v\n", err)
		failed = true
	case len(diffs) > 0:
		fmt.Fprintf(&out, "%d divergence(s) from %s:\n", len(diffs), *golden)
		for _, d := range diffs {
			fmt.Fprintf(&out, "  %s\n", d)
		}
		failed = true
	default:
		fmt.Fprintf(&out, "match %s\n", *golden)
	}

	fmt.Print(out.String())
	if *report != "" {
		if err := os.WriteFile(*report, []byte(out.String()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "conformance: writing report:", err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}
