// Command repro regenerates every table and figure of the paper's
// evaluation section and writes the renderings to stdout or a directory.
//
// Usage:
//
//	repro [-fig 1|7|8|9|10|11|headline|ext|report|all] [-out DIR] [-csv]
//	      [-trace out.json]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"accelscore/internal/experiments"
	"accelscore/internal/obs"
)

func main() {
	fig := flag.String("fig", "all", "which figure to regenerate: 1, 7, 8, 9, 10, 11, headline, ext, report, or all")
	out := flag.String("out", "", "directory to write per-figure .txt files (default: stdout)")
	csvOut := flag.Bool("csv", false, "also write machine-readable .csv files (requires -out)")
	tracePath := flag.String("trace", "", "write Chrome trace-event JSON of the pipeline queries run while building figures")
	flag.Parse()

	if *csvOut && *out == "" {
		fmt.Fprintln(os.Stderr, "repro: -csv requires -out")
		os.Exit(1)
	}
	s := experiments.NewSuite()
	var o *obs.Observer
	if *tracePath != "" {
		o = obs.NewObserver()
		s.Pipe.Obs = o
	}
	sections, err := build(s, *fig, *csvOut)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
	if *tracePath != "" {
		if err := writeTrace(o, *tracePath); err != nil {
			fmt.Fprintln(os.Stderr, "repro:", err)
			os.Exit(1)
		}
	}
	if *out == "" {
		for _, sec := range sections {
			if !sec.csv {
				fmt.Println(sec.body)
			}
		}
		return
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
	for _, sec := range sections {
		path := filepath.Join(*out, sec.file)
		if err := os.WriteFile(path, []byte(sec.body), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "repro:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", path)
	}
}

// writeTrace dumps every trace the suite's pipeline retained — the Fig. 11
// estimates route through pipeline.Estimate, so -fig 11 (or all) records one
// trace per table/backend pair.
func writeTrace(o *obs.Observer, path string) error {
	n := o.Tracer.Len()
	if n == 0 {
		fmt.Fprintln(os.Stderr, "repro: warning: no pipeline queries ran for this figure; trace will be empty")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := o.Tracer.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %d traces to %s (open in chrome://tracing or Perfetto)\n", n, path)
	return nil
}

type section struct {
	file string
	body string
	csv  bool
}

func build(s *experiments.Suite, fig string, withCSV bool) ([]section, error) {
	var out []section
	want := func(name string) bool { return fig == "all" || fig == name }

	if want("1") {
		r, err := s.Fig1()
		if err != nil {
			return nil, err
		}
		out = append(out, section{file: "fig1.txt", body: experiments.RenderFig1(r)})
	}
	if want("7") {
		rows, err := s.Fig7()
		if err != nil {
			return nil, err
		}
		out = append(out, section{file: "fig7.txt", body: experiments.RenderFig7(rows)})
	}
	if want("8") {
		for _, shape := range []experiments.DatasetShape{experiments.IrisShape, experiments.HiggsShape} {
			r, err := s.Fig8(shape)
			if err != nil {
				return nil, err
			}
			out = append(out, section{file: fmt.Sprintf("fig8_%s.txt", shape.Name), body: experiments.RenderFig8(r)})
			if withCSV {
				var buf strings.Builder
				if err := experiments.WriteFig8CSV(&buf, r); err != nil {
					return nil, err
				}
				out = append(out, section{file: fmt.Sprintf("fig8_%s.csv", shape.Name), body: buf.String(), csv: true})
			}
		}
	}
	if want("9") {
		panels, err := s.Fig9()
		if err != nil {
			return nil, err
		}
		out = append(out, section{file: "fig9.txt", body: experiments.RenderFig9(panels)})
		if withCSV {
			var buf strings.Builder
			if err := experiments.WriteFig9CSV(&buf, panels); err != nil {
				return nil, err
			}
			out = append(out, section{file: "fig9.csv", body: buf.String(), csv: true})
		}
	}
	if want("10") {
		panels, err := s.Fig10()
		if err != nil {
			return nil, err
		}
		out = append(out, section{file: "fig10.txt", body: experiments.RenderFig10(panels)})
		if withCSV {
			var buf strings.Builder
			if err := experiments.WriteFig10CSV(&buf, panels); err != nil {
				return nil, err
			}
			out = append(out, section{file: "fig10.csv", body: buf.String(), csv: true})
		}
	}
	if want("11") {
		rows, err := s.Fig11()
		if err != nil {
			return nil, err
		}
		out = append(out, section{file: "fig11.txt", body: experiments.RenderFig11(rows)})
		if withCSV {
			var buf strings.Builder
			if err := experiments.WriteFig11CSV(&buf, rows); err != nil {
				return nil, err
			}
			out = append(out, section{file: "fig11.csv", body: buf.String(), csv: true})
		}
	}
	if want("headline") {
		hs, err := s.Headlines()
		if err != nil {
			return nil, err
		}
		out = append(out, section{file: "headline.txt", body: experiments.RenderHeadlines(hs)})
	}
	if want("report") {
		md, _, err := s.Report()
		if err != nil {
			return nil, err
		}
		out = append(out, section{file: "report.md", body: md})
	}
	if want("ext") {
		sc, err := s.SchedulerExperiment(500, 1)
		if err != nil {
			return nil, err
		}
		fits, err := s.LogCAExperiment()
		if err != nil {
			return nil, err
		}
		sens, err := s.Sensitivity([]float64{0.5, 1, 2})
		if err != nil {
			return nil, err
		}
		fpgaRows, cpuRows, err := s.ScaleOut()
		if err != nil {
			return nil, err
		}
		body := experiments.RenderScheduler(sc) + "\n" +
			experiments.RenderLogCA(fits) + "\n" +
			experiments.RenderSensitivity(sens) + "\n" +
			experiments.RenderScaleOut(fpgaRows, cpuRows)
		out = append(out, section{file: "extensions.txt", body: body})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("unknown figure %q", fig)
	}
	return out, nil
}
