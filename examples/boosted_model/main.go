// Boosted model: train both a random forest and a gradient-boosted ensemble
// (§III-A's third model family) on synthetic HIGGS, compare their accuracy
// with cross-validation, and score the boosted model on the backends that
// support margin aggregation (the CPU engines and both GPU libraries — the
// FPGA's majority-vote unit is vote-only and refuses).
//
// Run with:
//
//	go run ./examples/boosted_model
package main

import (
	"fmt"
	"log"

	"accelscore/internal/backend"
	"accelscore/internal/dataset"
	"accelscore/internal/forest"
	"accelscore/internal/platform"
	"accelscore/internal/sim"
)

func main() {
	train := dataset.Higgs(4000, 1)

	// Cross-validated comparison at a matched budget of shallow trees.
	rfCV, err := forest.CrossValidate(train, 4, 1, func(d *dataset.Dataset) (*forest.Forest, error) {
		return forest.Train(d, forest.ForestConfig{
			NumTrees:  40,
			Tree:      forest.TrainConfig{MaxDepth: 3},
			Seed:      1,
			Bootstrap: true,
		})
	})
	if err != nil {
		log.Fatal(err)
	}
	gbtCV, err := forest.CrossValidate(train, 4, 1, func(d *dataset.Dataset) (*forest.Forest, error) {
		return forest.TrainBoosted(d, forest.BoostConfig{NumTrees: 40, MaxDepth: 3, Seed: 1})
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("4-fold CV on HIGGS (40 trees, depth 3):\n")
	fmt.Printf("  random forest:     %.3f ± %.3f\n", rfCV.Mean, rfCV.StdDev)
	fmt.Printf("  gradient boosting: %.3f ± %.3f\n\n", gbtCV.Mean, gbtCV.StdDev)

	// Score the boosted model across backends.
	gbt, err := forest.TrainBoosted(train, forest.BoostConfig{NumTrees: 40, MaxDepth: 3, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	data := dataset.Higgs(100_000, 2)
	req := &backend.Request{Forest: gbt, Data: data}
	tb := platform.New()
	fmt.Println("scoring the boosted ensemble on 100K records:")
	for _, b := range tb.AllBackends() {
		res, err := b.Score(req)
		if err != nil {
			fmt.Printf("  %-14s unsupported: %v\n", b.Name(), err)
			continue
		}
		correct := 0
		for i, p := range res.Predictions {
			if p == data.Y[i] {
				correct++
			}
		}
		fmt.Printf("  %-14s %-10s accuracy %.3f  throughput %.2f M/s\n",
			b.Name(), sim.FormatDuration(res.Latency()),
			float64(correct)/float64(len(res.Predictions)), res.Throughput()/1e6)
	}
}
