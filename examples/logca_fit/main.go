// LogCA fit: summarize each detailed accelerator simulator with the LogCA
// analytical model (Altaf & Wood, ISCA'17 — the paper's ref [42]) and
// compare the model's break-even granularity against the simulator's own
// offload crossover. Demonstrates how a five-parameter analytical model
// captures — and where it misses — the detailed offload behavior.
//
// Run with:
//
//	go run ./examples/logca_fit
package main

import (
	"fmt"
	"log"

	"accelscore/internal/core"
	"accelscore/internal/forest"
	"accelscore/internal/logca"
	"accelscore/internal/platform"
	"accelscore/internal/sim"
)

func main() {
	tb := platform.New()
	stats := forest.SyntheticStats(128, 10, 28, 2) // HIGGS flagship shape

	fmt.Println("LogCA fits (host = CPU_SKLearn, workload = HIGGS 128 trees depth 10):")
	for _, name := range []string{"FPGA", "GPU_HB", "GPU_RAPIDS"} {
		accel, _ := tb.Registry.Get(name)
		m, err := logca.Fit(name, tb.SKLearn, accel, stats)
		if err != nil {
			log.Fatal(err)
		}
		g1, ok := m.G1()
		g1str := "never"
		if ok {
			g1str = fmt.Sprintf("%d records", g1)
		}
		fmt.Printf("\n%s:\n", name)
		fmt.Printf("  o (offload overhead):    %s\n", sim.FormatDuration(m.Overhead))
		fmt.Printf("  C (host ns/record):      %.0f\n", float64(m.HostTimePerRecord))
		fmt.Printf("  A (acceleration):        %.1fx\n", m.Acceleration)
		fmt.Printf("  g1 (break-even):         %s\n", g1str)
		fmt.Printf("  asymptotic speedup:      %.1fx\n", m.AsymptoticSpeedup())

		// Compare the analytical prediction with the detailed simulator at
		// three granularities.
		for _, g := range []int64{1_000, 100_000, 1_000_000} {
			tl, err := accel.Estimate(stats, g)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  @%-9d LogCA %-12s simulator %-12s\n",
				g, sim.FormatDuration(m.AcceleratorTime(g)), sim.FormatDuration(tl.Total()))
		}
	}

	// The simulator's own crossover for reference.
	cross, err := tb.Advisor.Crossover(core.Config{
		Features: 28, Classes: 2, Trees: 128, Depth: 10,
	}, 1, 2_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndetailed-simulator offload crossover: %d records\n", cross)
}
