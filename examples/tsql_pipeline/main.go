// T-SQL pipeline: the full Fig. 2 flow. A random forest is trained and
// stored in the mini-DBMS's models table; the scoring data lives in a
// regular table; a T-SQL EXEC query scores it through the external-runtime
// pipeline with the scoring stage offloaded to the simulated FPGA; the
// result is a prediction table plus the Fig. 11 end-to-end breakdown.
//
// Run with:
//
//	go run ./examples/tsql_pipeline
package main

import (
	"fmt"
	"log"

	"accelscore/internal/dataset"
	"accelscore/internal/db"
	"accelscore/internal/forest"
	"accelscore/internal/hw"
	"accelscore/internal/pipeline"
	"accelscore/internal/platform"
)

func main() {
	// Train a classifier on synthetic HIGGS and store it in the database,
	// serialized, exactly as the paper's Fig. 3 workflow assumes.
	training := dataset.Higgs(4000, 1)
	f, err := forest.Train(training, forest.ForestConfig{
		NumTrees:  64,
		Tree:      forest.TrainConfig{MaxDepth: 10},
		Seed:      3,
		Bootstrap: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	database := db.New()
	if err := database.StoreModel("higgs_rf", f); err != nil {
		log.Fatal(err)
	}
	scoring := dataset.Higgs(50_000, 2)
	tbl, err := db.TableFromDataset("higgs_events", scoring)
	if err != nil {
		log.Fatal(err)
	}
	if err := database.CreateTable(tbl); err != nil {
		log.Fatal(err)
	}

	// Plain SELECTs work against the same database.
	sel, _, err := database.Query("SELECT TOP 3 lepton_pT, m_bb, label FROM higgs_events WHERE m_bb > 1.2")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sample query returned %d rows; first m_bb = %.3f\n\n",
		sel.NumRows(), sel.Cell(0, 1).F)

	// The scoring query, offloaded to the FPGA.
	tb := platform.New()
	p := &pipeline.Pipeline{
		DB:       database,
		Runtime:  hw.DefaultRuntime(),
		Registry: tb.Registry,
		Advisor:  tb.Advisor,
	}
	query := "EXEC sp_score_model @model = 'higgs_rf', @data = 'higgs_events', @backend = 'FPGA'"
	fmt.Println("executing:", query)
	res, err := p.ExecQuery(query)
	if err != nil {
		log.Fatal(err)
	}

	// Accuracy against the generator's labels.
	correct := 0
	for i, pred := range res.Predictions {
		if pred == scoring.Y[i] {
			correct++
		}
	}
	fmt.Printf("\nscored %d events on %s; accuracy vs generator labels: %.3f\n\n",
		len(res.Predictions), res.Backend, float64(correct)/float64(len(res.Predictions)))

	fmt.Println("end-to-end query breakdown (Fig. 11):")
	fmt.Print(res.Timeline.Aggregate())
	fmt.Println("\nscoring-stage breakdown (Fig. 7):")
	fmt.Print(res.ScoringDetail.Aggregate())
}
