// Offload advisor: reproduce the paper's central question — "is hardware
// acceleration worth the overheads?" — for a HIGGS-shaped workload. The
// advisor evaluates every backend's predicted overall scoring time across
// record counts and reports when offloading starts to pay, the crossover
// record count, and the cost of deciding wrongly.
//
// Run with:
//
//	go run ./examples/offload_advisor
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"accelscore/internal/backend"
	"accelscore/internal/core"
	"accelscore/internal/platform"
	"accelscore/internal/sim"
)

func main() {
	tb := platform.New()

	// A HIGGS-shaped scoring workload: 128 trees, depth 10, 28 features.
	shape := core.Config{
		DatasetName: "HIGGS", Features: 28, Classes: 2,
		Trees: 128, Depth: 10,
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "records\tbest backend\tlatency\tspeedup vs best CPU")
	for _, n := range []int64{1, 100, 1_000, 10_000, 100_000, 1_000_000} {
		cfg := shape
		cfg.Records = n
		d, err := tb.Advisor.Decide(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "%d\t%s\t%s\t%.1fx\n",
			n, d.Best.Name, sim.FormatDuration(d.Best.Time), d.Speedup)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}

	cross, err := tb.Advisor.Crossover(shape, 1, 2_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noffload becomes beneficial at %d records\n", cross)

	pen, err := tb.Advisor.PenaltyAnalysis(shape, 1, 1_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrong decision to offload at %d record(s): %.1fx higher latency\n",
		pen.SmallRecords, pen.WrongOffloadLatency)
	fmt.Printf("wrong decision to stay on CPU at %d records: %.1fx lower throughput\n",
		pen.LargeRecords, pen.WrongStayThroughput)

	// Show the O/L/C decomposition (Fig. 6) for the FPGA at both extremes.
	for _, n := range []int64{1, 1_000_000} {
		tl, err := tb.FPGA.Estimate(core.Config{
			Features: 28, Classes: 2, Trees: 128, Depth: 10,
		}.Stats(), n)
		if err != nil {
			log.Fatal(err)
		}
		olc := core.Decompose(tl)
		fmt.Printf("\nFPGA at %d record(s): O=%s L=%s C=%s (total %s)\n",
			n, sim.FormatDuration(olc.O), sim.FormatDuration(olc.L),
			sim.FormatDuration(olc.C), sim.FormatDuration(olc.Total()))
	}

	// Data-parallel extension: for a very large batch, split the records
	// across all three devices at once instead of picking one.
	const bigBatch = 20_000_000
	plan, err := core.PlanSplit(
		[]backend.Backend{tb.SKLearn, tb.HB, tb.FPGA},
		shape.Stats(), bigBatch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsplitting %d records across devices (vs %s alone at %s):\n",
		int64(bigBatch), plan.SingleBestName, sim.FormatDuration(plan.SingleBest))
	for _, a := range plan.Assignments {
		fmt.Printf("  %-12s %9d records  finishes in %s\n",
			a.Backend, a.Records, sim.FormatDuration(a.Time))
	}
	fmt.Printf("  makespan %s — %.2fx over the single best device\n",
		sim.FormatDuration(plan.Makespan), plan.Speedup())
}
