// Quickstart: train a random forest on IRIS, score a replicated batch on
// the CPU engine, and print accuracy plus the simulated latency breakdown.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"accelscore/internal/backend"
	"accelscore/internal/dataset"
	"accelscore/internal/engines/cpusk"
	"accelscore/internal/forest"
	"accelscore/internal/hw"
	"accelscore/internal/xrand"
)

func main() {
	// 1. Load the IRIS dataset and hold out a test split.
	iris := dataset.Iris()
	train, test := iris.Split(0.3, xrand.New(7))

	// 2. Train a 16-tree random forest, 10 levels deep — the paper's
	//    flagship depth.
	f, err := forest.Train(train, forest.ForestConfig{
		NumTrees:  16,
		Tree:      forest.TrainConfig{MaxDepth: 10},
		Seed:      1,
		Bootstrap: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("test accuracy: %.3f\n", f.Accuracy(test))

	// 3. Replicate the dataset to 100K scoring records, as the paper does
	//    (§IV-A), and score on the 52-thread Scikit-learn-style engine.
	scoring := iris.Replicate(100_000)
	cpu := cpusk.New(hw.DefaultCPU(), 52)
	res, err := cpu.Score(&backend.Request{Forest: f, Data: scoring})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nscored %d records on %s\n", len(res.Predictions), cpu.Name())
	fmt.Printf("simulated latency: %v, throughput: %.2f M records/s\n\n",
		res.Latency(), res.Throughput()/1e6)
	fmt.Println("latency breakdown:")
	fmt.Print(res.Timeline.Aggregate())
}
