// Custom backend: implement a user-defined accelerator against the public
// Backend interface and let the offload advisor weigh it against the
// built-in CPU/GPU/FPGA engines. The example models a TPU-like tensor
// accelerator: enormous batch compute rate, but a large per-invocation
// dispatch cost — so the advisor only picks it for the very largest jobs.
//
// Run with:
//
//	go run ./examples/custom_backend
package main

import (
	"fmt"
	"log"
	"time"

	"accelscore/internal/backend"
	"accelscore/internal/core"
	"accelscore/internal/dataset"
	"accelscore/internal/forest"
	"accelscore/internal/platform"
	"accelscore/internal/sim"
)

// tpu is a toy tensor accelerator implementing backend.Backend.
type tpu struct{}

func (tpu) Name() string { return "TPU_LIKE" }

// Score computes real predictions (plain forest evaluation stands in for
// the tensorized kernels) and charges the TPU timing model.
func (t tpu) Score(req *backend.Request) (*backend.Result, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	preds := req.Forest.PredictBatch(req.Data)
	tl, err := t.Estimate(req.Forest.ComputeStats(), int64(req.Data.NumRecords()))
	if err != nil {
		return nil, err
	}
	res := &backend.Result{Predictions: preds}
	res.Timeline.Extend(tl)
	return res, nil
}

// Estimate: a 40 ms dispatch floor, then 60G node-visits/s.
func (tpu) Estimate(stats forest.Stats, records int64) (*sim.Timeline, error) {
	var tl sim.Timeline
	tl.Add("tpu dispatch", sim.KindOverhead, 40*time.Millisecond)
	tl.Add("input transfer", sim.KindTransfer,
		time.Duration(float64(records*int64(stats.Features)*4)/16e9*float64(time.Second)))
	visits := stats.Visits(records)
	tl.Add("scoring", sim.KindCompute, time.Duration(float64(visits)/60e9*float64(time.Second)))
	return &tl, nil
}

func main() {
	tb := platform.New()
	if err := tb.Registry.Register(tpu{}); err != nil {
		log.Fatal(err)
	}
	// Add the TPU to the advisor's accelerator set.
	tb.Advisor.Accelerators = append(tb.Advisor.Accelerators, tpu{})

	shape := core.Config{DatasetName: "HIGGS", Features: 28, Classes: 2, Trees: 128, Depth: 10}
	fmt.Println("best backend by record count (TPU_LIKE registered):")
	for _, n := range []int64{1_000, 100_000, 1_000_000, 10_000_000} {
		cfg := shape
		cfg.Records = n
		d, err := tb.Advisor.Decide(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %10d records -> %-10s (%s, %.1fx over CPU)\n",
			n, d.Best.Name, sim.FormatDuration(d.Best.Time), d.Speedup)
	}

	// The custom backend also scores for real.
	f, err := forest.Train(dataset.Higgs(2000, 1), forest.ForestConfig{
		NumTrees:  8,
		Tree:      forest.TrainConfig{MaxDepth: 8},
		Seed:      1,
		Bootstrap: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	data := dataset.Higgs(500, 2)
	res, err := tpu{}.Score(&backend.Request{Forest: f, Data: data})
	if err != nil {
		log.Fatal(err)
	}
	agree := 0
	want := f.PredictBatch(data)
	for i := range want {
		if res.Predictions[i] == want[i] {
			agree++
		}
	}
	fmt.Printf("\nTPU_LIKE scored %d records, %d/%d agree with the reference forest\n",
		len(res.Predictions), agree, len(want))
}
