package hw

import "time"

// RuntimeSpec models the analytics-pipeline environment around the scoring
// operation: SQL Server's external-script execution path (§II, Fig. 2).
// These are the "application/analytics pipeline overheads" that §IV-E
// distinguishes from the hardware offload overheads.
type RuntimeSpec struct {
	// Name identifies the pipeline configuration in reports.
	Name string
	// ProcessInvoke is the cost of launching the external Python process
	// and establishing the script execution context. Fig. 11 shows it
	// dominating small-query latency.
	ProcessInvoke time.Duration
	// IPCBytesPerSec is the sustained DBMS<->external-process copy rate,
	// including the (transparent) serialization of rows to the script's
	// dataframe format and back. Deliberately slow (~0.12 GB/s): this is a
	// pickling/marshalling path, not a memcpy, and it is why data transfer
	// becomes the dominant end-to-end component once scoring is offloaded
	// (§IV-D).
	IPCBytesPerSec float64
	// ModelDeserializeFixed is the fixed cost of loading the serialized
	// model blob ("model pre-processing" in Fig. 11).
	ModelDeserializeFixed time.Duration
	// ModelDeserializeBytesPerSec is the throughput of model blob parsing.
	ModelDeserializeBytesPerSec float64
	// DataPreprocPerValue is the per-cell cost of feature extraction and
	// dataframe preparation ("data pre-processing" in Fig. 11).
	DataPreprocPerValue time.Duration
	// PostprocPerRecord is the per-row cost of assembling the prediction
	// DataFrame returned to the DBMS.
	PostprocPerRecord time.Duration
	// ModelCacheVerifyBytesPerSec is the throughput of the checksum pass
	// that validates a cached compiled model against the stored blob — the
	// only "model pre-processing" cost left on a compiled-model cache hit
	// (the tightly-integrated story of §IV-E, reproduced by the cache).
	ModelCacheVerifyBytesPerSec float64
}

// IPCTime returns the DBMS<->process copy time for a payload of n bytes.
func (r RuntimeSpec) IPCTime(bytes int64) time.Duration {
	return time.Duration(float64(bytes) / r.IPCBytesPerSec * float64(time.Second))
}

// ModelDeserializeTime returns the model pre-processing time for a blob of
// the given size.
func (r RuntimeSpec) ModelDeserializeTime(bytes int64) time.Duration {
	return r.ModelDeserializeFixed +
		time.Duration(float64(bytes)/r.ModelDeserializeBytesPerSec*float64(time.Second))
}

// ModelCacheHitTime returns the model pre-processing time when the compiled
// model is already cached: a checksum pass over the blob instead of a full
// deserialize + compile. A 1µs floor keeps the span visible in breakdowns
// and covers the cache probe itself.
func (r RuntimeSpec) ModelCacheHitTime(bytes int64) time.Duration {
	t := time.Microsecond
	if r.ModelCacheVerifyBytesPerSec > 0 {
		t += time.Duration(float64(bytes) / r.ModelCacheVerifyBytesPerSec * float64(time.Second))
	}
	return t
}

// DataPreprocTime returns the data pre-processing time for records rows of
// features columns.
func (r RuntimeSpec) DataPreprocTime(records, features int64) time.Duration {
	return time.Duration(records * features * int64(r.DataPreprocPerValue))
}

// PostprocTime returns the post-processing time for records rows.
func (r RuntimeSpec) PostprocTime(records int64) time.Duration {
	return time.Duration(records * int64(r.PostprocPerRecord))
}
