package hw

import (
	"fmt"
	"time"
)

// FPGASpec models the paper's random-forest inference engine on an Intel
// Stratix 10 GX 2800 (§III-B, Fig. 5): 128 processing elements, each holding
// one tree (up to depth 10) in BRAM, a majority-voting unit, result memory,
// and a PCIe 3.0 x16 host interface with CSR-based setup and interrupt-based
// completion.
type FPGASpec struct {
	// Name identifies the device in reports.
	Name string
	// Link is the host connection.
	Link PCIeLink
	// ClockHz is the fabric clock (the paper's design runs at 250 MHz).
	ClockHz float64
	// ProcessingElements is the number of tree-evaluation PEs (128).
	ProcessingElements int
	// MaxTreeDepth is the deepest tree a PE supports (10); deeper trees must
	// fall back to the CPU or use the hybrid split described in §III-B.
	MaxTreeDepth int
	// BRAMBytes is the total on-chip block RAM (~28.6 MB on the GX 2800,
	// §IV-C1).
	BRAMBytes int64
	// NodeWordBytes is the storage of one tree node in the Fig. 4b layout:
	// four 32-bit words (left, right, attribute, threshold).
	NodeWordBytes int64
	// ResultMemoryBytes is the result staging memory carved out of BRAM.
	ResultMemoryBytes int64

	// PipelineFillCycles is the latency of the PE pipeline before the first
	// result emerges (tree-depth stages plus I/O and vote stages).
	PipelineFillCycles int64
	// IssueContention is the extra initiation-interval growth per active PE:
	// II = 1 + IssueContention*(activePEs-1). With 9/127, a single tree
	// issues one record per cycle while a full 128-tree forest issues one
	// per 10 cycles (result-collection and vote-unit port contention),
	// matching the paper's ~40 ms scoring time for 1M records x 128 trees.
	IssueContention float64

	// CSRSetup is the host cost of configuring the engine via
	// control/status registers — cheap, as the paper notes ("FPGA setup
	// overhead is less than completion signal overhead because the former is
	// done by setting CSRs").
	CSRSetup time.Duration
	// InterruptLatency is the completion-signal cost (interrupt path).
	InterruptLatency time.Duration
	// SoftwareOverhead is the host-side cost of the FPGA API calls around
	// one inference-engine invocation (§IV-B item 6); with model transfer it
	// dominates the small-record breakdowns in Fig. 7a.
	SoftwareOverhead time.Duration
	// ModelTransferFixed is the fixed driver/DMA-descriptor cost of the tree
	// memory load, on top of the PCIe byte time.
	ModelTransferFixed time.Duration
	// ResultTransferFixed is the fixed cost of the result read-back DMA.
	ResultTransferFixed time.Duration
}

// CycleTime returns the duration of one fabric clock cycle.
func (f FPGASpec) CycleTime() time.Duration {
	return time.Duration(float64(time.Second) / f.ClockHz)
}

// InitiationInterval returns the average cycles between successive record
// issues when activePEs trees are being evaluated concurrently.
func (f FPGASpec) InitiationInterval(activePEs int) float64 {
	if activePEs < 1 {
		activePEs = 1
	}
	if activePEs > f.ProcessingElements {
		activePEs = f.ProcessingElements
	}
	return 1 + f.IssueContention*float64(activePEs-1)
}

// ScoringCycles returns the cycle count to score records rows against
// activePEs concurrently-resident trees.
func (f FPGASpec) ScoringCycles(records int64, activePEs int) int64 {
	ii := f.InitiationInterval(activePEs)
	return f.PipelineFillCycles + int64(float64(records)*ii)
}

// ScoringTime converts ScoringCycles to simulated time.
func (f FPGASpec) ScoringTime(records int64, activePEs int) time.Duration {
	return time.Duration(float64(f.ScoringCycles(records, activePEs)) * float64(f.CycleTime()))
}

// TreeMemoryBytes returns the BRAM footprint of one PE's tree memory for the
// given depth: the layout assumes a full binary tree with no missing nodes
// (§III-B), so a depth-d tree consumes 2^d node words regardless of the
// actual node count.
func (f FPGASpec) TreeMemoryBytes(depth int) int64 {
	if depth < 0 {
		panic(fmt.Sprintf("hw: negative tree depth %d", depth))
	}
	return (int64(1) << uint(depth)) * f.NodeWordBytes
}

// ModelFits reports whether trees of the given depth fit the PE array's BRAM
// budget alongside the result memory. Returns the per-pass model footprint.
func (f FPGASpec) ModelFits(trees, depth int) (bytes int64, ok bool) {
	perTree := f.TreeMemoryBytes(depth)
	resident := trees
	if resident > f.ProcessingElements {
		resident = f.ProcessingElements
	}
	bytes = perTree * int64(resident)
	return bytes, depth <= f.MaxTreeDepth && bytes+f.ResultMemoryBytes <= f.BRAMBytes
}

// Passes returns how many inference-engine invocations are needed for a
// forest with the given tree count: trees beyond the PE count require
// multiple calls (§III-B "If the number of trees is greater than 128, we
// need to call the inference engine multiple times").
func (f FPGASpec) Passes(trees int) int {
	if trees <= 0 {
		return 0
	}
	return (trees + f.ProcessingElements - 1) / f.ProcessingElements
}
