package hw

import (
	"math"
	"testing"
	"time"
)

func TestPCIeEffectiveBandwidth(t *testing.T) {
	l := DefaultPCIeGen3x16GPU()
	got := l.EffectiveBytesPerSec()
	want := 15.754e9 * 0.70
	if math.Abs(got-want) > 1 {
		t.Fatalf("EffectiveBytesPerSec = %v, want %v", got, want)
	}
}

func TestPCIeTransferTime(t *testing.T) {
	l := PCIeLink{RawGBps: 10, Efficiency: 1, PerTransfer: 10 * time.Microsecond}
	// 10 GB at 10 GB/s = 1 s plus fixed cost.
	got := l.TransferTime(10e9)
	want := time.Second + 10*time.Microsecond
	if got != want {
		t.Fatalf("TransferTime = %v, want %v", got, want)
	}
	// Zero bytes still pays the doorbell.
	if got := l.TransferTime(0); got != 10*time.Microsecond {
		t.Fatalf("TransferTime(0) = %v", got)
	}
}

func TestPCIeStreamTimeNoFixedCost(t *testing.T) {
	l := PCIeLink{RawGBps: 1, Efficiency: 1, PerTransfer: time.Millisecond}
	if got := l.StreamTime(1e9); got != time.Second {
		t.Fatalf("StreamTime = %v, want 1s", got)
	}
}

func TestPCIeNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative transfer did not panic")
		}
	}()
	DefaultPCIeGen3x16GPU().TransferTime(-1)
}

func TestCPUEfficiency(t *testing.T) {
	c := DefaultCPU()
	if got := c.Efficiency(1); got != 1 {
		t.Fatalf("Efficiency(1) = %v", got)
	}
	if got := c.Efficiency(0); got != 1 {
		t.Fatalf("Efficiency(0) = %v", got)
	}
	e52 := c.Efficiency(52)
	if e52 < 25 || e52 > 27 {
		t.Fatalf("Efficiency(52) = %v, want ~25.7", e52)
	}
	// Requests beyond the hardware thread count are clamped.
	if got := c.Efficiency(104); got != e52 {
		t.Fatalf("Efficiency(104) = %v, want clamp to %v", got, e52)
	}
	// Monotonic in thread count.
	prev := 0.0
	for n := 1; n <= 52; n++ {
		e := c.Efficiency(n)
		if e < prev {
			t.Fatalf("efficiency not monotonic at %d threads: %v < %v", n, e, prev)
		}
		prev = e
	}
}

func TestFeatureFactor(t *testing.T) {
	if got := FeatureFactor(0.035, 4); math.Abs(got-1.14) > 1e-9 {
		t.Fatalf("FeatureFactor(IRIS) = %v", got)
	}
	if got := FeatureFactor(0.035, 28); math.Abs(got-1.98) > 1e-9 {
		t.Fatalf("FeatureFactor(HIGGS) = %v", got)
	}
}

func TestSKLearnScoringTimeAnchors(t *testing.T) {
	c := DefaultCPU()
	// 1M records x 1 tree x 10 levels on IRIS, 52 threads: ~19 ms.
	got := c.SKLearnScoringTime(10_000_000, 4, 52)
	if got < 15*time.Millisecond || got > 25*time.Millisecond {
		t.Fatalf("SKLearn IRIS 1Mx1t = %v, want ~19ms", got)
	}
	// Setup dominates at 1 record.
	one := c.SKLearnScoringTime(10, 4, 52)
	if one < c.SKLearnBatchSetup {
		t.Fatalf("1-record latency %v below batch setup", one)
	}
}

func TestONNXScoringTimeAnchors(t *testing.T) {
	c := DefaultCPU()
	// CPU_ONNX_52th at 1M x 128 trees x 10 levels IRIS: ~2.4 s (the 54x
	// FPGA baseline).
	got := c.ONNXScoringTime(1_280_000_000, 4, 52)
	if got < 2*time.Second || got > 3*time.Second {
		t.Fatalf("ONNX52 IRIS 1Mx128t = %v, want ~2.4s", got)
	}
	// Single-thread call at 1 record is ~invoke cost only.
	one := c.ONNXScoringTime(1280, 4, 1)
	if one > 500*time.Microsecond {
		t.Fatalf("ONNX single-record latency = %v, want < 0.5ms", one)
	}
	// The 52-thread variant pays the pool setup.
	if c.ONNXScoringTime(0, 4, 52) <= c.ONNXScoringTime(0, 4, 1) {
		t.Fatal("pool setup not charged for multi-thread ONNX")
	}
}

func TestGPUHBTraversalAnchor(t *testing.T) {
	g := DefaultGPU()
	// 1M x 128 trees x 10 levels: ~291 ms.
	got := g.HBTraversalTime(1_280_000_000)
	if got < 250*time.Millisecond || got > 350*time.Millisecond {
		t.Fatalf("HB traversal = %v, want ~291ms", got)
	}
}

func TestGPURAPIDSSpillPenalty(t *testing.T) {
	g := DefaultGPU()
	inCache := g.RAPIDSTraversalTime(1_000_000, g.L2CacheBytes)
	spilled := g.RAPIDSTraversalTime(1_000_000, g.L2CacheBytes+1)
	ratio := float64(spilled) / float64(inCache)
	if math.Abs(ratio-g.RAPIDSSpillPenalty) > 0.01 {
		t.Fatalf("spill ratio = %v, want %v", ratio, g.RAPIDSSpillPenalty)
	}
}

func TestGPURAPIDSConvertAnchor(t *testing.T) {
	g := DefaultGPU()
	got := g.RAPIDSConvertTime(112 << 20)
	if got < 115*time.Millisecond || got > 130*time.Millisecond {
		t.Fatalf("cuDF conversion = %v, want ~120ms", got)
	}
}

func TestFPGACycleTime(t *testing.T) {
	f := DefaultFPGA()
	if got := f.CycleTime(); got != 4*time.Nanosecond {
		t.Fatalf("CycleTime = %v, want 4ns at 250MHz", got)
	}
}

func TestFPGAInitiationInterval(t *testing.T) {
	f := DefaultFPGA()
	if got := f.InitiationInterval(1); got != 1 {
		t.Fatalf("II(1) = %v, want 1", got)
	}
	if got := f.InitiationInterval(128); math.Abs(got-10) > 1e-9 {
		t.Fatalf("II(128) = %v, want 10", got)
	}
	// Clamped at both ends.
	if f.InitiationInterval(0) != 1 || f.InitiationInterval(500) != f.InitiationInterval(128) {
		t.Fatal("II clamping broken")
	}
}

func TestFPGAScoringTimeAnchors(t *testing.T) {
	f := DefaultFPGA()
	// 1M records, 1 tree: ~4 ms.
	one := f.ScoringTime(1_000_000, 1)
	if one < 3900*time.Microsecond || one > 4100*time.Microsecond {
		t.Fatalf("FPGA 1Mx1t = %v, want ~4ms", one)
	}
	// 1M records, 128 trees: ~40 ms ("tens of milliseconds", §IV-B).
	full := f.ScoringTime(1_000_000, 128)
	if full < 39*time.Millisecond || full > 41*time.Millisecond {
		t.Fatalf("FPGA 1Mx128t = %v, want ~40ms", full)
	}
	// Single record is ns-scale compute (§IV-B: "scoring itself is in the
	// order of nanoseconds").
	single := f.ScoringTime(1, 128)
	if single > time.Microsecond {
		t.Fatalf("FPGA 1-record compute = %v, want sub-µs", single)
	}
}

func TestFPGATreeMemoryAndFit(t *testing.T) {
	f := DefaultFPGA()
	// Depth-10 full binary tree: 2^10 * 16B = 16 KB (§III-B).
	if got := f.TreeMemoryBytes(10); got != 16*1024 {
		t.Fatalf("TreeMemoryBytes(10) = %d, want 16384", got)
	}
	bytes, ok := f.ModelFits(128, 10)
	if !ok {
		t.Fatal("128 depth-10 trees should fit BRAM")
	}
	if bytes != 128*16*1024 {
		t.Fatalf("model bytes = %d", bytes)
	}
	// Depth beyond the architectural limit never fits.
	if _, ok := f.ModelFits(1, 11); ok {
		t.Fatal("depth-11 tree must not fit (MaxTreeDepth=10)")
	}
	// More trees than PEs: only the resident pass counts against BRAM.
	resBytes, ok := f.ModelFits(256, 10)
	if !ok || resBytes != 128*16*1024 {
		t.Fatalf("resident bytes for 256 trees = %d ok=%v", resBytes, ok)
	}
}

func TestFPGAPasses(t *testing.T) {
	f := DefaultFPGA()
	cases := map[int]int{0: 0, 1: 1, 128: 1, 129: 2, 256: 2, 257: 3}
	for trees, want := range cases {
		if got := f.Passes(trees); got != want {
			t.Errorf("Passes(%d) = %d, want %d", trees, got, want)
		}
	}
}

func TestRuntimeCosts(t *testing.T) {
	r := DefaultRuntime()
	// 112 MB over the IPC path ~ 0.93 s.
	ipc := r.IPCTime(112 << 20)
	if ipc < 900*time.Millisecond || ipc > 1050*time.Millisecond {
		t.Fatalf("IPCTime(112MB) = %v", ipc)
	}
	if r.ModelDeserializeTime(0) != r.ModelDeserializeFixed {
		t.Fatal("model deserialize fixed cost wrong")
	}
	if got := r.DataPreprocTime(1000, 28); got != time.Duration(1000*28*15)*time.Nanosecond {
		t.Fatalf("DataPreprocTime = %v", got)
	}
	if got := r.PostprocTime(1000); got != 60*time.Microsecond {
		t.Fatalf("PostprocTime = %v", got)
	}
}

func TestTightIntegrationIsFaster(t *testing.T) {
	loose, tight := DefaultRuntime(), TightlyIntegratedRuntime()
	if tight.ProcessInvoke >= loose.ProcessInvoke {
		t.Fatal("tight integration should have cheaper invocation")
	}
	if tight.IPCTime(1<<20) >= loose.IPCTime(1<<20) {
		t.Fatal("tight integration should have faster data handoff")
	}
}

func TestInterruptCostsMoreThanCSR(t *testing.T) {
	f := DefaultFPGA()
	// §IV-B: setup via CSRs is cheaper than interrupt-based completion.
	if f.CSRSetup >= f.InterruptLatency {
		t.Fatal("CSR setup should cost less than interrupt completion")
	}
}

func TestSolveRecoverCalibration(t *testing.T) {
	// Re-derive the ONNX per-visit cost from its own anchor: CPU_ONNX_52th
	// ~2.4 s at 1M x 128 trees x 10 levels on IRIS. The solver must land
	// close to the shipped 45 ns constant.
	anchor := DefaultCPU().ONNXScoringTime(1_280_000_000, 4, 52)
	got, err := SolveDuration(time.Nanosecond, time.Microsecond, anchor, 10*time.Microsecond,
		func(d time.Duration) time.Duration {
			c := DefaultCPU()
			c.ONNXVisitCost = d
			return c.ONNXScoringTime(1_280_000_000, 4, 52)
		})
	if err != nil {
		t.Fatal(err)
	}
	if got < 44*time.Nanosecond || got > 46*time.Nanosecond {
		t.Fatalf("recovered visit cost = %v, want ~45ns", got)
	}
}

func TestSolveErrors(t *testing.T) {
	id := func(x float64) time.Duration { return time.Duration(x) }
	if _, err := Solve(10, 1, time.Duration(5), 1, id); err == nil {
		t.Fatal("inverted bounds accepted")
	}
	if _, err := Solve(1, 10, time.Duration(5), 0, id); err == nil {
		t.Fatal("zero tolerance accepted")
	}
	if _, err := Solve(1, 10, time.Duration(100), 1, id); err == nil {
		t.Fatal("unreachable goal accepted")
	}
	dec := func(x float64) time.Duration { return time.Duration(100 - x) }
	if _, err := Solve(1, 10, time.Duration(95), 1, dec); err == nil {
		t.Fatal("decreasing eval accepted")
	}
	// The defining property: eval at the solution is within tolerance of
	// the goal.
	got, err := Solve(0, 100, time.Duration(42), 1, id)
	if err != nil {
		t.Fatal(err)
	}
	if diff := id(got) - time.Duration(42); diff < -1 || diff > 1 {
		t.Fatalf("Solve = %v, eval diff %v exceeds tolerance", got, diff)
	}
}
