package hw

import "time"

// GPUSpec models a PCIe-attached GPU (Tesla P100 in the paper) together with
// the two scoring libraries the paper evaluates on it.
type GPUSpec struct {
	// Name identifies the GPU in reports.
	Name string
	// Link is the host connection (PCIe 3.0 x16 on the NC6s_v2 VM).
	Link PCIeLink
	// L2CacheBytes is the on-chip L2 size (4 MB on P100). The paper
	// attributes the FPGA's edge over the GPU at large models to the GPU's
	// cache misses; the RAPIDS divergence model below uses this to degrade
	// throughput once the forest working set exceeds L2.
	L2CacheBytes int64
	// DeviceMemoryBytes is the HBM capacity (16 GB on P100). Inputs larger
	// than the usable fraction are processed in batches, each paying its
	// own transfer setup and kernel launches.
	DeviceMemoryBytes int64
	// MemoryUsableFraction is the share of device memory available for the
	// input matrix after the framework, model and workspace allocations.
	MemoryUsableFraction float64

	// HBInvoke is Hummingbird's fixed per-call cost: PyTorch dispatch,
	// kernel launches and allocator traffic. Calibrated so the GPU-vs-CPU
	// crossover for IRIS sits near 10K records (Fig. 9a/9b).
	HBInvoke time.Duration
	// HBVisitRate is the node-visits-per-second rate of Hummingbird's
	// tree-traversal tensor strategy (used for depth > 3). Calibrated so
	// 1M x 128 trees x 10 levels takes ~290 ms, giving the paper's 7.5x
	// IRIS speedup over the best CPU.
	HBVisitRate float64
	// HBGEMMRate is the effective FLOP/s of the dense GEMM strategy used for
	// very shallow trees (depth <= 3), compute-bound on the device.
	HBGEMMRate float64

	// RAPIDSInvoke is the fixed per-call cost of a cuML predict.
	RAPIDSInvoke time.Duration
	// RAPIDSConvertFixed is the fixed cost of converting the input NumPy
	// array to a cuDF dataframe: the paper measures ~120 ms for its inputs
	// (§IV-C2) and identifies it as the reason RAPIDS loses below ~700K
	// records.
	RAPIDSConvertFixed time.Duration
	// RAPIDSConvertPerByte is the size-dependent part of the cuDF
	// conversion.
	RAPIDSConvertPerByte time.Duration
	// RAPIDSVisitRate is the node-visits-per-second rate of the FIL
	// traversal kernels when the working set fits in L2 ("prediction at 100
	// million rows per second", paper ref [29]).
	RAPIDSVisitRate float64
	// RAPIDSSpillPenalty is the throughput divisor applied when the forest
	// working set exceeds L2CacheBytes, modelling the cache-miss and DRAM
	// traffic effects the paper cites from [40], [41].
	RAPIDSSpillPenalty float64
	// RAPIDSMaxClasses bounds the classifier arity FIL supported at the
	// time: binary only, which is why the paper runs RAPIDS on HIGGS but not
	// IRIS (§IV-C2 "there are only two output classes ... thus also
	// supported by GPU RAPIDS Library").
	RAPIDSMaxClasses int
}

// HBTraversalTime returns the simulated kernel time for Hummingbird's
// traversal strategy over the given total node visits.
func (g GPUSpec) HBTraversalTime(visits int64) time.Duration {
	return time.Duration(float64(visits) / g.HBVisitRate * float64(time.Second))
}

// HBGEMMTime returns the simulated kernel time for the GEMM strategy given a
// FLOP count.
func (g GPUSpec) HBGEMMTime(flops int64) time.Duration {
	return time.Duration(float64(flops) / g.HBGEMMRate * float64(time.Second))
}

// RAPIDSTraversalTime returns the simulated FIL kernel time over the given
// total node visits for a forest whose node storage occupies modelBytes.
func (g GPUSpec) RAPIDSTraversalTime(visits int64, modelBytes int64) time.Duration {
	rate := g.RAPIDSVisitRate
	if modelBytes > g.L2CacheBytes {
		rate /= g.RAPIDSSpillPenalty
	}
	return time.Duration(float64(visits) / rate * float64(time.Second))
}

// RAPIDSConvertTime returns the cuDF dataframe conversion cost for an input
// of the given size.
func (g GPUSpec) RAPIDSConvertTime(bytes int64) time.Duration {
	return g.RAPIDSConvertFixed + time.Duration(float64(bytes)*float64(g.RAPIDSConvertPerByte))
}

// InputBatches returns how many transfer/kernel rounds an input of the
// given size needs under the device-memory budget (always at least 1).
func (g GPUSpec) InputBatches(inputBytes int64) int64 {
	usable := int64(float64(g.DeviceMemoryBytes) * g.MemoryUsableFraction)
	if usable <= 0 || inputBytes <= usable {
		return 1
	}
	return (inputBytes + usable - 1) / usable
}
