package hw

import "time"

// This file pins every calibration constant to a paper observation. The
// calibration procedure (documented in EXPERIMENTS.md) anchors the model on
// the paper's headline numbers for 1M records, 128 trees, depth 10:
//
//	IRIS:  FPGA 54x and GPU-HB 7.5x over the best CPU (Fig. 8 / §IV-C2)
//	HIGGS: FPGA 69.7x and GPU-RAPIDS 16.5x over the best CPU, FPGA 4.2x GPU
//	crossovers: IRIS ~10K (1 tree) / ~1K (128 trees); HIGGS ~5K / ~500
//	wrong-decision penalties: >=10x latency (offload at 1 record),
//	                          ~70x throughput (no offload at 1M records)
//	Fig. 7a: 1-record FPGA round trip is milliseconds, dominated by model
//	         transfer + software overhead, while scoring itself is ns-scale.

// DefaultPCIeGen3x16GPU is the GPU's host link: PCIe 3.0 x16 at ~70%
// sustained efficiency (typical measured H2D for a P100 with pinned
// buffers).
func DefaultPCIeGen3x16GPU() PCIeLink {
	return PCIeLink{
		Name:        "PCIe 3.0 x16 (GPU)",
		RawGBps:     15.754,
		Efficiency:  0.70,
		PerTransfer: 20 * time.Microsecond,
	}
}

// DefaultPCIeGen3x16FPGA is the FPGA's host link: same physical link, higher
// sustained efficiency (~80%) thanks to the custom DMA/queue management the
// paper adopts from HEAX (ref [34]).
func DefaultPCIeGen3x16FPGA() PCIeLink {
	return PCIeLink{
		Name:        "PCIe 3.0 x16 (FPGA)",
		RawGBps:     15.754,
		Efficiency:  0.80,
		PerTransfer: 15 * time.Microsecond,
	}
}

// DefaultCPU models the paper's dual-socket Xeon Platinum 8171M (52 usable
// threads at 2.6 GHz) running Python-hosted Scikit-learn and ONNX Runtime.
func DefaultCPU() CPUSpec {
	return CPUSpec{
		Name:            "2x Xeon Platinum 8171M (52 threads)",
		HardwareThreads: 52,
		// 52 threads -> ~25.7x effective speedup.
		ParallelOverhead: 0.02,
		// Fixed predict() overhead; makes single-thread ONNX the best CPU
		// below ~5K records (Fig. 9a).
		SKLearnBatchSetup: 4 * time.Millisecond,
		// 35 ns/visit before the feature factor; with 52 threads this puts
		// Scikit-learn at ~19 ms for 1M x 1 tree x 10 levels on IRIS.
		SKLearnVisitCost:    35 * time.Nanosecond,
		SKLearnFeatureCoeff: 0.035, // IRIS 1.14x, HIGGS 1.98x
		ONNXInvoke:          120 * time.Microsecond,
		// Extra per-call dispatch of the persistent 52-thread intra-op pool
		// (sessions are created once and reused). Together with the FPGA's
		// ~1.95 ms small-batch floor this pins the 128-tree offload
		// crossovers at ~700 records (IRIS) and ~500 records (HIGGS),
		// matching Fig. 9c/9g.
		ONNXPoolSetup: 150 * time.Microsecond,
		// ONNX is slower per visit than Scikit-learn at batch ("not
		// optimized for batch scoring"): 45 ns/visit puts CPU_ONNX_52th at
		// ~2.4 s for 1M x 128 trees on IRIS, the paper's 54x FPGA baseline.
		ONNXVisitCost:    45 * time.Nanosecond,
		ONNXFeatureCoeff: 0.02, // IRIS 1.08x, HIGGS 1.56x
	}
}

// DefaultGPU models the Tesla P100 (NC6s_v2 VM) with RAPIDS cuML/FIL and
// Hummingbird.
func DefaultGPU() GPUSpec {
	return GPUSpec{
		Name:         "NVIDIA Tesla P100",
		Link:         DefaultPCIeGen3x16GPU(),
		L2CacheBytes: 4 << 20, // 4 MB (§IV-C1)
		// 16 GB HBM2; ~75% usable for the input matrix after framework,
		// model and workspace allocations.
		DeviceMemoryBytes:    16 << 30,
		MemoryUsableFraction: 0.75,
		// Fixed Hummingbird/PyTorch dispatch cost; sets the small-record
		// floor that keeps the CPU optimal below ~10K records on IRIS.
		HBInvoke: 2200 * time.Microsecond,
		// 4.4G visits/s -> ~291 ms for 1M x 128 trees x 10 levels, the
		// paper's 7.5x-over-CPU IRIS point.
		HBVisitRate: 4.4e9,
		// Dense-GEMM strategy for depth <= 3 trees, compute-bound.
		HBGEMMRate:   5e12,
		RAPIDSInvoke: 200 * time.Microsecond,
		// The paper measures ~120 ms to convert the NumPy input to a cuDF
		// dataframe (§IV-C2).
		RAPIDSConvertFixed:   120 * time.Millisecond,
		RAPIDSConvertPerByte: time.Duration(0), // modelled within the fixed cost
		// 28G visits/s in-cache: FIL's "100M rows/s" marketing point for
		// shallow binary forests.
		RAPIDSVisitRate: 28e9,
		// Working sets beyond L2 degrade FIL by ~1.6x (forest packing
		// literature, paper refs [40], [41]).
		RAPIDSSpillPenalty: 1.6,
		RAPIDSMaxClasses:   2,
	}
}

// DefaultFPGA models the paper's Stratix 10 GX 2800 inference engine.
func DefaultFPGA() FPGASpec {
	return FPGASpec{
		Name:               "Intel Stratix 10 GX 2800",
		Link:               DefaultPCIeGen3x16FPGA(),
		ClockHz:            250e6,      // §IV-A: design clocked at 250 MHz
		ProcessingElements: 128,        // §III-B
		MaxTreeDepth:       10,         // §III-B
		BRAMBytes:          29_989_273, // ~28.6 MB (§IV-C1)
		NodeWordBytes:      16,         // four 32-bit fields per node (Fig. 4b)
		ResultMemoryBytes:  1 << 20,
		// Depth stages + I/O + vote stages before the first result.
		PipelineFillCycles: 34,
		// II grows 1 -> 10 cycles from 1 to 128 active PEs (vote/result-port
		// contention); yields 4 ms (1 tree) and 40 ms (128 trees) for 1M
		// records, matching §IV-B "tens of milliseconds".
		IssueContention: 9.0 / 127.0,
		CSRSetup:        3 * time.Microsecond,
		// Interrupt completion costs more than CSR setup (§IV-B).
		InterruptLatency: 28 * time.Microsecond,
		// Host API calls around one invocation; with model transfer this
		// dominates Fig. 7a and sets the ~millisecond 1-record floor.
		SoftwareOverhead:    1200 * time.Microsecond,
		ModelTransferFixed:  400 * time.Microsecond,
		ResultTransferFixed: 150 * time.Microsecond,
	}
}

// DefaultRuntime models SQL Server's external Python process execution path
// (Fig. 2): launchpad process start, BxlServer data marshalling, and
// dataframe pre/post-processing.
func DefaultRuntime() RuntimeSpec {
	return RuntimeSpec{
		Name:          "SQL Server external Python process",
		ProcessInvoke: 250 * time.Millisecond,
		// Rows are serialized to the script's dataframe format and back;
		// ~0.12 GB/s makes data transfer the dominant post-offload component
		// for 1M-record queries (§IV-D).
		IPCBytesPerSec:              0.12e9,
		ModelDeserializeFixed:       3 * time.Millisecond,
		ModelDeserializeBytesPerSec: 60e6,
		DataPreprocPerValue:         15 * time.Nanosecond,
		PostprocPerRecord:           60 * time.Nanosecond,
		// CRC32 over the blob at memory-ish bandwidth — what a cache hit
		// costs instead of the deserialize above.
		ModelCacheVerifyBytesPerSec: 2e9,
	}
}

// TightlyIntegratedRuntime models the §IV-E future-research configuration
// where scoring runs inside the DBMS process (like SQL Server's native
// PREDICT): no external process launch and memcpy-speed data handoff. Used
// by the pipeline-integration ablation.
func TightlyIntegratedRuntime() RuntimeSpec {
	return RuntimeSpec{
		Name:                        "tightly integrated (in-process PREDICT)",
		ProcessInvoke:               500 * time.Microsecond,
		IPCBytesPerSec:              8e9,
		ModelDeserializeFixed:       1 * time.Millisecond,
		ModelDeserializeBytesPerSec: 200e6,
		DataPreprocPerValue:         4 * time.Nanosecond,
		PostprocPerRecord:           10 * time.Nanosecond,
		ModelCacheVerifyBytesPerSec: 8e9,
	}
}
