// Package hw describes the simulated hardware platforms — host CPU, GPU,
// FPGA, the PCIe interconnect, and the external-runtime environment — and
// holds the calibration constants that tie the simulators to the testbed the
// paper measured (dual Xeon 8171M, Tesla P100, Stratix 10 GX 2800, PCIe 3.0
// x16, SQL Server external Python processes).
//
// Every constant that shapes an experiment lives here, with a comment
// explaining which paper observation pins it down. EXPERIMENTS.md records
// the resulting paper-vs-measured deltas.
package hw

import (
	"fmt"
	"time"
)

// PCIeLink models a PCIe connection between host memory and an accelerator.
type PCIeLink struct {
	// Name identifies the link in breakdowns, e.g. "PCIe 3.0 x16".
	Name string
	// RawGBps is the raw signalling bandwidth in GB/s (15.754 for Gen3 x16).
	RawGBps float64
	// Efficiency is the achievable fraction of raw bandwidth after protocol,
	// DMA and driver overheads. Measured GPU H2D on a P100 sustains ~70% of
	// raw; the paper's custom FPGA DMA engine (HEAX-style queue management,
	// their ref [34]) sustains ~80%.
	Efficiency float64
	// PerTransfer is the fixed latency of initiating one DMA transfer
	// (descriptor setup, doorbell, completion handling).
	PerTransfer time.Duration
}

// EffectiveBytesPerSec returns the sustained payload bandwidth.
func (l PCIeLink) EffectiveBytesPerSec() float64 {
	return l.RawGBps * 1e9 * l.Efficiency
}

// TransferTime returns the simulated time to move n bytes across the link,
// including the fixed per-transfer setup. Zero-byte transfers still pay the
// fixed cost (a doorbell ring is not free).
func (l PCIeLink) TransferTime(bytes int64) time.Duration {
	if bytes < 0 {
		panic(fmt.Sprintf("hw: negative transfer size %d", bytes))
	}
	secs := float64(bytes) / l.EffectiveBytesPerSec()
	return l.PerTransfer + time.Duration(secs*float64(time.Second))
}

// StreamTime returns the time to stream n bytes assuming the DMA pipeline is
// already set up (no per-transfer fixed cost). Used for the FPGA's
// record-streaming path, which overlaps with compute (§IV-B item 1).
func (l PCIeLink) StreamTime(bytes int64) time.Duration {
	if bytes < 0 {
		panic(fmt.Sprintf("hw: negative stream size %d", bytes))
	}
	secs := float64(bytes) / l.EffectiveBytesPerSec()
	return time.Duration(secs * float64(time.Second))
}
