package hw

import (
	"fmt"
	"time"
)

// CPUSpec models the host processor and the Python-hosted scoring libraries
// that run on it (Scikit-learn and ONNX Runtime in the paper).
type CPUSpec struct {
	// Name identifies the CPU in reports.
	Name string
	// HardwareThreads is the total SMT thread count (52 in the paper:
	// dual-socket Xeon 8171M, 26 cores / 52 threads per socket, of which the
	// paper used "up to 52 threads").
	HardwareThreads int
	// ParallelOverhead is the serial-fraction coefficient of the thread
	// scaling model Eff(n) = n / (1 + ParallelOverhead*(n-1)). With 0.02,
	// 52 threads deliver ~25.7x, matching the gap the paper observes between
	// single-thread and 52-thread ONNX runs.
	ParallelOverhead float64

	// SKLearnBatchSetup is the fixed cost of one Scikit-learn predict() call:
	// Python dispatch, input validation, ndarray conversion and the joblib
	// thread-pool fork. It is why single-thread ONNX beats 52-thread
	// Scikit-learn below ~5K records (paper §IV-C2).
	SKLearnBatchSetup time.Duration
	// SKLearnVisitCost is the per node-visit traversal cost of the
	// Scikit-learn engine before thread scaling and the feature factor.
	SKLearnVisitCost time.Duration
	// SKLearnFeatureCoeff scales visit cost with dataset width: wider rows
	// mean bigger node structures and worse cache locality. factor =
	// 1 + coeff*features, giving IRIS (4f) 1.14x and HIGGS (28f) 1.98x,
	// which reproduces the paper's HIGGS-vs-IRIS CPU gap.
	SKLearnFeatureCoeff float64

	// ONNXInvoke is the fixed cost of one ONNX Runtime session.run() call on
	// a single thread. Small (~120µs), which is why ONNX wins at tiny record
	// counts and why a wrong offload decision at 1 record costs >=10x
	// (paper §I contribution 2).
	ONNXInvoke time.Duration
	// ONNXPoolSetup is the additional fixed cost of spinning up the
	// 52-thread intra-op pool (CPU_ONNX_52th in Fig. 9).
	ONNXPoolSetup time.Duration
	// ONNXVisitCost is the per node-visit cost of the ONNX engine. ONNX is
	// "not currently optimized for batch scoring" (paper quoting [30]), so
	// its per-visit cost exceeds Scikit-learn's.
	ONNXVisitCost time.Duration
	// ONNXFeatureCoeff is the ONNX analogue of SKLearnFeatureCoeff.
	ONNXFeatureCoeff float64
}

// Efficiency returns the effective parallel speedup of n threads under the
// serial-fraction model. n <= 1 returns 1.
func (c CPUSpec) Efficiency(n int) float64 {
	if n <= 1 {
		return 1
	}
	if n > c.HardwareThreads {
		n = c.HardwareThreads
	}
	return float64(n) / (1 + c.ParallelOverhead*float64(n-1))
}

// FeatureFactor returns the cache-pressure multiplier for a dataset with the
// given number of features under the provided coefficient.
func FeatureFactor(coeff float64, features int) float64 {
	if features < 0 {
		panic(fmt.Sprintf("hw: negative feature count %d", features))
	}
	return 1 + coeff*float64(features)
}

// SKLearnScoringTime returns the simulated latency of a Scikit-learn batch
// predict over records rows with the given total node visits, on threads
// threads.
func (c CPUSpec) SKLearnScoringTime(visits int64, features, threads int) time.Duration {
	eff := c.Efficiency(threads)
	factor := FeatureFactor(c.SKLearnFeatureCoeff, features)
	work := float64(visits) * float64(c.SKLearnVisitCost) * factor / eff
	return c.SKLearnBatchSetup + time.Duration(work)
}

// ONNXScoringTime returns the simulated latency of an ONNX Runtime session
// run over the given total node visits on threads threads.
func (c CPUSpec) ONNXScoringTime(visits int64, features, threads int) time.Duration {
	eff := c.Efficiency(threads)
	factor := FeatureFactor(c.ONNXFeatureCoeff, features)
	fixed := c.ONNXInvoke
	if threads > 1 {
		fixed += c.ONNXPoolSetup
	}
	work := float64(visits) * float64(c.ONNXVisitCost) * factor / eff
	return fixed + time.Duration(work)
}
