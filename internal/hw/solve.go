package hw

import (
	"fmt"
	"time"
)

// Solve finds x in [lo, hi] such that eval(x) lands within tolerance of
// goal, assuming eval is monotone nondecreasing in x. This is the mechanical
// half of the calibration procedure (EXPERIMENTS.md): given an anchor from
// the paper — "CPU_ONNX_52th takes ~2.4 s at 1M records x 128 trees" — solve
// for the per-visit cost that produces it.
//
// It returns an error when the goal is outside eval's range over [lo, hi]
// (the anchor cannot be met by this constant alone).
func Solve(lo, hi float64, goal, tolerance time.Duration, eval func(x float64) time.Duration) (float64, error) {
	if lo > hi {
		return 0, fmt.Errorf("hw: Solve bounds inverted [%v, %v]", lo, hi)
	}
	if tolerance <= 0 {
		return 0, fmt.Errorf("hw: Solve needs a positive tolerance")
	}
	fLo, fHi := eval(lo), eval(hi)
	if fLo > fHi {
		return 0, fmt.Errorf("hw: eval not nondecreasing over [%v, %v] (%v > %v)", lo, hi, fLo, fHi)
	}
	if goal < fLo-tolerance || goal > fHi+tolerance {
		return 0, fmt.Errorf("hw: goal %v outside achievable range [%v, %v]", goal, fLo, fHi)
	}
	for i := 0; i < 200; i++ {
		mid := lo + (hi-lo)/2
		got := eval(mid)
		diff := got - goal
		if diff < 0 {
			diff = -diff
		}
		if diff <= tolerance {
			return mid, nil
		}
		if got < goal {
			lo = mid
		} else {
			hi = mid
		}
	}
	return 0, fmt.Errorf("hw: Solve did not converge to within %v of %v", tolerance, goal)
}

// SolveDuration is Solve specialized to duration-valued constants: it finds
// a duration d in [lo, hi] with eval(d) within tolerance of goal.
func SolveDuration(lo, hi time.Duration, goal, tolerance time.Duration, eval func(d time.Duration) time.Duration) (time.Duration, error) {
	x, err := Solve(float64(lo), float64(hi), goal, tolerance, func(x float64) time.Duration {
		return eval(time.Duration(x))
	})
	if err != nil {
		return 0, err
	}
	return time.Duration(x), nil
}
