package forest

import (
	"fmt"
	"math"

	"accelscore/internal/dataset"
	"accelscore/internal/xrand"
)

// CVResult summarizes a k-fold cross-validation run.
type CVResult struct {
	// FoldAccuracy holds each fold's held-out accuracy.
	FoldAccuracy []float64
	// Mean and StdDev summarize the folds.
	Mean, StdDev float64
}

// CrossValidate estimates generalization accuracy with k-fold
// cross-validation: rows are shuffled deterministically, split into k folds,
// and trainFn is invoked k times, each time scoring the held-out fold.
//
// trainFn receives the training subset and must return a fitted model; both
// Train and TrainBoosted close over their configs naturally:
//
//	res, err := forest.CrossValidate(d, 5, seed, func(train *dataset.Dataset) (*forest.Forest, error) {
//	    return forest.Train(train, cfg)
//	})
func CrossValidate(d *dataset.Dataset, k int, seed uint64, trainFn func(*dataset.Dataset) (*Forest, error)) (*CVResult, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if len(d.Y) == 0 {
		return nil, fmt.Errorf("forest: cross-validation requires labels")
	}
	n := d.NumRecords()
	if k < 2 || k > n {
		return nil, fmt.Errorf("forest: fold count %d out of [2, %d]", k, n)
	}
	rng := xrand.New(seed)
	perm := rng.Perm(n)

	f := d.NumFeatures()
	build := func(idx []int) *dataset.Dataset {
		out := &dataset.Dataset{
			Name:         d.Name,
			FeatureNames: append([]string(nil), d.FeatureNames...),
			ClassNames:   append([]string(nil), d.ClassNames...),
			X:            make([]float32, len(idx)*f),
			Y:            make([]int, len(idx)),
		}
		for i, j := range idx {
			copy(out.X[i*f:(i+1)*f], d.Row(j))
			out.Y[i] = d.Y[j]
		}
		return out
	}

	res := &CVResult{}
	for fold := 0; fold < k; fold++ {
		lo := fold * n / k
		hi := (fold + 1) * n / k
		test := build(perm[lo:hi])
		train := build(append(append([]int(nil), perm[:lo]...), perm[hi:]...))
		model, err := trainFn(train)
		if err != nil {
			return nil, fmt.Errorf("forest: fold %d: %w", fold, err)
		}
		res.FoldAccuracy = append(res.FoldAccuracy, model.Accuracy(test))
	}
	var sum float64
	for _, a := range res.FoldAccuracy {
		sum += a
	}
	res.Mean = sum / float64(k)
	var sq float64
	for _, a := range res.FoldAccuracy {
		sq += (a - res.Mean) * (a - res.Mean)
	}
	res.StdDev = math.Sqrt(sq / float64(k))
	return res, nil
}

// GridTrial records one grid-search candidate's cross-validated score.
type GridTrial struct {
	Config ForestConfig
	Result *CVResult
}

// GridSearchResult holds the winning configuration and every trial.
type GridSearchResult struct {
	Best      ForestConfig
	BestScore float64
	Trials    []GridTrial
}

// GridSearch cross-validates every candidate configuration and returns the
// one with the highest mean accuracy (ties resolve to the earlier
// candidate). Each trial uses the same fold split for a fair comparison.
func GridSearch(d *dataset.Dataset, k int, seed uint64, candidates []ForestConfig) (*GridSearchResult, error) {
	if len(candidates) == 0 {
		return nil, fmt.Errorf("forest: grid search needs at least one candidate")
	}
	res := &GridSearchResult{BestScore: -1}
	for _, cfg := range candidates {
		cfg := cfg
		cv, err := CrossValidate(d, k, seed, func(train *dataset.Dataset) (*Forest, error) {
			return Train(train, cfg)
		})
		if err != nil {
			return nil, err
		}
		res.Trials = append(res.Trials, GridTrial{Config: cfg, Result: cv})
		if cv.Mean > res.BestScore {
			res.BestScore = cv.Mean
			res.Best = cfg
		}
	}
	return res, nil
}
