package forest

import (
	"fmt"
	"math"
	"sort"

	"accelscore/internal/dataset"
	"accelscore/internal/xrand"
)

// BoostConfig controls gradient-boosted tree training. GBT models are the
// third ensemble family the paper's §III-A names as supported by the
// Hummingbird compiler ("decision tree, random forest, and gradient boost
// models"); this trainer produces binary classifiers with logistic loss.
type BoostConfig struct {
	// NumTrees is the number of boosting rounds.
	NumTrees int
	// MaxDepth bounds each regression tree (boosted trees are shallow;
	// XGBoost's default is 6).
	MaxDepth int
	// LearningRate shrinks each tree's contribution (default 0.1).
	LearningRate float64
	// MinSamplesLeaf is the minimum rows per leaf (default 1).
	MinSamplesLeaf int
	// Subsample is the fraction of rows sampled per round (default 1 =
	// none; stochastic gradient boosting uses ~0.8).
	Subsample float64
	// Seed makes training deterministic.
	Seed uint64
}

func (c BoostConfig) withDefaults() BoostConfig {
	if c.LearningRate <= 0 {
		c.LearningRate = 0.1
	}
	if c.MinSamplesLeaf <= 0 {
		c.MinSamplesLeaf = 1
	}
	if c.Subsample <= 0 || c.Subsample > 1 {
		c.Subsample = 1
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 6
	}
	return c
}

// TrainBoosted fits a gradient-boosted binary classifier on d with logistic
// loss. Each round fits a regression tree to the negative gradient
// (residuals) and applies a per-leaf Newton step; leaf values are stored
// pre-scaled by the learning rate, so prediction is
// sigmoid(BaseScore + sum of tree values) > 0.5.
func TrainBoosted(d *dataset.Dataset, cfg BoostConfig) (*Forest, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if len(d.Y) == 0 {
		return nil, fmt.Errorf("forest: boosted training requires labels")
	}
	if d.NumClasses() != 2 {
		return nil, fmt.Errorf("forest: boosted classifier requires exactly 2 classes, got %d", d.NumClasses())
	}
	if cfg.NumTrees <= 0 {
		return nil, fmt.Errorf("forest: NumTrees must be positive, got %d", cfg.NumTrees)
	}
	cfg = cfg.withDefaults()

	n := d.NumRecords()
	// Base score: log-odds of the positive class.
	pos := 0
	for _, y := range d.Y {
		if y == 1 {
			pos++
		}
	}
	if pos == 0 || pos == n {
		return nil, fmt.Errorf("forest: boosted training needs both classes present")
	}
	base := math.Log(float64(pos) / float64(n-pos))

	f := &Forest{
		Kind:         Boosted,
		NumFeatures:  d.NumFeatures(),
		NumClasses:   2,
		FeatureNames: append([]string(nil), d.FeatureNames...),
		ClassNames:   append([]string(nil), d.ClassNames...),
		BaseScore:    base,
	}

	rng := xrand.New(cfg.Seed)
	scores := make([]float64, n)
	for i := range scores {
		scores[i] = base
	}
	grad := make([]float64, n)
	hess := make([]float64, n)
	for round := 0; round < cfg.NumTrees; round++ {
		for i := 0; i < n; i++ {
			p := sigmoid(scores[i])
			grad[i] = float64(d.Y[i]) - p // negative gradient (residual)
			hess[i] = p * (1 - p)
		}
		rows := make([]int, 0, n)
		if cfg.Subsample < 1 {
			for i := 0; i < n; i++ {
				if rng.Float64() < cfg.Subsample {
					rows = append(rows, i)
				}
			}
			if len(rows) < 2 {
				rows = rows[:0]
			}
		}
		if len(rows) == 0 {
			for i := 0; i < n; i++ {
				rows = append(rows, i)
			}
		}
		rb := &regBuilder{
			d: d, grad: grad, hess: hess,
			maxDepth: cfg.MaxDepth, minLeaf: cfg.MinSamplesLeaf,
			shrinkage: cfg.LearningRate,
		}
		root := rb.build(rows, 0)
		tree := &Tree{Root: root, NumFeatures: d.NumFeatures(), NumClasses: 2}
		f.Trees = append(f.Trees, tree)
		// Update running scores with the new tree's (pre-scaled) values.
		for i := 0; i < n; i++ {
			scores[i] += tree.PredictValue(d.Row(i))
		}
	}
	return f, nil
}

// sigmoid is the logistic function.
func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// regBuilder grows one regression tree on the boosting residuals using
// variance reduction, with a Newton leaf step: value = lr * sum(grad) /
// (sum(hess) + eps).
type regBuilder struct {
	d          *dataset.Dataset
	grad, hess []float64
	maxDepth   int
	minLeaf    int
	shrinkage  float64
}

func (b *regBuilder) leafValue(rows []int) float64 {
	var g, h float64
	for _, r := range rows {
		g += b.grad[r]
		h += b.hess[r]
	}
	return b.shrinkage * g / (h + 1e-9)
}

// majorityClass labels internal/leaf nodes for display; boosted prediction
// never uses it, but Validate and the dot exporter do.
func (b *regBuilder) majorityClass(rows []int) int {
	pos := 0
	for _, r := range rows {
		if b.d.Y[r] == 1 {
			pos++
		}
	}
	if 2*pos >= len(rows) {
		return 1
	}
	return 0
}

func (b *regBuilder) build(rows []int, depth int) *Node {
	n := &Node{
		Samples: len(rows),
		Value:   b.leafValue(rows),
		Class:   b.majorityClass(rows),
	}
	if depth >= b.maxDepth || len(rows) < 2*b.minLeaf {
		return n
	}
	feature, threshold, ok := b.bestSplit(rows)
	if !ok {
		return n
	}
	var left, right []int
	for _, r := range rows {
		if b.d.Row(r)[feature] < threshold {
			left = append(left, r)
		} else {
			right = append(right, r)
		}
	}
	if len(left) < b.minLeaf || len(right) < b.minLeaf {
		return n
	}
	n.Feature = feature
	n.Threshold = threshold
	n.Left = b.build(left, depth+1)
	n.Right = b.build(right, depth+1)
	return n
}

// bestSplit maximizes the gradient-variance gain sum(g_L)^2/n_L +
// sum(g_R)^2/n_R (the squared-loss reduction of fitting the residuals).
func (b *regBuilder) bestSplit(rows []int) (feature int, threshold float32, ok bool) {
	bestGain := 0.0
	type rv struct {
		v float32
		g float64
	}
	vals := make([]rv, len(rows))
	var totalG float64
	for _, r := range rows {
		totalG += b.grad[r]
	}
	for f := 0; f < b.d.NumFeatures(); f++ {
		for i, r := range rows {
			vals[i] = rv{v: b.d.Row(r)[f], g: b.grad[r]}
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i].v < vals[j].v })
		parent := totalG * totalG / float64(len(rows))
		var leftG float64
		for i := 0; i < len(vals)-1; i++ {
			leftG += vals[i].g
			if vals[i].v == vals[i+1].v {
				continue
			}
			nl, nr := i+1, len(vals)-i-1
			if nl < b.minLeaf || nr < b.minLeaf {
				continue
			}
			rightG := totalG - leftG
			gain := leftG*leftG/float64(nl) + rightG*rightG/float64(nr) - parent
			if gain > bestGain {
				bestGain = gain
				feature = f
				threshold = midpoint(vals[i].v, vals[i+1].v)
				ok = true
			}
		}
	}
	return feature, threshold, ok
}
