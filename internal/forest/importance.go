package forest

import (
	"fmt"
	"sort"

	"accelscore/internal/dataset"
	"accelscore/internal/xrand"
)

// FeatureImportance returns the mean-decrease-in-impurity importance of each
// feature, normalized to sum to 1 (Scikit-learn's feature_importances_).
// Each split contributes its sample-weighted impurity decrease, attributed
// to its split feature; contributions are averaged across trees.
func (f *Forest) FeatureImportance() []float64 {
	imp := make([]float64, f.NumFeatures)
	for _, t := range f.Trees {
		treeImp := make([]float64, f.NumFeatures)
		accumulateImportance(t.Root, treeImp)
		// Normalize per tree so big trees don't dominate the average.
		var sum float64
		for _, v := range treeImp {
			sum += v
		}
		if sum > 0 {
			for i, v := range treeImp {
				imp[i] += v / sum
			}
		}
	}
	var total float64
	for _, v := range imp {
		total += v
	}
	if total > 0 {
		for i := range imp {
			imp[i] /= total
		}
	}
	return imp
}

// accumulateImportance adds each internal node's weighted impurity decrease
// to its split feature. Node impurity is approximated by the Gini of the
// class distribution implied by the children's majority summaries; since we
// retain only per-node sample counts and classes, we use the sample-count
// weighted split balance as the decrease proxy: n_node - max(n_left,
// n_right) scaled by node share. This tracks training-time impurity
// decrease closely for the balanced trees CART produces.
func accumulateImportance(n *Node, imp []float64) {
	if n == nil || n.IsLeaf() {
		return
	}
	nl, nr := 0, 0
	if n.Left != nil {
		nl = n.Left.Samples
	}
	if n.Right != nil {
		nr = n.Right.Samples
	}
	larger := nl
	if nr > larger {
		larger = nr
	}
	decrease := float64(n.Samples - larger)
	if decrease > 0 && n.Feature >= 0 && n.Feature < len(imp) {
		imp[n.Feature] += decrease * float64(n.Samples)
	}
	accumulateImportance(n.Left, imp)
	accumulateImportance(n.Right, imp)
}

// RankedFeature pairs a feature with its importance for sorted reporting.
type RankedFeature struct {
	Index      int
	Name       string
	Importance float64
}

// RankedImportance returns features sorted by decreasing importance.
func (f *Forest) RankedImportance() []RankedFeature {
	imp := f.FeatureImportance()
	out := make([]RankedFeature, len(imp))
	for i, v := range imp {
		name := fmt.Sprintf("feature_%d", i)
		if i < len(f.FeatureNames) {
			name = f.FeatureNames[i]
		}
		out[i] = RankedFeature{Index: i, Name: name, Importance: v}
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].Importance > out[b].Importance })
	return out
}

// TrainWithOOB fits a forest with bootstrap sampling and returns both the
// forest and its out-of-bag accuracy estimate: each row is scored only by
// the trees whose bootstrap sample excluded it, the standard OOB
// generalization estimate for bagged ensembles.
func TrainWithOOB(d *dataset.Dataset, cfg ForestConfig) (*Forest, float64, error) {
	if cfg.NumTrees <= 0 {
		return nil, 0, fmt.Errorf("forest: NumTrees must be positive, got %d", cfg.NumTrees)
	}
	if err := d.Validate(); err != nil {
		return nil, 0, err
	}
	if len(d.Y) == 0 {
		return nil, 0, fmt.Errorf("forest: training requires labels")
	}
	cfg.Bootstrap = true

	treeCfg := cfg.Tree
	if treeCfg.MaxFeatures == 0 && cfg.NumTrees > 1 {
		treeCfg.MaxFeatures = sqrtCeil(d.NumFeatures())
	}
	if cfg.Kind == Regressor {
		treeCfg.Criterion = MSE
	}
	rng := xrand.New(cfg.Seed)
	n := d.NumRecords()
	f := &Forest{
		Kind:         cfg.Kind,
		NumFeatures:  d.NumFeatures(),
		NumClasses:   d.NumClasses(),
		FeatureNames: append([]string(nil), d.FeatureNames...),
		ClassNames:   append([]string(nil), d.ClassNames...),
	}
	// oobVotes[row][class] accumulates votes from trees that did not train
	// on the row.
	oobVotes := make([][]int, n)
	for i := range oobVotes {
		oobVotes[i] = make([]int, maxInt(d.NumClasses(), 1))
	}
	for t := 0; t < cfg.NumTrees; t++ {
		treeRng := rng.Split()
		indices := make([]int, n)
		inBag := make([]bool, n)
		for i := range indices {
			j := treeRng.Intn(n)
			indices[i] = j
			inBag[j] = true
		}
		tree, err := TrainTree(d, indices, treeCfg, treeRng)
		if err != nil {
			return nil, 0, fmt.Errorf("forest: training tree %d: %w", t, err)
		}
		f.Trees = append(f.Trees, tree)
		for i := 0; i < n; i++ {
			if !inBag[i] {
				oobVotes[i][tree.PredictClass(d.Row(i))]++
			}
		}
	}
	// Score the rows that received at least one OOB vote.
	correct, counted := 0, 0
	for i := 0; i < n; i++ {
		total := 0
		for _, v := range oobVotes[i] {
			total += v
		}
		if total == 0 {
			continue
		}
		counted++
		if Argmax(oobVotes[i]) == d.Y[i] {
			correct++
		}
	}
	oob := 0.0
	if counted > 0 {
		oob = float64(correct) / float64(counted)
	}
	return f, oob, nil
}

func sqrtCeil(n int) int {
	for i := 1; ; i++ {
		if i*i >= n {
			return i
		}
	}
}
