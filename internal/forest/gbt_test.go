package forest

import (
	"math"
	"testing"

	"accelscore/internal/dataset"
	"accelscore/internal/xrand"
)

func trainBoostedHiggs(t testing.TB, trees, depth int) (*Forest, *dataset.Dataset, *dataset.Dataset) {
	t.Helper()
	full := dataset.Higgs(4000, 21)
	train, test := full.Split(0.25, xrand.New(6))
	f, err := TrainBoosted(train, BoostConfig{
		NumTrees: trees,
		MaxDepth: depth,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f, train, test
}

func TestBoostedLearnsHiggs(t *testing.T) {
	f, train, test := trainBoostedHiggs(t, 30, 4)
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	trainAcc := f.Accuracy(train)
	testAcc := f.Accuracy(test)
	if testAcc < 0.70 {
		t.Fatalf("boosted test accuracy = %v, want >= 0.70", testAcc)
	}
	if trainAcc < testAcc-0.02 {
		t.Fatalf("training accuracy %v below test %v", trainAcc, testAcc)
	}
}

func TestBoostedBeatsShallowForest(t *testing.T) {
	// At a matched budget of shallow trees, boosting should beat bagging —
	// the standard bias-reduction advantage.
	full := dataset.Higgs(4000, 22)
	train, test := full.Split(0.25, xrand.New(7))
	gbt, err := TrainBoosted(train, BoostConfig{NumTrees: 30, MaxDepth: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	rf, err := Train(train, ForestConfig{
		NumTrees:  30,
		Tree:      TrainConfig{MaxDepth: 3},
		Seed:      2,
		Bootstrap: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if gbt.Accuracy(test) <= rf.Accuracy(test) {
		t.Fatalf("boosted (%v) did not beat bagged shallow forest (%v)",
			gbt.Accuracy(test), rf.Accuracy(test))
	}
}

func TestBoostedDeterministic(t *testing.T) {
	d := dataset.Higgs(1000, 23)
	a, err := TrainBoosted(d, BoostConfig{NumTrees: 5, MaxDepth: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrainBoosted(d, BoostConfig{NumTrees: 5, MaxDepth: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < d.NumRecords(); i++ {
		if a.Margin(d.Row(i)) != b.Margin(d.Row(i)) {
			t.Fatalf("same-seed boosted models diverge at row %d", i)
		}
	}
}

func TestBoostedMarginConsistency(t *testing.T) {
	f, _, test := trainBoostedHiggs(t, 10, 3)
	for i := 0; i < test.NumRecords(); i += 7 {
		row := test.Row(i)
		m := f.Margin(row)
		want := 0
		if m > 0 {
			want = 1
		}
		if got := f.PredictClass(row); got != want {
			t.Fatalf("row %d: class %d but margin %v", i, got, m)
		}
		p := f.PredictProba(row)
		if math.Abs(p[0]+p[1]-1) > 1e-9 {
			t.Fatalf("probabilities sum to %v", p[0]+p[1])
		}
		if (p[1] > 0.5) != (want == 1) {
			t.Fatalf("probability/class inconsistent: p1=%v class=%d", p[1], want)
		}
	}
}

func TestBoostedMoreRoundsImproveFit(t *testing.T) {
	d := dataset.Higgs(2000, 24)
	few, err := TrainBoosted(d, BoostConfig{NumTrees: 2, MaxDepth: 3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	many, err := TrainBoosted(d, BoostConfig{NumTrees: 40, MaxDepth: 3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if many.Accuracy(d) <= few.Accuracy(d) {
		t.Fatalf("40 rounds (%v) not better than 2 (%v) on training data",
			many.Accuracy(d), few.Accuracy(d))
	}
}

func TestBoostedSubsample(t *testing.T) {
	d := dataset.Higgs(1500, 25)
	f, err := TrainBoosted(d, BoostConfig{NumTrees: 10, MaxDepth: 3, Seed: 4, Subsample: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	if acc := f.Accuracy(d); acc < 0.65 {
		t.Fatalf("stochastic boosting accuracy = %v", acc)
	}
}

func TestBoostedErrors(t *testing.T) {
	iris := dataset.Iris() // 3 classes
	if _, err := TrainBoosted(iris, BoostConfig{NumTrees: 2}); err == nil {
		t.Fatal("3-class boosted training accepted")
	}
	higgs := dataset.Higgs(100, 1)
	if _, err := TrainBoosted(higgs, BoostConfig{NumTrees: 0}); err == nil {
		t.Fatal("zero rounds accepted")
	}
	unlabeled := dataset.Higgs(100, 1)
	unlabeled.Y = nil
	if _, err := TrainBoosted(unlabeled, BoostConfig{NumTrees: 2}); err == nil {
		t.Fatal("unlabeled accepted")
	}
	// Single-class data cannot be boosted.
	oneClass := dataset.Higgs(50, 2)
	for i := range oneClass.Y {
		oneClass.Y[i] = 0
	}
	if _, err := TrainBoosted(oneClass, BoostConfig{NumTrees: 2}); err == nil {
		t.Fatal("single-class data accepted")
	}
}

func TestBoostedValidateGuards(t *testing.T) {
	f, _, _ := trainBoostedHiggs(t, 3, 3)
	f.NumClasses = 3
	if f.Validate() == nil {
		t.Fatal("3-class boosted forest validated")
	}
}

func BenchmarkTrainBoosted(b *testing.B) {
	d := dataset.Higgs(1000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TrainBoosted(d, BoostConfig{NumTrees: 10, MaxDepth: 3, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
