package forest

import (
	"testing"
	"testing/quick"

	"accelscore/internal/dataset"
	"accelscore/internal/xrand"
)

func trainIris(t *testing.T, trees, depth int) *Forest {
	t.Helper()
	f, err := Train(dataset.Iris(), ForestConfig{
		NumTrees:  trees,
		Tree:      TrainConfig{MaxDepth: depth},
		Seed:      1,
		Bootstrap: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestSingleTreeFitsIris(t *testing.T) {
	f := trainIris(t, 1, 10)
	acc := f.Accuracy(dataset.Iris())
	if acc < 0.95 {
		t.Fatalf("single-tree training accuracy = %v, want >= 0.95", acc)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestForestGeneralizesIris(t *testing.T) {
	train, test := dataset.Iris().Split(0.3, xrand.New(2))
	f, err := Train(train, ForestConfig{
		NumTrees:  16,
		Tree:      TrainConfig{MaxDepth: 10},
		Seed:      3,
		Bootstrap: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if acc := f.Accuracy(test); acc < 0.85 {
		t.Fatalf("forest test accuracy = %v, want >= 0.85", acc)
	}
}

func TestForestLearnsHiggs(t *testing.T) {
	full := dataset.Higgs(4000, 11)
	train, test := full.Split(0.25, xrand.New(4))
	f, err := Train(train, ForestConfig{
		NumTrees:  12,
		Tree:      TrainConfig{MaxDepth: 8},
		Seed:      5,
		Bootstrap: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	acc := f.Accuracy(test)
	// Synthetic HIGGS is learnable: meaningfully above the ~53% majority
	// class baseline.
	if acc < 0.65 {
		t.Fatalf("HIGGS test accuracy = %v, want >= 0.65", acc)
	}
}

func TestMaxDepthRespected(t *testing.T) {
	for _, depth := range []int{1, 3, 6, 10} {
		f := trainIris(t, 8, depth)
		for i, tr := range f.Trees {
			if d := tr.Depth(); d > depth {
				t.Fatalf("depth %d: tree %d has depth %d", depth, i, d)
			}
		}
	}
}

func TestTrainingDeterministic(t *testing.T) {
	a := trainIris(t, 8, 6)
	b := trainIris(t, 8, 6)
	d := dataset.Iris()
	for i := 0; i < d.NumRecords(); i++ {
		if a.PredictClass(d.Row(i)) != b.PredictClass(d.Row(i)) {
			t.Fatalf("same-seed forests disagree on row %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	cfg := ForestConfig{NumTrees: 4, Tree: TrainConfig{MaxDepth: 4}, Bootstrap: true}
	cfg.Seed = 1
	a, _ := Train(dataset.Iris(), cfg)
	cfg.Seed = 2
	b, _ := Train(dataset.Iris(), cfg)
	// Structures should differ somewhere (node counts are a cheap proxy).
	as, bs := a.ComputeStats(), b.ComputeStats()
	if as.TotalNodes == bs.TotalNodes && as.AvgPathLength == bs.AvgPathLength {
		t.Skip("seeds produced structurally identical forests (unlikely)")
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(dataset.Iris(), ForestConfig{NumTrees: 0}); err == nil {
		t.Fatal("NumTrees=0 accepted")
	}
	unlabeled := dataset.Iris()
	unlabeled.Y = nil
	if _, err := Train(unlabeled, ForestConfig{NumTrees: 1}); err == nil {
		t.Fatal("unlabeled training accepted")
	}
	if _, err := TrainTree(unlabeled, nil, TrainConfig{}, xrand.New(1)); err == nil {
		t.Fatal("TrainTree on unlabeled data accepted")
	}
	if _, err := TrainTree(dataset.Iris(), []int{}, TrainConfig{}, xrand.New(1)); err == nil {
		t.Fatal("TrainTree with no rows accepted")
	}
}

func TestPredictionInRange(t *testing.T) {
	f := trainIris(t, 8, 6)
	d := dataset.Iris()
	err := quick.Check(func(i uint16) bool {
		row := d.Row(int(i) % d.NumRecords())
		c := f.PredictClass(row)
		return c >= 0 && c < f.NumClasses
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestVoteConsistency(t *testing.T) {
	// The forest's prediction must be the argmax of its trees' votes.
	f := trainIris(t, 15, 6)
	d := dataset.Iris()
	for i := 0; i < d.NumRecords(); i++ {
		row := d.Row(i)
		votes := make([]int, f.NumClasses)
		for _, tr := range f.Trees {
			votes[tr.PredictClass(row)]++
		}
		if got, want := f.PredictClass(row), Argmax(votes); got != want {
			t.Fatalf("row %d: PredictClass=%d argmax=%d votes=%v", i, got, want, votes)
		}
	}
}

func TestPredictToDepth(t *testing.T) {
	f := trainIris(t, 1, 10)
	root := f.Trees[0].Root
	d := dataset.Iris()
	for i := 0; i < d.NumRecords(); i++ {
		row := d.Row(i)
		// Depth 0 stays at the root.
		if got := root.PredictToDepth(row, 0); got != root {
			t.Fatal("PredictToDepth(0) left the root")
		}
		// Full depth matches Predict.
		if got, want := root.PredictToDepth(row, 64), root.Predict(row); got != want {
			t.Fatalf("row %d: deep PredictToDepth != Predict", i)
		}
	}
}

func TestStats(t *testing.T) {
	f := trainIris(t, 8, 6)
	s := f.ComputeStats()
	if s.Trees != 8 || s.Features != 4 || s.Classes != 3 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MaxDepth < 1 || s.MaxDepth > 6 {
		t.Fatalf("MaxDepth = %d", s.MaxDepth)
	}
	if s.AvgPathLength <= 0 || s.AvgPathLength > float64(s.MaxDepth) {
		t.Fatalf("AvgPathLength = %v beyond max depth %d", s.AvgPathLength, s.MaxDepth)
	}
	// Binary tree node accounting: leaves = internal + trees.
	if s.TotalLeaves != (s.TotalNodes-s.TotalLeaves)+s.Trees {
		t.Fatalf("node accounting broken: %+v", s)
	}
}

func TestSyntheticStats(t *testing.T) {
	s := SyntheticStats(128, 10, 4, 3)
	if s.TotalNodes != 128*2047 || s.TotalLeaves != 128*1024 {
		t.Fatalf("synthetic stats = %+v", s)
	}
	if s.Visits(1_000_000) != 1_280_000_000 {
		t.Fatalf("Visits = %d", s.Visits(1_000_000))
	}
}

func TestRegressorAveragesVotes(t *testing.T) {
	// Regression on IRIS labels (0,1,2): predictions must be within range
	// and close to labels for training data.
	f, err := Train(dataset.Iris(), ForestConfig{
		NumTrees:  8,
		Kind:      Regressor,
		Tree:      TrainConfig{MaxDepth: 8},
		Seed:      6,
		Bootstrap: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	d := dataset.Iris()
	var se float64
	for i := 0; i < d.NumRecords(); i++ {
		v := f.PredictValue(d.Row(i))
		if v < 0 || v > 2 {
			t.Fatalf("regression value %v out of label range", v)
		}
		diff := v - float64(d.Y[i])
		se += diff * diff
	}
	if mse := se / float64(d.NumRecords()); mse > 0.1 {
		t.Fatalf("training MSE = %v, want < 0.1", mse)
	}
}

func TestEntropyCriterion(t *testing.T) {
	f, err := Train(dataset.Iris(), ForestConfig{
		NumTrees: 4,
		Tree:     TrainConfig{MaxDepth: 6, Criterion: Entropy},
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if acc := f.Accuracy(dataset.Iris()); acc < 0.9 {
		t.Fatalf("entropy forest accuracy = %v", acc)
	}
}

func TestMinSamplesLeaf(t *testing.T) {
	f, err := Train(dataset.Iris(), ForestConfig{
		NumTrees: 1,
		Tree:     TrainConfig{MaxDepth: 20, MinSamplesLeaf: 10},
		Seed:     8,
	})
	if err != nil {
		t.Fatal(err)
	}
	var check func(n *Node)
	check = func(n *Node) {
		if n.IsLeaf() {
			if n.Samples < 10 {
				t.Fatalf("leaf with %d samples < MinSamplesLeaf", n.Samples)
			}
			return
		}
		check(n.Left)
		check(n.Right)
	}
	check(f.Trees[0].Root)
}

func TestSplitConventionStrictlyLess(t *testing.T) {
	// Every training row must actually follow the (< threshold -> left)
	// rule to land in a leaf whose recorded class region contains it; walk
	// one tree manually and compare with Predict.
	f := trainIris(t, 1, 10)
	d := dataset.Iris()
	tr := f.Trees[0]
	for i := 0; i < d.NumRecords(); i++ {
		row := d.Row(i)
		n := tr.Root
		for !n.IsLeaf() {
			if row[n.Feature] < n.Threshold {
				n = n.Left
			} else {
				n = n.Right
			}
		}
		if n != tr.Root.Predict(row) {
			t.Fatalf("manual walk disagrees with Predict on row %d", i)
		}
	}
}

func TestArgmaxTieBreaksLow(t *testing.T) {
	if Argmax([]int{3, 3, 1}) != 0 {
		t.Fatal("tie should resolve to lowest index")
	}
	if Argmax([]int{1, 5, 5}) != 1 {
		t.Fatal("tie should resolve to lowest index")
	}
}

func TestValidateCatchesBadTree(t *testing.T) {
	f := trainIris(t, 2, 4)
	// Corrupt: internal node with single child.
	bad := &Node{Feature: 0, Threshold: 1, Left: &Node{}, Right: nil}
	f.Trees[0].Root = bad
	if f.Validate() == nil {
		t.Fatal("single-child internal node not caught")
	}
	f = trainIris(t, 2, 4)
	f.Trees[1].Root = &Node{Class: 99}
	if f.Validate() == nil {
		t.Fatal("out-of-range leaf class not caught")
	}
	f = trainIris(t, 1, 4)
	f.Trees[0].NumFeatures = 7
	if f.Validate() == nil {
		t.Fatal("schema mismatch not caught")
	}
}

func BenchmarkTrainIris16Trees(b *testing.B) {
	d := dataset.Iris()
	for i := 0; i < b.N; i++ {
		if _, err := Train(d, ForestConfig{NumTrees: 16, Tree: TrainConfig{MaxDepth: 10}, Seed: 1, Bootstrap: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPredictBatchIris(b *testing.B) {
	d := dataset.Iris().Replicate(10_000)
	f, err := Train(dataset.Iris(), ForestConfig{NumTrees: 16, Tree: TrainConfig{MaxDepth: 10}, Seed: 1, Bootstrap: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.PredictBatch(d)
	}
}

func TestPredictProba(t *testing.T) {
	f := trainIris(t, 15, 6)
	d := dataset.Iris()
	for i := 0; i < d.NumRecords(); i += 5 {
		row := d.Row(i)
		p := f.PredictProba(row)
		var sum float64
		best, bestIdx := -1.0, 0
		for c, v := range p {
			if v < 0 || v > 1 {
				t.Fatalf("probability %v out of range", v)
			}
			sum += v
			if v > best {
				best, bestIdx = v, c
			}
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("probabilities sum to %v", sum)
		}
		if bestIdx != f.PredictClass(row) {
			t.Fatalf("argmax proba %d != PredictClass %d", bestIdx, f.PredictClass(row))
		}
	}
}

func TestConfusionMatrix(t *testing.T) {
	f := trainIris(t, 8, 10)
	d := dataset.Iris()
	m := f.ConfusionMatrix(d)
	if len(m) != 3 {
		t.Fatalf("matrix size %d", len(m))
	}
	total, diag := 0, 0
	for a := range m {
		for p := range m[a] {
			total += m[a][p]
			if a == p {
				diag += m[a][p]
			}
		}
	}
	if total != 150 {
		t.Fatalf("confusion total = %d", total)
	}
	if acc := float64(diag) / float64(total); acc != f.Accuracy(d) {
		t.Fatalf("diagonal accuracy %v != Accuracy %v", acc, f.Accuracy(d))
	}
}
