package forest

import (
	"testing"

	"accelscore/internal/dataset"
)

func TestCrossValidateIris(t *testing.T) {
	res, err := CrossValidate(dataset.Iris(), 5, 1, func(train *dataset.Dataset) (*Forest, error) {
		return Train(train, ForestConfig{
			NumTrees:  8,
			Tree:      TrainConfig{MaxDepth: 8},
			Seed:      1,
			Bootstrap: true,
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FoldAccuracy) != 5 {
		t.Fatalf("%d folds", len(res.FoldAccuracy))
	}
	if res.Mean < 0.85 || res.Mean > 1 {
		t.Fatalf("CV mean = %v", res.Mean)
	}
	if res.StdDev < 0 || res.StdDev > 0.2 {
		t.Fatalf("CV stddev = %v", res.StdDev)
	}
	// Every fold used held-out data: no fold should be degenerate.
	for i, a := range res.FoldAccuracy {
		if a < 0.6 {
			t.Fatalf("fold %d accuracy %v suspiciously low", i, a)
		}
	}
}

func TestCrossValidateBoosted(t *testing.T) {
	d := dataset.Higgs(1200, 41)
	res, err := CrossValidate(d, 3, 2, func(train *dataset.Dataset) (*Forest, error) {
		return TrainBoosted(train, BoostConfig{NumTrees: 10, MaxDepth: 3, Seed: 1})
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mean < 0.6 {
		t.Fatalf("boosted CV mean = %v", res.Mean)
	}
}

func TestCrossValidateDeterministic(t *testing.T) {
	train := func(tr *dataset.Dataset) (*Forest, error) {
		return Train(tr, ForestConfig{NumTrees: 4, Tree: TrainConfig{MaxDepth: 5}, Seed: 3, Bootstrap: true})
	}
	a, err := CrossValidate(dataset.Iris(), 4, 7, train)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CrossValidate(dataset.Iris(), 4, 7, train)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.FoldAccuracy {
		if a.FoldAccuracy[i] != b.FoldAccuracy[i] {
			t.Fatal("CV not deterministic")
		}
	}
}

func TestCrossValidateErrors(t *testing.T) {
	train := func(tr *dataset.Dataset) (*Forest, error) {
		return Train(tr, ForestConfig{NumTrees: 1, Tree: TrainConfig{MaxDepth: 3}, Seed: 1})
	}
	if _, err := CrossValidate(dataset.Iris(), 1, 1, train); err == nil {
		t.Fatal("k=1 accepted")
	}
	if _, err := CrossValidate(dataset.Iris(), 151, 1, train); err == nil {
		t.Fatal("k>n accepted")
	}
	unlabeled := dataset.Iris()
	unlabeled.Y = nil
	if _, err := CrossValidate(unlabeled, 3, 1, train); err == nil {
		t.Fatal("unlabeled accepted")
	}
}

func TestGridSearch(t *testing.T) {
	candidates := []ForestConfig{
		{NumTrees: 1, Tree: TrainConfig{MaxDepth: 1}, Seed: 1},                   // too weak
		{NumTrees: 12, Tree: TrainConfig{MaxDepth: 8}, Seed: 1, Bootstrap: true}, // strong
		{NumTrees: 2, Tree: TrainConfig{MaxDepth: 2}, Seed: 1, Bootstrap: true},  // weak
	}
	res, err := GridSearch(dataset.Iris(), 4, 3, candidates)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trials) != 3 {
		t.Fatalf("%d trials", len(res.Trials))
	}
	if res.Best.NumTrees != 12 {
		t.Fatalf("grid search picked %+v", res.Best)
	}
	if res.BestScore < 0.85 {
		t.Fatalf("best score = %v", res.BestScore)
	}
	if _, err := GridSearch(dataset.Iris(), 4, 1, nil); err == nil {
		t.Fatal("empty candidate list accepted")
	}
}
