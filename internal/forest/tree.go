// Package forest implements the random-forest substrate: CART decision-tree
// training, bootstrap-aggregated forests, majority-vote classification and
// mean-aggregated regression (paper §II), plus the structural statistics the
// timing models need (tree count, depth, average path length).
//
// The split convention is fixed project-wide: an input goes LEFT when
// x[feature] < threshold, RIGHT otherwise. Every backend — the CPU engines,
// the FPGA node layout (Fig. 4b) and the Hummingbird tensor compiler —
// follows this convention, which the cross-backend integration tests verify.
package forest

import "fmt"

// Node is one node of a decision tree. Leaf nodes have Left == Right == nil.
type Node struct {
	// Feature is the comparison attribute for decision nodes.
	Feature int
	// Threshold is the comparison value: x[Feature] < Threshold goes left.
	Threshold float32
	// Left and Right are the child nodes (nil for leaves).
	Left, Right *Node
	// Class is the majority class at this node (valid for leaves; also
	// maintained on internal nodes so depth-truncated evaluation can stop
	// anywhere, which the FPGA/CPU hybrid mode for depth>10 trees relies
	// on).
	Class int
	// Value is the mean regression target of the training rows that reached
	// this node.
	Value float64
	// Samples is the number of training rows that reached this node.
	Samples int
}

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return n.Left == nil && n.Right == nil }

// Predict walks the tree for one input row and returns the reached leaf.
func (n *Node) Predict(row []float32) *Node {
	cur := n
	for !cur.IsLeaf() {
		if row[cur.Feature] < cur.Threshold {
			cur = cur.Left
		} else {
			cur = cur.Right
		}
	}
	return cur
}

// PredictToDepth walks at most maxDepth levels and returns the node reached
// (which may be internal). This is the contract of the FPGA's depth-limited
// PE with the CPU finishing deeper levels (§III-B extension).
func (n *Node) PredictToDepth(row []float32, maxDepth int) *Node {
	cur := n
	for d := 0; d < maxDepth && !cur.IsLeaf(); d++ {
		if row[cur.Feature] < cur.Threshold {
			cur = cur.Left
		} else {
			cur = cur.Right
		}
	}
	return cur
}

// Tree is a single trained decision tree.
type Tree struct {
	Root *Node
	// NumFeatures and NumClasses record the training schema.
	NumFeatures int
	NumClasses  int
}

// PredictClass returns the class label for one row.
func (t *Tree) PredictClass(row []float32) int {
	return t.Root.Predict(row).Class
}

// PredictValue returns the regression value for one row.
func (t *Tree) PredictValue(row []float32) float64 {
	return t.Root.Predict(row).Value
}

// Depth returns the maximum root-to-leaf edge count.
func (t *Tree) Depth() int { return nodeDepth(t.Root) }

func nodeDepth(n *Node) int {
	if n == nil || n.IsLeaf() {
		return 0
	}
	l, r := nodeDepth(n.Left), nodeDepth(n.Right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// NodeCount returns the total number of nodes.
func (t *Tree) NodeCount() int { return countNodes(t.Root) }

func countNodes(n *Node) int {
	if n == nil {
		return 0
	}
	return 1 + countNodes(n.Left) + countNodes(n.Right)
}

// LeafCount returns the number of leaves.
func (t *Tree) LeafCount() int { return countLeaves(t.Root) }

func countLeaves(n *Node) int {
	if n == nil {
		return 0
	}
	if n.IsLeaf() {
		return 1
	}
	return countLeaves(n.Left) + countLeaves(n.Right)
}

// AvgPathLength returns the expected root-to-leaf path length weighted by
// the training sample counts at each leaf — the quantity the CPU/GPU timing
// models use as visits-per-record.
func (t *Tree) AvgPathLength() float64 {
	totalSamples, weighted := pathStats(t.Root, 0)
	if totalSamples == 0 {
		return 0
	}
	return weighted / float64(totalSamples)
}

func pathStats(n *Node, depth int) (samples int, weightedDepth float64) {
	if n == nil {
		return 0, 0
	}
	if n.IsLeaf() {
		return n.Samples, float64(n.Samples) * float64(depth)
	}
	ls, lw := pathStats(n.Left, depth+1)
	rs, rw := pathStats(n.Right, depth+1)
	return ls + rs, lw + rw
}

// Validate checks structural invariants: internal nodes have two children,
// feature indices are in range, and leaf classes are valid.
func (t *Tree) Validate() error {
	return validateNode(t.Root, t.NumFeatures, t.NumClasses)
}

func validateNode(n *Node, features, classes int) error {
	if n == nil {
		return fmt.Errorf("forest: nil node")
	}
	if n.IsLeaf() {
		if n.Class < 0 || (classes > 0 && n.Class >= classes) {
			return fmt.Errorf("forest: leaf class %d out of range [0,%d)", n.Class, classes)
		}
		return nil
	}
	if n.Left == nil || n.Right == nil {
		return fmt.Errorf("forest: internal node with a single child")
	}
	if n.Feature < 0 || n.Feature >= features {
		return fmt.Errorf("forest: split feature %d out of range [0,%d)", n.Feature, features)
	}
	if err := validateNode(n.Left, features, classes); err != nil {
		return err
	}
	return validateNode(n.Right, features, classes)
}
