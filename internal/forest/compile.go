package forest

import (
	"fmt"

	"accelscore/internal/kernel"
)

// Compile lowers the forest into the shared flat traversal kernel form: one
// set of parallel node arrays for the whole ensemble, scored by
// kernel.Compiled's blocked batch loop. Every functional CPU path — the
// Scikit-learn and ONNX engines, PredictBatch, the pipeline's compiled-model
// cache — consumes this single lowering.
func (f *Forest) Compile() (*kernel.Compiled, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	c := kernel.New(maxInt(f.NumClasses, 1), f.Kind == Boosted, f.BaseScore)
	for i, t := range f.Trees {
		c.BeginTree()
		if err := emitNode(c, t.Root); err != nil {
			return nil, fmt.Errorf("forest: compiling tree %d: %w", i, err)
		}
	}
	if err := c.Seal(); err != nil {
		return nil, err
	}
	return c, nil
}

// emitNode appends n's subtree to the compiled arrays in pre-order,
// patching child links after each subtree is emitted.
func emitNode(c *kernel.Compiled, n *Node) error {
	_, err := emitSubtree(c, n)
	return err
}

func emitSubtree(c *kernel.Compiled, n *Node) (int32, error) {
	if n == nil {
		return 0, fmt.Errorf("nil node")
	}
	if n.IsLeaf() {
		return c.EmitLeaf(int32(n.Class), n.Value), nil
	}
	idx := c.EmitSplit(int32(n.Feature), n.Threshold)
	left, err := emitSubtree(c, n.Left)
	if err != nil {
		return 0, err
	}
	right, err := emitSubtree(c, n.Right)
	if err != nil {
		return 0, err
	}
	c.SetChildren(idx, left, right)
	return idx, nil
}
