package forest

import (
	"math"
	"testing"

	"accelscore/internal/dataset"
)

func TestFeatureImportanceSumsToOne(t *testing.T) {
	f := trainIris(t, 8, 8)
	imp := f.FeatureImportance()
	if len(imp) != 4 {
		t.Fatalf("importance length %d", len(imp))
	}
	var sum float64
	for _, v := range imp {
		if v < 0 {
			t.Fatalf("negative importance %v", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("importances sum to %v", sum)
	}
}

func TestPetalFeaturesDominateIris(t *testing.T) {
	// Petal length/width are the well-known discriminative IRIS features;
	// any reasonable importance measure ranks one of them first.
	f := trainIris(t, 16, 10)
	ranked := f.RankedImportance()
	if ranked[0].Name != "petal_length" && ranked[0].Name != "petal_width" {
		t.Fatalf("top feature = %s (%v)", ranked[0].Name, ranked[0].Importance)
	}
	// Ranked order is non-increasing.
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Importance > ranked[i-1].Importance {
			t.Fatal("ranking not sorted")
		}
	}
}

func TestMBBDominatesHiggs(t *testing.T) {
	// The generator makes m_bb (feature 25) the most discriminative
	// feature, as in the real dataset.
	d := dataset.Higgs(3000, 5)
	f, err := Train(d, ForestConfig{
		NumTrees:  8,
		Tree:      TrainConfig{MaxDepth: 8},
		Seed:      2,
		Bootstrap: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ranked := f.RankedImportance()
	top3 := []string{ranked[0].Name, ranked[1].Name, ranked[2].Name}
	for _, n := range top3 {
		if n == "m_bb" {
			return
		}
	}
	t.Fatalf("m_bb not in top-3 features: %v", top3)
}

func TestTrainWithOOB(t *testing.T) {
	f, oob, err := TrainWithOOB(dataset.Iris(), ForestConfig{
		NumTrees: 16,
		Tree:     TrainConfig{MaxDepth: 10},
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Trees) != 16 {
		t.Fatalf("%d trees", len(f.Trees))
	}
	// OOB accuracy on IRIS should be high but below training accuracy.
	if oob < 0.85 || oob > 1.0 {
		t.Fatalf("OOB accuracy = %v", oob)
	}
	train := f.Accuracy(dataset.Iris())
	if oob > train+1e-9 {
		t.Fatalf("OOB %v exceeds training accuracy %v", oob, train)
	}
}

func TestTrainWithOOBErrors(t *testing.T) {
	if _, _, err := TrainWithOOB(dataset.Iris(), ForestConfig{NumTrees: 0}); err == nil {
		t.Fatal("zero trees accepted")
	}
	unlabeled := dataset.Iris()
	unlabeled.Y = nil
	if _, _, err := TrainWithOOB(unlabeled, ForestConfig{NumTrees: 2}); err == nil {
		t.Fatal("unlabeled accepted")
	}
}

func TestSqrtCeil(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 4: 2, 5: 3, 9: 3, 10: 4, 28: 6}
	for n, want := range cases {
		if got := sqrtCeil(n); got != want {
			t.Errorf("sqrtCeil(%d) = %d, want %d", n, got, want)
		}
	}
}
