package forest

import (
	"fmt"
	"math"
	"runtime"

	"accelscore/internal/dataset"
	"accelscore/internal/xrand"
)

// Kind distinguishes classification from regression forests (paper §II:
// "random forest regressor ... average of each tree's prediction; random
// forest classifier ... majority vote").
type Kind int

const (
	// Classifier forests predict by majority vote.
	Classifier Kind = iota
	// Regressor forests predict by averaging tree values.
	Regressor
	// Boosted ensembles are gradient-boosted binary classifiers: the class
	// is sigmoid(BaseScore + sum of tree values) > 0.5 (§III-A lists
	// gradient-boost models among those the tensor compiler supports).
	Boosted
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case Regressor:
		return "regressor"
	case Boosted:
		return "boosted"
	default:
		return "classifier"
	}
}

// Forest is a trained random forest.
type Forest struct {
	// Trees are the ensemble members.
	Trees []*Tree
	// Kind selects vote vs average aggregation.
	Kind Kind
	// NumFeatures and NumClasses record the training schema.
	NumFeatures int
	NumClasses  int
	// FeatureNames and ClassNames carry display metadata from the training
	// set.
	FeatureNames []string
	ClassNames   []string
	// BaseScore is the boosted ensemble's initial log-odds (zero for other
	// kinds).
	BaseScore float64
}

// ForestConfig controls ensemble training.
type ForestConfig struct {
	// NumTrees is the ensemble size (the paper sweeps 1..128).
	NumTrees int
	// Tree configures the individual CART inductions.
	Tree TrainConfig
	// Kind selects classifier or regressor aggregation.
	Kind Kind
	// Seed makes training deterministic.
	Seed uint64
	// Bootstrap enables bagging (sampling training rows with replacement);
	// disabled, every tree sees all rows and diversity comes only from
	// feature subsampling.
	Bootstrap bool
}

// Train fits a random forest on d. Feature subsampling defaults to
// sqrt(features) when the ensemble has more than one tree, following
// Scikit-learn (paper ref [31]).
func Train(d *dataset.Dataset, cfg ForestConfig) (*Forest, error) {
	if cfg.NumTrees <= 0 {
		return nil, fmt.Errorf("forest: NumTrees must be positive, got %d", cfg.NumTrees)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if len(d.Y) == 0 {
		return nil, fmt.Errorf("forest: training requires labels")
	}
	treeCfg := cfg.Tree
	if treeCfg.MaxFeatures == 0 && cfg.NumTrees > 1 {
		treeCfg.MaxFeatures = int(math.Ceil(math.Sqrt(float64(d.NumFeatures()))))
	}
	if cfg.Kind == Regressor {
		treeCfg.Criterion = MSE
	}

	rng := xrand.New(cfg.Seed)
	f := &Forest{
		Kind:         cfg.Kind,
		NumFeatures:  d.NumFeatures(),
		NumClasses:   d.NumClasses(),
		FeatureNames: append([]string(nil), d.FeatureNames...),
		ClassNames:   append([]string(nil), d.ClassNames...),
	}
	n := d.NumRecords()
	for t := 0; t < cfg.NumTrees; t++ {
		treeRng := rng.Split()
		var indices []int
		if cfg.Bootstrap && cfg.NumTrees > 1 {
			indices = make([]int, n)
			for i := range indices {
				indices[i] = treeRng.Intn(n)
			}
		}
		tree, err := TrainTree(d, indices, treeCfg, treeRng)
		if err != nil {
			return nil, fmt.Errorf("forest: training tree %d: %w", t, err)
		}
		f.Trees = append(f.Trees, tree)
	}
	return f, nil
}

// PredictClass returns the predicted class for one row: the majority vote
// for classifiers (ties resolve to the lowest class index, the convention
// shared by every backend), or the thresholded margin for boosted
// ensembles.
func (f *Forest) PredictClass(row []float32) int {
	if f.Kind == Boosted {
		if f.Margin(row) > 0 {
			return 1
		}
		return 0
	}
	votes := make([]int, maxInt(f.NumClasses, 1))
	for _, t := range f.Trees {
		votes[t.PredictClass(row)]++
	}
	return Argmax(votes)
}

// Margin returns the boosted ensemble's raw score (log-odds) for one row:
// BaseScore plus the sum of the trees' leaf values.
func (f *Forest) Margin(row []float32) float64 {
	s := f.BaseScore
	for _, t := range f.Trees {
		s += t.PredictValue(row)
	}
	return s
}

// PredictValue returns the mean regression prediction for one row.
func (f *Forest) PredictValue(row []float32) float64 {
	var sum float64
	for _, t := range f.Trees {
		sum += t.PredictValue(row)
	}
	return sum / float64(len(f.Trees))
}

// PredictBatch classifies every row of d through the shared flat traversal
// kernel (compiled on the fly; forests that fail to compile — e.g. partially
// constructed ones — fall back to the pointer walk so behavior is
// unchanged).
func (f *Forest) PredictBatch(d *dataset.Dataset) []int {
	n := d.NumRecords()
	out := make([]int, n)
	if n == 0 {
		return out
	}
	features := d.NumFeatures()
	if c, err := f.Compile(); err == nil {
		c.Predict(d.X[:n*features], features, out, runtime.GOMAXPROCS(0))
		return out
	}
	for i := range out {
		out[i] = f.PredictClass(d.Row(i))
	}
	return out
}

// Accuracy returns the fraction of rows of d whose prediction matches the
// label.
func (f *Forest) Accuracy(d *dataset.Dataset) float64 {
	if d.NumRecords() == 0 {
		return 0
	}
	preds := f.PredictBatch(d)
	correct := 0
	for i, p := range preds {
		if p == d.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(d.NumRecords())
}

// Validate checks every tree's structural invariants.
func (f *Forest) Validate() error {
	if len(f.Trees) == 0 {
		return fmt.Errorf("forest: empty ensemble")
	}
	if f.Kind == Boosted && f.NumClasses != 2 {
		return fmt.Errorf("forest: boosted ensembles are binary classifiers, got %d classes", f.NumClasses)
	}
	for i, t := range f.Trees {
		if t.NumFeatures != f.NumFeatures || t.NumClasses != f.NumClasses {
			return fmt.Errorf("forest: tree %d schema %d/%d != forest schema %d/%d",
				i, t.NumFeatures, t.NumClasses, f.NumFeatures, f.NumClasses)
		}
		if err := t.Validate(); err != nil {
			return fmt.Errorf("forest: tree %d: %w", i, err)
		}
	}
	return nil
}

// Argmax returns the index of the maximum count, lowest index winning ties.
func Argmax(counts []int) int {
	best := 0
	for i, c := range counts {
		if c > counts[best] {
			best = i
		}
	}
	return best
}

// Stats summarizes the structural properties that drive every timing model.
type Stats struct {
	// Trees is the ensemble size.
	Trees int
	// MaxDepth is the deepest tree's depth.
	MaxDepth int
	// AvgPathLength is the sample-weighted mean root-to-leaf path length
	// across trees — the visits-per-record-per-tree the CPU/GPU models use.
	AvgPathLength float64
	// TotalNodes and TotalLeaves count actual (unpadded) nodes.
	TotalNodes, TotalLeaves int
	// Features and Classes are the model schema.
	Features, Classes int
}

// ComputeStats derives Stats from a trained forest.
func (f *Forest) ComputeStats() Stats {
	s := Stats{
		Trees:    len(f.Trees),
		Features: f.NumFeatures,
		Classes:  f.NumClasses,
	}
	var pathSum float64
	for _, t := range f.Trees {
		if d := t.Depth(); d > s.MaxDepth {
			s.MaxDepth = d
		}
		s.TotalNodes += t.NodeCount()
		s.TotalLeaves += t.LeafCount()
		pathSum += t.AvgPathLength()
	}
	if len(f.Trees) > 0 {
		s.AvgPathLength = pathSum / float64(len(f.Trees))
	}
	return s
}

// SyntheticStats builds Stats for a hypothetical full model without training
// it — the advisor and the figure sweeps use this to evaluate configurations
// (e.g. 128 trees, depth 10) at any scale instantly.
func SyntheticStats(trees, depth, features, classes int) Stats {
	nodesPerTree := (1 << uint(depth+1)) - 1
	leavesPerTree := 1 << uint(depth)
	return Stats{
		Trees:         trees,
		MaxDepth:      depth,
		AvgPathLength: float64(depth),
		TotalNodes:    trees * nodesPerTree,
		TotalLeaves:   trees * leavesPerTree,
		Features:      features,
		Classes:       classes,
	}
}

// Visits returns the expected total node visits for scoring records rows:
// records x trees x average path length.
func (s Stats) Visits(records int64) int64 {
	return int64(float64(records) * float64(s.Trees) * s.AvgPathLength)
}

// PredictProba returns the per-class probability estimate for one row: vote
// fractions for classifiers (matching Scikit-learn's predict_proba) or the
// calibrated sigmoid of the margin for boosted ensembles.
func (f *Forest) PredictProba(row []float32) []float64 {
	if f.Kind == Boosted {
		p := sigmoid(f.Margin(row))
		return []float64{1 - p, p}
	}
	votes := make([]int, maxInt(f.NumClasses, 1))
	for _, t := range f.Trees {
		votes[t.PredictClass(row)]++
	}
	out := make([]float64, len(votes))
	if len(f.Trees) == 0 {
		return out
	}
	for i, v := range votes {
		out[i] = float64(v) / float64(len(f.Trees))
	}
	return out
}

// ConfusionMatrix returns counts[actual][predicted] over the labeled rows
// of d.
func (f *Forest) ConfusionMatrix(d *dataset.Dataset) [][]int {
	n := maxInt(f.NumClasses, 1)
	m := make([][]int, n)
	for i := range m {
		m[i] = make([]int, n)
	}
	preds := f.PredictBatch(d)
	for i := 0; i < len(preds) && i < len(d.Y); i++ {
		actual, pred := d.Y[i], preds[i]
		if actual >= 0 && actual < n && pred >= 0 && pred < n {
			m[actual][pred]++
		}
	}
	return m
}
