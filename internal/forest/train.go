package forest

import (
	"fmt"
	"math"
	"sort"

	"accelscore/internal/dataset"
	"accelscore/internal/xrand"
)

// Criterion selects the impurity measure used by CART splits.
type Criterion int

const (
	// Gini is the Gini impurity (Scikit-learn's classifier default).
	Gini Criterion = iota
	// Entropy is information gain.
	Entropy
	// MSE is mean squared error, used for regression trees.
	MSE
)

// String returns the criterion name.
func (c Criterion) String() string {
	switch c {
	case Gini:
		return "gini"
	case Entropy:
		return "entropy"
	case MSE:
		return "mse"
	default:
		return fmt.Sprintf("criterion(%d)", int(c))
	}
}

// TrainConfig controls tree induction.
type TrainConfig struct {
	// MaxDepth bounds the tree depth (the paper trains 6- and 10-level
	// trees). Zero means unlimited.
	MaxDepth int
	// MinSamplesLeaf is the minimum training rows per leaf (default 1).
	MinSamplesLeaf int
	// Criterion is the impurity measure (default Gini).
	Criterion Criterion
	// MaxFeatures is the number of features considered per split; zero
	// means all features for single trees and sqrt(features) for forests
	// (the Scikit-learn convention).
	MaxFeatures int
}

func (c TrainConfig) withDefaults() TrainConfig {
	if c.MinSamplesLeaf <= 0 {
		c.MinSamplesLeaf = 1
	}
	return c
}

// TrainTree induces a single CART tree on the rows of d selected by indices
// (all rows when indices is nil), using rng for feature subsampling.
func TrainTree(d *dataset.Dataset, indices []int, cfg TrainConfig, rng *xrand.Rand) (*Tree, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if len(d.Y) == 0 {
		return nil, fmt.Errorf("forest: training requires labels")
	}
	cfg = cfg.withDefaults()
	if indices == nil {
		indices = make([]int, d.NumRecords())
		for i := range indices {
			indices[i] = i
		}
	}
	if len(indices) == 0 {
		return nil, fmt.Errorf("forest: no training rows")
	}
	b := &builder{d: d, cfg: cfg, rng: rng}
	root := b.build(indices, 0)
	return &Tree{Root: root, NumFeatures: d.NumFeatures(), NumClasses: d.NumClasses()}, nil
}

type builder struct {
	d   *dataset.Dataset
	cfg TrainConfig
	rng *xrand.Rand
}

// build recursively grows the subtree over the given training rows.
func (b *builder) build(rows []int, depth int) *Node {
	n := &Node{Samples: len(rows)}
	n.Class, n.Value = b.summary(rows)

	if b.cfg.MaxDepth > 0 && depth >= b.cfg.MaxDepth {
		return n
	}
	if len(rows) < 2*b.cfg.MinSamplesLeaf || b.pure(rows) {
		return n
	}
	feature, threshold, ok := b.bestSplit(rows)
	if !ok {
		return n
	}
	left, right := b.partition(rows, feature, threshold)
	if len(left) < b.cfg.MinSamplesLeaf || len(right) < b.cfg.MinSamplesLeaf {
		return n
	}
	n.Feature = feature
	n.Threshold = threshold
	n.Left = b.build(left, depth+1)
	n.Right = b.build(right, depth+1)
	return n
}

// summary returns the majority class and mean target of the rows.
func (b *builder) summary(rows []int) (class int, value float64) {
	counts := make([]int, maxInt(b.d.NumClasses(), 1))
	var sum float64
	for _, r := range rows {
		y := b.d.Y[r]
		if y < len(counts) {
			counts[y]++
		}
		sum += float64(y)
	}
	best := 0
	for c, n := range counts {
		if n > counts[best] {
			best = c
		}
	}
	return best, sum / float64(len(rows))
}

// pure reports whether all rows share one label.
func (b *builder) pure(rows []int) bool {
	first := b.d.Y[rows[0]]
	for _, r := range rows[1:] {
		if b.d.Y[r] != first {
			return false
		}
	}
	return true
}

// candidateFeatures returns the features examined for a split, honoring
// MaxFeatures with a deterministic random subset.
func (b *builder) candidateFeatures() []int {
	f := b.d.NumFeatures()
	k := b.cfg.MaxFeatures
	if k <= 0 || k >= f {
		all := make([]int, f)
		for i := range all {
			all[i] = i
		}
		return all
	}
	perm := b.rng.Perm(f)
	return perm[:k]
}

// bestSplit scans candidate features for the impurity-minimizing threshold.
func (b *builder) bestSplit(rows []int) (feature int, threshold float32, ok bool) {
	bestScore := math.Inf(1)
	vals := make([]rowVal, len(rows))
	for _, f := range b.candidateFeatures() {
		for i, r := range rows {
			vals[i] = rowVal{v: b.d.Row(r)[f], y: b.d.Y[r]}
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i].v < vals[j].v })

		// Incremental impurity over the sorted order: move one row at a
		// time from right to left and evaluate the split between distinct
		// values.
		score := b.scanSplits(vals, func(i int) bool {
			return vals[i].v != vals[i+1].v
		}, &threshold, &feature, f, bestScore)
		if score < bestScore {
			bestScore = score
			ok = true
		}
	}
	return feature, threshold, ok
}

// rowVal pairs one row's feature value with its label for split scanning.
type rowVal struct {
	v float32
	y int
}

// scanSplits evaluates every valid split position for one feature and
// returns the best impurity found; it writes the winning threshold/feature
// through the out-params when it improves on bestSoFar.
func (b *builder) scanSplits(vals []rowVal, boundary func(int) bool, outThreshold *float32, outFeature *int, feature int, bestSoFar float64) float64 {
	n := len(vals)
	best := math.Inf(1)

	switch b.cfg.Criterion {
	case MSE:
		// Regression: track sums for variance computation.
		var totalSum, totalSq float64
		for _, rv := range vals {
			totalSum += float64(rv.y)
			totalSq += float64(rv.y) * float64(rv.y)
		}
		var leftSum, leftSq float64
		for i := 0; i < n-1; i++ {
			y := float64(vals[i].y)
			leftSum += y
			leftSq += y * y
			if !boundary(i) {
				continue
			}
			nl, nr := float64(i+1), float64(n-i-1)
			if int(nl) < b.cfg.MinSamplesLeaf || int(nr) < b.cfg.MinSamplesLeaf {
				continue
			}
			rightSum, rightSq := totalSum-leftSum, totalSq-leftSq
			mseL := leftSq/nl - (leftSum/nl)*(leftSum/nl)
			mseR := rightSq/nr - (rightSum/nr)*(rightSum/nr)
			score := (nl*mseL + nr*mseR) / float64(n)
			if score < best {
				best = score
				if score < bestSoFar {
					*outThreshold = midpoint(vals[i].v, vals[i+1].v)
					*outFeature = feature
				}
			}
		}
	default:
		classes := maxInt(b.d.NumClasses(), 1)
		leftCounts := make([]int, classes)
		rightCounts := make([]int, classes)
		for _, rv := range vals {
			rightCounts[rv.y]++
		}
		for i := 0; i < n-1; i++ {
			leftCounts[vals[i].y]++
			rightCounts[vals[i].y]--
			if !boundary(i) {
				continue
			}
			nl, nr := i+1, n-i-1
			if nl < b.cfg.MinSamplesLeaf || nr < b.cfg.MinSamplesLeaf {
				continue
			}
			var score float64
			if b.cfg.Criterion == Entropy {
				score = weightedEntropy(leftCounts, nl, rightCounts, nr)
			} else {
				score = weightedGini(leftCounts, nl, rightCounts, nr)
			}
			if score < best {
				best = score
				if score < bestSoFar {
					*outThreshold = midpoint(vals[i].v, vals[i+1].v)
					*outFeature = feature
				}
			}
		}
	}
	return best
}

// midpoint returns the split threshold between two consecutive sorted
// values, guaranteed to send the lower value left under the `<` rule.
func midpoint(a, c float32) float32 {
	m := a + (c-a)/2
	if m <= a { // float rounding collapsed the midpoint
		m = c
	}
	return m
}

func weightedGini(left []int, nl int, right []int, nr int) float64 {
	return (float64(nl)*gini(left, nl) + float64(nr)*gini(right, nr)) / float64(nl+nr)
}

func gini(counts []int, n int) float64 {
	if n == 0 {
		return 0
	}
	s := 1.0
	for _, c := range counts {
		p := float64(c) / float64(n)
		s -= p * p
	}
	return s
}

func weightedEntropy(left []int, nl int, right []int, nr int) float64 {
	return (float64(nl)*entropy(left, nl) + float64(nr)*entropy(right, nr)) / float64(nl+nr)
}

func entropy(counts []int, n int) float64 {
	if n == 0 {
		return 0
	}
	var h float64
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(n)
		h -= p * math.Log2(p)
	}
	return h
}

// partition splits rows by the (<threshold -> left) rule.
func (b *builder) partition(rows []int, feature int, threshold float32) (left, right []int) {
	for _, r := range rows {
		if b.d.Row(r)[feature] < threshold {
			left = append(left, r)
		} else {
			right = append(right, r)
		}
	}
	return left, right
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
