package forest_test

import (
	"fmt"

	"accelscore/internal/dataset"
	"accelscore/internal/forest"
)

// ExampleTrain shows the basic train-and-predict flow on IRIS.
func ExampleTrain() {
	f, err := forest.Train(dataset.Iris(), forest.ForestConfig{
		NumTrees:  8,
		Tree:      forest.TrainConfig{MaxDepth: 10},
		Seed:      1,
		Bootstrap: true,
	})
	if err != nil {
		panic(err)
	}
	// The first IRIS row is a setosa (class 0).
	fmt.Println(f.PredictClass(dataset.Iris().Row(0)))
	fmt.Println(f.ClassNames[f.PredictClass(dataset.Iris().Row(0))])
	// Output:
	// 0
	// setosa
}

// ExampleForest_ComputeStats shows the structural statistics that drive the
// backend timing models.
func ExampleForest_ComputeStats() {
	f, err := forest.Train(dataset.Iris(), forest.ForestConfig{
		NumTrees: 4,
		Tree:     forest.TrainConfig{MaxDepth: 6},
		Seed:     2,
	})
	if err != nil {
		panic(err)
	}
	s := f.ComputeStats()
	fmt.Println(s.Trees, s.Features, s.Classes)
	// Output:
	// 4 4 3
}

// ExampleSyntheticStats shows building hypothetical model stats for the
// advisor without training.
func ExampleSyntheticStats() {
	s := forest.SyntheticStats(128, 10, 28, 2)
	fmt.Println(s.Visits(1_000_000))
	// Output:
	// 1280000000
}
