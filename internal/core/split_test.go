package core_test

import (
	"testing"

	"accelscore/internal/backend"
	"accelscore/internal/core"
	"accelscore/internal/forest"
	"accelscore/internal/platform"
)

// oneDevicePerGroup returns one backend per independent device: the best
// CPU engine, Hummingbird for the GPU, and the FPGA.
func oneDevicePerGroup(tb *platform.Testbed) []backend.Backend {
	return []backend.Backend{tb.SKLearn, tb.HB, tb.FPGA}
}

func TestPlanSplitLargeBatch(t *testing.T) {
	tb := platform.New()
	stats := forest.SyntheticStats(128, 10, 28, 2)
	const records = 10_000_000
	plan, err := core.PlanSplit(oneDevicePerGroup(tb), stats, records)
	if err != nil {
		t.Fatal(err)
	}
	// All records assigned.
	var total int64
	for _, a := range plan.Assignments {
		total += a.Records
		if a.Time > plan.Makespan {
			t.Fatalf("assignment %s exceeds makespan: %v > %v", a.Backend, a.Time, plan.Makespan)
		}
	}
	if total != records {
		t.Fatalf("assigned %d of %d records", total, records)
	}
	// Splitting a huge batch beats the single best device.
	if plan.Makespan >= plan.SingleBest {
		t.Fatalf("split makespan %v not better than single best %v (%s)",
			plan.Makespan, plan.SingleBest, plan.SingleBestName)
	}
	if plan.Speedup() <= 1 {
		t.Fatalf("speedup = %v", plan.Speedup())
	}
	// The FPGA takes the lion's share.
	if plan.Assignments[0].Backend != "FPGA" {
		t.Fatalf("largest share went to %s", plan.Assignments[0].Backend)
	}
}

func TestPlanSplitSmallBatchDegenerates(t *testing.T) {
	// For a tiny batch the plan collapses to one device (paying another
	// device's offload floor would only hurt).
	tb := platform.New()
	stats := forest.SyntheticStats(8, 10, 4, 3)
	plan, err := core.PlanSplit(oneDevicePerGroup(tb), stats, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Assignments) != 1 {
		t.Fatalf("tiny batch split across %d devices: %+v", len(plan.Assignments), plan.Assignments)
	}
	// Makespan equals the single best (no gain possible).
	if plan.Makespan > plan.SingleBest {
		t.Fatalf("split worse than single best: %v > %v", plan.Makespan, plan.SingleBest)
	}
}

func TestPlanSplitExcludesUnsupported(t *testing.T) {
	// RAPIDS cannot run 3-class models; including it must not break the
	// plan.
	tb := platform.New()
	stats := forest.SyntheticStats(16, 10, 4, 3)
	plan, err := core.PlanSplit([]backend.Backend{tb.SKLearn, tb.RAPIDS, tb.FPGA}, stats, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range plan.Assignments {
		if a.Backend == "GPU_RAPIDS" {
			t.Fatal("unsupported backend received records")
		}
	}
}

func TestPlanSplitErrors(t *testing.T) {
	tb := platform.New()
	stats := forest.SyntheticStats(8, 10, 4, 3)
	if _, err := core.PlanSplit(oneDevicePerGroup(tb), stats, 0); err == nil {
		t.Fatal("zero records accepted")
	}
	// Only unsupported backends.
	if _, err := core.PlanSplit([]backend.Backend{tb.RAPIDS}, stats, 100); err == nil {
		t.Fatal("unsupported-only set accepted")
	}
}

func TestPlanSplitMakespanOptimality(t *testing.T) {
	// Sanity: the optimal makespan cannot beat a perfect-parallelism lower
	// bound, and shifting 10% of the FPGA's share to another device should
	// not improve it (local optimality probe).
	tb := platform.New()
	stats := forest.SyntheticStats(128, 10, 28, 2)
	const records = 5_000_000
	plan, err := core.PlanSplit(oneDevicePerGroup(tb), stats, records)
	if err != nil {
		t.Fatal(err)
	}
	// Lower bound: every device working on the full batch simultaneously.
	for _, b := range oneDevicePerGroup(tb) {
		tl, err := b.Estimate(stats, records)
		if err != nil {
			continue
		}
		// Each single device alone is no faster than the combined plan.
		if tl.Total() < plan.Makespan {
			t.Fatalf("%s alone (%v) beats the 'optimal' split (%v)", b.Name(), tl.Total(), plan.Makespan)
		}
	}
}

func BenchmarkPlanSplit(b *testing.B) {
	tb := platform.New()
	stats := forest.SyntheticStats(128, 10, 28, 2)
	devices := oneDevicePerGroup(tb)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.PlanSplit(devices, stats, 10_000_000); err != nil {
			b.Fatal(err)
		}
	}
}
