package core

import (
	"fmt"
	"sort"
	"time"

	"accelscore/internal/backend"
	"accelscore/internal/forest"
)

// SplitAssignment is one device's share of a data-parallel scoring batch.
type SplitAssignment struct {
	Backend string
	Records int64
	// Time is the device's predicted completion time for its share.
	Time time.Duration
}

// SplitPlan is an optimal partition of one large batch across independent
// devices, each running its own backend concurrently. This is the
// data-parallel extension of the paper's offload analysis: when one scoring
// query is large enough, the accelerators and the CPU can each take a slice
// of the records, bounded by the slowest device's finish time (makespan).
type SplitPlan struct {
	Assignments []SplitAssignment
	Makespan    time.Duration
	// SingleBest is the best achievable time using only one backend, for
	// comparison.
	SingleBest     time.Duration
	SingleBestName string
}

// Speedup is the gain of splitting over the single best backend.
func (p SplitPlan) Speedup() float64 {
	if p.Makespan <= 0 {
		return 0
	}
	return float64(p.SingleBest) / float64(p.Makespan)
}

// PlanSplit partitions records rows of a model with the given stats across
// the provided backends (one per independent device — do not pass two
// backends that share hardware). It minimizes the makespan by bisecting on
// the finish time T and, for each T, greedily assigning every device the
// largest share it can complete within T.
//
// Devices whose fixed offload overhead already exceeds the optimum receive
// zero records — the plan degenerates gracefully to single-device execution
// for small batches, consistent with the paper's small-query analysis.
func PlanSplit(backends []backend.Backend, stats forest.Stats, records int64) (*SplitPlan, error) {
	if records <= 0 {
		return nil, fmt.Errorf("core: PlanSplit needs a positive record count, got %d", records)
	}
	type device struct {
		b backend.Backend
		// timeFor returns the device's predicted time for n of its records.
		timeFor func(n int64) (time.Duration, bool)
	}
	var devices []device
	for _, b := range backends {
		b := b
		if _, err := b.Estimate(stats, 1); err != nil {
			continue // unsupported configuration: exclude the device
		}
		devices = append(devices, device{
			b: b,
			timeFor: func(n int64) (time.Duration, bool) {
				tl, err := b.Estimate(stats, n)
				if err != nil {
					return 0, false
				}
				return tl.Total(), true
			},
		})
	}
	if len(devices) == 0 {
		return nil, fmt.Errorf("core: no backend supports the configuration")
	}

	// capacity(d, T): the largest n <= records d can finish within T.
	// Backend times are monotone nondecreasing in n, so bisection applies.
	capacity := func(d device, bound time.Duration) int64 {
		if t, ok := d.timeFor(0); !ok || t > bound {
			return 0
		}
		lo, hi := int64(0), records
		if t, ok := d.timeFor(records); ok && t <= bound {
			return records
		}
		for lo < hi {
			mid := lo + (hi-lo+1)/2
			t, ok := d.timeFor(mid)
			if ok && t <= bound {
				lo = mid
			} else {
				hi = mid - 1
			}
		}
		return lo
	}

	// Single-device baseline (also the upper bound for the bisection).
	bestSingle := time.Duration(1<<63 - 1)
	bestSingleName := ""
	for _, d := range devices {
		if t, ok := d.timeFor(records); ok && t < bestSingle {
			bestSingle = t
			bestSingleName = d.b.Name()
		}
	}
	if bestSingleName == "" {
		return nil, fmt.Errorf("core: no backend can score %d records", records)
	}

	feasible := func(bound time.Duration) bool {
		var total int64
		for _, d := range devices {
			total += capacity(d, bound)
			if total >= records {
				return true
			}
		}
		return false
	}

	// Bisect the makespan in the integer nanosecond domain.
	lo, hi := time.Duration(0), bestSingle
	for lo < hi {
		mid := lo + (hi-lo)/2
		if feasible(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	makespan := hi

	// Materialize assignments at the optimal bound: devices in descending
	// capacity order absorb the batch.
	type cap struct {
		d device
		n int64
	}
	caps := make([]cap, 0, len(devices))
	for _, d := range devices {
		caps = append(caps, cap{d: d, n: capacity(d, makespan)})
	}
	sort.SliceStable(caps, func(i, j int) bool { return caps[i].n > caps[j].n })
	plan := &SplitPlan{SingleBest: bestSingle, SingleBestName: bestSingleName}
	remaining := records
	for _, c := range caps {
		n := c.n
		if n > remaining {
			n = remaining
		}
		if n <= 0 {
			continue
		}
		t, _ := c.d.timeFor(n)
		plan.Assignments = append(plan.Assignments, SplitAssignment{
			Backend: c.d.b.Name(), Records: n, Time: t,
		})
		if t > plan.Makespan {
			plan.Makespan = t
		}
		remaining -= n
		if remaining == 0 {
			break
		}
	}
	if remaining > 0 {
		return nil, fmt.Errorf("core: internal error: %d records unassigned at makespan %v", remaining, makespan)
	}
	return plan, nil
}
