package core_test

import (
	"testing"
	"time"

	"accelscore/internal/core"
	"accelscore/internal/platform"
	"accelscore/internal/sim"
)

func irisCfg(trees, depth int, records int64) core.Config {
	return core.Config{DatasetName: "IRIS", Features: 4, Classes: 3, Trees: trees, Depth: depth, Records: records}
}

func higgsCfg(trees, depth int, records int64) core.Config {
	return core.Config{DatasetName: "HIGGS", Features: 28, Classes: 2, Trees: trees, Depth: depth, Records: records}
}

func TestEvaluateCoversAllBackends(t *testing.T) {
	tb := platform.New()
	res := tb.Advisor.Evaluate(higgsCfg(128, 10, 100_000))
	if len(res) != 6 {
		t.Fatalf("expected 6 backends, got %d", len(res))
	}
	for _, r := range res {
		if r.Err != nil {
			t.Fatalf("%s unexpectedly unsupported: %v", r.Name, r.Err)
		}
		if r.Time <= 0 {
			t.Fatalf("%s has non-positive time", r.Name)
		}
	}
}

func TestRAPIDSExcludedOnIris(t *testing.T) {
	tb := platform.New()
	res := tb.Advisor.Evaluate(irisCfg(8, 10, 1000))
	for _, r := range res {
		if r.Name == "GPU_RAPIDS" {
			if r.Err == nil {
				t.Fatal("RAPIDS should reject the 3-class IRIS model")
			}
			return
		}
	}
	t.Fatal("GPU_RAPIDS not evaluated")
}

func TestCPUOptimalAtSmallScale(t *testing.T) {
	tb := platform.New()
	for _, cfg := range []core.Config{
		irisCfg(1, 10, 1), irisCfg(1, 10, 100), irisCfg(128, 10, 1),
		higgsCfg(1, 10, 1), higgsCfg(128, 10, 10),
	} {
		d, err := tb.Advisor.Decide(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if d.Offload {
			t.Fatalf("%v: advisor offloaded at small scale (best=%s)", cfg, d.Best.Name)
		}
		if d.Speedup != 1 {
			t.Fatalf("%v: CPU-optimal speedup = %v, want 1", cfg, d.Speedup)
		}
	}
}

func TestFPGAOptimalAtLargeComplexScale(t *testing.T) {
	tb := platform.New()
	for _, cfg := range []core.Config{irisCfg(128, 10, 1_000_000), higgsCfg(128, 10, 1_000_000)} {
		d, err := tb.Advisor.Decide(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !d.Offload || d.Best.Name != "FPGA" {
			t.Fatalf("%v: best = %s (offload=%v), want FPGA", cfg, d.Best.Name, d.Offload)
		}
	}
}

func TestGPUOptimalForSimpleModelLargeData(t *testing.T) {
	// Fig. 8 / §IV-C1: "for a random forest with a small model (single
	// tree), for larger record counts, the GPU can perform better than the
	// FPGA for IRIS".
	tb := platform.New()
	d, err := tb.Advisor.Decide(irisCfg(1, 10, 1_000_000))
	if err != nil {
		t.Fatal(err)
	}
	if !d.Offload || d.Best.Name != "GPU_HB" {
		t.Fatalf("IRIS 1tx1M: best = %s, want GPU_HB", d.Best.Name)
	}
}

// TestHeadlineRatios pins the paper's §I/§IV-C numbers for 1M records,
// 128 trees, depth 10. Shape tolerance is generous — the substrate is a
// simulator — but who-wins and rough magnitudes must hold.
func TestHeadlineRatios(t *testing.T) {
	tb := platform.New()

	// IRIS: FPGA ~54x over best CPU, GPU-HB ~7.5x.
	dIris, err := tb.Advisor.Decide(irisCfg(128, 10, 1_000_000))
	if err != nil {
		t.Fatal(err)
	}
	if dIris.Best.Name != "FPGA" {
		t.Fatalf("IRIS best = %s, want FPGA", dIris.Best.Name)
	}
	if dIris.Speedup < 35 || dIris.Speedup > 80 {
		t.Fatalf("IRIS FPGA speedup = %.1fx, paper reports 54x", dIris.Speedup)
	}
	hbTl, err := tb.HB.Estimate(irisCfg(128, 10, 0).Stats(), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	hbSpeedup := float64(dIris.BestCPU.Time) / float64(hbTl.Total())
	if hbSpeedup < 5 || hbSpeedup > 12 {
		t.Fatalf("IRIS GPU-HB speedup = %.1fx, paper reports 7.5x", hbSpeedup)
	}

	// HIGGS: FPGA ~69.7x, GPU-RAPIDS ~16.5x, FPGA/GPU ~4.2x.
	dHiggs, err := tb.Advisor.Decide(higgsCfg(128, 10, 1_000_000))
	if err != nil {
		t.Fatal(err)
	}
	if dHiggs.Best.Name != "FPGA" {
		t.Fatalf("HIGGS best = %s, want FPGA", dHiggs.Best.Name)
	}
	if dHiggs.Speedup < 45 || dHiggs.Speedup > 110 {
		t.Fatalf("HIGGS FPGA speedup = %.1fx, paper reports 69.7x", dHiggs.Speedup)
	}
	rpTl, err := tb.RAPIDS.Estimate(higgsCfg(128, 10, 0).Stats(), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	rpSpeedup := float64(dHiggs.BestCPU.Time) / float64(rpTl.Total())
	if rpSpeedup < 10 || rpSpeedup > 28 {
		t.Fatalf("HIGGS GPU-RAPIDS speedup = %.1fx, paper reports 16.5x", rpSpeedup)
	}
	fpgaOverGPU := float64(rpTl.Total()) / float64(dHiggs.Best.Time)
	if fpgaOverGPU < 2.5 || fpgaOverGPU > 6.5 {
		t.Fatalf("HIGGS FPGA/GPU ratio = %.1fx, paper reports 4.2x", fpgaOverGPU)
	}
}

func TestWrongDecisionPenalties(t *testing.T) {
	// §I contribution 2: offloading at 1 record costs >=10x latency; not
	// offloading at 1M records costs ~70x throughput.
	tb := platform.New()
	p, err := tb.Advisor.PenaltyAnalysis(higgsCfg(128, 10, 0), 1, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if p.WrongOffloadLatency < 5 {
		t.Fatalf("wrong-offload latency penalty = %.1fx, paper reports >=10x", p.WrongOffloadLatency)
	}
	if p.WrongStayThroughput < 45 || p.WrongStayThroughput > 110 {
		t.Fatalf("wrong-stay throughput penalty = %.1fx, paper reports ~70x", p.WrongStayThroughput)
	}
}

func TestCrossoverPointsMatchPaperShape(t *testing.T) {
	tb := platform.New()
	cases := []struct {
		cfg      core.Config
		loBound  int64 // crossover must be at or above
		hiBound  int64 // and at or below
		paperVal string
	}{
		// Paper: IRIS 1 tree ~10K, IRIS 128 trees ~1K, HIGGS 1 tree ~5K,
		// HIGGS 128 trees ~500. Same-decade tolerance.
		{irisCfg(1, 10, 0), 2_000, 200_000, "10K"},
		{irisCfg(128, 10, 0), 50, 5_000, "1K"},
		{higgsCfg(1, 10, 0), 1_000, 100_000, "5K"},
		{higgsCfg(128, 10, 0), 30, 2_000, "500"},
	}
	for _, tc := range cases {
		n, err := tb.Advisor.Crossover(tc.cfg, 1, 2_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if n < tc.loBound || n > tc.hiBound {
			t.Errorf("%v: crossover at %d records, want within [%d, %d] (paper: %s)",
				tc.cfg, n, tc.loBound, tc.hiBound, tc.paperVal)
		}
	}
}

func TestCrossoverMonotoneInComplexity(t *testing.T) {
	// More complex models amortize offload sooner: crossover(128 trees) <
	// crossover(1 tree) on the same dataset (paper §IV-C2).
	tb := platform.New()
	c1, err := tb.Advisor.Crossover(irisCfg(1, 10, 0), 1, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	c128, err := tb.Advisor.Crossover(irisCfg(128, 10, 0), 1, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if c128 >= c1 {
		t.Fatalf("crossover should shift left with complexity: 128t=%d, 1t=%d", c128, c1)
	}
}

func TestShmooGrid(t *testing.T) {
	tb := platform.New()
	records := []int64{1, 1000, 1_000_000}
	trees := []int{1, 128}
	grid, err := tb.Advisor.Shmoo("IRIS", 4, 3, 10, records, trees)
	if err != nil {
		t.Fatal(err)
	}
	if len(grid) != 3 || len(grid[0]) != 2 {
		t.Fatalf("grid shape %dx%d", len(grid), len(grid[0]))
	}
	// Top row (1 record): CPU everywhere.
	for _, cell := range grid[0] {
		if cell.Best == "FPGA" || cell.Best == "GPU_HB" || cell.Best == "GPU_RAPIDS" {
			t.Fatalf("1-record cell picked %s", cell.Best)
		}
	}
	// Bottom-right (1M, 128 trees): FPGA.
	if got := grid[2][1].Best; got != "FPGA" {
		t.Fatalf("1Mx128t cell = %s, want FPGA", got)
	}
	if grid[2][1].Speedup < 10 {
		t.Fatalf("1Mx128t speedup = %v", grid[2][1].Speedup)
	}
}

func TestDecompose(t *testing.T) {
	var tl sim.Timeline
	tl.Add("setup", sim.KindOverhead, time.Millisecond)
	tl.Add("xfer", sim.KindTransfer, 2*time.Millisecond)
	tl.Add("compute", sim.KindCompute, 3*time.Millisecond)
	olc := core.Decompose(&tl)
	if olc.O != time.Millisecond || olc.L != 2*time.Millisecond || olc.C != 3*time.Millisecond {
		t.Fatalf("Decompose = %+v", olc)
	}
	if olc.Total() != 6*time.Millisecond {
		t.Fatalf("Total = %v", olc.Total())
	}
}

func TestSortedByTime(t *testing.T) {
	in := []core.BackendTime{
		{Name: "slow", Time: 3 * time.Second},
		{Name: "fast", Time: time.Millisecond},
		{Name: "mid", Time: time.Second},
	}
	out := core.SortedByTime(in)
	if out[0].Name != "fast" || out[2].Name != "slow" {
		t.Fatalf("sorted order wrong: %+v", out)
	}
	if in[0].Name != "slow" {
		t.Fatal("SortedByTime mutated its input")
	}
}

func TestCrossoverNoOffloadRegion(t *testing.T) {
	// With a tiny search ceiling the CPU wins everywhere -> hi+1 sentinel.
	tb := platform.New()
	n, err := tb.Advisor.Crossover(irisCfg(1, 6, 0), 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if n != 11 {
		t.Fatalf("no-offload sentinel = %d, want 11", n)
	}
}

func TestMinGainHysteresis(t *testing.T) {
	tb := platform.New()
	// Find the plain crossover, then verify a 1.5x guard band pushes it
	// right and never flips a comfortable decision.
	cfg := higgsCfg(128, 10, 0)
	plain, err := tb.Advisor.Crossover(cfg, 1, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	guarded := *tb.Advisor
	guarded.MinGain = 1.5
	shifted, err := guarded.Crossover(cfg, 1, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if shifted <= plain {
		t.Fatalf("guard band did not shift crossover: %d vs %d", shifted, plain)
	}
	// At the flagship point (80x margin) the guarded advisor still
	// offloads.
	d, err := guarded.Decide(higgsCfg(128, 10, 1_000_000))
	if err != nil {
		t.Fatal(err)
	}
	if !d.Offload || d.Best.Name != "FPGA" {
		t.Fatalf("guard band broke a clear-cut decision: %+v", d.Best)
	}
	// Exactly at the plain crossover the guarded advisor stays on the CPU.
	c := cfg
	c.Records = plain
	dg, err := guarded.Decide(c)
	if err != nil {
		t.Fatal(err)
	}
	if dg.Offload {
		t.Fatal("guarded advisor offloaded inside the guard band")
	}
}
