// Package core implements the paper's primary contribution: the end-to-end
// offload analysis for DBMS ML scoring. It decomposes each backend's
// simulated timeline into the O/L/C taxonomy of Fig. 6, predicts the overall
// scoring time of every backend for a given (model complexity, record count)
// configuration, picks the optimal backend (the shmoo of Fig. 1 / Fig. 8),
// locates CPU-vs-accelerator crossover points, and quantifies the cost of
// wrong offloading decisions (the 10x latency / 70x throughput penalties of
// §I).
package core

import (
	"fmt"
	"sort"
	"time"

	"accelscore/internal/backend"
	"accelscore/internal/forest"
	"accelscore/internal/sim"
)

// Config identifies one scoring scenario: a model shape and a record count.
type Config struct {
	// DatasetName labels the scenario ("IRIS", "HIGGS").
	DatasetName string
	// Features and Classes describe the dataset schema.
	Features, Classes int
	// Trees and Depth describe the random forest.
	Trees, Depth int
	// Records is the scoring batch size.
	Records int64
}

// Stats converts the configuration to the structural stats the backends
// consume, assuming full-depth average paths (the paper's trained models are
// near-full at these depths).
func (c Config) Stats() forest.Stats {
	return forest.SyntheticStats(c.Trees, c.Depth, c.Features, c.Classes)
}

// String renders a compact scenario label.
func (c Config) String() string {
	return fmt.Sprintf("%s t=%d d=%d n=%d", c.DatasetName, c.Trees, c.Depth, c.Records)
}

// Advisor predicts per-backend scoring times and makes offload decisions.
// CPU holds the non-offloaded engines (the baseline family); Accelerators
// holds the PCIe-attached options.
type Advisor struct {
	CPU          []backend.Backend
	Accelerators []backend.Backend
	// MinGain is the offload hysteresis: the accelerator must beat the best
	// CPU by at least this factor before the advisor offloads. Zero means
	// any predicted win triggers offload. A small guard band (e.g. 1.2)
	// protects against model error around the crossover, where the paper
	// shows a wrong decision is most likely and least costly to avoid.
	MinGain float64
}

// BackendTime is one backend's predicted overall scoring time for a
// configuration. Unsupported configurations carry Err and an infinite Time.
type BackendTime struct {
	Name     string
	Time     time.Duration
	Timeline *sim.Timeline
	Err      error
}

// Evaluate predicts every backend's overall scoring time for cfg, in a
// stable order (CPU family first, then accelerators).
func (a *Advisor) Evaluate(cfg Config) []BackendTime {
	stats := cfg.Stats()
	var out []BackendTime
	for _, b := range append(append([]backend.Backend{}, a.CPU...), a.Accelerators...) {
		tl, err := b.Estimate(stats, cfg.Records)
		bt := BackendTime{Name: b.Name(), Err: err}
		if err == nil {
			bt.Time = tl.Total()
			bt.Timeline = tl
		} else {
			bt.Time = time.Duration(1<<63 - 1)
		}
		out = append(out, bt)
	}
	return out
}

// bestOf returns the fastest supported backend among the given set.
func bestOf(stats forest.Stats, records int64, set []backend.Backend) (BackendTime, bool) {
	best := BackendTime{Time: time.Duration(1<<63 - 1)}
	found := false
	for _, b := range set {
		tl, err := b.Estimate(stats, records)
		if err != nil {
			continue
		}
		if t := tl.Total(); t < best.Time {
			best = BackendTime{Name: b.Name(), Time: t, Timeline: tl}
			found = true
		}
	}
	return best, found
}

// Decision is the advisor's verdict for one configuration.
type Decision struct {
	Config Config
	// Best is the fastest backend overall — the cell content of Fig. 1.
	Best BackendTime
	// BestCPU is the fastest non-offloaded engine (the paper selects "the
	// model with the best performance for the CPU" as the baseline,
	// §IV-C2).
	BestCPU BackendTime
	// BestAccelerator is the fastest offloaded engine, if any supports the
	// configuration.
	BestAccelerator BackendTime
	// Offload reports whether the advisor would offload.
	Offload bool
	// Speedup is BestCPU.Time / Best.Time — the number printed in the
	// Fig. 8 cells. 1.0 when the CPU is optimal.
	Speedup float64
}

// Decide picks the optimal backend for cfg.
func (a *Advisor) Decide(cfg Config) (Decision, error) {
	stats := cfg.Stats()
	cpu, ok := bestOf(stats, cfg.Records, a.CPU)
	if !ok {
		return Decision{}, fmt.Errorf("core: no CPU backend supports %v", cfg)
	}
	d := Decision{Config: cfg, BestCPU: cpu, Best: cpu, Speedup: 1}
	if acc, ok := bestOf(stats, cfg.Records, a.Accelerators); ok {
		d.BestAccelerator = acc
		threshold := float64(cpu.Time)
		if a.MinGain > 1 {
			threshold = float64(cpu.Time) / a.MinGain
		}
		if float64(acc.Time) < threshold {
			d.Best = acc
			d.Offload = true
			d.Speedup = float64(cpu.Time) / float64(acc.Time)
		}
	}
	return d, nil
}

// OLC is the Fig. 6 decomposition of a timeline: host offload overhead O,
// data-transfer overhead L, and compute C.
type OLC struct {
	O, L, C time.Duration
}

// Total returns O+L+C.
func (x OLC) Total() time.Duration { return x.O + x.L + x.C }

// Decompose classifies a timeline's spans into the O/L/C taxonomy.
func Decompose(tl *sim.Timeline) OLC {
	return OLC{
		O: tl.TotalKind(sim.KindOverhead),
		L: tl.TotalKind(sim.KindTransfer),
		C: tl.TotalKind(sim.KindCompute),
	}
}

// ShmooCell is one cell of the Fig. 1 / Fig. 8 grid.
type ShmooCell struct {
	Records int64
	Trees   int
	// Best is the optimal backend's display name.
	Best string
	// Speedup over the best CPU (1.0 when the CPU wins).
	Speedup float64
}

// Shmoo evaluates the optimal backend over a records x trees grid for the
// given dataset shape, reproducing Fig. 1 and Fig. 8.
func (a *Advisor) Shmoo(datasetName string, features, classes, depth int, recordCounts []int64, treeCounts []int) ([][]ShmooCell, error) {
	grid := make([][]ShmooCell, len(recordCounts))
	for i, n := range recordCounts {
		grid[i] = make([]ShmooCell, len(treeCounts))
		for j, trees := range treeCounts {
			cfg := Config{
				DatasetName: datasetName, Features: features, Classes: classes,
				Trees: trees, Depth: depth, Records: n,
			}
			d, err := a.Decide(cfg)
			if err != nil {
				return nil, err
			}
			grid[i][j] = ShmooCell{Records: n, Trees: trees, Best: d.Best.Name, Speedup: d.Speedup}
		}
	}
	return grid, nil
}

// Crossover finds the smallest record count in [lo, hi] at which offloading
// becomes beneficial (the accelerator beats the best CPU), by bisection over
// the monotone decision boundary. Returns hi+1 if the CPU wins everywhere.
func (a *Advisor) Crossover(cfg Config, lo, hi int64) (int64, error) {
	decideAt := func(n int64) (bool, error) {
		c := cfg
		c.Records = n
		d, err := a.Decide(c)
		if err != nil {
			return false, err
		}
		return d.Offload, nil
	}
	offloadHi, err := decideAt(hi)
	if err != nil {
		return 0, err
	}
	if !offloadHi {
		return hi + 1, nil
	}
	if offloadLo, err := decideAt(lo); err != nil {
		return 0, err
	} else if offloadLo {
		return lo, nil
	}
	for lo+1 < hi {
		mid := lo + (hi-lo)/2
		off, err := decideAt(mid)
		if err != nil {
			return 0, err
		}
		if off {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}

// Penalty quantifies the §I wrong-decision costs for a model shape.
type Penalty struct {
	// WrongOffloadLatency is how much slower the best accelerator is than
	// the best CPU at SmallRecords ("a wrong decision to offload ... can
	// increase the latency by 10x").
	WrongOffloadLatency float64
	SmallRecords        int64
	// WrongStayThroughput is how much lower the CPU's throughput is than
	// the best accelerator's at LargeRecords ("a wrong decision to not
	// offload ... can result in 70x lower throughput").
	WrongStayThroughput float64
	LargeRecords        int64
}

// PenaltyAnalysis computes both penalties for the given model shape.
func (a *Advisor) PenaltyAnalysis(cfg Config, smallRecords, largeRecords int64) (Penalty, error) {
	at := func(n int64) (Decision, error) {
		c := cfg
		c.Records = n
		return a.Decide(c)
	}
	small, err := at(smallRecords)
	if err != nil {
		return Penalty{}, err
	}
	large, err := at(largeRecords)
	if err != nil {
		return Penalty{}, err
	}
	p := Penalty{SmallRecords: smallRecords, LargeRecords: largeRecords}
	if small.BestAccelerator.Name != "" {
		p.WrongOffloadLatency = float64(small.BestAccelerator.Time) / float64(small.BestCPU.Time)
	}
	if large.BestAccelerator.Name != "" {
		p.WrongStayThroughput = float64(large.BestCPU.Time) / float64(large.BestAccelerator.Time)
	}
	return p, nil
}

// SortedByTime returns the evaluation results fastest-first, errors last.
func SortedByTime(results []BackendTime) []BackendTime {
	out := append([]BackendTime(nil), results...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out
}
