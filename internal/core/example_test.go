package core_test

import (
	"fmt"

	"accelscore/internal/core"
	"accelscore/internal/platform"
)

// ExampleAdvisor_Decide shows the paper's central decision: should a query
// offload, and to which accelerator?
func ExampleAdvisor_Decide() {
	tb := platform.New()

	small := core.Config{Features: 28, Classes: 2, Trees: 128, Depth: 10, Records: 10}
	large := core.Config{Features: 28, Classes: 2, Trees: 128, Depth: 10, Records: 1_000_000}

	ds, _ := tb.Advisor.Decide(small)
	dl, _ := tb.Advisor.Decide(large)
	fmt.Println("10 records ->", ds.Best.Name, "offload:", ds.Offload)
	fmt.Println("1M records ->", dl.Best.Name, "offload:", dl.Offload)
	// Output:
	// 10 records -> CPU_ONNX_52th offload: false
	// 1M records -> FPGA offload: true
}

// ExampleAdvisor_Crossover locates the record count where offloading starts
// to pay for a HIGGS-shaped 128-tree model.
func ExampleAdvisor_Crossover() {
	tb := platform.New()
	cfg := core.Config{Features: 28, Classes: 2, Trees: 128, Depth: 10}
	n, _ := tb.Advisor.Crossover(cfg, 1, 2_000_000)
	fmt.Println(n)
	// Output:
	// 487
}
