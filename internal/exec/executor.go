// Package exec is the concurrent scoring executor: the multi-query hot path
// in front of the analytics pipeline. It replaces "one global mutex around
// ExecQuery" serving with a bounded admission queue (backpressure instead of
// unbounded pileup), a worker pool, per-device concurrency limits that reuse
// the scheduling model's device taxonomy (all CPU engines share the host
// CPU; the GPU and the FPGA each serialize), and request coalescing:
// concurrent sp_score_model queries against the same (model, backend) that
// arrive within a short window are merged into ONE pipeline run — one
// Python-invocation charge, one model pre-processing, one backend call over
// the concatenated rows — and the predictions are fanned back out with
// per-query timelines showing the amortized overhead.
//
// This is the serving-side version of the paper's core observation: fixed
// per-query overheads (O and L in the Fig. 6 taxonomy, process invocation
// and model pre-processing in Fig. 11) dominate small-batch scoring, so the
// way to make a stream of small queries fast is to pay those overheads once
// per batch, not once per query.
package exec

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"accelscore/internal/db"
	"accelscore/internal/pipeline"
	"accelscore/internal/sched"
	"accelscore/internal/xrand"
)

// ErrRejected is returned when the admission queue is full: the caller
// should shed load (HTTP 503) rather than queue unboundedly.
var ErrRejected = errors.New("exec: admission queue full, query rejected")

// ErrClosed is returned by Submit after Close has stopped admission.
var ErrClosed = errors.New("exec: executor is closed")

// Metric names the executor publishes into the pipeline's observer.
const (
	// MetricQueueDepth gauges queries admitted but not yet executing
	// (waiting for a worker, a device, or a coalescing window).
	MetricQueueDepth = "accelscore_exec_queue_depth"
	// MetricInflight gauges queries currently executing in the pipeline.
	MetricInflight = "accelscore_exec_inflight_queries"
	// MetricRejectedTotal counts queries shed at admission.
	MetricRejectedTotal = "accelscore_exec_rejected_total"
	// MetricBatchSize is the histogram of scoring-batch sizes actually
	// executed (1 = no coalescing happened for that run).
	MetricBatchSize = "accelscore_exec_coalesced_batch_size"
	// MetricRetriesTotal counts re-attempts after retryable faults
	// {backend}.
	MetricRetriesTotal = "accelscore_exec_retries_total"
	// MetricFallbacksTotal counts graceful degradations to the CPU engine
	// {from, to, reason="breaker_open"|"deadline"|"fault"}.
	MetricFallbacksTotal = "accelscore_exec_fallbacks_total"
	// MetricBreakerState gauges each device's circuit state
	// {device}: 0 closed, 1 half-open, 2 open.
	MetricBreakerState = "accelscore_exec_breaker_state"
	// MetricBreakerTransitionsTotal counts breaker state changes
	// {device, to="closed"|"half_open"|"open"}.
	MetricBreakerTransitionsTotal = "accelscore_exec_breaker_transitions_total"
	// MetricDeadlineExceededTotal counts queries that terminated because
	// their deadline expired.
	MetricDeadlineExceededTotal = "accelscore_exec_deadline_exceeded_total"
	// MetricCanceledTotal counts queries that terminated because the client
	// canceled (disconnected).
	MetricCanceledTotal = "accelscore_exec_canceled_total"
	// MetricExpiredShedTotal counts queries shed because their deadline had
	// already expired before they reached a worker.
	MetricExpiredShedTotal = "accelscore_exec_expired_shed_total"
	// MetricFaultsInjectedTotal counts injector firings
	// {backend, boundary, kind} (wired by WireFaultMetrics).
	MetricFaultsInjectedTotal = "accelscore_faults_injected_total"
)

// batchSizeBuckets resolves power-of-two batch sizes up to typical MaxBatch.
var batchSizeBuckets = []float64{1, 2, 4, 8, 16, 32}

// Config tunes the executor. The zero value gets sensible defaults from New.
type Config struct {
	// Workers bounds concurrently executing queries (default
	// max(1, GOMAXPROCS)).
	Workers int
	// QueueDepth bounds queries in the system — waiting plus executing.
	// Beyond it, ExecQuery fails fast with ErrRejected (default 64).
	QueueDepth int
	// CoalesceWindow is how long the first query of a (model, backend) key
	// waits for companions before scoring. 0 disables coalescing.
	CoalesceWindow time.Duration
	// MaxBatch seals a coalescing batch early when this many queries have
	// joined, so a full batch never waits out the window (default 16).
	MaxBatch int
	// DeviceLimits caps concurrent scoring per hardware device (defaults:
	// cpu=Workers, gpu=1, fpga=1 — CPU engines share host cores, the
	// accelerators serialize).
	DeviceLimits map[sched.Device]int
	// MaxRetries bounds extra attempts after a retryable fault (default 2;
	// negative disables retry entirely).
	MaxRetries int
	// RetryBackoff is the base delay before the first retry; it doubles per
	// attempt with ±50% jitter and is capped at 250ms (default 2ms).
	RetryBackoff time.Duration
	// AttemptTimeout bounds a single scoring attempt so a hung device is
	// detected and retried or degraded while the query deadline still has
	// budget (0 = attempts run under the query deadline only).
	AttemptTimeout time.Duration
	// BreakerThreshold is how many consecutive failures open a device's
	// circuit breaker (default 3; negative disables the breaker).
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit waits before admitting a
	// single half-open probe (default 250ms).
	BreakerCooldown time.Duration
	// FallbackBackend is the engine degraded queries run on when their
	// requested backend faults, hangs, or sits behind an open breaker
	// (default "CPU_SKLearn"; "none" disables graceful degradation).
	FallbackBackend string
	// DefaultDeadline bounds queries that carry neither an @timeout
	// parameter nor a caller deadline (0 = unbounded).
	DefaultDeadline time.Duration
	// Seed seeds the retry-jitter RNG (default 1; deterministic).
	Seed uint64
	// PaceScale, when positive, paces successful scoring batches to their
	// simulated timeline: after the real computation finishes, the device
	// token is held until PaceScale x the batch's simulated total has
	// elapsed since the attempt started. This makes a shard's wall-clock
	// behave like the calibrated device it models — the scale-out bench
	// uses it so measured multi-shard scaling reflects the simulated
	// device times plus the REAL serving-tier overheads (HTTP, scatter,
	// merge), instead of N processes fighting over the host's cores.
	// 0 disables pacing (the default; production serving is unpaced).
	PaceScale float64
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
		if c.Workers < 1 {
			c.Workers = 1
		}
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 16
	}
	limits := map[sched.Device]int{
		sched.DeviceCPU:  c.Workers,
		sched.DeviceGPU:  1,
		sched.DeviceFPGA: 1,
	}
	for d, n := range c.DeviceLimits {
		if n > 0 {
			limits[d] = n
		}
	}
	c.DeviceLimits = limits
	switch {
	case c.MaxRetries == 0:
		c.MaxRetries = 2
	case c.MaxRetries < 0:
		c.MaxRetries = 0
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 2 * time.Millisecond
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 250 * time.Millisecond
	}
	if c.FallbackBackend == "" {
		c.FallbackBackend = "CPU_SKLearn"
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Executor runs queries concurrently against one Pipeline.
type Executor struct {
	pipe *pipeline.Pipeline
	cfg  Config

	admission chan struct{}                  // in-system token, cap QueueDepth
	workers   chan struct{}                  // executing token, cap Workers
	devices   map[sched.Device]chan struct{} // per-device scoring tokens

	mu           sync.Mutex
	pending      map[string]*pendingBatch // open coalescing batches by key
	inflightKeys map[string]int           // keys with a batch mid-execution (chains group-commit seals)

	admitted atomic.Int64 // queries holding an admission token
	running  atomic.Int64 // queries currently executing

	// rootCtx parents every query context; Close cancels it to abort
	// in-flight work that outlives the drain deadline.
	rootCtx    context.Context
	rootCancel context.CancelFunc

	closeMu sync.RWMutex   // guards closed against concurrent wg.Add
	closed  bool           // admission stopped by Close
	wg      sync.WaitGroup // one count per query inside Submit

	breakers map[sched.Device]*breaker

	rngMu sync.Mutex
	rng   *xrand.Rand // retry jitter

	estMu sync.Mutex
	est   map[sched.Device]time.Duration // EWMA of successful batch wall time
}

// New builds an executor over the pipeline, publishing telemetry into the
// pipeline's observer.
func New(pipe *pipeline.Pipeline, cfg Config) *Executor {
	cfg = cfg.withDefaults()
	rootCtx, rootCancel := context.WithCancel(context.Background())
	e := &Executor{
		pipe:         pipe,
		cfg:          cfg,
		admission:    make(chan struct{}, cfg.QueueDepth),
		workers:      make(chan struct{}, cfg.Workers),
		devices:      make(map[sched.Device]chan struct{}, len(cfg.DeviceLimits)),
		pending:      make(map[string]*pendingBatch),
		inflightKeys: make(map[string]int),
		rootCtx:      rootCtx,
		rootCancel:   rootCancel,
		breakers:     make(map[sched.Device]*breaker),
		rng:          xrand.New(cfg.Seed),
		est:          make(map[sched.Device]time.Duration),
	}
	for d, n := range cfg.DeviceLimits {
		e.devices[d] = make(chan struct{}, n)
	}
	if cfg.BreakerThreshold > 0 {
		for d := range cfg.DeviceLimits {
			e.breakers[d] = newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, e.breakerObserver(d))
			e.publishBreakerState(d, breakerClosed)
		}
	}
	return e
}

// Config returns the resolved configuration.
func (e *Executor) Config() Config { return e.cfg }

// ExecQuery parses and runs one T-SQL statement through the concurrent hot
// path with no caller deadline. See Submit.
func (e *Executor) ExecQuery(sql string) (*pipeline.QueryResult, error) {
	return e.Submit(context.Background(), sql)
}

// Submit parses and runs one T-SQL statement through the concurrent hot
// path under the caller's context. Scoring queries may be coalesced with
// concurrent queries for the same (model, backend); everything else takes a
// worker slot and executes directly. A ScoreRequest's @timeout (or the
// configured DefaultDeadline) becomes a context deadline covering queueing,
// coalescing, retries and fallback. Returns ErrRejected when the admission
// queue is full, ErrClosed after Close, and the context's error when the
// caller cancels or the deadline expires.
func (e *Executor) Submit(ctx context.Context, sql string) (res *pipeline.QueryResult, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	defer func() { e.noteTerminal(err) }()
	release, err := e.admit(ctx)
	if err != nil {
		return nil, err
	}
	defer release()

	st, err := db.Parse(sql)
	if err != nil {
		e.pipe.NoteStatement("parse_error")
		return nil, err
	}
	// Scoring statements — EXEC sp_score_model and the fused
	// SELECT ... FROM PREDICT(...) — share the coalescing/runBatch path;
	// their coalesce key includes the fused-query shape.
	var req *pipeline.ScoreRequest
	switch s := st.(type) {
	case *db.ExecStmt:
		if strings.EqualFold(s.Proc, pipeline.ScoreProcName) {
			e.pipe.NoteStatement("exec")
			var perr error
			if req, perr = pipeline.ParseScoreParams(s); perr != nil {
				// Re-run through ScoreProc so parameter errors carry the
				// same metric accounting as the serialized path.
				return e.pipe.ScoreProc(s)
			}
		}
	case *db.PredictStmt:
		e.pipe.NoteStatement("predict")
		var perr error
		if req, perr = pipeline.ParsePredictStmt(s); perr != nil {
			return e.pipe.ScorePredict(s)
		}
	}
	if req != nil {
		qctx, cancel := e.queryContext(ctx, req.Timeout)
		defer cancel()
		if e.cfg.CoalesceWindow > 0 && e.cfg.MaxBatch > 1 {
			return e.coalesce(qctx, req)
		}
		results, err := e.runBatch(qctx, []*pipeline.ScoreRequest{req})
		if err != nil {
			return nil, err
		}
		return results[0], nil
	}

	// Non-scoring statements execute in the DBMS under a worker slot; the
	// db layer's own fine-grained locks make them safe alongside scoring.
	qctx, cancel := e.queryContext(ctx, 0)
	defer cancel()
	select {
	case e.workers <- struct{}{}:
	case <-qctx.Done():
		return nil, qctx.Err()
	}
	e.noteRunning(1)
	defer func() {
		e.noteRunning(-1)
		<-e.workers
	}()
	return e.pipe.ExecStatementCtx(qctx, st)
}

// admit performs the shared Submit prologue: refuse after Close, take an
// admission token (shed with ErrRejected when the queue is full), publish
// the gauges, and shed work whose deadline already expired. The returned
// release must be deferred by the caller; it returns the token and settles
// the wait-group count.
func (e *Executor) admit(ctx context.Context) (func(), error) {
	e.closeMu.RLock()
	if e.closed {
		e.closeMu.RUnlock()
		return nil, ErrClosed
	}
	e.wg.Add(1)
	e.closeMu.RUnlock()

	select {
	case e.admission <- struct{}{}:
	default:
		if reg := e.pipe.Obs.Metrics(); reg != nil {
			reg.Counter(MetricRejectedTotal, "Queries shed at admission (queue full).").Inc()
		}
		e.wg.Done()
		return nil, ErrRejected
	}
	e.admitted.Add(1)
	e.publishGauges()
	release := func() {
		e.admitted.Add(-1)
		e.publishGauges()
		<-e.admission
		e.wg.Done()
	}

	// Deadline-aware admission: work whose budget is already gone is shed
	// before it costs a worker or a device token.
	if cerr := ctx.Err(); cerr != nil {
		e.noteExpiredShed(1)
		release()
		return nil, cerr
	}
	return release, nil
}

// SubmitScore runs one pre-validated scoring request through the concurrent
// hot path: the same admission, coalescing, device-token, retry, breaker and
// fallback machinery as Submit, minus the SQL parse. The scale-out shard
// endpoint uses it to serve router sub-queries, whose partition rides in
// req.Partition (and in the coalescing key, so distinct partitions never
// merge into one batch).
func (e *Executor) SubmitScore(ctx context.Context, req *pipeline.ScoreRequest) (res *pipeline.QueryResult, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	defer func() { e.noteTerminal(err) }()
	release, err := e.admit(ctx)
	if err != nil {
		return nil, err
	}
	defer release()

	qctx, cancel := e.queryContext(ctx, req.Timeout)
	defer cancel()
	if e.cfg.CoalesceWindow > 0 && e.cfg.MaxBatch > 1 {
		return e.coalesce(qctx, req)
	}
	results, err := e.runBatch(qctx, []*pipeline.ScoreRequest{req})
	if err != nil {
		return nil, err
	}
	return results[0], nil
}

// queryContext layers the query's own @timeout (or the configured default
// deadline) on top of the caller's context, and ties the result to the
// executor root so Close can abort stragglers.
func (e *Executor) queryContext(ctx context.Context, timeout time.Duration) (context.Context, context.CancelFunc) {
	var qctx context.Context
	var cancel context.CancelFunc
	switch {
	case timeout > 0:
		qctx, cancel = context.WithTimeout(ctx, timeout)
	case e.cfg.DefaultDeadline > 0:
		if _, has := ctx.Deadline(); !has {
			qctx, cancel = context.WithTimeout(ctx, e.cfg.DefaultDeadline)
		} else {
			qctx, cancel = context.WithCancel(ctx)
		}
	default:
		qctx, cancel = context.WithCancel(ctx)
	}
	stop := context.AfterFunc(e.rootCtx, cancel)
	return qctx, func() { stop(); cancel() }
}

// noteTerminal counts queries that ended in cancellation or deadline expiry
// so the two failure modes are distinguishable on /metrics.
func (e *Executor) noteTerminal(err error) {
	if err == nil {
		return
	}
	reg := e.pipe.Obs.Metrics()
	if reg == nil {
		return
	}
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		reg.Counter(MetricDeadlineExceededTotal, "Queries terminated by deadline expiry.").Inc()
	case errors.Is(err, context.Canceled):
		reg.Counter(MetricCanceledTotal, "Queries terminated by client cancellation.").Inc()
	}
}

// noteExpiredShed counts queries dropped because their deadline had already
// expired before any work was done on their behalf.
func (e *Executor) noteExpiredShed(n int) {
	if reg := e.pipe.Obs.Metrics(); reg != nil {
		reg.Counter(MetricExpiredShedTotal, "Queries shed with an already-expired deadline.").
			Add(float64(n))
	}
}

// runBatch executes one scoring batch under a worker slot, recording the
// executed batch size; device tokens, retry, breaker accounting and
// fallback happen inside runResilient.
func (e *Executor) runBatch(ctx context.Context, reqs []*pipeline.ScoreRequest) ([]*pipeline.QueryResult, error) {
	select {
	case e.workers <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	defer func() { <-e.workers }()

	e.noteRunning(int64(len(reqs)))
	defer e.noteRunning(int64(-len(reqs)))
	if reg := e.pipe.Obs.Metrics(); reg != nil {
		reg.Histogram(MetricBatchSize, "Executed scoring-batch sizes (1 = uncoalesced).",
			batchSizeBuckets).Observe(float64(len(reqs)))
	}
	return e.runResilient(ctx, reqs)
}

// Close stops admission (Submit returns ErrClosed), flushes open coalescing
// windows so queued leaders run immediately, and waits for in-flight
// queries to drain. If ctx expires first the executor root is canceled —
// aborting remaining work at its next boundary — and Close still waits for
// the (now unblocked) stragglers before returning the context error.
// Close is idempotent.
func (e *Executor) Close(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	e.closeMu.Lock()
	alreadyClosed := e.closed
	e.closed = true
	e.closeMu.Unlock()

	if !alreadyClosed {
		e.mu.Lock()
		for _, b := range e.pending {
			e.sealLocked(b)
		}
		e.mu.Unlock()
	}

	done := make(chan struct{})
	go func() {
		e.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		e.rootCancel()
		return nil
	case <-ctx.Done():
		e.rootCancel()
		<-done
		return ctx.Err()
	}
}

// noteRunning moves n queries between the queued and executing states.
func (e *Executor) noteRunning(n int64) {
	e.running.Add(n)
	e.publishGauges()
}

// publishGauges exports the queue-depth and in-flight gauges.
func (e *Executor) publishGauges() {
	reg := e.pipe.Obs.Metrics()
	if reg == nil {
		return
	}
	admitted, running := e.admitted.Load(), e.running.Load()
	queued := admitted - running
	if queued < 0 {
		queued = 0
	}
	reg.Gauge(MetricQueueDepth, "Queries admitted but not yet executing.").Set(float64(queued))
	reg.Gauge(MetricInflight, "Queries currently executing.").Set(float64(running))
}

// Queued returns queries admitted but not yet executing (for tests and
// status pages; the gauges carry the same values).
func (e *Executor) Queued() int64 {
	q := e.admitted.Load() - e.running.Load()
	if q < 0 {
		q = 0
	}
	return q
}

// Running returns queries currently executing.
func (e *Executor) Running() int64 { return e.running.Load() }
