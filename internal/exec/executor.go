// Package exec is the concurrent scoring executor: the multi-query hot path
// in front of the analytics pipeline. It replaces "one global mutex around
// ExecQuery" serving with a bounded admission queue (backpressure instead of
// unbounded pileup), a worker pool, per-device concurrency limits that reuse
// the scheduling model's device taxonomy (all CPU engines share the host
// CPU; the GPU and the FPGA each serialize), and request coalescing:
// concurrent sp_score_model queries against the same (model, backend) that
// arrive within a short window are merged into ONE pipeline run — one
// Python-invocation charge, one model pre-processing, one backend call over
// the concatenated rows — and the predictions are fanned back out with
// per-query timelines showing the amortized overhead.
//
// This is the serving-side version of the paper's core observation: fixed
// per-query overheads (O and L in the Fig. 6 taxonomy, process invocation
// and model pre-processing in Fig. 11) dominate small-batch scoring, so the
// way to make a stream of small queries fast is to pay those overheads once
// per batch, not once per query.
package exec

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"accelscore/internal/db"
	"accelscore/internal/pipeline"
	"accelscore/internal/sched"
)

// ErrRejected is returned when the admission queue is full: the caller
// should shed load (HTTP 503) rather than queue unboundedly.
var ErrRejected = errors.New("exec: admission queue full, query rejected")

// Metric names the executor publishes into the pipeline's observer.
const (
	// MetricQueueDepth gauges queries admitted but not yet executing
	// (waiting for a worker, a device, or a coalescing window).
	MetricQueueDepth = "accelscore_exec_queue_depth"
	// MetricInflight gauges queries currently executing in the pipeline.
	MetricInflight = "accelscore_exec_inflight_queries"
	// MetricRejectedTotal counts queries shed at admission.
	MetricRejectedTotal = "accelscore_exec_rejected_total"
	// MetricBatchSize is the histogram of scoring-batch sizes actually
	// executed (1 = no coalescing happened for that run).
	MetricBatchSize = "accelscore_exec_coalesced_batch_size"
)

// batchSizeBuckets resolves power-of-two batch sizes up to typical MaxBatch.
var batchSizeBuckets = []float64{1, 2, 4, 8, 16, 32}

// Config tunes the executor. The zero value gets sensible defaults from New.
type Config struct {
	// Workers bounds concurrently executing queries (default
	// max(1, GOMAXPROCS)).
	Workers int
	// QueueDepth bounds queries in the system — waiting plus executing.
	// Beyond it, ExecQuery fails fast with ErrRejected (default 64).
	QueueDepth int
	// CoalesceWindow is how long the first query of a (model, backend) key
	// waits for companions before scoring. 0 disables coalescing.
	CoalesceWindow time.Duration
	// MaxBatch seals a coalescing batch early when this many queries have
	// joined, so a full batch never waits out the window (default 16).
	MaxBatch int
	// DeviceLimits caps concurrent scoring per hardware device (defaults:
	// cpu=Workers, gpu=1, fpga=1 — CPU engines share host cores, the
	// accelerators serialize).
	DeviceLimits map[sched.Device]int
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
		if c.Workers < 1 {
			c.Workers = 1
		}
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 16
	}
	limits := map[sched.Device]int{
		sched.DeviceCPU:  c.Workers,
		sched.DeviceGPU:  1,
		sched.DeviceFPGA: 1,
	}
	for d, n := range c.DeviceLimits {
		if n > 0 {
			limits[d] = n
		}
	}
	c.DeviceLimits = limits
	return c
}

// Executor runs queries concurrently against one Pipeline.
type Executor struct {
	pipe *pipeline.Pipeline
	cfg  Config

	admission chan struct{}                  // in-system token, cap QueueDepth
	workers   chan struct{}                  // executing token, cap Workers
	devices   map[sched.Device]chan struct{} // per-device scoring tokens

	mu           sync.Mutex
	pending      map[string]*pendingBatch // open coalescing batches by key
	inflightKeys map[string]int           // keys with a batch mid-execution (chains group-commit seals)

	admitted atomic.Int64 // queries holding an admission token
	running  atomic.Int64 // queries currently executing
}

// New builds an executor over the pipeline, publishing telemetry into the
// pipeline's observer.
func New(pipe *pipeline.Pipeline, cfg Config) *Executor {
	cfg = cfg.withDefaults()
	e := &Executor{
		pipe:         pipe,
		cfg:          cfg,
		admission:    make(chan struct{}, cfg.QueueDepth),
		workers:      make(chan struct{}, cfg.Workers),
		devices:      make(map[sched.Device]chan struct{}, len(cfg.DeviceLimits)),
		pending:      make(map[string]*pendingBatch),
		inflightKeys: make(map[string]int),
	}
	for d, n := range cfg.DeviceLimits {
		e.devices[d] = make(chan struct{}, n)
	}
	return e
}

// Config returns the resolved configuration.
func (e *Executor) Config() Config { return e.cfg }

// ExecQuery parses and runs one T-SQL statement through the concurrent hot
// path. Scoring queries may be coalesced with concurrent queries for the
// same (model, backend); everything else takes a worker slot and executes
// directly. Returns ErrRejected when the admission queue is full.
func (e *Executor) ExecQuery(sql string) (*pipeline.QueryResult, error) {
	select {
	case e.admission <- struct{}{}:
	default:
		if reg := e.pipe.Obs.Metrics(); reg != nil {
			reg.Counter(MetricRejectedTotal, "Queries shed at admission (queue full).").Inc()
		}
		return nil, ErrRejected
	}
	e.admitted.Add(1)
	e.publishGauges()
	defer func() {
		e.admitted.Add(-1)
		e.publishGauges()
		<-e.admission
	}()

	st, err := db.Parse(sql)
	if err != nil {
		e.pipe.NoteStatement("parse_error")
		return nil, err
	}
	if ex, ok := st.(*db.ExecStmt); ok && strings.EqualFold(ex.Proc, pipeline.ScoreProcName) {
		e.pipe.NoteStatement("exec")
		req, perr := pipeline.ParseScoreParams(ex)
		if perr != nil {
			// Re-run through ScoreProc so parameter errors carry the same
			// metric accounting as the serialized path.
			return e.pipe.ScoreProc(ex)
		}
		if e.cfg.CoalesceWindow > 0 && e.cfg.MaxBatch > 1 {
			return e.coalesce(req)
		}
		results, err := e.runBatch([]*pipeline.ScoreRequest{req})
		if err != nil {
			return nil, err
		}
		return results[0], nil
	}

	// Non-scoring statements execute in the DBMS under a worker slot; the
	// db layer's own fine-grained locks make them safe alongside scoring.
	e.workers <- struct{}{}
	e.noteRunning(1)
	defer func() {
		e.noteRunning(-1)
		<-e.workers
	}()
	return e.pipe.ExecStatement(st)
}

// runBatch executes one scoring batch under a worker slot and the target
// device's concurrency token, and records the executed batch size.
func (e *Executor) runBatch(reqs []*pipeline.ScoreRequest) ([]*pipeline.QueryResult, error) {
	e.workers <- struct{}{}
	defer func() { <-e.workers }()
	// The device limit keys on the requested backend name; "auto" and ""
	// resolve in-pipeline and are treated as CPU-resident for admission.
	dev := sched.DeviceOf(reqs[0].Backend)
	sem, ok := e.devices[dev]
	if !ok {
		return nil, fmt.Errorf("exec: no device limit for %q", dev)
	}
	sem <- struct{}{}
	defer func() { <-sem }()

	e.noteRunning(int64(len(reqs)))
	defer e.noteRunning(int64(-len(reqs)))
	if reg := e.pipe.Obs.Metrics(); reg != nil {
		reg.Histogram(MetricBatchSize, "Executed scoring-batch sizes (1 = uncoalesced).",
			batchSizeBuckets).Observe(float64(len(reqs)))
	}
	return e.pipe.ExecScoreBatch(reqs)
}

// noteRunning moves n queries between the queued and executing states.
func (e *Executor) noteRunning(n int64) {
	e.running.Add(n)
	e.publishGauges()
}

// publishGauges exports the queue-depth and in-flight gauges.
func (e *Executor) publishGauges() {
	reg := e.pipe.Obs.Metrics()
	if reg == nil {
		return
	}
	admitted, running := e.admitted.Load(), e.running.Load()
	queued := admitted - running
	if queued < 0 {
		queued = 0
	}
	reg.Gauge(MetricQueueDepth, "Queries admitted but not yet executing.").Set(float64(queued))
	reg.Gauge(MetricInflight, "Queries currently executing.").Set(float64(running))
}

// Queued returns queries admitted but not yet executing (for tests and
// status pages; the gauges carry the same values).
func (e *Executor) Queued() int64 {
	q := e.admitted.Load() - e.running.Load()
	if q < 0 {
		q = 0
	}
	return q
}

// Running returns queries currently executing.
func (e *Executor) Running() int64 { return e.running.Load() }
