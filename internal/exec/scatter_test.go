package exec

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"accelscore/internal/pipeline"
)

func parts(n int) []pipeline.Partition {
	out := make([]pipeline.Partition, n)
	for i := range out {
		out[i] = pipeline.Partition{Index: i, Count: n}
	}
	return out
}

func TestScatterHappyPath(t *testing.T) {
	d, err := NewDispatcher(DispatcherConfig{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	results := d.Scatter(context.Background(), parts(4),
		func(ctx context.Context, shard int, part pipeline.Partition) (any, error) {
			return fmt.Sprintf("s%d:p%d", shard, part.Index), nil
		})
	if len(results) != 4 {
		t.Fatalf("%d results", len(results))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("partition %d: %v", i, r.Err)
		}
		if r.Shard != i || r.Reroutes != 0 {
			t.Fatalf("partition %d ran on shard %d with %d reroutes", i, r.Shard, r.Reroutes)
		}
		if want := fmt.Sprintf("s%d:p%d", i, i); r.Value != want {
			t.Fatalf("partition %d value %v, want %s", i, r.Value, want)
		}
	}
	if pe := Partial(results); pe != nil {
		t.Fatalf("unexpected partial: %v", pe)
	}
}

// TestScatterReroutesDeadShard kills one shard and checks its partition
// lands, correct and exactly once, on a healthy replica.
func TestScatterReroutesDeadShard(t *testing.T) {
	d, err := NewDispatcher(DispatcherConfig{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	var calls sync.Map
	results := d.Scatter(context.Background(), parts(3),
		func(ctx context.Context, shard int, part pipeline.Partition) (any, error) {
			calls.Store(fmt.Sprintf("%d->%d", part.Index, shard), true)
			if shard == 1 {
				return nil, errors.New("connection refused")
			}
			return shard, nil
		})
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("partition %d failed despite healthy replicas: %v", r.Part.Index, r.Err)
		}
	}
	r1 := results[1]
	if r1.Shard == 1 {
		t.Fatal("partition 1 reported success on the dead shard")
	}
	if r1.Reroutes != 1 {
		t.Fatalf("partition 1 took %d reroutes, want 1", r1.Reroutes)
	}
}

// TestScatterOpensBreakerAndSkipsShard drives a shard past its failure
// threshold and checks later scatters skip it without calling it.
func TestScatterOpensBreakerAndSkipsShard(t *testing.T) {
	transitions := make(map[int][]int)
	var mu sync.Mutex
	d, err := NewDispatcher(DispatcherConfig{
		Shards: 2, BreakerThreshold: 2, BreakerCooldown: time.Hour,
		OnBreakerChange: func(shard, state int) {
			mu.Lock()
			transitions[shard] = append(transitions[shard], state)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	deadCalls := 0
	do := func(ctx context.Context, shard int, part pipeline.Partition) (any, error) {
		if shard == 0 {
			deadCalls++
			return nil, errors.New("boom")
		}
		return shard, nil
	}
	// Two scatters of partition 0 (preferred shard 0) open the circuit.
	for i := 0; i < 2; i++ {
		rs := d.Scatter(context.Background(), parts(2)[:1], do)
		if rs[0].Err != nil {
			t.Fatalf("scatter %d: %v", i, rs[0].Err)
		}
	}
	if d.ShardState(0) != 2 {
		t.Fatalf("shard 0 circuit = %s, want open", d.ShardStateName(0))
	}
	callsBefore := deadCalls
	rs := d.Scatter(context.Background(), parts(2)[:1], do)
	if rs[0].Err != nil || rs[0].Shard != 1 {
		t.Fatalf("open-breaker scatter: shard=%d err=%v", rs[0].Shard, rs[0].Err)
	}
	if deadCalls != callsBefore {
		t.Fatal("open breaker did not skip the dead shard")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(transitions[0]) == 0 || transitions[0][len(transitions[0])-1] != 2 {
		t.Fatalf("shard 0 transitions = %v, want trailing open", transitions[0])
	}
}

// TestScatterPartialWhenAllRoutesFail checks the typed partial outcome: no
// fabricated values, every missing partition listed with its error.
func TestScatterPartialWhenAllRoutesFail(t *testing.T) {
	d, err := NewDispatcher(DispatcherConfig{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	results := d.Scatter(context.Background(), parts(2),
		func(ctx context.Context, shard int, part pipeline.Partition) (any, error) {
			if part.Index == 1 {
				return nil, errors.New("disk on fire")
			}
			return "ok", nil
		})
	if results[0].Err != nil || results[0].Value != "ok" {
		t.Fatalf("partition 0: %+v", results[0])
	}
	if results[1].Err == nil || results[1].Value != nil {
		t.Fatalf("partition 1 fabricated a value: %+v", results[1])
	}
	pe := Partial(results)
	if pe == nil {
		t.Fatal("no PartialError for a failed partition")
	}
	if len(pe.Missing) != 1 || pe.Missing[0] != 1 {
		t.Fatalf("missing = %v", pe.Missing)
	}
	if pe.Errs[1] == nil {
		t.Fatal("missing partition has no error")
	}
	var target *PartialError
	if !errors.As(error(pe), &target) {
		t.Fatal("PartialError not error-As-able")
	}
}

// TestScatterNoRerouteStopsImmediately checks query-level errors neither
// reroute nor charge the shard's breaker.
func TestScatterNoRerouteStopsImmediately(t *testing.T) {
	d, err := NewDispatcher(DispatcherConfig{Shards: 3, BreakerThreshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	bad := errors.New("unknown model")
	results := d.Scatter(context.Background(), parts(3)[:1],
		func(ctx context.Context, shard int, part pipeline.Partition) (any, error) {
			calls++
			return nil, NoReroute(bad)
		})
	if calls != 1 {
		t.Fatalf("query-level error was retried %d times", calls)
	}
	if !errors.Is(results[0].Err, bad) {
		t.Fatalf("err = %v", results[0].Err)
	}
	if d.ShardState(0) != 0 {
		t.Fatalf("query-level error charged shard 0's breaker (state %s)", d.ShardStateName(0))
	}
}

// TestScatterAllBreakersOpen checks the explicit ErrShardBreakerOpen
// outcome when no replica is admissible.
func TestScatterAllBreakersOpen(t *testing.T) {
	d, err := NewDispatcher(DispatcherConfig{Shards: 2, BreakerThreshold: 1, BreakerCooldown: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	fail := func(ctx context.Context, shard int, part pipeline.Partition) (any, error) {
		return nil, errors.New("down")
	}
	d.Scatter(context.Background(), parts(2), fail) // opens both circuits
	results := d.Scatter(context.Background(), parts(2)[:1], fail)
	if !errors.Is(results[0].Err, ErrShardBreakerOpen) {
		t.Fatalf("err = %v, want ErrShardBreakerOpen", results[0].Err)
	}
}
