// Tail-latency hedging for the scatter path. When a partition's primary
// attempt outlives an adaptive trigger (the router derives it from the
// shard's recent latency distribution), the dispatcher launches the same
// sub-query on a healthy replica and takes the first finisher — but only
// within a strict hedge budget, so hedging can never amplify an overload
// into a request storm. Correctness bar: when both attempts complete, their
// results MUST be bit-identical; a divergent pair fails the whole query
// loudly (NoReroute) instead of silently picking one answer.
package exec

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"accelscore/internal/pipeline"
)

// Hedge outcome labels, shared with the router's
// accelscore_router_hedges_total{outcome} metric.
const (
	// HedgeWin: the hedge attempt's result was used.
	HedgeWin = "win"
	// HedgeLoss: a hedge launched but the primary's result was used.
	HedgeLoss = "loss"
	// HedgeMismatch: primary and hedge both completed with divergent
	// results — the query fails loudly.
	HedgeMismatch = "mismatch"
	// HedgeDenied: the trigger fired but no hedge launched (budget
	// exhausted or no healthy replica).
	HedgeDenied = "denied"
)

// HedgeBudget rations hedge launches to a fraction of dispatched
// partitions: every routed partition earns `fraction` tokens (capped at
// `burst`), and each hedge spends one. Under a uniform load this converges
// to at most `fraction` hedges per sub-query, with `burst` allowing short
// clumps when a straggler stalls several partitions at once.
type HedgeBudget struct {
	mu       sync.Mutex
	fraction float64
	burst    float64
	tokens   float64
}

// NewHedgeBudget builds a budget allowing ~fraction hedges per dispatched
// partition (default 0.05, i.e. <=5% of requests) with the given burst
// depth (default/minimum 1). The bucket starts full.
func NewHedgeBudget(fraction float64, burst int) *HedgeBudget {
	if fraction <= 0 {
		fraction = 0.05
	}
	if fraction > 1 {
		fraction = 1
	}
	if burst < 1 {
		burst = 1
	}
	return &HedgeBudget{fraction: fraction, burst: float64(burst), tokens: float64(burst)}
}

// earn credits one dispatched partition.
func (b *HedgeBudget) earn() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.tokens = math.Min(b.tokens+b.fraction, b.burst)
	b.mu.Unlock()
}

// TrySpend consumes one hedge token, reporting false when the budget is
// exhausted.
func (b *HedgeBudget) TrySpend() bool {
	if b == nil {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// refund returns an unspent token (hedge aborted before launch).
func (b *HedgeBudget) refund() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.tokens = math.Min(b.tokens+1, b.burst)
	b.mu.Unlock()
}

// HedgePolicy turns on tail-latency hedging for hop-0 (preferred shard)
// attempts. All fields except OnOutcome and Healthy are required for the
// policy to engage.
type HedgePolicy struct {
	// Delay returns the adaptive hedge trigger for a sub-query whose
	// primary runs on shard; <= 0 disables hedging for that attempt
	// (e.g. not enough latency samples yet).
	Delay func(shard int) time.Duration
	// Budget rations hedge launches (required).
	Budget *HedgeBudget
	// Healthy filters hedge targets: only shards it accepts may serve a
	// hedge (nil accepts all). Routers exclude degraded and rejoining
	// shards here — a hedge to a sick replica is worse than waiting.
	Healthy func(shard int) bool
	// Compare checks a primary/hedge pair that BOTH completed for
	// bit-identical equality. A non-nil error fails the partition loudly
	// (wrapped NoReroute): divergent replicas are a correctness event,
	// not a routing event.
	Compare func(primary, hedge any) error
	// OnOutcome observes hedge lifecycle events (HedgeWin/Loss/Mismatch/
	// Denied) for metrics.
	OnOutcome func(outcome string)
}

func (hp *HedgePolicy) note(outcome string) {
	if hp != nil && hp.OnOutcome != nil {
		hp.OnOutcome(outcome)
	}
}

// hedgeCtxKey marks a context as belonging to a hedge attempt.
type hedgeCtxKey struct{}

// markHedge tags an attempt context as a hedge.
func markHedge(ctx context.Context) context.Context {
	return context.WithValue(ctx, hedgeCtxKey{}, true)
}

// IsHedgeAttempt reports whether ctx belongs to a hedge attempt launched by
// the dispatcher — ShardFuncs use it to label hedge spans in traces.
func IsHedgeAttempt(ctx context.Context) bool {
	v, _ := ctx.Value(hedgeCtxKey{}).(bool)
	return v
}

// hedging reports whether hop-0 hedging can engage at all.
func (d *Dispatcher) hedging() bool {
	hp := d.cfg.Hedge
	return hp != nil && hp.Delay != nil && hp.Budget != nil && d.cfg.Shards > 1
}

// attempt is one shard call's outcome inside a hedged race.
type attempt struct {
	shard int
	v     any
	err   error
	lat   time.Duration
}

// hedgeOutcome is a hedged hop-0 attempt's resolution. All breaker and gate
// accounting for the attempts it ran has already been applied.
type hedgeOutcome struct {
	value       any
	shard       int
	err         error
	attemptErrs []error // per-shard labeled errors when err is rerouteable
	hedged      bool
	hedgeWon    bool
}

func soloOutcome(a attempt) hedgeOutcome {
	out := hedgeOutcome{value: a.v, shard: a.shard, err: a.err}
	if a.err != nil && rerouteable(a.err) {
		out.attemptErrs = []error{fmt.Errorf("shard %d: %w", a.shard, a.err)}
	}
	return out
}

// settleAttempt applies breaker and gate accounting for one completed
// attempt. canceledByUs marks a hedge-race loser we reaped: its failure is
// nobody's fault.
func (d *Dispatcher) settleAttempt(ctx context.Context, a attempt, br *breaker, canceledByUs bool) {
	switch {
	case a.err == nil, !rerouteable(a.err):
		// A query-level (NoReroute) error means the shard answered
		// correctly; only the query was bad.
		br.success()
		d.gateRelease(a.shard, GateSuccess, a.lat)
	case canceledByUs, ctx.Err() != nil:
		br.abandon()
		d.gateRelease(a.shard, GateAbandoned, a.lat)
	default:
		br.failure()
		d.gateRelease(a.shard, GateFailure, a.lat)
	}
}

// hedgeTarget picks the hedge replica for primary: the next shard accepted
// by the policy's Healthy filter, admitted by the gate, and allowed by its
// breaker. On success the target's gate slot and breaker admission are
// already held.
func (d *Dispatcher) hedgeTarget(primary int) (int, *breaker) {
	hp := d.cfg.Hedge
	n := d.cfg.Shards
	for hop := 1; hop < n; hop++ {
		shard := (primary + hop) % n
		if hp.Healthy != nil && !hp.Healthy(shard) {
			continue
		}
		if !d.gateAcquire(shard) {
			continue
		}
		br := d.breakers[shard]
		if !br.allow() {
			d.gateRelease(shard, GateAbandoned, 0)
			continue
		}
		return shard, br
	}
	return -1, nil
}

// hedgedAttempt runs the hop-0 attempt with tail-latency hedging. The
// caller holds primary's gate slot and breaker admission; this function
// settles both shards' accounting before returning.
func (d *Dispatcher) hedgedAttempt(ctx context.Context, primary int, pbr *breaker, part pipeline.Partition, do ShardFunc) hedgeOutcome {
	hp := d.cfg.Hedge
	delay := hp.Delay(primary)
	if delay <= 0 {
		start := time.Now()
		v, err := do(ctx, primary, part)
		a := attempt{shard: primary, v: v, err: err, lat: time.Since(start)}
		d.settleAttempt(ctx, a, pbr, false)
		return soloOutcome(a)
	}

	ch := make(chan attempt, 2)
	pctx, pcancel := context.WithCancel(ctx)
	defer pcancel()
	run := func(actx context.Context, shard int) {
		start := time.Now()
		v, err := do(actx, shard, part)
		ch <- attempt{shard: shard, v: v, err: err, lat: time.Since(start)}
	}
	go run(pctx, primary)

	timer := time.NewTimer(delay)
	var first attempt
	select {
	case first = <-ch:
		timer.Stop()
		d.settleAttempt(ctx, first, pbr, false)
		return soloOutcome(first)
	case <-timer.C:
	}

	// The primary outlived its adaptive trigger: launch a hedge if the
	// budget and a healthy replica allow it.
	if !hp.Budget.TrySpend() {
		hp.note(HedgeDenied)
		first = <-ch
		d.settleAttempt(ctx, first, pbr, false)
		return soloOutcome(first)
	}
	hedgeShard, hbr := d.hedgeTarget(primary)
	if hedgeShard < 0 {
		hp.Budget.refund()
		hp.note(HedgeDenied)
		first = <-ch
		d.settleAttempt(ctx, first, pbr, false)
		return soloOutcome(first)
	}
	hctx, hcancel := context.WithCancel(ctx)
	defer hcancel()
	go run(markHedge(hctx), hedgeShard)

	first = <-ch
	firstIsPrimary := first.shard == primary
	// When the first finisher carries a usable answer (success or a
	// query-level error), reap the loser; when it failed, the partner is
	// the remaining hope, so let it run. Either way we WAIT for the
	// partner: do() honors cancellation so this is prompt, and it
	// guarantees a completed pair is always compared for divergence.
	canceledLoser := false
	if first.err == nil || !rerouteable(first.err) {
		canceledLoser = true
		if firstIsPrimary {
			hcancel()
		} else {
			pcancel()
		}
	}
	second := <-ch

	pa, ha := first, second
	if !firstIsPrimary {
		pa, ha = second, first
	}
	winnerBr, loserBr := pbr, hbr
	if !firstIsPrimary {
		winnerBr, loserBr = hbr, pbr
	}
	d.settleAttempt(ctx, first, winnerBr, false)
	d.settleAttempt(ctx, second, loserBr, canceledLoser)

	out := hedgeOutcome{hedged: true}
	pOK, hOK := pa.err == nil, ha.err == nil
	switch {
	case pOK && hOK:
		if hp.Compare != nil {
			if cmpErr := hp.Compare(pa.v, ha.v); cmpErr != nil {
				hp.note(HedgeMismatch)
				out.shard = primary
				out.err = NoReroute(fmt.Errorf(
					"exec: hedge disagreement on partition %s: shard %d and shard %d returned divergent results: %w",
					part, primary, hedgeShard, cmpErr))
				return out
			}
		}
		// Bit-identical pair: take the first finisher.
		out.value, out.shard = first.v, first.shard
		out.hedgeWon = !firstIsPrimary
		if out.hedgeWon {
			hp.note(HedgeWin)
		} else {
			hp.note(HedgeLoss)
		}
	case pOK:
		out.value, out.shard = pa.v, primary
		hp.note(HedgeLoss)
	case hOK:
		out.value, out.shard, out.hedgeWon = ha.v, hedgeShard, true
		hp.note(HedgeWin)
	default:
		hp.note(HedgeLoss)
		// Query-level errors dominate: the shard answered, the query is bad.
		if !rerouteable(pa.err) {
			out.shard = primary
			out.err = pa.err
			return out
		}
		if !rerouteable(ha.err) {
			out.shard = hedgeShard
			out.err = ha.err
			return out
		}
		out.shard = primary
		out.err = pa.err
		out.attemptErrs = []error{
			fmt.Errorf("shard %d: %w", primary, pa.err),
			fmt.Errorf("shard %d (hedge): %w", hedgeShard, ha.err),
		}
	}
	return out
}
