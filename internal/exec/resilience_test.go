package exec_test

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"accelscore/internal/exec"
	"accelscore/internal/faults"
	"accelscore/internal/pipeline"
	"accelscore/internal/sched"
)

// mustPlan parses a fault plan or fails the test.
func mustPlan(t *testing.T, spec string) []faults.Rule {
	t.Helper()
	rules, err := faults.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	return rules
}

// mustInjector builds an injector from a plan spec or fails the test.
func mustInjector(t *testing.T, seed uint64, spec string) *faults.Injector {
	t.Helper()
	inj, err := faults.NewInjector(seed, mustPlan(t, spec))
	if err != nil {
		t.Fatal(err)
	}
	return inj
}

// exposition renders the pipeline registry as Prometheus text.
func exposition(t *testing.T, p *pipeline.Pipeline) string {
	t.Helper()
	var sb strings.Builder
	if err := p.Obs.Registry.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// TestRetryRecoversFromTransientFaults: two injected busy faults on the CPU
// engine are absorbed by the bounded retry policy — the query succeeds, the
// result records the attempts, and the retry counter matches.
func TestRetryRecoversFromTransientFaults(t *testing.T) {
	p, f, data := newEnv(t, 4, 6, 120)
	p.Faults = exec.WireFaultMetrics(
		mustInjector(t, 7, "CPU_SKLearn:invoke:busy:first=2"), p.Obs.Metrics())
	e := exec.New(p, exec.Config{Workers: 2, QueueDepth: 8, MaxRetries: 2, RetryBackoff: time.Millisecond})

	res, err := e.ExecQuery(scoreSQL)
	if err != nil {
		t.Fatal(err)
	}
	if res.Retries != 2 {
		t.Fatalf("Retries = %d, want 2", res.Retries)
	}
	if res.FallbackFrom != "" {
		t.Fatalf("unexpected fallback from %q", res.FallbackFrom)
	}
	want := f.PredictBatch(data)
	for j := range want {
		if res.Predictions[j] != want[j] {
			t.Fatalf("prediction %d differs after retries", j)
		}
	}
	out := exposition(t, p)
	if !strings.Contains(out, `accelscore_exec_retries_total{backend="CPU_SKLearn"} 2`) {
		t.Fatalf("retries not counted:\n%s", out)
	}
	if !strings.Contains(out, `accelscore_faults_injected_total`) {
		t.Fatalf("injected faults not counted:\n%s", out)
	}
}

// TestFatalFaultFallsBackToCPU: a crash fault is not retryable — the query
// degrades to the CPU engine, still returns correct predictions, and the
// decision is recorded on the result and the fallback counter.
func TestFatalFaultFallsBackToCPU(t *testing.T) {
	p, f, data := newEnv(t, 4, 6, 120)
	p.Faults = mustInjector(t, 7, "FPGA:invoke:crash")
	e := exec.New(p, exec.Config{Workers: 2, QueueDepth: 8})

	res, err := e.ExecQuery("EXEC sp_score_model @model='iris_rf', @data='iris', @backend='FPGA'")
	if err != nil {
		t.Fatal(err)
	}
	if res.FallbackFrom != "FPGA" || res.FallbackReason != "fault" {
		t.Fatalf("fallback = (%q, %q), want (FPGA, fault)", res.FallbackFrom, res.FallbackReason)
	}
	if res.Backend != "CPU_SKLearn" {
		t.Fatalf("degraded query ran on %q, want CPU_SKLearn", res.Backend)
	}
	want := f.PredictBatch(data)
	for j := range want {
		if res.Predictions[j] != want[j] {
			t.Fatalf("prediction %d differs after fallback", j)
		}
	}
	out := exposition(t, p)
	if !strings.Contains(out, `accelscore_exec_fallbacks_total{from="FPGA",reason="fault",to="CPU_SKLearn"} 1`) {
		t.Fatalf("fallback not counted:\n%s", out)
	}
}

// TestBreakerOpensThenRecovers drives the FPGA circuit through the full
// closed → open → half-open → closed cycle with a three-crash burst:
// queries during the burst degrade with reason "fault", queries during the
// cooldown degrade with reason "breaker_open" without touching the device,
// and the first probe after the cooldown closes the circuit again.
func TestBreakerOpensThenRecovers(t *testing.T) {
	p, _, _ := newEnv(t, 4, 6, 80)
	p.Faults = mustInjector(t, 7, "FPGA:invoke:crash:first=3")
	e := exec.New(p, exec.Config{
		Workers: 2, QueueDepth: 8,
		MaxRetries:       -1, // isolate the breaker from retry
		BreakerThreshold: 3,
		BreakerCooldown:  30 * time.Millisecond,
	})
	fpgaSQL := "EXEC sp_score_model @model='iris_rf', @data='iris', @backend='FPGA'"

	for i := 0; i < 3; i++ {
		res, err := e.ExecQuery(fpgaSQL)
		if err != nil {
			t.Fatalf("burst query %d: %v", i, err)
		}
		if res.FallbackReason != "fault" {
			t.Fatalf("burst query %d: reason %q, want fault", i, res.FallbackReason)
		}
	}
	if st := e.BreakerState(sched.DeviceFPGA); st != 2 {
		t.Fatalf("breaker state after burst = %d, want 2 (open)", st)
	}

	res, err := e.ExecQuery(fpgaSQL)
	if err != nil {
		t.Fatal(err)
	}
	if res.FallbackReason != "breaker_open" {
		t.Fatalf("cooldown query reason = %q, want breaker_open", res.FallbackReason)
	}

	time.Sleep(50 * time.Millisecond) // past the cooldown
	res, err = e.ExecQuery(fpgaSQL)
	if err != nil {
		t.Fatal(err)
	}
	if res.FallbackFrom != "" || res.Backend != "FPGA" {
		t.Fatalf("probe query ran on %q (fallback from %q), want FPGA directly", res.Backend, res.FallbackFrom)
	}
	if st := e.BreakerState(sched.DeviceFPGA); st != 0 {
		t.Fatalf("breaker state after probe = %d, want 0 (closed)", st)
	}

	out := exposition(t, p)
	for _, want := range []string{
		`accelscore_exec_breaker_transitions_total{device="fpga",to="open"} 1`,
		`accelscore_exec_breaker_transitions_total{device="fpga",to="half_open"} 1`,
		`accelscore_exec_breaker_transitions_total{device="fpga",to="closed"} 1`,
		`accelscore_exec_breaker_state{device="fpga"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestHangDetectionRetriesWithinDeadline: an injected device hang is cut
// short by the per-attempt timeout while the query deadline still has
// budget, classified retryable, and the second attempt succeeds — the
// deadline never fires.
func TestHangDetectionRetriesWithinDeadline(t *testing.T) {
	p, f, data := newEnv(t, 4, 6, 80)
	p.Faults = mustInjector(t, 7, "FPGA:compute:hang=200ms:once=1")
	e := exec.New(p, exec.Config{
		Workers: 2, QueueDepth: 8,
		AttemptTimeout: 30 * time.Millisecond,
		RetryBackoff:   time.Millisecond,
	})

	start := time.Now()
	res, err := e.ExecQuery("EXEC sp_score_model @model='iris_rf', @data='iris', @backend='FPGA', @timeout='500ms'")
	if err != nil {
		t.Fatal(err)
	}
	if res.Retries != 1 {
		t.Fatalf("Retries = %d, want 1 (one hung attempt)", res.Retries)
	}
	if res.FallbackFrom != "" {
		t.Fatalf("hang should retry on the same device, fell back from %q", res.FallbackFrom)
	}
	if elapsed := time.Since(start); elapsed >= 200*time.Millisecond {
		t.Fatalf("query took %v: the attempt timeout did not cut the hang short", elapsed)
	}
	want := f.PredictBatch(data)
	for j := range want {
		if res.Predictions[j] != want[j] {
			t.Fatalf("prediction %d differs after hang retry", j)
		}
	}
}

// TestDeadlineExpiryIsTerminal: with no attempt timeout, a hang longer than
// the query's @timeout surfaces context.DeadlineExceeded and bumps the
// deadline counter.
func TestDeadlineExpiryIsTerminal(t *testing.T) {
	p, _, _ := newEnv(t, 4, 6, 80)
	p.Faults = mustInjector(t, 7, "CPU_SKLearn:compute:hang=300ms")
	e := exec.New(p, exec.Config{Workers: 2, QueueDepth: 8})

	_, err := e.ExecQuery("EXEC sp_score_model @model='iris_rf', @data='iris', @backend='CPU_SKLearn', @timeout='50ms'")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	out := exposition(t, p)
	if !strings.Contains(out, exec.MetricDeadlineExceededTotal+" 1") {
		t.Fatalf("deadline expiry not counted:\n%s", out)
	}
}

// TestCanceledSubmissionIsShed: a query arriving with an already-canceled
// context never reaches a worker and is counted as shed and canceled.
func TestCanceledSubmissionIsShed(t *testing.T) {
	p, _, _ := newEnv(t, 4, 6, 80)
	e := exec.New(p, exec.Config{Workers: 2, QueueDepth: 8})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	_, err := e.Submit(ctx, scoreSQL)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	out := exposition(t, p)
	if !strings.Contains(out, exec.MetricExpiredShedTotal+" 1") {
		t.Fatalf("shed not counted:\n%s", out)
	}
	if !strings.Contains(out, exec.MetricCanceledTotal+" 1") {
		t.Fatalf("cancellation not counted:\n%s", out)
	}
}

// TestCoalescedErrorFansOutToAllMembers pins the error path of request
// coalescing under -race: when the shared batch fails and degradation is
// disabled, EVERY member — leader and followers alike — receives the error,
// and nobody gets zero-value predictions.
func TestCoalescedErrorFansOutToAllMembers(t *testing.T) {
	p, _, _ := newEnv(t, 4, 6, 80)
	p.Faults = mustInjector(t, 7, "FPGA:invoke:crash")
	const k = 4
	e := exec.New(p, exec.Config{
		Workers: 2, QueueDepth: 16,
		CoalesceWindow:  2 * time.Second, // the MaxBatch seal must win
		MaxBatch:        k,
		MaxRetries:      -1,
		FallbackBackend: "none",
	})
	fpgaSQL := "EXEC sp_score_model @model='iris_rf', @data='iris', @backend='FPGA'"

	var wg sync.WaitGroup
	errs := make([]error, k)
	results := make([]bool, k)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := e.ExecQuery(fpgaSQL)
			errs[i] = err
			results[i] = res != nil
		}(i)
	}
	wg.Wait()
	for i := 0; i < k; i++ {
		if errs[i] == nil {
			t.Fatalf("member %d: got nil error from a failed batch", i)
		}
		if !errors.Is(errs[i], faults.ErrInvokeCrash) {
			t.Fatalf("member %d: err = %v, want wrapped ErrInvokeCrash", i, errs[i])
		}
		if results[i] {
			t.Fatalf("member %d: received a result from a failed batch", i)
		}
	}
}

// TestCloseDrainsInflightAndStopsAdmission: Close waits for executing
// queries, new submissions fail fast with ErrClosed, and a second Close is
// a no-op.
func TestCloseDrainsInflightAndStopsAdmission(t *testing.T) {
	p, _, _ := newEnv(t, 4, 6, 60)
	bb := &blockingBackend{entered: make(chan struct{}, 4), release: make(chan struct{})}
	if err := p.Registry.Register(bb); err != nil {
		t.Fatal(err)
	}
	e := exec.New(p, exec.Config{Workers: 2, QueueDepth: 8})
	blockSQL := "EXEC sp_score_model @model='iris_rf', @data='iris', @backend='BLOCK'"

	var inflightErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, inflightErr = e.ExecQuery(blockSQL)
	}()
	<-bb.entered // the query is executing inside the backend

	closed := make(chan error, 1)
	go func() { closed <- e.Close(context.Background()) }()

	// Admission must stop immediately, even while Close is still draining.
	// Probe with a fast SELECT (it would complete pre-close) so the probe
	// itself never parks inside the blocking backend.
	deadline := time.After(2 * time.Second)
	for {
		if _, err := e.ExecQuery("SELECT sepal_length FROM iris WHERE sepal_length > 5.0"); errors.Is(err, exec.ErrClosed) {
			break
		}
		select {
		case <-deadline:
			t.Fatal("Submit never started returning ErrClosed")
		case <-time.After(time.Millisecond):
		}
	}

	select {
	case err := <-closed:
		t.Fatalf("Close returned %v before the in-flight query finished", err)
	default:
	}

	close(bb.release)
	if err := <-closed; err != nil {
		t.Fatalf("Close = %v", err)
	}
	wg.Wait()
	if inflightErr != nil {
		t.Fatalf("in-flight query failed during drain: %v", inflightErr)
	}
	if err := e.Close(context.Background()); err != nil {
		t.Fatalf("second Close = %v", err)
	}
}

// TestFaultInjectionIsDeterministic: two executors over identical pipelines
// with the same seed and plan produce the identical fault event sequence.
func TestFaultInjectionIsDeterministic(t *testing.T) {
	run := func() []faults.Event {
		p, _, _ := newEnv(t, 4, 6, 80)
		inj := mustInjector(t, 99, "CPU_SKLearn:invoke:busy:p=0.5;CPU_SKLearn:compute:corrupt:every=3")
		p.Faults = inj
		e := exec.New(p, exec.Config{Workers: 1, QueueDepth: 8, RetryBackoff: time.Millisecond, MaxRetries: 3})
		for i := 0; i < 10; i++ {
			// Retry-exhausted errors are fine — they must simply be the SAME
			// errors on both runs, which the event comparison below implies.
			_, _ = e.ExecQuery(scoreSQL)
		}
		return inj.Events()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("plan never fired")
	}
	if len(a) != len(b) {
		t.Fatalf("event counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Seq != b[i].Seq || a[i].Backend != b[i].Backend ||
			a[i].Boundary != b[i].Boundary || a[i].Kind != b[i].Kind {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
