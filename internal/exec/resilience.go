// Resilience policy for the scoring path: bounded retry with jittered
// backoff for retryable faults, a per-device circuit breaker, and graceful
// degradation to the CPU engine — so an injected (or real) accelerator
// fault costs one query some latency, never a wrong answer and rarely an
// error. The policy mirrors the paper's framing: the accelerators are
// optional throughput devices behind O/L/C boundaries; the CPU engine is
// the always-available baseline, so "degrade to CPU and record why" is the
// correct failure posture for a DBMS scoring operator.

package exec

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"accelscore/internal/faults"
	"accelscore/internal/obs"
	"accelscore/internal/pipeline"
	"accelscore/internal/sched"
)

// ErrBreakerOpen is returned when a device's circuit is open and no
// fallback backend is configured.
var ErrBreakerOpen = errors.New("exec: device circuit breaker open")

// breakerState is a device circuit's position. The numeric values are the
// gauge encoding on /metrics.
type breakerState int

const (
	breakerClosed   breakerState = 0
	breakerHalfOpen breakerState = 1
	breakerOpen     breakerState = 2
)

// String returns the metric-label spelling of the state.
func (s breakerState) String() string {
	switch s {
	case breakerHalfOpen:
		return "half_open"
	case breakerOpen:
		return "open"
	default:
		return "closed"
	}
}

// breaker is a per-device circuit breaker: `threshold` consecutive failures
// open it, an open circuit rejects work for `cooldown`, then admits exactly
// one half-open probe whose outcome closes or re-opens the circuit.
type breaker struct {
	threshold int
	cooldown  time.Duration
	onChange  func(breakerState)

	mu       sync.Mutex
	state    breakerState
	failures int       // consecutive failures while closed
	openedAt time.Time // when the circuit last opened
	probing  bool      // a half-open probe is in flight
}

// newBreaker builds a closed breaker. onChange fires on every state
// transition (under the breaker's lock; keep it cheap).
func newBreaker(threshold int, cooldown time.Duration, onChange func(breakerState)) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, onChange: onChange}
}

// allow reports whether a request may reach the device. Admitting a request
// from the open state (cooldown elapsed) or the half-open state marks it as
// the probe: the caller must follow up with success, failure, or abandon.
func (b *breaker) allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		if time.Since(b.openedAt) < b.cooldown {
			return false
		}
		b.setLocked(breakerHalfOpen)
		b.probing = true
		return true
	case breakerHalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	default:
		return true
	}
}

// success records a completed run: the circuit closes and the consecutive
// failure count resets.
func (b *breaker) success() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	b.probing = false
	if b.state != breakerClosed {
		b.setLocked(breakerClosed)
	}
}

// failure records a failed run: a failed half-open probe re-opens the
// circuit immediately; `threshold` consecutive failures open a closed one.
func (b *breaker) failure() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	switch b.state {
	case breakerHalfOpen:
		b.openedAt = time.Now()
		b.setLocked(breakerOpen)
	case breakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.openedAt = time.Now()
			b.setLocked(breakerOpen)
		}
	}
}

// abandon releases a probe slot without an outcome (the run never reached
// the device — e.g. its context expired while queued).
func (b *breaker) abandon() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.probing = false
	b.mu.Unlock()
}

// current returns the state (for tests and status pages).
func (b *breaker) current() breakerState {
	if b == nil {
		return breakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

func (b *breaker) setLocked(s breakerState) {
	b.state = s
	if b.onChange != nil {
		b.onChange(s)
	}
}

// breakerObserver publishes a device's breaker transitions as the state
// gauge plus a transition counter, so open→half-open→closed sequences are
// visible on /metrics even after the circuit has recovered.
func (e *Executor) breakerObserver(dev sched.Device) func(breakerState) {
	return func(s breakerState) {
		e.publishBreakerState(dev, s)
		if reg := e.pipe.Obs.Metrics(); reg != nil {
			reg.Counter(MetricBreakerTransitionsTotal, "Circuit-breaker state transitions per device.",
				"device", string(dev), "to", s.String()).Inc()
		}
	}
}

// publishBreakerState exports the per-device state gauge.
func (e *Executor) publishBreakerState(dev sched.Device, s breakerState) {
	if reg := e.pipe.Obs.Metrics(); reg != nil {
		reg.Gauge(MetricBreakerState, "Circuit state per device (0 closed, 1 half-open, 2 open).",
			"device", string(dev)).Set(float64(s))
	}
}

// BreakerState returns a device's current circuit state as its gauge
// encoding (0 closed, 1 half-open, 2 open).
func (e *Executor) BreakerState(dev sched.Device) int {
	return int(e.breakers[dev].current())
}

// fallbackFor returns the degradation target for a requested backend, or ""
// when degradation does not apply: "auto" and default requests resolve
// in-pipeline (no fixed device to degrade from), and the fallback engine
// itself has nowhere further to go.
func (e *Executor) fallbackFor(target string) string {
	fb := e.cfg.FallbackBackend
	if fb == "" || strings.EqualFold(fb, "none") {
		return ""
	}
	if target == "" || strings.EqualFold(target, "auto") || strings.EqualFold(target, fb) {
		return ""
	}
	return fb
}

// runResilient resolves where the batch actually runs — honoring the
// device's circuit breaker and the remaining deadline budget — and degrades
// to the CPU fallback engine when the requested backend cannot serve it.
func (e *Executor) runResilient(ctx context.Context, reqs []*pipeline.ScoreRequest) ([]*pipeline.QueryResult, error) {
	target := reqs[0].Backend
	dev := sched.DeviceOf(target)
	fb := e.fallbackFor(target)

	// Pre-dispatch degradation: a deadline the device's recent run times
	// cannot meet. Checked before the breaker so the decision never
	// consumes a half-open probe slot.
	if fb != "" && dev != sched.DeviceCPU && e.deadlineTooTight(ctx, dev) {
		e.noteFallback(target, fb, "deadline", len(reqs))
		return e.runOn(ctx, reqs, fb, target, "deadline", nil)
	}
	br := e.breakers[dev]
	if !br.allow() {
		if fb == "" {
			return nil, fmt.Errorf("exec: %s rejected: %w", target, ErrBreakerOpen)
		}
		e.noteFallback(target, fb, "breaker_open", len(reqs))
		return e.runOn(ctx, reqs, fb, target, "breaker_open", nil)
	}

	results, err := e.runOn(ctx, reqs, target, "", "", br)
	if err == nil || fb == "" || ctx.Err() != nil || !faults.Injected(err) {
		// Logical errors (bad model, unsupported class count) would fail on
		// the fallback engine too — only device faults and hangs degrade.
		return results, err
	}
	e.noteFallback(target, fb, "fault", len(reqs))
	return e.runOn(ctx, reqs, fb, target, "fault", nil)
}

// runOn executes the batch on one backend under its device token, retrying
// retryable faults with jittered backoff up to MaxRetries. When fbFrom is
// non-empty the batch is a degraded copy and results are annotated with the
// original backend and the reason. br (nil for fallback runs) receives
// success/failure accounting for the device's circuit.
func (e *Executor) runOn(ctx context.Context, reqs []*pipeline.ScoreRequest, target, fbFrom, fbReason string, br *breaker) ([]*pipeline.QueryResult, error) {
	dev := sched.DeviceOf(target)
	sem, ok := e.devices[dev]
	if !ok {
		br.abandon()
		return nil, fmt.Errorf("exec: no device limit for %q", dev)
	}
	select {
	case sem <- struct{}{}:
	case <-ctx.Done():
		br.abandon()
		return nil, ctx.Err()
	}
	defer func() { <-sem }()

	run := reqs
	if fbFrom != "" {
		run = make([]*pipeline.ScoreRequest, len(reqs))
		for i, r := range reqs {
			c := *r
			c.Backend = target
			run[i] = &c
		}
	}

	for attempt := 0; ; attempt++ {
		actx, acancel := ctx, context.CancelFunc(func() {})
		if e.cfg.AttemptTimeout > 0 {
			actx, acancel = context.WithTimeout(ctx, e.cfg.AttemptTimeout)
		}
		start := time.Now()
		results, err := e.pipe.ExecScoreBatchCtx(actx, run)
		acancel()
		if err == nil {
			br.success()
			e.pace(ctx, start, results)
			e.observeRunTime(dev, time.Since(start))
			for _, r := range results {
				if r == nil {
					continue
				}
				r.Retries = attempt
				r.FallbackFrom = fbFrom
				r.FallbackReason = fbReason
			}
			return results, nil
		}
		if actx.Err() != nil && ctx.Err() == nil && !faults.Injected(err) {
			// The per-attempt timer fired while the query deadline still has
			// budget: classify as a hang so the retry/fallback policy treats
			// a silently stuck device like an explicit busy fault.
			err = fmt.Errorf("exec: attempt %d on %s timed out after %v: %w",
				attempt+1, target, e.cfg.AttemptTimeout, faults.ErrDeviceHang)
		}
		br.failure()
		if cerr := ctx.Err(); cerr != nil {
			return nil, fmt.Errorf("exec: %s failed and the query budget expired: %w",
				target, errors.Join(err, cerr))
		}
		if !faults.Retryable(err) || attempt >= e.cfg.MaxRetries {
			return nil, err
		}
		e.noteRetry(target)
		if !e.backoff(ctx, attempt) {
			return nil, ctx.Err()
		}
	}
}

// pace holds the batch (and its device token) until PaceScale x the batch's
// simulated end-to-end time has elapsed since start, so a paced shard's
// wall-clock tracks the calibrated device model it simulates. The sleep is
// skipped when the real run already took at least that long, and cut short
// by the query context. Device utilization stays honest: the token is held
// for the paced duration, exactly as a real device would be busy.
func (e *Executor) pace(ctx context.Context, start time.Time, results []*pipeline.QueryResult) {
	if e.cfg.PaceScale <= 0 {
		return
	}
	var sim time.Duration
	for _, r := range results {
		if r != nil {
			sim += r.Timeline.Total()
		}
	}
	wait := time.Duration(float64(sim)*e.cfg.PaceScale) - time.Since(start)
	if wait <= 0 {
		return
	}
	t := time.NewTimer(wait)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// backoff sleeps the jittered exponential delay before the next attempt,
// returning false if the context expires first.
func (e *Executor) backoff(ctx context.Context, attempt int) bool {
	d := e.cfg.RetryBackoff << uint(attempt)
	if maxBackoff := 250 * time.Millisecond; d > maxBackoff || d <= 0 {
		d = maxBackoff
	}
	e.rngMu.Lock()
	jitter := 0.5 + e.rng.Float64() // ±50% around the base
	e.rngMu.Unlock()
	d = time.Duration(float64(d) * jitter)
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// observeRunTime maintains a per-device EWMA of successful batch wall time:
// the estimate behind deadline-aware degradation.
func (e *Executor) observeRunTime(dev sched.Device, d time.Duration) {
	e.estMu.Lock()
	if prev := e.est[dev]; prev == 0 {
		e.est[dev] = d
	} else {
		e.est[dev] = (3*prev + d) / 4
	}
	e.estMu.Unlock()
}

// deadlineTooTight predicts whether the device can finish inside the
// remaining budget: the EWMA of recent runs — doubled when the device is
// saturated, to cover the run we would queue behind — must fit before the
// deadline. With no history the device gets the benefit of the doubt.
func (e *Executor) deadlineTooTight(ctx context.Context, dev sched.Device) bool {
	dl, ok := ctx.Deadline()
	if !ok {
		return false
	}
	e.estMu.Lock()
	est := e.est[dev]
	e.estMu.Unlock()
	if est == 0 {
		return false
	}
	need := est
	if sem := e.devices[dev]; sem != nil && len(sem) == cap(sem) {
		need += est
	}
	return time.Until(dl) < need
}

// noteRetry counts a re-attempt on a backend.
func (e *Executor) noteRetry(backend string) {
	if reg := e.pipe.Obs.Metrics(); reg != nil {
		reg.Counter(MetricRetriesTotal, "Scoring re-attempts after retryable faults.",
			"backend", backend).Inc()
	}
}

// noteFallback counts a graceful degradation decision for n queries.
func (e *Executor) noteFallback(from, to, reason string, n int) {
	if reg := e.pipe.Obs.Metrics(); reg != nil {
		reg.Counter(MetricFallbacksTotal, "Queries degraded to the fallback engine.",
			"from", from, "to", to, "reason", reason).Add(float64(n))
	}
}

// WireFaultMetrics publishes every injector firing as the
// accelscore_faults_injected_total counter, chaining any OnFault hook
// already installed. Nil injector or registry is a no-op.
func WireFaultMetrics(inj *faults.Injector, reg *obs.Registry) *faults.Injector {
	if inj == nil || reg == nil {
		return inj
	}
	prev := inj.OnFault
	inj.OnFault = func(ev faults.Event) {
		reg.Counter(MetricFaultsInjectedTotal, "Faults fired by the injector.",
			"backend", ev.Backend, "boundary", string(ev.Boundary), "kind", string(ev.Kind)).Inc()
		if prev != nil {
			prev(ev)
		}
	}
	return inj
}
