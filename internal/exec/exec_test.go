package exec_test

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"accelscore/internal/backend"
	"accelscore/internal/dataset"
	"accelscore/internal/db"
	"accelscore/internal/exec"
	"accelscore/internal/forest"
	"accelscore/internal/hw"
	"accelscore/internal/obs"
	"accelscore/internal/pipeline"
	"accelscore/internal/platform"
	"accelscore/internal/sim"
)

// newEnv builds an observed, cache-enabled pipeline over the IRIS table and
// a trained model, ready to wrap in an Executor.
func newEnv(t testing.TB, trees, depth, rows int) (*pipeline.Pipeline, *forest.Forest, *dataset.Dataset) {
	t.Helper()
	tb := platform.New()
	d := db.New()
	data := dataset.Iris().Replicate(rows)
	tbl, err := db.TableFromDataset("iris", data)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.CreateTable(tbl); err != nil {
		t.Fatal(err)
	}
	f, err := forest.Train(dataset.Iris(), forest.ForestConfig{
		NumTrees:  trees,
		Tree:      forest.TrainConfig{MaxDepth: depth},
		Seed:      1,
		Bootstrap: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.StoreModel("iris_rf", f); err != nil {
		t.Fatal(err)
	}
	return &pipeline.Pipeline{
		DB:       d,
		Runtime:  hw.DefaultRuntime(),
		Registry: tb.Registry,
		Advisor:  tb.Advisor,
		Cache:    pipeline.NewModelCache(8),
		Obs:      obs.NewObserver(),
	}, f, data
}

const scoreSQL = "EXEC sp_score_model @model='iris_rf', @data='iris', @backend='CPU_SKLearn'"

// TestCoalesceMergesConcurrentQueries launches exactly MaxBatch concurrent
// queries for one (model, backend): the batch must seal on the MaxBatch
// joiner (no window wait), execute as ONE pipeline run — a single cache
// miss — and fan correct predictions back out with per-query amortized
// timelines and distinct trace IDs.
func TestCoalesceMergesConcurrentQueries(t *testing.T) {
	p, f, data := newEnv(t, 8, 10, 200)
	const k = 4
	e := exec.New(p, exec.Config{
		Workers:        2,
		QueueDepth:     16,
		CoalesceWindow: 2 * time.Second, // generous: the MaxBatch seal must win
		MaxBatch:       k,
	})
	want := f.PredictBatch(data)

	var wg sync.WaitGroup
	results := make([]*pipeline.QueryResult, k)
	errs := make([]error, k)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = e.ExecQuery(scoreSQL)
		}(i)
	}
	wg.Wait()

	traceIDs := map[string]bool{}
	for i := 0; i < k; i++ {
		if errs[i] != nil {
			t.Fatalf("query %d: %v", i, errs[i])
		}
		res := results[i]
		if res.BatchSize != k {
			t.Fatalf("query %d: BatchSize = %d, want %d", i, res.BatchSize, k)
		}
		if len(res.Predictions) != len(want) {
			t.Fatalf("query %d: %d predictions, want %d", i, len(res.Predictions), len(want))
		}
		for j := range want {
			if res.Predictions[j] != want[j] {
				t.Fatalf("query %d: prediction %d = %d, want %d", i, j, res.Predictions[j], want[j])
			}
		}
		if res.TraceID == "" || traceIDs[res.TraceID] {
			t.Fatalf("query %d: trace ID %q empty or duplicated", i, res.TraceID)
		}
		traceIDs[res.TraceID] = true
		// The fixed invocation charge is split k ways — the amortization
		// the coalescer exists for.
		wantInvoke := p.Runtime.ProcessInvoke / k
		if got := res.Timeline.Component(pipeline.StagePythonInvocation); got != wantInvoke {
			t.Fatalf("query %d: invocation share %v, want %v", i, got, wantInvoke)
		}
	}
	if st := p.Cache.Stats(); st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("batch should probe the cache once: %v", st)
	}
	if got := e.Queued(); got != 0 {
		t.Fatalf("queued after drain = %d", got)
	}
}

// TestCoalesceWindowSealsSingleton: a lone query under an armed coalescing
// window still completes (timer seal) and reduces exactly to the
// uncoalesced result shape.
func TestCoalesceWindowSealsSingleton(t *testing.T) {
	p, f, data := newEnv(t, 4, 6, 120)
	e := exec.New(p, exec.Config{CoalesceWindow: 20 * time.Millisecond, MaxBatch: 8})
	res, err := e.ExecQuery(scoreSQL)
	if err != nil {
		t.Fatal(err)
	}
	if res.BatchSize != 1 {
		t.Fatalf("BatchSize = %d, want 1", res.BatchSize)
	}
	want := f.PredictBatch(data)
	for j := range want {
		if res.Predictions[j] != want[j] {
			t.Fatalf("prediction %d differs", j)
		}
	}
}

// blockingBackend parks every Score call until released, so tests can hold
// queries in the executing state deterministically.
type blockingBackend struct {
	entered chan struct{}
	release chan struct{}
}

func (b *blockingBackend) Name() string { return "BLOCK" }

func (b *blockingBackend) Score(req *backend.Request) (*backend.Result, error) {
	b.entered <- struct{}{}
	<-b.release
	preds := make([]int, req.Data.NumRecords())
	var tl sim.Timeline
	tl.Add("blocked scoring", sim.KindCompute, time.Millisecond)
	return &backend.Result{Predictions: preds, Timeline: tl}, nil
}

func (b *blockingBackend) Estimate(stats forest.Stats, records int64) (*sim.Timeline, error) {
	var tl sim.Timeline
	tl.Add("blocked scoring", sim.KindCompute, time.Millisecond)
	return &tl, nil
}

// TestBackpressureRejectsWhenFull fills the admission queue with queries
// stuck in a blocking backend and checks the next arrival is shed with
// ErrRejected (and counted), instead of queueing unboundedly; releasing the
// backend drains the queue.
func TestBackpressureRejectsWhenFull(t *testing.T) {
	p, _, _ := newEnv(t, 4, 6, 60)
	bb := &blockingBackend{entered: make(chan struct{}, 4), release: make(chan struct{})}
	if err := p.Registry.Register(bb); err != nil {
		t.Fatal(err)
	}
	e := exec.New(p, exec.Config{Workers: 1, QueueDepth: 2})
	blockSQL := "EXEC sp_score_model @model='iris_rf', @data='iris', @backend='BLOCK'"

	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(1)
	go func() { defer wg.Done(); _, errs[0] = e.ExecQuery(blockSQL) }()
	<-bb.entered // query 0 is executing, holding the only worker

	wg.Add(1)
	go func() { defer wg.Done(); _, errs[1] = e.ExecQuery(blockSQL) }()
	// Wait until query 1 holds the second (last) admission token.
	for i := 0; ; i++ {
		if e.Queued() == 1 {
			break
		}
		if i > 2000 {
			t.Fatal("query 1 never queued")
		}
		time.Sleep(time.Millisecond)
	}

	if _, err := e.ExecQuery(blockSQL); err != exec.ErrRejected {
		t.Fatalf("over-admission error = %v, want ErrRejected", err)
	}

	close(bb.release)
	<-bb.entered // query 1 reaches the backend after query 0 frees the worker
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("blocked query %d failed: %v", i, err)
		}
	}

	var sb strings.Builder
	if err := p.Obs.Registry.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), exec.MetricRejectedTotal+" 1") {
		t.Fatalf("rejection not counted:\n%s", sb.String())
	}
}

// TestExecutorObservability checks the tentpole's telemetry (satellite:
// obs): queue-depth and in-flight gauges exist and return to zero, the
// executed-batch-size histogram records the coalesced run, and pipeline
// metrics flow through the same registry.
func TestExecutorObservability(t *testing.T) {
	p, _, _ := newEnv(t, 4, 6, 80)
	e := exec.New(p, exec.Config{Workers: 2, QueueDepth: 8, CoalesceWindow: time.Second, MaxBatch: 2})

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := e.ExecQuery(scoreSQL); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if _, err := e.ExecQuery("SELECT sepal_length FROM iris WHERE sepal_length > 5.0"); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := p.Obs.Registry.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		exec.MetricQueueDepth + " 0",
		exec.MetricInflight + " 0",
		exec.MetricBatchSize + `_bucket{le="2"} 1`,
		`accelscore_statements_total{kind="exec"} 2`,
		`accelscore_statements_total{kind="select"} 1`,
		`accelscore_queries_total{status="ok"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}

	// The amortization is visible in the Fig. 11 stage histograms: the two
	// coalesced queries together account for ONE process invocation (half
	// each), where serialized execution would have charged two.
	invokeSum := promValue(t, out, `accelscore_stage_sim_seconds_sum{stage="Python invocation"}`)
	want := p.Runtime.ProcessInvoke.Seconds()
	if math.Abs(invokeSum-want) > want*0.01 {
		t.Fatalf("invocation histogram sum = %gs across the batch, want ~%gs (one amortized charge)", invokeSum, want)
	}
}

// promValue extracts one sample's value from Prometheus text exposition.
func promValue(t *testing.T, exposition, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(exposition, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("bad sample %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("exposition missing series %q:\n%s", series, exposition)
	return 0
}

// TestHammerMixedWorkload (satellite: -race hammer) mixes concurrent
// coalesced scoring, SELECTs, INSERTs into scratch tables and model
// replacement against ONE pipeline through the executor, asserting correct
// predictions throughout and snapshot/cache invalidation afterwards.
func TestHammerMixedWorkload(t *testing.T) {
	p, f, data := newEnv(t, 8, 10, 300)
	e := exec.New(p, exec.Config{
		Workers:        4,
		QueueDepth:     128,
		CoalesceWindow: 500 * time.Microsecond,
		MaxBatch:       8,
	})
	want := f.PredictBatch(data)
	churn, err := forest.Train(dataset.Iris(), forest.ForestConfig{
		NumTrees: 2,
		Tree:     forest.TrainConfig{MaxDepth: 4},
		Seed:     42,
	})
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	const iters = 20
	backends := []string{"CPU_SKLearn", "CPU_ONNX", "FPGA"}
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch i % 4 {
				case 0, 1:
					// Stable-model scoring: must always match the oracle,
					// coalesced or not.
					be := backends[(w+i)%len(backends)]
					res, err := e.ExecQuery("EXEC sp_score_model @model='iris_rf', @data='iris', @backend='" + be + "'")
					if err != nil {
						errCh <- err
						return
					}
					for j := range want {
						if res.Predictions[j] != want[j] {
							errCh <- fmt.Errorf("worker %d iter %d: prediction %d differs on %s (batch %d)",
								w, i, j, be, res.BatchSize)
							return
						}
					}
				case 2:
					// Model churn on a shared name: replace then score.
					// Not-found races are fine; wrong row counts are not.
					_ = p.DB.DeleteModel("churn")
					_ = p.DB.StoreModel("churn", churn)
					res, err := e.ExecQuery("EXEC sp_score_model @model='churn', @data='iris', @backend='CPU_ONNX'")
					if err != nil {
						if strings.Contains(err.Error(), "not found") {
							continue
						}
						errCh <- err
						return
					}
					if len(res.Predictions) != len(want) {
						errCh <- fmt.Errorf("worker %d: churn scored %d rows", w, len(res.Predictions))
						return
					}
				case 3:
					// DDL + DML on worker-private tables, plus reads of the
					// shared table, all through the executor.
					tbl := fmt.Sprintf("scratch_%d_%d", w, i)
					if _, err := e.ExecQuery("CREATE TABLE " + tbl + " (x REAL, label BIGINT)"); err != nil {
						errCh <- err
						return
					}
					if _, err := e.ExecQuery("INSERT INTO " + tbl + " VALUES (1.0, 0), (2.0, 1)"); err != nil {
						errCh <- err
						return
					}
					if _, err := e.ExecQuery("SELECT sepal_length FROM iris WHERE sepal_length > 6.0"); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Quiesced: nothing queued or running.
	if e.Queued() != 0 || e.Running() != 0 {
		t.Fatalf("not drained: queued=%d running=%d", e.Queued(), e.Running())
	}

	// Snapshot invalidation: a new row must be visible to the next scoring
	// query (version-keyed snapshot cache can't serve the stale dataset).
	if _, err := e.ExecQuery("INSERT INTO iris VALUES (5.1, 3.5, 1.4, 0.2, 0)"); err != nil {
		t.Fatal(err)
	}
	res, err := e.ExecQuery(scoreSQL)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Predictions) != len(want)+1 {
		t.Fatalf("post-insert scoring saw %d rows, want %d", len(res.Predictions), len(want)+1)
	}
}

// TestLoadHarnessSmoke drives the real load harness end to end at tiny
// scale: executor vs serialized baseline over the same deterministic
// stream, plus the simulator prediction for the same stream.
func TestLoadHarnessSmoke(t *testing.T) {
	env, err := exec.BuildLoadEnv(exec.LoadConfig{
		Queries:     24,
		TableRows:   256,
		TreeChoices: []int{4, 8}, DepthChoices: []int{6},
	}, obs.NewObserver())
	if err != nil {
		t.Fatal(err)
	}
	e := exec.New(env.Pipe, exec.Config{
		Workers: 2, QueueDepth: 64,
		CoalesceWindow: time.Millisecond, MaxBatch: 8,
	})
	got, err := exec.RunLoad(env, e, "executor", exec.RunOptions{Clients: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got.Ok != 24 || got.Errors != 0 || got.Rejected != 0 {
		t.Fatalf("executor run: %+v", got)
	}
	base, err := exec.RunLoad(env, &exec.SerializedRunner{Pipe: env.Pipe}, "serialized", exec.RunOptions{Clients: 4})
	if err != nil {
		t.Fatal(err)
	}
	if base.Ok != 24 {
		t.Fatalf("serialized run: %+v", base)
	}
	m, err := env.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if m.Makespan <= 0 {
		t.Fatalf("simulation produced empty metrics: %+v", m)
	}
}
