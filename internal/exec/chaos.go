package exec

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"accelscore/internal/faults"
	"accelscore/internal/obs"
)

// DefaultChaosPlan is the acceptance scenario for the resilience layer: 20%
// retryable invocation faults on the accelerator backend plus one forced
// device hang mid-stream. With retries, hang detection and CPU fallback
// armed, every query must still complete. (The FPGA engine stands in for
// the accelerator because the RAPIDS FIL engine cannot score the 3-class
// IRIS models the load harness trains.)
const DefaultChaosPlan = "FPGA:invoke:busy:p=0.2;FPGA:compute:hang=2s:once=5"

// ChaosConfig parameterizes one healthy-vs-chaos comparison run.
type ChaosConfig struct {
	// Load shapes the workload; both runs replay the identical stream.
	Load LoadConfig
	// Exec configures the executor (retries, breaker, fallback, attempt
	// timeout). The same config drives both runs; only the injector differs.
	Exec Config
	// Clients is the closed-loop concurrency (default 8).
	Clients int
	// FaultSpec is the chaos run's fault plan (default DefaultChaosPlan).
	FaultSpec string
	// FaultSeed seeds the injector's RNG streams (default 1).
	FaultSeed uint64
	// Deadline bounds each query via its submission context (0 = none).
	Deadline time.Duration
}

// ChaosRun summarizes one pass over the stream.
type ChaosRun struct {
	Label            string `json:"label"`
	Queries          int    `json:"queries"`
	Ok               int    `json:"ok"`
	DeadlineExceeded int    `json:"deadline_exceeded"`
	Canceled         int    `json:"canceled"`
	Rejected         int    `json:"rejected"`
	OtherErrors      int    `json:"other_errors"`
	// Wrong counts successful queries whose predictions differ from the
	// healthy serial oracle — the invariant chaos must never break.
	Wrong        int           `json:"wrong_predictions"`
	Availability float64       `json:"availability"`
	Wall         time.Duration `json:"wall_ns"`
	Mean         time.Duration `json:"mean_ns"`
	P50          time.Duration `json:"p50_ns"`
	P99          time.Duration `json:"p99_ns"`
	// Resilience counter totals read from the run's metrics registry.
	FaultsInjected     float64 `json:"faults_injected"`
	Retries            float64 `json:"retries"`
	Fallbacks          float64 `json:"fallbacks"`
	BreakerTransitions float64 `json:"breaker_transitions"`
}

// String renders one report line.
func (r *ChaosRun) String() string {
	return fmt.Sprintf("%-10s %4d ok %3d dl %3d rej %3d err %3d wrong  avail %5.1f%%  wall %-9v p50 %-10v p99 %-10v faults %.0f retries %.0f fallbacks %.0f",
		r.Label, r.Ok, r.DeadlineExceeded, r.Rejected, r.OtherErrors+r.Canceled, r.Wrong,
		100*r.Availability, r.Wall.Round(time.Millisecond),
		r.P50.Round(time.Microsecond), r.P99.Round(time.Microsecond),
		r.FaultsInjected, r.Retries, r.Fallbacks)
}

// ChaosReport pairs the healthy baseline with the chaos run over the same
// deterministic stream.
type ChaosReport struct {
	Plan    string    `json:"plan"`
	Seed    uint64    `json:"fault_seed"`
	Healthy *ChaosRun `json:"healthy"`
	Chaos   *ChaosRun `json:"chaos"`
}

// RunChaos replays the stream twice through the resilient executor — once
// healthy, once under the fault plan — and verifies every successful answer
// against a serial healthy oracle. The point of the exercise: injected
// faults may cost latency and (past the deadline) availability, but they
// must never change a prediction that is returned.
func RunChaos(cfg ChaosConfig) (*ChaosReport, error) {
	if cfg.Clients <= 0 {
		cfg.Clients = 8
	}
	if cfg.FaultSpec == "" {
		cfg.FaultSpec = DefaultChaosPlan
	}
	if cfg.FaultSeed == 0 {
		cfg.FaultSeed = 1
	}
	plan, err := faults.Parse(cfg.FaultSpec)
	if err != nil {
		return nil, fmt.Errorf("exec: chaos plan: %w", err)
	}

	oracle, err := chaosOracle(cfg.Load)
	if err != nil {
		return nil, err
	}

	healthy, err := runChaosPass(cfg, "healthy", nil, oracle)
	if err != nil {
		return nil, err
	}
	inj, err := faults.NewInjector(cfg.FaultSeed, plan)
	if err != nil {
		return nil, err
	}
	chaos, err := runChaosPass(cfg, "chaos", inj, oracle)
	if err != nil {
		return nil, err
	}
	return &ChaosReport{Plan: cfg.FaultSpec, Seed: cfg.FaultSeed, Healthy: healthy, Chaos: chaos}, nil
}

// chaosOracle computes the expected predictions for every stream query by
// running the workload serially through a fault-free pipeline.
func chaosOracle(load LoadConfig) ([][]int, error) {
	env, err := BuildLoadEnv(load, nil)
	if err != nil {
		return nil, err
	}
	oracle := make([][]int, len(env.Queries))
	for i, q := range env.Queries {
		res, err := env.Pipe.ExecQuery(env.SQLFor(q))
		if err != nil {
			return nil, fmt.Errorf("exec: chaos oracle query %d: %w", i, err)
		}
		oracle[i] = res.Predictions
	}
	return oracle, nil
}

// runChaosPass replays the stream once through a fresh environment.
func runChaosPass(cfg ChaosConfig, label string, inj *faults.Injector, oracle [][]int) (*ChaosRun, error) {
	observer := obs.NewObserver()
	env, err := BuildLoadEnv(cfg.Load, observer)
	if err != nil {
		return nil, err
	}
	if inj != nil {
		env.Pipe.Faults = WireFaultMetrics(inj, observer.Metrics())
	}
	e := New(env.Pipe, cfg.Exec)
	defer func() {
		cctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = e.Close(cctx)
	}()

	rep := &ChaosRun{Label: label, Queries: len(env.Queries)}
	lats := make([]time.Duration, len(env.Queries))
	outcomes := make([]error, len(env.Queries))
	wrong := make([]bool, len(env.Queries))

	start := time.Now()
	var next atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(env.Queries) {
					return
				}
				ctx := context.Background()
				var cancel context.CancelFunc = func() {}
				if cfg.Deadline > 0 {
					ctx, cancel = context.WithTimeout(ctx, cfg.Deadline)
				}
				t0 := time.Now()
				res, err := e.Submit(ctx, env.SQLFor(env.Queries[i]))
				lats[i] = time.Since(t0)
				cancel()
				outcomes[i] = err
				if err == nil && !equalInts(res.Predictions, oracle[i]) {
					wrong[i] = true
				}
			}
		}()
	}
	wg.Wait()
	rep.Wall = time.Since(start)

	okLats := make([]time.Duration, 0, len(lats))
	for i, err := range outcomes {
		switch {
		case err == nil:
			rep.Ok++
			okLats = append(okLats, lats[i])
			if wrong[i] {
				rep.Wrong++
			}
		case errors.Is(err, context.DeadlineExceeded):
			rep.DeadlineExceeded++
		case errors.Is(err, context.Canceled):
			rep.Canceled++
		case errors.Is(err, ErrRejected):
			rep.Rejected++
		default:
			rep.OtherErrors++
		}
	}
	if rep.Queries > 0 {
		rep.Availability = float64(rep.Ok) / float64(rep.Queries)
	}
	rep.Mean, rep.P50, rep.P99 = latencySummary(okLats)

	var buf bytes.Buffer
	if err := observer.Metrics().WritePrometheus(&buf); err != nil {
		return nil, err
	}
	text := buf.String()
	rep.FaultsInjected = metricTotal(text, MetricFaultsInjectedTotal)
	rep.Retries = metricTotal(text, MetricRetriesTotal)
	rep.Fallbacks = metricTotal(text, MetricFallbacksTotal)
	rep.BreakerTransitions = metricTotal(text, MetricBreakerTransitionsTotal)
	return rep, nil
}

// metricTotal sums every sample of a counter across its label sets in a
// Prometheus exposition.
func metricTotal(exposition, name string) float64 {
	var total float64
	for _, line := range strings.Split(exposition, "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		if !strings.HasPrefix(rest, "{") && !strings.HasPrefix(rest, " ") {
			continue // a longer metric name sharing the prefix
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			continue
		}
		total += v
	}
	return total
}

// equalInts reports whether two prediction vectors match exactly.
func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
