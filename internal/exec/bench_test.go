package exec

import (
	"testing"
	"time"

	"accelscore/internal/obs"
)

// BenchmarkServeThroughput replays one generated scoring stream through the
// serialized global-mutex baseline and the concurrent executor at several
// worker counts, with and without request coalescing. Each iteration runs
// against a fresh environment so the model cache starts cold, matching how
// cmd/loadgen -bench measures. The qps metric is what results/
// throughput_bench.md tabulates (that file is produced by the loadgen run,
// which uses heavier models than this test-sized stream).
func BenchmarkServeThroughput(b *testing.B) {
	cfg := LoadConfig{
		Queries:      120,
		Seed:         1,
		TableRows:    4,
		TreeChoices:  []int{512},
		DepthChoices: []int{8, 10},
	}
	opt := RunOptions{Clients: 8}
	cases := []struct {
		name string
		mk   func(env *LoadEnv) QueryRunner
	}{
		{"serialized", func(env *LoadEnv) QueryRunner {
			return &SerializedRunner{Pipe: env.Pipe}
		}},
		{"executor-w1", func(env *LoadEnv) QueryRunner {
			return New(env.Pipe, Config{Workers: 1})
		}},
		{"executor-w4", func(env *LoadEnv) QueryRunner {
			return New(env.Pipe, Config{Workers: 4})
		}},
		{"executor-w8", func(env *LoadEnv) QueryRunner {
			return New(env.Pipe, Config{Workers: 8})
		}},
		{"executor-w4-coalesce", func(env *LoadEnv) QueryRunner {
			return New(env.Pipe, Config{Workers: 4, CoalesceWindow: time.Millisecond, MaxBatch: 4})
		}},
		{"executor-w8-coalesce", func(env *LoadEnv) QueryRunner {
			return New(env.Pipe, Config{Workers: 8, CoalesceWindow: time.Millisecond, MaxBatch: 4})
		}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			var qps, wall float64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				env, err := BuildLoadEnv(cfg, obs.NewObserver())
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				rep, err := RunLoad(env, tc.mk(env), tc.name, opt)
				if err != nil {
					b.Fatal(err)
				}
				if rep.Ok != cfg.Queries {
					b.Fatalf("%d/%d queries ok (%d rejected, %d errors)",
						rep.Ok, cfg.Queries, rep.Rejected, rep.Errors)
				}
				qps += rep.ThroughputQPS
				wall += rep.Wall.Seconds()
			}
			b.ReportMetric(qps/float64(b.N), "qps")
			b.ReportMetric(wall/float64(b.N)*1e3, "ms/stream")
		})
	}
}
