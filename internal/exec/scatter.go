// Shard-aware scatter dispatch for the scale-out serving tier. A Dispatcher
// owns one circuit breaker per shard (the same breaker machinery the
// executor uses per device) and fans a query's partitions out concurrently.
// Shards are data-symmetric replicas — every shard holds the full table and
// any shard can score any partition — so resilience is rerouting: when a
// shard's breaker is open or a sub-call fails, its partition moves to the
// next healthy shard. Only when every route is exhausted does a partition
// degrade to a typed partial result (PartialError), never to silently
// missing or zero-valued predictions.
package exec

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"accelscore/internal/pipeline"
)

// ErrShardBreakerOpen is the per-partition error when every shard that
// could serve it sits behind an open circuit.
var ErrShardBreakerOpen = errors.New("exec: all shard circuit breakers open")

// ShardFunc executes one partition of a query on one shard, returning the
// shard's (opaque to the dispatcher) sub-result. Implementations signal
// query-level errors — ones that would fail identically on every replica,
// like a malformed statement — by wrapping them with NoReroute.
type ShardFunc func(ctx context.Context, shard int, part pipeline.Partition) (any, error)

// noRerouteError marks an error as the query's fault, not the shard's:
// rerouting would fail everywhere, and the shard's breaker stays untouched.
type noRerouteError struct{ err error }

func (e *noRerouteError) Error() string { return e.err.Error() }
func (e *noRerouteError) Unwrap() error { return e.err }

// NoReroute wraps an error so the dispatcher fails the partition
// immediately instead of rerouting it and charging the shard's breaker.
func NoReroute(err error) error {
	if err == nil {
		return nil
	}
	return &noRerouteError{err: err}
}

// rerouteable reports whether the dispatcher may retry err on another shard.
func rerouteable(err error) bool {
	var nr *noRerouteError
	return !errors.As(err, &nr)
}

// IsNoReroute reports whether err is a query-level error (wrapped by
// NoReroute somewhere in its chain): every replica would fail identically,
// so the caller should fail the query rather than degrade to partial
// results.
func IsNoReroute(err error) bool { return err != nil && !rerouteable(err) }

// DispatchResult is one partition's outcome.
type DispatchResult struct {
	// Part is the partition this result covers.
	Part pipeline.Partition
	// Shard is the shard that produced Value (or, when every route failed,
	// the partition's preferred shard — the original fault).
	Shard int
	// Reroutes is how many other shards were tried before Shard.
	Reroutes int
	// Value is the ShardFunc result (nil when Err is set).
	Value any
	// Err is the partition's terminal error after every route failed.
	Err error
	// Latency is the wall time of the successful attempt (or of the whole
	// failed route sequence).
	Latency time.Duration
	// Hedged reports a hedge launched for this partition; HedgeWon reports
	// the hedge attempt's result was the one used.
	Hedged   bool
	HedgeWon bool
}

// GateOutcome classifies how an acquired dispatch attempt ended, feeding
// the gate's passive health signals.
type GateOutcome int

const (
	// GateAbandoned: the attempt never meaningfully ran (breaker refusal,
	// caller cancellation, reaped hedge loser) — no health signal.
	GateAbandoned GateOutcome = iota
	// GateSuccess: the shard answered correctly.
	GateSuccess
	// GateFailure: the shard failed the attempt.
	GateFailure
)

// ShardGate vetoes dispatch to unhealthy shards and meters controlled
// rejoin traffic. Acquire reports whether shard may take one sub-query now
// (false for quarantined shards, or rejoining shards at their trickle
// limit); a true return must be paired with exactly one Release carrying
// the attempt's outcome.
type ShardGate interface {
	Acquire(shard int) bool
	Release(shard int, outcome GateOutcome, latency time.Duration)
}

// DispatcherConfig tunes a shard dispatcher.
type DispatcherConfig struct {
	// Shards is the replica count (required, >= 1).
	Shards int
	// BreakerThreshold opens a shard's circuit after this many consecutive
	// failures (default 3; negative disables the breakers).
	BreakerThreshold int
	// BreakerCooldown is the open-circuit cooldown before one half-open
	// probe (default 250ms).
	BreakerCooldown time.Duration
	// MaxReroutes bounds how many ADDITIONAL shards a partition may try
	// after its preferred one (default Shards-1: every replica).
	MaxReroutes int
	// OnBreakerChange, when set, observes shard circuit transitions (for
	// metrics); state uses the breaker's metric encoding 0/1/2.
	OnBreakerChange func(shard int, state int)
	// Gate, when set, vetoes dispatch per shard (health state machine:
	// quarantined shards refuse, rejoining shards trickle) and receives
	// passive success/failure/latency signals from every attempt.
	Gate ShardGate
	// Hedge, when set (with Delay and Budget), enables tail-latency
	// hedging for hop-0 attempts.
	Hedge *HedgePolicy
}

// Dispatcher scatters partitions across shard replicas with per-shard
// circuit breakers and reroute-on-failure.
type Dispatcher struct {
	cfg      DispatcherConfig
	breakers []*breaker
}

// NewDispatcher builds a dispatcher over cfg.Shards replicas.
func NewDispatcher(cfg DispatcherConfig) (*Dispatcher, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("exec: dispatcher needs at least one shard, got %d", cfg.Shards)
	}
	if cfg.BreakerThreshold == 0 {
		cfg.BreakerThreshold = 3
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 250 * time.Millisecond
	}
	if cfg.MaxReroutes <= 0 {
		cfg.MaxReroutes = cfg.Shards - 1
	}
	d := &Dispatcher{cfg: cfg, breakers: make([]*breaker, cfg.Shards)}
	if cfg.BreakerThreshold > 0 {
		for i := range d.breakers {
			shard := i
			var onChange func(breakerState)
			if cfg.OnBreakerChange != nil {
				onChange = func(s breakerState) { cfg.OnBreakerChange(shard, int(s)) }
			}
			d.breakers[i] = newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, onChange)
		}
	}
	return d, nil
}

// Shards returns the replica count.
func (d *Dispatcher) Shards() int { return d.cfg.Shards }

// ShardState returns shard i's circuit state in the metric encoding
// (0 closed, 1 half-open, 2 open).
func (d *Dispatcher) ShardState(i int) int { return int(d.breakers[i].current()) }

// ShardStateName returns shard i's circuit state as its label spelling.
func (d *Dispatcher) ShardStateName(i int) string { return d.breakers[i].current().String() }

// NoteFailure charges shard i's breaker with a failure observed outside a
// Scatter call (e.g. a failed health probe), accelerating circuit opening.
func (d *Dispatcher) NoteFailure(i int) { d.breakers[i].failure() }

// gateAcquire consults the configured gate (nil gate admits everything).
func (d *Dispatcher) gateAcquire(shard int) bool {
	if d.cfg.Gate == nil {
		return true
	}
	return d.cfg.Gate.Acquire(shard)
}

// gateRelease pairs a successful gateAcquire with its outcome.
func (d *Dispatcher) gateRelease(shard int, outcome GateOutcome, latency time.Duration) {
	if d.cfg.Gate != nil {
		d.cfg.Gate.Release(shard, outcome, latency)
	}
}

// Scatter runs do once per partition, concurrently, and returns one
// DispatchResult per partition in input order. Partition k prefers shard
// k mod Shards; a failure or an open breaker routes it onward through the
// remaining replicas (up to MaxReroutes extra attempts). Scatter never
// fabricates data: a partition with no surviving route carries Err.
func (d *Dispatcher) Scatter(ctx context.Context, parts []pipeline.Partition, do ShardFunc) []DispatchResult {
	out := make([]DispatchResult, len(parts))
	var wg sync.WaitGroup
	for i, part := range parts {
		wg.Add(1)
		go func(i int, part pipeline.Partition) {
			defer wg.Done()
			out[i] = d.route(ctx, part, do)
		}(i, part)
	}
	wg.Wait()
	return out
}

// route tries one partition on its preferred shard and reroutes on failure.
func (d *Dispatcher) route(ctx context.Context, part pipeline.Partition, do ShardFunc) DispatchResult {
	n := d.cfg.Shards
	preferred := part.Index % n
	res := DispatchResult{Part: part, Shard: preferred}
	start := time.Now()
	if d.cfg.Hedge != nil {
		d.cfg.Hedge.Budget.earn()
	}

	var errs []error
	attempted := false
	for hop := 0; hop <= d.cfg.MaxReroutes && hop < n; hop++ {
		shard := (preferred + hop) % n
		if cerr := ctx.Err(); cerr != nil {
			res.Err = cerr
			res.Latency = time.Since(start)
			return res
		}
		if !d.gateAcquire(shard) {
			errs = append(errs, fmt.Errorf("shard %d: quarantined", shard))
			continue
		}
		br := d.breakers[shard]
		if !br.allow() {
			d.gateRelease(shard, GateAbandoned, 0)
			errs = append(errs, fmt.Errorf("shard %d: circuit open", shard))
			continue
		}
		attempted = true
		attemptStart := time.Now()

		if hop == 0 && d.hedging() {
			// The hedged attempt settles breaker and gate accounting for
			// every shard it touches.
			hr := d.hedgedAttempt(ctx, shard, br, part, do)
			res.Hedged = res.Hedged || hr.hedged
			if hr.err == nil {
				res.Shard = hr.shard
				res.Value = hr.value
				res.HedgeWon = hr.hedgeWon
				res.Latency = time.Since(attemptStart)
				return res
			}
			if !rerouteable(hr.err) {
				res.Shard = hr.shard
				res.Err = hr.err
				res.Latency = time.Since(start)
				return res
			}
			if ctx.Err() != nil {
				res.Shard = shard
				res.Err = ctx.Err()
				res.Latency = time.Since(start)
				return res
			}
			res.Reroutes++
			errs = append(errs, hr.attemptErrs...)
			res.Shard = shard
			continue
		}

		v, err := do(ctx, shard, part)
		lat := time.Since(attemptStart)
		if err == nil {
			br.success()
			d.gateRelease(shard, GateSuccess, lat)
			res.Shard = shard
			res.Value = v
			res.Latency = lat // successful attempt only
			return res
		}
		if !rerouteable(err) {
			// The query itself is bad; the shard answered correctly.
			br.success()
			d.gateRelease(shard, GateSuccess, lat)
			res.Shard = shard
			res.Err = err
			res.Latency = time.Since(start)
			return res
		}
		if ctx.Err() != nil {
			// The caller's budget expired mid-call; don't blame the shard.
			br.abandon()
			d.gateRelease(shard, GateAbandoned, lat)
			res.Shard = shard
			res.Err = ctx.Err()
			res.Latency = time.Since(start)
			return res
		}
		br.failure()
		d.gateRelease(shard, GateFailure, lat)
		res.Reroutes++
		errs = append(errs, fmt.Errorf("shard %d: %w", shard, err))
		res.Shard = shard
	}
	if !attempted {
		errs = append(errs, ErrShardBreakerOpen)
	}
	res.Err = &RouteError{Preferred: preferred, Attempts: errs}
	// Name the original fault — the preferred shard — not the last reroute
	// target the partition happened to die on.
	res.Shard = preferred
	res.Latency = time.Since(start)
	return res
}

// RouteError is a partition's terminal error after every route was
// exhausted. Its message and cause lead with the PREFERRED shard's own
// failure — the original fault — rather than the last reroute target, and
// Unwrap exposes every per-shard attempt error so errors.Is/As keep
// working across the whole chain.
type RouteError struct {
	// Preferred is the partition's home shard (part.Index % shards).
	Preferred int
	// Attempts holds each route's failure in attempt order: the preferred
	// shard's error first, reroute targets after it.
	Attempts []error
}

// Error implements error, leading with the original (preferred-shard)
// failure.
func (e *RouteError) Error() string {
	if len(e.Attempts) == 0 {
		return fmt.Sprintf("exec: shard %d: no route attempted", e.Preferred)
	}
	first := e.Attempts[0].Error()
	if len(e.Attempts) == 1 {
		return first
	}
	rest := make([]string, 0, len(e.Attempts)-1)
	for _, a := range e.Attempts[1:] {
		rest = append(rest, a.Error())
	}
	return fmt.Sprintf("%s (reroutes also failed: %s)", first, strings.Join(rest, "; "))
}

// Unwrap exposes every attempt error for errors.Is/As.
func (e *RouteError) Unwrap() []error { return e.Attempts }

// Cause returns the preferred shard's own failure (the first attempt).
func (e *RouteError) Cause() error {
	if len(e.Attempts) == 0 {
		return nil
	}
	return e.Attempts[0]
}

// PartialError is the typed "partial results" outcome: some partitions have
// no surviving route. Callers that cannot tolerate gaps fail the query;
// callers that can (the router's partial mode) return the surviving
// partitions with an explicit partial marker, never splicing in zeros.
type PartialError struct {
	// Missing lists the partition indices with no result, ascending.
	Missing []int
	// Errs maps each missing partition index to its terminal error.
	Errs map[int]error
}

// Error implements error.
func (p *PartialError) Error() string {
	parts := make([]string, 0, len(p.Missing))
	for _, k := range p.Missing {
		parts = append(parts, fmt.Sprintf("%d: %v", k, p.Errs[k]))
	}
	return fmt.Sprintf("exec: partial result, %d partition(s) missing [%s]",
		len(p.Missing), strings.Join(parts, "; "))
}

// Partial inspects a scatter outcome and returns the typed PartialError when
// any partition failed (nil when all succeeded).
func Partial(results []DispatchResult) *PartialError {
	var pe *PartialError
	for _, r := range results {
		if r.Err == nil {
			continue
		}
		if pe == nil {
			pe = &PartialError{Errs: make(map[int]error)}
		}
		pe.Missing = append(pe.Missing, r.Part.Index)
		pe.Errs[r.Part.Index] = r.Err
	}
	if pe != nil {
		sort.Ints(pe.Missing)
	}
	return pe
}
