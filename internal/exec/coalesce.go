package exec

import (
	"context"
	"sync/atomic"
	"time"

	"accelscore/internal/pipeline"
)

// pendingBatch is one open coalescing batch: the first query for a
// (model, backend) key becomes the leader; companions arriving before the
// batch seals join as followers. The batch seals when the window timer
// fires, when MaxBatch queries have joined, or — group-commit style — the
// moment the previous batch for the same key finishes executing, whichever
// comes first. At that point the leader executes it as ONE pipeline run and
// every member receives its own QueryResult. The chained seal is what makes
// the batch size adapt to load without added latency: under a steady stream
// the window timer only ever pays off the first batch per key.
//
// Each member carries its own context: members whose deadline has already
// expired when the batch executes are shed individually (per-member err),
// and the batch itself runs under a context that is canceled as soon as
// every member has given up — a batch of abandoned queries stops consuming
// the device.
type pendingBatch struct {
	key   string
	reqs  []*pipeline.ScoreRequest
	ctxs  []context.Context
	timer *time.Timer

	sealed bool
	ready  chan struct{} // closed at seal; wakes the leader

	results []*pipeline.QueryResult
	errs    []error       // per-member errors (expired members); set before done closes
	err     error         // batch-wide error for members that actually executed
	done    chan struct{} // closed after execution; wakes followers
}

// memberOutcome returns member idx's result or error after done has closed.
func (b *pendingBatch) memberOutcome(idx int) (*pipeline.QueryResult, error) {
	if b.errs != nil && b.errs[idx] != nil {
		return nil, b.errs[idx]
	}
	if b.err != nil {
		return nil, b.err
	}
	return b.results[idx], nil
}

// coalesceKey groups queries that can share one pipeline run. Input tables
// may differ (the pipeline snapshots each), so the key is what the batch
// must agree on: the model, the backend, and the fused-query shape (the
// canonical pushed-down WHERE plus the aggregation mode) — a filtered query
// and an unfiltered one cannot share a backend call.
func coalesceKey(req *pipeline.ScoreRequest) string {
	return req.Model + "\x00" + req.Backend + "\x00" + req.FusionKey()
}

// coalesce joins or opens the batch for req's key and blocks until the
// batch has executed, returning this query's own result. A follower whose
// context expires while waiting abandons the batch (its slot still scores;
// the result is discarded) rather than holding its caller hostage.
func (e *Executor) coalesce(ctx context.Context, req *pipeline.ScoreRequest) (*pipeline.QueryResult, error) {
	key := coalesceKey(req)
	e.mu.Lock()
	if b, ok := e.pending[key]; ok {
		// Follower: join the open batch. Sealed batches are removed from
		// pending, so this batch is still accepting members.
		idx := len(b.reqs)
		b.reqs = append(b.reqs, req)
		b.ctxs = append(b.ctxs, ctx)
		if len(b.reqs) >= e.cfg.MaxBatch {
			e.sealLocked(b)
		}
		e.mu.Unlock()
		select {
		case <-b.done:
			return b.memberOutcome(idx)
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	// Leader: open a batch and arm the window timer.
	b := &pendingBatch{
		key:   key,
		reqs:  []*pipeline.ScoreRequest{req},
		ctxs:  []context.Context{ctx},
		ready: make(chan struct{}),
		done:  make(chan struct{}),
	}
	e.pending[key] = b
	b.timer = time.AfterFunc(e.cfg.CoalesceWindow, func() {
		e.mu.Lock()
		e.sealLocked(b)
		e.mu.Unlock()
	})
	e.mu.Unlock()

	<-b.ready
	e.mu.Lock()
	e.inflightKeys[key]++
	e.mu.Unlock()
	e.executeBatch(b)
	e.mu.Lock()
	e.inflightKeys[key]--
	if e.inflightKeys[key] == 0 {
		delete(e.inflightKeys, key)
		// Group commit: what queued behind this run executes next as one
		// batch without waiting out its window — but only if it actually
		// batched. Chaining singletons would convoy batch-of-1 runs, each
		// paying the full fixed cost the coalescer exists to amortize.
		if nb, ok := e.pending[key]; ok && len(nb.reqs) >= 2 {
			e.sealLocked(nb)
		}
	}
	e.mu.Unlock()
	close(b.done)
	return b.memberOutcome(0)
}

// executeBatch sheds members whose deadline already expired, derives the
// batch context from the survivors, runs them as one pipeline call, and
// fans results back out to member slots. It fills b.results/b.errs/b.err;
// the caller closes b.done.
func (e *Executor) executeBatch(b *pendingBatch) {
	b.errs = make([]error, len(b.reqs))
	live := make([]int, 0, len(b.reqs))
	for i, c := range b.ctxs {
		if err := c.Err(); err != nil {
			b.errs[i] = err
		} else {
			live = append(live, i)
		}
	}
	if shed := len(b.reqs) - len(live); shed > 0 {
		e.noteExpiredShed(shed)
	}
	if len(live) == 0 {
		return
	}

	liveCtxs := make([]context.Context, len(live))
	liveReqs := make([]*pipeline.ScoreRequest, len(live))
	for j, i := range live {
		liveCtxs[j] = b.ctxs[i]
		liveReqs[j] = b.reqs[i]
	}
	bctx, cancel := e.batchContext(liveCtxs)
	defer cancel()

	results, err := e.runBatch(bctx, liveReqs)
	if err != nil {
		b.err = err
		return
	}
	b.results = make([]*pipeline.QueryResult, len(b.reqs))
	for j, i := range live {
		b.results[i] = results[j]
	}
}

// batchContext derives the context one coalesced run executes under: rooted
// at the executor (Close aborts it), bounded by the LATEST member deadline
// when every member has one (the run is still useful to the member with the
// most budget), and canceled outright once every member context is done —
// nobody is waiting for the predictions anymore.
func (e *Executor) batchContext(ctxs []context.Context) (context.Context, context.CancelFunc) {
	bctx, cancel := context.WithCancel(e.rootCtx)
	latest, all := time.Time{}, true
	for _, c := range ctxs {
		d, ok := c.Deadline()
		if !ok {
			all = false
			break
		}
		if d.After(latest) {
			latest = d
		}
	}
	if all && len(ctxs) > 0 {
		var dcancel context.CancelFunc
		bctx, dcancel = context.WithDeadline(bctx, latest)
		inner := cancel
		cancel = func() { dcancel(); inner() }
	}
	remaining := int64(len(ctxs))
	stops := make([]func() bool, 0, len(ctxs))
	for _, c := range ctxs {
		stops = append(stops, context.AfterFunc(c, func() {
			if atomic.AddInt64(&remaining, -1) == 0 {
				cancel()
			}
		}))
	}
	final := cancel
	return bctx, func() {
		for _, stop := range stops {
			stop()
		}
		final()
	}
}

// sealLocked closes a batch to new members and wakes its leader. Callers
// hold e.mu; sealing twice (timer vs. MaxBatch race) is a no-op.
func (e *Executor) sealLocked(b *pendingBatch) {
	if b.sealed {
		return
	}
	b.sealed = true
	delete(e.pending, b.key)
	if b.timer != nil {
		b.timer.Stop()
	}
	close(b.ready)
}
