package exec

import (
	"time"

	"accelscore/internal/pipeline"
)

// pendingBatch is one open coalescing batch: the first query for a
// (model, backend) key becomes the leader; companions arriving before the
// batch seals join as followers. The batch seals when the window timer
// fires, when MaxBatch queries have joined, or — group-commit style — the
// moment the previous batch for the same key finishes executing, whichever
// comes first. At that point the leader executes it as ONE pipeline run and
// every member receives its own QueryResult. The chained seal is what makes
// the batch size adapt to load without added latency: under a steady stream
// the window timer only ever pays off the first batch per key.
type pendingBatch struct {
	key   string
	reqs  []*pipeline.ScoreRequest
	timer *time.Timer

	sealed bool
	ready  chan struct{} // closed at seal; wakes the leader

	results []*pipeline.QueryResult
	err     error
	done    chan struct{} // closed after execution; wakes followers
}

// coalesceKey groups queries that can share one pipeline run. Input tables
// may differ (the pipeline snapshots each), so the key is only the pair the
// batch must agree on.
func coalesceKey(req *pipeline.ScoreRequest) string {
	return req.Model + "\x00" + req.Backend
}

// coalesce joins or opens the batch for req's key and blocks until the
// batch has executed, returning this query's own result.
func (e *Executor) coalesce(req *pipeline.ScoreRequest) (*pipeline.QueryResult, error) {
	key := coalesceKey(req)
	e.mu.Lock()
	if b, ok := e.pending[key]; ok {
		// Follower: join the open batch. Sealed batches are removed from
		// pending, so this batch is still accepting members.
		idx := len(b.reqs)
		b.reqs = append(b.reqs, req)
		if len(b.reqs) >= e.cfg.MaxBatch {
			e.sealLocked(b)
		}
		e.mu.Unlock()
		<-b.done
		if b.err != nil {
			return nil, b.err
		}
		return b.results[idx], nil
	}
	// Leader: open a batch and arm the window timer.
	b := &pendingBatch{
		key:   key,
		reqs:  []*pipeline.ScoreRequest{req},
		ready: make(chan struct{}),
		done:  make(chan struct{}),
	}
	e.pending[key] = b
	b.timer = time.AfterFunc(e.cfg.CoalesceWindow, func() {
		e.mu.Lock()
		e.sealLocked(b)
		e.mu.Unlock()
	})
	e.mu.Unlock()

	<-b.ready
	e.mu.Lock()
	e.inflightKeys[key]++
	e.mu.Unlock()
	b.results, b.err = e.runBatch(b.reqs)
	e.mu.Lock()
	e.inflightKeys[key]--
	if e.inflightKeys[key] == 0 {
		delete(e.inflightKeys, key)
		// Group commit: what queued behind this run executes next as one
		// batch without waiting out its window — but only if it actually
		// batched. Chaining singletons would convoy batch-of-1 runs, each
		// paying the full fixed cost the coalescer exists to amortize.
		if nb, ok := e.pending[key]; ok && len(nb.reqs) >= 2 {
			e.sealLocked(nb)
		}
	}
	e.mu.Unlock()
	close(b.done)
	if b.err != nil {
		return nil, b.err
	}
	return b.results[0], nil
}

// sealLocked closes a batch to new members and wakes its leader. Callers
// hold e.mu; sealing twice (timer vs. MaxBatch race) is a no-op.
func (e *Executor) sealLocked(b *pendingBatch) {
	if b.sealed {
		return
	}
	b.sealed = true
	delete(e.pending, b.key)
	if b.timer != nil {
		b.timer.Stop()
	}
	close(b.ready)
}
