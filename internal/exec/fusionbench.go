// Fusion benchmark: fused scoring (WHERE pushed into the kernel, projected
// snapshots) against the pre-fusion client flow (score every row, filter the
// materialized predictions afterwards) over a selectivity x table-width
// matrix.
//
// Both sides run through the same pipeline with the caches off, so every
// query pays its own table->dataset conversion and model deserialization —
// the per-invocation pre-processing regime the paper's Fig. 11 breakdown
// charges to every scoring call. The unfused baseline issues the same
// statement without @where and filters the returned predictions in the
// harness, exactly as a pre-fusion client had to.
//
// Projection pruning is measured separately, as a conversion microbenchmark
// per table: the legacy full-width snapshot cannot even feed the engines when
// the table carries non-feature REAL columns (they validate the feature
// count), so its cost is compared to the pruned conversion directly rather
// than through a query that would be rejected.
package exec

import (
	"fmt"
	"sort"
	"time"

	"accelscore/internal/dataset"
	"accelscore/internal/db"
	"accelscore/internal/forest"
	"accelscore/internal/hw"
	"accelscore/internal/pipeline"
	"accelscore/internal/platform"
	"accelscore/internal/tensor"
)

// FusionBenchConfig parameterizes the matrix. The zero value gets defaults
// from RunFusionBench.
type FusionBenchConfig struct {
	// Rows sizes the scoring input tables (default 8192).
	Rows int
	// Trees and Depth shape the model (defaults 256 trees, depth 10) — large
	// enough that traversal dominates, so skipped rows are visible wins.
	Trees int
	Depth int
	// Seed makes training deterministic (default 1).
	Seed uint64
	// Repeats is the measured repetitions per cell; the median is reported
	// (default 5).
	Repeats int
	// Selectivities are the WHERE pass fractions (default 1%, 10%, 50%, 100%).
	Selectivities []float64
	// JunkCols is how many non-feature REAL columns pad the wide table
	// (default 46, for a ~50-column table over a 4-feature model).
	JunkCols int
	// Backend is the engine under test (default CPU_SKLearn).
	Backend string
}

// FusionCell is one (table, selectivity) measurement.
type FusionCell struct {
	Table       string  `json:"table"`
	RealColumns int     `json:"real_columns"`
	Selectivity float64 `json:"selectivity"`
	RowsScanned int     `json:"rows_scanned"`
	RowsScored  int     `json:"rows_scored"`
	// Median wall time per query, fused vs unfused (score-all + post-filter).
	FusedNS   int64 `json:"fused_ns"`
	UnfusedNS int64 `json:"unfused_ns"`
	// Median simulated end-to-end timeline totals for the same queries.
	FusedSimNS   int64 `json:"fused_sim_ns"`
	UnfusedSimNS int64 `json:"unfused_sim_ns"`
	// Speedup is UnfusedNS / FusedNS (measured wall time).
	Speedup float64 `json:"speedup"`
}

// FusionTableStat is the projection-pruning microbenchmark for one table:
// the cost of converting every REAL column versus only the model's features.
type FusionTableStat struct {
	Table       string `json:"table"`
	RealColumns int    `json:"real_columns"`
	FeatureCols int    `json:"feature_columns"`
	// Median conversion time of a full-width vs a feature-pruned snapshot.
	ConvertFullNS   int64   `json:"convert_full_ns"`
	ConvertPrunedNS int64   `json:"convert_pruned_ns"`
	ConvertSpeedup  float64 `json:"convert_speedup"`
}

// FusionBenchReport is the full matrix plus the configuration that produced
// it.
type FusionBenchReport struct {
	Rows          int               `json:"rows"`
	Trees         int               `json:"trees"`
	Depth         int               `json:"depth"`
	Repeats       int               `json:"repeats"`
	JunkCols      int               `json:"junk_cols"`
	Seed          uint64            `json:"seed"`
	Backend       string            `json:"backend"`
	Selectivities []float64         `json:"selectivities"`
	Tables        []FusionTableStat `json:"tables"`
	Cells         []FusionCell      `json:"cells"`
}

// fusionTableSpec pairs a benchmark table with its junk-column width.
type fusionTableSpec struct {
	name string
	junk int
}

// RunFusionBench builds the narrow and wide tables, trains one model, runs
// the selectivity matrix and verifies on every repetition that the fused
// results are bit-identical to post-filtering the unfused ones (and that the
// fused aggregate matches the materialized histogram). Any divergence is an
// error — the benchmark numbers are only worth reporting if the fused path
// returns the same answers.
func RunFusionBench(cfg FusionBenchConfig) (*FusionBenchReport, error) {
	if cfg.Rows <= 0 {
		cfg.Rows = 8192
	}
	if cfg.Trees <= 0 {
		cfg.Trees = 256
	}
	if cfg.Depth <= 0 {
		cfg.Depth = 10
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Repeats <= 0 {
		cfg.Repeats = 5
	}
	if len(cfg.Selectivities) == 0 {
		cfg.Selectivities = []float64{0.01, 0.10, 0.50, 1.00}
	}
	if cfg.JunkCols <= 0 {
		cfg.JunkCols = 46
	}
	if cfg.Backend == "" {
		cfg.Backend = "CPU_SKLearn"
	}

	data := dataset.Iris().Replicate(cfg.Rows)
	f, err := forest.Train(data, forest.ForestConfig{
		NumTrees:  cfg.Trees,
		Tree:      forest.TrainConfig{MaxDepth: cfg.Depth},
		Seed:      cfg.Seed,
		Bootstrap: true,
	})
	if err != nil {
		return nil, err
	}
	d := db.New()
	if err := d.StoreModel("fusion_rf", f); err != nil {
		return nil, err
	}
	specs := []fusionTableSpec{{name: "narrow", junk: 0}, {name: "wide", junk: cfg.JunkCols}}
	for _, s := range specs {
		tbl, err := buildFusionTable(s.name, data, s.junk)
		if err != nil {
			return nil, err
		}
		if err := d.CreateTable(tbl); err != nil {
			return nil, err
		}
	}

	// Caches off: every query converts its input and deserializes its model,
	// isolating what fusion changes about the per-query path. Fused and
	// unfused queries share this pipeline; only the statement differs.
	tb := platform.New()
	pipe := &pipeline.Pipeline{DB: d, Runtime: hw.DefaultRuntime(), Registry: tb.Registry}

	rep := &FusionBenchReport{
		Rows: cfg.Rows, Trees: cfg.Trees, Depth: cfg.Depth, Repeats: cfg.Repeats,
		JunkCols: cfg.JunkCols, Seed: cfg.Seed, Backend: cfg.Backend,
		Selectivities: cfg.Selectivities,
	}
	for _, s := range specs {
		stat, err := convertStat(cfg, d, s, f.FeatureNames)
		if err != nil {
			return nil, err
		}
		rep.Tables = append(rep.Tables, *stat)
		for _, sel := range cfg.Selectivities {
			cell, err := runFusionCell(cfg, pipe, s, sel)
			if err != nil {
				return nil, err
			}
			cell.RealColumns = stat.RealColumns
			rep.Cells = append(rep.Cells, *cell)
		}
	}
	return rep, nil
}

// convertStat measures full-width vs feature-pruned snapshot conversion on
// one table — the projection-pruning win, isolated from scoring.
func convertStat(cfg FusionBenchConfig, d *db.Database, spec fusionTableSpec, features []string) (*FusionTableStat, error) {
	tbl, err := d.Table(spec.name)
	if err != nil {
		return nil, err
	}
	stat := &FusionTableStat{
		Table:       spec.name,
		RealColumns: len(features) + spec.junk,
		FeatureCols: len(features),
	}
	full := make([]int64, 0, cfg.Repeats)
	pruned := make([]int64, 0, cfg.Repeats)
	for r := 0; r < cfg.Repeats+1; r++ {
		t0 := time.Now()
		if _, err := tbl.DatasetFor(nil, 0); err != nil {
			return nil, err
		}
		tf := time.Since(t0)
		t0 = time.Now()
		if _, err := tbl.DatasetFor(features, 0); err != nil {
			return nil, err
		}
		tp := time.Since(t0)
		if r == 0 {
			continue // warm-up round
		}
		full = append(full, tf.Nanoseconds())
		pruned = append(pruned, tp.Nanoseconds())
	}
	stat.ConvertFullNS = medianNS(full)
	stat.ConvertPrunedNS = medianNS(pruned)
	if stat.ConvertPrunedNS > 0 {
		stat.ConvertSpeedup = float64(stat.ConvertFullNS) / float64(stat.ConvertPrunedNS)
	}
	return stat, nil
}

// runFusionCell measures one (table, selectivity) point and checks the fused
// answers against the post-filtered baseline on every repetition.
func runFusionCell(cfg FusionBenchConfig, pipe *pipeline.Pipeline,
	spec fusionTableSpec, sel float64) (*FusionCell, error) {
	cut := sel * float64(cfg.Rows)
	fusedSQL := fmt.Sprintf(
		"EXEC sp_score_model @model='fusion_rf', @data='%s', @backend='%s', @where='sel_key < %g'",
		spec.name, cfg.Backend, cut)
	unfusedSQL := fmt.Sprintf(
		"EXEC sp_score_model @model='fusion_rf', @data='%s', @backend='%s'",
		spec.name, cfg.Backend)

	cell := &FusionCell{Table: spec.name, Selectivity: sel}
	fusedNS := make([]int64, 0, cfg.Repeats)
	unfusedNS := make([]int64, 0, cfg.Repeats)
	fusedSim := make([]int64, 0, cfg.Repeats)
	unfusedSim := make([]int64, 0, cfg.Repeats)
	var lastFused []int

	// One untimed round warms the runtime (allocator, branch history); the
	// pipeline itself has no caches to warm.
	if _, err := pipe.ExecQuery(fusedSQL); err != nil {
		return nil, fmt.Errorf("fusion bench %s@%g fused: %w", spec.name, sel, err)
	}
	if _, err := pipe.ExecQuery(unfusedSQL); err != nil {
		return nil, fmt.Errorf("fusion bench %s@%g unfused: %w", spec.name, sel, err)
	}

	for r := 0; r < cfg.Repeats; r++ {
		t0 := time.Now()
		fres, err := pipe.ExecQuery(fusedSQL)
		tf := time.Since(t0)
		if err != nil {
			return nil, fmt.Errorf("fusion bench %s@%g fused: %w", spec.name, sel, err)
		}

		// The unfused baseline's filter over the materialized predictions is
		// part of the measured client flow, not outside it.
		t0 = time.Now()
		ures, err := pipe.ExecQuery(unfusedSQL)
		if err != nil {
			return nil, fmt.Errorf("fusion bench %s@%g unfused: %w", spec.name, sel, err)
		}
		want := make([]int, 0, len(ures.Predictions))
		for i, p := range ures.Predictions {
			if float64(i) < cut {
				want = append(want, p)
			}
		}
		tu := time.Since(t0)

		// The answer check IS the benchmark's admission ticket: fused
		// predictions must equal filtering the scored-everything baseline.
		if len(fres.Predictions) != len(want) {
			return nil, fmt.Errorf("fusion bench %s@%g DIVERGED: fused returned %d rows, post-filter keeps %d",
				spec.name, sel, len(fres.Predictions), len(want))
		}
		for i := range want {
			if fres.Predictions[i] != want[i] {
				return nil, fmt.Errorf("fusion bench %s@%g DIVERGED at dense row %d: fused %d, post-filtered %d",
					spec.name, sel, i, fres.Predictions[i], want[i])
			}
		}
		fusedNS = append(fusedNS, tf.Nanoseconds())
		unfusedNS = append(unfusedNS, tu.Nanoseconds())
		fusedSim = append(fusedSim, fres.Timeline.Total().Nanoseconds())
		unfusedSim = append(unfusedSim, ures.Timeline.Total().Nanoseconds())
		cell.RowsScanned, cell.RowsScored = fres.RowsScanned, fres.RowsScored
		lastFused = fres.Predictions
	}

	// Fused aggregate consistency (untimed): the GROUP BY histogram over the
	// same predicate must match counting the materialized fused predictions.
	agg, err := pipe.ExecQuery(fmt.Sprintf(
		"SELECT prediction, COUNT(*) FROM PREDICT(@model='fusion_rf', @data='%s', @backend='%s') WHERE sel_key < %g GROUP BY prediction",
		spec.name, cfg.Backend, cut))
	if err != nil {
		return nil, fmt.Errorf("fusion bench %s@%g aggregate: %w", spec.name, sel, err)
	}
	hist := tensor.Bincount(lastFused, 0)
	var total int64
	for row := 0; row < agg.Table.NumRows(); row++ {
		class, count := agg.Table.Cell(row, 0).I, agg.Table.Cell(row, 1).I
		total += count
		if class < 0 || class >= int64(len(hist)) || hist[class] != count {
			return nil, fmt.Errorf("fusion bench %s@%g DIVERGED: aggregate class %d count %d disagrees with materialized histogram",
				spec.name, sel, class, count)
		}
	}
	if total != int64(len(lastFused)) {
		return nil, fmt.Errorf("fusion bench %s@%g DIVERGED: aggregate totals %d rows, fused scored %d",
			spec.name, sel, total, len(lastFused))
	}

	cell.FusedNS = medianNS(fusedNS)
	cell.UnfusedNS = medianNS(unfusedNS)
	cell.FusedSimNS = medianNS(fusedSim)
	cell.UnfusedSimNS = medianNS(unfusedSim)
	if cell.FusedNS > 0 {
		cell.Speedup = float64(cell.UnfusedNS) / float64(cell.FusedNS)
	}
	return cell, nil
}

// buildFusionTable lays out [features..., sel_key, junk_XX..., label]: the
// model's features lead in schema order (so projection engages), sel_key is a
// BIGINT holding the row index (so a `sel_key < cut` predicate has exactly
// known selectivity, and the unfused baseline — whose engines accept only the
// model's feature count — still scores the narrow table), and the junk REAL
// columns are the dead weight projection pruning exists to avoid converting.
func buildFusionTable(name string, data *dataset.Dataset, junk int) (*db.Table, error) {
	cols := make([]db.Column, 0, data.NumFeatures()+junk+2)
	for _, fn := range data.FeatureNames {
		cols = append(cols, db.Column{Name: fn, Type: db.Float32Col})
	}
	cols = append(cols, db.Column{Name: "sel_key", Type: db.Int64Col})
	for j := 0; j < junk; j++ {
		cols = append(cols, db.Column{Name: fmt.Sprintf("junk_%02d", j), Type: db.Float32Col})
	}
	cols = append(cols, db.Column{Name: "label", Type: db.Int64Col})
	tbl, err := db.NewTable(name, cols)
	if err != nil {
		return nil, err
	}
	for i := 0; i < data.NumRecords(); i++ {
		row := make([]db.Value, 0, len(cols))
		for _, v := range data.Row(i) {
			row = append(row, db.Float(v))
		}
		row = append(row, db.Int(int64(i)))
		for j := 0; j < junk; j++ {
			row = append(row, db.Float(float32((i*7+j*13)%101)))
		}
		row = append(row, db.Int(int64(data.Y[i])))
		if err := tbl.Insert(row); err != nil {
			return nil, err
		}
	}
	return tbl, nil
}

// medianNS returns the median of the sample.
func medianNS(xs []int64) int64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]int64(nil), xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}
