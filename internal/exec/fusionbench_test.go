package exec_test

import (
	"math"
	"testing"

	"accelscore/internal/exec"
)

// A small matrix must complete, verify, and produce a full set of cells with
// sane row accounting.
func TestRunFusionBenchSmall(t *testing.T) {
	cfg := exec.FusionBenchConfig{
		Rows:          256,
		Trees:         8,
		Depth:         6,
		Repeats:       1,
		Selectivities: []float64{0.1, 1.0},
		JunkCols:      6,
	}
	rep, err := exec.RunFusionBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * len(cfg.Selectivities); len(rep.Cells) != want {
		t.Fatalf("%d cells, want %d", len(rep.Cells), want)
	}
	for _, c := range rep.Cells {
		if c.RowsScanned != cfg.Rows {
			t.Errorf("%s@%g: scanned %d rows, want %d", c.Table, c.Selectivity, c.RowsScanned, cfg.Rows)
		}
		want := int(math.Ceil(c.Selectivity * float64(cfg.Rows)))
		if c.RowsScored != want {
			t.Errorf("%s@%g: scored %d rows, want %d", c.Table, c.Selectivity, c.RowsScored, want)
		}
		if c.FusedNS <= 0 || c.UnfusedNS <= 0 || c.Speedup <= 0 {
			t.Errorf("%s@%g: missing timings: fused=%d unfused=%d speedup=%g",
				c.Table, c.Selectivity, c.FusedNS, c.UnfusedNS, c.Speedup)
		}
	}
}
