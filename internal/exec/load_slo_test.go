package exec_test

import (
	"testing"
	"time"

	"accelscore/internal/exec"
	"accelscore/internal/obs"
)

func TestClassForRecords(t *testing.T) {
	objs := []obs.Objective{
		{Class: "batch", Latency: time.Second},
		{Class: "interactive", Latency: 10 * time.Millisecond},
	}
	const maxRec = 4096
	if got := exec.ClassForRecords(objs, 1, maxRec); got != "interactive" {
		t.Errorf("records=1 -> %q, want interactive", got)
	}
	if got := exec.ClassForRecords(objs, maxRec, maxRec); got != "batch" {
		t.Errorf("records=max -> %q, want batch", got)
	}
	// Monotone: once a stream crosses into the slower class it never drops
	// back to the tighter one.
	crossed := false
	for r := int64(1); r <= maxRec; r *= 2 {
		c := exec.ClassForRecords(objs, r, maxRec)
		switch c {
		case "batch":
			crossed = true
		case "interactive":
			if crossed {
				t.Fatalf("records=%d classified interactive after batch", r)
			}
		default:
			t.Fatalf("records=%d -> unknown class %q", r, c)
		}
	}
	// Single objective absorbs everything; no objectives yield no class.
	one := []obs.Objective{{Class: "only", Latency: time.Second}}
	if got := exec.ClassForRecords(one, maxRec, maxRec); got != "only" {
		t.Errorf("single objective -> %q, want only", got)
	}
	if got := exec.ClassForRecords(nil, 1, maxRec); got != "" {
		t.Errorf("no objectives -> %q, want empty", got)
	}
}

// TestRunLoadGoodput runs the tiny load harness twice over the same stream:
// with unmissable objectives every query is good, with impossible ones every
// query burns budget — bracketing the goodput accounting from both sides.
func TestRunLoadGoodput(t *testing.T) {
	env, err := exec.BuildLoadEnv(exec.LoadConfig{
		Queries:     16,
		TableRows:   256,
		TreeChoices: []int{4}, DepthChoices: []int{6},
	}, obs.NewObserver())
	if err != nil {
		t.Fatal(err)
	}
	runner := &exec.SerializedRunner{Pipe: env.Pipe}

	loose := []obs.Objective{
		{Class: "interactive", Latency: time.Hour},
		{Class: "batch", Latency: 2 * time.Hour},
	}
	rep, err := exec.RunLoad(env, runner, "loose", exec.RunOptions{Clients: 4, SLO: loose})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goodput != 1.0 {
		t.Errorf("loose objectives: goodput = %v, want 1.0\nreport: %+v", rep.Goodput, rep.SLO)
	}
	var total uint64
	for _, c := range rep.SLO {
		total += c.Total
		if c.Good != c.Total {
			t.Errorf("class %s: good %d != total %d under 1h objective", c.Class, c.Good, c.Total)
		}
	}
	if total != 16 {
		t.Errorf("classified %d queries, want 16", total)
	}

	tight, err := exec.RunLoad(env, runner, "tight", exec.RunOptions{
		Clients: 4, SLO: []obs.Objective{{Class: "default", Latency: time.Nanosecond}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if tight.Goodput != 0 {
		t.Errorf("1ns objective: goodput = %v, want 0", tight.Goodput)
	}
	if len(tight.SLO) != 1 || tight.SLO[0].Total != 16 {
		t.Errorf("1ns objective report: %+v", tight.SLO)
	}

	// No SLO configured: the report stays clean so JSON artifacts omit it.
	plain, err := exec.RunLoad(env, runner, "plain", exec.RunOptions{Clients: 4})
	if err != nil {
		t.Fatal(err)
	}
	if plain.SLO != nil || plain.Goodput != 0 {
		t.Errorf("no-SLO run leaked goodput fields: %+v", plain)
	}
}
