package exec_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"accelscore/internal/exec"
	"accelscore/internal/pipeline"
)

const fusedSQL = "EXEC sp_score_model @model='iris_rf', @data='iris', @backend='CPU_SKLearn', @where='petal_width < 1.5'"
const predictSQL = "SELECT prediction FROM PREDICT(@model='iris_rf', @data='iris', @backend='CPU_SKLearn') WHERE petal_width < 1.5"

// Fused and unfused queries against the same model/backend must land in
// separate coalesced batches: they cannot share a backend call.
func TestCoalesceSeparatesFusedShapes(t *testing.T) {
	p, f, data := newEnv(t, 8, 10, 256)
	e := exec.New(p, exec.Config{Workers: 4, QueueDepth: 32,
		CoalesceWindow: 30 * time.Millisecond, MaxBatch: 8})
	defer e.Close(context.Background())

	wantFiltered := 0
	for i := 0; i < data.NumRecords(); i++ {
		if float64(data.Row(i)[3]) < 1.5 {
			wantFiltered++
		}
	}

	const per = 4
	results := make([]*pipeline.QueryResult, 2*per)
	errs := make([]error, 2*per)
	var wg sync.WaitGroup
	for i := 0; i < 2*per; i++ {
		sql := scoreSQL
		if i%2 == 1 {
			sql = fusedSQL
		}
		wg.Add(1)
		go func(i int, sql string) {
			defer wg.Done()
			results[i], errs[i] = e.Submit(context.Background(), sql)
		}(i, sql)
	}
	wg.Wait()
	for i := 0; i < 2*per; i++ {
		if errs[i] != nil {
			t.Fatalf("query %d: %v", i, errs[i])
		}
		want := data.NumRecords()
		if i%2 == 1 {
			want = wantFiltered
		}
		if len(results[i].Predictions) != want {
			t.Fatalf("query %d: %d predictions, want %d", i, len(results[i].Predictions), want)
		}
	}
	_ = f
}

// PREDICT statements route through the executor's coalescing scoring path,
// not the generic statement path.
func TestSubmitPredictStatement(t *testing.T) {
	p, f, data := newEnv(t, 8, 10, 200)
	e := exec.New(p, exec.Config{Workers: 2, QueueDepth: 8,
		CoalesceWindow: 20 * time.Millisecond, MaxBatch: 4})
	defer e.Close(context.Background())

	var wg sync.WaitGroup
	results := make([]*pipeline.QueryResult, 3)
	errs := make([]error, 3)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = e.Submit(context.Background(), predictSQL)
		}(i)
	}
	wg.Wait()

	want := 0
	for i := 0; i < data.NumRecords(); i++ {
		if float64(data.Row(i)[3]) < 1.5 {
			want++
		}
	}
	batched := false
	for i := range results {
		if errs[i] != nil {
			t.Fatalf("query %d: %v", i, errs[i])
		}
		if len(results[i].Predictions) != want {
			t.Fatalf("query %d: %d predictions, want %d", i, len(results[i].Predictions), want)
		}
		if results[i].BatchSize > 1 {
			batched = true
		}
		for j, pr := range results[i].Predictions {
			if pr != results[0].Predictions[j] {
				t.Fatalf("query %d row %d differs across coalesced members", i, j)
			}
		}
	}
	if !batched {
		t.Log("no coalescing observed (timing-dependent); correctness still verified")
	}
	_ = f
}

// A fused aggregate through the executor returns the histogram table.
func TestSubmitFusedAggregate(t *testing.T) {
	p, f, data := newEnv(t, 8, 10, 150)
	e := exec.New(p, exec.Config{Workers: 2, QueueDepth: 8})
	defer e.Close(context.Background())
	res, err := e.Submit(context.Background(),
		"SELECT prediction, COUNT(*) FROM PREDICT(@model='iris_rf', @data='iris', @backend='CPU_SKLearn') GROUP BY prediction")
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for r := 0; r < res.Table.NumRows(); r++ {
		total += res.Table.Cell(r, 1).I
	}
	if total != int64(data.NumRecords()) {
		t.Fatalf("histogram totals %d rows, want %d", total, data.NumRecords())
	}
	_ = f
}
