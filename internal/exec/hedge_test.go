package exec

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"accelscore/internal/pipeline"
)

// hedgePolicy builds a test policy with a fixed trigger delay and a
// recording outcome sink.
func hedgePolicy(delay time.Duration, budget *HedgeBudget) (*HedgePolicy, *outcomeLog) {
	log := &outcomeLog{}
	return &HedgePolicy{
		Delay:  func(int) time.Duration { return delay },
		Budget: budget,
		Compare: func(primary, hedge any) error {
			if primary != hedge {
				return fmt.Errorf("%v vs %v", primary, hedge)
			}
			return nil
		},
		OnOutcome: log.note,
	}, log
}

type outcomeLog struct {
	mu  sync.Mutex
	out []string
}

func (l *outcomeLog) note(o string) {
	l.mu.Lock()
	l.out = append(l.out, o)
	l.mu.Unlock()
}

func (l *outcomeLog) count(o string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, v := range l.out {
		if v == o {
			n++
		}
	}
	return n
}

// TestHedgeWinBitIdentical stalls the primary so the hedge fires, answers
// identically from the replica, and checks the merged outcome: hedge won,
// value intact, no error.
func TestHedgeWinBitIdentical(t *testing.T) {
	hp, log := hedgePolicy(5*time.Millisecond, NewHedgeBudget(1, 4))
	d, err := NewDispatcher(DispatcherConfig{Shards: 2, Hedge: hp})
	if err != nil {
		t.Fatal(err)
	}
	results := d.Scatter(context.Background(), parts(1),
		func(ctx context.Context, shard int, part pipeline.Partition) (any, error) {
			if shard == 0 { // primary stalls past the trigger
				select {
				case <-time.After(500 * time.Millisecond):
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			}
			return "answer", nil
		})
	r := results[0]
	if r.Err != nil {
		t.Fatalf("hedged partition failed: %v", r.Err)
	}
	if r.Value != "answer" || r.Shard != 1 {
		t.Fatalf("got value %v from shard %d, want answer from shard 1", r.Value, r.Shard)
	}
	if !r.Hedged || !r.HedgeWon {
		t.Fatalf("Hedged=%v HedgeWon=%v, want both true", r.Hedged, r.HedgeWon)
	}
	if log.count(HedgeWin) != 1 {
		t.Fatalf("outcomes %v, want one win", log.out)
	}
}

// TestHedgeMismatchFailsLoudly makes the primary ignore cancellation and
// return a DIFFERENT answer than the hedge: the completed pair must be
// compared and the divergence must fail the query loudly (NoReroute), never
// silently pick one side.
func TestHedgeMismatchFailsLoudly(t *testing.T) {
	hp, log := hedgePolicy(5*time.Millisecond, NewHedgeBudget(1, 4))
	d, err := NewDispatcher(DispatcherConfig{Shards: 2, Hedge: hp})
	if err != nil {
		t.Fatal(err)
	}
	results := d.Scatter(context.Background(), parts(1),
		func(ctx context.Context, shard int, part pipeline.Partition) (any, error) {
			if shard == 0 {
				// Outlive the trigger, ignore the cancel, answer divergently.
				time.Sleep(25 * time.Millisecond)
				return "primary-answer", nil
			}
			return "hedge-answer", nil
		})
	r := results[0]
	if r.Err == nil {
		t.Fatalf("divergent hedge pair returned value %v, want loud failure", r.Value)
	}
	if !IsNoReroute(r.Err) {
		t.Fatalf("mismatch error should be NoReroute, got %v", r.Err)
	}
	if !strings.Contains(r.Err.Error(), "divergent") {
		t.Fatalf("mismatch error %q should name the divergence", r.Err)
	}
	if log.count(HedgeMismatch) != 1 {
		t.Fatalf("outcomes %v, want one mismatch", log.out)
	}
}

// TestHedgeBudgetExhaustion drains the budget and checks further triggers
// are denied: the primary's answer is awaited instead, and no hedge call
// reaches another shard.
func TestHedgeBudgetExhaustion(t *testing.T) {
	budget := NewHedgeBudget(0.001, 1) // one token, near-zero earn rate
	if !budget.TrySpend() {
		t.Fatal("budget should start with its burst available")
	}
	hp, log := hedgePolicy(time.Millisecond, budget)
	d, err := NewDispatcher(DispatcherConfig{Shards: 2, Hedge: hp})
	if err != nil {
		t.Fatal(err)
	}
	var hedgeCalls sync.Map
	results := d.Scatter(context.Background(), parts(1),
		func(ctx context.Context, shard int, part pipeline.Partition) (any, error) {
			if IsHedgeAttempt(ctx) {
				hedgeCalls.Store(shard, true)
			}
			time.Sleep(10 * time.Millisecond) // outlive the trigger
			return "answer", nil
		})
	r := results[0]
	if r.Err != nil || r.Value != "answer" || r.Shard != 0 {
		t.Fatalf("got %v from shard %d (err %v), want primary answer", r.Value, r.Shard, r.Err)
	}
	if r.HedgeWon {
		t.Fatal("no hedge launched, so none can win")
	}
	if log.count(HedgeDenied) != 1 {
		t.Fatalf("outcomes %v, want one denied", log.out)
	}
	n := 0
	hedgeCalls.Range(func(_, _ any) bool { n++; return true })
	if n != 0 {
		t.Fatalf("%d hedge calls reached shards with an empty budget", n)
	}
}

// TestHedgeBudgetEarnRate checks the token bucket's arithmetic: fraction f
// per earn, capped at burst, one token per spend.
func TestHedgeBudgetEarnRate(t *testing.T) {
	b := NewHedgeBudget(0.5, 2)
	if !b.TrySpend() || !b.TrySpend() {
		t.Fatal("burst of 2 should allow two immediate spends")
	}
	if b.TrySpend() {
		t.Fatal("third spend should fail on an empty bucket")
	}
	b.earn() // 0.5
	if b.TrySpend() {
		t.Fatal("half a token must not allow a spend")
	}
	b.earn() // 1.0
	if !b.TrySpend() {
		t.Fatal("two earns at fraction 0.5 should fund one hedge")
	}
}

// TestHedgeSkipsUnhealthyTarget marks every replica unhealthy: the trigger
// fires, no target is found, the token is refunded, and the primary serves.
func TestHedgeSkipsUnhealthyTarget(t *testing.T) {
	budget := NewHedgeBudget(1, 1)
	hp, log := hedgePolicy(time.Millisecond, budget)
	hp.Healthy = func(shard int) bool { return shard == 0 }
	d, err := NewDispatcher(DispatcherConfig{Shards: 3, Hedge: hp})
	if err != nil {
		t.Fatal(err)
	}
	results := d.Scatter(context.Background(), parts(1),
		func(ctx context.Context, shard int, part pipeline.Partition) (any, error) {
			if shard != 0 {
				t.Errorf("hedge reached unhealthy shard %d", shard)
			}
			time.Sleep(10 * time.Millisecond)
			return "answer", nil
		})
	if results[0].Err != nil || results[0].Value != "answer" {
		t.Fatalf("primary should have served: %+v", results[0])
	}
	if log.count(HedgeDenied) != 1 {
		t.Fatalf("outcomes %v, want one denied", log.out)
	}
	if !budget.TrySpend() {
		t.Fatal("aborted hedge should have refunded its token")
	}
}

// TestRouteErrorLeadsWithPreferredShard exhausts every route and checks the
// terminal error names the preferred shard's own failure first, keeps every
// attempt reachable via errors.Is, and reports the preferred shard in the
// result.
func TestRouteErrorLeadsWithPreferredShard(t *testing.T) {
	d, err := NewDispatcher(DispatcherConfig{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	preferredErr := errors.New("disk on fire")
	results := d.Scatter(context.Background(), parts(3)[1:2], // partition 1 only
		func(ctx context.Context, shard int, part pipeline.Partition) (any, error) {
			if shard == 1 {
				return nil, preferredErr
			}
			return nil, fmt.Errorf("shard %d flaky", shard)
		})
	r := results[0]
	if r.Err == nil {
		t.Fatal("want terminal error")
	}
	var re *RouteError
	if !errors.As(r.Err, &re) {
		t.Fatalf("want *RouteError, got %T: %v", r.Err, r.Err)
	}
	if re.Preferred != 1 || r.Shard != 1 {
		t.Fatalf("preferred %d, result shard %d, want 1", re.Preferred, r.Shard)
	}
	if !errors.Is(re.Cause(), preferredErr) {
		t.Fatalf("cause %v should be the preferred shard's own failure", re.Cause())
	}
	if !strings.HasPrefix(r.Err.Error(), "shard 1: disk on fire") {
		t.Fatalf("message %q should lead with the preferred shard's failure", r.Err)
	}
	if !errors.Is(r.Err, preferredErr) {
		t.Fatal("errors.Is must reach the preferred shard's error through Unwrap")
	}
	if !strings.Contains(r.Err.Error(), "reroutes also failed") {
		t.Fatalf("message %q should list the reroute failures", r.Err)
	}
}

// TestRouteErrorAllBreakersOpen preserves the ErrShardBreakerOpen contract
// through the RouteError wrapper.
func TestRouteErrorAllBreakersOpen(t *testing.T) {
	d, err := NewDispatcher(DispatcherConfig{Shards: 2, BreakerThreshold: 1, BreakerCooldown: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	fail := func(ctx context.Context, shard int, part pipeline.Partition) (any, error) {
		return nil, errors.New("down")
	}
	d.Scatter(context.Background(), parts(2), fail) // opens both breakers
	results := d.Scatter(context.Background(), parts(2), fail)
	for _, r := range results {
		if !errors.Is(r.Err, ErrShardBreakerOpen) {
			t.Fatalf("want ErrShardBreakerOpen via RouteError, got %v", r.Err)
		}
	}
}
