package exec

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"accelscore/internal/dataset"
	"accelscore/internal/db"
	"accelscore/internal/forest"
	"accelscore/internal/hw"
	"accelscore/internal/obs"
	"accelscore/internal/pipeline"
	"accelscore/internal/platform"
	"accelscore/internal/sched"
)

// LoadConfig parameterizes the load-generation environment. The zero value
// gets defaults from BuildLoadEnv.
type LoadConfig struct {
	// Queries is the stream length (default 200).
	Queries int
	// Seed makes the stream deterministic (default 1).
	Seed uint64
	// Backend is the engine every query requests (default "CPU_SKLearn";
	// "auto" routes through the offload advisor).
	Backend string
	// TableRows sizes the scoring input table; per-query record counts are
	// drawn log-uniformly in [1, TableRows] and applied via @limit
	// (default 2048).
	TableRows int
	// MeanInterarrival paces the open-loop stream (default 5ms).
	MeanInterarrival time.Duration
	// TreeChoices and DepthChoices span the model-complexity axis; one
	// model is trained and stored per (trees, depth) pair (defaults
	// {8, 32, 128} x {6, 10}).
	TreeChoices  []int
	DepthChoices []int
}

// LoadEnv is a self-contained serving environment for load generation: an
// IRIS-replicated "stream" table, one trained model per (trees, depth)
// shape, a cache-enabled pipeline over the full testbed, and a
// deterministic query stream produced by the scheduling model's workload
// generator — so measured serving numbers line up with simulator
// predictions over the same stream.
type LoadEnv struct {
	DB      *db.Database
	Pipe    *pipeline.Pipeline
	Cfg     LoadConfig
	Queries []sched.Query
}

// BuildLoadEnv trains the model zoo, loads the stream table and generates
// the query stream. The observer may be nil.
func BuildLoadEnv(cfg LoadConfig, observer *obs.Observer) (*LoadEnv, error) {
	if cfg.Queries <= 0 {
		cfg.Queries = 200
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Backend == "" {
		cfg.Backend = "CPU_SKLearn"
	}
	if cfg.TableRows <= 0 {
		cfg.TableRows = 2048
	}
	if cfg.MeanInterarrival <= 0 {
		cfg.MeanInterarrival = 5 * time.Millisecond
	}
	if len(cfg.TreeChoices) == 0 {
		cfg.TreeChoices = []int{8, 32, 128}
	}
	if len(cfg.DepthChoices) == 0 {
		cfg.DepthChoices = []int{6, 10}
	}

	iris := dataset.Iris()
	d := db.New()
	tbl, err := db.TableFromDataset("stream", iris.Replicate(cfg.TableRows))
	if err != nil {
		return nil, err
	}
	if err := d.CreateTable(tbl); err != nil {
		return nil, err
	}
	for _, trees := range cfg.TreeChoices {
		for _, depth := range cfg.DepthChoices {
			f, err := forest.Train(iris, forest.ForestConfig{
				NumTrees:  trees,
				Tree:      forest.TrainConfig{MaxDepth: depth},
				Seed:      cfg.Seed,
				Bootstrap: true,
			})
			if err != nil {
				return nil, err
			}
			if err := d.StoreModel(loadModelName(trees, depth), f); err != nil {
				return nil, err
			}
		}
	}

	queries, err := sched.Generate(sched.WorkloadConfig{
		Queries:          cfg.Queries,
		MeanInterarrival: cfg.MeanInterarrival,
		Features:         iris.NumFeatures(),
		Classes:          iris.NumClasses(),
		TreeChoices:      cfg.TreeChoices,
		DepthChoices:     cfg.DepthChoices,
		MinRecords:       1,
		MaxRecords:       int64(cfg.TableRows),
		Seed:             cfg.Seed,
	})
	if err != nil {
		return nil, err
	}

	tb := platform.New()
	return &LoadEnv{
		DB: d,
		Pipe: &pipeline.Pipeline{
			DB:       d,
			Runtime:  hw.DefaultRuntime(),
			Registry: tb.Registry,
			Advisor:  tb.Advisor,
			Cache:    pipeline.NewModelCache(16),
			Obs:      observer,
		},
		Cfg:     cfg,
		Queries: queries,
	}, nil
}

// loadModelName names the stored model for a (trees, depth) shape.
func loadModelName(trees, depth int) string {
	return fmt.Sprintf("rf_t%d_d%d", trees, depth)
}

// SQLFor renders the scoring statement for one stream query.
func (env *LoadEnv) SQLFor(q sched.Query) string {
	return fmt.Sprintf("EXEC sp_score_model @model='%s', @data='stream', @backend='%s', @limit=%d",
		loadModelName(q.Stats.Trees, q.Stats.MaxDepth), env.Cfg.Backend, q.Records)
}

// Simulate runs the same query stream through the scheduling simulator on a
// static placement matching the load's backend, so measured serving metrics
// print next to the model's prediction.
func (env *LoadEnv) Simulate() (sched.Metrics, error) {
	s := &sched.Simulator{Registry: env.Pipe.Registry}
	_, m, err := s.Run(sched.Static{BackendName: env.Cfg.Backend, Registry: env.Pipe.Registry}, env.Queries)
	return m, err
}

// QueryRunner abstracts who executes a statement: the concurrent Executor
// or the serialized baseline.
type QueryRunner interface {
	ExecQuery(sql string) (*pipeline.QueryResult, error)
}

// SerializedRunner reproduces the pre-executor serving behavior — one
// global mutex around the pipeline — as the load harness's baseline.
type SerializedRunner struct {
	mu   sync.Mutex
	Pipe *pipeline.Pipeline
}

// ExecQuery runs one statement under the global lock.
func (s *SerializedRunner) ExecQuery(sql string) (*pipeline.QueryResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.Pipe.ExecQuery(sql)
}

// RunOptions selects the load-generation mode.
type RunOptions struct {
	// Clients is the closed-loop concurrency (default 8). 0 < OpenLoop
	// ignores it.
	Clients int
	// OpenLoop replays the stream at its generated arrival times instead
	// of closed-loop; latency then includes queueing behind slow queries.
	OpenLoop bool
	// SLO holds per-class latency objectives; when non-empty every query
	// is classified by record count (see ClassForRecords) and the report
	// gains per-class goodput. Rejected and errored queries burn budget.
	SLO []obs.Objective
}

// ClassForRecords maps a query's record count onto an objective class by
// splitting [1, maxRecords] into geometric bands, one per objective in
// ascending-latency order — the smallest queries get the tightest
// objective. The mapping is deterministic, so the same stream classifies
// identically across runs and configurations.
func ClassForRecords(objs []obs.Objective, records, maxRecords int64) string {
	if len(objs) == 0 {
		return ""
	}
	byLatency := append([]obs.Objective(nil), objs...)
	sort.Slice(byLatency, func(i, j int) bool { return byLatency[i].Latency < byLatency[j].Latency })
	if maxRecords <= 1 || records <= 1 {
		return byLatency[0].Class
	}
	if records > maxRecords {
		records = maxRecords
	}
	// Record counts are drawn log-uniformly, so geometric bands split the
	// stream roughly evenly across classes.
	frac := math.Log(float64(records)) / math.Log(float64(maxRecords))
	idx := int(frac * float64(len(byLatency)))
	if idx >= len(byLatency) {
		idx = len(byLatency) - 1
	}
	return byLatency[idx].Class
}

// LoadReport summarizes one load run.
type LoadReport struct {
	Label         string        `json:"label"`
	Queries       int           `json:"queries"`
	Ok            int           `json:"ok"`
	Rejected      int           `json:"rejected"`
	Errors        int           `json:"errors"`
	Wall          time.Duration `json:"wall_ns"`
	ThroughputQPS float64       `json:"throughput_qps"`
	Mean          time.Duration `json:"mean_ns"`
	P50           time.Duration `json:"p50_ns"`
	P99           time.Duration `json:"p99_ns"`
	// SLO is the per-class goodput accounting when objectives were
	// configured (RunOptions.SLO); Goodput is the overall good fraction.
	SLO     []obs.ClassReport `json:"slo,omitempty"`
	Goodput float64           `json:"goodput,omitempty"`
}

// String renders one report line.
func (r *LoadReport) String() string {
	s := fmt.Sprintf("%-24s %5d ok %4d rej %3d err  wall %-10v  %8.1f qps  mean %-10v p50 %-10v p99 %v",
		r.Label, r.Ok, r.Rejected, r.Errors, r.Wall.Round(time.Millisecond),
		r.ThroughputQPS, r.Mean.Round(time.Microsecond), r.P50.Round(time.Microsecond),
		r.P99.Round(time.Microsecond))
	if len(r.SLO) > 0 {
		s += fmt.Sprintf("  goodput %.1f%%", 100*r.Goodput)
	}
	return s
}

// RunLoad replays the environment's query stream through the runner and
// measures real end-to-end serving performance.
func RunLoad(env *LoadEnv, r QueryRunner, label string, opt RunOptions) (*LoadReport, error) {
	if opt.Clients <= 0 {
		opt.Clients = 8
	}
	rep := &LoadReport{Label: label, Queries: len(env.Queries)}
	lats := make([]time.Duration, len(env.Queries))
	outcomes := make([]error, len(env.Queries))

	start := time.Now()
	if opt.OpenLoop {
		var wg sync.WaitGroup
		for i := range env.Queries {
			q := env.Queries[i]
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				// Pace to the generated arrival time; latency is measured
				// from the scheduled arrival so queueing counts.
				sched := start.Add(q.Arrival)
				if d := time.Until(sched); d > 0 {
					time.Sleep(d)
				}
				_, err := r.ExecQuery(env.SQLFor(q))
				lats[i] = time.Since(sched)
				outcomes[i] = err
			}(i)
		}
		wg.Wait()
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for c := 0; c < opt.Clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(env.Queries) {
						return
					}
					t0 := time.Now()
					_, err := r.ExecQuery(env.SQLFor(env.Queries[i]))
					lats[i] = time.Since(t0)
					outcomes[i] = err
				}
			}()
		}
		wg.Wait()
	}
	rep.Wall = time.Since(start)

	okLats := make([]time.Duration, 0, len(lats))
	for i, err := range outcomes {
		switch {
		case err == nil:
			rep.Ok++
			okLats = append(okLats, lats[i])
		case err == ErrRejected:
			rep.Rejected++
		default:
			rep.Errors++
		}
	}
	if rep.Errors > 0 {
		for _, err := range outcomes {
			if err != nil && err != ErrRejected {
				return nil, fmt.Errorf("exec: load run %q: %w", label, err)
			}
		}
	}
	if rep.Wall > 0 {
		rep.ThroughputQPS = float64(rep.Ok) / rep.Wall.Seconds()
	}
	rep.Mean, rep.P50, rep.P99 = latencySummary(okLats)
	if len(opt.SLO) > 0 {
		// A nil registry keeps the engine pure accounting — loadgen's
		// per-run environments are throwaway, so no gauges to publish.
		eng := obs.NewSLOEngine(nil, opt.SLO, 0)
		maxRec := int64(env.Cfg.TableRows)
		for i := range env.Queries {
			class := ClassForRecords(opt.SLO, env.Queries[i].Records, maxRec)
			eng.Observe(class, lats[i], outcomes[i] == nil)
		}
		rep.SLO = eng.Report()
		var good, total uint64
		for _, c := range rep.SLO {
			good += c.Good
			total += c.Total
		}
		if total > 0 {
			rep.Goodput = float64(good) / float64(total)
		}
	}
	return rep, nil
}

// latencySummary returns mean/p50/p99 of the sample.
func latencySummary(lats []time.Duration) (mean, p50, p99 time.Duration) {
	if len(lats) == 0 {
		return 0, 0, 0
	}
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, l := range sorted {
		sum += l
	}
	n := len(sorted)
	return sum / time.Duration(n), sorted[n/2], sorted[(n*99)/100]
}
