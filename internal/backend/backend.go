// Package backend defines the common interface every scoring engine
// implements — the CPU engines, the GPU libraries, the FPGA inference
// engine, and any user-supplied accelerator — plus the registry that the
// offload advisor enumerates.
//
// Each backend is a functional simulator with a calibrated timing model
// (DESIGN.md "Timing-model philosophy"): Score really computes predictions
// and returns a simulated latency timeline; Estimate returns the same
// timeline for a hypothetical model/record-count without touching data,
// which is what the figure sweeps and the advisor use at 1M-record scale.
package backend

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"accelscore/internal/dataset"
	"accelscore/internal/faults"
	"accelscore/internal/forest"
	"accelscore/internal/kernel"
	"accelscore/internal/sim"
)

// Request carries one scoring operation.
type Request struct {
	// Forest is the model to score.
	Forest *forest.Forest
	// Data holds the records to score.
	Data *dataset.Dataset
	// Compiled optionally carries Forest pre-lowered to the shared flat
	// kernel form (the pipeline's compiled-model cache populates it on
	// warm queries). CPU engines use it to skip per-query compilation; it
	// MUST be derived from Forest. Nil means the engine compiles itself.
	Compiled *kernel.Compiled
	// Stats optionally carries Forest's structural stats, again populated
	// by the compiled-model cache so engines skip the per-query tree walk
	// ComputeStats performs. It MUST describe Forest. Nil means the engine
	// computes stats itself.
	Stats *forest.Stats
	// Ctx carries the query's deadline and cancellation into the engine.
	// Engines honor it at their O/L/C boundaries via Boundary. Nil means
	// context.Background (no deadline).
	Ctx context.Context
	// Inject, when set, is the fault injector engines consult at the same
	// boundaries — the seam through which chaos runs surface device-busy,
	// transfer-corrupt, crash and hang conditions inside the simulators.
	Inject *faults.Injector
	// Sel, when set, is a pushed-down row filter covering Data's rows: the
	// engine scores only selected rows and Result.Predictions holds their
	// classes densely in ascending row order (Sel.Count() entries). Nil
	// scores every row — the pre-fusion behavior, bit-for-bit.
	Sel *kernel.Selection
	// WantCounts asks the engine for a fused score-then-aggregate: engines
	// that can tally predicted classes without materializing the per-row
	// prediction vector fill Result.ClassCounts and may leave Predictions
	// empty. Engines without a fused path ignore it; the caller falls back
	// to counting Predictions.
	WantCounts bool
}

// Context returns the request's context, defaulting to Background.
func (r *Request) Context() context.Context {
	if r.Ctx != nil {
		return r.Ctx
	}
	return context.Background()
}

// Boundary is the hook engines call when crossing an O/L/C boundary
// (invocation, transfer, compute): it surfaces the request's cancellation
// or deadline first, then consults the fault injector (which may delay —
// an injected hang — or fail the operation). Nil-safe on every field.
func (r *Request) Boundary(engineName string, b faults.Boundary) error {
	ctx := r.Context()
	if err := ctx.Err(); err != nil {
		return err
	}
	return r.Inject.Check(ctx, engineName, b)
}

// ModelStats returns the request's structural stats, preferring the
// pre-computed copy a cache-hit request carries.
func (r *Request) ModelStats() forest.Stats {
	if r.Stats != nil {
		return *r.Stats
	}
	return r.Forest.ComputeStats()
}

// Validate checks the request is complete and consistent.
func (r *Request) Validate() error {
	if r.Forest == nil {
		return fmt.Errorf("backend: request has no model")
	}
	if r.Data == nil {
		return fmt.Errorf("backend: request has no data")
	}
	if err := r.Forest.Validate(); err != nil {
		return err
	}
	if err := r.Data.Validate(); err != nil {
		return err
	}
	if r.Data.NumFeatures() != r.Forest.NumFeatures {
		return fmt.Errorf("backend: data has %d features, model expects %d",
			r.Data.NumFeatures(), r.Forest.NumFeatures)
	}
	if r.Sel != nil && r.Sel.Len() != r.Data.NumRecords() {
		return fmt.Errorf("backend: selection covers %d rows, data has %d",
			r.Sel.Len(), r.Data.NumRecords())
	}
	return nil
}

// NumScored returns the number of rows the engine will actually score: the
// selection's survivor count when a filter is pushed down, else every
// record. Engines charge their simulated compute on this figure.
func (r *Request) NumScored() int {
	if r.Sel != nil {
		return r.Sel.Count()
	}
	return r.Data.NumRecords()
}

// Result is the outcome of one scoring operation.
type Result struct {
	// Predictions holds one class id per scored record: every input record
	// without a pushed-down selection, or the selected rows densely in
	// ascending row order with one. Empty when the engine served a fused
	// aggregate (see ClassCounts).
	Predictions []int
	// ClassCounts, when non-nil, is the fused score-then-aggregate result:
	// ClassCounts[c] counts scored rows predicted as class c. Filled only
	// when the request set WantCounts and the engine supports fusion.
	ClassCounts []int64
	// Timeline is the simulated latency breakdown of the operation.
	Timeline sim.Timeline
}

// Latency is the simulated end-to-end scoring time (the paper's "overall
// model scoring time", §IV-B).
func (r *Result) Latency() time.Duration { return r.Timeline.Total() }

// NumScored returns how many records the result covers: the prediction
// count, or the aggregate total for a fused score-then-count result.
func (r *Result) NumScored() int {
	if len(r.Predictions) == 0 && r.ClassCounts != nil {
		var n int64
		for _, c := range r.ClassCounts {
			n += c
		}
		return int(n)
	}
	return len(r.Predictions)
}

// Throughput returns scored records per second.
func (r *Result) Throughput() float64 {
	return sim.Throughput(r.NumScored(), r.Latency())
}

// OLC decomposes the scoring timeline into the paper's Fig. 6 taxonomy:
// host offload overhead O, data-transfer overhead L and scoring compute C.
// Engine timelines contain only these three kinds, so the three components
// sum to Latency; the observability layer publishes them per backend.
func (r *Result) OLC() (overhead, transfer, compute time.Duration) {
	return r.Timeline.TotalKind(sim.KindOverhead),
		r.Timeline.TotalKind(sim.KindTransfer),
		r.Timeline.TotalKind(sim.KindCompute)
}

// Backend is a scoring engine.
type Backend interface {
	// Name is the display name used in figures ("CPU_SKLearn", "FPGA", ...).
	Name() string
	// Score runs the model over the data, returning real predictions and
	// the simulated latency timeline.
	Score(req *Request) (*Result, error)
	// Estimate returns the simulated timeline for scoring records rows of a
	// model with the given structural stats, without computing predictions.
	// Engines return an error for configurations they cannot run (e.g. the
	// FPGA with trees deeper than its PEs support, RAPIDS with more than
	// two classes).
	Estimate(stats forest.Stats, records int64) (*sim.Timeline, error)
}

// Registry is a named collection of backends. It is safe for concurrent
// use.
type Registry struct {
	mu       sync.RWMutex
	backends map[string]Backend
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{backends: make(map[string]Backend)}
}

// Register adds a backend; registering a duplicate name is an error so
// experiment configurations cannot silently shadow each other.
func (r *Registry) Register(b Backend) error {
	if b == nil || b.Name() == "" {
		return fmt.Errorf("backend: cannot register unnamed backend")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.backends[b.Name()]; dup {
		return fmt.Errorf("backend: %q already registered", b.Name())
	}
	r.backends[b.Name()] = b
	return nil
}

// Get returns the backend with the given name.
func (r *Registry) Get(name string) (Backend, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	b, ok := r.backends[name]
	return b, ok
}

// Names returns the registered names in sorted order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.backends))
	for n := range r.backends {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// All returns the backends sorted by name.
func (r *Registry) All() []Backend {
	names := r.Names()
	out := make([]Backend, 0, len(names))
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, n := range names {
		out = append(out, r.backends[n])
	}
	return out
}
