package backend_test

import (
	"testing"
	"testing/quick"
	"time"

	"accelscore/internal/backend"
	"accelscore/internal/dataset"
	"accelscore/internal/forest"
	"accelscore/internal/model"
	"accelscore/internal/platform"
	"accelscore/internal/sim"
)

func TestRequestValidate(t *testing.T) {
	f, err := forest.Train(dataset.Iris(), forest.ForestConfig{
		NumTrees: 2, Tree: forest.TrainConfig{MaxDepth: 4}, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	good := &backend.Request{Forest: f, Data: dataset.Iris()}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (&backend.Request{Data: dataset.Iris()}).Validate(); err == nil {
		t.Fatal("nil forest accepted")
	}
	if err := (&backend.Request{Forest: f}).Validate(); err == nil {
		t.Fatal("nil data accepted")
	}
	if err := (&backend.Request{Forest: f, Data: dataset.Higgs(5, 1)}).Validate(); err == nil {
		t.Fatal("feature mismatch accepted")
	}
}

func TestResultMetrics(t *testing.T) {
	r := &backend.Result{Predictions: make([]int, 1000)}
	r.Timeline.Add("scoring", sim.KindCompute, time.Second)
	if r.Latency() != time.Second {
		t.Fatalf("Latency = %v", r.Latency())
	}
	if r.Throughput() != 1000 {
		t.Fatalf("Throughput = %v", r.Throughput())
	}
}

func TestRegistry(t *testing.T) {
	tb := platform.New()
	reg := tb.Registry
	names := reg.Names()
	want := []string{"CPU_ONNX", "CPU_ONNX_52th", "CPU_SKLearn", "FPGA", "GPU_HB", "GPU_RAPIDS"}
	if len(names) != len(want) {
		t.Fatalf("Names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names[%d] = %q, want %q", i, names[i], want[i])
		}
	}
	if _, ok := reg.Get("FPGA"); !ok {
		t.Fatal("FPGA not found")
	}
	if _, ok := reg.Get("TPU"); ok {
		t.Fatal("phantom backend found")
	}
	if err := reg.Register(tb.FPGA); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if err := reg.Register(nil); err == nil {
		t.Fatal("nil registration accepted")
	}
	if got := len(reg.All()); got != 6 {
		t.Fatalf("All() = %d backends", got)
	}
}

// TestAllBackendsAgree is the central functional-correctness property: every
// simulated backend — CPU traversal, ONNX interpretation, Hummingbird tensor
// program, RAPIDS FIL walk, FPGA PE array — must produce identical
// predictions for the same model.
func TestAllBackendsAgree(t *testing.T) {
	tb := platform.New()
	cases := []struct {
		name  string
		data  *dataset.Dataset
		trees int
		depth int
	}{
		{"iris-small", dataset.Iris().Replicate(120), 4, 6},
		{"iris-deep", dataset.Iris().Replicate(200), 8, 10},
		{"iris-shallow-gemm", dataset.Iris().Replicate(150), 6, 3},
		{"higgs", dataset.Higgs(400, 3), 8, 10},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			train := tc.data
			if tc.name == "higgs" {
				train = dataset.Higgs(1500, 77)
			}
			f, err := forest.Train(train, forest.ForestConfig{
				NumTrees:  tc.trees,
				Tree:      forest.TrainConfig{MaxDepth: tc.depth},
				Seed:      42,
				Bootstrap: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			req := &backend.Request{Forest: f, Data: tc.data}
			reference := f.PredictBatch(tc.data)
			for _, b := range tb.AllBackends() {
				if b.Name() == "GPU_RAPIDS" && f.NumClasses > 2 {
					continue // FIL is binary-only, as in the paper
				}
				res, err := b.Score(req)
				if err != nil {
					t.Fatalf("%s: %v", b.Name(), err)
				}
				if len(res.Predictions) != len(reference) {
					t.Fatalf("%s: %d predictions, want %d", b.Name(), len(res.Predictions), len(reference))
				}
				for i := range reference {
					if res.Predictions[i] != reference[i] {
						t.Fatalf("%s disagrees with reference at record %d: %d != %d",
							b.Name(), i, res.Predictions[i], reference[i])
					}
				}
			}
		})
	}
}

// TestLatencyOrderingAtExtremes pins the Fig. 9 ordering at both ends of the
// record-count axis using simulated timelines from real Score calls.
func TestLatencyOrderingAtExtremes(t *testing.T) {
	tb := platform.New()
	f, err := forest.Train(dataset.Higgs(1200, 5), forest.ForestConfig{
		NumTrees:  8,
		Tree:      forest.TrainConfig{MaxDepth: 10},
		Seed:      7,
		Bootstrap: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	stats := f.ComputeStats()

	latency := func(b backend.Backend, n int64) time.Duration {
		tl, err := b.Estimate(stats, n)
		if err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
		return tl.Total()
	}
	// One record: single-thread ONNX is fastest of all backends.
	onnx1 := latency(tb.ONNX1, 1)
	for _, b := range tb.AllBackends() {
		if b.Name() == "CPU_ONNX" {
			continue
		}
		if latency(b, 1) <= onnx1 {
			t.Fatalf("%s beats CPU_ONNX at 1 record", b.Name())
		}
	}
	// One million records of this 8-tree model: accelerators beat every
	// CPU engine.
	slowestAccel := time.Duration(0)
	for _, b := range tb.AcceleratorBackends() {
		if l := latency(b, 1_000_000); l > slowestAccel {
			slowestAccel = l
		}
	}
	for _, b := range tb.CPUBackends() {
		if latency(b, 1_000_000) <= slowestAccel {
			t.Fatalf("%s beats an accelerator at 1M records of a deep 8-tree model", b.Name())
		}
	}
}

// TestBoostedModelAcrossBackends: gradient-boosted ensembles (§III-A) score
// identically on the CPU engines, Hummingbird and RAPIDS; the FPGA's
// majority-vote unit rejects them.
func TestBoostedModelAcrossBackends(t *testing.T) {
	tb := platform.New()
	train := dataset.Higgs(2000, 31)
	f, err := forest.TrainBoosted(train, forest.BoostConfig{
		NumTrees: 12, MaxDepth: 4, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	data := dataset.Higgs(400, 32)
	req := &backend.Request{Forest: f, Data: data}
	reference := f.PredictBatch(data)

	for _, b := range tb.AllBackends() {
		res, err := b.Score(req)
		if b.Name() == "FPGA" {
			if err == nil {
				t.Fatal("FPGA accepted a boosted ensemble")
			}
			continue
		}
		if err != nil {
			t.Fatalf("%s rejected boosted model: %v", b.Name(), err)
		}
		for i := range reference {
			if res.Predictions[i] != reference[i] {
				t.Fatalf("%s disagrees on boosted record %d", b.Name(), i)
			}
		}
	}

	// Round-trips through the RFX blob with BaseScore intact.
	blob, err := model.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	back, err := model.Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	if back.Kind != forest.Boosted || back.BaseScore != f.BaseScore {
		t.Fatalf("boosted round-trip lost kind/base: %v %v", back.Kind, back.BaseScore)
	}
	for i := range reference {
		if back.PredictClass(data.Row(i)) != reference[i] {
			t.Fatalf("serialized boosted model disagrees at %d", i)
		}
	}
}

// TestBackendsAgreeOnRandomModels is the property-based version of
// TestAllBackendsAgree: random dataset seeds, ensemble sizes and depths.
func TestBackendsAgreeOnRandomModels(t *testing.T) {
	tb := platform.New()
	check := func(seed uint16, treesRaw, depthRaw uint8) bool {
		trees := int(treesRaw)%8 + 1
		depth := int(depthRaw)%9 + 2
		train := dataset.Higgs(600, uint64(seed)+100)
		data := dataset.Higgs(150, uint64(seed)+500)
		f, err := forest.Train(train, forest.ForestConfig{
			NumTrees:  trees,
			Tree:      forest.TrainConfig{MaxDepth: depth},
			Seed:      uint64(seed),
			Bootstrap: true,
		})
		if err != nil {
			return false
		}
		req := &backend.Request{Forest: f, Data: data}
		reference := f.PredictBatch(data)
		for _, b := range tb.AllBackends() {
			res, err := b.Score(req)
			if err != nil {
				t.Logf("%s: %v", b.Name(), err)
				return false
			}
			for i := range reference {
				if res.Predictions[i] != reference[i] {
					t.Logf("%s diverges at %d (seed=%d trees=%d depth=%d)",
						b.Name(), i, seed, trees, depth)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// TestTrainedStatsTrackSynthetic: figure sweeps use synthetic full-depth
// stats; real trained models have shorter average paths, so their simulated
// times must be bounded by (and within ~3x of) the synthetic estimate for
// the visit-proportional backends.
func TestTrainedStatsTrackSynthetic(t *testing.T) {
	tb := platform.New()
	train := dataset.Higgs(4000, 55)
	f, err := forest.Train(train, forest.ForestConfig{
		NumTrees:  64,
		Tree:      forest.TrainConfig{MaxDepth: 10},
		Seed:      1,
		Bootstrap: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	real := f.ComputeStats()
	synth := forest.SyntheticStats(64, 10, 28, 2)
	if real.AvgPathLength > float64(synth.MaxDepth) {
		t.Fatalf("trained avg path %v exceeds depth", real.AvgPathLength)
	}
	for _, b := range tb.AllBackends() {
		realTl, err := b.Estimate(real, 1_000_000)
		if err != nil {
			continue
		}
		synthTl, err := b.Estimate(synth, 1_000_000)
		if err != nil {
			continue
		}
		ratio := float64(synthTl.Total()) / float64(realTl.Total())
		if ratio < 0.99 || ratio > 3 {
			t.Fatalf("%s: synthetic %v vs trained %v (ratio %.2f)",
				b.Name(), synthTl.Total(), realTl.Total(), ratio)
		}
	}
}

// TestZeroRecordRequests: every backend must handle an empty batch
// gracefully — zero predictions, overhead-only timeline.
func TestZeroRecordRequests(t *testing.T) {
	tb := platform.New()
	f, err := forest.Train(dataset.Higgs(500, 61), forest.ForestConfig{
		NumTrees: 4, Tree: forest.TrainConfig{MaxDepth: 6}, Seed: 1, Bootstrap: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	empty := dataset.Higgs(0, 1)
	for _, b := range tb.AllBackends() {
		res, err := b.Score(&backend.Request{Forest: f, Data: empty})
		if err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
		if len(res.Predictions) != 0 {
			t.Fatalf("%s produced %d predictions for empty batch", b.Name(), len(res.Predictions))
		}
		if res.Latency() <= 0 {
			t.Fatalf("%s: empty batch should still pay invocation overhead", b.Name())
		}
		est, err := b.Estimate(f.ComputeStats(), 0)
		if err != nil {
			t.Fatalf("%s Estimate(0): %v", b.Name(), err)
		}
		if est.Total() != res.Latency() {
			t.Fatalf("%s: Estimate(0) %v != Score latency %v", b.Name(), est.Total(), res.Latency())
		}
	}
}
