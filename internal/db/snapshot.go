// Column-subset and row-bounded dataset snapshots: the column-store exit
// path of the fused scoring pipeline. Where DatasetSnapshot converts every
// REAL column of every row, DatasetSnapshotFor converts only the projected
// feature columns (projection pruning) and at most limit rows (@limit
// pushdown), and caches full-table conversions per column subset keyed on
// the table version.
package db

import (
	"fmt"
	"strings"

	"accelscore/internal/dataset"
)

// maxSubSnapshots bounds the per-table subset cache; stale-version entries
// are evicted on publish once the map grows past it.
const maxSubSnapshots = 8

// DatasetSnapshotFor converts the named REAL columns of the table into a
// row-major dataset, reading at most limit rows when limit > 0.
//
//   - features nil falls back to every REAL column in schema order — the
//     legacy (unpruned) projection.
//   - A full-table conversion (limit <= 0, or limit >= the row count) is
//     cached per column subset until the table's next mutation, exactly like
//     DatasetSnapshot's single-snapshot cache.
//   - limit > 0 serves Head(limit) of a current cached full conversion when
//     one exists (a copy of limit rows — no cell conversion at all);
//     otherwise it converts only the first limit rows, so a small @limit on
//     a large table never pays the full-table conversion.
//
// hit reports whether the cell-by-cell conversion was skipped. The returned
// dataset carries no labels — it feeds scoring, which never reads them.
// Full-table results are shared with other callers and must be treated as
// read-only.
func (t *Table) DatasetSnapshotFor(features []string, limit int) (d *dataset.Dataset, hit bool, err error) {
	names, cols, err := t.resolveFeatureCols(features)
	if err != nil {
		return nil, false, err
	}
	key := strings.Join(names, "\x00")

	v := t.Version()
	t.subSnapMu.Lock()
	cached := t.subSnaps[key]
	t.subSnapMu.Unlock()
	if cached != nil && cached.version == v {
		if limit > 0 && limit < cached.data.NumRecords() {
			return cached.data.Head(limit), true, nil
		}
		return cached.data, true, nil
	}

	// Bounded conversion: only the first limit rows leave the column store.
	// The result is not published (it is a partial view keyed on a row
	// bound, not a table state), but the scan it saves is the point.
	if limit > 0 && limit < t.NumRows() {
		d, _, err := t.convertSubset(names, cols, limit)
		return d, false, err
	}

	d, dv, err := t.convertSubset(names, cols, 0)
	if err != nil {
		return nil, false, err
	}
	t.subSnapMu.Lock()
	if cur := t.subSnaps[key]; cur == nil || dv >= cur.version {
		if t.subSnaps == nil {
			t.subSnaps = make(map[string]*subSnapshot)
		}
		if len(t.subSnaps) >= maxSubSnapshots {
			for k, s := range t.subSnaps {
				if s.version != dv {
					delete(t.subSnaps, k)
				}
			}
		}
		t.subSnaps[key] = &subSnapshot{version: dv, data: d}
	}
	t.subSnapMu.Unlock()
	if limit > 0 && limit < d.NumRecords() {
		return d.Head(limit), false, nil
	}
	return d, false, nil
}

// DatasetFor is DatasetSnapshotFor without the cache: every call redoes the
// (pruned, row-bounded) conversion. It serves the baseline pipeline — which
// deliberately repeats pre-processing per query — while still honoring
// projection pruning and the @limit row bound.
func (t *Table) DatasetFor(features []string, limit int) (*dataset.Dataset, error) {
	names, cols, err := t.resolveFeatureCols(features)
	if err != nil {
		return nil, err
	}
	d, _, err := t.convertSubset(names, cols, limit)
	return d, err
}

// resolveFeatureCols maps the requested feature names to REAL column
// indices, or every REAL column when features is nil.
func (t *Table) resolveFeatureCols(features []string) ([]string, []int, error) {
	if features == nil {
		var names []string
		var cols []int
		for i, c := range t.Columns {
			if c.Type == Float32Col {
				names = append(names, c.Name)
				cols = append(cols, i)
			}
		}
		if len(cols) == 0 {
			return nil, nil, fmt.Errorf("db: table %q has no REAL feature columns", t.Name)
		}
		return names, cols, nil
	}
	if len(features) == 0 {
		return nil, nil, fmt.Errorf("db: table %q: empty feature projection", t.Name)
	}
	names := make([]string, len(features))
	cols := make([]int, len(features))
	for i, f := range features {
		ci := t.ColumnIndex(f)
		if ci < 0 {
			return nil, nil, fmt.Errorf("db: table %q has no column %q", t.Name, f)
		}
		if t.Columns[ci].Type != Float32Col {
			return nil, nil, fmt.Errorf("db: table %q column %q is %s, features must be REAL",
				t.Name, f, t.Columns[ci].Type)
		}
		names[i] = f
		cols[i] = ci
	}
	return names, cols, nil
}

// convertSubset gathers the given columns (limited to the first limit rows
// when limit > 0) into a row-major dataset under the table's read lock,
// returning the exact version observed.
func (t *Table) convertSubset(names []string, cols []int, limit int) (*dataset.Dataset, uint64, error) {
	t.rowsMu.RLock()
	defer t.rowsMu.RUnlock()
	v := t.version.Load()
	n := t.numRowsLocked()
	if limit > 0 && limit < n {
		n = limit
	}
	f := len(cols)
	d := &dataset.Dataset{
		Name:         t.Name,
		FeatureNames: append([]string(nil), names...),
		X:            make([]float32, n*f),
	}
	// Column-wise gather: each source column streams once, scattering into
	// its stride of the row-major output.
	for j, ci := range cols {
		src := t.cols[ci]
		for r := 0; r < n; r++ {
			d.X[r*f+j] = src[r].F
		}
	}
	if err := d.Validate(); err != nil {
		return nil, 0, err
	}
	return d, v, nil
}

// NumericColumnPrefix extracts the first limit values (every row when limit
// <= 0) of a REAL or BIGINT column as float64s — the operand vector for a
// pushed-down predicate over a column that is not one of the model's
// features.
func (t *Table) NumericColumnPrefix(name string, limit int) ([]float64, error) {
	ci := t.ColumnIndex(name)
	if ci < 0 {
		return nil, fmt.Errorf("db: table %q has no column %q", t.Name, name)
	}
	typ := t.Columns[ci].Type
	if typ != Float32Col && typ != Int64Col {
		return nil, fmt.Errorf("db: table %q column %q is %s, predicates need a numeric column",
			t.Name, name, typ)
	}
	t.rowsMu.RLock()
	defer t.rowsMu.RUnlock()
	n := t.numRowsLocked()
	if limit > 0 && limit < n {
		n = limit
	}
	out := make([]float64, n)
	src := t.cols[ci]
	if typ == Float32Col {
		for r := 0; r < n; r++ {
			out[r] = float64(src[r].F)
		}
	} else {
		for r := 0; r < n; r++ {
			out[r] = float64(src[r].I)
		}
	}
	return out, nil
}
