package db

import (
	"testing"

	"accelscore/internal/dataset"
)

// wideTable builds a table with extra junk REAL columns around the iris
// features plus the label, mimicking the wide-table scoring shape.
func wideTable(t *testing.T, junk int) *Table {
	t.Helper()
	iris := dataset.Iris()
	cols := []Column{}
	for _, f := range iris.FeatureNames {
		cols = append(cols, Column{Name: f, Type: Float32Col})
	}
	for j := 0; j < junk; j++ {
		cols = append(cols, Column{Name: "junk_" + string(rune('a'+j)), Type: Float32Col})
	}
	cols = append(cols, Column{Name: "label", Type: Int64Col})
	tbl, err := NewTable("wide", cols)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < iris.NumRecords(); i++ {
		row := make([]Value, 0, len(cols))
		for _, f := range iris.Row(i) {
			row = append(row, Float(f))
		}
		for j := 0; j < junk; j++ {
			row = append(row, Float(float32(i*j)))
		}
		row = append(row, Int(int64(iris.Y[i])))
		if err := tbl.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestDatasetSnapshotForProjection(t *testing.T) {
	tbl := wideTable(t, 6)
	features := dataset.Iris().FeatureNames

	d, hit, err := tbl.DatasetSnapshotFor(features, 0)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first conversion reported a cache hit")
	}
	if d.NumFeatures() != len(features) || d.NumRecords() != tbl.NumRows() {
		t.Fatalf("pruned snapshot shape %dx%d", d.NumRecords(), d.NumFeatures())
	}
	// Values must match the legacy full conversion's feature columns.
	full, err := tbl.DatasetSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < d.NumRecords(); r++ {
		for j := range features {
			if d.X[r*len(features)+j] != full.X[r*full.NumFeatures()+j] {
				t.Fatalf("row %d feature %d differs from full conversion", r, j)
			}
		}
	}

	// Second call at the same version is a cache hit returning the shared
	// dataset.
	d2, hit, err := tbl.DatasetSnapshotFor(features, 0)
	if err != nil || !hit || d2 != d {
		t.Fatalf("expected shared cache hit, got hit=%v err=%v", hit, err)
	}

	// A different subset caches independently.
	sub, hit, err := tbl.DatasetSnapshotFor(features[:2], 0)
	if err != nil || hit || sub.NumFeatures() != 2 {
		t.Fatalf("subset: hit=%v err=%v features=%d", hit, err, sub.NumFeatures())
	}

	// Mutation invalidates.
	row := make([]Value, len(tbl.Columns))
	if err := tbl.Insert(row); err != nil {
		t.Fatal(err)
	}
	_, hit, err = tbl.DatasetSnapshotFor(features, 0)
	if err != nil || hit {
		t.Fatalf("post-mutation call must miss, hit=%v err=%v", hit, err)
	}
}

func TestDatasetSnapshotForLimitBoundsConversion(t *testing.T) {
	tbl := wideTable(t, 2)
	features := dataset.Iris().FeatureNames

	// Cold limited conversion: only limit rows converted, nothing cached.
	d, hit, err := tbl.DatasetSnapshotFor(features, 10)
	if err != nil || hit {
		t.Fatalf("cold limited: hit=%v err=%v", hit, err)
	}
	if d.NumRecords() != 10 {
		t.Fatalf("limited snapshot has %d rows", d.NumRecords())
	}
	// Limit beyond the row count clamps.
	d, _, err = tbl.DatasetSnapshotFor(features, 1_000_000)
	if err != nil || d.NumRecords() != tbl.NumRows() {
		t.Fatalf("clamped: rows=%d err=%v", d.NumRecords(), err)
	}
	// With the full conversion now cached, a limited call is a hit served
	// via Head.
	d, hit, err = tbl.DatasetSnapshotFor(features, 7)
	if err != nil || !hit || d.NumRecords() != 7 {
		t.Fatalf("warm limited: hit=%v rows=%d err=%v", hit, d.NumRecords(), err)
	}
}

func TestDatasetSnapshotForErrors(t *testing.T) {
	tbl := wideTable(t, 1)
	if _, _, err := tbl.DatasetSnapshotFor([]string{"no_such_col"}, 0); err == nil {
		t.Fatal("missing column must error")
	}
	if _, _, err := tbl.DatasetSnapshotFor([]string{"label"}, 0); err == nil {
		t.Fatal("non-REAL feature column must error")
	}
	if _, _, err := tbl.DatasetSnapshotFor([]string{}, 0); err == nil {
		t.Fatal("empty projection must error")
	}
}

func TestNumericColumnPrefix(t *testing.T) {
	tbl := wideTable(t, 1)
	vals, err := tbl.NumericColumnPrefix("label", 5)
	if err != nil || len(vals) != 5 {
		t.Fatalf("label prefix: %v len=%d", err, len(vals))
	}
	iris := dataset.Iris()
	for i, v := range vals {
		if v != float64(iris.Y[i]) {
			t.Fatalf("label[%d] = %v, want %d", i, v, iris.Y[i])
		}
	}
	all, err := tbl.NumericColumnPrefix(iris.FeatureNames[0], 0)
	if err != nil || len(all) != tbl.NumRows() {
		t.Fatalf("full column: %v len=%d", err, len(all))
	}
	if _, err := tbl.NumericColumnPrefix("nope", 0); err == nil {
		t.Fatal("missing column must error")
	}
}

func TestParsePredictStmt(t *testing.T) {
	st, err := Parse(`SELECT prediction FROM PREDICT(@model = 'm', @data = 't', @backend = 'FPGA')
		WHERE petal_width < 1.5 AND label = 2`)
	if err != nil {
		t.Fatal(err)
	}
	ps, ok := st.(*PredictStmt)
	if !ok {
		t.Fatalf("got %T", st)
	}
	if ps.Params["model"].S != "m" || ps.Params["data"].S != "t" || ps.Params["backend"].S != "FPGA" {
		t.Fatalf("params: %+v", ps.Params)
	}
	if len(ps.Columns) != 1 || ps.Columns[0] != "prediction" || len(ps.Where) != 2 {
		t.Fatalf("projection/where: %+v", ps)
	}

	st, err = Parse(`SELECT COUNT(*) FROM PREDICT(@model = 'm', @data = 't') WHERE x >= 0`)
	if err != nil {
		t.Fatal(err)
	}
	ps = st.(*PredictStmt)
	if len(ps.Aggregates) != 1 || ps.Aggregates[0].Fn != AggCount || ps.GroupBy != "" {
		t.Fatalf("count: %+v", ps)
	}

	st, err = Parse(`SELECT prediction, COUNT(*) FROM PREDICT(@model = 'm', @data = 't') GROUP BY prediction`)
	if err != nil {
		t.Fatal(err)
	}
	ps = st.(*PredictStmt)
	if ps.GroupBy != "prediction" || len(ps.Columns) != 1 || len(ps.Aggregates) != 1 {
		t.Fatalf("group by: %+v", ps)
	}

	// A plain SELECT from a table named predict-like stays a SelectStmt.
	if st, err = Parse(`SELECT a FROM predictions`); err != nil {
		t.Fatal(err)
	} else if _, ok := st.(*SelectStmt); !ok {
		t.Fatalf("got %T", st)
	}

	for _, bad := range []string{
		`SELECT prediction FROM PREDICT()`,
		`SELECT TOP 3 prediction FROM PREDICT(@model = 'm', @data = 't')`,
		`SELECT prediction, COUNT(*) FROM PREDICT(@model = 'm', @data = 't')`,
		`SELECT prediction FROM PREDICT(@model = 'm' @data = 't')`,
	} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("expected parse error for %s", bad)
		}
	}
}

func TestParseConditionList(t *testing.T) {
	conds, err := ParseConditionList("petal_width < 1.5 AND species = 'setosa'")
	if err != nil {
		t.Fatal(err)
	}
	if len(conds) != 2 || conds[0].Column != "petal_width" || conds[0].Op != "<" || conds[0].Value.N != 1.5 {
		t.Fatalf("conds: %+v", conds)
	}
	if !conds[1].Value.IsString || conds[1].Value.S != "setosa" {
		t.Fatalf("string literal: %+v", conds[1])
	}
	if got, err := ParseConditionList("  "); err != nil || got != nil {
		t.Fatalf("blank: %v %v", got, err)
	}
	for _, bad := range []string{"x", "x <", "x < 1 AND", "x < 1 OR y > 2", "x < 1 garbage"} {
		if _, err := ParseConditionList(bad); err == nil {
			t.Fatalf("expected error for %q", bad)
		}
	}
	if s := FormatConditions(conds); s != "petal_width < 1.5 AND species = 'setosa'" {
		t.Fatalf("format: %q", s)
	}
	round, err := ParseConditionList(FormatConditions(conds))
	if err != nil || len(round) != 2 {
		t.Fatalf("roundtrip: %v %v", round, err)
	}
}
