package db_test

import (
	"fmt"

	"accelscore/internal/dataset"
	"accelscore/internal/db"
)

// Example shows the SQL surface end to end: DDL, DML, filters, ordering and
// aggregates against the mini-DBMS.
func Example() {
	d := db.New()
	run := func(sql string) *db.Table {
		t, _, err := d.Query(sql)
		if err != nil {
			panic(err)
		}
		return t
	}
	run("CREATE TABLE readings (temp REAL, station NVARCHAR)")
	run("INSERT INTO readings VALUES (21.5, 'lab'), (-3.0, 'roof'), (19.0, 'lab')")
	run("UPDATE readings SET temp = 20.0 WHERE station = 'lab' AND temp < 20")
	run("DELETE FROM readings WHERE temp < 0")

	res := run("SELECT COUNT(*), AVG(temp) FROM readings")
	fmt.Println(res.Cell(0, 0).I, res.Cell(0, 1).F)

	res = run("SELECT temp FROM readings ORDER BY temp DESC")
	fmt.Println(res.Cell(0, 0).F, res.Cell(1, 0).F)
	// Output:
	// 2 20.75
	// 21.5 20
}

// ExampleTableFromDataset shows loading a dataset as a queryable table.
func ExampleTableFromDataset() {
	d := db.New()
	tbl, err := db.TableFromDataset("iris", dataset.Iris())
	if err != nil {
		panic(err)
	}
	if err := d.CreateTable(tbl); err != nil {
		panic(err)
	}
	res, _, err := d.Query("SELECT COUNT(*) FROM iris WHERE petal_width > 1.8")
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Cell(0, 0).I)
	// Output:
	// 34
}
