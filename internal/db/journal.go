package db

import "sync"

// Journal receives every catalog/data mutation before it is applied, so a
// storage engine can make the database durable without the db package
// importing it (internal/storage implements Journal and imports db, not the
// other way around).
//
// Contract: each mutation path calls BeginOp, then the matching Log method
// while holding the target table's write lock (so WAL order equals apply
// order), applies the mutation only if Log returned nil, and finally calls
// EndOp after releasing the lock. A Log error aborts the mutation — the
// caller never acknowledges a write the journal did not persist. BeginOp /
// EndOp bracket the whole operation so the engine can quiesce writers (e.g.
// while writing a compaction snapshot); they must be cheap and may block.
//
// Log methods receive plain data (names, schemas, row values, logical
// statements), never live *Table internals, so implementations need no
// knowledge of db locking.
type Journal interface {
	BeginOp()
	EndOp()
	// LogCreateTable records a new table with its initial rows (seeding via
	// TableFromDataset registers pre-populated tables).
	LogCreateTable(name string, cols []Column, rows [][]Value) error
	// LogInsert records rows appended to an existing table. The schema is
	// passed along so the implementation never needs a catalog lookup (the
	// caller holds the table's write lock; touching d.mu here could
	// deadlock against model-store paths that take d.mu before a table
	// lock).
	LogInsert(table string, cols []Column, rows [][]Value) error
	// LogUpdate records a logical UPDATE; replay re-executes it against the
	// identical pre-state, so the same rows match deterministically.
	LogUpdate(st *UpdateStmt) error
	// LogDelete records a logical DELETE.
	LogDelete(st *DeleteStmt) error
	// LogModelStore records a model blob insert.
	LogModelStore(name string, blob []byte) error
	// LogModelDelete records a model removal.
	LogModelDelete(name string) error
}

// journalState holds the attached journal behind its own small lock so
// mutation paths can read it without involving d.mu.
type journalState struct {
	mu sync.RWMutex
	j  Journal
}

func (s *journalState) get() Journal {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.j
}

// SetJournal attaches (or, with nil, detaches) the database's journal.
// Attach before the database is reachable by writers: mutations in flight
// during the swap may miss the new journal.
func (d *Database) SetJournal(j Journal) {
	d.js.mu.Lock()
	d.js.j = j
	d.js.mu.Unlock()
}

// journalRef returns the attached journal, or nil.
func (d *Database) journalRef() Journal { return d.js.get() }
