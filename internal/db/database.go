package db

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"accelscore/internal/forest"
	"accelscore/internal/model"
)

// Typed catalog errors. Callers branch on these with errors.Is — the serving
// layer maps them to client errors rather than retrying or degrading, since
// a missing object is a logical failure no other backend can fix.
var (
	// ErrTableNotFound reports a lookup of a table the catalog doesn't hold.
	ErrTableNotFound = errors.New("table not found")
	// ErrModelNotFound reports a lookup of a model the store doesn't hold.
	ErrModelNotFound = errors.New("model not found")
)

// ModelsTable is the reserved table holding serialized models, mirroring the
// paper's Fig. 3 pattern of selecting a model blob from a "models" table.
const ModelsTable = "models"

// Database is an in-memory catalog of tables plus the model store. It is
// safe for concurrent use.
type Database struct {
	mu     sync.RWMutex
	tables map[string]*Table
	// js holds the optional durability journal (see journal.go). Guarded by
	// its own lock, not d.mu, so reading it never interacts with catalog
	// locking.
	js journalState
}

// New returns an empty database with the reserved models table created.
func New() *Database {
	d := &Database{tables: make(map[string]*Table)}
	models, err := NewTable(ModelsTable, []Column{
		{Name: "name", Type: TextCol},
		{Name: "model", Type: BlobCol},
	})
	if err != nil {
		panic(err) // static schema; cannot fail
	}
	d.tables[ModelsTable] = models
	return d
}

// CreateTable registers a new table. Tables arrive pre-populated (e.g. via
// TableFromDataset), so the journal record carries the initial rows too.
func (d *Database) CreateTable(t *Table) error {
	j := d.journalRef()
	if j != nil {
		j.BeginOp()
		defer j.EndOp()
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.tables[t.Name]; dup {
		return fmt.Errorf("db: table %q already exists", t.Name)
	}
	if j != nil {
		t.rowsMu.RLock()
		rows := t.rowsLocked()
		t.rowsMu.RUnlock()
		if err := j.LogCreateTable(t.Name, t.Columns, rows); err != nil {
			return fmt.Errorf("db: journaling CREATE TABLE %q: %w", t.Name, err)
		}
	}
	d.tables[t.Name] = t
	return nil
}

// Table returns the named table.
func (d *Database) Table(name string) (*Table, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	t, ok := d.tables[name]
	if !ok {
		return nil, fmt.Errorf("db: table %q: %w", name, ErrTableNotFound)
	}
	return t, nil
}

// TableNames lists tables in sorted order.
func (d *Database) TableNames() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	names := make([]string, 0, len(d.tables))
	for n := range d.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// StoreModel serializes the forest and inserts it into the models table
// under the given name.
func (d *Database) StoreModel(name string, f *forest.Forest) error {
	blob, err := model.Marshal(f)
	if err != nil {
		return err
	}
	return d.StoreModelBlob(name, blob)
}

// StoreModelBlob inserts a pre-serialized model blob.
func (d *Database) StoreModelBlob(name string, blob []byte) error {
	if name == "" {
		return fmt.Errorf("db: model needs a name")
	}
	j := d.journalRef()
	if j != nil {
		j.BeginOp()
		defer j.EndOp()
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	t := d.tables[ModelsTable]
	t.rowsMu.Lock()
	defer t.rowsMu.Unlock()
	if idx := t.ColumnIndex("name"); idx >= 0 {
		for r := 0; r < t.numRowsLocked(); r++ {
			if t.cellLocked(r, idx).S == name {
				return fmt.Errorf("db: model %q already stored", name)
			}
		}
	}
	if j != nil {
		if err := j.LogModelStore(name, blob); err != nil {
			return fmt.Errorf("db: journaling model %q: %w", name, err)
		}
	}
	t.insertLocked([]Value{Text(name), Blob(blob)})
	return nil
}

// DeleteModel removes a stored model. Replacing a model (delete + store
// under the same name) changes the blob checksum, which is what downstream
// compiled-model caches key invalidation on.
func (d *Database) DeleteModel(name string) error {
	j := d.journalRef()
	if j != nil {
		j.BeginOp()
		defer j.EndOp()
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	t := d.tables[ModelsTable]
	t.rowsMu.Lock()
	defer t.rowsMu.Unlock()
	nameIdx := t.ColumnIndex("name")
	for r := 0; r < t.numRowsLocked(); r++ {
		if t.cellLocked(r, nameIdx).S == name {
			if j != nil {
				if err := j.LogModelDelete(name); err != nil {
					return fmt.Errorf("db: journaling model delete %q: %w", name, err)
				}
			}
			for ci := range t.Columns {
				t.cols[ci] = append(t.cols[ci][:r], t.cols[ci][r+1:]...)
			}
			t.bumpVersion()
			return nil
		}
	}
	return fmt.Errorf("db: model %q: %w", name, ErrModelNotFound)
}

// LoadModelBlob fetches a model's serialized bytes — the DBMS-side half of
// the pipeline's "model pre-processing" stage; deserialization happens in
// the external runtime.
func (d *Database) LoadModelBlob(name string) ([]byte, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	t := d.tables[ModelsTable]
	t.rowsMu.RLock()
	defer t.rowsMu.RUnlock()
	nameIdx, blobIdx := t.ColumnIndex("name"), t.ColumnIndex("model")
	for r := 0; r < t.numRowsLocked(); r++ {
		if t.cellLocked(r, nameIdx).S == name {
			return t.cellLocked(r, blobIdx).B, nil
		}
	}
	return nil, fmt.Errorf("db: model %q: %w", name, ErrModelNotFound)
}

// ModelNames lists stored model names in insertion order.
func (d *Database) ModelNames() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	t := d.tables[ModelsTable]
	t.rowsMu.RLock()
	defer t.rowsMu.RUnlock()
	idx := t.ColumnIndex("name")
	out := make([]string, 0, t.numRowsLocked())
	for r := 0; r < t.numRowsLocked(); r++ {
		out = append(out, t.cellLocked(r, idx).S)
	}
	return out
}
