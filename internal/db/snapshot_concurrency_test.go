package db_test

import (
	"fmt"
	"sync"
	"testing"

	"accelscore/internal/db"
)

// TestSnapshotCacheUnderConcurrentWrites hammers DatasetSnapshotCached from
// reader goroutines while writers insert rows: every snapshot must be
// internally consistent (the conversion happens outside the snapshot lock,
// so a torn read would show up as a row-count/version mismatch or a -race
// report), and after quiescing the cache must serve the final row count.
func TestSnapshotCacheUnderConcurrentWrites(t *testing.T) {
	d := db.New()
	tbl, err := db.NewTable("obs", []db.Column{
		{Name: "x", Type: db.Float32Col},
		{Name: "label", Type: db.Int64Col},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert([]db.Value{db.Float(1), db.Int(0)}); err != nil {
		t.Fatal(err)
	}
	if err := d.CreateTable(tbl); err != nil {
		t.Fatal(err)
	}

	const writers, readers, rowsPerWriter = 4, 4, 50
	var wg sync.WaitGroup
	errCh := make(chan error, writers+readers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rowsPerWriter; i++ {
				if err := tbl.Insert([]db.Value{db.Float(float32(w)), db.Int(int64(i % 2))}); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				ds, _, err := tbl.DatasetSnapshotCached()
				if err != nil {
					errCh <- err
					return
				}
				// A consistent conversion has exactly one label per row and
				// every row fully copied.
				if len(ds.Y) != ds.NumRecords() {
					errCh <- fmt.Errorf("torn snapshot: %d labels for %d rows", len(ds.Y), ds.NumRecords())
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	wantRows := 1 + writers*rowsPerWriter
	if got := tbl.NumRows(); got != wantRows {
		t.Fatalf("table has %d rows, want %d", got, wantRows)
	}
	// Quiesced: the next snapshot must see every insert, and the one after
	// must be the cached copy of the same version.
	ds, _, err := tbl.DatasetSnapshotCached()
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumRecords() != wantRows {
		t.Fatalf("final snapshot has %d rows, want %d", ds.NumRecords(), wantRows)
	}
	ds2, hit, err := tbl.DatasetSnapshotCached()
	if err != nil {
		t.Fatal(err)
	}
	if !hit || ds2 != ds {
		t.Fatalf("settled snapshot not cached (hit=%v)", hit)
	}
}

// TestSelectConsistentUnderMutation runs SELECT scans concurrently with
// row-mutating UPDATE/DELETE statements: each scan holds the table's read
// lock for its whole duration, so the match+copy can never observe a
// half-applied write (verified by -race and by bounds errors).
func TestSelectConsistentUnderMutation(t *testing.T) {
	d := db.New()
	tbl, err := db.NewTable("m", []db.Column{
		{Name: "x", Type: db.Int64Col},
		{Name: "y", Type: db.Int64Col},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := tbl.Insert([]db.Value{db.Int(int64(i)), db.Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.CreateTable(tbl); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, _, err := d.Query("UPDATE m SET y = 1 WHERE x < 100"); err != nil {
					errCh <- err
					return
				}
				if _, _, err := d.Query("UPDATE m SET y = 2 WHERE x >= 100"); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				res, _, err := d.Query("SELECT y FROM m WHERE x = 150")
				if err != nil {
					errCh <- err
					return
				}
				if res.NumRows() != 1 {
					errCh <- fmt.Errorf("point lookup returned %d rows", res.NumRows())
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}
