package db

import (
	"fmt"
	"math"
)

// Select executes a SELECT statement and returns the result as a new table.
// The source table's read lock is held for the whole scan, so a SELECT sees
// one consistent row set while concurrent SELECTs and scoring queries over
// the same table proceed in parallel.
func (d *Database) Select(st *SelectStmt) (*Table, error) {
	src, err := d.Table(st.Table)
	if err != nil {
		return nil, err
	}
	src.rowsMu.RLock()
	defer src.rowsMu.RUnlock()

	// Resolve projection.
	var colIdx []int
	if st.Columns == nil {
		colIdx = make([]int, len(src.Columns))
		for i := range colIdx {
			colIdx[i] = i
		}
	} else {
		for _, name := range st.Columns {
			idx := src.ColumnIndex(name)
			if idx < 0 {
				return nil, fmt.Errorf("db: column %q does not exist in %q", name, st.Table)
			}
			colIdx = append(colIdx, idx)
		}
	}

	// Resolve predicates.
	type pred struct {
		col  int
		typ  ColumnType
		cond Condition
	}
	var preds []pred
	for _, c := range st.Where {
		idx := src.ColumnIndex(c.Column)
		if idx < 0 {
			return nil, fmt.Errorf("db: WHERE column %q does not exist in %q", c.Column, st.Table)
		}
		typ := src.Columns[idx].Type
		if typ == BlobCol {
			return nil, fmt.Errorf("db: cannot filter on VARBINARY column %q", c.Column)
		}
		if c.Value.IsString != (typ == TextCol) {
			return nil, fmt.Errorf("db: type mismatch filtering %q", c.Column)
		}
		preds = append(preds, pred{col: idx, typ: typ, cond: c})
	}

	// Collect matching row indices. Early exit on TOP is only safe when no
	// ordering or aggregation follows.
	earlyStop := st.Top > 0 && st.OrderBy == "" && len(st.Aggregates) == 0
	var matched []int
	for r := 0; r < src.numRowsLocked(); r++ {
		match := true
		for _, p := range preds {
			if !evalPred(src.cellLocked(r, p.col), p.typ, p.cond) {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		matched = append(matched, r)
		if earlyStop && len(matched) >= st.Top {
			break
		}
	}

	if len(st.Aggregates) > 0 {
		return d.aggregate(src, matched, st.Aggregates)
	}
	if st.OrderBy != "" {
		if err := orderRows(src, matched, st.OrderBy, st.OrderDesc); err != nil {
			return nil, err
		}
	}
	if st.Top > 0 && len(matched) > st.Top {
		matched = matched[:st.Top]
	}

	outCols := make([]Column, len(colIdx))
	for i, ci := range colIdx {
		outCols[i] = src.Columns[ci]
	}
	out, err := NewTable("result", outCols)
	if err != nil {
		return nil, err
	}
	for _, r := range matched {
		row := make([]Value, len(colIdx))
		for i, ci := range colIdx {
			row[i] = src.cellLocked(r, ci)
		}
		if err := out.Insert(row); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// evalPred evaluates one comparison predicate against a cell.
func evalPred(v Value, typ ColumnType, c Condition) bool {
	switch typ {
	case TextCol:
		return compareStrings(v.S, c.Value.S, c.Op)
	case Float32Col:
		return compareFloats(float64(v.F), c.Value.N, c.Op)
	case Int64Col:
		return compareFloats(float64(v.I), c.Value.N, c.Op)
	default:
		return false
	}
}

func compareStrings(a, b, op string) bool {
	switch op {
	case "=":
		return a == b
	case "<>":
		return a != b
	case "<":
		return a < b
	case "<=":
		return a <= b
	case ">":
		return a > b
	case ">=":
		return a >= b
	}
	return false
}

func compareFloats(a, b float64, op string) bool {
	const eps = 1e-9
	switch op {
	case "=":
		return math.Abs(a-b) <= eps
	case "<>":
		return math.Abs(a-b) > eps
	case "<":
		return a < b
	case "<=":
		return a <= b
	case ">":
		return a > b
	case ">=":
		return a >= b
	}
	return false
}

// Query parses and executes a statement. SELECT statements return a result
// table; CREATE TABLE and INSERT execute and return nil tables. EXEC
// statements are returned to the caller unexecuted (the analytics pipeline
// owns stored-procedure semantics); callers dispatch on the returned
// Statement.
func (d *Database) Query(sql string) (*Table, Statement, error) {
	st, err := Parse(sql)
	if err != nil {
		return nil, nil, err
	}
	switch s := st.(type) {
	case *SelectStmt:
		t, err := d.Select(s)
		return t, st, err
	case *CreateStmt:
		return nil, st, d.Create(s)
	case *InsertStmt:
		_, err := d.InsertRows(s)
		return nil, st, err
	case *DeleteStmt:
		_, err := d.Delete(s)
		return nil, st, err
	case *UpdateStmt:
		_, err := d.Update(s)
		return nil, st, err
	case *ExecStmt:
		return nil, st, nil
	case *PredictStmt:
		// Like EXEC: the analytics pipeline owns fused-scoring semantics.
		return nil, st, nil
	default:
		return nil, nil, fmt.Errorf("db: unsupported statement type %T", st)
	}
}
