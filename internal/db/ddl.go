package db

import (
	"fmt"
	"sort"
	"strings"
)

// CreateStmt is CREATE TABLE name (col TYPE, ...).
type CreateStmt struct {
	Table   string
	Columns []Column
}

func (*CreateStmt) stmt() {}

// InsertStmt is INSERT INTO name VALUES (lit, ...)[, (lit, ...)].
type InsertStmt struct {
	Table string
	Rows  [][]Literal
}

func (*InsertStmt) stmt() {}

// AggFunc enumerates the supported aggregate functions.
type AggFunc int

// Supported aggregates.
const (
	AggCount AggFunc = iota
	AggSum
	AggAvg
	AggMin
	AggMax
)

// String returns the SQL name.
func (a AggFunc) String() string {
	switch a {
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	default:
		return fmt.Sprintf("AGG(%d)", int(a))
	}
}

// AggExpr is one aggregate projection, e.g. AVG(petal_width). COUNT uses
// Column == "*".
type AggExpr struct {
	Fn     AggFunc
	Column string
}

// parseColumnType maps a T-SQL-ish type name.
func parseColumnType(name string) (ColumnType, error) {
	switch strings.ToUpper(name) {
	case "REAL", "FLOAT":
		return Float32Col, nil
	case "BIGINT", "INT", "INTEGER":
		return Int64Col, nil
	case "NVARCHAR", "VARCHAR", "TEXT":
		return TextCol, nil
	case "VARBINARY", "BLOB":
		return BlobCol, nil
	default:
		return 0, fmt.Errorf("db: unknown column type %q", name)
	}
}

// createStmt parses after the CREATE keyword.
func (p *parser) createStmt() (Statement, error) {
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokLParen {
		return nil, p.errorf("expected '(' after table name")
	}
	p.next()
	st := &CreateStmt{Table: name}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		typeName, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		typ, err := parseColumnType(typeName)
		if err != nil {
			return nil, p.errorf("%v", err)
		}
		st.Columns = append(st.Columns, Column{Name: col, Type: typ})
		if p.peek().kind == tokComma {
			p.next()
			continue
		}
		break
	}
	if p.peek().kind != tokRParen {
		return nil, p.errorf("expected ')' closing column list")
	}
	p.next()
	return st, nil
}

// insertStmt parses after the INSERT keyword.
func (p *parser) insertStmt() (Statement, error) {
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	st := &InsertStmt{Table: name}
	for {
		if p.peek().kind != tokLParen {
			return nil, p.errorf("expected '(' starting a VALUES row")
		}
		p.next()
		var row []Literal
		for {
			lit, err := p.literal()
			if err != nil {
				return nil, err
			}
			row = append(row, lit)
			if p.peek().kind == tokComma {
				p.next()
				continue
			}
			break
		}
		if p.peek().kind != tokRParen {
			return nil, p.errorf("expected ')' closing a VALUES row")
		}
		p.next()
		st.Rows = append(st.Rows, row)
		if p.peek().kind == tokComma {
			p.next()
			continue
		}
		break
	}
	return st, nil
}

// Create executes a CREATE TABLE statement.
func (d *Database) Create(st *CreateStmt) error {
	t, err := NewTable(st.Table, st.Columns)
	if err != nil {
		return err
	}
	return d.CreateTable(t)
}

// InsertRows executes an INSERT statement, coercing literals to the column
// types. All rows are coerced before any is applied or journaled, so a bad
// statement changes nothing and never reaches the WAL.
func (d *Database) InsertRows(st *InsertStmt) (int, error) {
	t, err := d.Table(st.Table)
	if err != nil {
		return 0, err
	}
	rows := make([][]Value, len(st.Rows))
	for ri, litRow := range st.Rows {
		if len(litRow) != len(t.Columns) {
			return 0, fmt.Errorf("db: INSERT row %d has %d values, table %q has %d columns",
				ri, len(litRow), st.Table, len(t.Columns))
		}
		row := make([]Value, len(litRow))
		for ci, lit := range litRow {
			v, err := coerceLiteral(lit, t.Columns[ci].Type)
			if err != nil {
				return 0, fmt.Errorf("db: INSERT row %d column %q: %w", ri, t.Columns[ci].Name, err)
			}
			row[ci] = v
		}
		rows[ri] = row
	}
	j := d.journalRef()
	if j != nil {
		j.BeginOp()
		defer j.EndOp()
	}
	t.rowsMu.Lock()
	defer t.rowsMu.Unlock()
	if j != nil {
		if err := j.LogInsert(st.Table, t.Columns, rows); err != nil {
			return 0, fmt.Errorf("db: journaling INSERT into %q: %w", st.Table, err)
		}
	}
	for _, row := range rows {
		t.insertLocked(row)
	}
	return len(rows), nil
}

// coerceLiteral converts a parsed literal to a typed cell.
func coerceLiteral(lit Literal, typ ColumnType) (Value, error) {
	switch typ {
	case Float32Col:
		if lit.IsString {
			return Value{}, fmt.Errorf("string literal for REAL column")
		}
		return Float(float32(lit.N)), nil
	case Int64Col:
		if lit.IsString {
			return Value{}, fmt.Errorf("string literal for BIGINT column")
		}
		return Int(int64(lit.N)), nil
	case TextCol:
		if !lit.IsString {
			return Value{}, fmt.Errorf("numeric literal for NVARCHAR column")
		}
		return Text(lit.S), nil
	case BlobCol:
		return Value{}, fmt.Errorf("VARBINARY columns cannot be inserted via SQL literals")
	default:
		return Value{}, fmt.Errorf("unsupported column type")
	}
}

// aggregate executes the aggregate projections of a SELECT over the
// filtered rows and returns a single-row table.
func (d *Database) aggregate(src *Table, rows []int, aggs []AggExpr) (*Table, error) {
	cols := make([]Column, len(aggs))
	out := make([]Value, len(aggs))
	for i, a := range aggs {
		label := fmt.Sprintf("%s(%s)", a.Fn, a.Column)
		if a.Fn == AggCount {
			cols[i] = Column{Name: label, Type: Int64Col}
			out[i] = Int(int64(len(rows)))
			continue
		}
		ci := src.ColumnIndex(a.Column)
		if ci < 0 {
			return nil, fmt.Errorf("db: aggregate column %q does not exist", a.Column)
		}
		typ := src.Columns[ci].Type
		if typ != Float32Col && typ != Int64Col {
			return nil, fmt.Errorf("db: cannot aggregate non-numeric column %q", a.Column)
		}
		cell := func(r int) float64 {
			v := src.cellLocked(r, ci)
			if typ == Float32Col {
				return float64(v.F)
			}
			return float64(v.I)
		}
		if len(rows) == 0 {
			cols[i] = Column{Name: label, Type: Float32Col}
			out[i] = Float(0)
			continue
		}
		var acc float64
		switch a.Fn {
		case AggSum, AggAvg:
			for _, r := range rows {
				acc += cell(r)
			}
			if a.Fn == AggAvg {
				acc /= float64(len(rows))
			}
		case AggMin:
			acc = cell(rows[0])
			for _, r := range rows[1:] {
				if v := cell(r); v < acc {
					acc = v
				}
			}
		case AggMax:
			acc = cell(rows[0])
			for _, r := range rows[1:] {
				if v := cell(r); v > acc {
					acc = v
				}
			}
		}
		cols[i] = Column{Name: label, Type: Float32Col}
		out[i] = Float(float32(acc))
	}
	res, err := NewTable("result", cols)
	if err != nil {
		return nil, err
	}
	if err := res.Insert(out); err != nil {
		return nil, err
	}
	return res, nil
}

// orderRows sorts row indices by the given column.
func orderRows(src *Table, rows []int, column string, desc bool) error {
	ci := src.ColumnIndex(column)
	if ci < 0 {
		return fmt.Errorf("db: ORDER BY column %q does not exist", column)
	}
	typ := src.Columns[ci].Type
	if typ == BlobCol {
		return fmt.Errorf("db: cannot ORDER BY VARBINARY column %q", column)
	}
	less := func(a, b int) bool {
		va, vb := src.cellLocked(a, ci), src.cellLocked(b, ci)
		switch typ {
		case Float32Col:
			return va.F < vb.F
		case Int64Col:
			return va.I < vb.I
		default:
			return va.S < vb.S
		}
	}
	sort.SliceStable(rows, func(i, j int) bool {
		if desc {
			return less(rows[j], rows[i])
		}
		return less(rows[i], rows[j])
	})
	return nil
}

// DeleteStmt is DELETE FROM table [WHERE cond [AND cond]...].
type DeleteStmt struct {
	Table string
	Where []Condition
}

func (*DeleteStmt) stmt() {}

// UpdateStmt is UPDATE table SET col = lit [, col = lit]... [WHERE ...].
type UpdateStmt struct {
	Table string
	Set   map[string]Literal
	Where []Condition
}

func (*UpdateStmt) stmt() {}

// deleteStmt parses after the DELETE keyword.
func (p *parser) deleteStmt() (Statement, error) {
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st := &DeleteStmt{Table: name}
	if p.keyword("WHERE") {
		for {
			cond, err := p.condition()
			if err != nil {
				return nil, err
			}
			st.Where = append(st.Where, cond)
			if !p.keyword("AND") {
				break
			}
		}
	}
	return st, nil
}

// updateStmt parses after the UPDATE keyword.
func (p *parser) updateStmt() (Statement, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	st := &UpdateStmt{Table: name, Set: map[string]Literal{}}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if p.peek().kind != tokEq {
			return nil, p.errorf("expected '=' after column %s", col)
		}
		p.next()
		lit, err := p.literal()
		if err != nil {
			return nil, err
		}
		if _, dup := st.Set[col]; dup {
			return nil, p.errorf("column %s assigned twice", col)
		}
		st.Set[col] = lit
		if p.peek().kind == tokComma {
			p.next()
			continue
		}
		break
	}
	if p.keyword("WHERE") {
		for {
			cond, err := p.condition()
			if err != nil {
				return nil, err
			}
			st.Where = append(st.Where, cond)
			if !p.keyword("AND") {
				break
			}
		}
	}
	return st, nil
}

// matchRows evaluates WHERE predicates and returns matching row indices.
// Callers hold src.rowsMu (read for SELECT-like scans, write when the match
// feeds a mutation so the matched indices stay valid).
func (d *Database) matchRows(src *Table, where []Condition) ([]int, error) {
	type pred struct {
		col  int
		typ  ColumnType
		cond Condition
	}
	var preds []pred
	for _, c := range where {
		idx := src.ColumnIndex(c.Column)
		if idx < 0 {
			return nil, fmt.Errorf("db: WHERE column %q does not exist in %q", c.Column, src.Name)
		}
		typ := src.Columns[idx].Type
		if typ == BlobCol {
			return nil, fmt.Errorf("db: cannot filter on VARBINARY column %q", c.Column)
		}
		if c.Value.IsString != (typ == TextCol) {
			return nil, fmt.Errorf("db: type mismatch filtering %q", c.Column)
		}
		preds = append(preds, pred{col: idx, typ: typ, cond: c})
	}
	var out []int
	for r := 0; r < src.numRowsLocked(); r++ {
		ok := true
		for _, p := range preds {
			if !evalPred(src.cellLocked(r, p.col), p.typ, p.cond) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, r)
		}
	}
	return out, nil
}

// Delete executes a DELETE statement, returning the number of removed rows.
// The match and the mutation happen under one write lock so concurrent
// readers never see half-deleted rows.
func (d *Database) Delete(st *DeleteStmt) (int, error) {
	t, err := d.Table(st.Table)
	if err != nil {
		return 0, err
	}
	j := d.journalRef()
	if j != nil {
		j.BeginOp()
		defer j.EndOp()
	}
	t.rowsMu.Lock()
	defer t.rowsMu.Unlock()
	victims, err := d.matchRows(t, st.Where)
	if err != nil {
		return 0, err
	}
	if len(victims) == 0 {
		return 0, nil
	}
	// Logical logging: replay re-runs the DELETE against the identical
	// pre-state, so it removes exactly these rows. No-op deletes (above)
	// never reach the WAL.
	if j != nil {
		if err := j.LogDelete(st); err != nil {
			return 0, fmt.Errorf("db: journaling DELETE from %q: %w", st.Table, err)
		}
	}
	drop := make(map[int]bool, len(victims))
	for _, r := range victims {
		drop[r] = true
	}
	n := t.numRowsLocked()
	for ci := range t.Columns {
		kept := t.cols[ci][:0]
		for r := 0; r < n; r++ {
			if !drop[r] {
				kept = append(kept, t.cols[ci][r])
			}
		}
		t.cols[ci] = kept
	}
	t.bumpVersion()
	return len(victims), nil
}

// Update executes an UPDATE statement, returning the number of changed rows.
// Match and mutation share one write lock, like Delete.
func (d *Database) Update(st *UpdateStmt) (int, error) {
	t, err := d.Table(st.Table)
	if err != nil {
		return 0, err
	}
	j := d.journalRef()
	if j != nil {
		j.BeginOp()
		defer j.EndOp()
	}
	t.rowsMu.Lock()
	defer t.rowsMu.Unlock()
	type setter struct {
		col int
		val Value
	}
	var setters []setter
	for col, lit := range st.Set {
		ci := t.ColumnIndex(col)
		if ci < 0 {
			return 0, fmt.Errorf("db: SET column %q does not exist in %q", col, st.Table)
		}
		v, err := coerceLiteral(lit, t.Columns[ci].Type)
		if err != nil {
			return 0, fmt.Errorf("db: SET %s: %w", col, err)
		}
		setters = append(setters, setter{col: ci, val: v})
	}
	rows, err := d.matchRows(t, st.Where)
	if err != nil {
		return 0, err
	}
	if len(rows) == 0 {
		return 0, nil
	}
	// Logical logging, same contract as Delete.
	if j != nil {
		if err := j.LogUpdate(st); err != nil {
			return 0, fmt.Errorf("db: journaling UPDATE %q: %w", st.Table, err)
		}
	}
	for _, r := range rows {
		for _, s := range setters {
			t.cols[s.col][r] = s.val
		}
	}
	t.bumpVersion()
	return len(rows), nil
}
