package db

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"sort"
)

// snapshot is the serialized form of a database: exported mirror structs so
// encoding/gob can see them without exposing Table internals.
type snapshot struct {
	Tables []tableSnapshot
}

type tableSnapshot struct {
	Name    string
	Columns []Column
	Cols    [][]Value
}

// Save writes the whole database (tables and stored models) to w.
func (d *Database) Save(w io.Writer) error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var snap snapshot
	// Deterministic order for reproducible files. Column vectors are deep
	// copied under each table's read lock so a concurrent UPDATE (which
	// rewrites cells in place) cannot tear the encoded snapshot.
	for _, name := range d.tableNamesLocked() {
		t := d.tables[name]
		t.rowsMu.RLock()
		cols := make([][]Value, len(t.cols))
		for ci, col := range t.cols {
			cols[ci] = append([]Value(nil), col...)
		}
		t.rowsMu.RUnlock()
		snap.Tables = append(snap.Tables, tableSnapshot{
			Name:    t.Name,
			Columns: t.Columns,
			Cols:    cols,
		})
	}
	return gob.NewEncoder(w).Encode(snap)
}

// tableNamesLocked returns sorted table names; callers hold the lock.
func (d *Database) tableNamesLocked() []string {
	names := make([]string, 0, len(d.tables))
	for n := range d.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Load reads a database previously written by Save.
func Load(r io.Reader) (*Database, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("db: decoding snapshot: %w", err)
	}
	d := &Database{tables: make(map[string]*Table)}
	for _, ts := range snap.Tables {
		t, err := NewTable(ts.Name, ts.Columns)
		if err != nil {
			return nil, fmt.Errorf("db: snapshot table %q: %w", ts.Name, err)
		}
		if len(ts.Cols) != len(ts.Columns) {
			return nil, fmt.Errorf("db: snapshot table %q has %d column vectors for %d columns",
				ts.Name, len(ts.Cols), len(ts.Columns))
		}
		n := -1
		for ci, col := range ts.Cols {
			if n == -1 {
				n = len(col)
			} else if len(col) != n {
				return nil, fmt.Errorf("db: snapshot table %q column %d has %d rows, want %d",
					ts.Name, ci, len(col), n)
			}
		}
		t.cols = ts.Cols
		d.tables[ts.Name] = t
	}
	if _, ok := d.tables[ModelsTable]; !ok {
		// Old or hand-built snapshots without a models table still get one.
		models, err := NewTable(ModelsTable, []Column{
			{Name: "name", Type: TextCol},
			{Name: "model", Type: BlobCol},
		})
		if err != nil {
			return nil, err
		}
		d.tables[ModelsTable] = models
	}
	return d, nil
}

// SaveFile writes the database to a file.
func (d *Database) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = d.Save(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// LoadFile reads a database from a file.
func LoadFile(path string) (*Database, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
