package db

import (
	"bufio"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"

	"accelscore/internal/storage/pagefmt"
)

// Snapshot file layout (format 1):
//
//	magic "ACSNAP01" (8 bytes)
//	frame{ u16 version | uvarint tableCount }
//	per table, sorted by name:
//	  frame{ name | uvarint ncols | (colName, u8 colType)* | uvarint rows | u64 tableVersion }
//	  per column, in schema order: checksummed pages until rows are covered
//	frame{ "ACSNEND" }
//
// Pages stream straight out of the column store — Save never materializes a
// copy of the data (the old gob path deep-copied every table before
// encoding). Every frame and page carries a CRC, so truncation or bit rot
// anywhere in the file surfaces as a typed error on load, never as a
// silently wrong table. Pages of one column are contiguous and
// self-describing (column index, row range), which is what lets a reader
// recover only a feature subset's pages — the on-disk mirror of
// DatasetSnapshotFor's projection pruning.
var snapshotMagic = [8]byte{'A', 'C', 'S', 'N', 'A', 'P', '0', '1'}

const (
	snapshotVersion  = 1
	snapshotEnd      = "ACSNEND"
	maxHeaderFrame   = 1 << 24 // 16 MiB bounds schema/table headers
	maxSnapshotCols  = 1 << 16
	maxSnapshotBytes = 1 << 40 // sanity cap on declared row counts (bytes)
)

// Typed persistence errors.
var (
	// ErrSnapshotFormat reports bytes that are neither the binary page
	// format nor a legacy gob snapshot — the file needs migration or is
	// corrupt.
	ErrSnapshotFormat = errors.New("db: unrecognized snapshot format")
	// ErrSnapshotCorrupt reports a binary snapshot that fails validation
	// (truncated, checksum mismatch, impossible structure).
	ErrSnapshotCorrupt = errors.New("db: corrupt snapshot")
)

// legacySnapshot is the pre-binary serialized form (encoding/gob): exported
// mirror structs so gob can see them without exposing Table internals. Load
// still accepts it so databases written before the page format exist can be
// read and migrated by a single Save.
type legacySnapshot struct {
	Tables []legacyTableSnapshot
}

type legacyTableSnapshot struct {
	Name    string
	Columns []Column
	Cols    [][]Value
}

// colType maps a schema column type to its page encoding.
func colType(t ColumnType) pagefmt.ColType {
	switch t {
	case Float32Col:
		return pagefmt.Float32
	case Int64Col:
		return pagefmt.Int64
	case TextCol:
		return pagefmt.Text
	default:
		return pagefmt.Blob
	}
}

// Save writes the whole database (tables and stored models) to w in the
// binary column-page format. Data streams page by page under each table's
// read lock — memory use is bounded by one page buffer, not by the database
// size, so a multi-gigabyte table saves without a deep copy.
func (d *Database) Save(w io.Writer) error {
	d.mu.RLock()
	defer d.mu.RUnlock()

	bw := bufio.NewWriterSize(w, 64<<10)
	if _, err := bw.Write(snapshotMagic[:]); err != nil {
		return err
	}
	names := d.tableNamesLocked()

	// scratch holds encoded frames and pages between writes; reused so Save
	// allocates a constant number of buffers regardless of table size.
	scratch := make([]byte, 0, 4<<10)
	hdr := binary.LittleEndian.AppendUint16(scratch[:0], snapshotVersion)
	hdr = binary.AppendUvarint(hdr, uint64(len(names)))
	scratch = pagefmt.AppendFrame(scratch[len(hdr):len(hdr)], hdr)
	if _, err := bw.Write(scratch); err != nil {
		return err
	}

	var b pagefmt.Builder
	var pageBuf []byte
	for _, name := range names {
		t := d.tables[name]
		if err := t.savePages(bw, &b, &pageBuf); err != nil {
			return fmt.Errorf("db: saving table %q: %w", name, err)
		}
	}

	end := pagefmt.AppendFrame(pageBuf[:0], []byte(snapshotEnd))
	if _, err := bw.Write(end); err != nil {
		return err
	}
	return bw.Flush()
}

// savePages streams one table (header frame + column pages) to w under the
// table's read lock, so a concurrent UPDATE cannot tear the encoded rows.
func (t *Table) savePages(w io.Writer, b *pagefmt.Builder, pageBuf *[]byte) error {
	t.rowsMu.RLock()
	defer t.rowsMu.RUnlock()

	rows := t.numRowsLocked()
	version := t.version.Load()

	hdr := (*pageBuf)[:0]
	hdr = pagefmt.AppendString(hdr, t.Name)
	hdr = binary.AppendUvarint(hdr, uint64(len(t.Columns)))
	for _, c := range t.Columns {
		hdr = pagefmt.AppendString(hdr, c.Name)
		hdr = append(hdr, byte(c.Type))
	}
	hdr = binary.AppendUvarint(hdr, uint64(rows))
	hdr = binary.LittleEndian.AppendUint64(hdr, version)
	framed := pagefmt.AppendFrame(hdr[len(hdr):len(hdr)], hdr)
	if _, err := w.Write(framed); err != nil {
		return err
	}
	*pageBuf = framed[:0]

	emit := func(p *pagefmt.Page) error {
		*pageBuf = p.AppendTo((*pageBuf)[:0])
		_, err := w.Write(*pageBuf)
		return err
	}
	for ci, col := range t.Columns {
		b.Reset(colType(col.Type), uint32(ci), version, pagefmt.DefaultPayload, emit)
		src := t.cols[ci]
		var err error
		for r := 0; r < rows && err == nil; r++ {
			switch col.Type {
			case Float32Col:
				err = b.AddFloat32(src[r].F)
			case Int64Col:
				err = b.AddInt64(src[r].I)
			case TextCol:
				err = b.AddString(src[r].S)
			default:
				err = b.AddBytes(src[r].B)
			}
		}
		if err == nil {
			err = b.Flush()
		}
		if err != nil {
			return fmt.Errorf("column %q: %w", col.Name, err)
		}
	}
	return nil
}

// tableNamesLocked returns sorted table names; callers hold the lock.
func (d *Database) tableNamesLocked() []string {
	names := make([]string, 0, len(d.tables))
	for n := range d.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Load reads a database previously written by Save. Both formats are
// accepted: the binary page format (sniffed by magic) and the legacy gob
// snapshot from before the storage engine existed. Bytes that are neither
// fail with ErrSnapshotFormat; a binary snapshot damaged anywhere — torn
// tail, flipped bit, impossible structure — fails with ErrSnapshotCorrupt
// rather than loading wrong data.
func Load(r io.Reader) (*Database, error) {
	var magic [8]byte
	n, err := io.ReadFull(r, magic[:])
	if err != nil && !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
		return nil, err
	}
	if magic == snapshotMagic {
		return loadBinary(bufio.NewReaderSize(r, 64<<10))
	}
	return loadLegacyGob(io.MultiReader(newSliceReader(magic[:n]), r))
}

// newSliceReader avoids importing bytes just for a prefix reader.
func newSliceReader(b []byte) io.Reader { return &sliceReader{b: b} }

type sliceReader struct{ b []byte }

func (s *sliceReader) Read(p []byte) (int, error) {
	if len(s.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, s.b)
	s.b = s.b[n:]
	return n, nil
}

// loadBinary decodes the page-format snapshot body after the magic.
func loadBinary(r io.Reader) (*Database, error) {
	hdr, err := pagefmt.ReadFrame(r, maxHeaderFrame)
	if err != nil {
		return nil, fmt.Errorf("%w: file header: %v", ErrSnapshotCorrupt, err)
	}
	if len(hdr) < 2 {
		return nil, fmt.Errorf("%w: short file header", ErrSnapshotCorrupt)
	}
	if v := binary.LittleEndian.Uint16(hdr[:2]); v != snapshotVersion {
		return nil, fmt.Errorf("%w: unsupported snapshot version %d", ErrSnapshotCorrupt, v)
	}
	tableCount, sz := binary.Uvarint(hdr[2:])
	if sz <= 0 || tableCount > 1<<20 {
		return nil, fmt.Errorf("%w: bad table count", ErrSnapshotCorrupt)
	}

	d := &Database{tables: make(map[string]*Table)}
	for i := uint64(0); i < tableCount; i++ {
		t, err := loadTable(r)
		if err != nil {
			return nil, err
		}
		if _, dup := d.tables[t.Name]; dup {
			return nil, fmt.Errorf("%w: duplicate table %q", ErrSnapshotCorrupt, t.Name)
		}
		d.tables[t.Name] = t
	}
	end, err := pagefmt.ReadFrame(r, maxHeaderFrame)
	if err != nil || string(end) != snapshotEnd {
		return nil, fmt.Errorf("%w: missing end marker", ErrSnapshotCorrupt)
	}

	if _, ok := d.tables[ModelsTable]; !ok {
		// Old or hand-built snapshots without a models table still get one.
		models, err := NewTable(ModelsTable, []Column{
			{Name: "name", Type: TextCol},
			{Name: "model", Type: BlobCol},
		})
		if err != nil {
			return nil, err
		}
		d.tables[ModelsTable] = models
	}
	return d, nil
}

// loadTable decodes one table header frame plus its column pages.
func loadTable(r io.Reader) (*Table, error) {
	hdr, err := pagefmt.ReadFrame(r, maxHeaderFrame)
	if err != nil {
		return nil, fmt.Errorf("%w: table header: %v", ErrSnapshotCorrupt, err)
	}
	cr := pagefmt.NewCellReader(hdr)
	name, err := cr.String()
	if err != nil {
		return nil, fmt.Errorf("%w: table name: %v", ErrSnapshotCorrupt, err)
	}
	rest := hdr[len(hdr)-cr.Remaining():]
	ncols, sz := binary.Uvarint(rest)
	if sz <= 0 || ncols == 0 || ncols > maxSnapshotCols {
		return nil, fmt.Errorf("%w: table %q: bad column count", ErrSnapshotCorrupt, name)
	}
	rest = rest[sz:]
	cols := make([]Column, 0, ncols)
	for c := uint64(0); c < ncols; c++ {
		ccr := pagefmt.NewCellReader(rest)
		cname, err := ccr.String()
		if err != nil || ccr.Remaining() < 1 {
			return nil, fmt.Errorf("%w: table %q: bad column header", ErrSnapshotCorrupt, name)
		}
		rest = rest[len(rest)-ccr.Remaining():]
		typ := ColumnType(rest[0])
		rest = rest[1:]
		if typ < Float32Col || typ > BlobCol {
			return nil, fmt.Errorf("%w: table %q column %q: unknown type %d", ErrSnapshotCorrupt, name, cname, typ)
		}
		cols = append(cols, Column{Name: cname, Type: typ})
	}
	rows, sz := binary.Uvarint(rest)
	if sz <= 0 || len(rest[sz:]) < 8 {
		return nil, fmt.Errorf("%w: table %q: bad row count", ErrSnapshotCorrupt, name)
	}
	if rows*4 > maxSnapshotBytes {
		return nil, fmt.Errorf("%w: table %q: implausible row count %d", ErrSnapshotCorrupt, name, rows)
	}

	t, err := NewTable(name, cols)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSnapshotCorrupt, err)
	}
	for ci, col := range cols {
		vals, err := loadColumnPages(r, colType(col.Type), uint32(ci), rows)
		if err != nil {
			return nil, fmt.Errorf("%w: table %q column %q: %v", ErrSnapshotCorrupt, name, col.Name, err)
		}
		t.cols[ci] = vals
	}
	return t, nil
}

// loadColumnPages reads pages for one column until rows cells are decoded.
func loadColumnPages(r io.Reader, typ pagefmt.ColType, colIndex uint32, rows uint64) ([]Value, error) {
	vals := make([]Value, 0, min(rows, 1<<20))
	var got uint64
	for got < rows {
		p, err := pagefmt.ReadPage(r)
		if err != nil {
			return nil, err
		}
		if p.Type != typ || p.ColIndex != colIndex {
			return nil, fmt.Errorf("page for column %d type %d, want column %d type %d",
				p.ColIndex, p.Type, colIndex, typ)
		}
		if p.StartRow != got {
			return nil, fmt.Errorf("page starts at row %d, want %d", p.StartRow, got)
		}
		if got+uint64(p.Rows) > rows {
			return nil, fmt.Errorf("pages overflow declared row count %d", rows)
		}
		cr := pagefmt.NewCellReader(p.Payload)
		for i := uint32(0); i < p.Rows; i++ {
			var v Value
			var cellErr error
			switch typ {
			case pagefmt.Float32:
				v.F, cellErr = cr.Float32()
			case pagefmt.Int64:
				v.I, cellErr = cr.Int64()
			case pagefmt.Text:
				v.S, cellErr = cr.String()
			default:
				var b []byte
				b, cellErr = cr.Bytes()
				if cellErr == nil {
					v.B = append([]byte(nil), b...)
				}
			}
			if cellErr != nil {
				return nil, cellErr
			}
			vals = append(vals, v)
		}
		if cr.Remaining() != 0 {
			return nil, fmt.Errorf("%d trailing payload bytes", cr.Remaining())
		}
		got += uint64(p.Rows)
	}
	return vals, nil
}

// loadLegacyGob decodes the pre-binary gob snapshot format.
func loadLegacyGob(r io.Reader) (*Database, error) {
	var snap legacySnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("%w (not a page snapshot, and gob decode failed: %v)", ErrSnapshotFormat, err)
	}
	d := &Database{tables: make(map[string]*Table)}
	for _, ts := range snap.Tables {
		t, err := NewTable(ts.Name, ts.Columns)
		if err != nil {
			return nil, fmt.Errorf("db: snapshot table %q: %w", ts.Name, err)
		}
		if len(ts.Cols) != len(ts.Columns) {
			return nil, fmt.Errorf("db: snapshot table %q has %d column vectors for %d columns",
				ts.Name, len(ts.Cols), len(ts.Columns))
		}
		n := -1
		for ci, col := range ts.Cols {
			if n == -1 {
				n = len(col)
			} else if len(col) != n {
				return nil, fmt.Errorf("db: snapshot table %q column %d has %d rows, want %d",
					ts.Name, ci, len(col), n)
			}
		}
		t.cols = ts.Cols
		d.tables[ts.Name] = t
	}
	if _, ok := d.tables[ModelsTable]; !ok {
		models, err := NewTable(ModelsTable, []Column{
			{Name: "name", Type: TextCol},
			{Name: "model", Type: BlobCol},
		})
		if err != nil {
			return nil, err
		}
		d.tables[ModelsTable] = models
	}
	return d, nil
}

// saveLegacyGob writes the deprecated gob format; it exists so tests can
// construct pre-migration files and prove Load still reads them.
func (d *Database) saveLegacyGob(w io.Writer) error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var snap legacySnapshot
	for _, name := range d.tableNamesLocked() {
		t := d.tables[name]
		t.rowsMu.RLock()
		cols := make([][]Value, len(t.cols))
		for ci, col := range t.cols {
			cols[ci] = append([]Value(nil), col...)
		}
		t.rowsMu.RUnlock()
		snap.Tables = append(snap.Tables, legacyTableSnapshot{
			Name:    t.Name,
			Columns: t.Columns,
			Cols:    cols,
		})
	}
	return gob.NewEncoder(w).Encode(snap)
}

// SaveFile writes the database to a file.
func (d *Database) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = d.Save(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// LoadFile reads a database from a file.
func LoadFile(path string) (*Database, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
