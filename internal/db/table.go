// Package db implements the mini-DBMS substrate that stands in for
// Microsoft SQL Server in the reproduction (DESIGN.md §2): in-memory tables
// with a typed columnar schema, a catalog, a model store holding serialized
// RFX blobs (the paper stores models "in serialized binary form" in database
// tables, §II), and a T-SQL-subset lexer/parser/executor covering the query
// shapes the paper's pipeline needs — SELECT projections/filters and
// EXEC stored-procedure invocations like Fig. 3's model-scoring call.
package db

import (
	"fmt"
	"sync"
	"sync/atomic"

	"accelscore/internal/dataset"
)

// ColumnType enumerates the supported column types.
type ColumnType int

const (
	// Float32Col holds feature values.
	Float32Col ColumnType = iota
	// Int64Col holds integral values (labels, ids).
	Int64Col
	// TextCol holds strings.
	TextCol
	// BlobCol holds binary payloads (serialized models).
	BlobCol
)

// String returns the SQL-ish type name.
func (c ColumnType) String() string {
	switch c {
	case Float32Col:
		return "REAL"
	case Int64Col:
		return "BIGINT"
	case TextCol:
		return "NVARCHAR"
	case BlobCol:
		return "VARBINARY"
	default:
		return fmt.Sprintf("TYPE(%d)", int(c))
	}
}

// Column is one column of a table schema.
type Column struct {
	Name string
	Type ColumnType
}

// Value is one cell. Exactly one field is meaningful, selected by the
// column type.
type Value struct {
	F float32
	I int64
	S string
	B []byte
}

// Float returns a float cell.
func Float(f float32) Value { return Value{F: f} }

// Int returns an integer cell.
func Int(i int64) Value { return Value{I: i} }

// Text returns a string cell.
func Text(s string) Value { return Value{S: s} }

// Blob returns a binary cell.
func Blob(b []byte) Value { return Value{B: b} }

// Table is an in-memory columnar table. It is safe for concurrent use:
// row access is guarded by a reader/writer lock so parallel scoring queries
// and SELECTs proceed concurrently while INSERT/DELETE/UPDATE serialize.
//
// Locking discipline for package-internal code: exported accessors (Cell,
// NumRows, Rows, ...) take rowsMu themselves; code that already holds rowsMu
// must use the unexported unlocked variants (cellLocked, numRowsLocked) —
// never the exported ones, since a nested RLock can deadlock against a
// queued writer. The schema (Name, Columns) is immutable after NewTable and
// needs no lock.
type Table struct {
	Name    string
	Columns []Column
	// rowsMu guards cols. version is written only while rowsMu is held for
	// writing, so readers holding the read lock see an exact version.
	rowsMu sync.RWMutex
	// cols[i] holds column i's cells; all columns have equal length.
	cols [][]Value
	// version counts mutations; the dataset snapshot cache keys on it.
	version atomic.Uint64
	// Dataset snapshot cache (DatasetSnapshot): the last conversion of this
	// table to a dataset, valid while version is unchanged. snapMu guards
	// only the published pointer — conversion itself runs outside it (see
	// DatasetSnapshotCached) so a slow conversion never blocks readers that
	// hit the cache.
	snapMu      sync.Mutex
	snap        *dataset.Dataset
	snapVersion uint64
	// Column-subset snapshot cache (DatasetSnapshotFor): converted feature
	// subsets keyed on the projected column list, each valid for the exact
	// version it observed. This is what lets a 50-column table scored by a
	// 4-feature model convert (and cache) 4 columns, not 50.
	subSnapMu sync.Mutex
	subSnaps  map[string]*subSnapshot
}

// subSnapshot is one cached column-subset conversion.
type subSnapshot struct {
	version uint64
	data    *dataset.Dataset
}

// NewTable creates an empty table with the given schema.
func NewTable(name string, columns []Column) (*Table, error) {
	if name == "" {
		return nil, fmt.Errorf("db: table needs a name")
	}
	if len(columns) == 0 {
		return nil, fmt.Errorf("db: table %q needs at least one column", name)
	}
	seen := map[string]bool{}
	for _, c := range columns {
		if c.Name == "" {
			return nil, fmt.Errorf("db: table %q has an unnamed column", name)
		}
		if seen[c.Name] {
			return nil, fmt.Errorf("db: table %q has duplicate column %q", name, c.Name)
		}
		seen[c.Name] = true
	}
	return &Table{
		Name:    name,
		Columns: append([]Column(nil), columns...),
		cols:    make([][]Value, len(columns)),
	}, nil
}

// NumRows returns the row count.
func (t *Table) NumRows() int {
	t.rowsMu.RLock()
	defer t.rowsMu.RUnlock()
	return t.numRowsLocked()
}

// numRowsLocked is NumRows for callers already holding rowsMu.
func (t *Table) numRowsLocked() int {
	if len(t.cols) == 0 {
		return 0
	}
	return len(t.cols[0])
}

// ColumnIndex returns the index of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	for i, c := range t.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Version returns the table's mutation counter. Every Insert, bulk append,
// DELETE or UPDATE bumps it; caches keyed on it (DatasetSnapshot, and the
// pipeline's hot path) invalidate automatically.
func (t *Table) Version() uint64 { return t.version.Load() }

// bumpVersion records a mutation; callers hold rowsMu for writing.
func (t *Table) bumpVersion() { t.version.Add(1) }

// Insert appends one row. The row length must match the schema.
func (t *Table) Insert(row []Value) error {
	if len(row) != len(t.Columns) {
		return fmt.Errorf("db: table %q: row has %d values, schema has %d columns",
			t.Name, len(row), len(t.Columns))
	}
	t.rowsMu.Lock()
	defer t.rowsMu.Unlock()
	t.insertLocked(row)
	return nil
}

// insertLocked appends a schema-length row; callers hold rowsMu for writing
// and have validated the length.
func (t *Table) insertLocked(row []Value) {
	for i, v := range row {
		t.cols[i] = append(t.cols[i], v)
	}
	t.bumpVersion()
}

// AppendIntRows bulk-appends one row per value to a table whose schema is a
// single BIGINT column — the result-assembly fast path: the pipeline's
// post-processing stage lands a whole prediction column in one allocation
// instead of N Insert calls.
func (t *Table) AppendIntRows(vals []int) error {
	if len(t.Columns) != 1 || t.Columns[0].Type != Int64Col {
		return fmt.Errorf("db: table %q: AppendIntRows requires a single BIGINT column schema", t.Name)
	}
	if len(vals) == 0 {
		return nil
	}
	t.rowsMu.Lock()
	defer t.rowsMu.Unlock()
	base := len(t.cols[0])
	t.cols[0] = append(t.cols[0], make([]Value, len(vals))...)
	dst := t.cols[0][base:]
	for i, v := range vals {
		dst[i] = Int(int64(v))
	}
	t.bumpVersion()
	return nil
}

// AppendRows bulk-appends rows (used by WAL replay and bulk loads). All rows
// are validated against the schema before any is applied, so a bad batch
// changes nothing, and the whole batch costs a single version bump.
func (t *Table) AppendRows(rows [][]Value) error {
	for i, row := range rows {
		if len(row) != len(t.Columns) {
			return fmt.Errorf("db: table %q: row %d has %d values, schema has %d columns",
				t.Name, i, len(row), len(t.Columns))
		}
	}
	if len(rows) == 0 {
		return nil
	}
	t.rowsMu.Lock()
	defer t.rowsMu.Unlock()
	for ci := range t.cols {
		base := len(t.cols[ci])
		t.cols[ci] = append(t.cols[ci], make([]Value, len(rows))...)
		dst := t.cols[ci][base:]
		for ri, row := range rows {
			dst[ri] = row[ci]
		}
	}
	t.bumpVersion()
	return nil
}

// Cell returns the value at (row, col).
func (t *Table) Cell(row, col int) Value {
	t.rowsMu.RLock()
	defer t.rowsMu.RUnlock()
	return t.cols[col][row]
}

// cellLocked is Cell for callers already holding rowsMu.
func (t *Table) cellLocked(row, col int) Value {
	return t.cols[col][row]
}

// Rows materializes all rows (copies).
func (t *Table) Rows() [][]Value {
	t.rowsMu.RLock()
	defer t.rowsMu.RUnlock()
	return t.rowsLocked()
}

// rowsLocked is Rows for callers already holding rowsMu.
func (t *Table) rowsLocked() [][]Value {
	out := make([][]Value, t.numRowsLocked())
	for r := range out {
		row := make([]Value, len(t.Columns))
		for c := range t.Columns {
			row[c] = t.cols[c][r]
		}
		out[r] = row
	}
	return out
}

// SizeBytes approximates the table payload size, used by the pipeline's
// transfer model.
func (t *Table) SizeBytes() int64 {
	t.rowsMu.RLock()
	defer t.rowsMu.RUnlock()
	var total int64
	for ci, col := range t.Columns {
		switch col.Type {
		case Float32Col:
			total += int64(len(t.cols[ci])) * 4
		case Int64Col:
			total += int64(len(t.cols[ci])) * 8
		case TextCol:
			for _, v := range t.cols[ci] {
				total += int64(len(v.S))
			}
		case BlobCol:
			for _, v := range t.cols[ci] {
				total += int64(len(v.B))
			}
		}
	}
	return total
}

// TableFromDataset converts a dataset into a table: one REAL column per
// feature, plus a BIGINT "label" column when labels are present.
func TableFromDataset(name string, d *dataset.Dataset) (*Table, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	cols := make([]Column, 0, d.NumFeatures()+1)
	for _, f := range d.FeatureNames {
		cols = append(cols, Column{Name: f, Type: Float32Col})
	}
	hasLabels := len(d.Y) > 0
	if hasLabels {
		cols = append(cols, Column{Name: "label", Type: Int64Col})
	}
	t, err := NewTable(name, cols)
	if err != nil {
		return nil, err
	}
	for i := 0; i < d.NumRecords(); i++ {
		row := make([]Value, 0, len(cols))
		for _, f := range d.Row(i) {
			row = append(row, Float(f))
		}
		if hasLabels {
			row = append(row, Int(int64(d.Y[i])))
		}
		if err := t.Insert(row); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// DatasetSnapshot returns the table converted to a dataset, cached until
// the table's next mutation: repeated scoring queries over an unchanged
// table skip the O(rows x cols) cell-by-cell conversion entirely (the
// paper's data pre-processing overhead, §IV-E). The returned dataset is
// shared — callers must treat it as read-only. Safe for concurrent use.
func (t *Table) DatasetSnapshot() (*dataset.Dataset, error) {
	d, _, err := t.DatasetSnapshotCached()
	return d, err
}

// DatasetSnapshotCached is DatasetSnapshot plus a hit report: hit is true
// when the cached conversion was served unchanged, false when the table had
// to be re-converted.
//
// The conversion runs outside snapMu (double-checked publish): holding the
// lock across the whole table→dataset conversion would serialize every
// concurrent reader of the table behind one converter. Instead the cached
// pointer is checked under the lock, the conversion runs under only the
// table's read lock (so concurrent cache hits and other readers proceed),
// and the result is re-published under snapMu keyed by the exact version the
// conversion observed — a stale converter can never overwrite a newer
// snapshot because publication requires its version to be >= the resident
// one.
func (t *Table) DatasetSnapshotCached() (*dataset.Dataset, bool, error) {
	v := t.Version()
	t.snapMu.Lock()
	if t.snap != nil && t.snapVersion == v {
		d := t.snap
		t.snapMu.Unlock()
		return d, true, nil
	}
	t.snapMu.Unlock()

	d, dv, err := t.convertDataset()
	if err != nil {
		return nil, false, err
	}

	t.snapMu.Lock()
	if t.snap == nil || dv >= t.snapVersion {
		t.snap, t.snapVersion = d, dv
	}
	t.snapMu.Unlock()
	return d, false, nil
}

// convertDataset converts the table under its read lock, returning the
// exact version the conversion observed (version writes happen only under
// the write lock, so the pair is consistent).
func (t *Table) convertDataset() (*dataset.Dataset, uint64, error) {
	t.rowsMu.RLock()
	defer t.rowsMu.RUnlock()
	v := t.version.Load()
	d, err := t.datasetLocked()
	return d, v, err
}

// DatasetFromTable converts a table's REAL columns back into a dataset; a
// BIGINT column named "label" becomes the labels.
func DatasetFromTable(t *Table) (*dataset.Dataset, error) {
	t.rowsMu.RLock()
	defer t.rowsMu.RUnlock()
	return t.datasetLocked()
}

// datasetLocked is the conversion body; callers hold rowsMu.
func (t *Table) datasetLocked() (*dataset.Dataset, error) {
	d := &dataset.Dataset{Name: t.Name}
	var featureCols []int
	labelCol := -1
	for i, c := range t.Columns {
		switch {
		case c.Type == Float32Col:
			featureCols = append(featureCols, i)
			d.FeatureNames = append(d.FeatureNames, c.Name)
		case c.Type == Int64Col && c.Name == "label":
			labelCol = i
		}
	}
	if len(featureCols) == 0 {
		return nil, fmt.Errorf("db: table %q has no REAL feature columns", t.Name)
	}
	n := t.numRowsLocked()
	d.X = make([]float32, 0, n*len(featureCols))
	maxLabel := -1
	for r := 0; r < n; r++ {
		for _, ci := range featureCols {
			d.X = append(d.X, t.cellLocked(r, ci).F)
		}
		if labelCol >= 0 {
			y := int(t.cellLocked(r, labelCol).I)
			d.Y = append(d.Y, y)
			if y > maxLabel {
				maxLabel = y
			}
		}
	}
	for c := 0; c <= maxLabel; c++ {
		d.ClassNames = append(d.ClassNames, fmt.Sprintf("class_%d", c))
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}
