package db

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind enumerates lexical token types of the T-SQL subset.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokAtIdent // @param
	tokNumber
	tokString
	tokComma
	tokStar
	tokEq
	tokNe
	tokLt
	tokLe
	tokGt
	tokGe
	tokLParen
	tokRParen
	tokSemi
)

// token is one lexical token.
type token struct {
	kind tokenKind
	text string
	pos  int
}

// lex tokenizes a statement. Keywords are returned as tokIdent; the parser
// matches them case-insensitively.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ",", i})
			i++
		case c == '*':
			toks = append(toks, token{tokStar, "*", i})
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		case c == ';':
			toks = append(toks, token{tokSemi, ";", i})
			i++
		case c == '=':
			toks = append(toks, token{tokEq, "=", i})
			i++
		case c == '<':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, token{tokLe, "<=", i})
				i += 2
			} else if i+1 < n && input[i+1] == '>' {
				toks = append(toks, token{tokNe, "<>", i})
				i += 2
			} else {
				toks = append(toks, token{tokLt, "<", i})
				i++
			}
		case c == '>':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, token{tokGe, ">=", i})
				i += 2
			} else {
				toks = append(toks, token{tokGt, ">", i})
				i++
			}
		case c == '\'':
			j := i + 1
			var sb strings.Builder
			closed := false
			for j < n {
				if input[j] == '\'' {
					// Doubled quote escapes a quote (T-SQL style).
					if j+1 < n && input[j+1] == '\'' {
						sb.WriteByte('\'')
						j += 2
						continue
					}
					closed = true
					break
				}
				sb.WriteByte(input[j])
				j++
			}
			if !closed {
				return nil, fmt.Errorf("db: unterminated string literal at offset %d", i)
			}
			toks = append(toks, token{tokString, sb.String(), i})
			i = j + 1
		case c == '@':
			j := i + 1
			for j < n && isIdentChar(rune(input[j])) {
				j++
			}
			if j == i+1 {
				return nil, fmt.Errorf("db: bare '@' at offset %d", i)
			}
			toks = append(toks, token{tokAtIdent, input[i+1 : j], i})
			i = j
		case c >= '0' && c <= '9' || c == '-' && i+1 < n && input[i+1] >= '0' && input[i+1] <= '9':
			j := i + 1
			for j < n && (input[j] >= '0' && input[j] <= '9' || input[j] == '.' || input[j] == 'e' || input[j] == 'E' ||
				((input[j] == '+' || input[j] == '-') && (input[j-1] == 'e' || input[j-1] == 'E'))) {
				j++
			}
			toks = append(toks, token{tokNumber, input[i:j], i})
			i = j
		case isIdentStart(rune(c)):
			j := i + 1
			for j < n && isIdentChar(rune(input[j])) {
				j++
			}
			toks = append(toks, token{tokIdent, input[i:j], i})
			i = j
		case c == '[':
			// Bracket-quoted identifier, T-SQL style.
			j := i + 1
			for j < n && input[j] != ']' {
				j++
			}
			if j == n {
				return nil, fmt.Errorf("db: unterminated bracketed identifier at offset %d", i)
			}
			toks = append(toks, token{tokIdent, input[i+1 : j], i})
			i = j + 1
		default:
			return nil, fmt.Errorf("db: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, token{tokEOF, "", n})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentChar(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '.'
}
