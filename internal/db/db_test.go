package db

import (
	"bytes"
	"testing"

	"accelscore/internal/dataset"
	"accelscore/internal/forest"
	"accelscore/internal/model"
)

func TestNewTableValidation(t *testing.T) {
	if _, err := NewTable("", []Column{{Name: "a", Type: Float32Col}}); err == nil {
		t.Fatal("unnamed table accepted")
	}
	if _, err := NewTable("t", nil); err == nil {
		t.Fatal("column-less table accepted")
	}
	if _, err := NewTable("t", []Column{{Name: "a"}, {Name: "a"}}); err == nil {
		t.Fatal("duplicate columns accepted")
	}
	if _, err := NewTable("t", []Column{{Name: ""}}); err == nil {
		t.Fatal("unnamed column accepted")
	}
}

func TestInsertAndCell(t *testing.T) {
	tbl, err := NewTable("t", []Column{{Name: "x", Type: Float32Col}, {Name: "s", Type: TextCol}})
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert([]Value{Float(1.5), Text("a")}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert([]Value{Float(2.5)}); err == nil {
		t.Fatal("short row accepted")
	}
	if tbl.NumRows() != 1 || tbl.Cell(0, 0).F != 1.5 || tbl.Cell(0, 1).S != "a" {
		t.Fatal("cell values wrong")
	}
	rows := tbl.Rows()
	if len(rows) != 1 || rows[0][1].S != "a" {
		t.Fatal("Rows() wrong")
	}
}

func TestTableDatasetRoundTrip(t *testing.T) {
	d := dataset.Iris()
	tbl, err := TableFromDataset("iris", d)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 150 || len(tbl.Columns) != 5 {
		t.Fatalf("table shape %dx%d", tbl.NumRows(), len(tbl.Columns))
	}
	back, err := DatasetFromTable(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRecords() != 150 || back.NumFeatures() != 4 || back.NumClasses() != 3 {
		t.Fatalf("round-trip shape %dx%d classes=%d", back.NumRecords(), back.NumFeatures(), back.NumClasses())
	}
	for i := range d.X {
		if d.X[i] != back.X[i] {
			t.Fatalf("value %d changed", i)
		}
	}
	for i := range d.Y {
		if d.Y[i] != back.Y[i] {
			t.Fatalf("label %d changed", i)
		}
	}
}

func TestSizeBytes(t *testing.T) {
	tbl, _ := NewTable("t", []Column{
		{Name: "f", Type: Float32Col},
		{Name: "i", Type: Int64Col},
		{Name: "s", Type: TextCol},
		{Name: "b", Type: BlobCol},
	})
	tbl.Insert([]Value{Float(1), Int(2), Text("abc"), Blob(make([]byte, 10))})
	if got := tbl.SizeBytes(); got != 4+8+3+10 {
		t.Fatalf("SizeBytes = %d", got)
	}
}

func TestModelStore(t *testing.T) {
	d := New()
	f, err := forest.Train(dataset.Iris(), forest.ForestConfig{
		NumTrees: 2, Tree: forest.TrainConfig{MaxDepth: 4}, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.StoreModel("iris_rf", f); err != nil {
		t.Fatal(err)
	}
	if err := d.StoreModel("iris_rf", f); err == nil {
		t.Fatal("duplicate model name accepted")
	}
	if err := d.StoreModel("", f); err == nil {
		t.Fatal("empty model name accepted")
	}
	blob, err := d.LoadModelBlob("iris_rf")
	if err != nil {
		t.Fatal(err)
	}
	back, err := model.Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Trees) != 2 {
		t.Fatalf("stored model has %d trees", len(back.Trees))
	}
	if _, err := d.LoadModelBlob("missing"); err == nil {
		t.Fatal("missing model found")
	}
	names := d.ModelNames()
	if len(names) != 1 || names[0] != "iris_rf" {
		t.Fatalf("ModelNames = %v", names)
	}
}

func TestCreateTableAndCatalog(t *testing.T) {
	d := New()
	tbl, _ := NewTable("data", []Column{{Name: "x", Type: Float32Col}})
	if err := d.CreateTable(tbl); err != nil {
		t.Fatal(err)
	}
	if err := d.CreateTable(tbl); err == nil {
		t.Fatal("duplicate table accepted")
	}
	names := d.TableNames()
	if len(names) != 2 || names[0] != "data" || names[1] != ModelsTable {
		t.Fatalf("TableNames = %v", names)
	}
	if _, err := d.Table("nope"); err == nil {
		t.Fatal("missing table found")
	}
}

func TestLexer(t *testing.T) {
	toks, err := lex("SELECT TOP 5 a, b FROM t WHERE x >= 1.5 AND s = 'it''s' ;")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokenKind
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
	}
	// Spot checks.
	if toks[len(toks)-1].kind != tokEOF {
		t.Fatal("missing EOF token")
	}
	found := false
	for _, tk := range toks {
		if tk.kind == tokString && tk.text == "it's" {
			found = true
		}
	}
	if !found {
		t.Fatalf("escaped string not lexed: %v", kinds)
	}
}

func TestLexerErrors(t *testing.T) {
	for _, bad := range []string{"SELECT 'unterminated", "SELECT @ FROM t", "SELECT [unclosed FROM t", "SELECT # FROM t"} {
		if _, err := lex(bad); err == nil {
			t.Fatalf("lexer accepted %q", bad)
		}
	}
}

func TestParseSelect(t *testing.T) {
	st, err := Parse("SELECT sepal_length, label FROM iris WHERE petal_width > 1.0 AND label <> 2")
	if err != nil {
		t.Fatal(err)
	}
	sel, ok := st.(*SelectStmt)
	if !ok {
		t.Fatalf("parsed %T", st)
	}
	if sel.Table != "iris" || len(sel.Columns) != 2 || len(sel.Where) != 2 {
		t.Fatalf("parsed select = %+v", sel)
	}
	if sel.Where[0].Op != ">" || sel.Where[1].Op != "<>" {
		t.Fatalf("operators = %q %q", sel.Where[0].Op, sel.Where[1].Op)
	}
}

func TestParseSelectStarTop(t *testing.T) {
	st, err := Parse("select top 10 * from [my table]")
	if err != nil {
		t.Fatal(err)
	}
	sel := st.(*SelectStmt)
	if sel.Top != 10 || sel.Columns != nil || sel.Table != "my table" {
		t.Fatalf("parsed = %+v", sel)
	}
}

func TestParseExec(t *testing.T) {
	st, err := Parse("EXEC sp_score_model @model = 'iris_rf', @data = 'iris', @backend = 'FPGA', @limit = 1000")
	if err != nil {
		t.Fatal(err)
	}
	ex := st.(*ExecStmt)
	if ex.Proc != "sp_score_model" || len(ex.Params) != 4 {
		t.Fatalf("parsed exec = %+v", ex)
	}
	if ex.Params["model"].S != "iris_rf" || ex.Params["limit"].N != 1000 {
		t.Fatalf("params = %+v", ex.Params)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"DELETE t",
		"UPDATE t",
		"UPDATE t SET",
		"SELECT FROM t",
		"SELECT * FROM",
		"SELECT * t",
		"SELECT * FROM t WHERE",
		"SELECT * FROM t WHERE x",
		"SELECT * FROM t WHERE x !! 3",
		"SELECT TOP x * FROM t",
		"EXEC",
		"EXEC p @a",
		"EXEC p @a = ",
		"EXEC p @a = 1, @a = 2",
		"SELECT * FROM t extra",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Fatalf("parser accepted %q", sql)
		}
	}
}

func TestSelectExecution(t *testing.T) {
	d := New()
	tbl, err := TableFromDataset("iris", dataset.Iris())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.CreateTable(tbl); err != nil {
		t.Fatal(err)
	}

	res, _, err := d.Query("SELECT * FROM iris WHERE label = 0")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 50 {
		t.Fatalf("setosa rows = %d, want 50", res.NumRows())
	}

	res, _, err = d.Query("SELECT TOP 7 sepal_length FROM iris WHERE petal_width >= 1.8")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 7 || len(res.Columns) != 1 {
		t.Fatalf("TOP query shape %dx%d", res.NumRows(), len(res.Columns))
	}

	// Text filtering on the models table.
	f, _ := forest.Train(dataset.Iris(), forest.ForestConfig{NumTrees: 1, Tree: forest.TrainConfig{MaxDepth: 3}, Seed: 1})
	if err := d.StoreModel("m1", f); err != nil {
		t.Fatal(err)
	}
	res, _, err = d.Query("SELECT name FROM models WHERE name = 'm1'")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 1 || res.Cell(0, 0).S != "m1" {
		t.Fatalf("model lookup failed: %d rows", res.NumRows())
	}
}

func TestSelectErrors(t *testing.T) {
	d := New()
	tbl, _ := TableFromDataset("iris", dataset.Iris())
	d.CreateTable(tbl)
	bad := []string{
		"SELECT * FROM missing",
		"SELECT nope FROM iris",
		"SELECT * FROM iris WHERE nope = 1",
		"SELECT * FROM iris WHERE sepal_length = 'text'",
		"SELECT * FROM models WHERE model = 'x'", // blob filter
	}
	for _, sql := range bad {
		if _, _, err := d.Query(sql); err == nil {
			t.Fatalf("query accepted: %q", sql)
		}
	}
}

func TestQueryReturnsExecUnexecuted(t *testing.T) {
	d := New()
	tbl, st, err := d.Query("EXEC sp_score_model @model='m', @data='t'")
	if err != nil {
		t.Fatal(err)
	}
	if tbl != nil {
		t.Fatal("EXEC returned a table")
	}
	if _, ok := st.(*ExecStmt); !ok {
		t.Fatalf("statement type %T", st)
	}
}

func BenchmarkSelectFiltered(b *testing.B) {
	d := New()
	tbl, _ := TableFromDataset("iris", dataset.Iris().Replicate(10_000))
	d.CreateTable(tbl)
	st, err := Parse("SELECT sepal_length, label FROM iris WHERE petal_width > 1.0")
	if err != nil {
		b.Fatal(err)
	}
	sel := st.(*SelectStmt)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Select(sel); err != nil {
			b.Fatal(err)
		}
	}
}

func TestCreateTableSQL(t *testing.T) {
	d := New()
	_, _, err := d.Query("CREATE TABLE sensors (temp REAL, id BIGINT, site NVARCHAR)")
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := d.Table("sensors")
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Columns) != 3 || tbl.Columns[0].Type != Float32Col ||
		tbl.Columns[1].Type != Int64Col || tbl.Columns[2].Type != TextCol {
		t.Fatalf("schema = %+v", tbl.Columns)
	}
	// Duplicate create fails.
	if _, _, err := d.Query("CREATE TABLE sensors (x REAL)"); err == nil {
		t.Fatal("duplicate table accepted")
	}
	// Bad type fails at parse time.
	if _, err := Parse("CREATE TABLE t (x FANCYTYPE)"); err == nil {
		t.Fatal("unknown type accepted")
	}
}

func TestInsertSQL(t *testing.T) {
	d := New()
	mustExec := func(sql string) {
		t.Helper()
		if _, _, err := d.Query(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	mustExec("CREATE TABLE sensors (temp REAL, id BIGINT, site NVARCHAR)")
	mustExec("INSERT INTO sensors VALUES (21.5, 1, 'lab'), (-3.25, 2, 'roof')")
	tbl, _ := d.Table("sensors")
	if tbl.NumRows() != 2 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	if tbl.Cell(1, 0).F != -3.25 || tbl.Cell(1, 2).S != "roof" {
		t.Fatalf("inserted values wrong: %+v", tbl.Rows())
	}
	// Arity mismatch.
	if _, _, err := d.Query("INSERT INTO sensors VALUES (1.0)"); err == nil {
		t.Fatal("short insert accepted")
	}
	// Type mismatch.
	if _, _, err := d.Query("INSERT INTO sensors VALUES ('x', 1, 'lab')"); err == nil {
		t.Fatal("string into REAL accepted")
	}
	// Missing table.
	if _, _, err := d.Query("INSERT INTO nope VALUES (1)"); err == nil {
		t.Fatal("insert into missing table accepted")
	}
}

func TestOrderBy(t *testing.T) {
	d := New()
	tbl, _ := TableFromDataset("iris", dataset.Iris())
	d.CreateTable(tbl)
	res, _, err := d.Query("SELECT sepal_length FROM iris ORDER BY sepal_length DESC")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 150 {
		t.Fatalf("rows = %d", res.NumRows())
	}
	for r := 1; r < res.NumRows(); r++ {
		if res.Cell(r, 0).F > res.Cell(r-1, 0).F {
			t.Fatal("DESC order violated")
		}
	}
	// TOP applies after ordering: the 3 largest values.
	res, _, err = d.Query("SELECT TOP 3 sepal_length FROM iris ORDER BY sepal_length DESC")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 3 || res.Cell(0, 0).F != 7.9 {
		t.Fatalf("TOP-after-ORDER wrong: %v rows, first %v", res.NumRows(), res.Cell(0, 0).F)
	}
	// ASC is the default.
	res, _, err = d.Query("SELECT TOP 1 sepal_length FROM iris ORDER BY sepal_length")
	if err != nil {
		t.Fatal(err)
	}
	if res.Cell(0, 0).F != 4.3 {
		t.Fatalf("ASC first = %v, want 4.3", res.Cell(0, 0).F)
	}
	// Bad order column.
	if _, _, err := d.Query("SELECT * FROM iris ORDER BY nope"); err == nil {
		t.Fatal("unknown ORDER BY column accepted")
	}
}

func TestAggregates(t *testing.T) {
	d := New()
	tbl, _ := TableFromDataset("iris", dataset.Iris())
	d.CreateTable(tbl)
	res, _, err := d.Query("SELECT COUNT(*), AVG(sepal_length), MIN(petal_width), MAX(petal_width) FROM iris")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 1 || len(res.Columns) != 4 {
		t.Fatalf("aggregate shape %dx%d", res.NumRows(), len(res.Columns))
	}
	if res.Cell(0, 0).I != 150 {
		t.Fatalf("COUNT = %d", res.Cell(0, 0).I)
	}
	avg := res.Cell(0, 1).F
	if avg < 5.8 || avg > 5.9 {
		t.Fatalf("AVG(sepal_length) = %v, want ~5.84", avg)
	}
	if res.Cell(0, 2).F != 0.1 || res.Cell(0, 3).F != 2.5 {
		t.Fatalf("MIN/MAX petal_width = %v/%v", res.Cell(0, 2).F, res.Cell(0, 3).F)
	}
	// COUNT with WHERE.
	res, _, err = d.Query("SELECT COUNT(*) FROM iris WHERE label = 1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Cell(0, 0).I != 50 {
		t.Fatalf("filtered COUNT = %d", res.Cell(0, 0).I)
	}
	// SUM over an integer column.
	res, _, err = d.Query("SELECT SUM(label) FROM iris")
	if err != nil {
		t.Fatal(err)
	}
	if res.Cell(0, 0).F != 150 { // 50*0 + 50*1 + 50*2
		t.Fatalf("SUM(label) = %v", res.Cell(0, 0).F)
	}
}

func TestAggregateErrors(t *testing.T) {
	d := New()
	tbl, _ := TableFromDataset("iris", dataset.Iris())
	d.CreateTable(tbl)
	bad := []string{
		"SELECT AVG(*) FROM iris",
		"SELECT AVG(nope) FROM iris",
		"SELECT sepal_length, COUNT(*) FROM iris",
		"SELECT COUNT(*) FROM iris ORDER BY sepal_length",
	}
	for _, sql := range bad {
		if _, _, err := d.Query(sql); err == nil {
			t.Fatalf("accepted: %q", sql)
		}
	}
	// Aggregating a text column fails.
	if _, _, err := d.Query("SELECT AVG(name) FROM models"); err == nil {
		t.Fatal("AVG over NVARCHAR accepted")
	}
	// Aggregate over empty filter result returns zero values, not an error.
	res, _, err := d.Query("SELECT COUNT(*), AVG(sepal_length) FROM iris WHERE sepal_length > 100")
	if err != nil {
		t.Fatal(err)
	}
	if res.Cell(0, 0).I != 0 || res.Cell(0, 1).F != 0 {
		t.Fatalf("empty aggregate = %v/%v", res.Cell(0, 0).I, res.Cell(0, 1).F)
	}
}

func TestDeleteSQL(t *testing.T) {
	d := New()
	tbl, _ := TableFromDataset("iris", dataset.Iris())
	d.CreateTable(tbl)
	// Delete one class.
	st, err := Parse("DELETE FROM iris WHERE label = 0")
	if err != nil {
		t.Fatal(err)
	}
	n, err := d.Delete(st.(*DeleteStmt))
	if err != nil {
		t.Fatal(err)
	}
	if n != 50 || tbl.NumRows() != 100 {
		t.Fatalf("deleted %d, %d rows remain", n, tbl.NumRows())
	}
	// Remaining rows have no label-0 entries.
	res, _, err := d.Query("SELECT COUNT(*) FROM iris WHERE label = 0")
	if err != nil {
		t.Fatal(err)
	}
	if res.Cell(0, 0).I != 0 {
		t.Fatal("deleted rows still visible")
	}
	// DELETE with no WHERE empties the table.
	if _, _, err := d.Query("DELETE FROM iris"); err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 0 {
		t.Fatalf("%d rows remain after full delete", tbl.NumRows())
	}
	// Errors.
	if _, _, err := d.Query("DELETE FROM missing"); err == nil {
		t.Fatal("missing table accepted")
	}
	if _, _, err := d.Query("DELETE FROM iris WHERE nope = 1"); err == nil {
		t.Fatal("bad column accepted")
	}
}

func TestUpdateSQL(t *testing.T) {
	d := New()
	mustExec := func(sql string) {
		t.Helper()
		if _, _, err := d.Query(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	mustExec("CREATE TABLE s (temp REAL, id BIGINT, site NVARCHAR)")
	mustExec("INSERT INTO s VALUES (10.0, 1, 'lab'), (20.0, 2, 'roof'), (30.0, 3, 'lab')")
	mustExec("UPDATE s SET temp = 0.0, site = 'calib' WHERE site = 'lab'")
	tbl, _ := d.Table("s")
	if tbl.Cell(0, 0).F != 0 || tbl.Cell(0, 2).S != "calib" {
		t.Fatalf("row 0 not updated: %+v", tbl.Rows()[0])
	}
	if tbl.Cell(1, 0).F != 20 || tbl.Cell(1, 2).S != "roof" {
		t.Fatalf("row 1 should be untouched: %+v", tbl.Rows()[1])
	}
	if tbl.Cell(2, 0).F != 0 {
		t.Fatal("row 2 not updated")
	}
	// Update without WHERE touches everything.
	st, _ := Parse("UPDATE s SET id = 9")
	n, err := d.Update(st.(*UpdateStmt))
	if err != nil || n != 3 {
		t.Fatalf("full update: n=%d err=%v", n, err)
	}
	// Errors.
	if _, _, err := d.Query("UPDATE s SET nope = 1"); err == nil {
		t.Fatal("bad column accepted")
	}
	if _, _, err := d.Query("UPDATE s SET temp = 'hot'"); err == nil {
		t.Fatal("type mismatch accepted")
	}
	if _, err := Parse("UPDATE s SET temp = 1, temp = 2"); err == nil {
		t.Fatal("duplicate SET column accepted")
	}
	if _, _, err := d.Query("UPDATE missing SET x = 1"); err == nil {
		t.Fatal("missing table accepted")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	d := New()
	tbl, _ := TableFromDataset("iris", dataset.Iris())
	d.CreateTable(tbl)
	f, _ := forest.Train(dataset.Iris(), forest.ForestConfig{
		NumTrees: 3, Tree: forest.TrainConfig{MaxDepth: 5}, Seed: 1, Bootstrap: true,
	})
	if err := d.StoreModel("m", f); err != nil {
		t.Fatal(err)
	}

	path := t.TempDir() + "/db.gob"
	if err := d.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tables intact.
	bt, err := back.Table("iris")
	if err != nil {
		t.Fatal(err)
	}
	if bt.NumRows() != 150 || bt.Cell(0, 0).F != 5.1 {
		t.Fatalf("restored table wrong: %d rows", bt.NumRows())
	}
	// Model blob intact and loadable.
	blob, err := back.LoadModelBlob("m")
	if err != nil {
		t.Fatal(err)
	}
	restored, err := model.Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	dta := dataset.Iris()
	for i := 0; i < dta.NumRecords(); i += 10 {
		if restored.PredictClass(dta.Row(i)) != f.PredictClass(dta.Row(i)) {
			t.Fatalf("restored model differs on row %d", i)
		}
	}
	// Queries work against the restored database.
	res, _, err := back.Query("SELECT COUNT(*) FROM iris WHERE label = 2")
	if err != nil {
		t.Fatal(err)
	}
	if res.Cell(0, 0).I != 50 {
		t.Fatalf("restored query = %d", res.Cell(0, 0).I)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("not a gob stream")); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
	if _, err := LoadFile("/nonexistent/path/db.gob"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestDeleteModel(t *testing.T) {
	d := New()
	f, err := forest.Train(dataset.Iris(), forest.ForestConfig{
		NumTrees: 1, Tree: forest.TrainConfig{MaxDepth: 2}, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.DeleteModel("absent"); err == nil {
		t.Fatal("deleting a missing model succeeded")
	}
	if err := d.StoreModel("m", f); err != nil {
		t.Fatal(err)
	}
	models, err := d.Table(ModelsTable)
	if err != nil {
		t.Fatal(err)
	}
	versionBefore := models.Version()
	if err := d.DeleteModel("m"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.LoadModelBlob("m"); err == nil {
		t.Fatal("deleted model still loadable")
	}
	if models.Version() == versionBefore {
		t.Fatal("DeleteModel did not bump the models table version")
	}
	// Delete + store under the same name is the documented replacement path.
	if err := d.StoreModel("m", f); err != nil {
		t.Fatalf("re-storing after delete: %v", err)
	}
	if names := d.ModelNames(); len(names) != 1 || names[0] != "m" {
		t.Fatalf("ModelNames after replace = %v", names)
	}
}

// TestDatasetSnapshotCachedReportsHits pins the hit flag the pipeline's
// snapshot-cache counters are built on: miss on first conversion, hit while
// the table is unchanged, miss again after a mutation.
func TestDatasetSnapshotCachedReportsHits(t *testing.T) {
	tbl, err := TableFromDataset("iris", dataset.Iris())
	if err != nil {
		t.Fatal(err)
	}
	d1, hit, err := tbl.DatasetSnapshotCached()
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first conversion reported a hit")
	}
	d2, hit, err := tbl.DatasetSnapshotCached()
	if err != nil {
		t.Fatal(err)
	}
	if !hit || d2 != d1 {
		t.Fatalf("unchanged table: hit=%v, same=%v", hit, d2 == d1)
	}
	// DatasetSnapshot delegates to the same cache.
	d3, err := tbl.DatasetSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if d3 != d1 {
		t.Fatal("DatasetSnapshot did not serve the cached conversion")
	}
	row := make([]Value, len(tbl.Columns))
	for i, c := range tbl.Columns {
		switch c.Type {
		case Float32Col:
			row[i] = Float(1)
		case Int64Col:
			row[i] = Int(0)
		}
	}
	if err := tbl.Insert(row); err != nil {
		t.Fatal(err)
	}
	d4, hit, err := tbl.DatasetSnapshotCached()
	if err != nil {
		t.Fatal(err)
	}
	if hit || d4 == d1 {
		t.Fatal("mutated table served the stale snapshot")
	}
}
