package db

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"
)

// buildPersistFixture makes a database exercising every column type plus a
// stored model blob.
func buildPersistFixture(t testing.TB, rows int) *Database {
	t.Helper()
	d := New()
	tbl, err := NewTable("mixed", []Column{
		{Name: "f", Type: Float32Col},
		{Name: "i", Type: Int64Col},
		{Name: "s", Type: TextCol},
		{Name: "b", Type: BlobCol},
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < rows; r++ {
		row := []Value{
			Float(float32(r) * 0.25),
			Int(int64(r) - 3),
			Text(fmt.Sprintf("row-%d", r)),
			Blob([]byte{byte(r), byte(r >> 8)}),
		}
		if err := tbl.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.CreateTable(tbl); err != nil {
		t.Fatal(err)
	}
	if err := d.StoreModelBlob("m1", []byte("serialized-model-bytes")); err != nil {
		t.Fatal(err)
	}
	return d
}

// assertSameTables fails unless got contains exactly want's tables with
// identical schemas and cells.
func assertSameTables(t *testing.T, want, got *Database) {
	t.Helper()
	wantNames := want.TableNames()
	gotNames := got.TableNames()
	if len(wantNames) != len(gotNames) {
		t.Fatalf("table names: got %v, want %v", gotNames, wantNames)
	}
	for _, name := range wantNames {
		wt, _ := want.Table(name)
		gt, err := got.Table(name)
		if err != nil {
			t.Fatalf("table %q missing after reload", name)
		}
		if len(wt.Columns) != len(gt.Columns) {
			t.Fatalf("table %q: schema length %d, want %d", name, len(gt.Columns), len(wt.Columns))
		}
		for i := range wt.Columns {
			if wt.Columns[i] != gt.Columns[i] {
				t.Fatalf("table %q column %d: %+v, want %+v", name, i, gt.Columns[i], wt.Columns[i])
			}
		}
		wr, gr := wt.Rows(), gt.Rows()
		if len(wr) != len(gr) {
			t.Fatalf("table %q: %d rows, want %d", name, len(gr), len(wr))
		}
		for r := range wr {
			for c := range wr[r] {
				wv, gv := wr[r][c], gr[r][c]
				if wv.F != gv.F || wv.I != gv.I || wv.S != gv.S || !bytes.Equal(wv.B, gv.B) {
					t.Fatalf("table %q cell (%d,%d): %+v, want %+v", name, r, c, gv, wv)
				}
			}
		}
	}
}

func TestBinarySnapshotRoundTripAllTypes(t *testing.T) {
	d := buildPersistFixture(t, 100)
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if !bytes.HasPrefix(buf.Bytes(), snapshotMagic[:]) {
		t.Fatalf("Save did not write the binary page format magic")
	}
	back, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	assertSameTables(t, d, back)
	blob, err := back.LoadModelBlob("m1")
	if err != nil || string(blob) != "serialized-model-bytes" {
		t.Fatalf("model blob after reload: %q, %v", blob, err)
	}
}

// TestLoadLegacyGobSnapshot proves databases saved before the binary page
// format still load (the migration path: Load old file, Save rewrites it).
func TestLoadLegacyGobSnapshot(t *testing.T) {
	d := buildPersistFixture(t, 20)
	var buf bytes.Buffer
	if err := d.saveLegacyGob(&buf); err != nil {
		t.Fatalf("saveLegacyGob: %v", err)
	}
	back, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Load(legacy gob): %v", err)
	}
	assertSameTables(t, d, back)
	// Short legacy prefixes (fewer than 8 magic bytes) must also route to the
	// gob path, not be mistaken for a torn binary header.
	if _, err := Load(bytes.NewReader(buf.Bytes()[:5])); err == nil {
		t.Fatalf("truncated gob should fail")
	}
}

func TestLoadGarbageGetsTypedError(t *testing.T) {
	_, err := Load(bytes.NewReader([]byte("definitely not a snapshot of any era")))
	if !errors.Is(err, ErrSnapshotFormat) {
		t.Fatalf("err = %v, want ErrSnapshotFormat", err)
	}
}

func TestLoadCorruptBinarySnapshot(t *testing.T) {
	d := buildPersistFixture(t, 200)
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()

	t.Run("torn-tail", func(t *testing.T) {
		for _, cut := range []int{len(enc) - 1, len(enc) - 13, len(enc) / 2, 9} {
			if _, err := Load(bytes.NewReader(enc[:cut])); !errors.Is(err, ErrSnapshotCorrupt) {
				t.Fatalf("cut %d: err = %v, want ErrSnapshotCorrupt", cut, err)
			}
		}
	})
	t.Run("bit-flip", func(t *testing.T) {
		for _, pos := range []int{10, 60, len(enc) / 2, len(enc) - 20} {
			bad := append([]byte(nil), enc...)
			bad[pos] ^= 0x20
			if _, err := Load(bytes.NewReader(bad)); !errors.Is(err, ErrSnapshotCorrupt) {
				t.Fatalf("flip at %d: err = %v, want ErrSnapshotCorrupt", pos, err)
			}
		}
	})
	t.Run("missing-end-marker", func(t *testing.T) {
		// Drop the end frame entirely: the loader must notice.
		cut := len(enc) - (len([]byte(snapshotEnd)) + 8)
		if _, err := Load(bytes.NewReader(enc[:cut])); !errors.Is(err, ErrSnapshotCorrupt) {
			t.Fatalf("err = %v, want ErrSnapshotCorrupt", err)
		}
	})
}

// TestSaveStreamsWithoutDeepCopy pins the streaming property: Save's
// allocations must not scale with row count (the old gob path deep-copied
// every column vector, so allocations grew linearly with the table).
func TestSaveStreamsWithoutDeepCopy(t *testing.T) {
	small := buildPersistFixture(t, 500)
	large := buildPersistFixture(t, 8000)

	measure := func(d *Database) float64 {
		return testing.AllocsPerRun(5, func() {
			if err := d.Save(io.Discard); err != nil {
				t.Fatal(err)
			}
		})
	}
	smallAllocs := measure(small)
	largeAllocs := measure(large)
	// 16x the rows may cost a few extra buffer growths, never ~16x allocs.
	if largeAllocs > smallAllocs+64 {
		t.Fatalf("Save allocations scale with table size: %.0f allocs at 500 rows, %.0f at 8000",
			smallAllocs, largeAllocs)
	}
}

func TestAppendRows(t *testing.T) {
	tbl, err := NewTable("t", []Column{
		{Name: "f", Type: Float32Col},
		{Name: "i", Type: Int64Col},
	})
	if err != nil {
		t.Fatal(err)
	}
	v0 := tbl.Version()
	rows := [][]Value{
		{Float(1.5), Int(10)},
		{Float(2.5), Int(20)},
		{Float(3.5), Int(30)},
	}
	if err := tbl.AppendRows(rows); err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 3 {
		t.Fatalf("NumRows = %d", tbl.NumRows())
	}
	if tbl.Version() != v0+1 {
		t.Fatalf("bulk append should cost one version bump, got %d", tbl.Version()-v0)
	}
	if got := tbl.Cell(2, 1).I; got != 30 {
		t.Fatalf("cell (2,1) = %d", got)
	}
	// A bad batch changes nothing.
	bad := [][]Value{{Float(9)}, {Float(8), Int(7)}}
	if err := tbl.AppendRows(bad); err == nil {
		t.Fatalf("short row should fail")
	}
	if tbl.NumRows() != 3 || tbl.Version() != v0+1 {
		t.Fatalf("failed batch mutated the table")
	}
}
