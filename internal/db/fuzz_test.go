package db

import (
	"testing"
)

// FuzzParse exercises the T-SQL-subset lexer and parser with arbitrary
// input: it must never panic, and anything it accepts must be one of the two
// statement types. Run with `go test -fuzz=FuzzParse ./internal/db` for a
// real fuzzing session; the seed corpus runs as a normal test.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT * FROM t",
		"SELECT TOP 10 a, b FROM t WHERE x >= 1.5 AND s = 'q'",
		"EXEC sp_score_model @model='m', @data='d', @limit=100",
		"select top 0 * from [weird name];",
		"SELECT a FROM t WHERE s = 'it''s'",
		"EXEC p",
		"'",
		"@",
		"[",
		"SELECT * FROM t WHERE x <> -1e9",
		"\x00\xff",
		"SELECT SELECT FROM FROM",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		st, err := Parse(sql)
		if err != nil {
			return
		}
		switch st.(type) {
		case *SelectStmt, *ExecStmt:
		default:
			t.Fatalf("Parse(%q) returned unexpected type %T", sql, st)
		}
	})
}

// FuzzSelectExecution runs parsed SELECTs against a small database: the
// executor must never panic regardless of the query shape.
func FuzzSelectExecution(f *testing.F) {
	f.Add("SELECT * FROM iris WHERE sepal_length > 5")
	f.Add("SELECT TOP 3 label FROM iris")
	f.Add("SELECT nope FROM iris")
	f.Add("SELECT * FROM missing")
	f.Fuzz(func(t *testing.T, sql string) {
		d := newFuzzDB(t)
		_, _, _ = d.Query(sql)
	})
}

var fuzzDBCache *Database

func newFuzzDB(t *testing.T) *Database {
	if fuzzDBCache != nil {
		return fuzzDBCache
	}
	d := New()
	tbl, err := NewTable("iris", []Column{
		{Name: "sepal_length", Type: Float32Col},
		{Name: "label", Type: Int64Col},
		{Name: "name", Type: TextCol},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := tbl.Insert([]Value{Float(float32(i)), Int(int64(i % 3)), Text("r")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.CreateTable(tbl); err != nil {
		t.Fatal(err)
	}
	fuzzDBCache = d
	return d
}
