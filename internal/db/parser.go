package db

import (
	"fmt"
	"strconv"
	"strings"
)

// Statement is the parsed form of one T-SQL-subset statement.
type Statement interface{ stmt() }

// Literal is a parsed literal parameter or comparison value.
type Literal struct {
	// IsString selects S over N.
	IsString bool
	S        string
	N        float64
}

// Condition is one WHERE predicate: column <op> literal.
type Condition struct {
	Column string
	Op     string // one of = <> < <= > >=
	Value  Literal
}

// SelectStmt is SELECT [TOP n] cols|aggs FROM table
// [WHERE cond [AND cond]...] [ORDER BY col [ASC|DESC]].
type SelectStmt struct {
	// Columns lists projected column names; nil means * (unless Aggregates
	// is set).
	Columns []string
	// Aggregates, when non-empty, makes this an aggregate query returning
	// one row; mixing plain columns and aggregates is not supported.
	Aggregates []AggExpr
	// Top is the T-SQL TOP n row bound; 0 means unbounded.
	Top int
	// Table is the source table name.
	Table string
	// Where holds AND-combined predicates.
	Where []Condition
	// OrderBy names the sort column; empty means source order. OrderDesc
	// selects descending order.
	OrderBy   string
	OrderDesc bool
}

func (*SelectStmt) stmt() {}

// ExecStmt is EXEC procname @p1 = lit, @p2 = lit ... — the shape of the
// paper's Fig. 3 stored-procedure invocation.
type ExecStmt struct {
	Proc   string
	Params map[string]Literal
}

func (*ExecStmt) stmt() {}

// PredictStmt is the fused scoring statement:
//
//	SELECT <prediction | COUNT(*) | prediction, COUNT(*)>
//	FROM PREDICT(@model = 'm', @data = 't' [, @backend = ...][, @limit = n][, ...])
//	[WHERE col <op> lit [AND ...]]
//	[GROUP BY prediction]
//
// It expresses filter, scoring, and aggregation as one plan so the pipeline
// can push the WHERE and the aggregate into the scoring kernel instead of
// materializing a prediction table and querying it.
type PredictStmt struct {
	// Params are the PREDICT(...) arguments, the same names sp_score_model
	// accepts (@model, @data, @backend, @limit, @timeout).
	Params map[string]Literal
	// Columns lists projected column names; only "prediction" exists.
	Columns []string
	// Aggregates holds COUNT(*) style projections.
	Aggregates []AggExpr
	// GroupBy names the grouping column ("prediction"); empty means none.
	GroupBy string
	// Where holds AND-combined predicates over the source table's columns,
	// evaluated before scoring (predicate pushdown).
	Where []Condition
}

func (*PredictStmt) stmt() {}

// Parse parses a single statement.
func Parse(sql string) (Statement, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, sql: sql}
	st, err := p.statement()
	if err != nil {
		return nil, err
	}
	// Optional trailing semicolon, then EOF.
	if p.peek().kind == tokSemi {
		p.next()
	}
	if p.peek().kind != tokEOF {
		return nil, p.errorf("unexpected %q after statement", p.peek().text)
	}
	return st, nil
}

type parser struct {
	toks []token
	pos  int
	sql  string
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errorf(format string, args ...interface{}) error {
	return fmt.Errorf("db: parse error at offset %d: %s", p.peek().pos, fmt.Sprintf(format, args...))
}

// keyword consumes an identifier token matching kw (case-insensitive).
func (p *parser) keyword(kw string) bool {
	if p.peek().kind == tokIdent && strings.EqualFold(p.peek().text, kw) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.keyword(kw) {
		return p.errorf("expected %s, got %q", kw, p.peek().text)
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	if p.peek().kind != tokIdent {
		return "", p.errorf("expected identifier, got %q", p.peek().text)
	}
	return p.next().text, nil
}

func (p *parser) statement() (Statement, error) {
	switch {
	case p.keyword("SELECT"):
		return p.selectStmt()
	case p.keyword("EXEC"), p.keyword("EXECUTE"):
		return p.execStmt()
	case p.keyword("CREATE"):
		return p.createStmt()
	case p.keyword("INSERT"):
		return p.insertStmt()
	case p.keyword("DELETE"):
		return p.deleteStmt()
	case p.keyword("UPDATE"):
		return p.updateStmt()
	default:
		return nil, p.errorf("expected SELECT, EXEC, CREATE, INSERT, DELETE or UPDATE, got %q", p.peek().text)
	}
}

func (p *parser) selectStmt() (Statement, error) {
	st := &SelectStmt{}
	if p.keyword("TOP") {
		if p.peek().kind != tokNumber {
			return nil, p.errorf("TOP needs a number")
		}
		n, err := strconv.Atoi(p.next().text)
		if err != nil || n < 0 {
			return nil, p.errorf("bad TOP count")
		}
		st.Top = n
	}
	// Projection list: *, plain columns, or aggregate calls.
	if p.peek().kind == tokStar {
		p.next()
	} else {
		for {
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if fn, isAgg := aggFuncByName(name); isAgg && p.peek().kind == tokLParen {
				p.next()
				var col string
				if p.peek().kind == tokStar {
					p.next()
					col = "*"
				} else {
					if col, err = p.expectIdent(); err != nil {
						return nil, err
					}
				}
				if p.peek().kind != tokRParen {
					return nil, p.errorf("expected ')' closing %s", fn)
				}
				p.next()
				if fn != AggCount && col == "*" {
					return nil, p.errorf("%s(*) is not supported; name a column", fn)
				}
				st.Aggregates = append(st.Aggregates, AggExpr{Fn: fn, Column: col})
			} else {
				st.Columns = append(st.Columns, name)
			}
			if p.peek().kind != tokComma {
				break
			}
			p.next()
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if strings.EqualFold(table, "PREDICT") && p.peek().kind == tokLParen {
		// PREDICT may mix a plain column with aggregates under GROUP BY;
		// predictStmt validates the combination itself.
		return p.predictStmt(st)
	}
	if len(st.Aggregates) > 0 && len(st.Columns) > 0 {
		return nil, p.errorf("cannot mix aggregates and plain columns without GROUP BY")
	}
	st.Table = table
	if p.keyword("WHERE") {
		for {
			cond, err := p.condition()
			if err != nil {
				return nil, err
			}
			st.Where = append(st.Where, cond)
			if !p.keyword("AND") {
				break
			}
		}
	}
	if p.keyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		st.OrderBy = col
		if p.keyword("DESC") {
			st.OrderDesc = true
		} else {
			p.keyword("ASC") // optional
		}
		if len(st.Aggregates) > 0 {
			return nil, p.errorf("ORDER BY is meaningless with aggregate projections")
		}
	}
	return st, nil
}

// predictStmt parses the remainder of SELECT ... FROM PREDICT(...); sel
// carries the already-parsed projection list. The opening '(' is the
// current token.
func (p *parser) predictStmt(sel *SelectStmt) (Statement, error) {
	if sel.Top != 0 {
		return nil, p.errorf("TOP is not supported with PREDICT")
	}
	p.next() // consume '('
	st := &PredictStmt{
		Params:     map[string]Literal{},
		Columns:    sel.Columns,
		Aggregates: sel.Aggregates,
	}
	for p.peek().kind == tokAtIdent {
		name := p.next().text
		if p.peek().kind != tokEq {
			return nil, p.errorf("expected '=' after @%s", name)
		}
		p.next()
		lit, err := p.literal()
		if err != nil {
			return nil, err
		}
		if _, dup := st.Params[name]; dup {
			return nil, p.errorf("duplicate parameter @%s", name)
		}
		st.Params[name] = lit
		if p.peek().kind == tokComma {
			p.next()
			continue
		}
		break
	}
	if len(st.Params) == 0 {
		return nil, p.errorf("PREDICT needs at least @model and @data parameters")
	}
	if p.peek().kind != tokRParen {
		return nil, p.errorf("expected ')' closing PREDICT, got %q", p.peek().text)
	}
	p.next()
	if p.keyword("WHERE") {
		for {
			cond, err := p.condition()
			if err != nil {
				return nil, err
			}
			st.Where = append(st.Where, cond)
			if !p.keyword("AND") {
				break
			}
		}
	}
	if p.keyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		st.GroupBy = col
	}
	if len(st.Columns) > 0 && len(st.Aggregates) > 0 && st.GroupBy == "" {
		return nil, p.errorf("cannot mix aggregates and plain columns without GROUP BY")
	}
	return st, nil
}

// ParseConditionList parses a bare predicate list "col <op> lit [AND ...]"
// — the value format of sp_score_model's @where parameter — with the same
// grammar as a WHERE clause.
func ParseConditionList(s string) ([]Condition, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	toks, err := lex(s)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, sql: s}
	var conds []Condition
	for {
		cond, err := p.condition()
		if err != nil {
			return nil, err
		}
		conds = append(conds, cond)
		if !p.keyword("AND") {
			break
		}
	}
	if p.peek().kind != tokEOF {
		return nil, p.errorf("unexpected %q after predicate", p.peek().text)
	}
	return conds, nil
}

// FormatConditions renders conditions canonically ("col <op> value AND ...")
// so equal predicates format identically — the executor's coalescer keys
// batches on this string.
func FormatConditions(conds []Condition) string {
	if len(conds) == 0 {
		return ""
	}
	var b strings.Builder
	for i, c := range conds {
		if i > 0 {
			b.WriteString(" AND ")
		}
		b.WriteString(c.Column)
		b.WriteByte(' ')
		b.WriteString(c.Op)
		b.WriteByte(' ')
		if c.Value.IsString {
			b.WriteByte('\'')
			b.WriteString(strings.ReplaceAll(c.Value.S, "'", "''"))
			b.WriteByte('\'')
		} else {
			b.WriteString(strconv.FormatFloat(c.Value.N, 'g', -1, 64))
		}
	}
	return b.String()
}

// aggFuncByName maps an identifier to an aggregate function.
func aggFuncByName(name string) (AggFunc, bool) {
	switch strings.ToUpper(name) {
	case "COUNT":
		return AggCount, true
	case "SUM":
		return AggSum, true
	case "AVG":
		return AggAvg, true
	case "MIN":
		return AggMin, true
	case "MAX":
		return AggMax, true
	default:
		return 0, false
	}
}

func (p *parser) condition() (Condition, error) {
	col, err := p.expectIdent()
	if err != nil {
		return Condition{}, err
	}
	var op string
	switch p.peek().kind {
	case tokEq:
		op = "="
	case tokNe:
		op = "<>"
	case tokLt:
		op = "<"
	case tokLe:
		op = "<="
	case tokGt:
		op = ">"
	case tokGe:
		op = ">="
	default:
		return Condition{}, p.errorf("expected comparison operator, got %q", p.peek().text)
	}
	p.next()
	lit, err := p.literal()
	if err != nil {
		return Condition{}, err
	}
	return Condition{Column: col, Op: op, Value: lit}, nil
}

func (p *parser) literal() (Literal, error) {
	switch p.peek().kind {
	case tokNumber:
		t := p.next()
		n, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return Literal{}, p.errorf("bad number %q", t.text)
		}
		return Literal{N: n}, nil
	case tokString:
		return Literal{IsString: true, S: p.next().text}, nil
	default:
		return Literal{}, p.errorf("expected literal, got %q", p.peek().text)
	}
}

func (p *parser) execStmt() (Statement, error) {
	proc, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st := &ExecStmt{Proc: proc, Params: map[string]Literal{}}
	for p.peek().kind == tokAtIdent {
		name := p.next().text
		if p.peek().kind != tokEq {
			return nil, p.errorf("expected '=' after @%s", name)
		}
		p.next()
		lit, err := p.literal()
		if err != nil {
			return nil, err
		}
		if _, dup := st.Params[name]; dup {
			return nil, p.errorf("duplicate parameter @%s", name)
		}
		st.Params[name] = lit
		if p.peek().kind == tokComma {
			p.next()
			continue
		}
		break
	}
	return st, nil
}
