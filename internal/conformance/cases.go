package conformance

import (
	"fmt"

	"accelscore/internal/dataset"
	"accelscore/internal/forest"
	"accelscore/internal/model"
	"accelscore/internal/xrand"
)

// Seed pins the whole conformance sweep. Changing it invalidates nothing but
// the specific models exercised; it exists so a failure reproduces exactly on
// any machine.
const Seed uint64 = 0x5eed_c04f

// Case is one (model, dataset) pair of the differential matrix.
type Case struct {
	// Name identifies the case in reports.
	Name string
	// Forest is the model under test.
	Forest *forest.Forest
	// Data is the scoring input (may include unlabeled boundary-probe rows).
	Data *dataset.Dataset
	// Blob is the RFX serialization of Forest, exercising the
	// deserialize-then-score path of the ONNX engines and the pipeline.
	Blob []byte
	// Pipeline marks cases that additionally run through the end-to-end
	// sp_score_model pipeline (cold and warm cache paths).
	Pipeline bool
	// Trained reports whether the forest came from a real training run (as
	// opposed to a handcrafted regression construction).
	Trained bool
}

// Cases builds the seeded differential matrix. Short mode keeps training
// small enough for CI; full mode widens the model/data size sweep.
func Cases(short bool) ([]Case, error) {
	var cases []Case
	add := func(c Case, err error) error {
		if err != nil {
			return err
		}
		cases = append(cases, c)
		return nil
	}

	rng := xrand.New(Seed)

	// IRIS: the paper's multi-class dataset, through the full pipeline.
	irisRows := 180
	if !short {
		irisRows = 900
	}
	if err := add(irisCase(irisRows, rng.Uint64())); err != nil {
		return nil, err
	}

	// HIGGS: the paper's binary dataset — the only shape GPU_RAPIDS accepts.
	higgsTrain, higgsScore, higgsTrees := 260, 200, 16
	if !short {
		higgsTrain, higgsScore, higgsTrees = 900, 1500, 48
	}
	if err := add(higgsCase("higgs_rf", higgsTrain, higgsScore, higgsTrees, 6, rng.Uint64())); err != nil {
		return nil, err
	}
	if err := add(boostedCase(higgsTrain, higgsScore, rng.Uint64())); err != nil {
		return nil, err
	}

	// Synthetic sweeps: size-swept random forests over generated datasets.
	type shape struct {
		name     string
		features int
		classes  int
		trees    int
		depth    int
		rows     int
		grid     bool
	}
	shapes := []shape{
		{"rand_stumps", 5, 2, 3, 1, 120, false},
		{"rand_binary_grid", 6, 2, 12, 10, 220, true},
		{"rand_multiclass", 9, 5, 7, 8, 200, false},
	}
	if !short {
		shapes = append(shapes,
			shape{"rand_binary_wide", 24, 2, 33, 10, 1200, false},
			shape{"rand_multiclass_grid", 12, 4, 20, 9, 900, true},
			shape{"rand_single_tree", 7, 3, 1, 10, 600, false},
		)
	}
	for _, sh := range shapes {
		if err := add(syntheticCase(sh.name, sh.features, sh.classes, sh.trees, sh.depth, sh.rows, sh.grid, rng.Uint64())); err != nil {
			return nil, err
		}
	}

	// Deep forest: trees past the FPGA's 10-level PE limit; the plain FPGA
	// backend must reject it and the hybrid deep-tree variant must agree
	// with the oracle.
	deepRows := 220
	if !short {
		deepRows = 900
	}
	if err := add(deepCase(deepRows, rng.Uint64())); err != nil {
		return nil, err
	}

	// Handcrafted regression constructions: forced vote ties and a boosted
	// ensemble whose margin is exactly zero.
	if err := add(tieCase()); err != nil {
		return nil, err
	}
	if err := add(zeroMarginCase()); err != nil {
		return nil, err
	}
	return cases, nil
}

// finish marshals the model and assembles the Case.
func finish(name string, f *forest.Forest, d *dataset.Dataset, pipeline, trained bool) (Case, error) {
	blob, err := model.Marshal(f)
	if err != nil {
		return Case{}, fmt.Errorf("conformance: %s: %w", name, err)
	}
	return Case{Name: name, Forest: f, Data: d, Blob: blob, Pipeline: pipeline, Trained: trained}, nil
}

func irisCase(rows int, seed uint64) (Case, error) {
	f, err := forest.Train(dataset.Iris(), forest.ForestConfig{
		NumTrees:  9,
		Tree:      forest.TrainConfig{MaxDepth: 10},
		Seed:      seed,
		Bootstrap: true,
	})
	if err != nil {
		return Case{}, err
	}
	return finish("iris_rf", f, dataset.Iris().Replicate(rows), true, true)
}

func higgsCase(name string, trainRows, scoreRows, trees, depth int, seed uint64) (Case, error) {
	f, err := forest.Train(dataset.Higgs(trainRows, seed), forest.ForestConfig{
		NumTrees:  trees,
		Tree:      forest.TrainConfig{MaxDepth: depth},
		Seed:      seed + 1,
		Bootstrap: true,
	})
	if err != nil {
		return Case{}, err
	}
	return finish(name, f, dataset.Higgs(scoreRows, seed+2), true, true)
}

func boostedCase(trainRows, scoreRows int, seed uint64) (Case, error) {
	f, err := forest.TrainBoosted(dataset.Higgs(trainRows, seed), forest.BoostConfig{
		NumTrees: 8,
		MaxDepth: 4,
		Seed:     seed + 1,
	})
	if err != nil {
		return Case{}, err
	}
	return finish("higgs_gbt", f, dataset.Higgs(scoreRows, seed+2), false, true)
}

func syntheticCase(name string, features, classes, trees, depth, rows int, grid bool, seed uint64) (Case, error) {
	train := randomDataset(name+"_train", rows, features, classes, seed, grid)
	f, err := forest.Train(train, forest.ForestConfig{
		NumTrees:  trees,
		Tree:      forest.TrainConfig{MaxDepth: depth},
		Seed:      seed + 1,
		Bootstrap: trees > 1,
	})
	if err != nil {
		return Case{}, err
	}
	score := randomDataset(name, rows, features, classes, seed+2, grid)
	appendProbeRows(score)
	return finish(name, f, score, false, true)
}

func deepCase(rows int, seed uint64) (Case, error) {
	train := randomDataset("deep_train", 1200, 8, 2, seed, false)
	f, err := forest.Train(train, forest.ForestConfig{
		NumTrees:  5,
		Tree:      forest.TrainConfig{MaxDepth: 16},
		Seed:      seed + 1,
		Bootstrap: true,
	})
	if err != nil {
		return Case{}, err
	}
	if f.ComputeStats().MaxDepth <= 10 {
		return Case{}, fmt.Errorf("conformance: deep case trained only %d levels; raise the training size", f.ComputeStats().MaxDepth)
	}
	return finish("deep_rf_d16", f, randomDataset("deep_rf_d16", rows, 8, 2, seed+2, false), false, true)
}

// tieCase builds a two-stump binary forest whose votes tie on every row
// (one stump always votes class 1, the other class 0), pinning the
// project-wide tie convention: the lowest class index wins, so every engine
// must predict class 0 everywhere.
func tieCase() (Case, error) {
	const features = 4
	f := &forest.Forest{
		Kind:        forest.Classifier,
		NumFeatures: features,
		NumClasses:  2,
		Trees: []*forest.Tree{
			{Root: &forest.Node{Class: 1}, NumFeatures: features, NumClasses: 2},
			{Root: &forest.Node{Class: 0}, NumFeatures: features, NumClasses: 2},
		},
	}
	d := randomDataset("vote_tie", 64, features, 2, Seed+77, true)
	appendProbeRows(d)
	return finish("vote_tie", f, d, false, false)
}

// zeroMarginCase builds a boosted ensemble whose margin is exactly 0.0 for
// every row (+0.5 and -0.5 leaves, zero base score — both exactly
// representable), pinning the margin tie convention: margin > 0 is class 1,
// so an exact zero must score class 0 on every engine.
func zeroMarginCase() (Case, error) {
	const features = 3
	f := &forest.Forest{
		Kind:        forest.Boosted,
		NumFeatures: features,
		NumClasses:  2,
		Trees: []*forest.Tree{
			{Root: &forest.Node{Class: 1, Value: 0.5}, NumFeatures: features, NumClasses: 2},
			{Root: &forest.Node{Class: 0, Value: -0.5}, NumFeatures: features, NumClasses: 2},
		},
	}
	d := randomDataset("zero_margin", 48, features, 2, Seed+78, false)
	return finish("zero_margin", f, d, false, false)
}

// randomDataset generates a labeled dataset from the pinned xrand stream.
// Grid mode draws features from a coarse 0.25-step lattice so that split
// thresholds and feature values collide constantly, exercising the strict
// x < threshold boundary on every engine; continuous mode draws standard
// normals. Labels carry real signal (a noisy linear rule over the first
// features) so CART training produces structured trees.
func randomDataset(name string, rows, features, classes int, seed uint64, grid bool) *dataset.Dataset {
	rng := xrand.New(seed)
	d := &dataset.Dataset{Name: name}
	for i := 0; i < features; i++ {
		d.FeatureNames = append(d.FeatureNames, fmt.Sprintf("f%d", i))
	}
	for c := 0; c < classes; c++ {
		d.ClassNames = append(d.ClassNames, fmt.Sprintf("c%d", c))
	}
	d.X = make([]float32, rows*features)
	d.Y = make([]int, rows)
	for r := 0; r < rows; r++ {
		var s float64
		for c := 0; c < features; c++ {
			var v float32
			if grid {
				v = float32(rng.Intn(13)-6) / 4
			} else {
				v = float32(rng.NormFloat64())
			}
			d.X[r*features+c] = v
			if c < 3 {
				s += float64(v)
			}
		}
		label := 0
		if s > 0 {
			label = int(s) + 1
		}
		if label >= classes {
			label = classes - 1
		}
		if rng.Float64() < 0.1 { // label noise keeps leaves impure
			label = rng.Intn(classes)
		}
		d.Y[r] = label
	}
	return d
}

// appendProbeRows adds unlabeled boundary rows: zeros and huge-but-finite
// magnitudes that every traversal must route identically. (Non-finite values
// are exercised separately at the unit level: the GEMM tensor strategy's
// 0*Inf products make NaN propagation engine-specific by construction.)
func appendProbeRows(d *dataset.Dataset) {
	features := d.NumFeatures()
	probes := [][]float32{
		make([]float32, features), // all zeros
		make([]float32, features),
		make([]float32, features),
		make([]float32, features),
	}
	for c := 0; c < features; c++ {
		probes[1][c] = 1e30
		probes[2][c] = -1e30
		if c%2 == 0 {
			probes[3][c] = 3e18
		} else {
			probes[3][c] = -3e18
		}
	}
	hadLabels := len(d.Y) > 0
	for _, p := range probes {
		d.X = append(d.X, p...)
		if hadLabels {
			d.Y = append(d.Y, 0)
		}
	}
}
