package conformance

import (
	"fmt"

	"accelscore/internal/backend"
	"accelscore/internal/dataset"
	"accelscore/internal/forest"
	"accelscore/internal/xrand"
)

// metaRows caps the rows used by the metamorphic transforms: the invariants
// are per-row properties, so a bounded slice keeps the matrix cheap without
// weakening coverage.
const metaRows = 96

// metamorphicChecks verifies the transformation invariants on one engine:
//
//   - permuting the input rows permutes the predictions identically;
//   - reordering the ensemble's trees leaves predictions unchanged
//     (classifiers: votes are order-free; boosted ensembles are excluded
//     because float addition is not associative);
//   - appending a duplicate feature column no tree references leaves
//     predictions unchanged;
//   - scoring each tree as a single-tree forest and majority-voting the
//     per-tree results reproduces the full-forest predictions (classifiers).
func (r *Runner) metamorphicChecks(rep *Report, c Case, eng backend.Backend) {
	name := eng.Name()
	data := c.Data.Head(minInt(metaRows, c.Data.NumRecords()))
	n := data.NumRecords()

	base, err := eng.Score(&backend.Request{Forest: c.Forest, Data: data})
	if err != nil {
		rep.skip(c.Name, name, "metamorphic", err.Error())
		return
	}

	// Row permutation: rows move, predictions move with them.
	perm := xrand.New(Seed ^ uint64(n)).Perm(n)
	permed, err := eng.Score(&backend.Request{Forest: c.Forest, Data: permuteRows(data, perm)})
	permOK := true
	if err != nil {
		rep.fail(c.Name, name, "meta-row-permutation", err.Error())
		permOK = false
	} else {
		for i := 0; i < n; i++ {
			if permed.Predictions[i] != base.Predictions[perm[i]] {
				rep.fail(c.Name, name, "meta-row-permutation",
					fmt.Sprintf("permuted row %d (source %d): %d vs %d",
						i, perm[i], permed.Predictions[i], base.Predictions[perm[i]]))
				permOK = false
				break
			}
		}
	}
	if permOK {
		rep.pass(c.Name, name, "meta-row-permutation")
	}

	// Tree reordering (classifiers only: vote counts are permutation-free,
	// while boosted margins sum floats whose addition order matters at the
	// last ulp).
	if c.Forest.Kind == forest.Classifier && len(c.Forest.Trees) > 1 {
		rev, err := eng.Score(&backend.Request{Forest: reversedTrees(c.Forest), Data: data})
		if err != nil {
			rep.fail(c.Name, name, "meta-tree-reorder", err.Error())
		} else if d := firstDiff(rev.Predictions, base.Predictions); d >= 0 {
			rep.fail(c.Name, name, "meta-tree-reorder",
				fmt.Sprintf("row %d: reversed-ensemble prediction %d vs %d", d, rev.Predictions[d], base.Predictions[d]))
		} else {
			rep.pass(c.Name, name, "meta-tree-reorder")
		}
	}

	// Duplicate feature column: widen the schema by one column no tree
	// references; every engine must ignore it.
	dup, err := eng.Score(&backend.Request{Forest: widenedForest(c.Forest), Data: duplicatedColumn(data)})
	if err != nil {
		rep.fail(c.Name, name, "meta-duplicate-column", err.Error())
	} else if d := firstDiff(dup.Predictions, base.Predictions); d >= 0 {
		rep.fail(c.Name, name, "meta-duplicate-column",
			fmt.Sprintf("row %d: widened-schema prediction %d vs %d", d, dup.Predictions[d], base.Predictions[d]))
	} else {
		rep.pass(c.Name, name, "meta-duplicate-column")
	}

	// Single-tree-sum decomposition (classifiers, bounded ensembles): the
	// engine's own per-tree predictions, majority-voted, must reproduce its
	// full-forest output — an engine-level vote-count check that needs no
	// vote-exposing API.
	if c.Forest.Kind == forest.Classifier && len(c.Forest.Trees) > 1 && len(c.Forest.Trees) <= 16 {
		votes := make([][]int, n)
		classes := maxInt(c.Forest.NumClasses, 1)
		for i := range votes {
			votes[i] = make([]int, classes)
		}
		ok := true
		for t := range c.Forest.Trees {
			single, err := eng.Score(&backend.Request{Forest: singleTreeForest(c.Forest, t), Data: data})
			if err != nil {
				rep.fail(c.Name, name, "meta-decomposition",
					fmt.Sprintf("tree %d: %v", t, err))
				ok = false
				break
			}
			for i, p := range single.Predictions {
				votes[i][p]++
			}
		}
		if ok {
			for i := 0; i < n; i++ {
				if got := forest.Argmax(votes[i]); got != base.Predictions[i] {
					rep.fail(c.Name, name, "meta-decomposition",
						fmt.Sprintf("row %d: summed per-tree votes %v give %d, full forest %d",
							i, votes[i], got, base.Predictions[i]))
					ok = false
					break
				}
			}
		}
		if ok {
			rep.pass(c.Name, name, "meta-decomposition")
		}
	}
}

// permuteRows builds a dataset whose row i is d's row perm[i].
func permuteRows(d *dataset.Dataset, perm []int) *dataset.Dataset {
	f := d.NumFeatures()
	out := &dataset.Dataset{
		Name:         d.Name + "_perm",
		FeatureNames: append([]string(nil), d.FeatureNames...),
		ClassNames:   append([]string(nil), d.ClassNames...),
		X:            make([]float32, len(perm)*f),
	}
	for i, src := range perm {
		copy(out.X[i*f:(i+1)*f], d.Row(src))
	}
	return out
}

// duplicatedColumn appends a copy of column 0 to every row.
func duplicatedColumn(d *dataset.Dataset) *dataset.Dataset {
	f := d.NumFeatures()
	n := d.NumRecords()
	out := &dataset.Dataset{
		Name:         d.Name + "_dup",
		FeatureNames: append(append([]string(nil), d.FeatureNames...), "dup0"),
		ClassNames:   append([]string(nil), d.ClassNames...),
		X:            make([]float32, 0, n*(f+1)),
	}
	for i := 0; i < n; i++ {
		row := d.Row(i)
		out.X = append(out.X, row...)
		out.X = append(out.X, row[0])
	}
	return out
}

// widenedForest declares one extra (never referenced) feature in the
// schema, sharing the tree structure.
func widenedForest(f *forest.Forest) *forest.Forest {
	out := &forest.Forest{
		Kind:        f.Kind,
		NumFeatures: f.NumFeatures + 1,
		NumClasses:  f.NumClasses,
		FeatureNames: append(append([]string(nil), f.FeatureNames...),
			"dup0"),
		ClassNames: append([]string(nil), f.ClassNames...),
		BaseScore:  f.BaseScore,
	}
	for _, t := range f.Trees {
		tt := *t
		tt.NumFeatures = f.NumFeatures + 1
		out.Trees = append(out.Trees, &tt)
	}
	return out
}

// reversedTrees clones the forest with the ensemble order reversed.
func reversedTrees(f *forest.Forest) *forest.Forest {
	out := *f
	out.Trees = make([]*forest.Tree, len(f.Trees))
	for i, t := range f.Trees {
		out.Trees[len(f.Trees)-1-i] = t
	}
	return &out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
