package conformance

import (
	"testing"

	"accelscore/internal/backend"
	"accelscore/internal/forest"
)

// TestMatrixShort runs the short differential matrix: every engine against
// the float64 oracle, metamorphic invariants, kernel paths and the
// end-to-end pipeline. In -short test runs this IS the CI conformance gate.
func TestMatrixShort(t *testing.T) {
	cases, err := Cases(true)
	if err != nil {
		t.Fatalf("building cases: %v", err)
	}
	rep, err := NewRunner().Run(cases)
	if err != nil {
		t.Fatalf("running matrix: %v", err)
	}
	if !rep.OK() {
		t.Fatalf("conformance failures:\n%s", rep.Summary())
	}
	if len(rep.Findings) == 0 {
		t.Fatal("matrix produced no findings")
	}
}

// TestMatrixFull widens the sweep (bigger models, more rows, extra shapes).
func TestMatrixFull(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix skipped in -short mode")
	}
	cases, err := Cases(false)
	if err != nil {
		t.Fatalf("building cases: %v", err)
	}
	rep, err := NewRunner().Run(cases)
	if err != nil {
		t.Fatalf("running matrix: %v", err)
	}
	if !rep.OK() {
		t.Fatalf("conformance failures:\n%s", rep.Summary())
	}
}

// TestOracleTieCounting pins the oracle's own tie-break bookkeeping on the
// handcrafted all-ties forest: every row ties and every prediction is the
// lowest class index.
func TestOracleTieCounting(t *testing.T) {
	c, err := tieCase()
	if err != nil {
		t.Fatalf("tie case: %v", err)
	}
	ref, err := Score(c.Forest, c.Data)
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	if ref.Ties != c.Data.NumRecords() {
		t.Fatalf("tie forest: oracle counted %d ties over %d rows", ref.Ties, c.Data.NumRecords())
	}
	for i, p := range ref.Predictions {
		if p != 0 {
			t.Fatalf("row %d: tied votes must resolve to class 0, got %d (votes %v)", i, p, ref.Votes[i])
		}
	}
}

// TestTieBreakAcrossEngines is the explicit tie-break regression test: on
// the forced-tie and exact-zero-margin forests, every engine that accepts
// the shape must predict class 0 on every row — the project-wide
// lowest-class-index / margin>0 convention.
func TestTieBreakAcrossEngines(t *testing.T) {
	for _, build := range []func() (Case, error){tieCase, zeroMarginCase} {
		c, err := build()
		if err != nil {
			t.Fatalf("building case: %v", err)
		}
		for _, eng := range NewRunner().Engines {
			res, err := eng.Score(&backend.Request{Forest: c.Forest, Data: c.Data})
			if err != nil {
				t.Logf("%s / %s: engine rejected the shape (%v)", c.Name, eng.Name(), err)
				continue
			}
			for i, p := range res.Predictions {
				if p != 0 {
					t.Errorf("%s / %s row %d: tie-break produced class %d, want 0",
						c.Name, eng.Name(), i, p)
					break
				}
			}
		}
	}
}

// TestDeepCaseExceedsFPGALimit guards the deep sweep's premise: the trained
// forest really is deeper than the plain FPGA's PE chain, so the skip it
// reports is exercising the documented limitation, not an accident.
func TestDeepCaseExceedsFPGALimit(t *testing.T) {
	c, err := deepCase(64, 0xdeeb)
	if err != nil {
		t.Fatalf("deep case: %v", err)
	}
	if got := c.Forest.ComputeStats().MaxDepth; got <= 10 {
		t.Fatalf("deep case trained only %d levels, need > 10", got)
	}
}

// TestSingleTreeForestPreservesSchema guards the decomposition helper.
func TestSingleTreeForestPreservesSchema(t *testing.T) {
	c, err := tieCase()
	if err != nil {
		t.Fatalf("tie case: %v", err)
	}
	s := singleTreeForest(c.Forest, 1)
	if err := s.Validate(); err != nil {
		t.Fatalf("single-tree forest invalid: %v", err)
	}
	if s.NumFeatures != c.Forest.NumFeatures || s.NumClasses != c.Forest.NumClasses {
		t.Fatalf("schema not preserved: %d/%d vs %d/%d",
			s.NumFeatures, s.NumClasses, c.Forest.NumFeatures, c.Forest.NumClasses)
	}
	if s.Kind != forest.Classifier || len(s.Trees) != 1 {
		t.Fatalf("unexpected single-tree forest shape: kind %v, %d trees", s.Kind, len(s.Trees))
	}
}
