package conformance

import (
	"fmt"

	"accelscore/internal/backend"
	"accelscore/internal/forest"
	"accelscore/internal/hw"
	"accelscore/internal/platform"
	"accelscore/internal/sim"
)

// blobScorer is the deserialize-then-score seam the ONNX engines expose.
type blobScorer interface {
	ScoreBlob(blob []byte, req *backend.Request) (*backend.Result, error)
}

// namedBackend relabels an engine variant so it reports under its own
// column (the hybrid FPGA shares the plain engine's "FPGA" name).
type namedBackend struct {
	backend.Backend
	name string
}

func (n *namedBackend) Name() string { return n.name }

// Runner drives the differential matrix.
type Runner struct {
	// Engines are the backends under test.
	Engines []backend.Backend
	// Runtime is the pipeline environment for the end-to-end checks.
	Runtime hw.RuntimeSpec
}

// NewRunner builds the default runner: the paper's six engines from the
// calibrated testbed, plus the hybrid FPGA+CPU deep-tree variant (§III-B)
// so models past the 10-level PE limit are differentially covered too.
func NewRunner() *Runner {
	tb := platform.New()
	engines := append([]backend.Backend{}, tb.AllBackends()...)
	hybrid := tb.FPGA.WithDeepTreeFallback(hw.DefaultCPU(), 0)
	engines = append(engines, &namedBackend{Backend: hybrid, name: "FPGA_hybrid"})
	return &Runner{Engines: engines, Runtime: hw.DefaultRuntime()}
}

// Run executes every check of the matrix over the given cases.
func (r *Runner) Run(cases []Case) (*Report, error) {
	rep := &Report{Cases: len(cases)}
	for _, c := range cases {
		ref, err := Score(c.Forest, c.Data)
		if err != nil {
			return nil, fmt.Errorf("conformance: case %s: %w", c.Name, err)
		}
		r.kernelChecks(rep, c, ref)
		for _, eng := range r.Engines {
			r.engineChecks(rep, c, eng, ref)
			r.metamorphicChecks(rep, c, eng)
			r.fusedChecks(rep, c, eng)
		}
		if c.Pipeline {
			r.pipelineChecks(rep, c, ref)
			r.fusedPipelineChecks(rep, c, ref)
			r.durabilityChecks(rep, c, ref)
			r.attributionChecks(rep, c, ref)
			r.scaleoutChecks(rep, c, ref)
		}
	}
	for _, c := range cases {
		if c.Pipeline {
			r.faultDeterminismCheck(rep, c)
			break
		}
	}
	return rep, nil
}

// kernelChecks compares the repo's two CPU traversal paths — the naive
// pointer walk and the shared flat kernel — against the oracle, including
// the kernel's per-row vote tallies and its parallel batch path.
func (r *Runner) kernelChecks(rep *Report, c Case, ref *Reference) {
	n := c.Data.NumRecords()
	features := c.Data.NumFeatures()

	// Naive pointer traversal (Forest.PredictClass) vs oracle.
	naiveOK := true
	for i := 0; i < n; i++ {
		if got := c.Forest.PredictClass(c.Data.Row(i)); got != ref.Predictions[i] {
			rep.fail(c.Name, "", "naive-vs-oracle",
				fmt.Sprintf("row %d: naive traversal %d, oracle %d", i, got, ref.Predictions[i]))
			naiveOK = false
			break
		}
	}
	if naiveOK {
		rep.pass(c.Name, "", "naive-vs-oracle")
	}

	compiled, err := c.Forest.Compile()
	if err != nil {
		rep.fail(c.Name, "", "kernel-compile", err.Error())
		return
	}

	// Flat kernel, row at a time, with vote tallies.
	votes := make([]int, compiled.NumClasses())
	rowOK := true
	for i := 0; i < n && rowOK; i++ {
		got := compiled.PredictRow(c.Data.Row(i), votes)
		if got != ref.Predictions[i] {
			rep.fail(c.Name, "", "kernel-row-vs-oracle",
				fmt.Sprintf("row %d: kernel %d, oracle %d", i, got, ref.Predictions[i]))
			rowOK = false
			break
		}
		if ref.Votes != nil {
			for cls, v := range ref.Votes[i] {
				if votes[cls] != v {
					rep.fail(c.Name, "", "kernel-row-vs-oracle",
						fmt.Sprintf("row %d class %d: kernel votes %d, oracle votes %d", i, cls, votes[cls], v))
					rowOK = false
					break
				}
			}
		}
	}
	if rowOK {
		rep.pass(c.Name, "", "kernel-row-vs-oracle")
	}

	// Flat kernel, blocked parallel batch, run twice: the worker fan-out
	// must be deterministic and identical to the row path.
	batch := func(workers int) []int {
		out := make([]int, n)
		compiled.Predict(c.Data.X[:n*features], features, out, workers)
		return out
	}
	first := batch(4)
	if d := firstDiff(first, ref.Predictions); d >= 0 {
		rep.fail(c.Name, "", "kernel-batch-vs-oracle",
			fmt.Sprintf("row %d: batch kernel %d, oracle %d", d, first[d], ref.Predictions[d]))
	} else if d := firstDiff(batch(4), first); d >= 0 {
		rep.fail(c.Name, "", "kernel-batch-vs-oracle",
			fmt.Sprintf("row %d: parallel batch not deterministic across runs", d))
	} else if d := firstDiff(batch(1), first); d >= 0 {
		rep.fail(c.Name, "", "kernel-batch-vs-oracle",
			fmt.Sprintf("row %d: 1-worker batch differs from 4-worker batch", d))
	} else {
		rep.pass(c.Name, "", "kernel-batch-vs-oracle")
	}
}

// engineChecks runs one engine over the case cold (engine compiles itself),
// warm (pre-compiled kernel form and stats ride the request, as on a
// pipeline cache hit) and via the serialized-blob seam, then verifies the
// timing invariants.
func (r *Runner) engineChecks(rep *Report, c Case, eng backend.Backend, ref *Reference) {
	name := eng.Name()
	n := int64(c.Data.NumRecords())
	stats := c.Forest.ComputeStats()

	cold, err := eng.Score(&backend.Request{Forest: c.Forest, Data: c.Data})
	if err != nil {
		rep.skip(c.Name, name, "differential-cold", err.Error())
		return
	}
	if d := firstDiff(cold.Predictions, ref.Predictions); d >= 0 {
		rep.fail(c.Name, name, "differential-cold", mismatchDetail(d, cold.Predictions[d], ref))
	} else {
		rep.pass(c.Name, name, "differential-cold")
	}

	// Warm path: the compiled form MUST be derived from Forest; engines
	// that ignore it must still agree.
	compiled, cerr := c.Forest.Compile()
	if cerr != nil {
		rep.fail(c.Name, name, "differential-warm", cerr.Error())
	} else {
		warm, werr := eng.Score(&backend.Request{Forest: c.Forest, Data: c.Data, Compiled: compiled, Stats: &stats})
		switch {
		case werr != nil:
			rep.fail(c.Name, name, "differential-warm",
				fmt.Sprintf("cold path scored but warm path errored: %v", werr))
		case firstDiff(warm.Predictions, ref.Predictions) >= 0:
			d := firstDiff(warm.Predictions, ref.Predictions)
			rep.fail(c.Name, name, "differential-warm", mismatchDetail(d, warm.Predictions[d], ref))
		case warm.Timeline.Total() > cold.Timeline.Total():
			rep.fail(c.Name, name, "differential-warm",
				fmt.Sprintf("warm simulated time %v exceeds cold %v", warm.Timeline.Total(), cold.Timeline.Total()))
		default:
			rep.pass(c.Name, name, "differential-warm")
		}
	}

	// Serialized-blob seam (ONNX engines): deserialize-then-score must
	// agree too, covering the RFX round trip.
	if bs, ok := eng.(blobScorer); ok {
		res, berr := bs.ScoreBlob(c.Blob, &backend.Request{Forest: c.Forest, Data: c.Data})
		if berr != nil {
			rep.fail(c.Name, name, "differential-blob", berr.Error())
		} else if d := firstDiff(res.Predictions, ref.Predictions); d >= 0 {
			rep.fail(c.Name, name, "differential-blob", mismatchDetail(d, res.Predictions[d], ref))
		} else {
			rep.pass(c.Name, name, "differential-blob")
		}
	}

	// Timing invariants: every span non-negative, the timeline total is
	// exactly the sum of its O/L/C/pipeline components, Score's simulated
	// time equals Estimate for the same shape, and Estimate is
	// deterministic.
	if detail := timelineDetail(&cold.Timeline); detail != "" {
		rep.fail(c.Name, name, "timing-consistency", detail)
		return
	}
	est1, err1 := eng.Estimate(stats, n)
	est2, err2 := eng.Estimate(stats, n)
	switch {
	case err1 != nil || err2 != nil:
		rep.fail(c.Name, name, "timing-consistency",
			fmt.Sprintf("Score succeeded but Estimate errored: %v / %v", err1, err2))
	case est1.Total() != cold.Timeline.Total():
		rep.fail(c.Name, name, "timing-consistency",
			fmt.Sprintf("Score total %v != Estimate total %v", cold.Timeline.Total(), est1.Total()))
	case est1.Total() != est2.Total():
		rep.fail(c.Name, name, "timing-consistency",
			fmt.Sprintf("Estimate not deterministic: %v then %v", est1.Total(), est2.Total()))
	default:
		rep.pass(c.Name, name, "timing-consistency")
	}
}

// timelineDetail returns a description of the first timing-invariant
// violation in tl, or "" when the timeline is consistent.
func timelineDetail(tl *sim.Timeline) string {
	for _, s := range tl.Spans() {
		if s.Duration < 0 {
			return fmt.Sprintf("negative span %q: %v", s.Name, s.Duration)
		}
	}
	kinds := tl.TotalKind(sim.KindOverhead) + tl.TotalKind(sim.KindTransfer) +
		tl.TotalKind(sim.KindCompute) + tl.TotalKind(sim.KindPipeline)
	if kinds != tl.Total() {
		return fmt.Sprintf("total %v != O+L+C_A+pipeline %v", tl.Total(), kinds)
	}
	return ""
}

// mismatchDetail describes one diverging row, including the oracle's vote
// tally or margin so tie-break bugs are immediately visible.
func mismatchDetail(row, got int, ref *Reference) string {
	if ref.Votes != nil {
		return fmt.Sprintf("row %d: engine %d, oracle %d (votes %v)", row, got, ref.Predictions[row], ref.Votes[row])
	}
	return fmt.Sprintf("row %d: engine %d, oracle %d (margin %g)", row, got, ref.Predictions[row], ref.Margins[row])
}

// firstDiff returns the first index where a and b differ (-1 if equal).
// Length mismatch counts as a difference at the shorter length.
func firstDiff(a, b []int) int {
	if len(a) != len(b) {
		if len(a) < len(b) {
			return len(a)
		}
		return len(b)
	}
	for i := range a {
		if a[i] != b[i] {
			return i
		}
	}
	return -1
}

// singleTreeForest wraps one tree of f as a standalone forest, preserving
// the schema — the decomposition invariant's building block.
func singleTreeForest(f *forest.Forest, i int) *forest.Forest {
	return &forest.Forest{
		Trees:        []*forest.Tree{f.Trees[i]},
		Kind:         f.Kind,
		NumFeatures:  f.NumFeatures,
		NumClasses:   f.NumClasses,
		FeatureNames: f.FeatureNames,
		ClassNames:   f.ClassNames,
		BaseScore:    f.BaseScore,
	}
}
