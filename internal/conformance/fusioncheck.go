package conformance

import (
	"fmt"
	"math"

	"accelscore/internal/backend"
	"accelscore/internal/dataset"
	"accelscore/internal/db"
	"accelscore/internal/kernel"
	"accelscore/internal/pipeline"
	"accelscore/internal/tensor"
)

// fusedChecks verifies the operator-fusion metamorphic invariants on one
// engine:
//
//   - scoring with a pushed-down selection is bit-identical to scoring every
//     row and filtering afterwards, for selective, empty and all-rows
//     predicates — including rows carrying NaN/Inf feature values (NaN
//     comparisons are false, so NaN rows fall out of any predicate over
//     their column, exactly like the DBMS's WHERE);
//   - a fused score-then-aggregate request returns the same class histogram
//     as aggregating the materialized filtered predictions, whether the
//     engine honors WantCounts in the kernel or the caller tallies.
func (r *Runner) fusedChecks(rep *Report, c Case, eng backend.Backend) {
	name := eng.Name()
	data := withNonFiniteRows(c.Data.Head(minInt(metaRows, c.Data.NumRecords())))
	n := data.NumRecords()

	base, err := eng.Score(&backend.Request{Forest: c.Forest, Data: data})
	if err != nil {
		rep.skip(c.Name, name, "fused-filter", err.Error())
		return
	}

	// Predicate shapes: a selective cut on the NaN/Inf-bearing column, a cut
	// on a finite column (so non-finite rows are *selected* and traversed by
	// both paths), an empty predicate, and an all-rows predicate.
	mid := finiteMidpoint(data, 0)
	preds := []struct {
		label string
		pred  kernel.Predicate
	}{
		{"selective", kernel.Predicate{Feature: 0, Op: kernel.PredLT, Value: mid}},
		{"finite-col", kernel.Predicate{Feature: 1 % data.NumFeatures(), Op: kernel.PredGE, Value: finiteMidpoint(data, 1%data.NumFeatures())}},
		{"empty", kernel.Predicate{Feature: 0, Op: kernel.PredLT, Value: math.Inf(-1)}},
		{"all", kernel.Predicate{Feature: 1 % data.NumFeatures(), Op: kernel.PredGE, Value: -math.MaxFloat64}},
	}

	filterOK := true
	var aggSel *kernel.Selection
	var aggWant []int
	for _, pc := range preds {
		sel := kernel.BuildSelection(n, []kernel.Predicate{pc.pred}, data.X, data.NumFeatures())
		fused, err := eng.Score(&backend.Request{Forest: c.Forest, Data: data, Sel: sel})
		if err != nil {
			rep.fail(c.Name, name, "fused-filter",
				fmt.Sprintf("%s predicate: %v", pc.label, err))
			filterOK = false
			break
		}
		want := make([]int, 0, sel.Count())
		for i := 0; i < n; i++ {
			if sel.Selected(i) {
				want = append(want, base.Predictions[i])
			}
		}
		if d := firstDiff(fused.Predictions, want); d >= 0 {
			rep.fail(c.Name, name, "fused-filter",
				fmt.Sprintf("%s predicate, dense row %d: fused %d, score-then-filter %d",
					pc.label, d, at(fused.Predictions, d), at(want, d)))
			filterOK = false
			break
		}
		if pc.label == "selective" {
			aggSel, aggWant = sel, want
		}
	}
	if filterOK {
		rep.pass(c.Name, name, "fused-filter")
	}
	if aggSel == nil {
		return
	}

	// Fused aggregate: with or without kernel support, the histogram must
	// equal aggregating the materialized filtered predictions.
	res, err := eng.Score(&backend.Request{Forest: c.Forest, Data: data, Sel: aggSel, WantCounts: true})
	if err != nil {
		rep.fail(c.Name, name, "fused-aggregate", err.Error())
		return
	}
	counts := res.ClassCounts
	if counts == nil {
		counts = tensor.Bincount(res.Predictions, 0)
	}
	want := tensor.Bincount(aggWant, len(counts))
	for class := range counts {
		w := int64(0)
		if class < len(want) {
			w = want[class]
		}
		if counts[class] != w {
			rep.fail(c.Name, name, "fused-aggregate",
				fmt.Sprintf("class %d: fused count %d, materialized count %d", class, counts[class], w))
			return
		}
	}
	var total, wantTotal int64
	for _, v := range counts {
		total += v
	}
	for _, v := range want {
		wantTotal += v
	}
	if total != wantTotal {
		rep.fail(c.Name, name, "fused-aggregate",
			fmt.Sprintf("histogram totals %d, filtered rows %d", total, wantTotal))
		return
	}
	rep.pass(c.Name, name, "fused-aggregate")
}

// fusedPipelineChecks drives the fused SQL forms end to end for one case and
// every engine: EXEC ... @where must equal post-filtering the oracle, and
// the PREDICT aggregate forms must equal aggregating the materialized
// prediction column.
func (r *Runner) fusedPipelineChecks(rep *Report, c Case, ref *Reference) {
	database := db.New()
	tbl, err := db.TableFromDataset("scoring_input", c.Data)
	if err != nil {
		rep.fail(c.Name, "", "fused-pipeline-setup", err.Error())
		return
	}
	if err := database.CreateTable(tbl); err != nil {
		rep.fail(c.Name, "", "fused-pipeline-setup", err.Error())
		return
	}
	if err := database.StoreModelBlob("m", c.Blob); err != nil {
		rep.fail(c.Name, "", "fused-pipeline-setup", err.Error())
		return
	}
	reg := backend.NewRegistry()
	for _, eng := range r.Engines {
		if err := reg.Register(eng); err != nil {
			rep.fail(c.Name, eng.Name(), "fused-pipeline-setup", err.Error())
			return
		}
	}

	col := c.Data.FeatureNames[0]
	cut := finiteMidpoint(c.Data, 0)
	var want []int
	for i := 0; i < c.Data.NumRecords(); i++ {
		if float64(c.Data.Row(i)[0]) < cut {
			want = append(want, ref.Predictions[i])
		}
	}
	wantHist := tensor.Bincount(ref.Predictions, 0)

	for _, eng := range r.Engines {
		name := eng.Name()
		p := &pipeline.Pipeline{
			DB:       database,
			Runtime:  r.Runtime,
			Registry: reg,
			Cache:    pipeline.NewModelCache(4),
		}

		res, err := p.ExecQuery(fmt.Sprintf(
			"EXEC sp_score_model @model = 'm', @data = 'scoring_input', @backend = '%s', @where = '%s < %g'",
			name, col, cut))
		switch {
		case err != nil:
			rep.skip(c.Name, name, "fused-pipeline-where", err.Error())
			continue
		case firstDiff(res.Predictions, want) >= 0:
			d := firstDiff(res.Predictions, want)
			rep.fail(c.Name, name, "fused-pipeline-where",
				fmt.Sprintf("dense row %d: fused %d, score-then-filter %d", d, at(res.Predictions, d), at(want, d)))
		case res.RowsScored != len(want) || res.Table.NumRows() != len(want):
			rep.fail(c.Name, name, "fused-pipeline-where",
				fmt.Sprintf("scored %d rows, table has %d, want %d", res.RowsScored, res.Table.NumRows(), len(want)))
		default:
			rep.pass(c.Name, name, "fused-pipeline-where")
		}

		agg, err := p.ExecQuery(fmt.Sprintf(
			"SELECT prediction, COUNT(*) FROM PREDICT(@model = 'm', @data = 'scoring_input', @backend = '%s') GROUP BY prediction",
			name))
		if err != nil {
			rep.fail(c.Name, name, "fused-pipeline-aggregate", err.Error())
			continue
		}
		ok := true
		var total int64
		for row := 0; row < agg.Table.NumRows(); row++ {
			class, count := agg.Table.Cell(row, 0).I, agg.Table.Cell(row, 1).I
			total += count
			if class < 0 || class >= int64(len(wantHist)) || wantHist[class] != count {
				rep.fail(c.Name, name, "fused-pipeline-aggregate",
					fmt.Sprintf("class %d: fused count %d disagrees with materialized histogram", class, count))
				ok = false
				break
			}
		}
		if ok && total != int64(len(ref.Predictions)) {
			rep.fail(c.Name, name, "fused-pipeline-aggregate",
				fmt.Sprintf("histogram totals %d of %d rows", total, len(ref.Predictions)))
			ok = false
		}
		if ok {
			rep.pass(c.Name, name, "fused-pipeline-aggregate")
		}
	}
}

// withNonFiniteRows appends rows whose first feature is NaN, +Inf and -Inf
// (remaining features copied from row 0): predicate semantics over them must
// match the DBMS's (NaN never compares true).
func withNonFiniteRows(d *dataset.Dataset) *dataset.Dataset {
	out := &dataset.Dataset{
		Name:         d.Name + "_nonfinite",
		FeatureNames: append([]string(nil), d.FeatureNames...),
		ClassNames:   append([]string(nil), d.ClassNames...),
		X:            append([]float32(nil), d.X...),
	}
	for _, v := range []float32{float32(math.NaN()), float32(math.Inf(1)), float32(math.Inf(-1))} {
		row := append([]float32(nil), d.Row(0)...)
		row[0] = v
		out.X = append(out.X, row...)
	}
	return out
}

// finiteMidpoint returns the midpoint of the finite value range of one
// feature column — a predicate threshold that splits real data without
// tripping over probe rows.
func finiteMidpoint(d *dataset.Dataset, feature int) float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	f := d.NumFeatures()
	for i := 0; i < d.NumRecords(); i++ {
		v := float64(d.X[i*f+feature])
		if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e29 {
			continue // skip probe magnitudes; they'd swamp the midpoint
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if lo > hi {
		return 0
	}
	return (lo + hi) / 2
}

// at indexes s, returning -1 past the end (for mismatch messages where one
// side is shorter).
func at(s []int, i int) int {
	if i >= len(s) {
		return -1
	}
	return s[i]
}
