package conformance

import (
	"fmt"
	"sort"
	"strings"
)

// Status is the outcome of one conformance check.
type Status int

const (
	// Pass means the check ran and the engine agreed with the oracle.
	Pass Status = iota
	// Skip means the engine rejected the configuration (e.g. RAPIDS on a
	// multi-class model, the plain FPGA on >10-level trees) — a legitimate,
	// documented limitation, not a divergence.
	Skip
	// Fail means the engine ran and disagreed with the oracle, or violated
	// a metamorphic or timing invariant.
	Fail
)

// String returns the report label.
func (s Status) String() string {
	switch s {
	case Pass:
		return "pass"
	case Skip:
		return "skip"
	default:
		return "FAIL"
	}
}

// Finding is the outcome of one (case, engine, check) cell of the matrix.
type Finding struct {
	Case   string
	Engine string // empty for engine-independent (kernel/oracle) checks
	Check  string
	Status Status
	Detail string
}

// Report accumulates the whole matrix.
type Report struct {
	Findings []Finding
	Cases    int
}

func (r *Report) add(caseName, engine, check string, status Status, detail string) {
	r.Findings = append(r.Findings, Finding{
		Case: caseName, Engine: engine, Check: check, Status: status, Detail: detail,
	})
}

func (r *Report) pass(caseName, engine, check string) {
	r.add(caseName, engine, check, Pass, "")
}

func (r *Report) skip(caseName, engine, check, why string) {
	r.add(caseName, engine, check, Skip, why)
}

func (r *Report) fail(caseName, engine, check, detail string) {
	r.add(caseName, engine, check, Fail, detail)
}

// Failures returns the failed findings.
func (r *Report) Failures() []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Status == Fail {
			out = append(out, f)
		}
	}
	return out
}

// OK reports whether every check passed or was legitimately skipped.
func (r *Report) OK() bool { return len(r.Failures()) == 0 }

// Summary renders a per-engine pass/skip/fail table followed by the detail
// of every failure — the cmd/conformance output.
func (r *Report) Summary() string {
	type tally struct{ pass, skip, fail int }
	tallies := make(map[string]*tally)
	var engines []string
	for _, f := range r.Findings {
		name := f.Engine
		if name == "" {
			name = "(oracle/kernel)"
		}
		t, ok := tallies[name]
		if !ok {
			t = &tally{}
			tallies[name] = t
			engines = append(engines, name)
		}
		switch f.Status {
		case Pass:
			t.pass++
		case Skip:
			t.skip++
		default:
			t.fail++
		}
	}
	sort.Strings(engines)

	var sb strings.Builder
	fmt.Fprintf(&sb, "Conformance matrix: %d cases, %d checks\n\n", r.Cases, len(r.Findings))
	fmt.Fprintf(&sb, "%-18s %6s %6s %6s\n", "engine", "pass", "skip", "fail")
	for _, e := range engines {
		t := tallies[e]
		fmt.Fprintf(&sb, "%-18s %6d %6d %6d\n", e, t.pass, t.skip, t.fail)
	}
	failures := r.Failures()
	if len(failures) == 0 {
		sb.WriteString("\nAll engines agree with the reference oracle.\n")
		return sb.String()
	}
	fmt.Fprintf(&sb, "\n%d FAILURE(S):\n", len(failures))
	for _, f := range failures {
		fmt.Fprintf(&sb, "  [%s / %s] %s: %s\n", f.Case, f.Engine, f.Check, f.Detail)
	}
	return sb.String()
}
