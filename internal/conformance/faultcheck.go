package conformance

import (
	"fmt"

	"accelscore/internal/backend"
	"accelscore/internal/db"
	"accelscore/internal/faults"
	"accelscore/internal/pipeline"
)

// faultPlan mixes every trigger kind so the determinism check covers the
// probabilistic, periodic and one-shot paths of the injector at once.
const faultPlan = "FPGA:invoke:busy:p=0.4;FPGA:transfer:corrupt:every=3;FPGA:invoke:crash:once=5"

// faultQueries is the stream length for the determinism check: long enough
// that every rule in faultPlan fires at least once.
const faultQueries = 12

// faultDeterminismCheck replays the same serial query stream through two
// fresh pipelines armed with identically-seeded injectors and the same
// plan. Chaos testing is only debuggable if it is reproducible, so the two
// runs must produce the identical fault sequence (seq/backend/boundary/
// kind), the identical per-query success/failure pattern, and bit-identical
// predictions for every query that survives.
func (r *Runner) faultDeterminismCheck(rep *Report, c Case) {
	const check = "fault-determinism"

	type runOut struct {
		events []faults.Event
		errs   []string
		preds  [][]int
	}
	run := func() (*runOut, error) {
		database := db.New()
		tbl, err := db.TableFromDataset("scoring_input", c.Data)
		if err != nil {
			return nil, err
		}
		if err := database.CreateTable(tbl); err != nil {
			return nil, err
		}
		if err := database.StoreModelBlob("m", c.Blob); err != nil {
			return nil, err
		}
		reg := backend.NewRegistry()
		for _, eng := range r.Engines {
			if err := reg.Register(eng); err != nil {
				return nil, err
			}
		}
		rules, err := faults.Parse(faultPlan)
		if err != nil {
			return nil, err
		}
		inj, err := faults.NewInjector(77, rules)
		if err != nil {
			return nil, err
		}
		p := &pipeline.Pipeline{
			DB:       database,
			Runtime:  r.Runtime,
			Registry: reg,
			Cache:    pipeline.NewModelCache(4),
			Faults:   inj,
		}
		out := &runOut{}
		query := "EXEC sp_score_model @model = 'm', @data = 'scoring_input', @backend = 'FPGA'"
		for i := 0; i < faultQueries; i++ {
			res, err := p.ExecQuery(query)
			if err != nil {
				out.errs = append(out.errs, err.Error())
				out.preds = append(out.preds, nil)
				continue
			}
			out.errs = append(out.errs, "")
			out.preds = append(out.preds, res.Predictions)
		}
		out.events = inj.Events()
		return out, nil
	}

	a, err := run()
	if err != nil {
		rep.fail(c.Name, "FPGA", check, err.Error())
		return
	}
	b, err := run()
	if err != nil {
		rep.fail(c.Name, "FPGA", check, err.Error())
		return
	}

	if len(a.events) == 0 {
		rep.fail(c.Name, "FPGA", check, "fault plan never fired; the check exercised nothing")
		return
	}
	if len(a.events) != len(b.events) {
		rep.fail(c.Name, "FPGA", check,
			fmt.Sprintf("run 1 fired %d faults, run 2 fired %d", len(a.events), len(b.events)))
		return
	}
	for i := range a.events {
		ea, eb := a.events[i], b.events[i]
		if ea.Seq != eb.Seq || ea.Backend != eb.Backend || ea.Boundary != eb.Boundary || ea.Kind != eb.Kind {
			rep.fail(c.Name, "FPGA", check,
				fmt.Sprintf("fault %d diverged: run 1 %s/%s/%s, run 2 %s/%s/%s", i,
					ea.Backend, ea.Boundary, ea.Kind, eb.Backend, eb.Boundary, eb.Kind))
			return
		}
	}
	for i := 0; i < faultQueries; i++ {
		if a.errs[i] != b.errs[i] {
			rep.fail(c.Name, "FPGA", check,
				fmt.Sprintf("query %d outcome diverged: run 1 %q, run 2 %q", i, a.errs[i], b.errs[i]))
			return
		}
		if d := firstDiff(a.preds[i], b.preds[i]); d >= 0 {
			rep.fail(c.Name, "FPGA", check,
				fmt.Sprintf("query %d row %d: surviving predictions diverged", i, d))
			return
		}
	}
	rep.pass(c.Name, "FPGA", check)
}
