// Package conformance implements the cross-engine differential and
// metamorphic testing subsystem: a simple double-precision reference
// traversal acts as the oracle, and every registered scoring engine —
// CPU_SKLearn, both CPU_ONNX variants, GPU_RAPIDS, GPU_HB, the FPGA and its
// hybrid deep-tree variant — is checked against it over seeded, size-swept
// random forests and datasets.
//
// The paper's whole argument (the Fig. 1/8/11 shmoos) rests on all backends
// computing the same predictions so that only the offload overhead O, the
// transfer cost L and the accelerator compute C_A differ between them. The
// oracle pins that assumption: predictions must agree bit-exactly, vote
// counts must agree with the reference tally, and each engine's simulated
// timeline must stay self-consistent (total == O + L + C_A (+ pipeline)).
package conformance

import (
	"fmt"

	"accelscore/internal/dataset"
	"accelscore/internal/forest"
)

// Reference is the oracle's output for one (forest, dataset) pair.
type Reference struct {
	// Classes is the vote-vector width (2 for boosted ensembles).
	Classes int
	// Predictions holds one class id per row.
	Predictions []int
	// Votes holds the per-row per-class vote tally (nil for boosted
	// ensembles, which aggregate margins instead of votes).
	Votes [][]int
	// Margins holds the per-row raw log-odds for boosted ensembles (nil
	// otherwise).
	Margins []float64
	// Ties counts rows whose winning vote count is shared by more than one
	// class — the rows where tie-break convention (lowest class index wins)
	// decides the prediction.
	Ties int
}

// Score runs the reference traversal: an independent double-precision
// pointer walk over every tree, deliberately written without reusing the
// flat kernel, the dense FPGA layout or the tensor compiler, so that a bug
// shared by the production paths cannot hide here.
func Score(f *forest.Forest, d *dataset.Dataset) (*Reference, error) {
	if err := f.Validate(); err != nil {
		return nil, fmt.Errorf("conformance: oracle model: %w", err)
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("conformance: oracle data: %w", err)
	}
	if d.NumFeatures() != f.NumFeatures {
		return nil, fmt.Errorf("conformance: oracle: data has %d features, model expects %d",
			d.NumFeatures(), f.NumFeatures)
	}
	n := d.NumRecords()
	classes := f.NumClasses
	if classes < 1 {
		classes = 1
	}
	ref := &Reference{Classes: classes, Predictions: make([]int, n)}
	if f.Kind == forest.Boosted {
		ref.Margins = make([]float64, n)
		for i := 0; i < n; i++ {
			row := d.Row(i)
			m := f.BaseScore
			for _, t := range f.Trees {
				m += refLeaf(t.Root, row).Value
			}
			ref.Margins[i] = m
			if m > 0 {
				ref.Predictions[i] = 1
			}
		}
		return ref, nil
	}
	ref.Votes = make([][]int, n)
	for i := 0; i < n; i++ {
		row := d.Row(i)
		votes := make([]int, classes)
		for _, t := range f.Trees {
			votes[refLeaf(t.Root, row).Class]++
		}
		best := 0
		for c, v := range votes {
			if v > votes[best] {
				best = c
			}
		}
		ref.Votes[i] = votes
		ref.Predictions[i] = best
		tied := false
		for c, v := range votes {
			if c != best && v == votes[best] {
				tied = true
			}
		}
		if tied {
			ref.Ties++
		}
	}
	return ref, nil
}

// refLeaf walks one pointer tree in float64: an input goes left when
// float64(x[feature]) < float64(threshold) — exactly the project-wide split
// convention, with the comparison widened so the oracle cannot inherit a
// float32 quirk from the production kernels (float32 widening is exact, so
// the decision is provably identical when both sides are finite floats).
func refLeaf(n *forest.Node, row []float32) *forest.Node {
	for !n.IsLeaf() {
		if float64(row[n.Feature]) < float64(n.Threshold) {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return n
}
