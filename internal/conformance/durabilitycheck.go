package conformance

import (
	"bytes"
	"fmt"
	"math"

	"accelscore/internal/backend"
	"accelscore/internal/db"
	"accelscore/internal/model"
)

// durabilityChecks round-trips the case through the binary snapshot format —
// the scoring table laid out as checksummed column pages, the model blob
// beside it — reloads both into a fresh database, and requires every engine
// to score the reloaded data with the reloaded model bit-identically to the
// oracle, cold and warm. A storage path that perturbs a single feature bit
// or blob byte would silently shift accelerator results; this check makes
// that a conformance failure instead.
func (r *Runner) durabilityChecks(rep *Report, c Case, ref *Reference) {
	const check = "durability-roundtrip"
	d := db.New()
	tbl, err := db.TableFromDataset("conf_data", c.Data)
	if err != nil {
		rep.fail(c.Name, "", check, err.Error())
		return
	}
	if err := d.CreateTable(tbl); err != nil {
		rep.fail(c.Name, "", check, err.Error())
		return
	}
	if err := d.StoreModelBlob("conf_model", c.Blob); err != nil {
		rep.fail(c.Name, "", check, err.Error())
		return
	}
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		rep.fail(c.Name, "", check, "save: "+err.Error())
		return
	}
	d2, err := db.Load(&buf)
	if err != nil {
		rep.fail(c.Name, "", check, "reload: "+err.Error())
		return
	}

	t2, err := d2.Table("conf_data")
	if err != nil {
		rep.fail(c.Name, "", check, "table lost in round trip")
		return
	}
	data2, err := db.DatasetFromTable(t2)
	if err != nil {
		rep.fail(c.Name, "", check, err.Error())
		return
	}
	if len(data2.X) != len(c.Data.X) {
		rep.fail(c.Name, "", check,
			fmt.Sprintf("reloaded %d feature values, want %d", len(data2.X), len(c.Data.X)))
		return
	}
	for i := range data2.X {
		if math.Float32bits(data2.X[i]) != math.Float32bits(c.Data.X[i]) {
			rep.fail(c.Name, "", check,
				fmt.Sprintf("feature value %d changed bits: %g -> %g", i, c.Data.X[i], data2.X[i]))
			return
		}
	}
	blob2, err := d2.LoadModelBlob("conf_model")
	if err != nil || !bytes.Equal(blob2, c.Blob) {
		rep.fail(c.Name, "", check, "model blob not byte-identical after round trip")
		return
	}
	f2, err := model.Unmarshal(blob2)
	if err != nil {
		rep.fail(c.Name, "", check, "reloaded blob does not deserialize: "+err.Error())
		return
	}
	rep.pass(c.Name, "", check)

	// Score the reloaded (model, data) pair on every engine, cold and warm,
	// against the oracle computed on the original.
	stats := f2.ComputeStats()
	compiled, cerr := f2.Compile()
	for _, eng := range r.Engines {
		name := eng.Name()
		cold, err := eng.Score(&backend.Request{Forest: f2, Data: data2})
		if err != nil {
			// Engines that reject the shape (e.g. GPU_RAPIDS on multi-class)
			// reject it identically before and after the round trip.
			rep.skip(c.Name, name, "durability-cold", err.Error())
			continue
		}
		if diff := firstDiff(cold.Predictions, ref.Predictions); diff >= 0 {
			rep.fail(c.Name, name, "durability-cold", mismatchDetail(diff, cold.Predictions[diff], ref))
		} else {
			rep.pass(c.Name, name, "durability-cold")
		}

		if cerr != nil {
			rep.fail(c.Name, name, "durability-warm", cerr.Error())
			continue
		}
		warm, err := eng.Score(&backend.Request{
			Forest: f2, Data: data2, Compiled: compiled, Stats: &stats,
		})
		if err != nil {
			rep.fail(c.Name, name, "durability-warm", err.Error())
			continue
		}
		if diff := firstDiff(warm.Predictions, ref.Predictions); diff >= 0 {
			rep.fail(c.Name, name, "durability-warm", mismatchDetail(diff, warm.Predictions[diff], ref))
		} else {
			rep.pass(c.Name, name, "durability-warm")
		}
	}
}
