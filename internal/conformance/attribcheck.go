package conformance

import (
	"fmt"

	"accelscore/internal/backend"
	"accelscore/internal/db"
	"accelscore/internal/obs"
	"accelscore/internal/pipeline"
)

// attributionChecks proves resource attribution is pure observation: the
// same query scored with attribution on must reproduce the oracle's
// predictions bit for bit, and the recorded costs must be well-formed —
// canonical stage order, both transfer legs charged, a retained trace
// carrying the same costs.
func (r *Runner) attributionChecks(rep *Report, c Case, ref *Reference) {
	database := db.New()
	tbl, err := db.TableFromDataset("scoring_input", c.Data)
	if err != nil {
		rep.fail(c.Name, "", "attrib-setup", err.Error())
		return
	}
	if err := database.CreateTable(tbl); err != nil {
		rep.fail(c.Name, "", "attrib-setup", err.Error())
		return
	}
	if err := database.StoreModelBlob("m", c.Blob); err != nil {
		rep.fail(c.Name, "", "attrib-setup", err.Error())
		return
	}
	reg := backend.NewRegistry()
	for _, eng := range r.Engines {
		if err := reg.Register(eng); err != nil {
			rep.fail(c.Name, eng.Name(), "attrib-setup", err.Error())
			return
		}
	}

	for _, eng := range r.Engines {
		name := eng.Name()
		o := obs.NewObserver()
		o.Attribution = true
		p := &pipeline.Pipeline{
			DB:       database,
			Runtime:  r.Runtime,
			Registry: reg,
			Cache:    pipeline.NewModelCache(4),
			Obs:      o,
		}
		query := fmt.Sprintf("EXEC sp_score_model @model = 'm', @data = 'scoring_input', @backend = '%s'", name)
		res, err := p.ExecQuery(query)
		if err != nil {
			rep.skip(c.Name, name, "attrib", err.Error())
			continue
		}
		if d := firstDiff(res.Predictions, ref.Predictions); d >= 0 {
			rep.fail(c.Name, name, "attrib",
				"attribution changed a prediction: "+mismatchDetail(d, res.Predictions[d], ref))
			continue
		}
		if msg := attributionMismatch(res); msg != "" {
			rep.fail(c.Name, name, "attrib", msg)
			continue
		}
		tr, ok := o.Tracer.Get(res.TraceID)
		if !ok {
			rep.fail(c.Name, name, "attrib", "attributed query retained no trace")
			continue
		}
		if snap := tr.Snapshot(); len(snap.Costs) != len(res.Attribution) {
			rep.fail(c.Name, name, "attrib",
				fmt.Sprintf("trace holds %d stage costs, result holds %d", len(snap.Costs), len(res.Attribution)))
			continue
		}
		rep.pass(c.Name, name, "attrib")
	}
}

// attributionMismatch validates the shape of a query's recorded costs,
// returning "" when consistent.
func attributionMismatch(res *pipeline.QueryResult) string {
	want := []string{
		pipeline.StageTransferIn,
		pipeline.StageModelPreproc,
		pipeline.StageModelScoring,
		pipeline.StagePostprocessing,
		pipeline.StageTransferOut,
	}
	if len(res.Attribution) != len(want) {
		return fmt.Sprintf("attribution has %d stages, want %d", len(res.Attribution), len(want))
	}
	for i, w := range want {
		if res.Attribution[i].Stage != w {
			return fmt.Sprintf("attribution stage %d is %q, want %q", i, res.Attribution[i].Stage, w)
		}
	}
	if res.Attribution[0].BytesMoved <= 0 {
		return "inbound transfer leg charged no bytes"
	}
	if res.Attribution[len(want)-1].BytesMoved <= 0 {
		return "outbound transfer leg charged no bytes"
	}
	return ""
}
