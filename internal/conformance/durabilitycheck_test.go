package conformance

import (
	"testing"
)

// TestDurabilityChecksRunAndPass pins the durability leg of the matrix: on
// the iris pipeline case the snapshot round trip must pass, and every engine
// must contribute a cold and a warm durability verdict (pass, or skip for
// engines that reject the shape — never silence).
func TestDurabilityChecksRunAndPass(t *testing.T) {
	c, err := irisCase(60, 42)
	if err != nil {
		t.Fatalf("iris case: %v", err)
	}
	ref, err := Score(c.Forest, c.Data)
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	r := NewRunner()
	rep := &Report{Cases: 1}
	r.durabilityChecks(rep, c, ref)
	if !rep.OK() {
		t.Fatalf("durability failures:\n%s", rep.Summary())
	}

	roundTrips, cold, warm := 0, map[string]bool{}, map[string]bool{}
	for _, f := range rep.Findings {
		switch f.Check {
		case "durability-roundtrip":
			roundTrips++
		case "durability-cold":
			cold[f.Engine] = true
		case "durability-warm":
			warm[f.Engine] = true
		}
	}
	if roundTrips != 1 {
		t.Fatalf("expected 1 round-trip finding, got %d", roundTrips)
	}
	if len(cold) != len(r.Engines) {
		t.Fatalf("cold durability verdicts from %d engines, want %d", len(cold), len(r.Engines))
	}
	// An engine that scored cold must also be held to the warm path.
	for _, f := range rep.Findings {
		if f.Check == "durability-cold" && f.Status == Pass && !warm[f.Engine] {
			t.Fatalf("engine %s passed cold but has no warm verdict", f.Engine)
		}
	}
}
