package conformance

import (
	"context"
	"fmt"

	"accelscore/internal/backend"
	"accelscore/internal/db"
	"accelscore/internal/pipeline"
	"accelscore/internal/router"
)

// scaleoutShards is the scatter width of the conformance scale-out topology:
// three in-process shards is the smallest width where a middle partition has
// non-trivial neighbors on both sides of the hash split.
const scaleoutShards = 3

// scaleoutChecks verifies the scatter-gather serving tier end to end for one
// case: a router over three in-process (router.Local) shards, each a full
// replica of the case's data, must produce results bit-identical to a
// single-node pipeline run of the same statement — for every engine, for a
// full scan, for tenant-affine routing, for a pushed-down @where whose
// selection bitmap is split across the hash partitions, and for the fused
// GROUP BY aggregate whose per-shard histograms are summed at the gather.
// Any divergence here means the hash partitioning, the sub-query scatter or
// the k-way ordinal merge reordered, dropped or double-counted rows.
func (r *Runner) scaleoutChecks(rep *Report, c Case, ref *Reference) {
	database := db.New()
	tbl, err := db.TableFromDataset("scoring_input", c.Data)
	if err != nil {
		rep.fail(c.Name, "", "scaleout-setup", err.Error())
		return
	}
	if err := database.CreateTable(tbl); err != nil {
		rep.fail(c.Name, "", "scaleout-setup", err.Error())
		return
	}
	if err := database.StoreModelBlob("m", c.Blob); err != nil {
		rep.fail(c.Name, "", "scaleout-setup", err.Error())
		return
	}
	reg := backend.NewRegistry()
	for _, eng := range r.Engines {
		if err := reg.Register(eng); err != nil {
			rep.fail(c.Name, eng.Name(), "scaleout-setup", err.Error())
			return
		}
	}
	newPipe := func() *pipeline.Pipeline {
		return &pipeline.Pipeline{
			DB:       database,
			Runtime:  r.Runtime,
			Registry: reg,
			Cache:    pipeline.NewModelCache(4),
		}
	}

	// Data-symmetric replicas: every shard sees the full table and scores
	// only its hash partition — the serving tier's topology in miniature.
	single := newPipe()
	shards := make([]router.Backend, scaleoutShards)
	for i := range shards {
		shards[i] = &router.Local{Name: fmt.Sprintf("shard-%d", i), Pipe: newPipe()}
	}
	rt, err := router.New(router.Config{Backends: shards})
	if err != nil {
		rep.fail(c.Name, "", "scaleout-setup", err.Error())
		return
	}
	ctx := context.Background()

	col := c.Data.FeatureNames[0]
	cut := finiteMidpoint(c.Data, 0)

	for _, eng := range r.Engines {
		name := eng.Name()

		// Full scan: dense predictions, so the merged result must drop its
		// ordinal list and match the single-node shape exactly.
		scanSQL := fmt.Sprintf(
			"EXEC sp_score_model @model = 'm', @data = 'scoring_input', @backend = '%s'", name)
		base, err := single.ExecQuery(scanSQL)
		if err != nil {
			// The engine rejects this configuration identically on every
			// node; nothing for the scatter tier to diverge from.
			rep.skip(c.Name, name, "scaleout-scan", err.Error())
			continue
		}
		merged, err := rt.Query(ctx, scanSQL, router.QueryOptions{})
		switch {
		case err != nil:
			rep.fail(c.Name, name, "scaleout-scan", err.Error())
		case merged.Partial:
			rep.fail(c.Name, name, "scaleout-scan",
				fmt.Sprintf("healthy shards produced a partial result (missing %v)", merged.MissingPartitions))
		case merged.ScoredRows != nil:
			rep.fail(c.Name, name, "scaleout-scan",
				"dense scan kept a ScoredRows ordinal list; single-node shape is nil")
		case firstDiff(merged.Predictions, base.Predictions) >= 0:
			d := firstDiff(merged.Predictions, base.Predictions)
			rep.fail(c.Name, name, "scaleout-scan",
				fmt.Sprintf("row %d: merged %d, single-node %d", d, at(merged.Predictions, d), at(base.Predictions, d)))
		case merged.RowsScored != base.RowsScored || merged.RowsScanned != base.RowsScanned:
			rep.fail(c.Name, name, "scaleout-scan",
				fmt.Sprintf("merged scanned/scored %d/%d rows, single-node %d/%d",
					merged.RowsScanned, merged.RowsScored, base.RowsScanned, base.RowsScored))
		case firstDiff(merged.Predictions, ref.Predictions) >= 0:
			d := firstDiff(merged.Predictions, ref.Predictions)
			rep.fail(c.Name, name, "scaleout-scan", mismatchDetail(d, merged.Predictions[d], ref))
		default:
			rep.pass(c.Name, name, "scaleout-scan")
		}

		// Tenant affinity: the whole query lands unpartitioned on the
		// tenant's home shard and must still equal the single-node run.
		tres, err := rt.Query(ctx, scanSQL, router.QueryOptions{Tenant: "conformance-tenant"})
		switch {
		case err != nil:
			rep.fail(c.Name, name, "scaleout-tenant", err.Error())
		case firstDiff(tres.Predictions, base.Predictions) >= 0:
			d := firstDiff(tres.Predictions, base.Predictions)
			rep.fail(c.Name, name, "scaleout-tenant",
				fmt.Sprintf("row %d: tenant-routed %d, single-node %d", d, at(tres.Predictions, d), at(base.Predictions, d)))
		default:
			rep.pass(c.Name, name, "scaleout-tenant")
		}

		// Pushed-down @where: each shard evaluates the filter over its own
		// partition, so the selection bitmap is split three ways and the
		// gather must stitch the surviving ordinals back into single-node
		// order.
		whereSQL := fmt.Sprintf(
			"EXEC sp_score_model @model = 'm', @data = 'scoring_input', @backend = '%s', @where = '%s < %g'",
			name, col, cut)
		wbase, err := single.ExecQuery(whereSQL)
		if err != nil {
			rep.skip(c.Name, name, "scaleout-where", err.Error())
		} else if wm, err := rt.Query(ctx, whereSQL, router.QueryOptions{}); err != nil {
			rep.fail(c.Name, name, "scaleout-where", err.Error())
		} else if detail := scatterMismatch(wm, wbase); detail != "" {
			rep.fail(c.Name, name, "scaleout-where", detail)
		} else {
			rep.pass(c.Name, name, "scaleout-where")
		}

		// Fused aggregate: per-shard class histograms summed at the gather
		// must equal the single-node GROUP BY table cell for cell.
		aggSQL := fmt.Sprintf(
			"SELECT prediction, COUNT(*) FROM PREDICT(@model = 'm', @data = 'scoring_input', @backend = '%s') GROUP BY prediction",
			name)
		abase, err := single.ExecQuery(aggSQL)
		if err != nil {
			rep.skip(c.Name, name, "scaleout-aggregate", err.Error())
		} else if am, err := rt.Query(ctx, aggSQL, router.QueryOptions{}); err != nil {
			rep.fail(c.Name, name, "scaleout-aggregate", err.Error())
		} else if detail := tableDiff(am.Table, abase.Table); detail != "" {
			rep.fail(c.Name, name, "scaleout-aggregate", detail)
		} else {
			rep.pass(c.Name, name, "scaleout-aggregate")
		}
	}
}

// scatterMismatch compares a merged scatter result against the single-node
// run of the same filtered statement, returning "" when bit-identical.
func scatterMismatch(m *router.Merged, base *pipeline.QueryResult) string {
	if m.Partial {
		return fmt.Sprintf("healthy shards produced a partial result (missing %v)", m.MissingPartitions)
	}
	if d := firstDiff(m.Predictions, base.Predictions); d >= 0 {
		return fmt.Sprintf("row %d: merged %d, single-node %d", d, at(m.Predictions, d), at(base.Predictions, d))
	}
	if len(m.ScoredRows) != len(base.ScoredRows) {
		return fmt.Sprintf("merged kept %d scored-row ordinals, single-node %d",
			len(m.ScoredRows), len(base.ScoredRows))
	}
	for i := range m.ScoredRows {
		if m.ScoredRows[i] != base.ScoredRows[i] {
			return fmt.Sprintf("scored-row %d: merged ordinal %d, single-node %d",
				i, m.ScoredRows[i], base.ScoredRows[i])
		}
	}
	if m.RowsScored != base.RowsScored || m.RowsScanned != base.RowsScanned {
		return fmt.Sprintf("merged scanned/scored %d/%d rows, single-node %d/%d",
			m.RowsScanned, m.RowsScored, base.RowsScanned, base.RowsScored)
	}
	return ""
}

// tableDiff compares two result tables cell for cell (both sides are
// integer-typed aggregate tables), returning "" when identical.
func tableDiff(got, want *db.Table) string {
	if got == nil || want == nil {
		return fmt.Sprintf("result table nil: merged=%v single-node=%v", got == nil, want == nil)
	}
	if len(got.Columns) != len(want.Columns) {
		return fmt.Sprintf("merged table has %d columns, single-node %d", len(got.Columns), len(want.Columns))
	}
	if got.NumRows() != want.NumRows() {
		return fmt.Sprintf("merged table has %d rows, single-node %d", got.NumRows(), want.NumRows())
	}
	for r := 0; r < got.NumRows(); r++ {
		for c := range got.Columns {
			if g, w := got.Cell(r, c).I, want.Cell(r, c).I; g != w {
				return fmt.Sprintf("table cell (%d,%d): merged %d, single-node %d", r, c, g, w)
			}
		}
	}
	return ""
}
