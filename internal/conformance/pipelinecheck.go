package conformance

import (
	"fmt"

	"accelscore/internal/backend"
	"accelscore/internal/db"
	"accelscore/internal/pipeline"
)

// pipelineChecks drives the full sp_score_model path for one case: dataset →
// table → snapshot → blob deserialization → engine, once cold and once warm,
// per engine. The cold query must miss the compiled-model cache and the warm
// repeat must hit it, and both must reproduce the oracle's predictions —
// proving the cache returns the same compiled model the cold path lowered,
// not just "a" model.
func (r *Runner) pipelineChecks(rep *Report, c Case, ref *Reference) {
	database := db.New()
	tbl, err := db.TableFromDataset("scoring_input", c.Data)
	if err != nil {
		rep.fail(c.Name, "", "pipeline-setup", err.Error())
		return
	}
	if err := database.CreateTable(tbl); err != nil {
		rep.fail(c.Name, "", "pipeline-setup", err.Error())
		return
	}
	if err := database.StoreModelBlob("m", c.Blob); err != nil {
		rep.fail(c.Name, "", "pipeline-setup", err.Error())
		return
	}
	reg := backend.NewRegistry()
	for _, eng := range r.Engines {
		if err := reg.Register(eng); err != nil {
			rep.fail(c.Name, eng.Name(), "pipeline-setup", err.Error())
			return
		}
	}

	for _, eng := range r.Engines {
		name := eng.Name()
		p := &pipeline.Pipeline{
			DB:       database,
			Runtime:  r.Runtime,
			Registry: reg,
			Cache:    pipeline.NewModelCache(4),
		}
		query := fmt.Sprintf("EXEC sp_score_model @model = 'm', @data = 'scoring_input', @backend = '%s'", name)

		cold, err := p.ExecQuery(query)
		if err != nil {
			rep.skip(c.Name, name, "pipeline-cold", err.Error())
			continue
		}
		switch {
		case cold.CacheHit:
			rep.fail(c.Name, name, "pipeline-cold", "first query reported a cache hit on an empty cache")
		case cold.Backend != name:
			rep.fail(c.Name, name, "pipeline-cold",
				fmt.Sprintf("@backend = %q resolved to %q", name, cold.Backend))
		case firstDiff(cold.Predictions, ref.Predictions) >= 0:
			d := firstDiff(cold.Predictions, ref.Predictions)
			rep.fail(c.Name, name, "pipeline-cold", mismatchDetail(d, cold.Predictions[d], ref))
		case tableMismatch(cold) != "":
			rep.fail(c.Name, name, "pipeline-cold", tableMismatch(cold))
		default:
			rep.pass(c.Name, name, "pipeline-cold")
		}

		warm, err := p.ExecQuery(query)
		switch {
		case err != nil:
			rep.fail(c.Name, name, "pipeline-warm",
				fmt.Sprintf("cold query scored but warm repeat errored: %v", err))
		case !warm.CacheHit:
			rep.fail(c.Name, name, "pipeline-warm",
				fmt.Sprintf("repeated query missed the compiled-model cache (%s)", warm.CacheStats))
		case firstDiff(warm.Predictions, ref.Predictions) >= 0:
			d := firstDiff(warm.Predictions, ref.Predictions)
			rep.fail(c.Name, name, "pipeline-warm", mismatchDetail(d, warm.Predictions[d], ref))
		default:
			rep.pass(c.Name, name, "pipeline-warm")
		}
	}
}

// tableMismatch checks the result table the pipeline returns to the DBMS
// against the in-memory predictions, returning "" when consistent.
func tableMismatch(res *pipeline.QueryResult) string {
	if res.Table == nil {
		return "result table is nil"
	}
	if res.Table.NumRows() != len(res.Predictions) {
		return fmt.Sprintf("result table has %d rows for %d predictions",
			res.Table.NumRows(), len(res.Predictions))
	}
	for i, p := range res.Predictions {
		if got := int(res.Table.Cell(i, 0).I); got != p {
			return fmt.Sprintf("result table row %d holds %d, prediction is %d", i, got, p)
		}
	}
	return ""
}
