package conformance

import (
	"testing"
)

// TestScaleoutChecksRunAndPass pins the scale-out leg of the matrix: on the
// iris pipeline case the router-over-three-shards topology must be
// bit-identical to single-node for every engine, and every engine must
// contribute a verdict for each of the four routed forms (scan, tenant,
// @where, aggregate) — pass, or skip for engines that reject the shape, never
// silence.
func TestScaleoutChecksRunAndPass(t *testing.T) {
	c, err := irisCase(60, 42)
	if err != nil {
		t.Fatalf("iris case: %v", err)
	}
	ref, err := Score(c.Forest, c.Data)
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	r := NewRunner()
	rep := &Report{Cases: 1}
	r.scaleoutChecks(rep, c, ref)
	if !rep.OK() {
		t.Fatalf("scale-out failures:\n%s", rep.Summary())
	}

	byCheck := map[string]map[string]bool{}
	for _, f := range rep.Findings {
		if byCheck[f.Check] == nil {
			byCheck[f.Check] = map[string]bool{}
		}
		byCheck[f.Check][f.Engine] = true
	}
	// Every engine reports a scan verdict; an engine whose scan PASSED (so it
	// accepts the shape) must also be held to the other routed forms.
	if got := len(byCheck["scaleout-scan"]); got != len(r.Engines) {
		t.Fatalf("scaleout-scan verdicts from %d engines, want %d", got, len(r.Engines))
	}
	for _, f := range rep.Findings {
		if f.Check != "scaleout-scan" || f.Status != Pass {
			continue
		}
		for _, check := range []string{"scaleout-tenant", "scaleout-where", "scaleout-aggregate"} {
			if !byCheck[check][f.Engine] {
				t.Fatalf("engine %s passed scaleout-scan but has no %s verdict", f.Engine, check)
			}
		}
	}
	// The multi-class iris case must pass on at least the CPU reference
	// engine — a sweep where everything skipped would prove nothing.
	var passes int
	for _, f := range rep.Findings {
		if f.Status == Pass {
			passes++
		}
	}
	if passes == 0 {
		t.Fatal("scale-out sweep produced no passing checks")
	}
}
