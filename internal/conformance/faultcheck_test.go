package conformance

import (
	"strings"
	"testing"
)

// TestFaultDeterminismCheck pins the chaos-reproducibility gate: two runs
// with the same injector seed and plan must fire the identical fault
// sequence and leave identical surviving predictions, and the check itself
// must actually exercise the plan.
func TestFaultDeterminismCheck(t *testing.T) {
	cases, err := Cases(true)
	if err != nil {
		t.Fatal(err)
	}
	var c *Case
	for i := range cases {
		if cases[i].Pipeline {
			c = &cases[i]
			break
		}
	}
	if c == nil {
		t.Fatal("no pipeline case in the short matrix")
	}

	rep := &Report{}
	NewRunner().faultDeterminismCheck(rep, *c)
	for _, f := range rep.Failures() {
		t.Errorf("fault-determinism failed: %s", f.Detail)
	}
	found := false
	for _, f := range rep.Findings {
		if f.Check == "fault-determinism" {
			found = true
			if !strings.Contains(f.Status.String(), "pass") {
				t.Errorf("fault-determinism status %v, want pass: %s", f.Status, f.Detail)
			}
		}
	}
	if !found {
		t.Fatalf("fault-determinism check did not report; findings: %+v", rep.Findings)
	}
}
