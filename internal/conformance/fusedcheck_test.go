package conformance

import "testing"

// The fusion metamorphic invariants must actually execute across the
// engine/case matrix — a silent universal skip would hollow the guarantee
// out. Skips are allowed only where the engine rejects the case shape
// entirely (e.g. multiclass on the binary-only RAPIDS simulator).
func TestFusedChecksCoverMatrix(t *testing.T) {
	cases, err := Cases(true)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := NewRunner().Run(cases)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]map[Status]int{}
	for _, f := range rep.Findings {
		if counts[f.Check] == nil {
			counts[f.Check] = map[Status]int{}
		}
		counts[f.Check][f.Status]++
		if f.Status == Fail && (f.Check == "fused-filter" || f.Check == "fused-aggregate" ||
			f.Check == "fused-pipeline-where" || f.Check == "fused-pipeline-aggregate") {
			t.Errorf("%s / %s / %s: %s", f.Case, f.Engine, f.Check, f.Detail)
		}
	}
	for _, check := range []string{"fused-filter", "fused-aggregate", "fused-pipeline-where", "fused-pipeline-aggregate"} {
		c := counts[check]
		if c[Pass] == 0 {
			t.Errorf("check %s never passed (%v)", check, c)
		}
		if c[Skip] > c[Pass] {
			t.Errorf("check %s mostly skipped (%v)", check, c)
		}
	}
}
