package faults

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Parse compiles a plan string into rules. A plan is a semicolon-separated
// list of rules, each of the form
//
//	<backend>:<boundary>:<kind>[:<trigger>]
//
// where backend is an engine name or "*"; boundary is invoke|transfer|
// compute|*; kind is busy|corrupt|crash|hang=<duration>; and the optional
// trigger is one of p=<0..1], every=<n>, once=<n> or first=<n> (default:
// fire on every match). Examples:
//
//	GPU_HB:compute:busy:p=0.2        20% of GPU_HB kernel launches are busy
//	GPU_HB:invoke:hang=5s:once=7     the 7th GPU_HB invocation stalls 5s
//	FPGA:transfer:corrupt:every=10   every 10th FPGA transfer corrupts
//	GPU_HB:invoke:crash:first=3      a crash burst that trips the breaker
func Parse(spec string) ([]Rule, error) {
	var rules []Rule
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		r, err := parseRule(part)
		if err != nil {
			return nil, fmt.Errorf("faults: rule %q: %w", part, err)
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("faults: empty plan %q", spec)
	}
	return rules, nil
}

// parseRule compiles one backend:boundary:kind[:trigger] clause.
func parseRule(s string) (Rule, error) {
	fields := strings.Split(s, ":")
	if len(fields) < 3 || len(fields) > 4 {
		return Rule{}, fmt.Errorf("want backend:boundary:kind[:trigger]")
	}
	r := Rule{Backend: strings.TrimSpace(fields[0]), Boundary: Boundary(strings.TrimSpace(fields[1]))}

	kind := strings.TrimSpace(fields[2])
	if rest, ok := strings.CutPrefix(kind, string(KindHang)+"="); ok {
		d, err := time.ParseDuration(rest)
		if err != nil {
			return Rule{}, fmt.Errorf("bad hang duration %q: %v", rest, err)
		}
		r.Kind, r.HangFor = KindHang, d
	} else {
		r.Kind = Kind(kind)
	}

	if len(fields) == 4 {
		trig := strings.TrimSpace(fields[3])
		key, val, ok := strings.Cut(trig, "=")
		if !ok {
			return Rule{}, fmt.Errorf("bad trigger %q (want p=, every=, once= or first=)", trig)
		}
		switch key {
		case "p":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || p <= 0 || p > 1 {
				return Rule{}, fmt.Errorf("bad probability %q (want 0 < p <= 1)", val)
			}
			r.P = p
		case "every":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return Rule{}, fmt.Errorf("bad every count %q (want >= 1)", val)
			}
			r.EveryN = n
		case "once":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return Rule{}, fmt.Errorf("bad once index %q (want >= 1)", val)
			}
			r.Once = n
		case "first":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return Rule{}, fmt.Errorf("bad first count %q (want >= 1)", val)
			}
			r.First = n
		default:
			return Rule{}, fmt.Errorf("unknown trigger %q", key)
		}
	}
	if err := r.validate(); err != nil {
		return Rule{}, err
	}
	return r, nil
}

// String renders the rule back into plan syntax.
func (r Rule) String() string {
	kind := string(r.Kind)
	if r.Kind == KindHang {
		kind = fmt.Sprintf("hang=%v", r.HangFor)
	}
	s := fmt.Sprintf("%s:%s:%s", r.Backend, r.Boundary, kind)
	switch {
	case r.P > 0:
		s += fmt.Sprintf(":p=%v", r.P)
	case r.EveryN > 0:
		s += fmt.Sprintf(":every=%d", r.EveryN)
	case r.Once > 0:
		s += fmt.Sprintf(":once=%d", r.Once)
	case r.First > 0:
		s += fmt.Sprintf(":first=%d", r.First)
	}
	return s
}
