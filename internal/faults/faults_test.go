package faults

import (
	"context"
	"errors"
	"testing"
	"time"
)

func mustInjector(t *testing.T, seed uint64, plan string) *Injector {
	t.Helper()
	rules, err := Parse(plan)
	if err != nil {
		t.Fatalf("Parse(%q): %v", plan, err)
	}
	in, err := NewInjector(seed, rules)
	if err != nil {
		t.Fatalf("NewInjector: %v", err)
	}
	return in
}

func TestParsePlan(t *testing.T) {
	rules, err := Parse("GPU_HB:compute:busy:p=0.2; FPGA:transfer:corrupt:every=10;*:invoke:hang=50ms:once=3;GPU_HB:invoke:crash:first=2")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 4 {
		t.Fatalf("got %d rules, want 4", len(rules))
	}
	if rules[0].P != 0.2 || rules[0].Kind != KindBusy || rules[0].Backend != "GPU_HB" {
		t.Errorf("rule 0 mismatch: %+v", rules[0])
	}
	if rules[1].EveryN != 10 || rules[1].Boundary != BoundaryTransfer {
		t.Errorf("rule 1 mismatch: %+v", rules[1])
	}
	if rules[2].Once != 3 || rules[2].HangFor != 50*time.Millisecond || rules[2].Backend != "*" {
		t.Errorf("rule 2 mismatch: %+v", rules[2])
	}
	if rules[3].First != 2 || rules[3].Kind != KindCrash {
		t.Errorf("rule 3 mismatch: %+v", rules[3])
	}
	// Round-trip through String.
	for _, r := range rules {
		back, err := Parse(r.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", r.String(), err)
		}
		if back[0] != r {
			t.Errorf("round trip %q: got %+v want %+v", r.String(), back[0], r)
		}
	}
}

func TestParseRejectsBadPlans(t *testing.T) {
	for _, spec := range []string{
		"",
		"GPU_HB:compute",                  // too few fields
		"GPU_HB:compute:explode",          // unknown kind
		"GPU_HB:warp:busy",                // unknown boundary
		"GPU_HB:compute:busy:p=1.5",       // probability out of range
		"GPU_HB:compute:busy:maybe=1",     // unknown trigger
		"GPU_HB:compute:hang=oops:once=1", // bad duration
		"GPU_HB:compute:busy:every=0",     // zero trigger
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted a bad plan", spec)
		}
	}
}

func TestTypedErrorsAndClassification(t *testing.T) {
	ctx := context.Background()
	cases := []struct {
		plan      string
		sentinel  error
		retryable bool
	}{
		{"X:invoke:busy", ErrDeviceBusy, true},
		{"X:transfer:corrupt", ErrTransferCorrupt, true},
		{"X:invoke:crash", ErrInvokeCrash, false},
	}
	for _, c := range cases {
		in := mustInjector(t, 1, c.plan)
		err := in.Check(ctx, "X", BoundaryInvoke)
		if c.sentinel == ErrTransferCorrupt {
			err = in.Check(ctx, "X", BoundaryTransfer)
		}
		if !errors.Is(err, c.sentinel) {
			t.Errorf("plan %q: got %v, want %v", c.plan, err, c.sentinel)
		}
		if Retryable(err) != c.retryable {
			t.Errorf("plan %q: Retryable=%v, want %v", c.plan, Retryable(err), c.retryable)
		}
		if !Injected(err) {
			t.Errorf("plan %q: Injected=false", c.plan)
		}
	}
	if Retryable(errors.New("unrelated")) || Injected(nil) {
		t.Error("misclassified non-fault errors")
	}
}

func TestEveryNthOnceAndFirst(t *testing.T) {
	ctx := context.Background()
	in := mustInjector(t, 1, "X:compute:busy:every=3")
	var fired []int
	for i := 1; i <= 9; i++ {
		if in.Check(ctx, "X", BoundaryCompute) != nil {
			fired = append(fired, i)
		}
	}
	if len(fired) != 3 || fired[0] != 3 || fired[1] != 6 || fired[2] != 9 {
		t.Errorf("every=3 fired at %v", fired)
	}

	in = mustInjector(t, 1, "X:compute:busy:once=4")
	fired = nil
	for i := 1; i <= 8; i++ {
		if in.Check(ctx, "X", BoundaryCompute) != nil {
			fired = append(fired, i)
		}
	}
	if len(fired) != 1 || fired[0] != 4 {
		t.Errorf("once=4 fired at %v", fired)
	}

	in = mustInjector(t, 1, "X:compute:crash:first=2")
	fired = nil
	for i := 1; i <= 6; i++ {
		if in.Check(ctx, "X", BoundaryCompute) != nil {
			fired = append(fired, i)
		}
	}
	if len(fired) != 2 || fired[0] != 1 || fired[1] != 2 {
		t.Errorf("first=2 fired at %v", fired)
	}
}

func TestMatchingScopesByBackendAndBoundary(t *testing.T) {
	ctx := context.Background()
	in := mustInjector(t, 1, "GPU_HB:transfer:corrupt")
	if err := in.Check(ctx, "FPGA", BoundaryTransfer); err != nil {
		t.Errorf("other backend faulted: %v", err)
	}
	if err := in.Check(ctx, "GPU_HB", BoundaryCompute); err != nil {
		t.Errorf("other boundary faulted: %v", err)
	}
	if err := in.Check(ctx, "GPU_HB", BoundaryTransfer); !errors.Is(err, ErrTransferCorrupt) {
		t.Errorf("matching op did not fault: %v", err)
	}
}

func TestProbabilityDeterministicPerSeed(t *testing.T) {
	ctx := context.Background()
	run := func(seed uint64) []Event {
		in := mustInjector(t, seed, "X:compute:busy:p=0.3")
		for i := 0; i < 200; i++ {
			_ = in.Check(ctx, "X", BoundaryCompute)
		}
		return in.Events()
	}
	a, b := run(7), run(7)
	if len(a) == 0 || len(a) == 200 {
		t.Fatalf("p=0.3 fired %d/200 times; expected a strict subset", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different fault counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at event %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	if c := run(8); len(c) == len(a) {
		same := true
		for i := range c {
			if c[i] != a[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced an identical fault sequence")
		}
	}
}

func TestHangIsADelayNotAnError(t *testing.T) {
	in := mustInjector(t, 1, "X:invoke:hang=20ms")
	start := time.Now()
	if err := in.Check(context.Background(), "X", BoundaryInvoke); err != nil {
		t.Fatalf("survivable hang returned error: %v", err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Errorf("hang only delayed %v, want >= 20ms", d)
	}
}

func TestHangInterruptedByContext(t *testing.T) {
	in := mustInjector(t, 1, "X:invoke:hang=10s")
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := in.Check(ctx, "X", BoundaryInvoke)
	if !errors.Is(err, ErrDeviceHang) {
		t.Fatalf("interrupted hang: got %v, want ErrDeviceHang", err)
	}
	if !Retryable(err) {
		t.Error("interrupted hang should be retryable")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("hang ignored the context for %v", d)
	}
}

func TestNilInjectorIsNoop(t *testing.T) {
	var in *Injector
	if err := in.Check(context.Background(), "X", BoundaryInvoke); err != nil {
		t.Fatal(err)
	}
	if in.Events() != nil || in.Fired() != 0 {
		t.Error("nil injector reported events")
	}
}

func TestOnFaultHookAndLog(t *testing.T) {
	in := mustInjector(t, 1, "X:compute:busy:every=2")
	var hooked []Event
	in.OnFault = func(ev Event) { hooked = append(hooked, ev) }
	ctx := context.Background()
	for i := 0; i < 6; i++ {
		_ = in.Check(ctx, "X", BoundaryCompute)
	}
	if in.Fired() != 3 || len(hooked) != 3 {
		t.Fatalf("fired %d, hooked %d; want 3 each", in.Fired(), len(hooked))
	}
	evs := in.Events()
	for i, ev := range evs {
		if ev.Seq != i+1 || ev.Backend != "X" || ev.Kind != KindBusy {
			t.Errorf("event %d malformed: %+v", i, ev)
		}
		if hooked[i] != ev {
			t.Errorf("hook/log mismatch at %d: %+v vs %+v", i, hooked[i], ev)
		}
	}
}
