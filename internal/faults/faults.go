// Package faults is a deterministic, seedable fault injector for the
// scoring path. The paper's offload boundaries — process invocation (O),
// PCIe/IPC data movement (L) and kernel execution (C) — are exactly where
// transient failures live in production: device-busy rejections, corrupted
// transfers, crashed external processes and outright hangs. The engine
// simulators consult an Injector at those boundaries, so every failure mode
// surfaces at the same place in the timeline where the paper charges its
// overheads.
//
// Faults are described by Rules compiled from a compact plan string
// (see Parse). Each rule carries its own split of the seed, so the decision
// sequence for a rule depends only on the seed and on how many operations
// matched that rule — running the same plan over the same serial operation
// stream reproduces the exact same fault sequence, which is what the
// conformance fault-determinism check pins.
//
// A hang is a real injected delay, not an error: Check sleeps, bounded by
// the operation's context, so per-attempt timeouts and per-query deadlines
// are genuinely exercised. All other kinds return typed errors that callers
// classify with Retryable.
package faults

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"accelscore/internal/xrand"
)

// Typed fault errors. Busy, corrupt and hang are transient conditions a
// caller may retry; a crashed invocation is fatal for the attempt and the
// caller should degrade (fall back) instead of retrying the same device.
var (
	// ErrDeviceBusy models a device rejecting new work (GPU OOM/queue-full,
	// FPGA CSR busy). Retryable.
	ErrDeviceBusy = errors.New("faults: device busy")
	// ErrTransferCorrupt models a failed/corrupted PCIe or IPC transfer.
	// Retryable.
	ErrTransferCorrupt = errors.New("faults: transfer corrupt")
	// ErrInvokeCrash models the external runtime or device process dying
	// mid-invocation. Fatal: retrying the same device is pointless.
	ErrInvokeCrash = errors.New("faults: invocation crashed")
	// ErrDeviceHang is returned when an injected hang outlives the
	// operation's context — the caller's deadline fired while the device was
	// unresponsive. Retryable (on a fresh attempt or another device).
	ErrDeviceHang = errors.New("faults: device hang")
)

// Retryable reports whether the error is a transient injected fault that a
// bounded-retry policy may re-attempt. Fatal faults (ErrInvokeCrash) and
// everything that is not an injected fault return false.
func Retryable(err error) bool {
	return errors.Is(err, ErrDeviceBusy) ||
		errors.Is(err, ErrTransferCorrupt) ||
		errors.Is(err, ErrDeviceHang)
}

// Injected reports whether the error originated from a fault injector.
func Injected(err error) bool {
	return Retryable(err) || errors.Is(err, ErrInvokeCrash)
}

// Boundary identifies where in an engine's simulated execution an operation
// sits, following the Fig. 6 O/L/C taxonomy.
type Boundary string

const (
	// BoundaryInvoke is the offload-overhead boundary O: process/session/
	// device invocation.
	BoundaryInvoke Boundary = "invoke"
	// BoundaryTransfer is the data-movement boundary L: PCIe or IPC
	// transfers.
	BoundaryTransfer Boundary = "transfer"
	// BoundaryCompute is the kernel-execution boundary C.
	BoundaryCompute Boundary = "compute"
)

// Kind enumerates the injectable failure modes.
type Kind string

const (
	KindBusy    Kind = "busy"
	KindCorrupt Kind = "corrupt"
	KindCrash   Kind = "crash"
	KindHang    Kind = "hang"
)

// Rule matches a class of operations and decides when to fire. Exactly one
// of the trigger fields (P, EveryN, Once, First) should be set; all unset
// means fire on every match.
type Rule struct {
	// Backend matches the engine name exactly, or "*" for every engine.
	Backend string
	// Boundary matches one O/L/C boundary, or "*" for all three.
	Boundary Boundary
	// Kind selects the failure mode.
	Kind Kind
	// HangFor is the injected delay for KindHang (required for hangs).
	HangFor time.Duration
	// P fires with this probability per matching operation (0 < P <= 1).
	P float64
	// EveryN fires on every Nth matching operation.
	EveryN int
	// Once fires exactly once, on the Nth matching operation.
	Once int
	// First fires on each of the first N matching operations (a burst —
	// the way to trip a consecutive-failure circuit breaker on purpose).
	First int
}

// matches reports whether the rule applies to the operation.
func (r *Rule) matches(backendName string, b Boundary) bool {
	if r.Backend != "*" && r.Backend != backendName {
		return false
	}
	return r.Boundary == "*" || r.Boundary == b
}

// validate rejects rules the injector cannot execute.
func (r *Rule) validate() error {
	switch r.Kind {
	case KindBusy, KindCorrupt, KindCrash:
	case KindHang:
		if r.HangFor <= 0 {
			return fmt.Errorf("faults: hang rule needs a positive duration")
		}
	default:
		return fmt.Errorf("faults: unknown fault kind %q", r.Kind)
	}
	set := 0
	if r.P != 0 {
		if r.P < 0 || r.P > 1 {
			return fmt.Errorf("faults: probability %v outside (0, 1]", r.P)
		}
		set++
	}
	if r.EveryN != 0 {
		if r.EveryN < 1 {
			return fmt.Errorf("faults: every=%d must be >= 1", r.EveryN)
		}
		set++
	}
	if r.Once != 0 {
		if r.Once < 1 {
			return fmt.Errorf("faults: once=%d must be >= 1", r.Once)
		}
		set++
	}
	if r.First != 0 {
		if r.First < 1 {
			return fmt.Errorf("faults: first=%d must be >= 1", r.First)
		}
		set++
	}
	if set > 1 {
		return fmt.Errorf("faults: rule mixes triggers (choose one of p/every/once/first)")
	}
	switch r.Boundary {
	case BoundaryInvoke, BoundaryTransfer, BoundaryCompute, "*":
	default:
		return fmt.Errorf("faults: unknown boundary %q", r.Boundary)
	}
	if r.Backend == "" {
		return fmt.Errorf("faults: rule needs a backend name (or *)")
	}
	return nil
}

// Event records one fired fault for the injector's log and OnFault hook.
type Event struct {
	// Seq numbers fired faults in injector order, starting at 1.
	Seq int
	// Backend and Boundary locate the operation the fault hit.
	Backend  string
	Boundary Boundary
	// Kind is the injected failure mode.
	Kind Kind
	// Rule is the index of the firing rule in the injector's plan.
	Rule int
}

// ruleState pairs a rule with its per-rule counter and RNG stream.
type ruleState struct {
	Rule
	rng   *xrand.Rand
	count int // matching operations seen
	fired int // faults fired
}

// Injector decides, deterministically, which operations fail. It is safe
// for concurrent use; under a serial operation stream the decision sequence
// is a pure function of (seed, plan, stream).
type Injector struct {
	// OnFault, when set before the injector is used, observes every fired
	// fault (the serving layer wires it to a metrics counter). Called
	// without internal locks held.
	OnFault func(Event)

	mu    sync.Mutex
	rules []*ruleState
	log   []Event
	seq   int
}

// maxLog bounds the retained event log; chaos runs inject thousands of
// faults and only the sequence prefix matters for determinism checks.
const maxLog = 4096

// NewInjector builds an injector over the plan. Each rule receives an
// independent RNG stream split from seed, so adding a rule never perturbs
// another rule's decisions.
func NewInjector(seed uint64, rules []Rule) (*Injector, error) {
	root := xrand.New(seed)
	in := &Injector{rules: make([]*ruleState, 0, len(rules))}
	for i := range rules {
		r := rules[i]
		if err := r.validate(); err != nil {
			return nil, fmt.Errorf("rule %d: %w", i, err)
		}
		in.rules = append(in.rules, &ruleState{Rule: r, rng: root.Split()})
	}
	return in, nil
}

// Check is the boundary hook engines call: it decides whether this
// operation faults. Error kinds return a typed, wrapped error immediately.
// A hang sleeps for the rule's duration bounded by ctx — if ctx expires
// first, Check returns ErrDeviceHang wrapped with the context error;
// otherwise the hang was survived and Check returns nil (the delay is the
// fault). A nil injector never faults.
func (in *Injector) Check(ctx context.Context, backendName string, b Boundary) error {
	if in == nil {
		return nil
	}
	var (
		fire *ruleState
		ev   Event
	)
	in.mu.Lock()
	for i, rs := range in.rules {
		if !rs.matches(backendName, b) {
			continue
		}
		rs.count++
		if !rs.decideLocked() {
			continue
		}
		rs.fired++
		in.seq++
		ev = Event{Seq: in.seq, Backend: backendName, Boundary: b, Kind: rs.Kind, Rule: i}
		if len(in.log) < maxLog {
			in.log = append(in.log, ev)
		}
		fire = rs
		break // one fault per boundary crossing is enough
	}
	in.mu.Unlock()
	if fire == nil {
		return nil
	}
	if in.OnFault != nil {
		in.OnFault(ev)
	}
	switch fire.Kind {
	case KindBusy:
		return fmt.Errorf("%s at %s/%s: %w", KindBusy, backendName, b, ErrDeviceBusy)
	case KindCorrupt:
		return fmt.Errorf("%s at %s/%s: %w", KindCorrupt, backendName, b, ErrTransferCorrupt)
	case KindCrash:
		return fmt.Errorf("%s at %s/%s: %w", KindCrash, backendName, b, ErrInvokeCrash)
	case KindHang:
		t := time.NewTimer(fire.HangFor)
		defer t.Stop()
		select {
		case <-t.C:
			return nil // survived the stall; only the delay was injected
		case <-ctx.Done():
			return fmt.Errorf("hang at %s/%s interrupted (%v): %w",
				backendName, b, ctx.Err(), ErrDeviceHang)
		}
	}
	return nil
}

// decideLocked applies the rule's trigger to its updated counter.
func (rs *ruleState) decideLocked() bool {
	switch {
	case rs.P > 0:
		return rs.rng.Float64() < rs.P
	case rs.EveryN > 0:
		return rs.count%rs.EveryN == 0
	case rs.Once > 0:
		return rs.count == rs.Once
	case rs.First > 0:
		return rs.count <= rs.First
	default:
		return true
	}
}

// Events returns a copy of the fired-fault log in firing order.
func (in *Injector) Events() []Event {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Event(nil), in.log...)
}

// Fired returns the total number of faults fired so far.
func (in *Injector) Fired() int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.seq
}
