package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"accelscore/internal/sim"
)

func sampleTimeline() *sim.Timeline {
	var tl sim.Timeline
	tl.Add("Python invocation", sim.KindPipeline, 5*time.Millisecond)
	tl.Add("data transfer", sim.KindTransfer, 2*time.Millisecond)
	tl.Add("model scoring", sim.KindCompute, 7*time.Millisecond)
	tl.Add("post-processing", sim.KindPipeline, 1*time.Millisecond)
	return &tl
}

func TestTracerIDsAndRing(t *testing.T) {
	tr := NewTracer(3)
	var ids []string
	for i := 0; i < 5; i++ {
		ids = append(ids, tr.Start("q").ID())
	}
	if ids[0] == "" || ids[0] == ids[1] {
		t.Fatalf("ids not unique: %v", ids)
	}
	if tr.Len() != 3 {
		t.Fatalf("ring length = %d, want 3", tr.Len())
	}
	if _, ok := tr.Get(ids[0]); ok {
		t.Fatal("evicted trace still retrievable")
	}
	if _, ok := tr.Get(ids[4]); !ok {
		t.Fatal("latest trace not retrievable")
	}
	recent := tr.Recent()
	if len(recent) != 3 || recent[0].ID() != ids[4] || recent[2].ID() != ids[2] {
		t.Fatalf("Recent not newest-first: %v %v %v", recent[0].ID(), recent[1].ID(), recent[2].ID())
	}
}

func TestNilTraceIsNoOp(t *testing.T) {
	var tr *Trace
	tr.StartSpan("x")()
	tr.SetAttr("k", "v")
	tr.AddTimeline("t", sampleTimeline())
	tr.Finish()
	if tr.ID() != "" || tr.Name() != "" {
		t.Fatal("nil trace has identity")
	}
	if err := tr.WriteChromeTrace(&bytes.Buffer{}); err == nil {
		t.Fatal("nil trace export did not error")
	}
	var tc *Tracer
	if tc.Start("x") != nil {
		t.Fatal("nil tracer started a trace")
	}
	if tc.Len() != 0 || tc.Recent() != nil {
		t.Fatal("nil tracer has contents")
	}
}

// chromeFile mirrors the trace-event JSON envelope for unmarshalling.
type chromeFile struct {
	TraceEvents []struct {
		Name string            `json:"name"`
		Cat  string            `json:"cat"`
		Ph   string            `json:"ph"`
		TS   float64           `json:"ts"`
		Dur  float64           `json:"dur"`
		PID  int               `json:"pid"`
		TID  int               `json:"tid"`
		Args map[string]string `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

// TestChromeTraceRoundTrip verifies the export is valid Chrome trace-event
// JSON and that the simulated track's span structure matches the recorded
// sim.Timeline stage for stage.
func TestChromeTraceRoundTrip(t *testing.T) {
	tc := NewTracer(8)
	tr := tc.Start("sp_score_model")
	end := tr.StartSpan("model scoring")
	end()
	tr.SetAttr("backend", "FPGA")
	tl := sampleTimeline()
	tr.AddTimeline("simulated end-to-end (Fig. 11)", tl)
	tr.Finish()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var file chromeFile
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(file.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}

	// Find the simulated track's tid via its thread_name metadata event.
	simTID := -1
	for _, ev := range file.TraceEvents {
		if ev.Ph == "M" && ev.Name == "thread_name" && ev.Args["name"] == "simulated end-to-end (Fig. 11)" {
			simTID = ev.TID
		}
	}
	if simTID < 0 {
		t.Fatal("simulated track has no thread_name metadata")
	}

	// Collect its X events in order; they must match the timeline's spans in
	// name, kind category, duration, and sequential layout.
	spans := tl.Spans()
	var cursor float64
	idx := 0
	for _, ev := range file.TraceEvents {
		if ev.TID != simTID || ev.Ph != "X" {
			continue
		}
		if idx >= len(spans) {
			t.Fatalf("more sim events than timeline spans (%d)", len(spans))
		}
		want := spans[idx]
		if ev.Name != want.Name {
			t.Errorf("span %d name = %q, want %q", idx, ev.Name, want.Name)
		}
		if ev.Cat != want.Kind.String() {
			t.Errorf("span %d cat = %q, want %q", idx, ev.Cat, want.Kind.String())
		}
		if wantDur := float64(want.Duration.Nanoseconds()) / 1e3; ev.Dur != wantDur {
			t.Errorf("span %d dur = %v, want %v", idx, ev.Dur, wantDur)
		}
		if ev.TS != cursor {
			t.Errorf("span %d ts = %v, want %v (sequential layout)", idx, ev.TS, cursor)
		}
		cursor += float64(want.Duration.Nanoseconds()) / 1e3
		idx++
	}
	if idx != len(spans) {
		t.Fatalf("simulated track has %d events, timeline has %d spans", idx, len(spans))
	}

	// The wall-clock track carries the measured span and the attrs instant.
	foundWall, foundAttrs := false, false
	for _, ev := range file.TraceEvents {
		if ev.TID == 1 && ev.Ph == "X" && ev.Name == "model scoring" && ev.Cat == "wall" {
			foundWall = true
		}
		if ev.Ph == "i" && ev.Args["backend"] == "FPGA" {
			foundAttrs = true
		}
	}
	if !foundWall {
		t.Error("wall-clock span missing")
	}
	if !foundAttrs {
		t.Error("attrs instant event missing")
	}
}

// TestTracerCombinedExport checks the multi-trace export keeps traces apart
// by pid and remains valid JSON.
func TestTracerCombinedExport(t *testing.T) {
	tc := NewTracer(8)
	for i := 0; i < 3; i++ {
		tr := tc.Start(fmt.Sprintf("query-%d", i))
		tr.AddTimeline("sim", sampleTimeline())
		tr.Finish()
	}
	var buf bytes.Buffer
	if err := tc.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var file chromeFile
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("combined export invalid: %v", err)
	}
	pids := map[int]bool{}
	for _, ev := range file.TraceEvents {
		pids[ev.PID] = true
	}
	if len(pids) != 3 {
		t.Fatalf("combined export has %d pids, want 3", len(pids))
	}
}

func TestSnapshot(t *testing.T) {
	tc := NewTracer(2)
	tr := tc.Start("q")
	end := tr.StartSpan("stage")
	time.Sleep(time.Millisecond)
	end()
	tr.AddTimeline("sim", sampleTimeline())
	tr.Finish()
	snap := tr.Snapshot()
	if !snap.Done || snap.Wall <= 0 {
		t.Fatalf("snapshot not finished: %+v", snap)
	}
	if len(snap.WallSpans) != 1 || snap.WallSpans[0].Duration <= 0 {
		t.Fatalf("wall spans = %+v", snap.WallSpans)
	}
	if len(snap.Tracks) != 1 || snap.Tracks[0].Total != 15*time.Millisecond {
		t.Fatalf("tracks = %+v", snap.Tracks)
	}
}
