package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing float64, safe for concurrent use.
type Counter struct {
	bits atomic.Uint64 // float64 bits
}

// Add increases the counter. Negative deltas panic: a decreasing counter is
// a programming error that would corrupt rate() queries downstream.
func (c *Counter) Add(v float64) {
	if v < 0 {
		panic("obs: counter cannot decrease")
	}
	addFloat(&c.bits, v)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a float64 that can go up and down, safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by v (negative allowed).
func (g *Gauge) Add(v float64) { addFloat(&g.bits, v) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// addFloat atomically adds v to a float64 stored as uint64 bits.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Histogram counts observations into fixed buckets. Buckets are defined by
// ascending upper bounds; an implicit +Inf bucket catches the rest.
// Exposition follows the Prometheus convention: bucket counts are cumulative
// ("observations less than or equal to the bound"), plus a running sum and a
// total count.
//
// Each bucket additionally retains the LATEST exemplar recorded into it via
// ObserveExemplar — an (observed value, trace ID, timestamp) triple — so a
// scrape showing a populated P99 bucket links straight to an offending
// trace at /debug/trace/<id>. Exemplars are rendered in the OpenMetrics
// suffix syntax on _bucket lines.
type Histogram struct {
	upper     []float64
	counts    []atomic.Uint64 // len(upper)+1; last is +Inf
	exemplars []atomic.Pointer[Exemplar]
	sum       atomic.Uint64 // float64 bits
	count     atomic.Uint64
}

// Exemplar ties one histogram observation back to its trace.
type Exemplar struct {
	// Value is the observed value the exemplar represents.
	Value float64
	// TraceID identifies the trace at /debug/trace/<id>.
	TraceID string
	// Time is when the observation happened.
	Time time.Time
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.upper, v) // first bound >= v
	h.counts[i].Add(1)
	addFloat(&h.sum, v)
	h.count.Add(1)
}

// ObserveExemplar records one value and retains (value, traceID, now) as
// the landing bucket's exemplar, replacing the previous one — latest wins,
// so the slowest recent query is always one click away from its bucket.
// An empty traceID degrades to a plain Observe.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	i := sort.SearchFloat64s(h.upper, v)
	h.counts[i].Add(1)
	addFloat(&h.sum, v)
	h.count.Add(1)
	if traceID != "" {
		h.exemplars[i].Store(&Exemplar{Value: v, TraceID: traceID, Time: time.Now()})
	}
}

// Exemplars returns each bucket's retained exemplar (nil where none was
// recorded), one entry per bound plus the +Inf bucket.
func (h *Histogram) Exemplars() []*Exemplar {
	out := make([]*Exemplar, len(h.exemplars))
	for i := range h.exemplars {
		out[i] = h.exemplars[i].Load()
	}
	return out
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Buckets returns the configured upper bounds (without +Inf).
func (h *Histogram) Buckets() []float64 {
	return append([]float64(nil), h.upper...)
}

// CumulativeCounts returns one cumulative count per bound plus the +Inf
// bucket (which equals Count up to concurrent-update skew).
func (h *Histogram) CumulativeCounts() []uint64 {
	out := make([]uint64, len(h.counts))
	var run uint64
	for i := range h.counts {
		run += h.counts[i].Load()
		out[i] = run
	}
	return out
}

// DefBuckets are latency buckets in seconds spanning the six orders of
// magnitude the paper's components cover (sub-µs FPGA signals to multi-second
// end-to-end queries).
var DefBuckets = []float64{
	1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1, 5, 10,
}

// ExpBuckets returns n bounds starting at start, each factor times the last.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

type metricType int

const (
	counterType metricType = iota
	gaugeType
	histogramType
)

func (t metricType) String() string {
	switch t {
	case counterType:
		return "counter"
	case gaugeType:
		return "gauge"
	case histogramType:
		return "histogram"
	default:
		return "untyped"
	}
}

// child is one labeled instrument inside a family.
type child struct {
	labelStr string // canonical rendering: k1="v1",k2="v2" (sorted, escaped)
	counter  *Counter
	gauge    *Gauge
	hist     *Histogram
}

// family groups all label combinations of one metric name.
type family struct {
	name    string
	help    string
	typ     metricType
	buckets []float64
	metrics map[string]*child
}

// Registry is a concurrency-safe collection of metric families. Instruments
// are created on first use and cached: calling Counter with the same name
// and labels returns the same *Counter, so hot paths may call it per event.
//
// Name or label misuse (invalid characters, odd label pairs, re-registering
// a name under a different type or bucket layout) panics: these are
// programming errors, caught by the first scrape in any test.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter returns the counter for name with the given label pairs
// (key1, value1, key2, value2, ...), creating family and instrument on first
// use. help is recorded on family creation and ignored afterwards.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	ch := r.child(name, help, counterType, nil, labels)
	return ch.counter
}

// Gauge returns the gauge for name with the given label pairs.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	ch := r.child(name, help, gaugeType, nil, labels)
	return ch.gauge
}

// Histogram returns the histogram for name with the given label pairs.
// buckets (ascending upper bounds, seconds for latency metrics) are fixed by
// the first call for the name; nil means DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	ch := r.child(name, help, histogramType, buckets, labels)
	return ch.hist
}

func (r *Registry) child(name, help string, typ metricType, buckets []float64, labels []string) *child {
	if !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	labelStr := canonicalLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	fam, ok := r.families[name]
	if !ok {
		fam = &family{name: name, help: help, typ: typ, metrics: make(map[string]*child)}
		if typ == histogramType {
			if buckets == nil {
				buckets = DefBuckets
			}
			if !sort.Float64sAreSorted(buckets) || len(buckets) == 0 {
				panic(fmt.Sprintf("obs: histogram %q needs ascending non-empty buckets", name))
			}
			fam.buckets = append([]float64(nil), buckets...)
		}
		r.families[name] = fam
	}
	if fam.typ != typ {
		panic(fmt.Sprintf("obs: metric %q already registered as %s, requested %s", name, fam.typ, typ))
	}
	if typ == histogramType && buckets != nil && !equalFloats(fam.buckets, buckets) {
		panic(fmt.Sprintf("obs: histogram %q re-requested with different buckets", name))
	}
	ch, ok := fam.metrics[labelStr]
	if !ok {
		ch = &child{labelStr: labelStr}
		switch typ {
		case counterType:
			ch.counter = &Counter{}
		case gaugeType:
			ch.gauge = &Gauge{}
		case histogramType:
			ch.hist = &Histogram{
				upper:     fam.buckets,
				counts:    make([]atomic.Uint64, len(fam.buckets)+1),
				exemplars: make([]atomic.Pointer[Exemplar], len(fam.buckets)+1),
			}
		}
		fam.metrics[labelStr] = ch
	}
	return ch
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): families sorted by name, children sorted by label
// string, histograms expanded to cumulative _bucket/_sum/_count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	// Snapshot every family's children while holding the lock: child()
	// inserts into fam.metrics concurrently, so the maps must not be
	// iterated after release. The *child instruments themselves are
	// immutable after creation (their values are atomics), so rendering
	// from the copied slices outside the lock is safe.
	type famSnap struct {
		fam      *family
		children []*child
	}
	r.mu.Lock()
	fams := make([]famSnap, 0, len(r.families))
	for _, f := range r.families {
		children := make([]*child, 0, len(f.metrics))
		for _, c := range f.metrics {
			children = append(children, c)
		}
		fams = append(fams, famSnap{fam: f, children: children})
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].fam.name < fams[j].fam.name })

	var sb strings.Builder
	for _, snap := range fams {
		fam, children := snap.fam, snap.children
		if fam.help != "" {
			fmt.Fprintf(&sb, "# HELP %s %s\n", fam.name, escapeHelp(fam.help))
		}
		fmt.Fprintf(&sb, "# TYPE %s %s\n", fam.name, fam.typ)
		sort.Slice(children, func(i, j int) bool { return children[i].labelStr < children[j].labelStr })
		for _, c := range children {
			switch fam.typ {
			case counterType:
				fmt.Fprintf(&sb, "%s%s %s\n", fam.name, braced(c.labelStr), formatFloat(c.counter.Value()))
			case gaugeType:
				fmt.Fprintf(&sb, "%s%s %s\n", fam.name, braced(c.labelStr), formatFloat(c.gauge.Value()))
			case histogramType:
				cum := c.hist.CumulativeCounts()
				exs := c.hist.Exemplars()
				for i, bound := range fam.buckets {
					fmt.Fprintf(&sb, "%s_bucket%s %d%s\n", fam.name,
						braced(joinLabels(c.labelStr, `le="`+formatFloat(bound)+`"`)), cum[i],
						exemplarSuffix(exs[i]))
				}
				fmt.Fprintf(&sb, "%s_bucket%s %d%s\n", fam.name,
					braced(joinLabels(c.labelStr, `le="+Inf"`)), cum[len(cum)-1],
					exemplarSuffix(exs[len(exs)-1]))
				fmt.Fprintf(&sb, "%s_sum%s %s\n", fam.name, braced(c.labelStr), formatFloat(c.hist.Sum()))
				fmt.Fprintf(&sb, "%s_count%s %d\n", fam.name, braced(c.labelStr), cum[len(cum)-1])
			}
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// canonicalLabels validates pairs and renders them sorted by key.
func canonicalLabels(pairs []string) string {
	if len(pairs) == 0 {
		return ""
	}
	if len(pairs)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label pair count %d", len(pairs)))
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		if !validLabelName(pairs[i]) {
			panic(fmt.Sprintf("obs: invalid label name %q", pairs[i]))
		}
		kvs = append(kvs, kv{pairs[i], pairs[i+1]})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	var sb strings.Builder
	for i, p := range kvs {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(p.k)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabelValue(p.v))
		sb.WriteString(`"`)
	}
	return sb.String()
}

func braced(labelStr string) string {
	if labelStr == "" {
		return ""
	}
	return "{" + labelStr + "}"
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// exemplarSuffix renders a bucket's exemplar in the OpenMetrics exemplar
// syntax (` # {trace_id="q-000042"} 0.52 1718000000.123`), or "" when the
// bucket has none. The repo's own exposition lint (LintPrometheus) parses
// and validates this suffix; plain 0.0.4 scrapers that stop at the sample
// value must strip it.
func exemplarSuffix(e *Exemplar) string {
	if e == nil {
		return ""
	}
	return fmt.Sprintf(" # {trace_id=\"%s\"} %s %.3f",
		escapeLabelValue(e.TraceID), formatFloat(e.Value),
		float64(e.Time.UnixMilli())/1e3)
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_' || r == ':'
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || s == "le" { // le is reserved for histogram buckets
		return false
	}
	for i, r := range s {
		alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_'
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
