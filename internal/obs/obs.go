// Package obs is the production observability layer of the scoring stack: a
// concurrency-safe metrics registry (counters, gauges, fixed-bucket
// histograms) with Prometheus text-format exposition, and a per-query tracer
// that assigns trace IDs, records wall-clock spans alongside the simulated
// sim.Timeline spans, and exports Chrome trace-event JSON for
// chrome://tracing / Perfetto.
//
// The paper's argument rests on seeing where time goes — the O/L/C
// decomposition of Fig. 6 and the end-to-end stage breakdown of Fig. 11.
// This package turns those per-query return values into continuously
// aggregated, scrape-able telemetry: every query, cache event and backend
// decision becomes a counted, histogrammed, traceable event. The pipeline
// publishes into an Observer when one is attached and stays zero-overhead
// when none is (all entry points are nil-safe).
//
// Everything here is standard library only.
package obs

// Observer bundles the two halves of the observability layer: the metrics
// registry served at /metrics and the tracer behind /debug/queries and
// /debug/trace/<id>. A nil Observer (or nil halves) disables publication.
type Observer struct {
	// Registry aggregates counters, gauges and histograms.
	Registry *Registry
	// Tracer records one trace per query in a bounded ring.
	Tracer *Tracer
	// Attribution enables per-stage resource measurement (thread CPU time,
	// heap allocations, transfer bytes) on the scoring path. Off by
	// default: the samples cost two runtime/metrics reads and a getrusage
	// per stage, which benchmark-grade paths may not want.
	Attribution bool
}

// NewObserver returns an observer with a fresh registry and a
// default-capacity tracer.
func NewObserver() *Observer {
	return &Observer{Registry: NewRegistry(), Tracer: NewTracer(0)}
}

// StartTrace begins a trace on the observer's tracer. It is safe to call on
// a nil observer or one without a tracer; the returned nil *Trace is itself
// a no-op recorder.
func (o *Observer) StartTrace(name string) *Trace {
	if o == nil || o.Tracer == nil {
		return nil
	}
	return o.Tracer.Start(name)
}

// Metrics returns the observer's registry, or nil when absent — the guard
// call sites use before publishing.
func (o *Observer) Metrics() *Registry {
	if o == nil {
		return nil
	}
	return o.Registry
}

// AttributionOn reports whether per-stage resource attribution is enabled.
// Nil-safe, like every observer entry point.
func (o *Observer) AttributionOn() bool {
	return o != nil && o.Attribution
}
