package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestStartSpanOnTracks(t *testing.T) {
	tracer := NewTracer(4)
	tr := tracer.Start("scatter")
	tr.AddTimeline("sim", sampleTimeline())
	done0 := tr.StartSpanOn("shard 0", "sub-query")
	done1 := tr.StartSpanOn("shard 1", "sub-query")
	done1()
	done0()
	tr.StartSpan("merge")()
	tr.Finish()

	snap := tr.Snapshot()
	tracks := make(map[string]int)
	for _, w := range snap.WallSpans {
		tracks[w.Track]++
	}
	if tracks["shard 0"] != 1 || tracks["shard 1"] != 1 || tracks[""] != 1 {
		t.Fatalf("track spans = %v", tracks)
	}

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var ct struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			TID  int               `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &ct); err != nil {
		t.Fatal(err)
	}
	tidByTrack := make(map[string]int)
	for _, ev := range ct.TraceEvents {
		if ev.Name == "thread_name" && ev.Ph == "M" {
			tidByTrack[ev.Args["name"]] = ev.TID
		}
	}
	for _, name := range []string{"wall clock", "sim", "shard 0", "shard 1"} {
		if _, ok := tidByTrack[name]; !ok {
			t.Fatalf("no lane %q in export (lanes: %v)", name, tidByTrack)
		}
	}
	if tidByTrack["shard 0"] == tidByTrack["shard 1"] ||
		tidByTrack["shard 0"] <= tidByTrack["sim"] {
		t.Fatalf("shard lanes misplaced: %v", tidByTrack)
	}
	// The per-shard sub-query spans must land on their own lanes.
	subTIDs := make(map[int]int)
	for _, ev := range ct.TraceEvents {
		if ev.Name == "sub-query" && ev.Ph == "X" {
			subTIDs[ev.TID]++
		}
	}
	if len(subTIDs) != 2 {
		t.Fatalf("sub-query spans on %d lanes, want 2", len(subTIDs))
	}
}

func TestRouterMetrics(t *testing.T) {
	reg := NewRegistry()
	m := NewRouterMetrics(reg)
	m.ObserveQuery("ok", 4, 3*time.Millisecond)
	m.ObserveQuery("partial", 4, 40*time.Millisecond)
	m.ObserveShard(2, 10*time.Millisecond, 0)
	m.ObserveShard(0, 25*time.Millisecond, 1)
	m.SetBreakerState(0, 2)
	m.NoteWarm("hit")
	m.NoteHedge("win")
	m.NoteHedge("win")
	m.NoteHedge("denied")
	m.SetShardState(1, 2)
	m.NoteAdmissionShed("batch")
	m.NoteAdmissionShed("") // empty class normalizes to "default"

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`accelscore_router_queries_total{outcome="ok"} 1`,
		`accelscore_router_queries_total{outcome="partial"} 1`,
		`accelscore_router_scatter_width_count 2`,
		`accelscore_router_straggler_gap_seconds_count 2`,
		`accelscore_router_shard_latency_seconds_count{shard="0"} 1`,
		`accelscore_router_reroutes_total{shard="0"} 1`,
		`accelscore_router_shard_breaker_state{shard="0"} 2`,
		`accelscore_router_warm_total{status="hit"} 1`,
		`accelscore_router_hedges_total{outcome="win"} 2`,
		`accelscore_router_hedges_total{outcome="denied"} 1`,
		`accelscore_router_shard_state{shard="1"} 2`,
		`accelscore_router_admission_shed_total{class="batch"} 1`,
		`accelscore_router_admission_shed_total{class="default"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in exposition:\n%s", want, out)
		}
	}
	if strings.Contains(out, `accelscore_router_reroutes_total{shard="2"}`) {
		t.Fatal("zero-reroute shard got a reroute counter")
	}
	if probs := LintPrometheus(strings.NewReader(out)); len(probs) > 0 {
		t.Fatalf("router exposition fails the linter: %v", probs)
	}

	// Nil receiver and nil registry are no-ops.
	var nilM *RouterMetrics
	nilM.ObserveQuery("ok", 1, 0)
	nilM.ObserveShard(0, 0, 0)
	nilM.SetBreakerState(0, 0)
	nilM.NoteWarm("hit")
	nilM.NoteHedge("win")
	nilM.SetShardState(0, 0)
	nilM.NoteAdmissionShed("batch")
	if NewRouterMetrics(nil) != nil {
		t.Fatal("NewRouterMetrics(nil) not nil")
	}
}
