package obs

import (
	"math"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// expoLine matches a Prometheus text-format sample line:
// name{labels} value  (labels optional).
var expoLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (-?[0-9.eE+-]+|\+Inf|NaN)$`)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("acc_events_total", "events", "kind", "a")
	c.Inc()
	c.Add(2)
	if got := c.Value(); got != 3 {
		t.Fatalf("counter = %v, want 3", got)
	}
	if again := r.Counter("acc_events_total", "", "kind", "a"); again != c {
		t.Fatal("same name+labels did not return the same counter")
	}
	if other := r.Counter("acc_events_total", "", "kind", "b"); other == c {
		t.Fatal("different labels returned the same counter")
	}
	g := r.Gauge("acc_depth", "depth")
	g.Set(4)
	g.Add(-1.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", got)
	}
}

func TestLabelOrderIsCanonical(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("acc_x_total", "", "b", "2", "a", "1")
	b := r.Counter("acc_x_total", "", "a", "1", "b", "2")
	if a != b {
		t.Fatal("label order changed instrument identity")
	}
}

func TestRegistryPanicsOnMisuse(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	r := NewRegistry()
	r.Counter("acc_ok_total", "")
	mustPanic("type clash", func() { r.Gauge("acc_ok_total", "") })
	mustPanic("bad name", func() { r.Counter("0bad", "") })
	mustPanic("odd labels", func() { r.Counter("acc_l_total", "", "only_key") })
	mustPanic("reserved le", func() { r.Histogram("acc_h", "", nil, "le", "x") })
	mustPanic("negative add", func() { r.Counter("acc_neg_total", "").Add(-1) })
	r.Histogram("acc_h2", "", []float64{1, 2})
	mustPanic("bucket clash", func() { r.Histogram("acc_h2", "", []float64{1, 3}) })
}

// TestPrometheusExposition checks the full text rendering line by line.
func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("acc_queries_total", "Total queries.", "status", "ok").Add(5)
	r.Counter("acc_queries_total", "", "status", "error").Inc()
	r.Gauge("acc_cache_entries", "Cached models.").Set(3)
	h := r.Histogram("acc_latency_seconds", "Query latency.", []float64{0.001, 0.01, 0.1}, "backend", "FPGA")
	for _, v := range []float64{0.0005, 0.002, 0.002, 0.05, 7} {
		h.Observe(v)
	}
	// A label value that needs escaping.
	r.Counter("acc_esc_total", "", "msg", "a\"b\\c\nd").Inc()

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	types := map[string]string{}
	samples := map[string]float64{}
	var lastFamily string
	for i, line := range lines {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 3 {
				t.Fatalf("line %d: malformed HELP: %q", i+1, line)
			}
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.SplitN(line, " ", 4)
			if len(parts) != 4 {
				t.Fatalf("line %d: malformed TYPE: %q", i+1, line)
			}
			name, typ := parts[2], parts[3]
			if typ != "counter" && typ != "gauge" && typ != "histogram" {
				t.Fatalf("line %d: unknown type %q", i+1, typ)
			}
			if _, dup := types[name]; dup {
				t.Fatalf("line %d: duplicate TYPE for %s", i+1, name)
			}
			types[name] = typ
			if name <= lastFamily {
				t.Fatalf("line %d: families not sorted: %s after %s", i+1, name, lastFamily)
			}
			lastFamily = name
		case strings.HasPrefix(line, "#"):
			t.Fatalf("line %d: unknown comment %q", i+1, line)
		default:
			if !expoLine.MatchString(line) {
				t.Fatalf("line %d: invalid sample line %q", i+1, line)
			}
			sp := strings.LastIndexByte(line, ' ')
			v, err := strconv.ParseFloat(strings.TrimPrefix(line[sp+1:], "+"), 64)
			if err != nil {
				t.Fatalf("line %d: bad value: %v", i+1, err)
			}
			samples[line[:sp]] = v
		}
	}

	want := map[string]float64{
		`acc_queries_total{status="ok"}`:    5,
		`acc_queries_total{status="error"}`: 1,
		`acc_cache_entries`:                 3,
		`acc_esc_total{msg="a\"b\\c\nd"}`:   1,
	}
	for k, v := range want {
		if samples[k] != v {
			t.Errorf("%s = %v, want %v", k, samples[k], v)
		}
	}
	if types["acc_latency_seconds"] != "histogram" {
		t.Fatalf("acc_latency_seconds type = %q", types["acc_latency_seconds"])
	}
}

// TestHistogramCumulativeAndConsistent verifies bucket counts are cumulative
// and agree with _sum and _count.
func TestHistogramCumulativeAndConsistent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("acc_h_seconds", "", []float64{0.001, 0.01, 0.1, 1})
	obsValues := []float64{0.0001, 0.001, 0.005, 0.02, 0.5, 2, 3}
	var sum float64
	for _, v := range obsValues {
		h.Observe(v)
		sum += v
	}
	cum := h.CumulativeCounts()
	wantCum := []uint64{2, 3, 4, 5, 7} // <=0.001:2 (0.0001, 0.001 inclusive), <=0.01:+1... +Inf:7
	if len(cum) != len(wantCum) {
		t.Fatalf("cumulative length %d, want %d", len(cum), len(wantCum))
	}
	for i := range cum {
		if cum[i] != wantCum[i] {
			t.Errorf("bucket %d cumulative = %d, want %d", i, cum[i], wantCum[i])
		}
		if i > 0 && cum[i] < cum[i-1] {
			t.Errorf("bucket %d not cumulative", i)
		}
	}
	if h.Count() != uint64(len(obsValues)) {
		t.Errorf("count = %d, want %d", h.Count(), len(obsValues))
	}
	if cum[len(cum)-1] != h.Count() {
		t.Errorf("+Inf bucket %d != count %d", cum[len(cum)-1], h.Count())
	}
	if math.Abs(h.Sum()-sum) > 1e-12 {
		t.Errorf("sum = %v, want %v", h.Sum(), sum)
	}

	// The exposition must render the same cumulative counts.
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for i, bound := range []string{"0.001", "0.01", "0.1", "1"} {
		needle := `acc_h_seconds_bucket{le="` + bound + `"} ` + strconv.FormatUint(wantCum[i], 10)
		if !strings.Contains(sb.String(), needle) {
			t.Errorf("exposition missing %q", needle)
		}
	}
	if !strings.Contains(sb.String(), `acc_h_seconds_bucket{le="+Inf"} 7`) {
		t.Error("exposition missing +Inf bucket")
	}
	if !strings.Contains(sb.String(), "acc_h_seconds_count 7") {
		t.Error("exposition missing count")
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1e-6, 10, 4)
	want := []float64{1e-6, 1e-5, 1e-4, 1e-3}
	for i := range want {
		if math.Abs(got[i]-want[i]) > want[i]*1e-9 {
			t.Fatalf("ExpBuckets[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}
