package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"accelscore/internal/sim"
)

// Tracer assigns trace IDs and retains the most recent traces in a bounded
// ring, serving /debug/queries (recent list) and /debug/trace/<id>
// (Chrome trace-event download). Safe for concurrent use; a nil *Tracer is a
// no-op.
type Tracer struct {
	mu       sync.Mutex
	next     uint64
	capacity int
	order    []*Trace // oldest first
	byID     map[string]*Trace
}

// DefaultTraceCapacity is the ring size used when NewTracer gets
// capacity <= 0.
const DefaultTraceCapacity = 128

// NewTracer returns a tracer retaining at most capacity traces.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{capacity: capacity, byID: make(map[string]*Trace)}
}

// Start begins a new trace with a fresh ID ("q-000001", ...). The oldest
// trace falls out of the ring once capacity is exceeded.
func (t *Tracer) Start(name string) *Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.next++
	tr := &Trace{
		id:    fmt.Sprintf("q-%06d", t.next),
		name:  name,
		start: time.Now(),
		attrs: make(map[string]string),
	}
	t.order = append(t.order, tr)
	t.byID[tr.id] = tr
	for len(t.order) > t.capacity {
		old := t.order[0]
		t.order = t.order[1:]
		delete(t.byID, old.id)
	}
	return tr
}

// Get returns the retained trace with the given ID.
func (t *Tracer) Get(id string) (*Trace, bool) {
	if t == nil {
		return nil, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	tr, ok := t.byID[id]
	return tr, ok
}

// Recent returns the retained traces, newest first.
func (t *Tracer) Recent() []*Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Trace, len(t.order))
	for i, tr := range t.order {
		out[len(t.order)-1-i] = tr
	}
	return out
}

// Capacity returns the ring size; a nil tracer reports 0.
func (t *Tracer) Capacity() int {
	if t == nil {
		return 0
	}
	return t.capacity
}

// Len returns the number of retained traces.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.order)
}

// wallSpan is a real (measured) span relative to the trace start. track is
// empty for the main wall-clock track; a named track groups related spans
// (e.g. one track per shard of a scatter-gather fan-out) onto its own lane
// in the exported trace.
type wallSpan struct {
	name   string
	track  string
	offset time.Duration
	dur    time.Duration
}

// simTrack is one named sim.Timeline recorded on the trace (e.g. the Fig. 11
// end-to-end breakdown and the backend's Fig. 7 scoring detail).
type simTrack struct {
	name  string
	spans []sim.Span
}

// Trace is one query's record: a wall-clock track measured with real
// timestamps plus any number of simulated-timeline tracks, with string
// attributes (model, backend, error). All methods are safe on a nil receiver
// so instrumented code needs no observer guards.
type Trace struct {
	id    string
	name  string
	start time.Time

	mu     sync.Mutex
	attrs  map[string]string
	wall   []wallSpan
	tracks []simTrack
	costs  Attribution
	total  time.Duration
	done   bool
}

// ID returns the tracer-assigned identifier.
func (tr *Trace) ID() string {
	if tr == nil {
		return ""
	}
	return tr.id
}

// Name returns the trace name given to Tracer.Start.
func (tr *Trace) Name() string {
	if tr == nil {
		return ""
	}
	return tr.name
}

// StartSpan opens a wall-clock span; the returned closer records it.
func (tr *Trace) StartSpan(name string) func() {
	return tr.StartSpanOn("", name)
}

// StartSpanOn opens a wall-clock span on a named track. Spans sharing a
// track render on one lane in the Chrome export, so a scatter-gather query
// can record one track per shard ("shard 0", "shard 1", ...) and the
// straggler gap is visible as the ragged right edge across lanes. An empty
// track is the main wall-clock track.
func (tr *Trace) StartSpanOn(track, name string) func() {
	if tr == nil {
		return func() {}
	}
	t0 := time.Now()
	return func() {
		d := time.Since(t0)
		tr.mu.Lock()
		defer tr.mu.Unlock()
		tr.wall = append(tr.wall, wallSpan{name: name, track: track, offset: t0.Sub(tr.start), dur: d})
	}
}

// SetAttr records a string attribute shown in the trace viewer and the
// /debug/queries listing.
func (tr *Trace) SetAttr(k, v string) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.attrs[k] = v
}

// AddTimeline records a simulated timeline as a named track; spans are laid
// out sequentially from the track origin in the exported trace.
func (tr *Trace) AddTimeline(track string, tl *sim.Timeline) {
	if tr == nil || tl == nil {
		return
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.tracks = append(tr.tracks, simTrack{name: track, spans: tl.Spans()})
}

// SetStageCosts records the query's per-stage resource attribution. The
// costs surface in Snapshot, /debug/queries, and as args on the matching
// wall-clock spans of the Chrome trace export.
func (tr *Trace) SetStageCosts(costs Attribution) {
	if tr == nil || len(costs) == 0 {
		return
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.costs = append(Attribution(nil), costs...)
}

// Finish seals the trace, fixing its wall-clock total. Idempotent.
func (tr *Trace) Finish() {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if !tr.done {
		tr.total = time.Since(tr.start)
		tr.done = true
	}
}

// WallSpanSnapshot is one measured span in a snapshot. Track is empty for
// the main wall-clock lane.
type WallSpanSnapshot struct {
	Name     string
	Track    string
	Offset   time.Duration
	Duration time.Duration
}

// TrackSnapshot is one simulated track in a snapshot.
type TrackSnapshot struct {
	Name  string
	Spans []sim.Span
	Total time.Duration
}

// TraceSnapshot is a consistent copy of a trace for rendering.
type TraceSnapshot struct {
	ID        string
	Name      string
	Start     time.Time
	Wall      time.Duration
	Done      bool
	Attrs     map[string]string
	WallSpans []WallSpanSnapshot
	Tracks    []TrackSnapshot
	// Costs is the per-stage resource attribution, when recorded.
	Costs Attribution
}

// Snapshot copies the trace state under its lock.
func (tr *Trace) Snapshot() TraceSnapshot {
	if tr == nil {
		return TraceSnapshot{}
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	snap := TraceSnapshot{
		ID:    tr.id,
		Name:  tr.name,
		Start: tr.start,
		Wall:  tr.total,
		Done:  tr.done,
		Attrs: make(map[string]string, len(tr.attrs)),
	}
	if !tr.done {
		snap.Wall = time.Since(tr.start)
	}
	for k, v := range tr.attrs {
		snap.Attrs[k] = v
	}
	for _, w := range tr.wall {
		snap.WallSpans = append(snap.WallSpans,
			WallSpanSnapshot{Name: w.name, Track: w.track, Offset: w.offset, Duration: w.dur})
	}
	for _, trk := range tr.tracks {
		ts := TrackSnapshot{Name: trk.name, Spans: append([]sim.Span(nil), trk.spans...)}
		for _, s := range trk.spans {
			ts.Total += s.Duration
		}
		snap.Tracks = append(snap.Tracks, ts)
	}
	snap.Costs = append(Attribution(nil), tr.costs...)
	return snap
}

// chromeEvent is one entry of the Chrome trace-event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeTrace is the JSON-object envelope of the trace-event format.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// micros converts a duration to the format's microsecond floats.
func micros(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// chromeEvents renders one trace under the given pid: tid 1 is the measured
// wall-clock track, tids 2+ are the simulated timelines laid out
// sequentially, each sim span categorized by its O/L/C kind so the Fig. 6
// taxonomy is filterable in the viewer. Named wall tracks (per-shard
// fan-out lanes from StartSpanOn) follow the sim tracks, in order of first
// appearance, positioned at their real measured offsets.
func (snap TraceSnapshot) chromeEvents(pid int) []chromeEvent {
	evs := []chromeEvent{
		{Name: "process_name", Ph: "M", PID: pid, Args: map[string]string{"name": snap.ID + " " + snap.Name}},
		{Name: "thread_name", Ph: "M", PID: pid, TID: 1, Args: map[string]string{"name": "wall clock"}},
		{Name: snap.Name, Cat: "query", Ph: "i", PID: pid, TID: 1, Args: snap.Attrs},
	}
	// Wall spans carry the measured resource attribution of their stage as
	// args, so a span selected in the viewer shows CPU time, allocations
	// and bytes moved alongside its duration.
	costByStage := make(map[string]StageCost, len(snap.Costs))
	for _, c := range snap.Costs {
		costByStage[c.Stage] = c
	}
	wallTracks := make(map[string]int) // named track -> tid
	var wallOrder []string
	for _, w := range snap.WallSpans {
		if w.Track != "" {
			if _, ok := wallTracks[w.Track]; !ok {
				wallTracks[w.Track] = 0
				wallOrder = append(wallOrder, w.Track)
			}
			continue
		}
		ev := chromeEvent{
			Name: w.Name, Cat: "wall", Ph: "X",
			TS: micros(w.Offset), Dur: micros(w.Duration), PID: pid, TID: 1,
		}
		if c, ok := costByStage[w.Name]; ok {
			ev.Args = c.args()
		}
		evs = append(evs, ev)
	}
	for i, trk := range snap.Tracks {
		tid := 2 + i
		evs = append(evs, chromeEvent{
			Name: "thread_name", Ph: "M", PID: pid, TID: tid,
			Args: map[string]string{"name": trk.Name},
		})
		var cursor time.Duration
		for _, s := range trk.Spans {
			evs = append(evs, chromeEvent{
				Name: s.Name, Cat: s.Kind.String(), Ph: "X",
				TS: micros(cursor), Dur: micros(s.Duration), PID: pid, TID: tid,
			})
			cursor += s.Duration
		}
	}
	for i, name := range wallOrder {
		wallTracks[name] = 2 + len(snap.Tracks) + i
		evs = append(evs, chromeEvent{
			Name: "thread_name", Ph: "M", PID: pid, TID: wallTracks[name],
			Args: map[string]string{"name": name},
		})
	}
	for _, w := range snap.WallSpans {
		if w.Track == "" {
			continue
		}
		evs = append(evs, chromeEvent{
			Name: w.Name, Cat: "wall", Ph: "X",
			TS: micros(w.Offset), Dur: micros(w.Duration), PID: pid, TID: wallTracks[w.Track],
		})
	}
	return evs
}

// WriteChromeTrace writes the single trace as Chrome trace-event JSON.
func (tr *Trace) WriteChromeTrace(w io.Writer) error {
	if tr == nil {
		return fmt.Errorf("obs: nil trace")
	}
	return writeChrome(w, tr.Snapshot().chromeEvents(1))
}

// WriteChromeTrace writes every retained trace into one trace-event file,
// one process per trace (oldest first), so a whole figure run or serving
// window can be inspected side by side.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("obs: nil tracer")
	}
	t.mu.Lock()
	traces := append([]*Trace(nil), t.order...)
	t.mu.Unlock()
	var evs []chromeEvent
	for i, tr := range traces {
		evs = append(evs, tr.Snapshot().chromeEvents(i+1)...)
	}
	return writeChrome(w, evs)
}

func writeChrome(w io.Writer, evs []chromeEvent) error {
	if evs == nil {
		evs = []chromeEvent{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(chromeTrace{TraceEvents: evs, DisplayTimeUnit: "ms"})
}
