package obs

import (
	"strings"
	"testing"
	"time"
)

func TestParseSLOSpec(t *testing.T) {
	objs, err := ParseSLOSpec("interactive=50ms,batch=2s")
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 2 {
		t.Fatalf("got %d objectives", len(objs))
	}
	// Sorted by class.
	if objs[0].Class != "batch" || objs[0].Latency != 2*time.Second {
		t.Errorf("objs[0] = %+v", objs[0])
	}
	if objs[1].Class != "interactive" || objs[1].Latency != 50*time.Millisecond {
		t.Errorf("objs[1] = %+v", objs[1])
	}

	// Bare duration = default class.
	objs, err = ParseSLOSpec("100ms")
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 1 || objs[0].Class != "default" || objs[0].Latency != 100*time.Millisecond {
		t.Errorf("bare spec = %+v", objs)
	}

	// Empty is no objectives, not an error.
	if objs, err := ParseSLOSpec(""); err != nil || objs != nil {
		t.Errorf("empty spec: objs=%v err=%v", objs, err)
	}

	for _, bad := range []string{"x=", "=50ms", "a=50ms,a=60ms", "a=-5ms", "a=banana"} {
		if _, err := ParseSLOSpec(bad); err == nil {
			t.Errorf("ParseSLOSpec(%q) should fail", bad)
		}
	}
}

func TestFormatSLOSpecRoundTrips(t *testing.T) {
	spec := "batch=2s,interactive=50ms"
	objs, err := ParseSLOSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := FormatSLOSpec(objs); got != spec {
		t.Errorf("round trip: %q != %q", got, spec)
	}
}

func TestSLOEngineClassifyAndGoodput(t *testing.T) {
	reg := NewRegistry()
	objs, _ := ParseSLOSpec("interactive=50ms,batch=2s")
	e := NewSLOEngine(reg, objs, 0.99)
	base := time.Unix(1_700_000_000, 0)
	e.SetNow(func() time.Time { return base })

	if !e.Observe("interactive", 10*time.Millisecond, true) {
		t.Error("fast ok query should be good")
	}
	if e.Observe("interactive", 80*time.Millisecond, true) {
		t.Error("slow query should be bad")
	}
	if e.Observe("interactive", 10*time.Millisecond, false) {
		t.Error("failed query should be bad")
	}
	if !e.Observe("batch", time.Second, true) {
		t.Error("batch within 2s should be good")
	}

	rep := e.Report()
	if len(rep) != 2 {
		t.Fatalf("report classes = %d", len(rep))
	}
	if rep[0].Class != "batch" || rep[0].Total != 1 || rep[0].Good != 1 || rep[0].Goodput != 1 {
		t.Errorf("batch report = %+v", rep[0])
	}
	if rep[1].Class != "interactive" || rep[1].Total != 3 || rep[1].Good != 1 {
		t.Errorf("interactive report = %+v", rep[1])
	}

	// Burn rate over 1m: 2 bad of 3 = 0.667 bad fraction over budget 0.01.
	br := e.BurnRate("interactive", time.Minute)
	if br < 66 || br > 67 {
		t.Errorf("burn rate = %g, want ~66.7", br)
	}
	if br := e.BurnRate("batch", time.Minute); br != 0 {
		t.Errorf("batch burn rate = %g, want 0", br)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`accelscore_slo_events_total{class="interactive",result="bad"} 2`,
		`accelscore_slo_events_total{class="interactive",result="good"} 1`,
		`accelscore_slo_objective_seconds{class="batch"} 2`,
		`accelscore_slo_burn_rate{class="interactive",window="1m"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestSLOEngineWindowExpiry(t *testing.T) {
	objs, _ := ParseSLOSpec("default=10ms")
	e := NewSLOEngine(nil, objs, 0.99)
	base := time.Unix(1_700_000_000, 0)
	now := base
	e.SetNow(func() time.Time { return now })

	e.Observe("default", time.Second, true) // bad (slow)
	if br := e.BurnRate("default", time.Minute); br == 0 {
		t.Error("fresh bad event should burn")
	}
	// Two minutes later the 1m window no longer sees it; the 1h window does.
	now = base.Add(2 * time.Minute)
	if br := e.BurnRate("default", time.Minute); br != 0 {
		t.Errorf("1m burn after expiry = %g, want 0", br)
	}
	if br := e.BurnRate("default", time.Hour); br == 0 {
		t.Error("1h window should still see the event")
	}
}

func TestSLOEngineFallbackClass(t *testing.T) {
	objs, _ := ParseSLOSpec("interactive=50ms")
	e := NewSLOEngine(nil, objs, 0)
	// Unknown class falls back to the only configured class.
	if e.Observe("mystery", time.Second, true) {
		t.Error("slow query should classify bad via single-class fallback")
	}
	if e.Target() != DefaultSLOTarget {
		t.Errorf("target = %g, want default", e.Target())
	}
}

func TestSLOEngineNilSafe(t *testing.T) {
	var e *SLOEngine
	if !e.Observe("x", time.Hour, true) {
		t.Error("nil engine should pass ok through")
	}
	if e.Report() != nil || e.BurnRate("x", time.Minute) != 0 || e.Objectives() != nil {
		t.Error("nil engine accessors should be zero")
	}
	if NewSLOEngine(NewRegistry(), nil, 0.99) != nil {
		t.Error("no objectives should yield nil engine")
	}
}
