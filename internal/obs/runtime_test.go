package obs

import (
	"math"
	"runtime/metrics"
	"strings"
	"testing"
	"time"
)

func TestRuntimeCollectorSampleNow(t *testing.T) {
	reg := NewRegistry()
	c := NewRuntimeCollector(reg, time.Hour)
	c.SampleNow()
	c.SampleNow()
	if got := c.Samples(); got != 2 {
		t.Errorf("Samples() = %d, want 2", got)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		MetricRuntimeGoroutines,
		MetricRuntimeHeapAllocBytes,
		MetricRuntimeHeapSysBytes,
		MetricRuntimeHeapObjects,
		MetricRuntimeGCPauseSecondsTotal,
		MetricRuntimeGCCyclesTotal,
		MetricRuntimeSchedLatencySeconds + `{quantile="0.5"}`,
		MetricRuntimeSchedLatencySeconds + `{quantile="0.99"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if reg.Gauge(MetricRuntimeGoroutines, "").Value() < 1 {
		t.Error("goroutine gauge should be at least 1")
	}
	if reg.Gauge(MetricRuntimeHeapAllocBytes, "").Value() <= 0 {
		t.Error("heap alloc gauge should be positive")
	}
}

func TestRuntimeCollectorStartStop(t *testing.T) {
	reg := NewRegistry()
	c := StartRuntimeCollector(reg, 10*time.Millisecond)
	defer c.Stop()
	deadline := time.Now().Add(2 * time.Second)
	for c.Samples() < 3 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if c.Samples() < 3 {
		t.Fatalf("collector only took %d samples", c.Samples())
	}
}

func TestHistQuantileDelta(t *testing.T) {
	// Synthetic histogram: edges [0, 1ms, 10ms, +Inf], all mass in 1-10ms.
	cur := &metrics.Float64Histogram{
		Counts:  []uint64{0, 100, 0},
		Buckets: []float64{0, 0.001, 0.01, math.Inf(1)},
	}
	if got := histQuantileDelta(cur, nil, 0.5); got != 0.01 {
		t.Errorf("p50 = %g, want 0.01", got)
	}
	// Delta against an identical previous sample has no observations.
	if got := histQuantileDelta(cur, cloneFloat64Histogram(cur), 0.5); got != 0 {
		t.Errorf("empty delta p50 = %g, want 0", got)
	}
	if got := histQuantileDelta(nil, nil, 0.5); got != 0 {
		t.Errorf("nil histogram p50 = %g, want 0", got)
	}
}
