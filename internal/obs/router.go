package obs

import (
	"strconv"
	"time"
)

// Metric names the scale-out router publishes. They live here (next to the
// executor and pipeline metric vocabularies) so dashboards and tests share
// one spelling, and so the router, loadgen, and conformance packages never
// drift apart on label sets.
const (
	// MetricRouterQueriesTotal counts routed queries {outcome="ok"|
	// "partial"|"error"}. A "partial" outcome means some partitions had no
	// surviving route and the caller opted into explicit partial results.
	MetricRouterQueriesTotal = "accelscore_router_queries_total"
	// MetricRouterScatterWidth is the histogram of scatter fan-out widths
	// (sub-queries issued per routed query).
	MetricRouterScatterWidth = "accelscore_router_scatter_width"
	// MetricRouterStragglerGap is the histogram of the gather barrier's
	// straggler gap: slowest sub-query latency minus fastest, seconds. The
	// gap is the scale-out tax the paper's single-node model never pays.
	MetricRouterStragglerGap = "accelscore_router_straggler_gap_seconds"
	// MetricRouterShardLatency is the per-shard sub-query latency
	// histogram {shard}.
	MetricRouterShardLatency = "accelscore_router_shard_latency_seconds"
	// MetricRouterReroutesTotal counts partitions moved off their preferred
	// shard {shard} (labelled by the shard routed AWAY from).
	MetricRouterReroutesTotal = "accelscore_router_reroutes_total"
	// MetricRouterShardBreakerState gauges each shard's circuit state
	// {shard}: 0 closed, 1 half-open, 2 open.
	MetricRouterShardBreakerState = "accelscore_router_shard_breaker_state"
	// MetricRouterWarmTotal counts model-cache warm calls fanned out to
	// shards {status="hit"|"miss"|"nocache"|"error"}.
	MetricRouterWarmTotal = "accelscore_router_warm_total"
	// MetricRouterHedgesTotal counts tail-latency hedge outcomes
	// {outcome="win"|"loss"|"mismatch"|"denied"}: "win" used the hedge's
	// result, "loss" the primary's, "mismatch" is a divergent pair (fails
	// the query loudly), "denied" a trigger with no budget or healthy
	// replica.
	MetricRouterHedgesTotal = "accelscore_router_hedges_total"
	// MetricRouterShardState gauges each shard's health state {shard}:
	// 0 healthy, 1 degraded, 2 quarantined, 3 rejoining.
	MetricRouterShardState = "accelscore_router_shard_state"
	// MetricRouterAdmissionShedTotal counts queries refused at admission
	// {class} (capacity, priority, or deadline shedding).
	MetricRouterAdmissionShedTotal = "accelscore_router_admission_shed_total"
)

// scatterWidthBuckets resolves fan-out widths 1..64; wider tiers saturate
// the last bucket.
var scatterWidthBuckets = []float64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64}

// stragglerBuckets resolves gaps from sub-millisecond HTTP jitter up to
// multi-second shard stalls.
var stragglerBuckets = []float64{
	.0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10,
}

// RouterMetrics publishes the accelscore_router_* family into a registry.
// The zero value (or a nil receiver) is a no-op so the router runs
// unobserved in tests.
type RouterMetrics struct {
	reg *Registry
}

// NewRouterMetrics binds the router metric family to reg (nil reg => no-op).
func NewRouterMetrics(reg *Registry) *RouterMetrics {
	if reg == nil {
		return nil
	}
	return &RouterMetrics{reg: reg}
}

// ObserveQuery records one routed query: its outcome, scatter width, and
// gather straggler gap.
func (m *RouterMetrics) ObserveQuery(outcome string, width int, stragglerGap time.Duration) {
	if m == nil || m.reg == nil {
		return
	}
	m.reg.Counter(MetricRouterQueriesTotal, "Routed queries by outcome.", "outcome", outcome).Inc()
	m.reg.Histogram(MetricRouterScatterWidth, "Sub-queries issued per routed query.",
		scatterWidthBuckets).Observe(float64(width))
	m.reg.Histogram(MetricRouterStragglerGap,
		"Gather-barrier straggler gap (slowest minus fastest sub-query), seconds.",
		stragglerBuckets).Observe(stragglerGap.Seconds())
}

// ObserveShard records one sub-query on one shard: its latency and how many
// reroutes it took to land there.
func (m *RouterMetrics) ObserveShard(shard int, latency time.Duration, reroutes int) {
	if m == nil || m.reg == nil {
		return
	}
	s := strconv.Itoa(shard)
	m.reg.Histogram(MetricRouterShardLatency, "Per-shard sub-query latency, seconds.",
		nil, "shard", s).Observe(latency.Seconds())
	if reroutes > 0 {
		m.reg.Counter(MetricRouterReroutesTotal,
			"Partitions rerouted away from a shard.", "shard", s).Add(float64(reroutes))
	}
}

// SetBreakerState gauges a shard's circuit state (the breaker's 0/1/2
// metric encoding).
func (m *RouterMetrics) SetBreakerState(shard, state int) {
	if m == nil || m.reg == nil {
		return
	}
	m.reg.Gauge(MetricRouterShardBreakerState,
		"Shard circuit state: 0 closed, 1 half-open, 2 open.",
		"shard", strconv.Itoa(shard)).Set(float64(state))
}

// NoteWarm counts one model-cache warm call outcome.
func (m *RouterMetrics) NoteWarm(status string) {
	if m == nil || m.reg == nil {
		return
	}
	m.reg.Counter(MetricRouterWarmTotal, "Model-cache warm calls by status.",
		"status", status).Inc()
}

// NoteHedge counts one hedge outcome (win/loss/mismatch/denied).
func (m *RouterMetrics) NoteHedge(outcome string) {
	if m == nil || m.reg == nil {
		return
	}
	m.reg.Counter(MetricRouterHedgesTotal, "Tail-latency hedge outcomes.",
		"outcome", outcome).Inc()
}

// SetShardState gauges a shard's health state (0 healthy, 1 degraded,
// 2 quarantined, 3 rejoining).
func (m *RouterMetrics) SetShardState(shard, state int) {
	if m == nil || m.reg == nil {
		return
	}
	m.reg.Gauge(MetricRouterShardState,
		"Shard health state: 0 healthy, 1 degraded, 2 quarantined, 3 rejoining.",
		"shard", strconv.Itoa(shard)).Set(float64(state))
}

// NoteAdmissionShed counts one query refused at admission, by class.
func (m *RouterMetrics) NoteAdmissionShed(class string) {
	if class == "" {
		class = "default"
	}
	if m == nil || m.reg == nil {
		return
	}
	m.reg.Counter(MetricRouterAdmissionShedTotal,
		"Queries refused at admission (capacity, priority, or deadline shedding).",
		"class", class).Inc()
}
