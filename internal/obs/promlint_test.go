package obs

import (
	"strings"
	"testing"
	"time"
)

// populateRegistry fills a registry with every instrument type, exemplars
// included, so the lint test exercises the full rendering surface.
func populateRegistry(reg *Registry) {
	reg.Counter("accelscore_test_events_total", "Events.", "kind", "a").Add(3)
	reg.Counter("accelscore_test_events_total", "Events.", "kind", "b").Inc()
	reg.Gauge("accelscore_test_depth", "Depth.").Set(-2.5)
	reg.Gauge("accelscore_test_labeled", "Labeled gauge.", "cls", `quo"te`, "other", `back\slash`).Set(1)
	h := reg.Histogram("accelscore_test_latency_seconds", "Latency.", DefBuckets, "path", "/query")
	h.ObserveExemplar(0.0004, "q-000001")
	h.ObserveExemplar(3.2, "q-000002")
	h.Observe(0.02)
	reg.Histogram("accelscore_test_plain_seconds", "No exemplars.", []float64{0.1, 1}).Observe(0.5)
}

func TestLintCleanRegistry(t *testing.T) {
	reg := NewRegistry()
	populateRegistry(reg)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if probs := LintPrometheus(strings.NewReader(sb.String())); len(probs) != 0 {
		t.Errorf("clean registry lints dirty:\n%s\nexposition:\n%s", joinProblems(probs), sb.String())
	}
}

func TestLintExemplarRendering(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("accelscore_test_seconds", "T.", []float64{0.001, 1})
	h.ObserveExemplar(0.5, "q-000042")
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `# {trace_id="q-000042"} 0.5`) {
		t.Fatalf("exemplar suffix missing:\n%s", out)
	}
	// The exemplar lands on the le="1" bucket, not the 0.001 one.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, `le="0.001"`) && strings.Contains(line, "q-000042") {
			t.Errorf("exemplar on wrong bucket: %s", line)
		}
	}
	if probs := LintPrometheus(strings.NewReader(out)); len(probs) != 0 {
		t.Errorf("exemplar exposition lints dirty:\n%s", joinProblems(probs))
	}
}

func TestLintCatchesViolations(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string
	}{
		{"no type", "accelscore_x 1\n", "no preceding TYPE"},
		{"bad value", "# TYPE accelscore_x gauge\naccelscore_x banana\n", "bad sample value"},
		{"negative counter", "# TYPE accelscore_x counter\naccelscore_x -1\n", "negative value"},
		{"duplicate series", "# TYPE accelscore_x gauge\naccelscore_x 1\naccelscore_x 2\n", "duplicate series"},
		{"duplicate type", "# TYPE accelscore_x gauge\n# TYPE accelscore_x counter\naccelscore_x 1\n", "duplicate TYPE"},
		{"unknown type", "# TYPE accelscore_x banana\n", "unknown TYPE"},
		{"bad label name", "# TYPE accelscore_x gauge\naccelscore_x{0bad=\"v\"} 1\n", "invalid label name"},
		{"unterminated labels", "# TYPE accelscore_x gauge\naccelscore_x{a=\"v\n", "malformed labels"},
		{"bad escape", "# TYPE accelscore_x gauge\naccelscore_x{a=\"\\t\"} 1\n", "malformed labels"},
		{
			"missing inf",
			"# TYPE accelscore_h histogram\naccelscore_h_bucket{le=\"1\"} 1\naccelscore_h_sum 1\naccelscore_h_count 1\n",
			"missing +Inf",
		},
		{
			"non-cumulative",
			"# TYPE accelscore_h histogram\naccelscore_h_bucket{le=\"1\"} 5\naccelscore_h_bucket{le=\"2\"} 3\naccelscore_h_bucket{le=\"+Inf\"} 5\naccelscore_h_sum 1\naccelscore_h_count 5\n",
			"not cumulative",
		},
		{
			"count mismatch",
			"# TYPE accelscore_h histogram\naccelscore_h_bucket{le=\"+Inf\"} 5\naccelscore_h_sum 1\naccelscore_h_count 4\n",
			"_count 4 != +Inf bucket 5",
		},
		{
			"missing sum",
			"# TYPE accelscore_h histogram\naccelscore_h_bucket{le=\"+Inf\"} 1\naccelscore_h_count 1\n",
			"missing _sum",
		},
		{
			"exemplar on gauge",
			"# TYPE accelscore_x gauge\naccelscore_x 1 # {trace_id=\"q-1\"} 1 1.5\n",
			"exemplar on non-bucket",
		},
		{
			"exemplar outside bucket",
			"# TYPE accelscore_h histogram\naccelscore_h_bucket{le=\"1\"} 1 # {trace_id=\"q-1\"} 5 1.5\naccelscore_h_bucket{le=\"+Inf\"} 1\naccelscore_h_sum 5\naccelscore_h_count 1\n",
			"exceeds its bucket bound",
		},
		{
			"bucket without le",
			"# TYPE accelscore_h histogram\naccelscore_h_bucket 1\naccelscore_h_bucket{le=\"+Inf\"} 1\naccelscore_h_sum 1\naccelscore_h_count 1\n",
			"missing le label",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			probs := LintPrometheus(strings.NewReader(tc.in))
			for _, p := range probs {
				if strings.Contains(p.Msg, tc.want) {
					return
				}
			}
			t.Errorf("want problem containing %q, got:\n%s", tc.want, joinProblems(probs))
		})
	}
}

func TestLintAcceptsTimestampsAndInf(t *testing.T) {
	in := "# TYPE accelscore_x gauge\naccelscore_x +Inf 1700000000000\naccelscore_y 1\n# TYPE accelscore_y gauge\n"
	probs := LintPrometheus(strings.NewReader(in))
	// accelscore_y's TYPE comes after its sample: exactly one problem.
	if len(probs) != 1 || !strings.Contains(probs[0].Msg, "no preceding TYPE") {
		t.Errorf("got problems:\n%s", joinProblems(probs))
	}
}

func TestExemplarSuffixEscapesAndFormats(t *testing.T) {
	e := &Exemplar{Value: 0.25, TraceID: `q"1`, Time: time.UnixMilli(1700000000123)}
	s := exemplarSuffix(e)
	if s != ` # {trace_id="q\"1"} 0.25 1700000000.123` {
		t.Errorf("suffix = %q", s)
	}
	if exemplarSuffix(nil) != "" {
		t.Error("nil exemplar should render empty")
	}
}

func joinProblems(probs []LintProblem) string {
	parts := make([]string, len(probs))
	for i, p := range probs {
		parts[i] = p.String()
	}
	return strings.Join(parts, "\n")
}
