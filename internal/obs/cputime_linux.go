//go:build linux

package obs

import (
	"syscall"
	"time"
)

const threadCPUSupported = true

// threadCPUTime returns the calling OS thread's consumed CPU time
// (user + system) via getrusage(RUSAGE_THREAD). Meaningful across a
// measured region only when the goroutine is pinned to its thread
// (runtime.LockOSThread) for the duration, which the pipeline's
// attribution bracket guarantees.
func threadCPUTime() time.Duration {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_THREAD, &ru); err != nil {
		return 0
	}
	return time.Duration(ru.Utime.Nano() + ru.Stime.Nano())
}
