//go:build !linux

package obs

import "time"

const threadCPUSupported = false

// threadCPUTime is unavailable off Linux: attribution still reports
// allocations and transfer bytes, with CPU time pinned at zero.
func threadCPUTime() time.Duration { return 0 }
