package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Prometheus-exposition lint: a strict, stdlib-only validator for the text
// format WritePrometheus emits (version 0.0.4 plus OpenMetrics exemplar
// suffixes on _bucket lines). The registry panics on malformed NAMES at
// creation time, but nothing before this guarded the full rendered output —
// escaping, histogram invariants, duplicate series — which is exactly what a
// real Prometheus server would reject at scrape time. The lint runs in tests
// over a fully-populated registry and in the obs-smoke CI job against a live
// /metrics scrape.

// LintProblem is one violation found in an exposition, with its 1-based
// line number.
type LintProblem struct {
	Line int
	Msg  string
}

func (p LintProblem) String() string { return fmt.Sprintf("line %d: %s", p.Line, p.Msg) }

// LintPrometheus parses a text exposition and returns every violation found:
// malformed names, labels or values, TYPE/HELP misuse, duplicate series,
// decreasing counters, and broken histogram invariants (unsorted or
// non-cumulative buckets, missing +Inf, _count/_bucket{+Inf} mismatch,
// exemplars outside their bucket). An empty slice means the exposition is
// clean.
func LintPrometheus(r io.Reader) []LintProblem {
	l := &linter{
		types:    make(map[string]string),
		helps:    make(map[string]bool),
		seen:     make(map[string]int),
		hists:    make(map[string]*histSeries),
		typeLine: make(map[string]int),
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	n := 0
	for sc.Scan() {
		n++
		l.line(n, sc.Text())
	}
	if err := sc.Err(); err != nil {
		l.errf(n, "read: %v", err)
	}
	l.finish()
	sort.Slice(l.problems, func(i, j int) bool { return l.problems[i].Line < l.problems[j].Line })
	return l.problems
}

// histSeries accumulates one histogram child (family + labels minus le) for
// end-of-input invariant checks.
type histSeries struct {
	firstLine int
	// le -> cumulative count, in input order.
	bounds []float64
	counts []float64
	hasInf bool
	infVal float64
	sum    *float64
	count  *float64
}

type linter struct {
	problems []LintProblem
	types    map[string]string // family -> declared type
	typeLine map[string]int
	helps    map[string]bool
	seen     map[string]int // name+labels -> first line (duplicate detection)
	hists    map[string]*histSeries
}

func (l *linter) errf(line int, format string, args ...any) {
	l.problems = append(l.problems, LintProblem{Line: line, Msg: fmt.Sprintf(format, args...)})
}

func (l *linter) line(n int, s string) {
	if strings.TrimSpace(s) == "" {
		return
	}
	if strings.HasPrefix(s, "#") {
		l.comment(n, s)
		return
	}
	l.sample(n, s)
}

func (l *linter) comment(n int, s string) {
	fields := strings.SplitN(s, " ", 4)
	if len(fields) < 2 {
		return // bare comment: legal, ignored
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 || !validMetricName(fields[2]) {
			l.errf(n, "malformed HELP line %q", s)
			return
		}
		if l.helps[fields[2]] {
			l.errf(n, "duplicate HELP for %q", fields[2])
		}
		l.helps[fields[2]] = true
	case "TYPE":
		if len(fields) < 4 || !validMetricName(fields[2]) {
			l.errf(n, "malformed TYPE line %q", s)
			return
		}
		name, typ := fields[2], strings.TrimSpace(fields[3])
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			l.errf(n, "unknown TYPE %q for %q", typ, name)
			return
		}
		if _, dup := l.types[name]; dup {
			l.errf(n, "duplicate TYPE for %q", name)
			return
		}
		l.types[name] = typ
		l.typeLine[name] = n
	}
	// Other comments are permitted free-form.
}

// sample parses `name{labels} value [timestamp][ # {labels} value [timestamp]]`.
func (l *linter) sample(n int, s string) {
	name, rest, ok := scanMetricName(s)
	if !ok {
		l.errf(n, "malformed metric name in %q", s)
		return
	}
	var labels []labelPair
	if strings.HasPrefix(rest, "{") {
		labels, rest, ok = scanLabels(rest)
		if !ok {
			l.errf(n, "malformed labels in %q", s)
			return
		}
	}
	// Split off an exemplar suffix before parsing value/timestamp.
	body, exemplar, hasExemplar := strings.Cut(rest, " # ")
	fields := strings.Fields(body)
	if len(fields) < 1 || len(fields) > 2 {
		l.errf(n, "expected 'value [timestamp]' after series, got %q", strings.TrimSpace(body))
		return
	}
	value, err := parsePromValue(fields[0])
	if err != nil {
		l.errf(n, "bad sample value %q: %v", fields[0], err)
		return
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			l.errf(n, "bad timestamp %q", fields[1])
		}
	}

	// Label hygiene: valid names, no duplicates.
	seenLabels := make(map[string]bool, len(labels))
	var le string
	hasLe := false
	for _, lp := range labels {
		if lp.name != "le" && !validLabelName(lp.name) {
			l.errf(n, "invalid label name %q", lp.name)
		}
		if seenLabels[lp.name] {
			l.errf(n, "duplicate label %q", lp.name)
		}
		seenLabels[lp.name] = true
		if lp.name == "le" {
			le, hasLe = lp.value, true
		}
	}

	// Family resolution: histogram series carry _bucket/_sum/_count suffixes.
	family, kind := name, ""
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name && l.types[base] == "histogram" {
			family, kind = base, suf
			break
		}
	}
	typ, declared := l.types[family]
	if !declared {
		l.errf(n, "series %q has no preceding TYPE", name)
	} else if l.typeLine[family] > n {
		l.errf(n, "series %q precedes its TYPE line", name)
	}

	// Duplicate series detection on the full identity.
	id := name + "{" + canonicalPairs(labels) + "}"
	if first, dup := l.seen[id]; dup {
		l.errf(n, "duplicate series %s (first at line %d)", id, first)
	} else {
		l.seen[id] = n
	}

	switch typ {
	case "counter":
		if value < 0 {
			l.errf(n, "counter %q has negative value %g", name, value)
		}
	case "histogram":
		l.histogramSample(n, family, kind, labels, le, hasLe, value)
	}

	if hasExemplar {
		if kind != "_bucket" {
			l.errf(n, "exemplar on non-bucket series %q", name)
			return
		}
		l.exemplar(n, exemplar, le, hasLe)
	}
}

// histogramSample folds one histogram series line into its child's
// accumulated state.
func (l *linter) histogramSample(n int, family, kind string, labels []labelPair, le string, hasLe bool, value float64) {
	switch kind {
	case "":
		l.errf(n, "histogram family %q exposed without _bucket/_sum/_count suffix", family)
		return
	case "_bucket":
		if !hasLe {
			l.errf(n, "histogram bucket of %q missing le label", family)
			return
		}
	default:
		if hasLe {
			l.errf(n, "le label on %s%s", family, kind)
		}
	}
	others := make([]labelPair, 0, len(labels))
	for _, lp := range labels {
		if lp.name != "le" {
			others = append(others, lp)
		}
	}
	key := family + "{" + canonicalPairs(others) + "}"
	h := l.hists[key]
	if h == nil {
		h = &histSeries{firstLine: n}
		l.hists[key] = h
	}
	switch kind {
	case "_bucket":
		if le == "+Inf" {
			h.hasInf = true
			h.infVal = value
			return
		}
		bound, err := strconv.ParseFloat(le, 64)
		if err != nil {
			l.errf(n, "bad le value %q on %q", le, family)
			return
		}
		h.bounds = append(h.bounds, bound)
		h.counts = append(h.counts, value)
	case "_sum":
		h.sum = &value
	case "_count":
		h.count = &value
	}
}

// exemplar validates the OpenMetrics suffix: `{labels} value [timestamp]`.
func (l *linter) exemplar(n int, s, le string, hasLe bool) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "{") {
		l.errf(n, "exemplar missing label set: %q", s)
		return
	}
	labels, rest, ok := scanLabels(s)
	if !ok {
		l.errf(n, "malformed exemplar labels in %q", s)
		return
	}
	var runes int
	for _, lp := range labels {
		if !validLabelName(lp.name) {
			l.errf(n, "invalid exemplar label name %q", lp.name)
		}
		runes += len(lp.name) + len(lp.value)
	}
	// OpenMetrics caps the exemplar label set at 128 runes total.
	if runes > 128 {
		l.errf(n, "exemplar label set exceeds 128 runes (%d)", runes)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		l.errf(n, "exemplar needs 'value [timestamp]', got %q", rest)
		return
	}
	v, err := parsePromValue(fields[0])
	if err != nil {
		l.errf(n, "bad exemplar value %q: %v", fields[0], err)
		return
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseFloat(fields[1], 64); err != nil {
			l.errf(n, "bad exemplar timestamp %q", fields[1])
		}
	}
	// The exemplar must fall in the bucket it annotates (value <= le).
	if hasLe && le != "+Inf" {
		if bound, err := strconv.ParseFloat(le, 64); err == nil && v > bound {
			l.errf(n, "exemplar value %g exceeds its bucket bound le=%q", v, le)
		}
	}
}

// finish runs the end-of-input histogram invariants.
func (l *linter) finish() {
	keys := make([]string, 0, len(l.hists))
	for k := range l.hists {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		h := l.hists[k]
		if !sort.Float64sAreSorted(h.bounds) {
			l.errf(h.firstLine, "histogram %s has unsorted buckets", k)
		}
		for i := 1; i < len(h.counts); i++ {
			if h.counts[i] < h.counts[i-1] {
				l.errf(h.firstLine, "histogram %s bucket counts are not cumulative", k)
				break
			}
		}
		if !h.hasInf {
			l.errf(h.firstLine, "histogram %s missing +Inf bucket", k)
			continue
		}
		if len(h.counts) > 0 && h.infVal < h.counts[len(h.counts)-1] {
			l.errf(h.firstLine, "histogram %s +Inf bucket below last finite bucket", k)
		}
		if h.count == nil {
			l.errf(h.firstLine, "histogram %s missing _count", k)
		} else if *h.count != h.infVal {
			l.errf(h.firstLine, "histogram %s _count %g != +Inf bucket %g", k, *h.count, h.infVal)
		}
		if h.sum == nil {
			l.errf(h.firstLine, "histogram %s missing _sum", k)
		}
	}
}

type labelPair struct{ name, value string }

func canonicalPairs(pairs []labelPair) string {
	sorted := append([]labelPair(nil), pairs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].name < sorted[j].name })
	parts := make([]string, len(sorted))
	for i, p := range sorted {
		parts[i] = p.name + "=" + p.value
	}
	return strings.Join(parts, ",")
}

// scanMetricName consumes a leading metric name, returning it and the rest.
func scanMetricName(s string) (name, rest string, ok bool) {
	i := 0
	for i < len(s) {
		c := s[i]
		alpha := (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':'
		digit := c >= '0' && c <= '9'
		if !alpha && !(digit && i > 0) {
			break
		}
		i++
	}
	if i == 0 {
		return "", s, false
	}
	return s[:i], s[i:], true
}

// scanLabels consumes a `{k="v",...}` block (handling escaped quotes and
// backslashes inside values), returning the pairs and the rest of the line.
func scanLabels(s string) (pairs []labelPair, rest string, ok bool) {
	if !strings.HasPrefix(s, "{") {
		return nil, s, false
	}
	i := 1
	for {
		// Allow `{}` and trailing commas per the format grammar.
		for i < len(s) && (s[i] == ',' || s[i] == ' ') {
			i++
		}
		if i < len(s) && s[i] == '}' {
			return pairs, s[i+1:], true
		}
		start := i
		for i < len(s) && s[i] != '=' {
			i++
		}
		if i >= len(s) {
			return nil, s, false
		}
		name := s[start:i]
		i++ // '='
		if i >= len(s) || s[i] != '"' {
			return nil, s, false
		}
		i++
		var val strings.Builder
		for i < len(s) && s[i] != '"' {
			if s[i] == '\\' && i+1 < len(s) {
				switch s[i+1] {
				case '\\', '"':
					val.WriteByte(s[i+1])
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, s, false // invalid escape
				}
				i += 2
				continue
			}
			val.WriteByte(s[i])
			i++
		}
		if i >= len(s) {
			return nil, s, false
		}
		i++ // closing '"'
		pairs = append(pairs, labelPair{name: name, value: val.String()})
	}
}

// parsePromValue parses a sample value, accepting the format's +Inf/-Inf/NaN
// spellings.
func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}
