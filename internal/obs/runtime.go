package obs

import (
	"runtime"
	"runtime/metrics"
	"sync"
	"time"
)

// Runtime health collector: a background sampler that publishes the Go
// runtime's vital signs — GC activity, heap size, goroutine count, scheduler
// latency — as gauges and counters on the shared registry. Query-level
// attribution says what one query cost; these series say what the PROCESS is
// doing between queries, which is where GC pauses and scheduler backlog (the
// silent killers of tail latency) show up first.

// Metric names the runtime collector publishes. All labels are bounded: the
// only labeled family is the scheduler-latency quantile gauge with a fixed
// three-value quantile set.
const (
	// MetricRuntimeGoroutines gauges runtime.NumGoroutine.
	MetricRuntimeGoroutines = "accelscore_runtime_goroutines"
	// MetricRuntimeHeapAllocBytes gauges live heap bytes (MemStats.HeapAlloc).
	MetricRuntimeHeapAllocBytes = "accelscore_runtime_heap_alloc_bytes"
	// MetricRuntimeHeapSysBytes gauges heap bytes obtained from the OS.
	MetricRuntimeHeapSysBytes = "accelscore_runtime_heap_sys_bytes"
	// MetricRuntimeHeapObjects gauges live heap objects.
	MetricRuntimeHeapObjects = "accelscore_runtime_heap_objects"
	// MetricRuntimeGCPauseSecondsTotal accumulates stop-the-world pause time.
	MetricRuntimeGCPauseSecondsTotal = "accelscore_runtime_gc_pause_seconds_total"
	// MetricRuntimeGCCyclesTotal accumulates completed GC cycles.
	MetricRuntimeGCCyclesTotal = "accelscore_runtime_gc_cycles_total"
	// MetricRuntimeSchedLatencySeconds gauges approximate scheduler-latency
	// quantiles {quantile="0.5"|"0.9"|"0.99"} over the last sampling interval.
	MetricRuntimeSchedLatencySeconds = "accelscore_runtime_sched_latency_seconds"
)

// schedLatencyName is the runtime/metrics histogram the scheduler-latency
// quantiles derive from.
const schedLatencyName = "/sched/latencies:seconds"

// schedQuantiles is the fixed (bounded) quantile label set.
var schedQuantiles = []float64{0.5, 0.9, 0.99}

// DefaultRuntimeSampleInterval is the collector period when StartRuntimeCollector
// gets interval <= 0.
const DefaultRuntimeSampleInterval = 5 * time.Second

// RuntimeCollector periodically samples the Go runtime into a Registry.
// Start it once per process; Stop it on shutdown.
type RuntimeCollector struct {
	reg      *Registry
	interval time.Duration

	mu            sync.Mutex
	lastPauseNs   uint64
	lastNumGC     uint32
	lastSched     *metrics.Float64Histogram
	samplesCount  uint64
	schedSamples  []metrics.Sample
	stop          chan struct{}
	done          chan struct{}
	startedReally bool
}

// NewRuntimeCollector builds a collector publishing into reg every interval
// (DefaultRuntimeSampleInterval when <= 0). It does not start sampling until
// Start is called; SampleNow works without Start for deterministic tests.
func NewRuntimeCollector(reg *Registry, interval time.Duration) *RuntimeCollector {
	if interval <= 0 {
		interval = DefaultRuntimeSampleInterval
	}
	c := &RuntimeCollector{
		reg:      reg,
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	c.schedSamples = []metrics.Sample{{Name: schedLatencyName}}
	return c
}

// StartRuntimeCollector builds, samples once (so a scrape immediately after
// startup sees populated gauges), and starts a collector.
func StartRuntimeCollector(reg *Registry, interval time.Duration) *RuntimeCollector {
	c := NewRuntimeCollector(reg, interval)
	c.SampleNow()
	c.Start()
	return c
}

// Start launches the background sampling goroutine. Safe to call once.
func (c *RuntimeCollector) Start() {
	if c == nil {
		return
	}
	c.mu.Lock()
	if c.startedReally {
		c.mu.Unlock()
		return
	}
	c.startedReally = true
	c.mu.Unlock()
	go func() {
		defer close(c.done)
		tick := time.NewTicker(c.interval)
		defer tick.Stop()
		for {
			select {
			case <-c.stop:
				return
			case <-tick.C:
				c.SampleNow()
			}
		}
	}()
}

// Stop halts the sampler and waits for the goroutine to exit. Safe on a nil
// collector and idempotent-adjacent (second call panics on closed channel
// only if Start ran; callers stop exactly once on shutdown).
func (c *RuntimeCollector) Stop() {
	if c == nil {
		return
	}
	c.mu.Lock()
	started := c.startedReally
	c.mu.Unlock()
	close(c.stop)
	if started {
		<-c.done
	}
}

// Samples returns how many times the collector has sampled (for tests and
// the /debug surface).
func (c *RuntimeCollector) Samples() uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.samplesCount
}

// SampleNow takes one sample synchronously: gauges are set to current
// values, cumulative pause/cycle counters advance by the delta since the
// previous sample, and scheduler-latency quantiles are computed over the
// histogram delta of the last interval (full history on the first sample).
func (c *RuntimeCollector) SampleNow() {
	if c == nil || c.reg == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()

	c.reg.Gauge(MetricRuntimeGoroutines, "Live goroutines.").
		Set(float64(runtime.NumGoroutine()))

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	c.reg.Gauge(MetricRuntimeHeapAllocBytes, "Live heap bytes.").Set(float64(ms.HeapAlloc))
	c.reg.Gauge(MetricRuntimeHeapSysBytes, "Heap bytes obtained from the OS.").Set(float64(ms.HeapSys))
	c.reg.Gauge(MetricRuntimeHeapObjects, "Live heap objects.").Set(float64(ms.HeapObjects))

	if ms.PauseTotalNs >= c.lastPauseNs {
		delta := ms.PauseTotalNs - c.lastPauseNs
		c.reg.Counter(MetricRuntimeGCPauseSecondsTotal, "Cumulative GC stop-the-world pause time.").
			Add(float64(delta) / 1e9)
	}
	c.lastPauseNs = ms.PauseTotalNs
	if ms.NumGC >= c.lastNumGC {
		c.reg.Counter(MetricRuntimeGCCyclesTotal, "Completed GC cycles.").
			Add(float64(ms.NumGC - c.lastNumGC))
	}
	c.lastNumGC = ms.NumGC

	metrics.Read(c.schedSamples)
	if c.schedSamples[0].Value.Kind() == metrics.KindFloat64Histogram {
		cur := c.schedSamples[0].Value.Float64Histogram()
		for _, q := range schedQuantiles {
			v := histQuantileDelta(cur, c.lastSched, q)
			c.reg.Gauge(MetricRuntimeSchedLatencySeconds,
				"Approximate goroutine scheduling latency quantiles over the last sample interval.",
				"quantile", formatFloat(q)).Set(v)
		}
		c.lastSched = cloneFloat64Histogram(cur)
	}
	c.samplesCount++
}

// cloneFloat64Histogram deep-copies a runtime/metrics histogram so the next
// sample can delta against it (metrics.Read may reuse the buffers).
func cloneFloat64Histogram(h *metrics.Float64Histogram) *metrics.Float64Histogram {
	if h == nil {
		return nil
	}
	return &metrics.Float64Histogram{
		Counts:  append([]uint64(nil), h.Counts...),
		Buckets: append([]float64(nil), h.Buckets...),
	}
}

// histQuantileDelta computes an approximate quantile of cur minus prev
// (element-wise count delta; prev nil means cur as-is), interpolating at the
// upper edge of the bucket where the cumulative share crosses q. Returns 0
// when the delta holds no observations.
func histQuantileDelta(cur, prev *metrics.Float64Histogram, q float64) float64 {
	if cur == nil || len(cur.Counts) == 0 {
		return 0
	}
	deltas := make([]uint64, len(cur.Counts))
	var total uint64
	for i, c := range cur.Counts {
		d := c
		if prev != nil && len(prev.Counts) == len(cur.Counts) && prev.Counts[i] <= c {
			d = c - prev.Counts[i]
		}
		deltas[i] = d
		total += d
	}
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	var run uint64
	for i, d := range deltas {
		run += d
		if run > target {
			// Bucket i spans Buckets[i]..Buckets[i+1]; report its upper edge,
			// clamping the open-ended last bucket to its lower edge.
			hi := i + 1
			if hi >= len(cur.Buckets) {
				hi = len(cur.Buckets) - 1
			}
			v := cur.Buckets[hi]
			if v > 1e300 || v != v { // +Inf upper edge: fall back to lower
				v = cur.Buckets[i]
			}
			return clampFinite(v)
		}
	}
	return clampFinite(cur.Buckets[len(cur.Buckets)-1])
}

// clampFinite maps the histogram's ±Inf edge sentinels to 0 so gauges stay
// finite.
func clampFinite(v float64) float64 {
	if v != v || v > 1e300 || v < 0 {
		return 0
	}
	return v
}
