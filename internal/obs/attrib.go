package obs

import (
	"fmt"
	"runtime/metrics"
	"strconv"
	"time"
)

// Per-query resource attribution.
//
// Latency alone says a P99 spike happened; it cannot say what the query
// COST. Attribution extends every pipeline stage with the three resources
// the paper's overhead argument is really about: CPU time burned on the
// host, bytes and objects allocated on the heap, and bytes moved across the
// offload boundary. The measurements ride on the stage brackets the tracer
// already owns, are amortized across coalesced batches exactly like the
// simulated timelines, and surface in QueryResult, /debug/queries and the
// Chrome trace export — so a single trace answers both "where did the time
// go" and "what did it consume".
//
// Measurement model: CPU time is the executing OS thread's rusage delta
// (the stage loop pins its goroutine with runtime.LockOSThread while
// attribution is on), allocation counters are the runtime's monotonic
// heap-alloc totals sampled via runtime/metrics. Allocation totals are
// process-global, so concurrent queries bleed into each other's numbers —
// the attribution is honest about being a sample, not a ledger, which is
// all the advisor's regime detection needs.

// Names of the runtime/metrics samples CostSample reads. Batched into one
// metrics.Read call so a stage bracket costs two reads total.
var costSampleNames = []string{
	"/gc/heap/allocs:bytes",
	"/gc/heap/allocs:objects",
}

// CostSample is a point-in-time reading of the monotonic resource counters
// attribution is derived from. Subtract two samples to get a StageCost.
type CostSample struct {
	// CPU is the executing OS thread's user+system CPU time.
	CPU time.Duration
	// AllocBytes is the process's cumulative heap-allocated bytes.
	AllocBytes uint64
	// AllocObjects is the process's cumulative heap-allocated objects.
	AllocObjects uint64
}

// ReadCostSample samples the counters. Cheap enough for per-stage brackets:
// one batched runtime/metrics read plus one getrusage syscall.
func ReadCostSample() CostSample {
	samples := make([]metrics.Sample, len(costSampleNames))
	for i, n := range costSampleNames {
		samples[i].Name = n
	}
	metrics.Read(samples)
	s := CostSample{CPU: threadCPUTime()}
	if samples[0].Value.Kind() == metrics.KindUint64 {
		s.AllocBytes = samples[0].Value.Uint64()
	}
	if samples[1].Value.Kind() == metrics.KindUint64 {
		s.AllocObjects = samples[1].Value.Uint64()
	}
	return s
}

// Sub returns the resource cost between an earlier sample and this one.
// Counter wrap (impossible in practice) clamps to zero rather than
// producing absurd deltas.
func (s CostSample) Sub(prev CostSample) StageCost {
	c := StageCost{}
	if s.CPU > prev.CPU {
		c.CPUTime = s.CPU - prev.CPU
	}
	if s.AllocBytes > prev.AllocBytes {
		c.AllocBytes = s.AllocBytes - prev.AllocBytes
	}
	if s.AllocObjects > prev.AllocObjects {
		c.AllocObjects = s.AllocObjects - prev.AllocObjects
	}
	return c
}

// StageCost is the measured resource consumption of one pipeline stage.
type StageCost struct {
	// Stage is the Fig. 11 stage name the cost belongs to.
	Stage string `json:"stage"`
	// CPUTime is OS-thread CPU time (user+system) consumed by the stage.
	CPUTime time.Duration `json:"cpu_ns"`
	// AllocBytes / AllocObjects are heap allocations during the stage
	// (process-global sample; concurrent queries share the counter).
	AllocBytes   uint64 `json:"alloc_bytes"`
	AllocObjects uint64 `json:"alloc_objects"`
	// BytesMoved is the simulated transfer volume charged to the stage
	// (inbound rows+blob or outbound predictions); zero for pure-compute
	// stages.
	BytesMoved int64 `json:"bytes_moved,omitempty"`
}

// Scale returns the cost scaled by share (used for row-proportional
// amortization across a coalesced batch).
func (c StageCost) Scale(share float64) StageCost {
	if share >= 1 {
		return c
	}
	if share < 0 {
		share = 0
	}
	return StageCost{
		Stage:        c.Stage,
		CPUTime:      time.Duration(float64(c.CPUTime) * share),
		AllocBytes:   uint64(float64(c.AllocBytes) * share),
		AllocObjects: uint64(float64(c.AllocObjects) * share),
		BytesMoved:   int64(float64(c.BytesMoved) * share),
	}
}

// Divide returns the cost divided evenly across n batch members (used for
// fixed per-invocation stages).
func (c StageCost) Divide(n int) StageCost {
	if n <= 1 {
		return c
	}
	un := uint64(n)
	return StageCost{
		Stage:        c.Stage,
		CPUTime:      c.CPUTime / time.Duration(n),
		AllocBytes:   c.AllocBytes / un,
		AllocObjects: c.AllocObjects / un,
		BytesMoved:   c.BytesMoved / int64(n),
	}
}

// Attribution is a query's full per-stage resource breakdown, in pipeline
// stage order.
type Attribution []StageCost

// Total sums the per-stage costs.
func (a Attribution) Total() StageCost {
	t := StageCost{Stage: "total"}
	for _, c := range a {
		t.CPUTime += c.CPUTime
		t.AllocBytes += c.AllocBytes
		t.AllocObjects += c.AllocObjects
		t.BytesMoved += c.BytesMoved
	}
	return t
}

// args renders one stage's cost as Chrome trace-event args.
func (c StageCost) args() map[string]string {
	m := map[string]string{
		"cpu_us":        fmt.Sprintf("%.1f", float64(c.CPUTime.Nanoseconds())/1e3),
		"alloc_bytes":   strconv.FormatUint(c.AllocBytes, 10),
		"alloc_objects": strconv.FormatUint(c.AllocObjects, 10),
	}
	if c.BytesMoved != 0 {
		m["bytes_moved"] = strconv.FormatInt(c.BytesMoved, 10)
	}
	return m
}

// ThreadCPUSupported reports whether per-thread CPU-time attribution works
// on this platform (Linux). Elsewhere CPUTime stays zero and allocation
// attribution still functions.
func ThreadCPUSupported() bool { return threadCPUSupported }
