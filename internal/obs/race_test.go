package obs

import (
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"accelscore/internal/sim"
)

// TestRegistryTracerHammer drives the registry and tracer from many
// goroutines at once — instrument creation, updates, exposition, trace
// recording, ring eviction and export all interleaved. Run under -race in
// CI; correctness here is "no race, no panic, totals add up".
func TestRegistryTracerHammer(t *testing.T) {
	const (
		workers = 16
		iters   = 200
	)
	r := NewRegistry()
	tc := NewTracer(32)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			label := fmt.Sprintf("w%d", w%4)
			for i := 0; i < iters; i++ {
				r.Counter("hammer_events_total", "", "worker", label).Inc()
				// Fresh label value every iteration: guarantees family-map
				// inserts keep racing with concurrent WritePrometheus scrapes
				// for the whole run, not just the warm-up iterations.
				r.Counter("hammer_unique_total", "", "id", fmt.Sprintf("w%d_i%d", w, i)).Inc()
				r.Gauge("hammer_depth", "").Set(float64(i))
				r.Histogram("hammer_seconds", "", nil, "worker", label).Observe(float64(i) * 1e-5)

				tr := tc.Start("hammer")
				// Exemplars race exposition: every observation swaps the
				// bucket's exemplar pointer while scrapes render it.
				r.Histogram("hammer_exemplar_seconds", "", nil, "worker", label).
					ObserveExemplar(float64(i)*1e-5, tr.ID())
				end := tr.StartSpan("stage")
				tr.SetAttr("worker", label)
				var tl sim.Timeline
				tl.Add("compute", sim.KindCompute, time.Duration(i)*time.Microsecond)
				tr.AddTimeline("sim", &tl)
				end()
				// Stage costs land while other workers export the ring: the
				// Chrome export must snapshot them under the trace lock.
				tr.SetStageCosts(Attribution{
					{Stage: "stage", CPUTime: time.Duration(i) * time.Microsecond, AllocBytes: uint64(i), AllocObjects: 1},
				})
				tr.Finish()

				if i%50 == 0 {
					if err := r.WritePrometheus(io.Discard); err != nil {
						t.Error(err)
						return
					}
					_ = tc.Recent()
					if err := tc.WriteChromeTrace(io.Discard); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	var total float64
	for _, l := range []string{"w0", "w1", "w2", "w3"} {
		total += r.Counter("hammer_events_total", "", "worker", l).Value()
	}
	if want := float64(workers * iters); total != want {
		t.Fatalf("counter total = %v, want %v", total, want)
	}
	var hcount uint64
	for _, l := range []string{"w0", "w1", "w2", "w3"} {
		hcount += r.Histogram("hammer_seconds", "", nil, "worker", l).Count()
	}
	if want := uint64(workers * iters); hcount != want {
		t.Fatalf("histogram count = %d, want %d", hcount, want)
	}
	if tc.Len() != 32 {
		t.Fatalf("ring = %d, want 32", tc.Len())
	}
}
