package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// SLO engine: per-class latency objectives with rolling good/bad accounting
// and multi-window burn rates. A query is GOOD when it succeeds within its
// class's objective; everything else (too slow or failed) burns error
// budget. The burn rate is the classic SRE ratio — observed bad fraction
// divided by the budget fraction — so 1.0 means "spending budget exactly as
// provisioned" and 14.4 on the 1h window means "the whole 30-day budget gone
// in two days". Loadgen reports goodput (good/total) per class against the
// same objectives.

// Metric names the SLO engine publishes.
const (
	// MetricSLOEventsTotal counts classified queries {class, result="good"|"bad"}.
	MetricSLOEventsTotal = "accelscore_slo_events_total"
	// MetricSLOObjectiveSeconds gauges each class's configured objective {class}.
	MetricSLOObjectiveSeconds = "accelscore_slo_objective_seconds"
	// MetricSLOBurnRate gauges the error-budget burn rate per class and
	// window {class, window="1m"|"5m"|"1h"}.
	MetricSLOBurnRate = "accelscore_slo_burn_rate"
)

// SLOWindows are the burn-rate windows the engine maintains, shortest first.
// Multi-window alerting pairs a short window (fast detection) with a long
// one (sustained-problem confirmation).
var SLOWindows = []time.Duration{time.Minute, 5 * time.Minute, time.Hour}

// DefaultSLOTarget is the availability objective (fraction of queries that
// must be good) when the caller does not override it: 99%.
const DefaultSLOTarget = 0.99

// Objective is one latency class: queries of Class must finish within
// Latency to count as good.
type Objective struct {
	// Class names the query class ("interactive", "batch", ...).
	Class string
	// Latency is the class's latency objective.
	Latency time.Duration
}

// ParseSLOSpec parses a "-slo" flag value: comma-separated class=duration
// pairs, e.g. "interactive=50ms,batch=2s". A bare duration ("100ms") is
// shorthand for default=100ms.
func ParseSLOSpec(spec string) ([]Objective, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var out []Objective
	seen := make(map[string]bool)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		class, val := "default", part
		if i := strings.IndexByte(part, '='); i >= 0 {
			class, val = strings.TrimSpace(part[:i]), strings.TrimSpace(part[i+1:])
		}
		if class == "" {
			return nil, fmt.Errorf("obs: slo spec %q: empty class", part)
		}
		d, err := time.ParseDuration(val)
		if err != nil {
			return nil, fmt.Errorf("obs: slo spec %q: %v", part, err)
		}
		if d <= 0 {
			return nil, fmt.Errorf("obs: slo spec %q: objective must be positive", part)
		}
		if seen[class] {
			return nil, fmt.Errorf("obs: slo spec: duplicate class %q", class)
		}
		seen[class] = true
		out = append(out, Objective{Class: class, Latency: d})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Class < out[j].Class })
	return out, nil
}

// FormatSLOSpec renders objectives back to the flag syntax.
func FormatSLOSpec(objs []Objective) string {
	parts := make([]string, len(objs))
	for i, o := range objs {
		parts[i] = o.Class + "=" + o.Latency.String()
	}
	return strings.Join(parts, ",")
}

// sloRing is a per-second ring of good/bad counts spanning the longest
// burn-rate window.
type sloRing struct {
	good []uint64
	bad  []uint64
	// sec[i] is the unix second slot i currently holds; a slot whose second
	// is stale is implicitly zero.
	sec []int64
}

func newSLORing(span time.Duration) *sloRing {
	n := int(span / time.Second)
	if n < 1 {
		n = 1
	}
	return &sloRing{good: make([]uint64, n), bad: make([]uint64, n), sec: make([]int64, n)}
}

func (r *sloRing) add(nowSec int64, good bool) {
	i := int(nowSec % int64(len(r.sec)))
	if r.sec[i] != nowSec {
		r.sec[i] = nowSec
		r.good[i], r.bad[i] = 0, 0
	}
	if good {
		r.good[i]++
	} else {
		r.bad[i]++
	}
}

// window sums the counts of the last span ending at nowSec.
func (r *sloRing) window(nowSec int64, span time.Duration) (good, bad uint64) {
	n := int64(span / time.Second)
	if n < 1 {
		n = 1
	}
	lo := nowSec - n + 1
	for i, s := range r.sec {
		if s >= lo && s <= nowSec {
			good += r.good[i]
			bad += r.bad[i]
		}
	}
	return good, bad
}

// sloClass is one class's state.
type sloClass struct {
	obj  Objective
	ring *sloRing
	// lifetime totals for goodput reporting.
	good, total uint64
}

// SLOEngine classifies finished queries against per-class latency
// objectives and maintains rolling burn-rate gauges. Safe for concurrent
// use. A nil engine is a no-op, so call sites need no guards.
type SLOEngine struct {
	reg    *Registry
	target float64 // availability objective, e.g. 0.99

	mu      sync.Mutex
	classes map[string]*sloClass
	now     func() time.Time // injectable for tests
}

// NewSLOEngine builds an engine over the given objectives publishing into
// reg (nil reg disables metrics but keeps goodput accounting). target is the
// availability objective; <= 0 or >= 1 uses DefaultSLOTarget.
func NewSLOEngine(reg *Registry, objs []Objective, target float64) *SLOEngine {
	if len(objs) == 0 {
		return nil
	}
	if target <= 0 || target >= 1 {
		target = DefaultSLOTarget
	}
	e := &SLOEngine{
		reg: reg, target: target,
		classes: make(map[string]*sloClass, len(objs)),
		now:     time.Now,
	}
	span := SLOWindows[len(SLOWindows)-1]
	for _, o := range objs {
		e.classes[o.Class] = &sloClass{obj: o, ring: newSLORing(span)}
		if reg != nil {
			reg.Gauge(MetricSLOObjectiveSeconds, "Configured per-class latency objective.",
				"class", o.Class).Set(o.Latency.Seconds())
		}
	}
	return e
}

// Objectives returns the configured objectives, sorted by class.
func (e *SLOEngine) Objectives() []Objective {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Objective, 0, len(e.classes))
	for _, c := range e.classes {
		out = append(out, c.obj)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Class < out[j].Class })
	return out
}

// Classify returns whether a query of class with the given outcome was good.
// Unknown classes fall back to "default" when configured, else the first
// class alphabetically (so a single-objective engine classifies everything).
func (e *SLOEngine) Classify(class string, latency time.Duration, ok bool) bool {
	c := e.lookup(class)
	if c == nil {
		return ok
	}
	return ok && latency <= c.obj.Latency
}

// Observe records one finished query and refreshes the class's burn-rate
// gauges. It returns whether the query was good.
func (e *SLOEngine) Observe(class string, latency time.Duration, ok bool) bool {
	if e == nil {
		return ok
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	c := e.lookupLocked(class)
	if c == nil {
		return ok
	}
	good := ok && latency <= c.obj.Latency
	now := e.now()
	c.ring.add(now.Unix(), good)
	c.total++
	if good {
		c.good++
	}
	if e.reg != nil {
		result := "bad"
		if good {
			result = "good"
		}
		e.reg.Counter(MetricSLOEventsTotal, "Queries classified against their latency objective.",
			"class", c.obj.Class, "result", result).Inc()
		for _, w := range SLOWindows {
			e.reg.Gauge(MetricSLOBurnRate, "Error-budget burn rate by class and window.",
				"class", c.obj.Class, "window", windowLabel(w)).
				Set(e.burnRateLocked(c, now, w))
		}
	}
	return good
}

// BurnRate returns the class's burn rate over the window: the bad fraction
// divided by the error budget (1 - target). 0 when the window is empty.
func (e *SLOEngine) BurnRate(class string, window time.Duration) float64 {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	c := e.lookupLocked(class)
	if c == nil {
		return 0
	}
	return e.burnRateLocked(c, e.now(), window)
}

func (e *SLOEngine) burnRateLocked(c *sloClass, now time.Time, window time.Duration) float64 {
	good, bad := c.ring.window(now.Unix(), window)
	total := good + bad
	if total == 0 {
		return 0
	}
	badFrac := float64(bad) / float64(total)
	budget := 1 - e.target
	return badFrac / budget
}

// ClassReport is one class's lifetime goodput accounting.
type ClassReport struct {
	// Class and Objective echo the configuration.
	Class     string        `json:"class"`
	Objective time.Duration `json:"objective_ns"`
	// Total and Good count observed queries and those within objective.
	Total uint64 `json:"total"`
	Good  uint64 `json:"good"`
	// Goodput is Good/Total (0 when no queries were observed).
	Goodput float64 `json:"goodput"`
}

// Report returns lifetime goodput per class, sorted by class name.
func (e *SLOEngine) Report() []ClassReport {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]ClassReport, 0, len(e.classes))
	for _, c := range e.classes {
		r := ClassReport{Class: c.obj.Class, Objective: c.obj.Latency, Total: c.total, Good: c.good}
		if c.total > 0 {
			r.Goodput = float64(c.good) / float64(c.total)
		}
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Class < out[j].Class })
	return out
}

// Target returns the availability objective.
func (e *SLOEngine) Target() float64 {
	if e == nil {
		return 0
	}
	return e.target
}

// SetNow injects a clock for tests.
func (e *SLOEngine) SetNow(now func() time.Time) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.now = now
}

func (e *SLOEngine) lookup(class string) *sloClass {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.lookupLocked(class)
}

// lookupLocked resolves a class with fallback: exact name, then "default",
// then the only class when exactly one is configured.
func (e *SLOEngine) lookupLocked(class string) *sloClass {
	if c, ok := e.classes[class]; ok {
		return c
	}
	if c, ok := e.classes["default"]; ok {
		return c
	}
	if len(e.classes) == 1 {
		for _, c := range e.classes {
			return c
		}
	}
	return nil
}

// windowLabel renders a burn-rate window as a bounded label value ("1m",
// "5m", "1h").
func windowLabel(w time.Duration) string {
	if w%time.Hour == 0 {
		return fmt.Sprintf("%dh", w/time.Hour)
	}
	if w%time.Minute == 0 {
		return fmt.Sprintf("%dm", w/time.Minute)
	}
	return fmt.Sprintf("%ds", w/time.Second)
}
