package obs

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestReadCostSampleProgresses(t *testing.T) {
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()
	before := ReadCostSample()
	// Allocate something measurable and burn a little CPU.
	sink := make([][]byte, 0, 1024)
	for i := 0; i < 1024; i++ {
		sink = append(sink, make([]byte, 1024))
	}
	_ = sink
	after := ReadCostSample()
	cost := after.Sub(before)
	if cost.AllocBytes < 1024*1024 {
		t.Errorf("AllocBytes = %d, want >= 1 MiB", cost.AllocBytes)
	}
	if cost.AllocObjects == 0 {
		t.Errorf("AllocObjects = 0, want > 0")
	}
	if ThreadCPUSupported() && cost.CPUTime < 0 {
		t.Errorf("CPUTime = %v, want >= 0", cost.CPUTime)
	}
}

func TestCostSampleSubClampsWrap(t *testing.T) {
	a := CostSample{CPU: time.Second, AllocBytes: 100, AllocObjects: 10}
	b := CostSample{CPU: 2 * time.Second, AllocBytes: 50, AllocObjects: 5}
	c := b.Sub(a)
	if c.CPUTime != time.Second {
		t.Errorf("CPUTime = %v, want 1s", c.CPUTime)
	}
	if c.AllocBytes != 0 || c.AllocObjects != 0 {
		t.Errorf("wrapped counters should clamp to 0, got bytes=%d objects=%d", c.AllocBytes, c.AllocObjects)
	}
}

func TestStageCostScaleAndDivide(t *testing.T) {
	c := StageCost{Stage: "s", CPUTime: 100 * time.Millisecond, AllocBytes: 1000, AllocObjects: 100, BytesMoved: 4000}
	half := c.Scale(0.5)
	if half.CPUTime != 50*time.Millisecond || half.AllocBytes != 500 || half.AllocObjects != 50 || half.BytesMoved != 2000 {
		t.Errorf("Scale(0.5) = %+v", half)
	}
	if got := c.Scale(1.5); got != c {
		t.Errorf("Scale(>=1) should be identity, got %+v", got)
	}
	q := c.Divide(4)
	if q.CPUTime != 25*time.Millisecond || q.AllocBytes != 250 || q.AllocObjects != 25 || q.BytesMoved != 1000 {
		t.Errorf("Divide(4) = %+v", q)
	}
	if got := c.Divide(1); got != c {
		t.Errorf("Divide(1) should be identity, got %+v", got)
	}
}

func TestAttributionTotal(t *testing.T) {
	a := Attribution{
		{Stage: "a", CPUTime: time.Millisecond, AllocBytes: 10, AllocObjects: 1, BytesMoved: 100},
		{Stage: "b", CPUTime: 2 * time.Millisecond, AllocBytes: 20, AllocObjects: 2, BytesMoved: 200},
	}
	tot := a.Total()
	if tot.Stage != "total" || tot.CPUTime != 3*time.Millisecond || tot.AllocBytes != 30 ||
		tot.AllocObjects != 3 || tot.BytesMoved != 300 {
		t.Errorf("Total() = %+v", tot)
	}
}

func TestStageCostArgs(t *testing.T) {
	c := StageCost{Stage: "s", CPUTime: 1500 * time.Microsecond, AllocBytes: 42, AllocObjects: 7, BytesMoved: 99}
	args := c.args()
	if args["cpu_us"] != "1500.0" {
		t.Errorf("cpu_us = %q", args["cpu_us"])
	}
	if args["alloc_bytes"] != "42" || args["alloc_objects"] != "7" || args["bytes_moved"] != "99" {
		t.Errorf("args = %v", args)
	}
	if _, ok := (StageCost{Stage: "s"}).args()["bytes_moved"]; ok {
		t.Errorf("zero BytesMoved should omit bytes_moved arg")
	}
}

func TestTraceSetStageCostsSurfacesInChromeArgs(t *testing.T) {
	tr := NewTracer(4).Start("q")
	end := tr.StartSpan("model scoring")
	end()
	tr.SetStageCosts(Attribution{
		{Stage: "model scoring", CPUTime: time.Millisecond, AllocBytes: 123, AllocObjects: 4},
	})
	tr.Finish()
	var sb strings.Builder
	if err := tr.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `"alloc_bytes": "123"`) {
		t.Errorf("chrome export missing attribution args:\n%s", out)
	}
	snap := tr.Snapshot()
	if len(snap.Costs) != 1 || snap.Costs[0].AllocBytes != 123 {
		t.Errorf("snapshot costs = %+v", snap.Costs)
	}
}
