package model

import (
	"testing"

	"accelscore/internal/dataset"
	"accelscore/internal/forest"
)

// FuzzUnmarshal feeds arbitrary bytes to the RFX decoder: it must never
// panic and must reject everything that is not a checksum-valid blob.
// Run with `go test -fuzz=FuzzUnmarshal ./internal/model` for a real
// session; the seed corpus (a valid blob plus mutations) runs as a test.
func FuzzUnmarshal(f *testing.F) {
	tr, err := forest.Train(dataset.Iris(), forest.ForestConfig{
		NumTrees: 2, Tree: forest.TrainConfig{MaxDepth: 4}, Seed: 1,
	})
	if err != nil {
		f.Fatal(err)
	}
	blob, err := Marshal(tr)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	f.Add([]byte{})
	f.Add([]byte("RFX1"))
	f.Add(blob[:len(blob)/2])
	mutated := append([]byte(nil), blob...)
	mutated[len(mutated)/3] ^= 0x55
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Unmarshal(data)
		if err != nil {
			return
		}
		// Anything accepted must be structurally valid and re-marshalable.
		if err := got.Validate(); err != nil {
			t.Fatalf("Unmarshal accepted an invalid forest: %v", err)
		}
		if _, err := Marshal(got); err != nil {
			t.Fatalf("accepted forest cannot re-marshal: %v", err)
		}
	})
}

// FuzzMarshalRoundTrip checks that round-tripping preserves predictions for
// randomly-shaped (but valid) forests derived from fuzz parameters.
func FuzzMarshalRoundTrip(f *testing.F) {
	f.Add(uint8(1), uint8(3), uint64(1))
	f.Add(uint8(4), uint8(8), uint64(9))
	f.Fuzz(func(t *testing.T, treesRaw, depthRaw uint8, seed uint64) {
		trees := int(treesRaw)%5 + 1
		depth := int(depthRaw)%9 + 1
		fr, err := forest.Train(dataset.Iris(), forest.ForestConfig{
			NumTrees:  trees,
			Tree:      forest.TrainConfig{MaxDepth: depth},
			Seed:      seed,
			Bootstrap: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		blob, err := Marshal(fr)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Unmarshal(blob)
		if err != nil {
			t.Fatal(err)
		}
		d := dataset.Iris()
		for i := 0; i < d.NumRecords(); i += 11 {
			if fr.PredictClass(d.Row(i)) != got.PredictClass(d.Row(i)) {
				t.Fatalf("round-trip prediction mismatch on row %d", i)
			}
		}
	})
}
