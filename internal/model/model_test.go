package model

import (
	"testing"
	"testing/quick"

	"accelscore/internal/dataset"
	"accelscore/internal/forest"
)

func trainIris(t testing.TB, trees, depth int, seed uint64) *forest.Forest {
	t.Helper()
	f, err := forest.Train(dataset.Iris(), forest.ForestConfig{
		NumTrees:  trees,
		Tree:      forest.TrainConfig{MaxDepth: depth},
		Seed:      seed,
		Bootstrap: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestMarshalRoundTrip(t *testing.T) {
	f := trainIris(t, 8, 10, 1)
	blob, err := Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumFeatures != f.NumFeatures || got.NumClasses != f.NumClasses ||
		len(got.Trees) != len(f.Trees) || got.Kind != f.Kind {
		t.Fatalf("round-trip schema mismatch: %+v", got)
	}
	if got.FeatureNames[2] != "petal_length" || got.ClassNames[1] != "versicolor" {
		t.Fatalf("names lost: %v %v", got.FeatureNames, got.ClassNames)
	}
	// Predictions identical on every row.
	d := dataset.Iris()
	for i := 0; i < d.NumRecords(); i++ {
		if f.PredictClass(d.Row(i)) != got.PredictClass(d.Row(i)) {
			t.Fatalf("prediction mismatch on row %d after round-trip", i)
		}
	}
}

func TestMarshalRoundTripProperty(t *testing.T) {
	d := dataset.Iris()
	check := func(seed uint8, treesRaw, depthRaw uint8) bool {
		trees := int(treesRaw)%6 + 1
		depth := int(depthRaw)%8 + 2
		f, err := forest.Train(d, forest.ForestConfig{
			NumTrees:  trees,
			Tree:      forest.TrainConfig{MaxDepth: depth},
			Seed:      uint64(seed),
			Bootstrap: true,
		})
		if err != nil {
			return false
		}
		blob, err := Marshal(f)
		if err != nil {
			return false
		}
		got, err := Unmarshal(blob)
		if err != nil {
			return false
		}
		for i := 0; i < d.NumRecords(); i += 7 {
			if f.PredictClass(d.Row(i)) != got.PredictClass(d.Row(i)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	f := trainIris(t, 2, 4, 2)
	blob, err := Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte anywhere in the body: the CRC must catch it.
	for _, pos := range []int{0, 5, len(blob) / 2, len(blob) - 5} {
		bad := append([]byte(nil), blob...)
		bad[pos] ^= 0xFF
		if _, err := Unmarshal(bad); err == nil {
			t.Fatalf("corruption at byte %d not detected", pos)
		}
	}
	// Truncation.
	if _, err := Unmarshal(blob[:len(blob)-10]); err == nil {
		t.Fatal("truncated blob accepted")
	}
	if _, err := Unmarshal(nil); err == nil {
		t.Fatal("nil blob accepted")
	}
}

func TestUnmarshalRejectsBadMagic(t *testing.T) {
	f := trainIris(t, 1, 3, 3)
	blob, _ := Marshal(f)
	blob[0] = 'Z'
	// Re-fix the CRC so only the magic check can fail... simpler: corrupt
	// magic means CRC fails first, which is also a rejection. Either way
	// the blob must be refused.
	if _, err := Unmarshal(blob); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestBlobSizeScalesWithModel(t *testing.T) {
	small, _ := Marshal(trainIris(t, 1, 4, 4))
	large, _ := Marshal(trainIris(t, 16, 10, 4))
	if len(large) <= len(small) {
		t.Fatalf("blob sizes: 16-tree %d <= 1-tree %d", len(large), len(small))
	}
}

func TestCompileDenseAndPredict(t *testing.T) {
	f := trainIris(t, 8, 10, 5)
	dn, err := CompileDense(f, 10)
	if err != nil {
		t.Fatal(err)
	}
	if dn.WordsPerTree != 1024 {
		t.Fatalf("WordsPerTree = %d, want 2^10", dn.WordsPerTree)
	}
	if dn.SizeBytes() != int64(8*1024*DenseNodeBytes) {
		t.Fatalf("SizeBytes = %d", dn.SizeBytes())
	}
	d := dataset.Iris()
	for i := 0; i < d.NumRecords(); i++ {
		row := d.Row(i)
		if got, want := dn.Predict(row), f.PredictClass(row); got != want {
			t.Fatalf("dense predict %d != forest %d on row %d", got, want, i)
		}
	}
}

func TestCompileDensePerTreeAgreement(t *testing.T) {
	f := trainIris(t, 4, 8, 6)
	dn, err := CompileDense(f, 8)
	if err != nil {
		t.Fatal(err)
	}
	d := dataset.Iris()
	for ti, tr := range f.Trees {
		for i := 0; i < d.NumRecords(); i += 3 {
			row := d.Row(i)
			if got, want := dn.TreePredict(ti, row), tr.PredictClass(row); got != want {
				t.Fatalf("tree %d row %d: dense %d != pointer %d", ti, i, got, want)
			}
		}
	}
}

func TestCompileDenseRejectsDeepTrees(t *testing.T) {
	f := trainIris(t, 1, 10, 7)
	depth := f.Trees[0].Depth()
	if depth < 2 {
		t.Skip("tree too shallow to test rejection")
	}
	if _, err := CompileDense(f, depth-1); err == nil {
		t.Fatal("tree deeper than layout levels accepted")
	}
}

func TestCompileDenseRejectsRegressor(t *testing.T) {
	f, err := forest.Train(dataset.Iris(), forest.ForestConfig{
		NumTrees: 2, Kind: forest.Regressor, Tree: forest.TrainConfig{MaxDepth: 4}, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CompileDense(f, 10); err == nil {
		t.Fatal("regressor accepted by dense compiler")
	}
}

func TestCompileDenseLevelBounds(t *testing.T) {
	f := trainIris(t, 1, 3, 9)
	if _, err := CompileDense(f, 0); err == nil {
		t.Fatal("levels=0 accepted")
	}
	if _, err := CompileDense(f, 31); err == nil {
		t.Fatal("levels=31 accepted")
	}
}

func TestLeafRefEncoding(t *testing.T) {
	for c := 0; c < 100; c++ {
		ref := EncodeLeafRef(c)
		if ref >= 0 {
			t.Fatalf("leaf ref for class %d is non-negative: %d", c, ref)
		}
		if got := DecodeLeafRef(ref); got != c {
			t.Fatalf("leaf ref round-trip: %d -> %d -> %d", c, ref, got)
		}
	}
}

func TestDenseHiggsAgreement(t *testing.T) {
	d := dataset.Higgs(2000, 3)
	f, err := forest.Train(d, forest.ForestConfig{
		NumTrees:  6,
		Tree:      forest.TrainConfig{MaxDepth: 10},
		Seed:      10,
		Bootstrap: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	dn, err := CompileDense(f, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < d.NumRecords(); i += 17 {
		row := d.Row(i)
		if dn.Predict(row) != f.PredictClass(row) {
			t.Fatalf("dense/forest disagreement on HIGGS row %d", i)
		}
	}
}

func TestTreeSlice(t *testing.T) {
	f := trainIris(t, 3, 6, 11)
	dn, err := CompileDense(f, 6)
	if err != nil {
		t.Fatal(err)
	}
	for ti := 0; ti < 3; ti++ {
		s := dn.TreeSlice(ti)
		if len(s) != 64 {
			t.Fatalf("TreeSlice(%d) length %d, want 64", ti, len(s))
		}
	}
}

func BenchmarkMarshal128Trees(b *testing.B) {
	f := trainIris(b, 128, 10, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Marshal(f); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnmarshal128Trees(b *testing.B) {
	blob, err := Marshal(trainIris(b, 128, 10, 1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(blob); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDensePredict(b *testing.B) {
	f := trainIris(b, 128, 10, 1)
	dn, err := CompileDense(f, 10)
	if err != nil {
		b.Fatal(err)
	}
	row := dataset.Iris().Row(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dn.Predict(row)
	}
}
