// Package model implements the serialized model format and the dense node
// layout used by the accelerator backends.
//
// The paper stores models "in serialized binary form, in either an
// off-the-shelf or custom format" inside database tables (§II) and
// deserializes them during model pre-processing. RFX is this project's
// custom binary format — the stand-in for the ONNX blobs in the paper. It is
// self-describing, versioned, CRC-protected, and round-trips a forest
// exactly.
//
// The dense layout (dense.go) is the Fig. 4b four-field node memory layout
// the FPGA's tree memories hold.
package model

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"accelscore/internal/forest"
)

// Magic identifies RFX blobs.
var Magic = [4]byte{'R', 'F', 'X', '1'}

// Version is the current format version.
const Version uint16 = 1

const (
	flagLeaf byte = 1 << 0
)

// Marshal serializes a forest to the RFX binary format.
func Marshal(f *forest.Forest) ([]byte, error) {
	if err := f.Validate(); err != nil {
		return nil, fmt.Errorf("model: refusing to marshal invalid forest: %w", err)
	}
	var buf bytes.Buffer
	buf.Write(Magic[:])
	writeU16(&buf, Version)
	buf.WriteByte(byte(f.Kind))
	writeF64(&buf, f.BaseScore)
	writeU32(&buf, uint32(f.NumFeatures))
	writeU32(&buf, uint32(f.NumClasses))
	writeU32(&buf, uint32(len(f.Trees)))
	writeStrings(&buf, f.FeatureNames)
	writeStrings(&buf, f.ClassNames)
	for _, t := range f.Trees {
		writeU32(&buf, uint32(t.NodeCount()))
		writeNode(&buf, t.Root)
	}
	sum := crc32.ChecksumIEEE(buf.Bytes())
	writeU32(&buf, sum)
	return buf.Bytes(), nil
}

func writeNode(buf *bytes.Buffer, n *forest.Node) {
	var flags byte
	if n.IsLeaf() {
		flags |= flagLeaf
	}
	buf.WriteByte(flags)
	if !n.IsLeaf() {
		writeU32(buf, uint32(n.Feature))
		writeF32(buf, n.Threshold)
	}
	writeU32(buf, uint32(n.Class))
	writeF64(buf, n.Value)
	writeU32(buf, uint32(n.Samples))
	if !n.IsLeaf() {
		writeNode(buf, n.Left)
		writeNode(buf, n.Right)
	}
}

// Unmarshal parses an RFX blob back into a forest, verifying the checksum
// and every structural bound.
func Unmarshal(blob []byte) (*forest.Forest, error) {
	if len(blob) < len(Magic)+2+1+4+4+4+4 {
		return nil, fmt.Errorf("model: blob too short (%d bytes)", len(blob))
	}
	body, tail := blob[:len(blob)-4], blob[len(blob)-4:]
	if got, want := binary.LittleEndian.Uint32(tail), crc32.ChecksumIEEE(body); got != want {
		return nil, fmt.Errorf("model: checksum mismatch: stored %08x, computed %08x", got, want)
	}
	r := &reader{data: body}
	var magic [4]byte
	r.bytes(magic[:])
	if magic != Magic {
		return nil, fmt.Errorf("model: bad magic %q", magic)
	}
	if v := r.u16(); v != Version {
		return nil, fmt.Errorf("model: unsupported version %d", v)
	}
	kind := forest.Kind(r.byte())
	if kind != forest.Classifier && kind != forest.Regressor && kind != forest.Boosted {
		return nil, fmt.Errorf("model: unknown kind %d", kind)
	}
	baseScore := r.f64()
	nFeatures := int(r.u32())
	nClasses := int(r.u32())
	nTrees := int(r.u32())
	const maxSane = 1 << 24
	if nFeatures <= 0 || nFeatures > maxSane || nClasses < 0 || nClasses > maxSane || nTrees <= 0 || nTrees > maxSane {
		return nil, fmt.Errorf("model: implausible header: features=%d classes=%d trees=%d", nFeatures, nClasses, nTrees)
	}
	featureNames, err := r.strings()
	if err != nil {
		return nil, err
	}
	classNames, err := r.strings()
	if err != nil {
		return nil, err
	}
	f := &forest.Forest{
		Kind:         kind,
		NumFeatures:  nFeatures,
		NumClasses:   nClasses,
		FeatureNames: featureNames,
		ClassNames:   classNames,
		BaseScore:    baseScore,
	}
	for t := 0; t < nTrees; t++ {
		count := int(r.u32())
		if count <= 0 || count > maxSane {
			return nil, fmt.Errorf("model: tree %d has implausible node count %d", t, count)
		}
		root, err := readNode(r, &count)
		if err != nil {
			return nil, fmt.Errorf("model: tree %d: %w", t, err)
		}
		if count != 0 {
			return nil, fmt.Errorf("model: tree %d: %d trailing node records", t, count)
		}
		f.Trees = append(f.Trees, &forest.Tree{Root: root, NumFeatures: nFeatures, NumClasses: nClasses})
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.pos != len(r.data) {
		return nil, fmt.Errorf("model: %d trailing bytes", len(r.data)-r.pos)
	}
	if err := f.Validate(); err != nil {
		return nil, fmt.Errorf("model: deserialized forest invalid: %w", err)
	}
	return f, nil
}

func readNode(r *reader, budget *int) (*forest.Node, error) {
	if *budget <= 0 {
		return nil, fmt.Errorf("node budget exhausted")
	}
	*budget--
	flags := r.byte()
	n := &forest.Node{}
	leaf := flags&flagLeaf != 0
	if !leaf {
		n.Feature = int(r.u32())
		n.Threshold = r.f32()
	}
	n.Class = int(r.u32())
	n.Value = r.f64()
	n.Samples = int(r.u32())
	if r.err != nil {
		return nil, r.err
	}
	if !leaf {
		var err error
		if n.Left, err = readNode(r, budget); err != nil {
			return nil, err
		}
		if n.Right, err = readNode(r, budget); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// --- primitive encoding helpers ---

func writeU16(buf *bytes.Buffer, v uint16) {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	buf.Write(b[:])
}

func writeU32(buf *bytes.Buffer, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	buf.Write(b[:])
}

func writeF32(buf *bytes.Buffer, v float32) {
	writeU32(buf, math.Float32bits(v))
}

func writeF64(buf *bytes.Buffer, v float64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	buf.Write(b[:])
}

func writeStrings(buf *bytes.Buffer, ss []string) {
	writeU32(buf, uint32(len(ss)))
	for _, s := range ss {
		writeU16(buf, uint16(len(s)))
		buf.WriteString(s)
	}
}

// reader is a bounds-checked little-endian cursor; the first failure sticks.
type reader struct {
	data []byte
	pos  int
	err  error
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.pos+n > len(r.data) {
		r.err = fmt.Errorf("model: truncated blob at offset %d (need %d bytes)", r.pos, n)
		return nil
	}
	b := r.data[r.pos : r.pos+n]
	r.pos += n
	return b
}

func (r *reader) bytes(dst []byte) {
	if b := r.take(len(dst)); b != nil {
		copy(dst, b)
	}
}

func (r *reader) byte() byte {
	if b := r.take(1); b != nil {
		return b[0]
	}
	return 0
}

func (r *reader) u16() uint16 {
	if b := r.take(2); b != nil {
		return binary.LittleEndian.Uint16(b)
	}
	return 0
}

func (r *reader) u32() uint32 {
	if b := r.take(4); b != nil {
		return binary.LittleEndian.Uint32(b)
	}
	return 0
}

func (r *reader) f32() float32 {
	return math.Float32frombits(r.u32())
}

func (r *reader) f64() float64 {
	if b := r.take(8); b != nil {
		return math.Float64frombits(binary.LittleEndian.Uint64(b))
	}
	return 0
}

func (r *reader) strings() ([]string, error) {
	n := int(r.u32())
	if r.err != nil {
		return nil, r.err
	}
	if n < 0 || n > 1<<20 {
		return nil, fmt.Errorf("model: implausible string count %d", n)
	}
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		l := int(r.u16())
		b := r.take(l)
		if r.err != nil {
			return nil, r.err
		}
		out = append(out, string(b))
	}
	return out, nil
}

// ApproxNodeBytes is the approximate per-node footprint of the RFX encoding
// (flags + feature + threshold + class + value + samples, averaged over
// leaf and decision nodes); experiment harnesses use it to size hypothetical
// model blobs without training them.
const ApproxNodeBytes = 21
