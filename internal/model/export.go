package model

import (
	"fmt"
	"io"
	"strings"

	"accelscore/internal/forest"
)

// WriteDot renders one tree of a forest in Graphviz dot format, the
// debugging/visualization aid for inspecting trained or deserialized models.
// Decision nodes show "feature < threshold"; leaves show the class name.
func WriteDot(w io.Writer, f *forest.Forest, treeIndex int) error {
	if treeIndex < 0 || treeIndex >= len(f.Trees) {
		return fmt.Errorf("model: tree index %d out of range [0,%d)", treeIndex, len(f.Trees))
	}
	t := f.Trees[treeIndex]
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph tree%d {\n", treeIndex)
	sb.WriteString("  node [shape=box, fontname=\"monospace\"];\n")
	id := 0
	var emit func(n *forest.Node) int
	emit = func(n *forest.Node) int {
		my := id
		id++
		if n.IsLeaf() {
			label := fmt.Sprintf("class %d", n.Class)
			if n.Class < len(f.ClassNames) {
				label = f.ClassNames[n.Class]
			}
			fmt.Fprintf(&sb, "  n%d [label=\"%s\\nsamples=%d\", style=filled, fillcolor=lightgrey];\n",
				my, escapeDot(label), n.Samples)
			return my
		}
		feat := fmt.Sprintf("x[%d]", n.Feature)
		if n.Feature < len(f.FeatureNames) {
			feat = f.FeatureNames[n.Feature]
		}
		fmt.Fprintf(&sb, "  n%d [label=\"%s < %g\\nsamples=%d\"];\n",
			my, escapeDot(feat), n.Threshold, n.Samples)
		l := emit(n.Left)
		r := emit(n.Right)
		fmt.Fprintf(&sb, "  n%d -> n%d [label=\"yes\"];\n", my, l)
		fmt.Fprintf(&sb, "  n%d -> n%d [label=\"no\"];\n", my, r)
		return my
	}
	emit(t.Root)
	sb.WriteString("}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// escapeDot escapes quotes and backslashes for dot string labels.
func escapeDot(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// Summary returns a one-line human description of a forest, used by the
// CLI tools and the DB shell.
func Summary(f *forest.Forest) string {
	s := struct {
		trees, nodes, depth int
	}{}
	for _, t := range f.Trees {
		s.trees++
		s.nodes += t.NodeCount()
		if d := t.Depth(); d > s.depth {
			s.depth = d
		}
	}
	return fmt.Sprintf("%s: %d trees, max depth %d, %d nodes, %d features, %d classes",
		f.Kind, s.trees, s.depth, s.nodes, f.NumFeatures, f.NumClasses)
}
