package model

import (
	"strings"
	"testing"
)

func TestWriteDot(t *testing.T) {
	f := trainIris(t, 2, 4, 21)
	var sb strings.Builder
	if err := WriteDot(&sb, f, 0); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"digraph tree0", "petal", "->", "setosa"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dot output missing %q:\n%s", want, out)
		}
	}
	// Balanced braces and a closing newline.
	if strings.Count(out, "{") != strings.Count(out, "}") {
		t.Fatal("unbalanced braces")
	}
	// Edge count = node count - 1 for a tree. Edges also carry [label=...]
	// attributes, so node definitions = label occurrences minus edges.
	edges := strings.Count(out, "->")
	nodes := strings.Count(out, "[label=") - edges
	if edges != nodes-1 {
		t.Fatalf("%d nodes but %d edges", nodes, edges)
	}
}

func TestWriteDotBounds(t *testing.T) {
	f := trainIris(t, 1, 3, 22)
	var sb strings.Builder
	if err := WriteDot(&sb, f, 1); err == nil {
		t.Fatal("out-of-range tree index accepted")
	}
	if err := WriteDot(&sb, f, -1); err == nil {
		t.Fatal("negative tree index accepted")
	}
}

func TestEscapeDot(t *testing.T) {
	if got := escapeDot(`a"b\c`); got != `a\"b\\c` {
		t.Fatalf("escapeDot = %q", got)
	}
}

func TestSummary(t *testing.T) {
	f := trainIris(t, 3, 5, 23)
	s := Summary(f)
	for _, want := range []string{"classifier", "3 trees", "4 features", "3 classes"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary %q missing %q", s, want)
		}
	}
}
