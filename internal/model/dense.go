package model

import (
	"fmt"

	"accelscore/internal/forest"
)

// DenseNode is one node word in the Fig. 4b memory layout: four 32-bit
// fields. For a decision node the fields are (left, right, attribute,
// threshold). A negative first field marks a leaf whose class id is encoded
// as -(class+1); child links may also be negative, encoding "virtual leaf"
// classes directly so that a depth-d tree needs only its d decision levels
// in memory — this is how the paper fits a "10 level deep" tree in 2^10
// words (§III-B).
type DenseNode struct {
	// Left is the left-child node index, or -(class+1) when this node is a
	// leaf (then no other field is meaningful) or when the left child is a
	// leaf at the level below the stored levels.
	Left int32
	// Right is the right-child node index or a -(class+1) virtual leaf.
	Right int32
	// Attr is the comparison attribute (feature index).
	Attr int32
	// Threshold is the comparison value; inputs with x[Attr] < Threshold go
	// left.
	Threshold float32
}

// DenseNodeBytes is the storage of one node word: four 32-bit fields,
// matching hw.FPGASpec.NodeWordBytes.
const DenseNodeBytes = 16

// EncodeLeafRef encodes a class id as a negative node reference.
func EncodeLeafRef(class int) int32 { return -int32(class) - 1 }

// DecodeLeafRef recovers the class id from a negative node reference.
func DecodeLeafRef(ref int32) int { return int(-ref - 1) }

// Dense is a forest compiled to the flat full-binary-tree layout used by the
// FPGA tree memories. Trees are stored consecutively, each padded to
// WordsPerTree node words ("our memory layout assumes a full binary tree
// with no missing nodes", §III-B).
type Dense struct {
	// Trees is the ensemble size.
	Trees int
	// Levels is the number of stored decision levels; the layout supports
	// evaluating trees up to edge-depth Levels.
	Levels int
	// WordsPerTree is 2^Levels: the padded per-tree footprint.
	WordsPerTree int
	// Nodes holds Trees*WordsPerTree node words.
	Nodes []DenseNode
	// NumFeatures and NumClasses record the model schema.
	NumFeatures, NumClasses int
}

// CompileDense lowers a classifier forest into the dense layout with the
// given number of decision levels. Every tree must have edge-depth <=
// levels; deeper trees are rejected (the FPGA cannot process them — §III-B —
// use the hybrid CPU fallback instead).
func CompileDense(f *forest.Forest, levels int) (*Dense, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	if f.Kind != forest.Classifier {
		return nil, fmt.Errorf("model: dense layout supports classifiers only (got %s)", f.Kind)
	}
	if levels < 1 || levels > 30 {
		return nil, fmt.Errorf("model: levels %d out of range [1,30]", levels)
	}
	words := 1 << uint(levels)
	d := &Dense{
		Trees:        len(f.Trees),
		Levels:       levels,
		WordsPerTree: words,
		Nodes:        make([]DenseNode, len(f.Trees)*words),
		NumFeatures:  f.NumFeatures,
		NumClasses:   f.NumClasses,
	}
	for t, tree := range f.Trees {
		if depth := tree.Depth(); depth > levels {
			return nil, fmt.Errorf("model: tree %d depth %d exceeds %d levels", t, depth, levels)
		}
		base := t * words
		// Pad every slot with an inert leaf so unreachable words are valid.
		for i := 0; i < words; i++ {
			d.Nodes[base+i] = DenseNode{Left: EncodeLeafRef(0)}
		}
		if err := d.place(tree.Root, base, 0, 0, levels); err != nil {
			return nil, fmt.Errorf("model: tree %d: %w", t, err)
		}
	}
	return d, nil
}

// place writes node n at heap slot idx (tree-local), recursing to children.
// Children of a node at slot i live at 2i+1 and 2i+2; children that would
// fall below the stored levels must be leaves and are encoded as virtual
// leaf references in the parent word.
func (d *Dense) place(n *forest.Node, base, idx, depth, levels int) error {
	if n.IsLeaf() {
		d.Nodes[base+idx] = DenseNode{Left: EncodeLeafRef(n.Class)}
		return nil
	}
	word := DenseNode{Attr: int32(n.Feature), Threshold: n.Threshold}
	leftIdx, rightIdx := 2*idx+1, 2*idx+2
	if depth == levels-1 {
		// Children are below the stored levels: they must be leaves.
		if !n.Left.IsLeaf() || !n.Right.IsLeaf() {
			return fmt.Errorf("non-leaf child at level %d (tree deeper than %d levels)", depth+1, levels)
		}
		word.Left = EncodeLeafRef(n.Left.Class)
		word.Right = EncodeLeafRef(n.Right.Class)
		d.Nodes[base+idx] = word
		return nil
	}
	word.Left = int32(leftIdx)
	word.Right = int32(rightIdx)
	d.Nodes[base+idx] = word
	if err := d.place(n.Left, base, leftIdx, depth+1, levels); err != nil {
		return err
	}
	return d.place(n.Right, base, rightIdx, depth+1, levels)
}

// TreePredict evaluates tree t on one row and returns the class id, walking
// the node words exactly as an FPGA PE does.
func (d *Dense) TreePredict(t int, row []float32) int {
	base := t * d.WordsPerTree
	return WalkNodes(d.Nodes[base:base+d.WordsPerTree], row)
}

// WalkNodes evaluates one tree's node-word memory (as loaded into a PE tree
// memory) for a single input row and returns the class id.
func WalkNodes(nodes []DenseNode, row []float32) int {
	node := nodes[0]
	for {
		// Leaf words have a negative first field (§III-B) and a zero right
		// field — a decision node's right child index can never be 0 (slot 0
		// is the root) and a virtual right leaf is negative, so the pair is
		// unambiguous.
		if node.Left < 0 && node.Right == 0 {
			return DecodeLeafRef(node.Left)
		}
		var next int32
		if row[node.Attr] < node.Threshold {
			next = node.Left
		} else {
			next = node.Right
		}
		if next < 0 {
			return DecodeLeafRef(next)
		}
		node = nodes[next]
	}
}

// Predict evaluates all trees on one row and majority-votes the result.
func (d *Dense) Predict(row []float32) int {
	votes := make([]int, d.NumClasses)
	for t := 0; t < d.Trees; t++ {
		votes[d.TreePredict(t, row)]++
	}
	return forest.Argmax(votes)
}

// SizeBytes is the total tree-memory footprint, the quantity transferred to
// the FPGA and checked against its BRAM budget.
func (d *Dense) SizeBytes() int64 {
	return int64(len(d.Nodes)) * DenseNodeBytes
}

// TreeSlice returns the node words of tree t.
func (d *Dense) TreeSlice(t int) []DenseNode {
	base := t * d.WordsPerTree
	return d.Nodes[base : base+d.WordsPerTree]
}
