package sched

import (
	"fmt"
	"sort"
	"time"
)

// ScatterConfig parameterizes a scatter-gather scale-out simulation: a
// closed-loop client population issuing queries through a router that
// splits each query into one hash partition per shard, with per-shard FIFO
// service and a gather barrier. It predicts the scaling the serving tier
// should achieve if the only costs were the calibrated per-shard service
// times plus a fixed router overhead — the curve `loadgen -bench-scaleout`
// prints next to its measurements so the gap (stragglers, HTTP, merge) is
// visible.
type ScatterConfig struct {
	// Shards is the replica count (>= 1).
	Shards int
	// Queries is how many queries the closed loop issues.
	Queries int
	// Concurrency is the closed-loop client population (outstanding
	// queries); 0 defaults to Shards, enough to saturate every shard.
	Concurrency int
	// Records is each query's total record count; partitions split it
	// evenly with the remainder spread over the low partitions (the
	// expectation of the FNV hash split).
	Records int64
	// Service returns the simulated service time for a sub-query scoring
	// records rows on one shard (typically pipeline.Estimate over the
	// bench's model stats and backend).
	Service func(records int64) (time.Duration, error)
	// Overhead is the fixed per-sub-query cost occupying the shard on top
	// of its service time: request parsing, HTTP handling, response
	// serialization. It is paid once per shard per query, so it does NOT
	// shrink as the scatter widens — the tier's analogue of the paper's
	// unamortized invocation overheads.
	Overhead time.Duration
}

// ScatterMetrics aggregates one scatter simulation.
type ScatterMetrics struct {
	Shards   int
	Queries  int
	Makespan time.Duration
	// Throughput is queries per second over the makespan.
	Throughput float64
	// MeanLatency, P50, P99 summarize query response times (scatter to
	// gather).
	MeanLatency, P50, P99 time.Duration
	// MeanStragglerGap and MaxStragglerGap summarize, per query, the gap
	// between its slowest and fastest sub-query finish — the gather
	// barrier's tax.
	MeanStragglerGap, MaxStragglerGap time.Duration
	// ShardBusy is total service time per shard (utilization numerator).
	ShardBusy []time.Duration
}

// Utilization returns shard k's busy fraction of the makespan.
func (m ScatterMetrics) Utilization(k int) float64 {
	if m.Makespan <= 0 {
		return 0
	}
	return float64(m.ShardBusy[k]) / float64(m.Makespan)
}

// PartitionRecords returns how many of total records land in partition k of
// n under an even hash split: the base share plus one for the low
// partitions that absorb the remainder.
func PartitionRecords(k, n int, total int64) int64 {
	base := total / int64(n)
	if int64(k) < total%int64(n) {
		base++
	}
	return base
}

// SimulateScatter runs the closed-loop scatter-gather model: Concurrency
// clients each issue a query, the router fans one sub-query per shard, each
// shard serves its FIFO queue one sub-query at a time, and the query
// completes when its slowest sub-query finishes (gather barrier). The
// client then immediately issues the next query. Deterministic.
func SimulateScatter(cfg ScatterConfig) (ScatterMetrics, error) {
	if cfg.Shards < 1 {
		return ScatterMetrics{}, fmt.Errorf("sched: scatter needs >= 1 shard, got %d", cfg.Shards)
	}
	if cfg.Queries < 1 {
		return ScatterMetrics{}, fmt.Errorf("sched: scatter needs >= 1 query, got %d", cfg.Queries)
	}
	if cfg.Records < 1 {
		return ScatterMetrics{}, fmt.Errorf("sched: scatter needs >= 1 record, got %d", cfg.Records)
	}
	if cfg.Service == nil {
		return ScatterMetrics{}, fmt.Errorf("sched: scatter needs a Service function")
	}
	clients := cfg.Concurrency
	if clients <= 0 {
		clients = cfg.Shards
	}

	// Per-partition service times are identical across queries, so compute
	// them once.
	service := make([]time.Duration, cfg.Shards)
	for k := range service {
		rec := PartitionRecords(k, cfg.Shards, cfg.Records)
		s, err := cfg.Service(rec)
		if err != nil {
			return ScatterMetrics{}, fmt.Errorf("sched: scatter service for partition %d: %w", k, err)
		}
		if s < 0 {
			return ScatterMetrics{}, fmt.Errorf("sched: negative service time for partition %d", k)
		}
		service[k] = s
	}

	m := ScatterMetrics{
		Shards:    cfg.Shards,
		Queries:   cfg.Queries,
		ShardBusy: make([]time.Duration, cfg.Shards),
	}
	shardFree := make([]time.Duration, cfg.Shards)
	clientFree := make([]time.Duration, clients)
	latencies := make([]time.Duration, 0, cfg.Queries)
	var latSum, gapSum time.Duration

	for q := 0; q < cfg.Queries; q++ {
		// The next query comes from the first client to go idle.
		c := 0
		for i := 1; i < clients; i++ {
			if clientFree[i] < clientFree[c] {
				c = i
			}
		}
		issue := clientFree[c]
		var first, last time.Duration
		for k := 0; k < cfg.Shards; k++ {
			start := issue
			if shardFree[k] > start {
				start = shardFree[k]
			}
			occupancy := service[k] + cfg.Overhead
			finish := start + occupancy
			shardFree[k] = finish
			m.ShardBusy[k] += occupancy
			if k == 0 || finish < first {
				first = finish
			}
			if finish > last {
				last = finish
			}
		}
		gather := last
		gap := last - first
		gapSum += gap
		if gap > m.MaxStragglerGap {
			m.MaxStragglerGap = gap
		}
		lat := gather - issue
		latencies = append(latencies, lat)
		latSum += lat
		clientFree[c] = gather
		if gather > m.Makespan {
			m.Makespan = gather
		}
	}

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	n := len(latencies)
	m.MeanLatency = latSum / time.Duration(n)
	m.P50 = latencies[n/2]
	m.P99 = latencies[(n*99)/100]
	m.MeanStragglerGap = gapSum / time.Duration(n)
	if m.Makespan > 0 {
		m.Throughput = float64(cfg.Queries) / m.Makespan.Seconds()
	}
	return m, nil
}

// ScatterPoint is one shard count on a predicted scaling curve.
type ScatterPoint struct {
	Shards int
	// Throughput is predicted queries/second at this width.
	Throughput float64
	// Speedup is Throughput relative to the 1-shard point.
	Speedup float64
	// MeanLatency and MeanStragglerGap carry the latency side of the
	// trade: wider scatter means lower per-query latency but a growing
	// barrier tax.
	MeanLatency      time.Duration
	MeanStragglerGap time.Duration
}

// ScatterCurve sweeps shard counts under an otherwise fixed config and
// returns the predicted scaling curve, speedups normalized to the first
// point after sorting ascending by shard count (callers pass 1 to anchor at
// single-node).
func ScatterCurve(cfg ScatterConfig, shardCounts []int) ([]ScatterPoint, error) {
	if len(shardCounts) == 0 {
		return nil, fmt.Errorf("sched: empty shard-count sweep")
	}
	counts := append([]int(nil), shardCounts...)
	sort.Ints(counts)
	points := make([]ScatterPoint, 0, len(counts))
	for _, n := range counts {
		c := cfg
		c.Shards = n
		m, err := SimulateScatter(c)
		if err != nil {
			return nil, err
		}
		points = append(points, ScatterPoint{
			Shards:           n,
			Throughput:       m.Throughput,
			MeanLatency:      m.MeanLatency,
			MeanStragglerGap: m.MeanStragglerGap,
		})
	}
	base := points[0].Throughput
	for i := range points {
		if base > 0 {
			points[i].Speedup = points[i].Throughput / base
		}
	}
	return points, nil
}
