package sched_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"accelscore/internal/forest"
	"accelscore/internal/platform"
	"accelscore/internal/sched"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := sched.DefaultWorkload(200, 7)
	a, err := sched.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sched.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("streams differ at %d", i)
		}
	}
	cfg.Seed = 8
	c, _ := sched.Generate(cfg)
	same := 0
	for i := range a {
		if a[i].Records == c[i].Records {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical record counts")
	}
}

func TestGenerateShape(t *testing.T) {
	cfg := sched.DefaultWorkload(500, 1)
	qs, err := sched.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var prev time.Duration
	sawSmall, sawLarge := false, false
	for _, q := range qs {
		if q.Arrival < prev {
			t.Fatal("arrivals not monotone")
		}
		prev = q.Arrival
		if q.Records < cfg.MinRecords || q.Records > cfg.MaxRecords {
			t.Fatalf("record count %d out of bounds", q.Records)
		}
		if q.Records < 100 {
			sawSmall = true
		}
		if q.Records > 100_000 {
			sawLarge = true
		}
	}
	if !sawSmall || !sawLarge {
		t.Fatal("log-uniform sizes should span small and large queries")
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := sched.DefaultWorkload(0, 1)
	if _, err := sched.Generate(bad); err == nil {
		t.Fatal("zero queries accepted")
	}
	bad = sched.DefaultWorkload(10, 1)
	bad.TreeChoices = nil
	if _, err := sched.Generate(bad); err == nil {
		t.Fatal("empty tree choices accepted")
	}
	bad = sched.DefaultWorkload(10, 1)
	bad.MinRecords = 0
	if _, err := sched.Generate(bad); err == nil {
		t.Fatal("zero MinRecords accepted")
	}
}

func TestDeviceOf(t *testing.T) {
	cases := map[string]sched.Device{
		"CPU_SKLearn":   sched.DeviceCPU,
		"CPU_ONNX":      sched.DeviceCPU,
		"CPU_ONNX_52th": sched.DeviceCPU,
		"GPU_HB":        sched.DeviceGPU,
		"GPU_RAPIDS":    sched.DeviceGPU,
		"FPGA":          sched.DeviceFPGA,
	}
	for name, want := range cases {
		if got := sched.DeviceOf(name); got != want {
			t.Errorf("DeviceOf(%s) = %s, want %s", name, got, want)
		}
	}
}

func TestStaticPolicyRunsAndCounts(t *testing.T) {
	tb := platform.New()
	qs, err := sched.Generate(sched.DefaultWorkload(100, 3))
	if err != nil {
		t.Fatal(err)
	}
	sim := &sched.Simulator{Registry: tb.Registry}
	comps, m, err := sim.Run(sched.Static{BackendName: "CPU_SKLearn", Registry: tb.Registry}, qs)
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 100 || m.Placements["CPU_SKLearn"] != 100 || m.Offloaded != 0 {
		t.Fatalf("static CPU metrics: %+v", m)
	}
	// FIFO invariant: per device, starts are non-decreasing and service
	// intervals never overlap.
	var lastFinish time.Duration
	for _, c := range comps {
		if c.Start < c.Query.Arrival {
			t.Fatal("query started before arrival")
		}
		if c.Start < lastFinish {
			t.Fatal("device served two queries at once")
		}
		lastFinish = c.Finish
	}
}

func TestOracleBeatsStaticCPU(t *testing.T) {
	tb := platform.New()
	qs, err := sched.Generate(sched.DefaultWorkload(300, 5))
	if err != nil {
		t.Fatal(err)
	}
	sim := &sched.Simulator{Registry: tb.Registry}
	ms, err := sim.Compare(qs,
		sched.Static{BackendName: "CPU_SKLearn", Registry: tb.Registry},
		sched.Oracle{Advisor: tb.Advisor},
	)
	if err != nil {
		t.Fatal(err)
	}
	cpu, oracle := ms[0], ms[1]
	if oracle.Makespan >= cpu.Makespan {
		t.Fatalf("oracle makespan %v should beat static CPU %v", oracle.Makespan, cpu.Makespan)
	}
	if oracle.Offloaded == 0 {
		t.Fatal("oracle never offloaded on a mixed workload")
	}
	if oracle.Offloaded == len(qs) {
		t.Fatal("oracle offloaded everything — small queries should stay on CPU")
	}
}

func TestContentionAwareBeatsOracleUnderLoad(t *testing.T) {
	// Saturate: large queries arriving back-to-back pile up on the FPGA
	// under the queue-oblivious oracle; the contention-aware policy spreads
	// them across GPU and CPU.
	tb := platform.New()
	cfg := sched.DefaultWorkload(200, 11)
	cfg.MeanInterarrival = 100 * time.Microsecond // heavy load
	cfg.MinRecords = 200_000                      // all big queries
	qs, err := sched.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim := &sched.Simulator{Registry: tb.Registry}
	ms, err := sim.Compare(qs,
		sched.Oracle{Advisor: tb.Advisor},
		sched.ContentionAware{Advisor: tb.Advisor},
	)
	if err != nil {
		t.Fatal(err)
	}
	oracle, aware := ms[0], ms[1]
	if aware.MeanLatency >= oracle.MeanLatency {
		t.Fatalf("contention-aware mean latency %v should beat oracle %v under load",
			aware.MeanLatency, oracle.MeanLatency)
	}
	// The aware policy must actually use more than one device.
	devices := 0
	for _, d := range []sched.Device{sched.DeviceCPU, sched.DeviceGPU, sched.DeviceFPGA} {
		if aware.Busy[d] > 0 {
			devices++
		}
	}
	if devices < 2 {
		t.Fatalf("contention-aware used only %d device(s)", devices)
	}
}

func TestMetricsPercentiles(t *testing.T) {
	tb := platform.New()
	qs, err := sched.Generate(sched.DefaultWorkload(150, 13))
	if err != nil {
		t.Fatal(err)
	}
	sim := &sched.Simulator{Registry: tb.Registry}
	_, m, err := sim.Run(sched.Oracle{Advisor: tb.Advisor}, qs)
	if err != nil {
		t.Fatal(err)
	}
	if m.P50 > m.P99 {
		t.Fatalf("P50 %v > P99 %v", m.P50, m.P99)
	}
	if m.MeanLatency <= 0 || m.Makespan <= 0 {
		t.Fatalf("degenerate metrics %+v", m)
	}
	for _, d := range []sched.Device{sched.DeviceCPU, sched.DeviceGPU, sched.DeviceFPGA} {
		u := m.Utilization(d)
		if u < 0 || u > 1 {
			t.Fatalf("utilization(%s) = %v", d, u)
		}
	}
}

func TestUnorderedStreamRejected(t *testing.T) {
	tb := platform.New()
	qs := []sched.Query{
		{ID: 0, Arrival: time.Second, Stats: forest.SyntheticStats(1, 6, 4, 3), Records: 10},
		{ID: 1, Arrival: 0, Stats: forest.SyntheticStats(1, 6, 4, 3), Records: 10},
	}
	sim := &sched.Simulator{Registry: tb.Registry}
	if _, _, err := sim.Run(sched.Oracle{Advisor: tb.Advisor}, qs); err == nil {
		t.Fatal("unordered stream accepted")
	}
}

func TestStaticUnknownBackend(t *testing.T) {
	tb := platform.New()
	qs, _ := sched.Generate(sched.DefaultWorkload(5, 1))
	sim := &sched.Simulator{Registry: tb.Registry}
	if _, _, err := sim.Run(sched.Static{BackendName: "TPU", Registry: tb.Registry}, qs); err == nil {
		t.Fatal("unknown backend accepted")
	}
}

func BenchmarkOracleScheduling(b *testing.B) {
	tb := platform.New()
	qs, err := sched.Generate(sched.DefaultWorkload(500, 1))
	if err != nil {
		b.Fatal(err)
	}
	sim := &sched.Simulator{Registry: tb.Registry}
	policy := sched.Oracle{Advisor: tb.Advisor}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sim.Run(policy, qs); err != nil {
			b.Fatal(err)
		}
	}
}

func TestRenderTrace(t *testing.T) {
	tb := platform.New()
	qs, err := sched.Generate(sched.DefaultWorkload(60, 17))
	if err != nil {
		t.Fatal(err)
	}
	simu := &sched.Simulator{Registry: tb.Registry}
	comps, _, err := simu.Run(sched.Oracle{Advisor: tb.Advisor}, qs)
	if err != nil {
		t.Fatal(err)
	}
	out := sched.RenderTrace(comps, 80)
	for _, want := range []string{"cpu", "gpu", "fpga", "trace over"} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace missing %q:\n%s", want, out)
		}
	}
	if sched.RenderTrace(nil, 80) != "(no completions)\n" {
		t.Fatal("empty trace rendering wrong")
	}
}

func TestRenderMetrics(t *testing.T) {
	tb := platform.New()
	qs, _ := sched.Generate(sched.DefaultWorkload(40, 19))
	simu := &sched.Simulator{Registry: tb.Registry}
	ms, err := simu.Compare(qs,
		sched.Static{BackendName: "CPU_SKLearn", Registry: tb.Registry},
		sched.Oracle{Advisor: tb.Advisor},
	)
	if err != nil {
		t.Fatal(err)
	}
	out := sched.RenderMetrics(ms)
	if !strings.Contains(out, "static-CPU_SKLearn") || !strings.Contains(out, "oracle") {
		t.Fatalf("metrics table missing policies:\n%s", out)
	}
}

func TestSlowestQueries(t *testing.T) {
	tb := platform.New()
	qs, _ := sched.Generate(sched.DefaultWorkload(50, 23))
	simu := &sched.Simulator{Registry: tb.Registry}
	comps, _, err := simu.Run(sched.Oracle{Advisor: tb.Advisor}, qs)
	if err != nil {
		t.Fatal(err)
	}
	worst := sched.SlowestQueries(comps, 5)
	if len(worst) != 5 {
		t.Fatalf("got %d", len(worst))
	}
	for i := 1; i < len(worst); i++ {
		if worst[i].Latency() > worst[i-1].Latency() {
			t.Fatal("not sorted worst-first")
		}
	}
	if got := sched.SlowestQueries(comps, 10_000); len(got) != len(comps) {
		t.Fatal("k clamp broken")
	}
}

func TestTraceRoundTrip(t *testing.T) {
	qs, err := sched.Generate(sched.DefaultWorkload(100, 29))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sched.WriteTrace(&buf, qs); err != nil {
		t.Fatal(err)
	}
	back, err := sched.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(qs) {
		t.Fatalf("%d queries after round trip", len(back))
	}
	for i := range qs {
		if qs[i].ID != back[i].ID || qs[i].Arrival != back[i].Arrival ||
			qs[i].Records != back[i].Records || qs[i].Stats.Trees != back[i].Stats.Trees ||
			qs[i].Stats.MaxDepth != back[i].Stats.MaxDepth {
			t.Fatalf("query %d changed: %+v vs %+v", i, qs[i], back[i])
		}
	}
}

func TestReadTraceErrors(t *testing.T) {
	bad := []string{
		"",
		"x,y\n",
		"id,arrival_ns,trees,depth,features,classes,records\n1,notanumber,1,1,1,1,1\n",
		"id,arrival_ns,trees,depth,features,classes,records\n0,100,1,6,4,3,10\n1,50,1,6,4,3,10\n",
		"id,arrival_ns,trees,depth,features,classes,records\n0,0,1,6,4,3,0\n",
	}
	for _, s := range bad {
		if _, err := sched.ReadTrace(strings.NewReader(s)); err == nil {
			t.Fatalf("ReadTrace accepted %q", s)
		}
	}
}

func TestSJFImprovesMeanLatencyUnderLoad(t *testing.T) {
	// Heavy-tailed sizes under saturation: serving short jobs first must
	// cut mean latency versus FIFO without changing total work.
	tb := platform.New()
	cfg := sched.DefaultWorkload(200, 37)
	cfg.MeanInterarrival = time.Millisecond // saturating
	qs, err := sched.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fifoSim := &sched.Simulator{Registry: tb.Registry}
	policy := sched.Oracle{Advisor: tb.Advisor}
	_, fifo, err := fifoSim.Run(policy, qs)
	if err != nil {
		t.Fatal(err)
	}
	sjfSim := &sched.DisciplinedSimulator{Registry: tb.Registry, Discipline: sched.SJF}
	comps, sjf, err := sjfSim.Run(policy, qs)
	if err != nil {
		t.Fatal(err)
	}
	if sjf.MeanLatency >= fifo.MeanLatency {
		t.Fatalf("SJF mean %v not better than FIFO %v under load", sjf.MeanLatency, fifo.MeanLatency)
	}
	// Same total service work per device (reordering, not resizing).
	for _, d := range []sched.Device{sched.DeviceCPU, sched.DeviceGPU, sched.DeviceFPGA} {
		if fifo.Busy[d] != sjf.Busy[d] {
			t.Fatalf("device %s busy changed: %v vs %v", d, fifo.Busy[d], sjf.Busy[d])
		}
	}
	// Every query completes exactly once, after its arrival.
	if len(comps) != len(qs) {
		t.Fatalf("%d completions for %d queries", len(comps), len(qs))
	}
	seen := map[int]bool{}
	for _, c := range comps {
		if seen[c.Query.ID] {
			t.Fatalf("query %d completed twice", c.Query.ID)
		}
		seen[c.Query.ID] = true
		if c.Start < c.Query.Arrival {
			t.Fatal("job started before arrival")
		}
	}
}

func TestDisciplinedFIFOMatchesSimulator(t *testing.T) {
	tb := platform.New()
	qs, _ := sched.Generate(sched.DefaultWorkload(80, 39))
	policy := sched.Oracle{Advisor: tb.Advisor}
	_, a, err := (&sched.Simulator{Registry: tb.Registry}).Run(policy, qs)
	if err != nil {
		t.Fatal(err)
	}
	_, b, err := (&sched.DisciplinedSimulator{Registry: tb.Registry, Discipline: sched.FIFO}).Run(policy, qs)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || a.MeanLatency != b.MeanLatency {
		t.Fatalf("FIFO discipline diverges from base simulator: %v/%v vs %v/%v",
			a.Makespan, a.MeanLatency, b.Makespan, b.MeanLatency)
	}
}

func TestDisciplineString(t *testing.T) {
	if sched.FIFO.String() != "fifo" || sched.SJF.String() != "sjf" {
		t.Fatal("discipline names wrong")
	}
}
