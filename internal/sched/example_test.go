package sched_test

import (
	"fmt"

	"accelscore/internal/platform"
	"accelscore/internal/sched"
)

// ExampleSimulator_Compare shows comparing placement policies over the same
// deterministic query stream.
func ExampleSimulator_Compare() {
	tb := platform.New()
	queries, err := sched.Generate(sched.DefaultWorkload(50, 1))
	if err != nil {
		panic(err)
	}
	sim := &sched.Simulator{Registry: tb.Registry}
	metrics, err := sim.Compare(queries,
		sched.Static{BackendName: "CPU_SKLearn", Registry: tb.Registry},
		sched.Oracle{Advisor: tb.Advisor},
	)
	if err != nil {
		panic(err)
	}
	// The oracle offloads the big queries; static CPU never offloads.
	fmt.Println(metrics[0].Policy, "offloaded:", metrics[0].Offloaded)
	fmt.Println(metrics[1].Policy, "offloaded >", metrics[1].Offloaded > 0)
	// Output:
	// static-CPU_SKLearn offloaded: 0
	// oracle offloaded > true
}

// ExampleDeviceOf shows the backend-to-device mapping used for queueing.
func ExampleDeviceOf() {
	fmt.Println(sched.DeviceOf("CPU_ONNX"))
	fmt.Println(sched.DeviceOf("GPU_RAPIDS"))
	fmt.Println(sched.DeviceOf("FPGA"))
	// Output:
	// cpu
	// gpu
	// fpga
}
