package sched

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"accelscore/internal/sim"
)

// RenderTrace renders completions as a per-device text Gantt chart: one row
// per device, time flowing left to right over width columns, each busy cell
// labeled with the query class (S/M/L by record count). Useful for eyeballing
// how policies spread load across the CPU, GPU and FPGA.
func RenderTrace(completions []Completion, width int) string {
	if len(completions) == 0 {
		return "(no completions)\n"
	}
	if width < 20 {
		width = 20
	}
	var makespan time.Duration
	for _, c := range completions {
		if c.Finish > makespan {
			makespan = c.Finish
		}
	}
	if makespan == 0 {
		makespan = 1
	}
	col := func(t time.Duration) int {
		c := int(int64(t) * int64(width) / int64(makespan))
		if c >= width {
			c = width - 1
		}
		return c
	}
	classOf := func(records int64) byte {
		switch {
		case records < 1_000:
			return 'S'
		case records < 100_000:
			return 'M'
		default:
			return 'L'
		}
	}

	devices := []Device{DeviceCPU, DeviceGPU, DeviceFPGA}
	lanes := map[Device][]byte{}
	for _, d := range devices {
		lane := make([]byte, width)
		for i := range lane {
			lane[i] = '.'
		}
		lanes[d] = lane
	}
	for _, c := range completions {
		lane := lanes[c.Device]
		if lane == nil {
			continue
		}
		from, to := col(c.Start), col(c.Finish)
		for i := from; i <= to; i++ {
			lane[i] = classOf(c.Query.Records)
		}
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "trace over %s (S <1K, M <100K, L >=100K records)\n", sim.FormatDuration(makespan))
	for _, d := range devices {
		fmt.Fprintf(&sb, "%-5s |%s|\n", d, lanes[d])
	}
	return sb.String()
}

// RenderMetrics renders a metrics comparison as an aligned table.
func RenderMetrics(ms []Metrics) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-20s %12s %12s %12s %12s %10s\n",
		"policy", "makespan", "mean", "p50", "p99", "offloaded")
	for _, m := range ms {
		fmt.Fprintf(&sb, "%-20s %12s %12s %12s %12s %10d\n",
			m.Policy,
			sim.FormatDuration(m.Makespan),
			sim.FormatDuration(m.MeanLatency),
			sim.FormatDuration(m.P50),
			sim.FormatDuration(m.P99),
			m.Offloaded)
	}
	return sb.String()
}

// SlowestQueries returns the k completions with the largest response times,
// worst first — the tail the paper's wrong-decision analysis is about.
func SlowestQueries(completions []Completion, k int) []Completion {
	out := append([]Completion(nil), completions...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Latency() > out[j].Latency() })
	if k > len(out) {
		k = len(out)
	}
	return out[:k]
}
