package sched

import (
	"fmt"
	"sort"
	"time"

	"accelscore/internal/backend"
)

// Completion records one query's simulated execution.
type Completion struct {
	Query   Query
	Backend string
	Device  Device
	// Start and Finish are simulation times; Latency = Finish - Arrival
	// (queueing + service).
	Start, Finish time.Duration
	Service       time.Duration
}

// Latency is the query's response time including queueing.
func (c Completion) Latency() time.Duration { return c.Finish - c.Query.Arrival }

// Metrics aggregates a simulation run.
type Metrics struct {
	Policy string
	// Makespan is the finish time of the last query.
	Makespan time.Duration
	// MeanLatency, P50, P99 summarize response times.
	MeanLatency, P50, P99 time.Duration
	// Busy maps device -> total service time (utilization numerator).
	Busy map[Device]time.Duration
	// Placements counts queries per backend.
	Placements map[string]int
	// Offloaded counts queries placed off the CPU.
	Offloaded int
}

// Utilization returns Busy[d] / Makespan.
func (m Metrics) Utilization(d Device) float64 {
	if m.Makespan <= 0 {
		return 0
	}
	return float64(m.Busy[d]) / float64(m.Makespan)
}

// Simulator runs a query stream under a policy with per-device FIFO queues:
// each device serves one scoring operation at a time (the FPGA engine and
// the GPU are single-context resources; the CPU engines share the host
// cores, conservatively modeled as one serial resource since the paper's
// CPU numbers already use all 52 threads).
type Simulator struct {
	Registry *backend.Registry
}

// Run simulates the stream (which must be arrival-ordered) under the
// policy.
func (s *Simulator) Run(policy Policy, queries []Query) ([]Completion, Metrics, error) {
	freeAt := map[Device]time.Duration{DeviceCPU: 0, DeviceGPU: 0, DeviceFPGA: 0}
	metrics := Metrics{
		Policy:     policy.Name(),
		Busy:       map[Device]time.Duration{},
		Placements: map[string]int{},
	}
	completions := make([]Completion, 0, len(queries))
	var last time.Duration
	for _, q := range queries {
		if q.Arrival < last {
			return nil, Metrics{}, fmt.Errorf("sched: queries not arrival-ordered at id %d", q.ID)
		}
		last = q.Arrival
		state := ClusterState{Now: q.Arrival, FreeAt: freeAt}
		place, err := policy.Place(q, state)
		if err != nil {
			return nil, Metrics{}, fmt.Errorf("sched: placing query %d: %w", q.ID, err)
		}
		b, ok := s.Registry.Get(place.Backend)
		if !ok {
			return nil, Metrics{}, fmt.Errorf("sched: placed on unknown backend %q", place.Backend)
		}
		tl, err := b.Estimate(q.Stats, q.Records)
		if err != nil {
			return nil, Metrics{}, fmt.Errorf("sched: query %d unsupported on %s: %w", q.ID, place.Backend, err)
		}
		service := tl.Total()
		dev := DeviceOf(place.Backend)
		start := q.Arrival
		if freeAt[dev] > start {
			start = freeAt[dev]
		}
		finish := start + service
		freeAt[dev] = finish
		completions = append(completions, Completion{
			Query: q, Backend: place.Backend, Device: dev,
			Start: start, Finish: finish, Service: service,
		})
		metrics.Busy[dev] += service
		metrics.Placements[place.Backend]++
		if dev != DeviceCPU {
			metrics.Offloaded++
		}
		if finish > metrics.Makespan {
			metrics.Makespan = finish
		}
	}

	// Latency distribution.
	lat := make([]time.Duration, len(completions))
	var sum time.Duration
	for i, c := range completions {
		lat[i] = c.Latency()
		sum += lat[i]
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	if n := len(lat); n > 0 {
		metrics.MeanLatency = sum / time.Duration(n)
		metrics.P50 = lat[n/2]
		metrics.P99 = lat[(n*99)/100]
	}
	return completions, metrics, nil
}

// Compare runs the same stream under several policies and returns metrics
// keyed by policy order.
func (s *Simulator) Compare(queries []Query, policies ...Policy) ([]Metrics, error) {
	out := make([]Metrics, 0, len(policies))
	for _, p := range policies {
		_, m, err := s.Run(p, queries)
		if err != nil {
			return nil, fmt.Errorf("sched: policy %s: %w", p.Name(), err)
		}
		out = append(out, m)
	}
	return out, nil
}
