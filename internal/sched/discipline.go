package sched

import (
	"fmt"
	"sort"
	"time"

	"accelscore/internal/backend"
)

// Discipline selects the per-device queue ordering.
type Discipline int

const (
	// FIFO serves queued work in arrival order (the default Simulator).
	FIFO Discipline = iota
	// SJF (shortest job first) lets a device pick the shortest queued
	// request when it frees up — the classic mean-latency optimization for
	// the heavy-tailed batch sizes of analytics workloads. Non-preemptive.
	SJF
)

// String returns the discipline name.
func (d Discipline) String() string {
	if d == SJF {
		return "sjf"
	}
	return "fifo"
}

// DisciplinedSimulator extends Simulator with a queue discipline. FIFO
// reproduces Simulator exactly; SJF reorders each device's backlog by
// service time whenever the device becomes free.
type DisciplinedSimulator struct {
	Registry   *backend.Registry
	Discipline Discipline
}

// queued is one placed-but-not-started request.
type queued struct {
	q       Query
	backend string
	service time.Duration
}

// Run simulates the arrival-ordered stream under the policy and the
// configured discipline.
func (s *DisciplinedSimulator) Run(policy Policy, queries []Query) ([]Completion, Metrics, error) {
	if s.Discipline == FIFO {
		inner := &Simulator{Registry: s.Registry}
		return inner.Run(policy, queries)
	}

	// Place every query first (placement still sees arrival-time queue
	// state approximated by FIFO accumulation, keeping policies comparable
	// across disciplines).
	freeApprox := map[Device]time.Duration{DeviceCPU: 0, DeviceGPU: 0, DeviceFPGA: 0}
	backlog := map[Device][]queued{}
	var last time.Duration
	for _, q := range queries {
		if q.Arrival < last {
			return nil, Metrics{}, fmt.Errorf("sched: queries not arrival-ordered at id %d", q.ID)
		}
		last = q.Arrival
		place, err := policy.Place(q, ClusterState{Now: q.Arrival, FreeAt: freeApprox})
		if err != nil {
			return nil, Metrics{}, fmt.Errorf("sched: placing query %d: %w", q.ID, err)
		}
		b, ok := s.Registry.Get(place.Backend)
		if !ok {
			return nil, Metrics{}, fmt.Errorf("sched: placed on unknown backend %q", place.Backend)
		}
		tl, err := b.Estimate(q.Stats, q.Records)
		if err != nil {
			return nil, Metrics{}, fmt.Errorf("sched: query %d unsupported on %s: %w", q.ID, place.Backend, err)
		}
		dev := DeviceOf(place.Backend)
		backlog[dev] = append(backlog[dev], queued{q: q, backend: place.Backend, service: tl.Total()})
		if freeApprox[dev] < q.Arrival {
			freeApprox[dev] = q.Arrival
		}
		freeApprox[dev] += tl.Total()
	}

	// Per device, replay with SJF: at each dispatch instant serve the
	// shortest request among those that have arrived.
	metrics := Metrics{
		Policy:     policy.Name() + "+sjf",
		Busy:       map[Device]time.Duration{},
		Placements: map[string]int{},
	}
	var completions []Completion
	for dev, items := range backlog {
		// Arrival order within the device.
		sort.SliceStable(items, func(i, j int) bool { return items[i].q.Arrival < items[j].q.Arrival })
		var clock time.Duration
		pending := make([]queued, 0, len(items))
		next := 0
		for len(pending) > 0 || next < len(items) {
			// Admit everything that has arrived by the clock.
			for next < len(items) && items[next].q.Arrival <= clock {
				pending = append(pending, items[next])
				next++
			}
			if len(pending) == 0 {
				clock = items[next].q.Arrival
				continue
			}
			// Pick the shortest pending job.
			best := 0
			for i := 1; i < len(pending); i++ {
				if pending[i].service < pending[best].service {
					best = i
				}
			}
			job := pending[best]
			pending = append(pending[:best], pending[best+1:]...)
			start := clock
			if job.q.Arrival > start {
				start = job.q.Arrival
			}
			finish := start + job.service
			clock = finish
			completions = append(completions, Completion{
				Query: job.q, Backend: job.backend, Device: dev,
				Start: start, Finish: finish, Service: job.service,
			})
			metrics.Busy[dev] += job.service
			metrics.Placements[job.backend]++
			if dev != DeviceCPU {
				metrics.Offloaded++
			}
			if finish > metrics.Makespan {
				metrics.Makespan = finish
			}
		}
	}
	sort.SliceStable(completions, func(i, j int) bool { return completions[i].Query.ID < completions[j].Query.ID })

	lat := make([]time.Duration, len(completions))
	var sum time.Duration
	for i, c := range completions {
		lat[i] = c.Latency()
		sum += lat[i]
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	if n := len(lat); n > 0 {
		metrics.MeanLatency = sum / time.Duration(n)
		metrics.P50 = lat[n/2]
		metrics.P99 = lat[(n*99)/100]
	}
	return completions, metrics, nil
}
