package sched

import (
	"fmt"
	"time"

	"accelscore/internal/backend"
	"accelscore/internal/core"
)

// Device names the three hardware resources queries contend for. All CPU
// engines share the host CPU; both GPU libraries share the one GPU; the
// FPGA is its own device.
type Device string

// The testbed's devices.
const (
	DeviceCPU  Device = "cpu"
	DeviceGPU  Device = "gpu"
	DeviceFPGA Device = "fpga"
)

// DeviceOf maps a backend name to the device it occupies.
func DeviceOf(backendName string) Device {
	switch backendName {
	case "GPU_HB", "GPU_RAPIDS":
		return DeviceGPU
	case "FPGA":
		return DeviceFPGA
	default:
		return DeviceCPU
	}
}

// ClusterState is the queue visibility a policy gets at decision time.
type ClusterState struct {
	// Now is the query's arrival time.
	Now time.Duration
	// FreeAt maps each device to the time its queue drains.
	FreeAt map[Device]time.Duration
}

// QueueDelay returns how long a query placed now would wait for the device.
func (s ClusterState) QueueDelay(d Device) time.Duration {
	free := s.FreeAt[d]
	if free <= s.Now {
		return 0
	}
	return free - s.Now
}

// Placement is a policy's verdict for one query.
type Placement struct {
	Backend string
	// Predicted is the policy's predicted service time (zero if the policy
	// does not predict).
	Predicted time.Duration
}

// Policy decides where each query runs.
type Policy interface {
	Name() string
	Place(q Query, state ClusterState) (Placement, error)
}

// Static always places on one backend (the always-CPU / always-FPGA
// baselines of the wrong-decision analysis). Queries the backend cannot run
// fail the simulation, surfacing capability gaps.
type Static struct {
	BackendName string
	Registry    *backend.Registry
}

// Name implements Policy.
func (s Static) Name() string { return "static-" + s.BackendName }

// Place implements Policy.
func (s Static) Place(q Query, _ ClusterState) (Placement, error) {
	b, ok := s.Registry.Get(s.BackendName)
	if !ok {
		return Placement{}, fmt.Errorf("sched: backend %q not registered", s.BackendName)
	}
	tl, err := b.Estimate(q.Stats, q.Records)
	if err != nil {
		return Placement{}, err
	}
	return Placement{Backend: s.BackendName, Predicted: tl.Total()}, nil
}

// Oracle places each query on its predicted-fastest backend, ignoring
// queues — the per-query-optimal policy of Fig. 1.
type Oracle struct {
	Advisor *core.Advisor
}

// Name implements Policy.
func (Oracle) Name() string { return "oracle" }

// Place implements Policy.
func (o Oracle) Place(q Query, _ ClusterState) (Placement, error) {
	d, err := o.Advisor.Decide(core.Config{
		Features: q.Stats.Features, Classes: q.Stats.Classes,
		Trees: q.Stats.Trees, Depth: q.Stats.MaxDepth, Records: q.Records,
	})
	if err != nil {
		return Placement{}, err
	}
	return Placement{Backend: d.Best.Name, Predicted: d.Best.Time}, nil
}

// ContentionAware minimizes predicted completion time including the
// device's current queue — the dynamic scheduler the paper's §I calls for.
type ContentionAware struct {
	Advisor *core.Advisor
}

// Name implements Policy.
func (ContentionAware) Name() string { return "contention-aware" }

// Place implements Policy.
func (c ContentionAware) Place(q Query, state ClusterState) (Placement, error) {
	results := c.Advisor.Evaluate(core.Config{
		Features: q.Stats.Features, Classes: q.Stats.Classes,
		Trees: q.Stats.Trees, Depth: q.Stats.MaxDepth, Records: q.Records,
	})
	best := Placement{}
	bestCompletion := time.Duration(1<<63 - 1)
	for _, r := range results {
		if r.Err != nil {
			continue
		}
		completion := state.QueueDelay(DeviceOf(r.Name)) + r.Time
		if completion < bestCompletion {
			bestCompletion = completion
			best = Placement{Backend: r.Name, Predicted: r.Time}
		}
	}
	if best.Backend == "" {
		return Placement{}, fmt.Errorf("sched: no backend supports query %d", q.ID)
	}
	return best, nil
}
