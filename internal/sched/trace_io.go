package sched

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"accelscore/internal/forest"
)

// WriteTrace serializes a query stream as CSV
// (id,arrival_ns,trees,depth,features,classes,records) so workloads can be
// archived and replayed across runs or shared with other tools.
func WriteTrace(w io.Writer, queries []Query) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"id", "arrival_ns", "trees", "depth", "features", "classes", "records"}); err != nil {
		return err
	}
	for _, q := range queries {
		rec := []string{
			strconv.Itoa(q.ID),
			strconv.FormatInt(q.Arrival.Nanoseconds(), 10),
			strconv.Itoa(q.Stats.Trees),
			strconv.Itoa(q.Stats.MaxDepth),
			strconv.Itoa(q.Stats.Features),
			strconv.Itoa(q.Stats.Classes),
			strconv.FormatInt(q.Records, 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadTrace parses a stream written by WriteTrace, validating ordering and
// bounds.
func ReadTrace(r io.Reader) ([]Query, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("sched: reading trace header: %w", err)
	}
	if len(header) != 7 || header[0] != "id" {
		return nil, fmt.Errorf("sched: unrecognized trace header %v", header)
	}
	var out []Query
	var prevArrival time.Duration
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("sched: trace line %d: %w", line, err)
		}
		ints := make([]int64, len(rec))
		for i, s := range rec {
			v, err := strconv.ParseInt(s, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("sched: trace line %d field %d: %w", line, i, err)
			}
			ints[i] = v
		}
		q := Query{
			ID:      int(ints[0]),
			Arrival: time.Duration(ints[1]),
			Stats:   forest.SyntheticStats(int(ints[2]), int(ints[3]), int(ints[4]), int(ints[5])),
			Records: ints[6],
		}
		if q.Arrival < prevArrival {
			return nil, fmt.Errorf("sched: trace line %d: arrivals not monotone", line)
		}
		if q.Records <= 0 || q.Stats.Trees <= 0 || q.Stats.MaxDepth <= 0 {
			return nil, fmt.Errorf("sched: trace line %d: non-positive workload values", line)
		}
		prevArrival = q.Arrival
		out = append(out, q)
	}
	return out, nil
}
