// Package sched implements dynamic offload scheduling for streams of DBMS
// scoring queries — the scenario that motivates the paper's analysis:
// "Since both data and models depend on the particular user query presented
// at run time, a scheduler that aims for the best performance would need to
// make the accelerator offloading decisions dynamically" (§I).
//
// It provides a deterministic workload generator (mixed query sizes and
// model complexities with Poisson arrivals), pluggable placement policies
// (static CPU, static FPGA, queue-oblivious oracle, contention-aware), and
// an event-driven simulator with per-device FIFO queues, producing latency
// and utilization metrics. The policy comparison quantifies, at workload
// scale, the wrong-decision penalties the paper reports per query.
package sched

import (
	"fmt"
	"math"
	"time"

	"accelscore/internal/forest"
	"accelscore/internal/xrand"
)

// Query is one scoring request in the stream.
type Query struct {
	// ID orders queries by arrival.
	ID int
	// Arrival is the submission time, relative to workload start.
	Arrival time.Duration
	// Stats describes the model to score.
	Stats forest.Stats
	// Records is the scoring batch size.
	Records int64
}

// WorkloadConfig parameterizes the generator.
type WorkloadConfig struct {
	// Queries is the stream length.
	Queries int
	// MeanInterarrival is the Poisson-process mean gap between queries.
	MeanInterarrival time.Duration
	// Features and Classes fix the dataset schema.
	Features, Classes int
	// TreeChoices and DepthChoices are sampled uniformly per query.
	TreeChoices  []int
	DepthChoices []int
	// MinRecords and MaxRecords bound the log-uniform record count.
	MinRecords, MaxRecords int64
	// Seed makes the stream deterministic.
	Seed uint64
}

// Validate checks generator parameters.
func (c WorkloadConfig) Validate() error {
	if c.Queries <= 0 {
		return fmt.Errorf("sched: Queries must be positive")
	}
	if c.MeanInterarrival < 0 {
		return fmt.Errorf("sched: negative interarrival")
	}
	if len(c.TreeChoices) == 0 || len(c.DepthChoices) == 0 {
		return fmt.Errorf("sched: empty model-shape choices")
	}
	if c.MinRecords <= 0 || c.MaxRecords < c.MinRecords {
		return fmt.Errorf("sched: bad record bounds [%d, %d]", c.MinRecords, c.MaxRecords)
	}
	return nil
}

// DefaultWorkload is a mixed analytics workload: mostly small interactive
// queries with a heavy tail of million-record batch scorings, over models
// spanning the paper's complexity axis.
func DefaultWorkload(queries int, seed uint64) WorkloadConfig {
	return WorkloadConfig{
		Queries:          queries,
		MeanInterarrival: 20 * time.Millisecond,
		Features:         28,
		Classes:          2,
		TreeChoices:      []int{1, 8, 32, 128},
		DepthChoices:     []int{6, 10},
		MinRecords:       1,
		MaxRecords:       1_000_000,
		Seed:             seed,
	}
}

// Generate produces the deterministic query stream.
func Generate(cfg WorkloadConfig) ([]Query, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := xrand.New(cfg.Seed)
	queries := make([]Query, cfg.Queries)
	var clock time.Duration
	logMin, logMax := logf(cfg.MinRecords), logf(cfg.MaxRecords)
	for i := range queries {
		if i > 0 && cfg.MeanInterarrival > 0 {
			clock += time.Duration(rng.ExpFloat64() * float64(cfg.MeanInterarrival))
		}
		trees := cfg.TreeChoices[rng.Intn(len(cfg.TreeChoices))]
		depth := cfg.DepthChoices[rng.Intn(len(cfg.DepthChoices))]
		// Log-uniform record count: interactive point lookups through
		// million-record batch jobs.
		records := int64(expf(logMin + rng.Float64()*(logMax-logMin)))
		if records < cfg.MinRecords {
			records = cfg.MinRecords
		}
		if records > cfg.MaxRecords {
			records = cfg.MaxRecords
		}
		queries[i] = Query{
			ID:      i,
			Arrival: clock,
			Stats:   forest.SyntheticStats(trees, depth, cfg.Features, cfg.Classes),
			Records: records,
		}
	}
	return queries, nil
}

func logf(n int64) float64 { return math.Log(float64(n)) }

func expf(x float64) float64 { return math.Exp(x) }
