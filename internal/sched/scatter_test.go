package sched

import (
	"testing"
	"time"
)

// linearService models a perfectly divisible workload: service time strictly
// proportional to records.
func linearService(perRecord time.Duration) func(int64) (time.Duration, error) {
	return func(records int64) (time.Duration, error) {
		return time.Duration(records) * perRecord, nil
	}
}

// amdahlService adds an unsplittable fixed cost (the paper's process-invoke
// overhead) on top of the linear part.
func amdahlService(fixed, perRecord time.Duration) func(int64) (time.Duration, error) {
	return func(records int64) (time.Duration, error) {
		return fixed + time.Duration(records)*perRecord, nil
	}
}

func TestPartitionRecordsTiles(t *testing.T) {
	for _, tc := range []struct {
		n     int
		total int64
	}{{1, 7}, {3, 10}, {4, 1000}, {5, 3}} {
		var sum int64
		for k := 0; k < tc.n; k++ {
			r := PartitionRecords(k, tc.n, tc.total)
			if r < 0 {
				t.Fatalf("PartitionRecords(%d,%d,%d) = %d", k, tc.n, tc.total, r)
			}
			sum += r
		}
		if sum != tc.total {
			t.Fatalf("n=%d total=%d: partitions sum to %d", tc.n, tc.total, sum)
		}
	}
}

// TestScatterLinearSpeedup checks a divisible workload with no overhead
// scales ~linearly: 4 shards ≈ 4x throughput.
func TestScatterLinearSpeedup(t *testing.T) {
	cfg := ScatterConfig{
		Queries: 50,
		Records: 100_000,
		Service: linearService(10 * time.Microsecond),
	}
	pts, err := ScatterCurve(cfg, []int{4, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 || pts[0].Shards != 1 || pts[2].Shards != 4 {
		t.Fatalf("curve not sorted ascending: %+v", pts)
	}
	if s := pts[0].Speedup; s != 1 {
		t.Fatalf("1-shard speedup = %v", s)
	}
	if s := pts[2].Speedup; s < 3.9 || s > 4.1 {
		t.Fatalf("4-shard speedup = %v, want ~4 for a divisible workload", s)
	}
	if pts[2].MeanLatency >= pts[0].MeanLatency {
		t.Fatal("scatter did not cut per-query latency on a divisible workload")
	}
}

// TestScatterAmdahlCeiling checks the unsplittable fixed cost caps speedup
// below linear, the paper's process-overhead argument at tier scale.
func TestScatterAmdahlCeiling(t *testing.T) {
	// fixed = 250ms, linear = 1s at 100k records: serial fraction 0.2
	// caps 4-shard speedup at 1.25/0.5 = 2.5.
	cfg := ScatterConfig{
		Queries: 50,
		Records: 100_000,
		Service: amdahlService(250*time.Millisecond, 10*time.Microsecond),
	}
	pts, err := ScatterCurve(cfg, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	got := pts[1].Speedup
	if got < 2.4 || got > 2.6 {
		t.Fatalf("4-shard Amdahl speedup = %v, want ~2.5", got)
	}
}

// TestScatterStragglerGap checks uneven partitions surface as a straggler
// gap equal to the service-time spread.
func TestScatterStragglerGap(t *testing.T) {
	// 10 records over 3 shards: partitions hold 4, 3, 3. One client at a
	// time, so every scatter starts on idle shards and the gap is exactly
	// the service-time spread.
	m, err := SimulateScatter(ScatterConfig{
		Shards:      3,
		Queries:     10,
		Concurrency: 1,
		Records:     10,
		Service:     linearService(time.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.MeanStragglerGap != time.Millisecond {
		t.Fatalf("straggler gap = %v, want 1ms (one extra record)", m.MeanStragglerGap)
	}
	if m.Utilization(0) <= m.Utilization(2) {
		t.Fatalf("heavy partition utilization %v not above light %v",
			m.Utilization(0), m.Utilization(2))
	}
}

// TestScatterOverheadDragsThroughput checks per-sub-query overhead hurts
// wider scatters more (it is paid once per shard).
func TestScatterOverheadDragsThroughput(t *testing.T) {
	base := ScatterConfig{
		Queries:  20,
		Records:  1000,
		Service:  linearService(time.Microsecond),
		Overhead: 5 * time.Millisecond,
	}
	pts, err := ScatterCurve(base, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	// 1ms of compute split 4 ways cannot outrun 10ms of per-query overhead:
	// the curve must show overhead-bound behavior (speedup well under 4).
	if pts[1].Speedup > 2 {
		t.Fatalf("overhead-bound speedup = %v, want < 2", pts[1].Speedup)
	}
}

func TestScatterValidation(t *testing.T) {
	svc := linearService(time.Microsecond)
	bad := []ScatterConfig{
		{Shards: 0, Queries: 1, Records: 1, Service: svc},
		{Shards: 1, Queries: 0, Records: 1, Service: svc},
		{Shards: 1, Queries: 1, Records: 0, Service: svc},
		{Shards: 1, Queries: 1, Records: 1, Service: nil},
	}
	for i, cfg := range bad {
		if _, err := SimulateScatter(cfg); err == nil {
			t.Fatalf("config %d accepted", i)
		}
	}
	if _, err := ScatterCurve(ScatterConfig{}, nil); err == nil {
		t.Fatal("empty sweep accepted")
	}
}
