package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at %d: %d != %d", i, av, bv)
		}
	}
}

func TestStableStream(t *testing.T) {
	// Golden values pin the stream so dataset generation can never drift.
	r := New(1)
	got := []uint64{r.Uint64(), r.Uint64(), r.Uint64()}
	want := []uint64{12966619160104079557, 9600361134598540522, 10590380919521690900}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("stream value %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestSeedIndependence(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// The child stream must not simply replay the parent stream.
	p := make([]uint64, 50)
	c := make([]uint64, 50)
	for i := range p {
		p[i] = parent.Uint64()
		c[i] = child.Uint64()
	}
	same := 0
	for i := range p {
		if p[i] == c[i] {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split stream matched parent %d times", same)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(9)
	if err := quick.Check(func(_ int) bool {
		v := r.Float64()
		return v >= 0 && v < 1
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloat32Range(t *testing.T) {
	r := New(10)
	for i := 0; i < 10000; i++ {
		v := r.Float32()
		if v < 0 || v >= 1 {
			t.Fatalf("Float32 = %v out of [0,1)", v)
		}
	}
}

func TestFloat64Uniformity(t *testing.T) {
	// Chi-squared-ish sanity test: 10 buckets over 100k draws should each
	// hold close to 10k.
	r := New(11)
	const draws = 100000
	var buckets [10]int
	for i := 0; i < draws; i++ {
		buckets[int(r.Float64()*10)]++
	}
	for i, c := range buckets {
		if c < 9000 || c > 11000 {
			t.Fatalf("bucket %d has %d draws, expected ~10000", i, c)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(12)
	const draws = 200000
	var sum, sumSq float64
	for i := 0; i < draws; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / draws
	variance := sumSq/draws - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Moments(t *testing.T) {
	r := New(13)
	const draws = 200000
	var sum float64
	for i := 0; i < draws; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("exponential draw %v < 0", v)
		}
		sum += v
	}
	mean := sum / draws
	if math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean = %v, want ~1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(14)
	for _, n := range []int{0, 1, 2, 10, 257} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) returned %d elements", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleProperty(t *testing.T) {
	r := New(15)
	if err := quick.Check(func(seed uint16) bool {
		rr := New(uint64(seed))
		const n = 30
		vals := make([]int, n)
		for i := range vals {
			vals[i] = i
		}
		rr.Shuffle(n, func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
		sum := 0
		for _, v := range vals {
			sum += v
		}
		_ = r
		return sum == n*(n-1)/2
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkNormFloat64(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = r.NormFloat64()
	}
	_ = sink
}
