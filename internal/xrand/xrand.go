// Package xrand provides a small, deterministic, splittable pseudo-random
// number generator used throughout accelscore.
//
// Reproducibility is a hard requirement for this project: synthetic datasets
// (HIGGS), bootstrap samples during forest training, and experiment sweeps
// must produce bit-identical results across machines and Go releases so that
// EXPERIMENTS.md numbers can be regenerated exactly. The standard library's
// math/rand does not guarantee a stable stream across releases for all
// helpers, so we implement xoshiro256** seeded via splitmix64, the
// combination recommended by the xoshiro authors.
package xrand

import "math"

// Rand is a deterministic xoshiro256** generator. The zero value is not
// valid; use New.
type Rand struct {
	s [4]uint64
}

// splitmix64 advances a splitmix64 state and returns the next output.
// It is used to expand a single seed word into the xoshiro state.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from the given seed. Distinct seeds give
// independent streams.
func New(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// xoshiro must not be seeded with an all-zero state; splitmix64 cannot
	// produce four consecutive zeros, so no check is needed.
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split returns a new generator whose stream is independent of the
// receiver's future output. It consumes one value from the receiver.
func (r *Rand) Split() *Rand {
	return New(r.Uint64())
}

// Intn returns a uniformly random int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with n <= 0")
	}
	// Lemire's nearly-divisionless bounded generation would be faster, but
	// plain modulo rejection keeps the stream easy to reason about and the
	// bias rejection exact.
	bound := uint64(n)
	threshold := -bound % bound
	for {
		v := r.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// Float64 returns a uniformly random float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float32 returns a uniformly random float32 in [0, 1).
func (r *Rand) Float32() float32 {
	return float32(r.Uint64()>>40) / (1 << 24)
}

// NormFloat64 returns a standard normally distributed float64 using the
// Box-Muller transform. Unlike ziggurat-based samplers it needs no tables,
// which keeps the stream trivially stable.
func (r *Rand) NormFloat64() float64 {
	for {
		u1 := r.Float64()
		if u1 == 0 {
			continue
		}
		u2 := r.Float64()
		return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	}
}

// ExpFloat64 returns an exponentially distributed float64 with rate 1.
func (r *Rand) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		return -math.Log(u)
	}
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap, a
// Fisher-Yates shuffle.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
