package experiments

import (
	"fmt"
	"strings"
	"time"

	"accelscore/internal/model"
	"accelscore/internal/sim"
)

// Fig11Row is one bar of Fig. 11: the end-to-end T-SQL query latency
// breakdown for one (dataset, model, record count, backend) combination.
type Fig11Row struct {
	Dataset string
	Trees   int
	Depth   int
	Records int64
	Backend string
	Stages  []sim.Span
	Total   time.Duration
}

// fig11Backends are the scoring placements compared in the end-to-end view.
var fig11Backends = []string{"CPU_ONNX_52th", "GPU_HB", "FPGA"}

// Fig11 regenerates the end-to-end query breakdown for {1, 1K, 1M} records
// x {1, 128} trees on both datasets, with scoring placed on the CPU, the
// GPU and the FPGA.
func (s *Suite) Fig11() ([]Fig11Row, error) {
	var rows []Fig11Row
	for _, shape := range []DatasetShape{IrisShape, HiggsShape} {
		for _, trees := range []int{1, 128} {
			stats := shape.config(trees, 10, 0).Stats()
			blobBytes := approxBlobBytes(stats.TotalNodes)
			for _, records := range []int64{1, 1_000, 1_000_000} {
				for _, backendName := range fig11Backends {
					tl, used, err := s.Pipe.Estimate(stats, records, blobBytes, backendName)
					if err != nil {
						continue // e.g. RAPIDS-style rejections
					}
					agg := tl.Aggregate()
					rows = append(rows, Fig11Row{
						Dataset: shape.Name,
						Trees:   trees,
						Depth:   10,
						Records: records,
						Backend: used,
						Stages:  agg.Rows,
						Total:   agg.Total,
					})
				}
			}
		}
	}
	return rows, nil
}

// approxBlobBytes estimates the serialized model size from the node count,
// matching the RFX encoding's per-node footprint.
func approxBlobBytes(totalNodes int) int64 {
	return int64(totalNodes)*model.ApproxNodeBytes + 64
}

// RenderFig11 renders the end-to-end breakdowns as aligned text.
func RenderFig11(rows []Fig11Row) string {
	var sb strings.Builder
	sb.WriteString("Fig. 11 — End-to-end T-SQL query latency breakdown\n")
	var lastKey string
	for _, r := range rows {
		key := fmt.Sprintf("%s %d trees %s records", r.Dataset, r.Trees, formatCount(r.Records))
		if key != lastKey {
			fmt.Fprintf(&sb, "\n%s\n", key)
			lastKey = key
		}
		fmt.Fprintf(&sb, "  scoring on %-14s total %12s\n", r.Backend, sim.FormatDuration(r.Total))
		for _, st := range r.Stages {
			pct := 0.0
			if r.Total > 0 {
				pct = 100 * float64(st.Duration) / float64(r.Total)
			}
			fmt.Fprintf(&sb, "    %-24s %12s  %5.1f%%\n", st.Name, sim.FormatDuration(st.Duration), pct)
		}
	}
	return sb.String()
}

// QuerySpeedup returns the end-to-end speedup of the best accelerator row
// over the CPU row for the given (dataset, trees, records) group.
func QuerySpeedup(rows []Fig11Row, dataset string, trees int, records int64) (float64, error) {
	var cpu, bestAccel time.Duration
	for _, r := range rows {
		if r.Dataset != dataset || r.Trees != trees || r.Records != records {
			continue
		}
		if strings.HasPrefix(r.Backend, "CPU") {
			cpu = r.Total
		} else if bestAccel == 0 || r.Total < bestAccel {
			bestAccel = r.Total
		}
	}
	if cpu == 0 || bestAccel == 0 {
		return 0, fmt.Errorf("experiments: no CPU/accelerator pair for %s t=%d n=%d", dataset, trees, records)
	}
	return float64(cpu) / float64(bestAccel), nil
}
