package experiments

import (
	"fmt"
	"strings"
	"time"

	"accelscore/internal/sim"
)

// Fig7Row is one bar of Fig. 7: the FPGA overall scoring time breakdown for
// one (dataset, tree count, record count) combination.
type Fig7Row struct {
	Dataset string
	Trees   int
	Depth   int
	Records int64
	// Components are the aggregated named spans (input transfer, FPGA
	// setup, scoring, completion signal, result transfer, software
	// overhead).
	Components []sim.Span
	Total      time.Duration
}

// Fig7 regenerates both panels of Fig. 7: the FPGA model-scoring time
// breakdown for 1 record (panel a) and 1M records (panel b), for IRIS and
// HIGGS with 1 and 128 trees at depth 10.
func (s *Suite) Fig7() ([]Fig7Row, error) {
	var rows []Fig7Row
	for _, records := range []int64{1, 1_000_000} {
		for _, shape := range []DatasetShape{IrisShape, HiggsShape} {
			for _, trees := range []int{1, 128} {
				cfg := shape.config(trees, 10, records)
				tl, err := s.TB.FPGA.Estimate(cfg.Stats(), records)
				if err != nil {
					return nil, fmt.Errorf("fig7 %v: %w", cfg, err)
				}
				agg := tl.Aggregate()
				rows = append(rows, Fig7Row{
					Dataset:    shape.Name,
					Trees:      trees,
					Depth:      10,
					Records:    records,
					Components: agg.Rows,
					Total:      agg.Total,
				})
			}
		}
	}
	return rows, nil
}

// RenderFig7 renders the breakdown rows as aligned text.
func RenderFig7(rows []Fig7Row) string {
	var sb strings.Builder
	sb.WriteString("Fig. 7 — Overall FPGA model scoring time breakdown\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "\n%s, %d tree(s), depth %d, %s records (total %s)\n",
			r.Dataset, r.Trees, r.Depth, formatCount(r.Records), sim.FormatDuration(r.Total))
		for _, c := range r.Components {
			pct := 0.0
			if r.Total > 0 {
				pct = 100 * float64(c.Duration) / float64(r.Total)
			}
			fmt.Fprintf(&sb, "  %-28s %12s  %5.1f%%\n", c.Name, sim.FormatDuration(c.Duration), pct)
		}
	}
	return sb.String()
}

// formatCount prints 1000000 as "1M" etc. for axis labels.
func formatCount(n int64) string {
	switch {
	case n >= 1_000_000 && n%1_000_000 == 0:
		return fmt.Sprintf("%dM", n/1_000_000)
	case n >= 1_000 && n%1_000 == 0:
		return fmt.Sprintf("%dK", n/1_000)
	default:
		return fmt.Sprintf("%d", n)
	}
}
