package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestFig7Shape(t *testing.T) {
	s := NewSuite()
	rows, err := s.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	// 2 record counts x 2 datasets x 2 tree counts.
	if len(rows) != 8 {
		t.Fatalf("Fig7 rows = %d, want 8", len(rows))
	}
	for _, r := range rows {
		if r.Total <= 0 || len(r.Components) == 0 {
			t.Fatalf("empty row %+v", r)
		}
		var sum time.Duration
		for _, c := range r.Components {
			sum += c.Duration
		}
		if sum != r.Total {
			t.Fatalf("components sum %v != total %v", sum, r.Total)
		}
	}
	// 1-record rows are ms-scale; 1M rows are dominated by scoring.
	for _, r := range rows {
		if r.Records == 1 && (r.Total < 500*time.Microsecond || r.Total > 10*time.Millisecond) {
			t.Fatalf("1-record total = %v", r.Total)
		}
	}
	out := RenderFig7(rows)
	for _, want := range []string{"input transfer", "software overhead", "IRIS", "HIGGS", "1M"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFig7InputTransferGrowsWithModel(t *testing.T) {
	s := NewSuite()
	rows, err := s.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	// At 1 record, the 128-tree model transfers more than the 1-tree model
	// (§IV-B: "input transfer time increases because we need to transfer
	// larger models").
	var one, many time.Duration
	for _, r := range rows {
		if r.Records == 1 && r.Dataset == "IRIS" {
			for _, c := range r.Components {
				if c.Name == "input transfer" {
					if r.Trees == 1 {
						one = c.Duration
					} else {
						many = c.Duration
					}
				}
			}
		}
	}
	if one == 0 || many == 0 || many <= one {
		t.Fatalf("input transfer: 1 tree %v vs 128 trees %v", one, many)
	}
}

func TestFig8Shape(t *testing.T) {
	s := NewSuite()
	for _, shape := range []DatasetShape{IrisShape, HiggsShape} {
		r, err := s.Fig8(shape)
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Cells) != len(RecordSweep) || len(r.Cells[0]) != len(TreeSweep) {
			t.Fatalf("%s grid %dx%d", shape.Name, len(r.Cells), len(r.Cells[0]))
		}
		// Top-left: CPU. Bottom-right: FPGA.
		if got := r.Cells[0][0].Best; !strings.HasPrefix(got, "CPU") {
			t.Fatalf("%s smallest cell = %s", shape.Name, got)
		}
		last := r.Cells[len(RecordSweep)-1][len(TreeSweep)-1]
		if last.Best != "FPGA" {
			t.Fatalf("%s largest cell = %s", shape.Name, last.Best)
		}
		if len(r.GPURow) != len(TreeSweep) {
			t.Fatalf("GPU row length %d", len(r.GPURow))
		}
		out := RenderFig8(r)
		if !strings.Contains(out, "1M, GPU") || !strings.Contains(out, "FPGA") {
			t.Fatalf("render missing rows:\n%s", out)
		}
	}
}

func TestFig8MonotoneDecisionBoundary(t *testing.T) {
	// Within each column, once offload wins it keeps winning as records
	// grow (the regions of Fig. 1 are contiguous).
	s := NewSuite()
	r, err := s.Fig8(HiggsShape)
	if err != nil {
		t.Fatal(err)
	}
	for j := range TreeSweep {
		offloaded := false
		for i := range RecordSweep {
			isAccel := !strings.HasPrefix(r.Cells[i][j].Best, "CPU")
			if offloaded && !isAccel {
				t.Fatalf("column %d: offload regressed at row %d", j, i)
			}
			if isAccel {
				offloaded = true
			}
		}
	}
}

func TestFig9Shape(t *testing.T) {
	s := NewSuite()
	panels, err := s.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	if len(panels) != 8 {
		t.Fatalf("panels = %d, want 8 (a-h)", len(panels))
	}
	labels := "abcdefgh"
	for i, p := range panels {
		if p.Label != string(labels[i]) {
			t.Fatalf("panel %d label %q", i, p.Label)
		}
		// IRIS panels have 5 curves (no RAPIDS); HIGGS panels have 6.
		want := 5
		if p.Dataset == "HIGGS" {
			want = 6
		}
		if len(p.Curves) != want {
			t.Fatalf("panel %s (%s): %d curves, want %d", p.Label, p.Dataset, len(p.Curves), want)
		}
		// Latency is monotone nondecreasing in records for every backend.
		for _, c := range p.Curves {
			for k := 1; k < len(c.Times); k++ {
				if c.Times[k] < c.Times[k-1] {
					t.Fatalf("panel %s %s: latency decreased from %v to %v",
						p.Label, c.Backend, c.Times[k-1], c.Times[k])
				}
			}
		}
	}
	out := RenderFig9(panels)
	if !strings.Contains(out, "(h) HIGGS, 128 tree(s), 10 levels") {
		t.Fatalf("render missing panel h:\n%s", out[:400])
	}
}

func TestFig10DerivedFromFig9(t *testing.T) {
	s := NewSuite()
	lat, err := s.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	thr, err := s.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	if len(thr) != len(lat) {
		t.Fatalf("panel count mismatch")
	}
	// Throughput * latency == records for every defined point.
	for pi := range lat {
		for ci := range lat[pi].Curves {
			for k, d := range lat[pi].Curves[ci].Times {
				if d == 0 {
					continue
				}
				ps := thr[pi].Curves[ci].PerSecond[k]
				back := latencyOf(ps, lat[pi].Records[k])
				diff := back - d
				if diff < -time.Microsecond || diff > time.Microsecond {
					t.Fatalf("throughput/latency inconsistent at panel %d curve %d point %d: %v vs %v",
						pi, ci, k, back, d)
				}
			}
		}
	}
	out := RenderFig10(thr)
	if !strings.Contains(out, "million scorings/second") {
		t.Fatal("render missing unit header")
	}
}

func TestFig10FPGAPeakThroughput(t *testing.T) {
	// §IV-C3: with 128 trees the FPGA's throughput tops every other
	// backend; at 1M records x 1 tree it reaches hundreds of millions of
	// scorings per second.
	s := NewSuite()
	thr, err := s.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range thr {
		if p.Trees != 128 {
			continue
		}
		name, peak := p.PeakThroughput()
		if name != "FPGA" {
			t.Fatalf("panel %s: peak backend = %s", p.Label, name)
		}
		if peak < 10e6 {
			t.Fatalf("panel %s: FPGA peak = %v scorings/s", p.Label, peak)
		}
	}
}

func TestFig11Shape(t *testing.T) {
	s := NewSuite()
	rows, err := s.Fig11()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no Fig11 rows")
	}
	for _, r := range rows {
		var sum time.Duration
		for _, st := range r.Stages {
			sum += st.Duration
		}
		if sum != r.Total {
			t.Fatalf("stage sum %v != total %v", sum, r.Total)
		}
	}
	// The paper's §IV-D observation: ~2.6x end-to-end speedup for 1M HIGGS
	// records with the 128-tree model.
	sp, err := QuerySpeedup(rows, "HIGGS", 128, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if sp < 1.8 || sp > 5 {
		t.Fatalf("HIGGS 1M end-to-end speedup = %.2fx, paper ~2.6x", sp)
	}
	// Small queries see no benefit: at 1 record the CPU row wins.
	sp1, err := QuerySpeedup(rows, "HIGGS", 128, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sp1 > 1.01 {
		t.Fatalf("1-record query speedup = %.2fx, should be <= 1", sp1)
	}
	out := RenderFig11(rows)
	for _, want := range []string{"Python invocation", "data transfer", "model scoring"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q", want)
		}
	}
}

func TestHeadlines(t *testing.T) {
	s := NewSuite()
	hs, err := s.Headlines()
	if err != nil {
		t.Fatal(err)
	}
	if len(hs) != 2 {
		t.Fatalf("headlines = %d", len(hs))
	}
	for _, h := range hs {
		if h.BestBackend != "FPGA" {
			t.Fatalf("%s best backend = %s", h.Dataset, h.BestBackend)
		}
		if h.FPGASpeedup < h.GPUSpeedup {
			t.Fatalf("%s: FPGA (%.1fx) should beat GPU (%.1fx)", h.Dataset, h.FPGASpeedup, h.GPUSpeedup)
		}
		if h.Crossover128Trees >= h.Crossover1Tree {
			t.Fatalf("%s: crossover ordering wrong", h.Dataset)
		}
	}
	// HIGGS uses RAPIDS as best GPU at the flagship point (paper §IV-C3).
	if hs[1].GPUBackend != "GPU_RAPIDS" {
		t.Fatalf("HIGGS best GPU = %s, paper says RAPIDS wins at 1M", hs[1].GPUBackend)
	}
	out := RenderHeadlines(hs)
	if !strings.Contains(out, "paper: 69.7x") {
		t.Fatalf("render missing paper reference:\n%s", out)
	}
}

func TestFormatCount(t *testing.T) {
	cases := map[int64]string{1: "1", 999: "999", 1000: "1K", 10_000: "10K", 1_000_000: "1M", 1500: "1500"}
	for n, want := range cases {
		if got := formatCount(n); got != want {
			t.Errorf("formatCount(%d) = %q, want %q", n, got, want)
		}
	}
}

func BenchmarkFig9Sweep(b *testing.B) {
	s := NewSuite()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig9(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSchedulerExperiment(t *testing.T) {
	s := NewSuite()
	c, err := s.SchedulerExperiment(200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Metrics) != 4 {
		t.Fatalf("%d policies", len(c.Metrics))
	}
	byName := map[string]int{}
	for i, m := range c.Metrics {
		byName[m.Policy] = i
	}
	cpu := c.Metrics[byName["static-CPU_SKLearn"]]
	fpga := c.Metrics[byName["static-FPGA"]]
	oracle := c.Metrics[byName["oracle"]]
	aware := c.Metrics[byName["contention-aware"]]
	// Static CPU is catastrophic on a mixed workload; static FPGA pays the
	// small-query penalty relative to the oracle; contention-aware is at
	// least as good as the oracle.
	if cpu.MeanLatency < 100*fpga.MeanLatency {
		t.Fatalf("static CPU mean %v not clearly worse than FPGA %v", cpu.MeanLatency, fpga.MeanLatency)
	}
	if fpga.P50 < 2*oracle.P50 {
		t.Fatalf("static FPGA p50 %v should pay the small-query penalty vs oracle %v", fpga.P50, oracle.P50)
	}
	if aware.MeanLatency > oracle.MeanLatency {
		t.Fatalf("contention-aware %v worse than oracle %v", aware.MeanLatency, oracle.MeanLatency)
	}
	out := RenderScheduler(c)
	if !strings.Contains(out, "contention-aware") {
		t.Fatal("render missing policy")
	}
}

func TestLogCAExperiment(t *testing.T) {
	s := NewSuite()
	fits, err := s.LogCAExperiment()
	if err != nil {
		t.Fatal(err)
	}
	if len(fits) != 3 {
		t.Fatalf("%d fits", len(fits))
	}
	byName := map[string]LogCAFit{}
	for _, f := range fits {
		byName[f.Backend] = f
	}
	// The analytical g1 should land near the simulator's measured ~500
	// crossover for the FPGA, and RAPIDS's g1 must be far larger due to the
	// cuDF conversion overhead.
	fpga := byName["FPGA"]
	if !fpga.G1OK || fpga.G1 < 100 || fpga.G1 > 5000 {
		t.Fatalf("FPGA g1 = %d", fpga.G1)
	}
	rapids := byName["GPU_RAPIDS"]
	if !rapids.G1OK || rapids.G1 < 10*fpga.G1 {
		t.Fatalf("RAPIDS g1 = %d should dwarf FPGA's %d", rapids.G1, fpga.G1)
	}
	// Asymptotic ordering mirrors the simulators: FPGA > RAPIDS > HB.
	if !(fpga.Asymptotic > byName["GPU_RAPIDS"].Asymptotic &&
		byName["GPU_RAPIDS"].Asymptotic > byName["GPU_HB"].Asymptotic) {
		t.Fatalf("asymptotic ordering wrong: %+v", fits)
	}
	out := RenderLogCA(fits)
	if !strings.Contains(out, "asym speedup") {
		t.Fatal("render missing header")
	}
}

func TestSensitivityRobustness(t *testing.T) {
	s := NewSuite()
	rows, err := s.Sensitivity([]float64{0.5, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 15 { // 5 parameters x 3 scales
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		// The paper's flagship conclusion must survive 2x perturbations of
		// every uncertain constant: FPGA remains the best backend with a
		// large margin.
		if r.Best != "FPGA" {
			t.Fatalf("%s x%.2g: best backend flipped to %s", r.Parameter, r.Scale, r.Best)
		}
		if r.FPGASpeedup < 20 {
			t.Fatalf("%s x%.2g: FPGA speedup collapsed to %.1fx", r.Parameter, r.Scale, r.FPGASpeedup)
		}
		// The crossover stays within the sub-10K regime the paper reports.
		if r.Crossover < 20 || r.Crossover > 20_000 {
			t.Fatalf("%s x%.2g: crossover = %d", r.Parameter, r.Scale, r.Crossover)
		}
	}
	out := RenderSensitivity(rows)
	if !strings.Contains(out, "FPGA speedup") {
		t.Fatal("render missing header")
	}
}

func TestReportAllInBand(t *testing.T) {
	s := NewSuite()
	md, rows, err := s.Report()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 10 {
		t.Fatalf("%d report rows", len(rows))
	}
	for _, r := range rows {
		if !r.WithinBand {
			t.Errorf("out of band: %s = %s (paper %s)", r.Quantity, r.Measured, r.Paper)
		}
	}
	if !strings.Contains(md, "All quantities within the reproduction bands.") {
		t.Fatalf("report verdict wrong:\n%s", md)
	}
	if !strings.Contains(md, "| IRIS FPGA speedup | 54x |") {
		t.Fatal("report table malformed")
	}
}

func TestFig1ConceptGrid(t *testing.T) {
	s := NewSuite()
	r, err := s.Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) != 6 || len(r.Cells[0]) != 4 {
		t.Fatalf("grid %dx%d", len(r.Cells), len(r.Cells[0]))
	}
	// Paper Fig. 1 structure: CPU across the top rows, GPU bottom-left,
	// FPGA for complex models at large data sizes.
	for j := range r.Cells[0] {
		if r.Cells[0][j] != "CPU" {
			t.Fatalf("smallest-data row cell %d = %s", j, r.Cells[0][j])
		}
	}
	bottom := r.Cells[len(r.Cells)-1]
	if bottom[0] != "GPU" {
		t.Fatalf("bottom-left = %s, paper shows GPU", bottom[0])
	}
	if bottom[len(bottom)-1] != "FPGA" {
		t.Fatalf("bottom-right = %s, paper shows FPGA", bottom[len(bottom)-1])
	}
	// Only valid labels.
	for _, row := range r.Cells {
		for _, c := range row {
			if c != "CPU" && c != "GPU" && c != "FPGA" {
				t.Fatalf("invalid cell %q", c)
			}
		}
	}
	out := RenderFig1(r)
	if !strings.Contains(out, "Fig. 1") || !strings.Contains(out, "FPGA") {
		t.Fatalf("render malformed:\n%s", out)
	}
}

func TestScaleOut(t *testing.T) {
	s := NewSuite()
	fpgaRows, cpuRows, err := s.ScaleOut()
	if err != nil {
		t.Fatal(err)
	}
	if len(fpgaRows) != 4 || len(cpuRows) != 7 {
		t.Fatalf("rows = %d/%d", len(fpgaRows), len(cpuRows))
	}
	// Throughput is monotone in device/thread count, with sublinear scaling.
	for i := 1; i < len(fpgaRows); i++ {
		if fpgaRows[i].Throughput <= fpgaRows[i-1].Throughput {
			t.Fatalf("FPGA scaling not monotone at %s", fpgaRows[i].Label)
		}
	}
	scaling8 := fpgaRows[3].Throughput / fpgaRows[0].Throughput
	if scaling8 < 4 || scaling8 >= 8 {
		t.Fatalf("8-device scaling = %.2fx, want sublinear in [4, 8)", scaling8)
	}
	for i := 1; i < len(cpuRows); i++ {
		if cpuRows[i].Throughput <= cpuRows[i-1].Throughput {
			t.Fatalf("CPU scaling not monotone at %s", cpuRows[i].Label)
		}
	}
	cpuScaling := cpuRows[len(cpuRows)-1].Throughput / cpuRows[0].Throughput
	if cpuScaling < 15 || cpuScaling > 35 {
		t.Fatalf("52-thread scaling = %.2fx, want ~26x (the calibrated efficiency)", cpuScaling)
	}
	out := RenderScaleOut(fpgaRows, cpuRows)
	if !strings.Contains(out, "FPGAx8") || !strings.Contains(out, "52 threads") {
		t.Fatalf("render incomplete:\n%s", out)
	}
}
