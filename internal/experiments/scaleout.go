package experiments

import (
	"fmt"
	"strings"
	"time"

	"accelscore/internal/engines/cpusk"
	"accelscore/internal/engines/fpga"
	"accelscore/internal/hw"
)

// ScaleOutRow is one point of the scale-out extension experiment.
type ScaleOutRow struct {
	Label      string
	Units      int
	Latency    time.Duration
	Throughput float64 // records/s
}

// ScaleOut sweeps two scaling axes the paper leaves as future work:
// multi-FPGA record-parallel clusters (paper ref [14]) on a 10M-record
// HIGGS batch, and the host CPU's thread count on a 1M-record batch (the
// axis behind the paper's CPU_ONNX vs CPU_ONNX_52th contrast).
func (s *Suite) ScaleOut() (fpgaRows, cpuRows []ScaleOutRow, err error) {
	stats := HiggsShape.config(128, 10, 0).Stats()

	const fpgaBatch = 10_000_000
	for _, n := range []int{1, 2, 4, 8} {
		cl, err := fpga.NewCluster(s.TB.FPGA, n)
		if err != nil {
			return nil, nil, err
		}
		tl, err := cl.Estimate(stats, fpgaBatch)
		if err != nil {
			return nil, nil, err
		}
		fpgaRows = append(fpgaRows, ScaleOutRow{
			Label:      cl.Name(),
			Units:      n,
			Latency:    tl.Total(),
			Throughput: float64(fpgaBatch) / tl.Total().Seconds(),
		})
	}

	const cpuBatch = 1_000_000
	cpu := hw.DefaultCPU()
	for _, threads := range []int{1, 2, 4, 8, 16, 32, 52} {
		eng := cpusk.New(cpu, threads)
		tl, err := eng.Estimate(stats, cpuBatch)
		if err != nil {
			return nil, nil, err
		}
		cpuRows = append(cpuRows, ScaleOutRow{
			Label:      fmt.Sprintf("%d threads", threads),
			Units:      threads,
			Latency:    tl.Total(),
			Throughput: float64(cpuBatch) / tl.Total().Seconds(),
		})
	}
	return fpgaRows, cpuRows, nil
}

// RenderScaleOut renders both sweeps.
func RenderScaleOut(fpgaRows, cpuRows []ScaleOutRow) string {
	var sb strings.Builder
	sb.WriteString("Extension — scale-out sweeps (HIGGS, 128 trees, depth 10)\n\n")
	sb.WriteString("FPGA cluster, 10M records (record-parallel, full model per device):\n")
	base := fpgaRows[0].Throughput
	for _, r := range fpgaRows {
		fmt.Fprintf(&sb, "  %-8s  latency %10s  throughput %7.1f M/s  scaling %.2fx\n",
			r.Label, fmtDur(r.Latency), r.Throughput/1e6, r.Throughput/base)
	}
	sb.WriteString("\nCPU Scikit-learn engine, 1M records, thread sweep:\n")
	base = cpuRows[0].Throughput
	for _, r := range cpuRows {
		fmt.Fprintf(&sb, "  %-10s latency %10s  throughput %7.2f M/s  scaling %.2fx\n",
			r.Label, fmtDur(r.Latency), r.Throughput/1e6, r.Throughput/base)
	}
	return sb.String()
}

// fmtDur is a local alias to keep render columns tight.
func fmtDur(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.3fs", d.Seconds())
	}
}
