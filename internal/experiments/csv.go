package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteFig9CSV writes the latency panels as long-form CSV
// (panel,dataset,trees,depth,backend,records,latency_ns) for external
// plotting tools.
func WriteFig9CSV(w io.Writer, panels []Fig9Panel) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"panel", "dataset", "trees", "depth", "backend", "records", "latency_ns"}); err != nil {
		return err
	}
	for _, p := range panels {
		for _, c := range p.Curves {
			for i, n := range p.Records {
				if c.Times[i] == 0 {
					continue
				}
				rec := []string{
					p.Label, p.Dataset,
					strconv.Itoa(p.Trees), strconv.Itoa(p.Depth),
					c.Backend, strconv.FormatInt(n, 10),
					strconv.FormatInt(c.Times[i].Nanoseconds(), 10),
				}
				if err := cw.Write(rec); err != nil {
					return err
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFig10CSV writes the throughput panels as long-form CSV
// (panel,dataset,trees,depth,backend,records,scorings_per_sec).
func WriteFig10CSV(w io.Writer, panels []Fig10Panel) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"panel", "dataset", "trees", "depth", "backend", "records", "scorings_per_sec"}); err != nil {
		return err
	}
	for _, p := range panels {
		for _, c := range p.Curves {
			for i, n := range p.Records {
				if c.PerSecond[i] == 0 {
					continue
				}
				rec := []string{
					p.Label, p.Dataset,
					strconv.Itoa(p.Trees), strconv.Itoa(p.Depth),
					c.Backend, strconv.FormatInt(n, 10),
					strconv.FormatFloat(c.PerSecond[i], 'g', 10, 64),
				}
				if err := cw.Write(rec); err != nil {
					return err
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFig8CSV writes the shmoo grid as CSV
// (dataset,records,trees,best,speedup).
func WriteFig8CSV(w io.Writer, r *Fig8Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"dataset", "records", "trees", "best", "speedup"}); err != nil {
		return err
	}
	for i := range r.RecordCounts {
		for j := range r.TreeCounts {
			c := r.Cells[i][j]
			rec := []string{
				r.Dataset,
				strconv.FormatInt(c.Records, 10),
				strconv.Itoa(c.Trees),
				c.Best,
				fmt.Sprintf("%.3f", c.Speedup),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFig11CSV writes the end-to-end breakdowns as long-form CSV
// (dataset,trees,records,backend,stage,duration_ns).
func WriteFig11CSV(w io.Writer, rows []Fig11Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"dataset", "trees", "records", "backend", "stage", "duration_ns"}); err != nil {
		return err
	}
	for _, r := range rows {
		for _, st := range r.Stages {
			rec := []string{
				r.Dataset,
				strconv.Itoa(r.Trees),
				strconv.FormatInt(r.Records, 10),
				r.Backend,
				st.Name,
				strconv.FormatInt(st.Duration.Nanoseconds(), 10),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFig1CSV writes the concept grid as long-form CSV
// (records,complexity,device).
func WriteFig1CSV(w io.Writer, r *Fig1Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"records", "complexity", "device"}); err != nil {
		return err
	}
	for i, row := range r.Cells {
		for j, cell := range row {
			if err := cw.Write([]string{r.RowLabels[i], r.ColLabels[j], cell}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFig7CSV writes the FPGA breakdown bars as long-form CSV
// (dataset,trees,depth,records,component,duration_ns).
func WriteFig7CSV(w io.Writer, rows []Fig7Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"dataset", "trees", "depth", "records", "component", "duration_ns"}); err != nil {
		return err
	}
	for _, r := range rows {
		for _, c := range r.Components {
			rec := []string{
				r.Dataset,
				strconv.Itoa(r.Trees),
				strconv.Itoa(r.Depth),
				strconv.FormatInt(r.Records, 10),
				c.Name,
				strconv.FormatInt(c.Duration.Nanoseconds(), 10),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
