package experiments

import (
	"fmt"
	"strings"
	"time"

	"accelscore/internal/sim"
)

// Fig9Curve is one backend's latency across the record sweep. A zero entry
// means the backend does not support the configuration (e.g. RAPIDS on
// IRIS).
type Fig9Curve struct {
	Backend string
	Times   []time.Duration
}

// Fig9Panel is one subplot of Fig. 9 (and, transposed to throughput, of
// Fig. 10): one dataset and model shape, latency vs record count for every
// backend.
type Fig9Panel struct {
	Label   string // "a".."h", matching the paper's subfigure ids
	Dataset string
	Trees   int
	Depth   int
	Records []int64
	Curves  []Fig9Curve
}

// fig9Grid is the panel layout of Figs. 9 and 10: IRIS panels a-d then
// HIGGS panels e-h, sweeping (trees, depth) over (1,6) (1,10) (128,6)
// (128,10).
var fig9Grid = []struct {
	label string
	shape DatasetShape
	trees int
	depth int
}{
	{"a", IrisShape, 1, 6},
	{"b", IrisShape, 1, 10},
	{"c", IrisShape, 128, 6},
	{"d", IrisShape, 128, 10},
	{"e", HiggsShape, 1, 6},
	{"f", HiggsShape, 1, 10},
	{"g", HiggsShape, 128, 6},
	{"h", HiggsShape, 128, 10},
}

// Fig9 regenerates all eight latency panels.
func (s *Suite) Fig9() ([]Fig9Panel, error) {
	var panels []Fig9Panel
	for _, g := range fig9Grid {
		panel := Fig9Panel{
			Label:   g.label,
			Dataset: g.shape.Name,
			Trees:   g.trees,
			Depth:   g.depth,
			Records: RecordSweep,
		}
		for _, b := range s.TB.AllBackends() {
			curve := Fig9Curve{Backend: b.Name(), Times: make([]time.Duration, len(RecordSweep))}
			supported := false
			for i, n := range RecordSweep {
				stats := g.shape.config(g.trees, g.depth, n).Stats()
				tl, err := b.Estimate(stats, n)
				if err != nil {
					continue // unsupported configuration: leave zero
				}
				curve.Times[i] = tl.Total()
				supported = true
			}
			if supported {
				panel.Curves = append(panel.Curves, curve)
			}
		}
		panels = append(panels, panel)
	}
	return panels, nil
}

// RenderFig9 renders the latency panels as aligned text tables.
func RenderFig9(panels []Fig9Panel) string {
	var sb strings.Builder
	sb.WriteString("Fig. 9 — Scoring latency vs record count\n")
	for _, p := range panels {
		fmt.Fprintf(&sb, "\n(%s) %s, %d tree(s), %d levels\n", p.Label, p.Dataset, p.Trees, p.Depth)
		fmt.Fprintf(&sb, "%14s", "records")
		for _, c := range p.Curves {
			fmt.Fprintf(&sb, " %14s", c.Backend)
		}
		sb.WriteString("\n")
		for i, n := range p.Records {
			fmt.Fprintf(&sb, "%14s", formatCount(n))
			for _, c := range p.Curves {
				if c.Times[i] == 0 {
					fmt.Fprintf(&sb, " %14s", "-")
				} else {
					fmt.Fprintf(&sb, " %14s", sim.FormatDuration(c.Times[i]))
				}
			}
			sb.WriteString("\n")
		}
	}
	return sb.String()
}
