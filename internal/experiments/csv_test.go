package experiments

import (
	"bytes"
	"encoding/csv"
	"strconv"
	"testing"
)

func parseCSV(t *testing.T, buf *bytes.Buffer) [][]string {
	t.Helper()
	rows, err := csv.NewReader(buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestWriteFig9CSV(t *testing.T) {
	s := NewSuite()
	panels, err := s.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFig9CSV(&buf, panels); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf)
	if rows[0][0] != "panel" || len(rows) < 100 {
		t.Fatalf("CSV header/size wrong: %d rows", len(rows))
	}
	// Every latency parses as a positive integer.
	for _, r := range rows[1:] {
		ns, err := strconv.ParseInt(r[6], 10, 64)
		if err != nil || ns <= 0 {
			t.Fatalf("bad latency cell %q", r[6])
		}
	}
}

func TestWriteFig10CSV(t *testing.T) {
	s := NewSuite()
	panels, err := s.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFig10CSV(&buf, panels); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf)
	if rows[0][6] != "scorings_per_sec" {
		t.Fatalf("header = %v", rows[0])
	}
	for _, r := range rows[1:] {
		v, err := strconv.ParseFloat(r[6], 64)
		if err != nil || v <= 0 {
			t.Fatalf("bad throughput cell %q", r[6])
		}
	}
}

func TestWriteFig8CSV(t *testing.T) {
	s := NewSuite()
	r, err := s.Fig8(HiggsShape)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFig8CSV(&buf, r); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf)
	want := 1 + len(RecordSweep)*len(TreeSweep)
	if len(rows) != want {
		t.Fatalf("%d rows, want %d", len(rows), want)
	}
}

func TestWriteFig11CSV(t *testing.T) {
	s := NewSuite()
	r, err := s.Fig11()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFig11CSV(&buf, r); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf)
	if len(rows) < 50 {
		t.Fatalf("only %d rows", len(rows))
	}
	seenStages := map[string]bool{}
	for _, row := range rows[1:] {
		seenStages[row[4]] = true
	}
	for _, stage := range []string{"Python invocation", "model scoring", "data transfer"} {
		if !seenStages[stage] {
			t.Fatalf("stage %q missing from CSV", stage)
		}
	}
}
