package experiments

import (
	"fmt"
	"strings"
	"time"

	"accelscore/internal/core"
)

// Fig8Result is one dataset's shmoo: the optimal backend and its
// speedup-over-best-CPU for every (records, trees) cell, plus the reference
// bottom row showing the best GPU speedup at 1M records (the "1M, GPU" row
// of Fig. 8).
type Fig8Result struct {
	Dataset      string
	Depth        int
	RecordCounts []int64
	TreeCounts   []int
	// Cells is indexed [recordIdx][treeIdx].
	Cells [][]core.ShmooCell
	// GPURow holds, per tree count, the best GPU backend and its speedup
	// over the best CPU at 1M records.
	GPURow []GPURefCell
}

// GPURefCell is one entry of the "1M, GPU" reference row.
type GPURefCell struct {
	Trees   int
	Backend string
	Speedup float64
}

// Fig8 regenerates the optimal-backend shmoo for one dataset at depth 10.
func (s *Suite) Fig8(shape DatasetShape) (*Fig8Result, error) {
	const depth = 10
	cells, err := s.TB.Advisor.Shmoo(shape.Name, shape.Features, shape.Classes, depth, RecordSweep, TreeSweep)
	if err != nil {
		return nil, err
	}
	res := &Fig8Result{
		Dataset:      shape.Name,
		Depth:        depth,
		RecordCounts: RecordSweep,
		TreeCounts:   TreeSweep,
		Cells:        cells,
	}
	// Reference row: best GPU vs best CPU at 1M records.
	for _, trees := range TreeSweep {
		cfg := shape.config(trees, depth, 1_000_000)
		stats := cfg.Stats()
		gpu := core.BackendTime{Time: time.Duration(1<<63 - 1)}
		found := false
		for _, name := range []string{"GPU_HB", "GPU_RAPIDS"} {
			b, ok := s.TB.Registry.Get(name)
			if !ok {
				continue
			}
			tl, err := b.Estimate(stats, 1_000_000)
			if err != nil {
				continue // e.g. RAPIDS on multi-class IRIS
			}
			if t := tl.Total(); t < gpu.Time {
				gpu = core.BackendTime{Name: name, Time: t, Timeline: tl}
				found = true
			}
		}
		if !found {
			return nil, fmt.Errorf("fig8: no GPU backend supports %v", cfg)
		}
		d, err := s.TB.Advisor.Decide(cfg)
		if err != nil {
			return nil, err
		}
		res.GPURow = append(res.GPURow, GPURefCell{
			Trees:   trees,
			Backend: gpu.Name,
			Speedup: float64(d.BestCPU.Time) / float64(gpu.Time),
		})
	}
	return res, nil
}

// RenderFig8 renders the shmoo as a text grid: rows are record counts
// (largest at the bottom, like the paper's Y axis), columns are tree
// counts; each cell shows the winning backend and its speedup over the best
// CPU.
func RenderFig8(r *Fig8Result) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fig. 8 — Optimal backend shmoo, %s (depth %d), speedup over best CPU\n\n", r.Dataset, r.Depth)
	fmt.Fprintf(&sb, "%10s |", "records")
	for _, t := range r.TreeCounts {
		fmt.Fprintf(&sb, " %16s |", fmt.Sprintf("%d tree(s)", t))
	}
	sb.WriteString("\n")
	sb.WriteString(strings.Repeat("-", 12+19*len(r.TreeCounts)))
	sb.WriteString("\n")
	for i, n := range r.RecordCounts {
		fmt.Fprintf(&sb, "%10s |", formatCount(n))
		for j := range r.TreeCounts {
			c := r.Cells[i][j]
			label := shortBackend(c.Best)
			if c.Speedup > 1.001 {
				label = fmt.Sprintf("%s %.1fx", label, c.Speedup)
			}
			fmt.Fprintf(&sb, " %16s |", label)
		}
		sb.WriteString("\n")
	}
	fmt.Fprintf(&sb, "%10s |", "1M, GPU")
	for _, g := range r.GPURow {
		fmt.Fprintf(&sb, " %16s |", fmt.Sprintf("%s %.1fx", shortBackend(g.Backend), g.Speedup))
	}
	sb.WriteString("\n")
	return sb.String()
}

// shortBackend compresses backend names for grid cells.
func shortBackend(name string) string {
	switch name {
	case "CPU_SKLearn", "CPU_ONNX", "CPU_ONNX_52th", "CPU_SKLearn_1th":
		return "CPU"
	case "GPU_HB":
		return "GPU-HB"
	case "GPU_RAPIDS":
		return "GPU-RAP"
	default:
		return name
	}
}
