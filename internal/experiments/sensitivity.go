package experiments

import (
	"fmt"
	"strings"
	"time"

	"accelscore/internal/backend"
	"accelscore/internal/core"
	"accelscore/internal/engines/cpuonnx"
	"accelscore/internal/engines/cpusk"
	"accelscore/internal/engines/fpga"
	"accelscore/internal/engines/gpu"
	"accelscore/internal/hw"
)

// SensitivityRow reports the flagship decision under one perturbed
// calibration constant: the reproduction's conclusions should be robust to
// the constants we could not measure directly.
type SensitivityRow struct {
	// Parameter names the perturbed constant; Scale is the multiplier.
	Parameter string
	Scale     float64
	// FPGASpeedup is the HIGGS 1M x 128-tree FPGA speedup over the best CPU
	// under the perturbation.
	FPGASpeedup float64
	// Best is the winning backend at the flagship point.
	Best string
	// Crossover is the 128-tree HIGGS offload crossover.
	Crossover int64
}

// perturbation builds a testbed variant with one constant scaled.
type perturbation struct {
	name  string
	scale float64
	build func(scale float64) *core.Advisor
}

// buildAdvisor wires an advisor from explicit specs.
func buildAdvisor(cpu hw.CPUSpec, gpuSpec hw.GPUSpec, fpgaSpec hw.FPGASpec) *core.Advisor {
	return &core.Advisor{
		CPU: []backend.Backend{
			cpusk.New(cpu, cpu.HardwareThreads),
			cpuonnx.New(cpu, 1),
			cpuonnx.New(cpu, cpu.HardwareThreads),
		},
		Accelerators: []backend.Backend{
			gpu.NewHummingbird(gpuSpec),
			gpu.NewRAPIDS(gpuSpec),
			fpga.New(fpgaSpec),
		},
	}
}

// Sensitivity perturbs the least-certain calibration constants by the given
// scales (e.g. 0.5, 1, 2) and reports the flagship outcome under each.
func (s *Suite) Sensitivity(scales []float64) ([]SensitivityRow, error) {
	perturbations := []perturbation{
		{name: "FPGA issue contention (II slope)", build: func(k float64) *core.Advisor {
			f := hw.DefaultFPGA()
			f.IssueContention *= k
			return buildAdvisor(hw.DefaultCPU(), hw.DefaultGPU(), f)
		}},
		{name: "FPGA software overhead", build: func(k float64) *core.Advisor {
			f := hw.DefaultFPGA()
			f.SoftwareOverhead = time.Duration(float64(f.SoftwareOverhead) * k)
			return buildAdvisor(hw.DefaultCPU(), hw.DefaultGPU(), f)
		}},
		{name: "PCIe efficiency (both links)", build: func(k float64) *core.Advisor {
			g := hw.DefaultGPU()
			f := hw.DefaultFPGA()
			g.Link.Efficiency = clamp01(g.Link.Efficiency * k)
			f.Link.Efficiency = clamp01(f.Link.Efficiency * k)
			return buildAdvisor(hw.DefaultCPU(), g, f)
		}},
		{name: "CPU ONNX visit cost", build: func(k float64) *core.Advisor {
			c := hw.DefaultCPU()
			c.ONNXVisitCost = time.Duration(float64(c.ONNXVisitCost) * k)
			return buildAdvisor(c, hw.DefaultGPU(), hw.DefaultFPGA())
		}},
		{name: "CPU thread-scaling overhead", build: func(k float64) *core.Advisor {
			c := hw.DefaultCPU()
			c.ParallelOverhead *= k
			return buildAdvisor(c, hw.DefaultGPU(), hw.DefaultFPGA())
		}},
	}

	flagship := HiggsShape.config(128, 10, 1_000_000)
	crossCfg := HiggsShape.config(128, 10, 0)
	var rows []SensitivityRow
	for _, p := range perturbations {
		for _, k := range scales {
			adv := p.build(k)
			d, err := adv.Decide(flagship)
			if err != nil {
				return nil, fmt.Errorf("sensitivity %q x%.2g: %w", p.name, k, err)
			}
			fpgaTime := d.BestAccelerator.Time
			// Speedup specifically of the FPGA over the best CPU.
			speedup := 0.0
			for _, b := range adv.Accelerators {
				if b.Name() != "FPGA" {
					continue
				}
				tl, err := b.Estimate(flagship.Stats(), flagship.Records)
				if err == nil {
					fpgaTime = tl.Total()
					speedup = float64(d.BestCPU.Time) / float64(fpgaTime)
				}
			}
			cross, err := adv.Crossover(crossCfg, 1, 4_000_000)
			if err != nil {
				return nil, err
			}
			rows = append(rows, SensitivityRow{
				Parameter:   p.name,
				Scale:       k,
				FPGASpeedup: speedup,
				Best:        d.Best.Name,
				Crossover:   cross,
			})
		}
	}
	return rows, nil
}

func clamp01(v float64) float64 {
	if v > 0.99 {
		return 0.99
	}
	return v
}

// RenderSensitivity renders the robustness table.
func RenderSensitivity(rows []SensitivityRow) string {
	var sb strings.Builder
	sb.WriteString("Sensitivity — flagship outcome (HIGGS, 1M records, 128 trees) under calibration perturbations\n\n")
	fmt.Fprintf(&sb, "%-36s %6s %14s %10s %12s\n", "parameter", "scale", "FPGA speedup", "best", "crossover")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-36s %6.2g %13.1fx %10s %12s\n",
			r.Parameter, r.Scale, r.FPGASpeedup, r.Best, formatCount(r.Crossover))
	}
	return sb.String()
}
