package experiments

import (
	"fmt"
	"strings"

	"accelscore/internal/core"
)

// Fig1Result is the paper's introductory concept grid (Fig. 1): just the
// best-performing hardware per (data size, model complexity) cell, without
// speedup annotations. The model-complexity axis combines tree count and
// dataset width, as in the paper's illustration.
type Fig1Result struct {
	// RowLabels are data sizes (records), smallest first (the paper's
	// Y-axis arrow points down toward larger data).
	RowLabels []string
	// ColLabels are model-complexity steps, simplest first.
	ColLabels []string
	// Cells[row][col] is "CPU", "GPU" or "FPGA".
	Cells [][]string
}

// Fig1 regenerates the concept grid. Model complexity sweeps (trees,
// features) jointly: a single IRIS-width tree up to a 128-tree HIGGS-width
// forest, all at depth 10.
func (s *Suite) Fig1() (*Fig1Result, error) {
	type complexity struct {
		label string
		trees int
		shape DatasetShape
	}
	cols := []complexity{
		{"1 tree / 4 feat", 1, IrisShape},
		{"32 trees / 4 feat", 32, IrisShape},
		{"32 trees / 28 feat", 32, HiggsShape},
		{"128 trees / 28 feat", 128, HiggsShape},
	}
	records := []int64{1, 100, 10_000, 100_000, 500_000, 1_000_000}

	res := &Fig1Result{}
	for _, c := range cols {
		res.ColLabels = append(res.ColLabels, c.label)
	}
	for _, n := range records {
		res.RowLabels = append(res.RowLabels, formatCount(n))
		row := make([]string, len(cols))
		for j, c := range cols {
			d, err := s.TB.Advisor.Decide(core.Config{
				DatasetName: c.shape.Name,
				Features:    c.shape.Features,
				Classes:     c.shape.Classes,
				Trees:       c.trees,
				Depth:       10,
				Records:     n,
			})
			if err != nil {
				return nil, fmt.Errorf("fig1: %w", err)
			}
			row[j] = deviceLabel(d.Best.Name)
		}
		res.Cells = append(res.Cells, row)
	}
	return res, nil
}

// deviceLabel collapses backend names to the paper's three-way CPU/GPU/FPGA
// labels.
func deviceLabel(backendName string) string {
	switch backendName {
	case "GPU_HB", "GPU_RAPIDS":
		return "GPU"
	case "FPGA":
		return "FPGA"
	default:
		return "CPU"
	}
}

// RenderFig1 renders the concept grid in the paper's layout: model
// complexity increasing left to right, data size increasing top to bottom.
func RenderFig1(r *Fig1Result) string {
	var sb strings.Builder
	sb.WriteString("Fig. 1 — Best-performing hardware vs model complexity and data size\n\n")
	fmt.Fprintf(&sb, "%12s |", "data size")
	for _, c := range r.ColLabels {
		fmt.Fprintf(&sb, " %19s |", c)
	}
	sb.WriteString("\n")
	sb.WriteString(strings.Repeat("-", 14+22*len(r.ColLabels)))
	sb.WriteString("\n")
	for i, row := range r.Cells {
		fmt.Fprintf(&sb, "%12s |", r.RowLabels[i])
		for _, cell := range row {
			fmt.Fprintf(&sb, " %19s |", cell)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
