package experiments

import (
	"bytes"
	"encoding/csv"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Golden-figure regression mode: the full figure suite is regenerated
// deterministically (every figure derives from the calibrated Estimate
// models, with no randomness or wall-clock input) and snapshotted as CSVs.
// A blessed copy lives under results/golden/; CompareGoldenDir re-runs the
// suite and diffs against it, so any change to the cost models, the advisor
// or the pipeline that moves a published figure fails loudly instead of
// silently redrawing the paper.

// GoldenSeed pins the golden suite's identity; it is recorded in the
// manifest so a blessed directory is self-describing.
const GoldenSeed uint64 = 0x901d_f165

// goldenManifest is the file listing what a blessed directory contains.
const goldenManifest = "MANIFEST.csv"

// goldenTolerances maps numeric CSV columns to their relative comparison
// tolerance. Figures are deterministic, so the tolerances only absorb
// last-ulp float-formatting differences across architectures; every other
// column must match exactly.
var goldenTolerances = map[string]float64{
	"latency_ns":       1e-6,
	"duration_ns":      1e-6,
	"scorings_per_sec": 1e-6,
	"speedup":          1e-6,
}

// GoldenFigures regenerates every snapshotted figure and returns the CSV
// payloads keyed by file name.
func (s *Suite) GoldenFigures() (map[string][]byte, error) {
	out := make(map[string][]byte)
	write := func(name string, gen func(w *bytes.Buffer) error) error {
		var buf bytes.Buffer
		if err := gen(&buf); err != nil {
			return fmt.Errorf("golden %s: %w", name, err)
		}
		out[name] = buf.Bytes()
		return nil
	}

	if err := write("fig1.csv", func(w *bytes.Buffer) error {
		r, err := s.Fig1()
		if err != nil {
			return err
		}
		return WriteFig1CSV(w, r)
	}); err != nil {
		return nil, err
	}
	if err := write("fig7.csv", func(w *bytes.Buffer) error {
		rows, err := s.Fig7()
		if err != nil {
			return err
		}
		return WriteFig7CSV(w, rows)
	}); err != nil {
		return nil, err
	}
	for _, shape := range []DatasetShape{IrisShape, HiggsShape} {
		shape := shape
		if err := write(fmt.Sprintf("fig8_%s.csv", shape.Name), func(w *bytes.Buffer) error {
			r, err := s.Fig8(shape)
			if err != nil {
				return err
			}
			return WriteFig8CSV(w, r)
		}); err != nil {
			return nil, err
		}
	}
	if err := write("fig9.csv", func(w *bytes.Buffer) error {
		panels, err := s.Fig9()
		if err != nil {
			return err
		}
		return WriteFig9CSV(w, panels)
	}); err != nil {
		return nil, err
	}
	if err := write("fig10.csv", func(w *bytes.Buffer) error {
		panels, err := s.Fig10()
		if err != nil {
			return err
		}
		return WriteFig10CSV(w, panels)
	}); err != nil {
		return nil, err
	}
	if err := write("fig11.csv", func(w *bytes.Buffer) error {
		rows, err := s.Fig11()
		if err != nil {
			return err
		}
		return WriteFig11CSV(w, rows)
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// WriteGoldenDir blesses the current figures: regenerates the suite and
// writes every CSV plus the manifest into dir.
func (s *Suite) WriteGoldenDir(dir string) error {
	files, err := s.GoldenFigures()
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	var manifest bytes.Buffer
	mw := csv.NewWriter(&manifest)
	if err := mw.Write([]string{"file", "rows", "seed"}); err != nil {
		return err
	}
	for _, name := range names {
		if err := os.WriteFile(filepath.Join(dir, name), files[name], 0o644); err != nil {
			return err
		}
		rows := bytes.Count(files[name], []byte("\n"))
		if err := mw.Write([]string{name, strconv.Itoa(rows), fmt.Sprintf("%#x", GoldenSeed)}); err != nil {
			return err
		}
	}
	mw.Flush()
	if err := mw.Error(); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, goldenManifest), manifest.Bytes(), 0o644)
}

// GoldenDiff describes one divergence between the regenerated figures and a
// blessed golden directory.
type GoldenDiff struct {
	// File is the CSV the divergence is in.
	File string
	// Row is the 1-based data-row number (0 for file-level problems).
	Row int
	// Column is the header name of the diverging cell ("" for file-level).
	Column string
	// Got and Want are the regenerated and blessed values.
	Got, Want string
	// Detail explains the divergence.
	Detail string
}

// String renders the diff for reports.
func (d GoldenDiff) String() string {
	if d.Row == 0 {
		return fmt.Sprintf("%s: %s", d.File, d.Detail)
	}
	return fmt.Sprintf("%s row %d col %s: got %q, want %q (%s)", d.File, d.Row, d.Column, d.Got, d.Want, d.Detail)
}

// CompareGoldenDir regenerates the figure suite and diffs it against the
// blessed CSVs in dir. Numeric columns compare within their per-column
// relative tolerance; everything else must match exactly. It returns the
// list of divergences (empty = pass).
func (s *Suite) CompareGoldenDir(dir string) ([]GoldenDiff, error) {
	files, err := s.GoldenFigures()
	if err != nil {
		return nil, err
	}
	var diffs []GoldenDiff
	for _, name := range sortedKeys(files) {
		blessed, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			diffs = append(diffs, GoldenDiff{File: name, Detail: fmt.Sprintf("missing blessed file: %v (re-bless with cmd/conformance -bless)", err)})
			continue
		}
		diffs = append(diffs, diffCSV(name, files[name], blessed)...)
	}
	return diffs, nil
}

// diffCSV compares a regenerated CSV against its blessed counterpart.
func diffCSV(name string, got, want []byte) []GoldenDiff {
	gotRecs, gerr := csv.NewReader(bytes.NewReader(got)).ReadAll()
	wantRecs, werr := csv.NewReader(bytes.NewReader(want)).ReadAll()
	if gerr != nil || werr != nil {
		return []GoldenDiff{{File: name, Detail: fmt.Sprintf("unparsable CSV: regenerated %v, blessed %v", gerr, werr)}}
	}
	if len(gotRecs) == 0 || len(wantRecs) == 0 {
		return []GoldenDiff{{File: name, Detail: "empty CSV"}}
	}
	header := gotRecs[0]
	if strings.Join(header, ",") != strings.Join(wantRecs[0], ",") {
		return []GoldenDiff{{File: name, Detail: fmt.Sprintf(
			"header changed: got %v, blessed %v", header, wantRecs[0])}}
	}
	if len(gotRecs) != len(wantRecs) {
		return []GoldenDiff{{File: name, Detail: fmt.Sprintf(
			"row count changed: got %d, blessed %d", len(gotRecs)-1, len(wantRecs)-1)}}
	}
	var diffs []GoldenDiff
	for r := 1; r < len(gotRecs); r++ {
		for c := range header {
			g, w := gotRecs[r][c], wantRecs[r][c]
			if g == w {
				continue
			}
			col := header[c]
			if tol, ok := goldenTolerances[col]; ok && withinTolerance(g, w, tol) {
				continue
			}
			diffs = append(diffs, GoldenDiff{
				File: name, Row: r, Column: col, Got: g, Want: w,
				Detail: "value diverged",
			})
			if len(diffs) >= 20 { // enough to diagnose; don't flood the report
				diffs = append(diffs, GoldenDiff{File: name, Detail: "further diffs truncated"})
				return diffs
			}
		}
	}
	return diffs
}

// withinTolerance parses both cells as floats and compares them with
// relative tolerance tol.
func withinTolerance(got, want string, tol float64) bool {
	g, gerr := strconv.ParseFloat(got, 64)
	w, werr := strconv.ParseFloat(want, 64)
	if gerr != nil || werr != nil {
		return false
	}
	if g == w {
		return true
	}
	scale := math.Max(math.Abs(g), math.Abs(w))
	return math.Abs(g-w) <= tol*scale
}

func sortedKeys(m map[string][]byte) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
