package experiments

import (
	"fmt"
	"strings"
)

// ReportRow is one paper-vs-measured comparison in the generated report.
type ReportRow struct {
	Quantity string
	Paper    string
	Measured string
	// WithinBand reports whether the measured value satisfies the
	// reproduction tolerance recorded for this quantity.
	WithinBand bool
}

// Report computes every headline comparison live and renders a markdown
// verification report — the machine-checked version of EXPERIMENTS.md's
// summary table. cmd/repro writes it as report.md.
func (s *Suite) Report() (string, []ReportRow, error) {
	hs, err := s.Headlines()
	if err != nil {
		return "", nil, err
	}
	iris, higgs := hs[0], hs[1]

	fig11, err := s.Fig11()
	if err != nil {
		return "", nil, err
	}
	e2e, err := QuerySpeedup(fig11, "HIGGS", 128, 1_000_000)
	if err != nil {
		return "", nil, err
	}

	thr, err := s.Fig10()
	if err != nil {
		return "", nil, err
	}
	var fpgaPeak float64
	for _, p := range thr {
		if p.Label == "h" {
			_, fpgaPeak = p.PeakThroughput()
		}
	}

	band := func(v, lo, hi float64) bool { return v >= lo && v <= hi }
	rows := []ReportRow{
		{"IRIS best backend @1M x 128 trees", "FPGA", iris.BestBackend, iris.BestBackend == "FPGA"},
		{"IRIS FPGA speedup", "54x", fmt.Sprintf("%.1fx", iris.FPGASpeedup), band(iris.FPGASpeedup, 35, 80)},
		{"IRIS GPU-HB speedup", "7.5x", fmt.Sprintf("%.1fx (%s)", iris.GPUSpeedup, iris.GPUBackend), band(iris.GPUSpeedup, 5, 12)},
		{"HIGGS best backend @1M x 128 trees", "FPGA", higgs.BestBackend, higgs.BestBackend == "FPGA"},
		{"HIGGS FPGA speedup", "69.7x", fmt.Sprintf("%.1fx", higgs.FPGASpeedup), band(higgs.FPGASpeedup, 45, 110)},
		{"HIGGS GPU-RAPIDS speedup", "16.5x", fmt.Sprintf("%.1fx (%s)", higgs.GPUSpeedup, higgs.GPUBackend), band(higgs.GPUSpeedup, 10, 28)},
		{"HIGGS FPGA over best GPU", "4.2x", fmt.Sprintf("%.1fx", higgs.FPGASpeedup/higgs.GPUSpeedup), band(higgs.FPGASpeedup/higgs.GPUSpeedup, 2.5, 6.5)},
		{"Wrong-offload latency penalty @1 record", ">=10x", fmt.Sprintf("%.1fx / %.1fx", iris.WrongOffloadLatency, higgs.WrongOffloadLatency),
			iris.WrongOffloadLatency >= 5 && higgs.WrongOffloadLatency >= 5},
		{"Wrong-stay throughput penalty @1M", "~70x", fmt.Sprintf("%.1fx / %.1fx", iris.WrongStayThroughput, higgs.WrongStayThroughput),
			iris.WrongStayThroughput >= 35 && higgs.WrongStayThroughput >= 45},
		{"IRIS offload crossover (128 trees)", "~1K records", formatCount(iris.Crossover128Trees), band(float64(iris.Crossover128Trees), 50, 5000)},
		{"HIGGS offload crossover (128 trees)", "~500 records", formatCount(higgs.Crossover128Trees), band(float64(higgs.Crossover128Trees), 30, 2000)},
		{"IRIS offload crossover (1 tree)", "~10K records", formatCount(iris.Crossover1Tree), band(float64(iris.Crossover1Tree), 2e3, 2e5)},
		{"HIGGS offload crossover (1 tree)", "~5K records", formatCount(higgs.Crossover1Tree), band(float64(higgs.Crossover1Tree), 1e3, 1e5)},
		{"End-to-end query speedup, HIGGS 1M", "~2.6x", fmt.Sprintf("%.2fx", e2e), band(e2e, 1.8, 5)},
		{"FPGA peak throughput (128-tree HIGGS)", "~25M scorings/s", fmt.Sprintf("%.1fM/s", fpgaPeak/1e6), band(fpgaPeak/1e6, 10, 40)},
	}

	var sb strings.Builder
	sb.WriteString("# Reproduction verification report\n\n")
	sb.WriteString("Generated live by `cmd/repro -fig report`. Every row is recomputed from\n")
	sb.WriteString("the calibrated simulators; the band column states whether the measured\n")
	sb.WriteString("value lies within the reproduction tolerance asserted by the test suite.\n\n")
	sb.WriteString("| Quantity | Paper | Measured | In band |\n|---|---|---|---|\n")
	allOK := true
	for _, r := range rows {
		mark := "yes"
		if !r.WithinBand {
			mark = "**NO**"
			allOK = false
		}
		fmt.Fprintf(&sb, "| %s | %s | %s | %s |\n", r.Quantity, r.Paper, r.Measured, mark)
	}
	sb.WriteString("\n")
	if allOK {
		sb.WriteString("All quantities within the reproduction bands.\n")
	} else {
		sb.WriteString("SOME QUANTITIES OUT OF BAND — recalibrate (see internal/hw/calibration.go).\n")
	}
	return sb.String(), rows, nil
}
