package experiments

import (
	"fmt"
	"strings"
	"time"

	"accelscore/internal/logca"
	"accelscore/internal/sched"
	"accelscore/internal/sim"
)

// SchedulerComparison holds the dynamic-scheduling extension experiment: the
// same mixed query stream placed by four policies (DESIGN.md §5, last
// ablation — the workload-scale version of the paper's wrong-decision
// analysis).
type SchedulerComparison struct {
	Queries int
	Metrics []sched.Metrics
}

// SchedulerExperiment runs the policy comparison on the default mixed
// workload.
func (s *Suite) SchedulerExperiment(queries int, seed uint64) (*SchedulerComparison, error) {
	qs, err := sched.Generate(sched.DefaultWorkload(queries, seed))
	if err != nil {
		return nil, err
	}
	simulator := &sched.Simulator{Registry: s.TB.Registry}
	metrics, err := simulator.Compare(qs,
		sched.Static{BackendName: "CPU_SKLearn", Registry: s.TB.Registry},
		sched.Static{BackendName: "FPGA", Registry: s.TB.Registry},
		sched.Oracle{Advisor: s.TB.Advisor},
		sched.ContentionAware{Advisor: s.TB.Advisor},
	)
	if err != nil {
		return nil, err
	}
	return &SchedulerComparison{Queries: queries, Metrics: metrics}, nil
}

// RenderScheduler renders the comparison.
func RenderScheduler(c *SchedulerComparison) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Extension — dynamic offload scheduling over %d mixed queries (§I motivation)\n\n", c.Queries)
	sb.WriteString(sched.RenderMetrics(c.Metrics))
	return sb.String()
}

// LogCAFit holds the analytical-model extension: LogCA parameters fitted to
// each accelerator simulator, with the derived break-even granularity (g1)
// and asymptotic speedup (paper ref [42]; §IV-E argues such models must
// include both overhead classes).
type LogCAFit struct {
	Backend    string
	Model      logca.Model
	G1         int64
	G1OK       bool
	GHalf      int64
	Asymptotic float64
}

// LogCAExperiment fits LogCA to the FPGA and both GPU libraries for the
// flagship HIGGS model shape, against the Scikit-learn host baseline.
func (s *Suite) LogCAExperiment() ([]LogCAFit, error) {
	stats := HiggsShape.config(128, 10, 0).Stats()
	var out []LogCAFit
	for _, name := range []string{"FPGA", "GPU_HB", "GPU_RAPIDS"} {
		b, ok := s.TB.Registry.Get(name)
		if !ok {
			return nil, fmt.Errorf("experiments: backend %q missing", name)
		}
		m, err := logca.Fit(name, s.TB.SKLearn, b, stats)
		if err != nil {
			return nil, fmt.Errorf("experiments: fitting %s: %w", name, err)
		}
		fit := LogCAFit{Backend: name, Model: m, Asymptotic: m.AsymptoticSpeedup()}
		fit.G1, fit.G1OK = m.G1()
		fit.GHalf, _ = m.GHalfA()
		out = append(out, fit)
	}
	return out, nil
}

// RenderLogCA renders the fitted models.
func RenderLogCA(fits []LogCAFit) string {
	var sb strings.Builder
	sb.WriteString("Extension — LogCA analytical model fitted to the simulators\n")
	sb.WriteString("(HIGGS shape: 128 trees, depth 10; host = CPU_SKLearn)\n\n")
	fmt.Fprintf(&sb, "%-12s %12s %14s %16s %10s %12s\n",
		"backend", "overhead o", "C (ns/record)", "A (accel)", "g1", "asym speedup")
	for _, f := range fits {
		g1 := "never"
		if f.G1OK {
			g1 = formatCount(f.G1)
		}
		fmt.Fprintf(&sb, "%-12s %12s %14.1f %16.1f %10s %12.1f\n",
			f.Backend,
			sim.FormatDuration(f.Model.Overhead),
			float64(f.Model.HostTimePerRecord)/float64(time.Nanosecond),
			f.Model.Acceleration,
			g1,
			f.Asymptotic)
	}
	return sb.String()
}
