package experiments

import (
	"fmt"
	"strings"
	"time"
)

// Fig10Curve is one backend's throughput (scorings per second) across the
// record sweep.
type Fig10Curve struct {
	Backend string
	// PerSecond holds scored records per second; 0 means unsupported.
	PerSecond []float64
}

// Fig10Panel mirrors Fig9Panel with throughput values.
type Fig10Panel struct {
	Label   string
	Dataset string
	Trees   int
	Depth   int
	Records []int64
	Curves  []Fig10Curve
}

// Fig10 derives the throughput panels from the Fig. 9 latency sweep, as the
// paper does ("we compute the throughput metric by dividing the total number
// of records over the overall model scoring time", §IV-C).
func (s *Suite) Fig10() ([]Fig10Panel, error) {
	latency, err := s.Fig9()
	if err != nil {
		return nil, err
	}
	var panels []Fig10Panel
	for _, lp := range latency {
		p := Fig10Panel{
			Label:   lp.Label,
			Dataset: lp.Dataset,
			Trees:   lp.Trees,
			Depth:   lp.Depth,
			Records: lp.Records,
		}
		for _, lc := range lp.Curves {
			c := Fig10Curve{Backend: lc.Backend, PerSecond: make([]float64, len(lc.Times))}
			for i, t := range lc.Times {
				if t > 0 {
					c.PerSecond[i] = float64(lp.Records[i]) / t.Seconds()
				}
			}
			p.Curves = append(p.Curves, c)
		}
		panels = append(panels, p)
	}
	return panels, nil
}

// RenderFig10 renders throughput panels in million scorings per second, the
// paper's unit.
func RenderFig10(panels []Fig10Panel) string {
	var sb strings.Builder
	sb.WriteString("Fig. 10 — Scoring throughput vs record count (million scorings/second)\n")
	for _, p := range panels {
		fmt.Fprintf(&sb, "\n(%s) %s, %d tree(s), %d levels\n", p.Label, p.Dataset, p.Trees, p.Depth)
		fmt.Fprintf(&sb, "%14s", "records")
		for _, c := range p.Curves {
			fmt.Fprintf(&sb, " %14s", c.Backend)
		}
		sb.WriteString("\n")
		for i, n := range p.Records {
			fmt.Fprintf(&sb, "%14s", formatCount(n))
			for _, c := range p.Curves {
				if c.PerSecond[i] == 0 {
					fmt.Fprintf(&sb, " %14s", "-")
				} else {
					fmt.Fprintf(&sb, " %14.4f", c.PerSecond[i]/1e6)
				}
			}
			sb.WriteString("\n")
		}
	}
	return sb.String()
}

// PeakThroughput returns the maximum throughput any backend reaches in the
// panel and the backend that reaches it.
func (p Fig10Panel) PeakThroughput() (string, float64) {
	bestName, best := "", 0.0
	for _, c := range p.Curves {
		for _, v := range c.PerSecond {
			if v > best {
				best = v
				bestName = c.Backend
			}
		}
	}
	return bestName, best
}

// latencyOf is a test helper surface: the latency implied by a throughput
// value at n records.
func latencyOf(perSecond float64, n int64) time.Duration {
	if perSecond == 0 {
		return 0
	}
	return time.Duration(float64(n) / perSecond * float64(time.Second))
}
