// Package experiments regenerates every figure of the paper's evaluation
// section (§IV): the Fig. 1/Fig. 8 optimal-backend shmoos, the Fig. 7 FPGA
// time breakdowns, the Fig. 9 latency and Fig. 10 throughput sweeps, the
// Fig. 11 end-to-end query breakdowns, and the §IV-C headline ratios. Each
// experiment returns structured rows plus a text rendering; cmd/repro writes
// them all, and EXPERIMENTS.md records paper-vs-measured.
package experiments

import (
	"accelscore/internal/core"
	"accelscore/internal/hw"
	"accelscore/internal/pipeline"
	"accelscore/internal/platform"
)

// DatasetShape describes one of the paper's two datasets for sweep purposes.
type DatasetShape struct {
	Name     string
	Features int
	Classes  int
}

// The paper's datasets (§IV-A).
var (
	IrisShape  = DatasetShape{Name: "IRIS", Features: 4, Classes: 3}
	HiggsShape = DatasetShape{Name: "HIGGS", Features: 28, Classes: 2}
)

// RecordSweep is the record-count axis used by Figs. 8-10 (1 to 1M, decade
// steps).
var RecordSweep = []int64{1, 10, 100, 1_000, 10_000, 100_000, 1_000_000}

// TreeSweep is the model-complexity axis of Fig. 8.
var TreeSweep = []int{1, 8, 32, 128}

// Suite wires the testbed and pipeline used by every experiment.
type Suite struct {
	TB   *platform.Testbed
	Pipe *pipeline.Pipeline
}

// NewSuite builds the default experiment environment: the calibrated
// testbed and the loosely-integrated (external Python process) pipeline.
func NewSuite() *Suite {
	tb := platform.New()
	return &Suite{
		TB: tb,
		Pipe: &pipeline.Pipeline{
			Runtime:  hw.DefaultRuntime(),
			Registry: tb.Registry,
			Advisor:  tb.Advisor,
		},
	}
}

// config builds a core.Config for a dataset shape.
func (d DatasetShape) config(trees, depth int, records int64) core.Config {
	return core.Config{
		DatasetName: d.Name,
		Features:    d.Features,
		Classes:     d.Classes,
		Trees:       trees,
		Depth:       depth,
		Records:     records,
	}
}
