package experiments

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"accelscore/internal/dataset"
	"accelscore/internal/db"
	"accelscore/internal/forest"
	"accelscore/internal/hw"
	"accelscore/internal/pipeline"
	"accelscore/internal/platform"
)

// Demo is a small live scoring environment: the IRIS dataset loaded as a
// table, a trained random forest stored as a model, and a cache-enabled
// pipeline over the full testbed with the offload advisor. cmd/serve uses it
// for the interactive /query endpoint and the hot-path page; attach an
// obs.Observer to Pipe to collect telemetry from every query it runs.
type Demo struct {
	// DB holds the "iris" table and the "iris_rf" model.
	DB *db.Database
	// Pipe is the cache-enabled scoring pipeline.
	Pipe *pipeline.Pipeline
}

// DemoQuery is the canonical scoring statement against the demo environment.
const DemoQuery = "EXEC sp_score_model @model='iris_rf', @data='iris', @backend='CPU_SKLearn'"

// DemoForestConfig is the training configuration of the demo's "iris_rf"
// model. It is exported so out-of-process verifiers (the restart-chaos
// scenario) can retrain the identical forest and check predictions
// bit-for-bit against the server's.
var DemoForestConfig = forest.ForestConfig{
	NumTrees:  32,
	Tree:      forest.TrainConfig{MaxDepth: 10},
	Seed:      1,
	Bootstrap: true,
}

// NewDemo builds the demo environment with the IRIS table replicated to
// records rows (<= 0 means 2000) and a 32-tree depth-10 forest.
func NewDemo(records int) (*Demo, error) {
	return NewDemoOn(db.New(), records)
}

// NewDemoOn builds the demo environment on an existing database — the
// durable-storage path: after crash recovery the "iris" table and "iris_rf"
// model already exist and are reused as-is; on a fresh data directory they
// are seeded (and journaled) like any other write. Seeding is idempotent
// per object, so a crash between the table landing and the model landing
// heals on the next boot.
func NewDemoOn(d *db.Database, records int) (*Demo, error) {
	if records <= 0 {
		records = 2000
	}
	tb := platform.New()
	if _, err := d.Table("iris"); errors.Is(err, db.ErrTableNotFound) {
		data := dataset.Iris().Replicate(records)
		tbl, err := db.TableFromDataset("iris", data)
		if err != nil {
			return nil, err
		}
		if err := d.CreateTable(tbl); err != nil {
			return nil, err
		}
	} else if err != nil {
		return nil, err
	}
	if _, err := d.LoadModelBlob("iris_rf"); errors.Is(err, db.ErrModelNotFound) {
		f, err := forest.Train(dataset.Iris(), DemoForestConfig)
		if err != nil {
			return nil, err
		}
		if err := d.StoreModel("iris_rf", f); err != nil {
			return nil, err
		}
	} else if err != nil {
		return nil, err
	}
	return &Demo{
		DB: d,
		Pipe: &pipeline.Pipeline{
			DB:       d,
			Runtime:  hw.DefaultRuntime(),
			Registry: tb.Registry,
			Advisor:  tb.Advisor,
			Cache:    pipeline.NewModelCache(8),
		},
	}, nil
}

// HotPathReport demonstrates the compiled-model cache live: one cold query
// against the demo's (fresh) pipeline, then repeated warm queries, with the
// per-stage simulated breakdown, measured wall-clock cost and the cache's
// hit/miss/eviction counters. Call on a freshly built Demo so the first
// query really is cold.
func (d *Demo) HotPathReport() (string, error) {
	var sb strings.Builder
	sb.WriteString("Compiled-model cache on repeated scoring queries\n")
	sb.WriteString("query: " + DemoQuery + "\n\n")
	for i := 0; i < 4; i++ {
		t0 := time.Now()
		res, err := d.Pipe.ExecQuery(DemoQuery)
		if err != nil {
			return "", err
		}
		wall := time.Since(t0)
		label := "cold (cache miss)"
		if res.CacheHit {
			label = "warm (cache hit)"
		}
		fmt.Fprintf(&sb, "query %d: %-17s wall-clock %-12v simulated model-preproc %-12v simulated total %v\n",
			i+1, label, wall.Round(time.Microsecond),
			res.Timeline.Component(pipeline.StageModelPreproc),
			res.Timeline.Total().Round(time.Microsecond))
		if res.TraceID != "" {
			fmt.Fprintf(&sb, "         trace %s (download: /debug/trace/%s)\n", res.TraceID, res.TraceID)
		}
	}
	sb.WriteString("\ncache counters: " + d.Pipe.Cache.Stats().String() + "\n")
	sb.WriteString("\nOn a hit the query skips blob deserialization, stats computation and\n" +
		"kernel lowering; model pre-processing collapses to a checksum check and\n" +
		"the input table is served from the version-keyed dataset snapshot.\n")
	return sb.String(), nil
}
