package experiments

import (
	"os"
	"path/filepath"
	"testing"
)

// repoGoldenDir is the blessed snapshot committed with the repository,
// relative to this package directory.
const repoGoldenDir = "../../results/golden"

// TestGoldenRoundTrip blesses the suite into a temp directory and compares
// against it immediately: the comparator must report zero diffs against its
// own output, and the manifest must list every figure.
func TestGoldenRoundTrip(t *testing.T) {
	s := NewSuite()
	dir := t.TempDir()
	if err := s.WriteGoldenDir(dir); err != nil {
		t.Fatalf("blessing: %v", err)
	}
	diffs, err := s.CompareGoldenDir(dir)
	if err != nil {
		t.Fatalf("comparing: %v", err)
	}
	for _, d := range diffs {
		t.Errorf("self-comparison diff: %s", d)
	}
	for _, name := range []string{"fig1.csv", "fig7.csv", "fig8_IRIS.csv", "fig8_HIGGS.csv", "fig9.csv", "fig10.csv", "fig11.csv", "MANIFEST.csv"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("blessed directory missing %s: %v", name, err)
		}
	}
}

// TestGoldenDetectsDrift corrupts one blessed cell beyond tolerance and one
// within it: the comparator must flag the first and absorb the second.
func TestGoldenDetectsDrift(t *testing.T) {
	s := NewSuite()
	dir := t.TempDir()
	if err := s.WriteGoldenDir(dir); err != nil {
		t.Fatalf("blessing: %v", err)
	}

	// Beyond tolerance: double the first fig9 latency value.
	path := filepath.Join(dir, "fig9.csv")
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := mutateLastField(t, blob, func(v string) string { return v + "0" }) // 10x
	if err := os.WriteFile(path, corrupted, 0o644); err != nil {
		t.Fatal(err)
	}
	diffs, err := s.CompareGoldenDir(dir)
	if err != nil {
		t.Fatalf("comparing: %v", err)
	}
	found := false
	for _, d := range diffs {
		if d.File == "fig9.csv" && d.Column == "latency_ns" {
			found = true
		}
	}
	if !found {
		t.Fatalf("10x latency corruption not flagged; diffs: %v", diffs)
	}

	// Re-bless, then drift within tolerance (last digit of a ~1e6+ ns value):
	// must pass.
	if err := s.WriteGoldenDir(dir); err != nil {
		t.Fatal(err)
	}
	blob, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	nudged := mutateLastField(t, blob, func(v string) string {
		b := []byte(v)
		last := len(b) - 1
		if b[last] == '9' {
			b[last] = '8'
		} else {
			b[last]++
		}
		return string(b)
	})
	if err := os.WriteFile(path, nudged, 0o644); err != nil {
		t.Fatal(err)
	}
	diffs, err = s.CompareGoldenDir(dir)
	if err != nil {
		t.Fatalf("comparing: %v", err)
	}
	for _, d := range diffs {
		t.Errorf("last-ulp drift flagged: %s", d)
	}
}

// mutateLastField applies f to the last comma-separated field of the CSV's
// final data line (a numeric cell in every figure CSV).
func mutateLastField(t *testing.T, blob []byte, f func(string) string) []byte {
	t.Helper()
	s := string(blob)
	end := len(s)
	for end > 0 && (s[end-1] == '\n' || s[end-1] == '\r') {
		end--
	}
	start := end
	for start > 0 && s[start-1] != ',' && s[start-1] != '\n' {
		start--
	}
	if start == end {
		t.Fatal("could not locate a final CSV field to mutate")
	}
	return []byte(s[:start] + f(s[start:end]) + s[end:])
}

// TestGoldenAgainstBlessed is the regression gate: the committed goldens
// under results/golden must match a fresh regeneration. A legitimate model
// change is re-blessed with `go run ./cmd/conformance -bless` (see
// EXPERIMENTS.md).
func TestGoldenAgainstBlessed(t *testing.T) {
	if _, err := os.Stat(repoGoldenDir); err != nil {
		t.Fatalf("blessed golden directory missing: %v (bless with `go run ./cmd/conformance -bless`)", err)
	}
	diffs, err := NewSuite().CompareGoldenDir(repoGoldenDir)
	if err != nil {
		t.Fatalf("comparing: %v", err)
	}
	for _, d := range diffs {
		t.Errorf("golden drift: %s", d)
	}
}
